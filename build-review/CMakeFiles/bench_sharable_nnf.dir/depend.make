# Empty dependencies file for bench_sharable_nnf.
# This may be replaced when dependencies are built.
