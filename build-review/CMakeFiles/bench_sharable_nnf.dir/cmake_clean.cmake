file(REMOVE_RECURSE
  "CMakeFiles/bench_sharable_nnf.dir/bench/bench_sharable_nnf.cpp.o"
  "CMakeFiles/bench_sharable_nnf.dir/bench/bench_sharable_nnf.cpp.o.d"
  "bench_sharable_nnf"
  "bench_sharable_nnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharable_nnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
