# Empty compiler generated dependencies file for bench_flowtable.
# This may be replaced when dependencies are built.
