file(REMOVE_RECURSE
  "CMakeFiles/bench_flowtable.dir/bench/bench_flowtable.cpp.o"
  "CMakeFiles/bench_flowtable.dir/bench/bench_flowtable.cpp.o.d"
  "bench_flowtable"
  "bench_flowtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flowtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
