file(REMOVE_RECURSE
  "CMakeFiles/bench_placement_policy.dir/bench/bench_placement_policy.cpp.o"
  "CMakeFiles/bench_placement_policy.dir/bench/bench_placement_policy.cpp.o.d"
  "bench_placement_policy"
  "bench_placement_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
