# Empty dependencies file for bench_placement_policy.
# This may be replaced when dependencies are built.
