file(REMOVE_RECURSE
  "CMakeFiles/bench_deploy_latency.dir/bench/bench_deploy_latency.cpp.o"
  "CMakeFiles/bench_deploy_latency.dir/bench/bench_deploy_latency.cpp.o.d"
  "bench_deploy_latency"
  "bench_deploy_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deploy_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
