# Empty dependencies file for bench_deploy_latency.
# This may be replaced when dependencies are built.
