file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_ipsec.dir/bench/bench_table1_ipsec.cpp.o"
  "CMakeFiles/bench_table1_ipsec.dir/bench/bench_table1_ipsec.cpp.o.d"
  "bench_table1_ipsec"
  "bench_table1_ipsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ipsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
