# Empty dependencies file for bench_table1_ipsec.
# This may be replaced when dependencies are built.
