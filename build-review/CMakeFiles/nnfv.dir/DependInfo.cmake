
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compute/docker_driver.cpp" "CMakeFiles/nnfv.dir/src/compute/docker_driver.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/docker_driver.cpp.o.d"
  "/root/repo/src/compute/dpdk_driver.cpp" "CMakeFiles/nnfv.dir/src/compute/dpdk_driver.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/dpdk_driver.cpp.o.d"
  "/root/repo/src/compute/driver.cpp" "CMakeFiles/nnfv.dir/src/compute/driver.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/driver.cpp.o.d"
  "/root/repo/src/compute/generic_driver.cpp" "CMakeFiles/nnfv.dir/src/compute/generic_driver.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/generic_driver.cpp.o.d"
  "/root/repo/src/compute/instance.cpp" "CMakeFiles/nnfv.dir/src/compute/instance.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/instance.cpp.o.d"
  "/root/repo/src/compute/manager.cpp" "CMakeFiles/nnfv.dir/src/compute/manager.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/manager.cpp.o.d"
  "/root/repo/src/compute/native_driver.cpp" "CMakeFiles/nnfv.dir/src/compute/native_driver.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/native_driver.cpp.o.d"
  "/root/repo/src/compute/templates.cpp" "CMakeFiles/nnfv.dir/src/compute/templates.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/templates.cpp.o.d"
  "/root/repo/src/compute/vm_driver.cpp" "CMakeFiles/nnfv.dir/src/compute/vm_driver.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/compute/vm_driver.cpp.o.d"
  "/root/repo/src/core/network_manager.cpp" "CMakeFiles/nnfv.dir/src/core/network_manager.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/network_manager.cpp.o.d"
  "/root/repo/src/core/node.cpp" "CMakeFiles/nnfv.dir/src/core/node.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/node.cpp.o.d"
  "/root/repo/src/core/orchestrator.cpp" "CMakeFiles/nnfv.dir/src/core/orchestrator.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/orchestrator.cpp.o.d"
  "/root/repo/src/core/repository.cpp" "CMakeFiles/nnfv.dir/src/core/repository.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/repository.cpp.o.d"
  "/root/repo/src/core/resolver.cpp" "CMakeFiles/nnfv.dir/src/core/resolver.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/resolver.cpp.o.d"
  "/root/repo/src/core/resource_manager.cpp" "CMakeFiles/nnfv.dir/src/core/resource_manager.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/resource_manager.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "CMakeFiles/nnfv.dir/src/core/scheduler.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/scheduler.cpp.o.d"
  "/root/repo/src/core/steering.cpp" "CMakeFiles/nnfv.dir/src/core/steering.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/core/steering.cpp.o.d"
  "/root/repo/src/crypto/aes.cpp" "CMakeFiles/nnfv.dir/src/crypto/aes.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/backend.cpp" "CMakeFiles/nnfv.dir/src/crypto/backend.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/backend.cpp.o.d"
  "/root/repo/src/crypto/backend_aesni.cpp" "CMakeFiles/nnfv.dir/src/crypto/backend_aesni.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/backend_aesni.cpp.o.d"
  "/root/repo/src/crypto/backend_portable.cpp" "CMakeFiles/nnfv.dir/src/crypto/backend_portable.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/backend_portable.cpp.o.d"
  "/root/repo/src/crypto/backend_reference.cpp" "CMakeFiles/nnfv.dir/src/crypto/backend_reference.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/backend_reference.cpp.o.d"
  "/root/repo/src/crypto/cipher_modes.cpp" "CMakeFiles/nnfv.dir/src/crypto/cipher_modes.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/cipher_modes.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "CMakeFiles/nnfv.dir/src/crypto/hmac.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "CMakeFiles/nnfv.dir/src/crypto/sha1.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/nnfv.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/json/json.cpp" "CMakeFiles/nnfv.dir/src/json/json.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/json/json.cpp.o.d"
  "/root/repo/src/netns/netns.cpp" "CMakeFiles/nnfv.dir/src/netns/netns.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/netns/netns.cpp.o.d"
  "/root/repo/src/nffg/nffg.cpp" "CMakeFiles/nnfv.dir/src/nffg/nffg.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nffg/nffg.cpp.o.d"
  "/root/repo/src/nffg/nffg_json.cpp" "CMakeFiles/nnfv.dir/src/nffg/nffg_json.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nffg/nffg_json.cpp.o.d"
  "/root/repo/src/nffg/validate.cpp" "CMakeFiles/nnfv.dir/src/nffg/validate.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nffg/validate.cpp.o.d"
  "/root/repo/src/nnf/adaptation.cpp" "CMakeFiles/nnfv.dir/src/nnf/adaptation.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/adaptation.cpp.o.d"
  "/root/repo/src/nnf/bridge.cpp" "CMakeFiles/nnfv.dir/src/nnf/bridge.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/bridge.cpp.o.d"
  "/root/repo/src/nnf/catalog.cpp" "CMakeFiles/nnfv.dir/src/nnf/catalog.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/catalog.cpp.o.d"
  "/root/repo/src/nnf/dhcp.cpp" "CMakeFiles/nnfv.dir/src/nnf/dhcp.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/dhcp.cpp.o.d"
  "/root/repo/src/nnf/firewall.cpp" "CMakeFiles/nnfv.dir/src/nnf/firewall.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/firewall.cpp.o.d"
  "/root/repo/src/nnf/ipsec.cpp" "CMakeFiles/nnfv.dir/src/nnf/ipsec.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/ipsec.cpp.o.d"
  "/root/repo/src/nnf/marking.cpp" "CMakeFiles/nnfv.dir/src/nnf/marking.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/marking.cpp.o.d"
  "/root/repo/src/nnf/nat.cpp" "CMakeFiles/nnfv.dir/src/nnf/nat.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/nat.cpp.o.d"
  "/root/repo/src/nnf/network_function.cpp" "CMakeFiles/nnfv.dir/src/nnf/network_function.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/network_function.cpp.o.d"
  "/root/repo/src/nnf/plugin.cpp" "CMakeFiles/nnfv.dir/src/nnf/plugin.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/plugin.cpp.o.d"
  "/root/repo/src/nnf/policer.cpp" "CMakeFiles/nnfv.dir/src/nnf/policer.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/policer.cpp.o.d"
  "/root/repo/src/nnf/translator.cpp" "CMakeFiles/nnfv.dir/src/nnf/translator.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/nnf/translator.cpp.o.d"
  "/root/repo/src/packet/buffer.cpp" "CMakeFiles/nnfv.dir/src/packet/buffer.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/packet/buffer.cpp.o.d"
  "/root/repo/src/packet/builder.cpp" "CMakeFiles/nnfv.dir/src/packet/builder.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/packet/builder.cpp.o.d"
  "/root/repo/src/packet/checksum.cpp" "CMakeFiles/nnfv.dir/src/packet/checksum.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/packet/checksum.cpp.o.d"
  "/root/repo/src/packet/flow_key.cpp" "CMakeFiles/nnfv.dir/src/packet/flow_key.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/packet/flow_key.cpp.o.d"
  "/root/repo/src/packet/headers.cpp" "CMakeFiles/nnfv.dir/src/packet/headers.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/packet/headers.cpp.o.d"
  "/root/repo/src/rest/api.cpp" "CMakeFiles/nnfv.dir/src/rest/api.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/rest/api.cpp.o.d"
  "/root/repo/src/rest/http.cpp" "CMakeFiles/nnfv.dir/src/rest/http.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/rest/http.cpp.o.d"
  "/root/repo/src/rest/router.cpp" "CMakeFiles/nnfv.dir/src/rest/router.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/rest/router.cpp.o.d"
  "/root/repo/src/rest/server.cpp" "CMakeFiles/nnfv.dir/src/rest/server.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/rest/server.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/nnfv.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "CMakeFiles/nnfv.dir/src/sim/link.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/sim/link.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/nnfv.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/switch/flow_action.cpp" "CMakeFiles/nnfv.dir/src/switch/flow_action.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/switch/flow_action.cpp.o.d"
  "/root/repo/src/switch/flow_classifier.cpp" "CMakeFiles/nnfv.dir/src/switch/flow_classifier.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/switch/flow_classifier.cpp.o.d"
  "/root/repo/src/switch/flow_match.cpp" "CMakeFiles/nnfv.dir/src/switch/flow_match.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/switch/flow_match.cpp.o.d"
  "/root/repo/src/switch/flow_table.cpp" "CMakeFiles/nnfv.dir/src/switch/flow_table.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/switch/flow_table.cpp.o.d"
  "/root/repo/src/switch/learning_controller.cpp" "CMakeFiles/nnfv.dir/src/switch/learning_controller.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/switch/learning_controller.cpp.o.d"
  "/root/repo/src/switch/lsi.cpp" "CMakeFiles/nnfv.dir/src/switch/lsi.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/switch/lsi.cpp.o.d"
  "/root/repo/src/traffic/measure.cpp" "CMakeFiles/nnfv.dir/src/traffic/measure.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/traffic/measure.cpp.o.d"
  "/root/repo/src/traffic/sink.cpp" "CMakeFiles/nnfv.dir/src/traffic/sink.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/traffic/sink.cpp.o.d"
  "/root/repo/src/traffic/source.cpp" "CMakeFiles/nnfv.dir/src/traffic/source.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/traffic/source.cpp.o.d"
  "/root/repo/src/util/cpuid.cpp" "CMakeFiles/nnfv.dir/src/util/cpuid.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/util/cpuid.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/nnfv.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/nnfv.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/status.cpp" "CMakeFiles/nnfv.dir/src/util/status.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/util/status.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "CMakeFiles/nnfv.dir/src/util/strings.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/util/strings.cpp.o.d"
  "/root/repo/src/virt/backend.cpp" "CMakeFiles/nnfv.dir/src/virt/backend.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/virt/backend.cpp.o.d"
  "/root/repo/src/virt/cost_model.cpp" "CMakeFiles/nnfv.dir/src/virt/cost_model.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/virt/cost_model.cpp.o.d"
  "/root/repo/src/virt/image_store.cpp" "CMakeFiles/nnfv.dir/src/virt/image_store.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/virt/image_store.cpp.o.d"
  "/root/repo/src/virt/ram_model.cpp" "CMakeFiles/nnfv.dir/src/virt/ram_model.cpp.o" "gcc" "CMakeFiles/nnfv.dir/src/virt/ram_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
