# Empty compiler generated dependencies file for nnfv.
# This may be replaced when dependencies are built.
