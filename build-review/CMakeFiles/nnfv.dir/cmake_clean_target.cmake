file(REMOVE_RECURSE
  "libnnfv.a"
)
