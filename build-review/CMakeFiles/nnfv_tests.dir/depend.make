# Empty dependencies file for nnfv_tests.
# This may be replaced when dependencies are built.
