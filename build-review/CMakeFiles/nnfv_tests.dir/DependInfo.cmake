
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptation_burst.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_adaptation_burst.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_adaptation_burst.cpp.o.d"
  "/root/repo/tests/test_compute.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_compute.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_compute.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_core.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_core.cpp.o.d"
  "/root/repo/tests/test_crypto.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_crypto.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_crypto.cpp.o.d"
  "/root/repo/tests/test_crypto_backend.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_crypto_backend.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_crypto_backend.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_json.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_json.cpp.o.d"
  "/root/repo/tests/test_native_driver.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_native_driver.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_native_driver.cpp.o.d"
  "/root/repo/tests/test_netns.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_netns.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_netns.cpp.o.d"
  "/root/repo/tests/test_nffg.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nffg.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nffg.cpp.o.d"
  "/root/repo/tests/test_nnf_bridge.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_bridge.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_bridge.cpp.o.d"
  "/root/repo/tests/test_nnf_dhcp.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_dhcp.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_dhcp.cpp.o.d"
  "/root/repo/tests/test_nnf_firewall.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_firewall.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_firewall.cpp.o.d"
  "/root/repo/tests/test_nnf_ipsec.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_ipsec.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_ipsec.cpp.o.d"
  "/root/repo/tests/test_nnf_nat.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_nat.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_nat.cpp.o.d"
  "/root/repo/tests/test_nnf_plugin.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_plugin.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_plugin.cpp.o.d"
  "/root/repo/tests/test_nnf_policer.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_policer.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_nnf_policer.cpp.o.d"
  "/root/repo/tests/test_orchestrator.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_orchestrator.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_orchestrator.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_packet.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_packet.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_properties.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_properties.cpp.o.d"
  "/root/repo/tests/test_rest.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_rest.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_rest.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_sim.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_sim.cpp.o.d"
  "/root/repo/tests/test_switch.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_switch.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_switch.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_traffic.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_traffic.cpp.o.d"
  "/root/repo/tests/test_translator.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_translator.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_translator.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_util.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_util.cpp.o.d"
  "/root/repo/tests/test_virt.cpp" "CMakeFiles/nnfv_tests.dir/tests/test_virt.cpp.o" "gcc" "CMakeFiles/nnfv_tests.dir/tests/test_virt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/CMakeFiles/nnfv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
