# Empty dependencies file for bench_chain_length.
# This may be replaced when dependencies are built.
