file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_length.dir/bench/bench_chain_length.cpp.o"
  "CMakeFiles/bench_chain_length.dir/bench/bench_chain_length.cpp.o.d"
  "bench_chain_length"
  "bench_chain_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
