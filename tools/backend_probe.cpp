// CI helper: answers "can THIS machine run crypto backend <name>, and
// when forced via NNFV_CRYPTO_BACKEND, did the process actually select
// it?" with distinct exit codes, so the cpu-dispatch workflow matrix can
// tell an honest skip (runner CPU lacks the ISA) from a dispatch bug
// (env asked for a backend, selection silently fell back to another).
//
// Usage:
//   backend_probe <name>           exit 0  <name> is registered + usable here
//                                  exit 3  registered but NOT usable on this
//                                          CPU; prints "skipped: CPU lacks
//                                          <features>" on stdout
//                                  exit 2  unknown backend name
//   backend_probe --active <name>  exit 0  active_backend().name() == <name>
//                                  exit 4  something else was selected
//                                          (prints expected vs actual)
//   backend_probe --list           prints one "<name> usable|unusable" line
//                                  per registered backend; always exit 0
//
// Exit codes are deliberately distinct non-1 values: a plain crash (1,
// 127, signal) can never be confused with a deliberate verdict.

#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>

#include "crypto/backend.hpp"
#include "util/cpuid.hpp"

namespace {

using nnfv::crypto::CryptoBackend;

constexpr const char* kKnown[] = {"portable", "aesni", "vaes", "reference"};

// The CPUID bits each backend's usable() checks (mirrors
// backend_aesni.cpp / backend_vaes.cpp; portable/reference need nothing).
// Kept here, not queried from the backend, because the whole point of the
// message is to say WHY usable() said no on a machine where it did.
std::string missing_features(std::string_view name) {
  const nnfv::util::CpuFeatures& f = nnfv::util::cpu_features();
  std::string missing;
  auto need = [&missing](bool have, const char* feature) {
    if (have) return;
    if (!missing.empty()) missing += ' ';
    missing += feature;
  };
  if (name == "aesni" || name == "vaes") {
    need(f.aesni, "aes");
    need(f.ssse3, "ssse3");
    need(f.sse41, "sse4.1");
  }
  if (name == "vaes") {
    need(f.pclmul, "pclmul");
    need(f.avx2, "avx2");
    need(f.vaes, "vaes");
    need(f.vpclmul, "vpclmulqdq");
  }
#if !defined(__x86_64__) && !defined(__i386__)
  if (missing.empty() && (name == "aesni" || name == "vaes")) {
    missing = "x86 ISA (non-x86 build)";
  }
#endif
  if (missing.empty()) missing = "(unknown feature set)";
  return missing;
}

int probe(std::string_view name) {
  const CryptoBackend* backend = nnfv::crypto::backend_by_name(name);
  if (backend == nullptr) {
    std::fprintf(stderr, "backend_probe: unknown backend '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    return 2;
  }
  if (!backend->usable()) {
    std::printf("skipped: CPU lacks %s (backend '%.*s' unusable; cpu: %s)\n",
                missing_features(name).c_str(),
                static_cast<int>(name.size()), name.data(),
                nnfv::util::cpu_feature_string().c_str());
    return 3;
  }
  std::printf("usable: backend '%.*s' runs on this CPU (cpu: %s)\n",
              static_cast<int>(name.size()), name.data(),
              nnfv::util::cpu_feature_string().c_str());
  return 0;
}

int check_active(std::string_view expected) {
  const std::string_view actual = nnfv::crypto::active_backend().name();
  if (actual != expected) {
    std::printf("MISMATCH: expected active backend '%.*s', selected '%.*s'"
                " (NNFV_CRYPTO_BACKEND=%s)\n",
                static_cast<int>(expected.size()), expected.data(),
                static_cast<int>(actual.size()), actual.data(),
                std::getenv("NNFV_CRYPTO_BACKEND")
                    ? std::getenv("NNFV_CRYPTO_BACKEND")
                    : "(unset)");
    return 4;
  }
  std::printf("active: '%.*s'\n", static_cast<int>(actual.size()),
              actual.data());
  return 0;
}

int list() {
  std::printf("cpu: %s\n", nnfv::util::cpu_feature_string().c_str());
  for (const char* name : kKnown) {
    const CryptoBackend* backend = nnfv::crypto::backend_by_name(name);
    std::printf("%-10s %s\n", name,
                backend == nullptr       ? "UNREGISTERED"
                : backend->usable()      ? "usable"
                                         : "unusable");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--list") == 0) return list();
  if (argc == 3 && std::strcmp(argv[1], "--active") == 0) {
    return check_active(argv[2]);
  }
  if (argc == 2 && argv[1][0] != '-') return probe(argv[1]);
  std::fprintf(stderr,
               "usage: backend_probe <name> | --active <name> | --list\n");
  return 2;
}
