// NativeDriver tests — the paper's contribution: plugin activation, netns
// isolation, instance limits, sharing via contexts, marking + adaptation
// layer wiring, and resource accounting.
#include <gtest/gtest.h>

#include "compute/native_driver.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"

namespace nnfv::compute {
namespace {

packet::PacketBuffer udp_frame(const std::string& src_ip,
                               std::uint16_t dport = 53) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.ip_src = *packet::Ipv4Address::parse(src_ip);
  spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  spec.src_port = 1234;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(64, 1);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

class NativeDriverFixture : public ::testing::Test {
 protected:
  NativeDriverFixture()
      : catalog_(nnf::NnfCatalog::with_builtin_plugins()),
        ram_(1024ULL * virt::kMiB),
        lsi_a_(1, "LSI-gA"),
        lsi_b_(2, "LSI-gB") {
    env_.simulator = &simulator_;
    env_.catalog = &catalog_;
    env_.netns = &netns_;
    env_.marks = &marks_;
    env_.ram = &ram_;
    driver_ = std::make_unique<NativeDriver>(env_);
  }

  NfDeploySpec spec_for(const std::string& graph, const std::string& nf,
                        const std::string& type) {
    NfDeploySpec spec;
    spec.graph_id = graph;
    spec.nf_id = nf;
    spec.functional_type = type;
    spec.num_ports = 2;
    return spec;
  }

  sim::Simulator simulator_;
  nnf::NnfCatalog catalog_;
  netns::NamespaceRegistry netns_;
  nnf::MarkAllocator marks_;
  virt::RamLedger ram_;
  nfswitch::Lsi lsi_a_;
  nfswitch::Lsi lsi_b_;
  NativeDriverEnv env_;
  std::unique_ptr<NativeDriver> driver_;
};

TEST_F(NativeDriverFixture, DeployCreatesNamespaceAndPorts) {
  auto deployed = driver_->deploy(spec_for("gA", "vpn", "ipsec"), lsi_a_);
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_EQ(deployed->backend, virt::BackendKind::kNative);
  EXPECT_FALSE(deployed->reused_shared_instance);
  EXPECT_EQ(deployed->context, nnf::kDefaultContext);
  EXPECT_EQ(deployed->ports.size(), 2u);
  // Table 1 native row: RAM ~19.4 MB, image 5 MB, no backend overhead.
  EXPECT_NEAR(static_cast<double>(deployed->ram_bytes) / (1024 * 1024),
              19.4, 0.1);
  EXPECT_EQ(deployed->image_bytes, 5ULL * 1024 * 1024);

  // A namespace was created with veth ends per port.
  EXPECT_EQ(netns_.count(), 2u);  // root + NNF namespace
  EXPECT_TRUE(netns_.exists("ns-ipsec-1"));
  auto ifs = netns_.interfaces_in(netns_.id_of("ns-ipsec-1").value());
  EXPECT_EQ(ifs.size(), 2u);

  EXPECT_EQ(driver_->running_instances("ipsec"), 1u);
  EXPECT_EQ(catalog_.status_of("ipsec")->running_instances, 1u);
  EXPECT_TRUE(catalog_.status_of("ipsec")->graphs.contains("gA"));
}

TEST_F(NativeDriverFixture, SecondGraphSharesIpsecInstance) {
  auto first = driver_->deploy(spec_for("gA", "vpn", "ipsec"), lsi_a_);
  ASSERT_TRUE(first.is_ok());
  auto second = driver_->deploy(spec_for("gB", "vpn", "ipsec"), lsi_b_);
  ASSERT_TRUE(second.is_ok());

  EXPECT_TRUE(second->reused_shared_instance);
  EXPECT_EQ(second->instance, first->instance);  // same process
  EXPECT_NE(second->context, first->context);    // isolated internal path
  EXPECT_EQ(driver_->running_instances("ipsec"), 1u);
  // Marginal RAM for the second graph is a context, not a process.
  EXPECT_LT(second->ram_bytes, first->ram_bytes / 10);
  // Sharing is much faster to activate than booting.
  EXPECT_LT(second->boot_time, first->boot_time);
}

TEST_F(NativeDriverFixture, NonSharableBridgeGetsNewInstances) {
  auto first = driver_->deploy(spec_for("gA", "br", "bridge"), lsi_a_);
  ASSERT_TRUE(first.is_ok());
  auto second = driver_->deploy(spec_for("gB", "br", "bridge"), lsi_b_);
  ASSERT_TRUE(second.is_ok());
  EXPECT_FALSE(second->reused_shared_instance);
  EXPECT_NE(second->instance, first->instance);
  EXPECT_EQ(driver_->running_instances("bridge"), 2u);
}

TEST_F(NativeDriverFixture, CanDeployHonorsLimitsAndSharing) {
  EXPECT_TRUE(driver_->can_deploy("ipsec"));
  EXPECT_FALSE(driver_->can_deploy("ghost"));
  auto deployed = driver_->deploy(spec_for("gA", "vpn", "ipsec"), lsi_a_);
  ASSERT_TRUE(deployed.is_ok());
  // Instance limit reached (max 1) but sharable -> still deployable.
  EXPECT_TRUE(driver_->can_deploy("ipsec"));
}

TEST_F(NativeDriverFixture, DuplicateDeploymentRejected) {
  ASSERT_TRUE(driver_->deploy(spec_for("gA", "vpn", "ipsec"), lsi_a_).is_ok());
  auto dup = driver_->deploy(spec_for("gA", "vpn", "ipsec"), lsi_a_);
  EXPECT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), util::ErrorCode::kAlreadyExists);
}

TEST_F(NativeDriverFixture, UndeployLastContextDestroysInstance) {
  auto first = driver_->deploy(spec_for("gA", "vpn", "ipsec"), lsi_a_);
  auto second = driver_->deploy(spec_for("gB", "vpn", "ipsec"), lsi_b_);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  const std::uint64_t ram_with_both = ram_.used();

  ASSERT_TRUE(driver_->undeploy(second.value()).is_ok());
  EXPECT_EQ(driver_->running_instances("ipsec"), 1u);  // still serving gA
  EXPECT_LT(ram_.used(), ram_with_both);
  EXPECT_FALSE(catalog_.status_of("ipsec")->graphs.contains("gB"));

  ASSERT_TRUE(driver_->undeploy(first.value()).is_ok());
  EXPECT_EQ(driver_->running_instances("ipsec"), 0u);
  EXPECT_EQ(ram_.used(), 0u);
  EXPECT_FALSE(netns_.exists("ns-ipsec-1"));  // namespace torn down
  EXPECT_EQ(catalog_.status_of("ipsec")->running_instances, 0u);
  EXPECT_EQ(driver_->total_instances(), 0u);
}

TEST_F(NativeDriverFixture, SingleInterfaceNnfUsesMarks) {
  auto deployed = driver_->deploy(spec_for("gA", "nat", "nat"), lsi_a_);
  ASSERT_TRUE(deployed.is_ok());
  // Every logical port got a mark from the shared-path pool.
  ASSERT_EQ(deployed->ports.size(), 2u);
  EXPECT_TRUE(deployed->ports[0].mark.has_value());
  EXPECT_TRUE(deployed->ports[1].mark.has_value());
  EXPECT_NE(*deployed->ports[0].mark, *deployed->ports[1].mark);
  EXPECT_EQ(marks_.in_use(), 2u);
}

TEST_F(NativeDriverFixture, SingleInterfaceDatapathTranslates) {
  NfDeploySpec spec = spec_for("gA", "nat", "nat");
  spec.config["external_ip"] = "203.0.113.1";
  auto deployed = driver_->deploy(spec, lsi_a_);
  ASSERT_TRUE(deployed.is_ok());

  // Steer: ext-in -> NAT inside port; NAT outside port -> ext-out.
  const auto ext_in = lsi_a_.add_port("ext-in").value();
  const auto ext_out = lsi_a_.add_port("ext-out").value();
  std::vector<packet::PacketBuffer> delivered;
  (void)lsi_a_.set_port_peer(ext_out, [&](packet::PacketBuffer&& frame) {
    delivered.push_back(std::move(frame));
  });
  lsi_a_.flow_table().add(
      10, nfswitch::match_in_port(ext_in),
      {nfswitch::FlowAction::output(deployed->ports[0].lsi_port)});
  lsi_a_.flow_table().add(
      10, nfswitch::match_in_port(deployed->ports[1].lsi_port),
      {nfswitch::FlowAction::output(ext_out)});

  lsi_a_.receive(ext_in, udp_frame("192.168.1.10"));
  simulator_.run();

  ASSERT_EQ(delivered.size(), 1u);
  // The frame came back untagged (marks are internal mechanics)...
  auto eth = packet::parse_ethernet(delivered[0].data());
  EXPECT_FALSE(eth->vlan.has_value());
  // ...and translated by the NAT.
  auto tuple = packet::extract_five_tuple(
      delivered[0].data().subspan(eth->wire_size()));
  EXPECT_EQ(tuple->src_ip.to_string(), "203.0.113.1");
}

TEST_F(NativeDriverFixture, SharedNatKeepsGraphTrafficApart) {
  // Two graphs share the NAT (single instance) with different external IPs.
  NfDeploySpec spec_a = spec_for("gA", "nat", "nat");
  spec_a.config["external_ip"] = "203.0.113.1";
  auto dep_a = driver_->deploy(spec_a, lsi_a_);
  ASSERT_TRUE(dep_a.is_ok());
  NfDeploySpec spec_b = spec_for("gB", "nat", "nat");
  spec_b.config["external_ip"] = "203.0.113.2";
  auto dep_b = driver_->deploy(spec_b, lsi_b_);
  ASSERT_TRUE(dep_b.is_ok());
  EXPECT_TRUE(dep_b->reused_shared_instance);
  EXPECT_EQ(driver_->running_instances("nat"), 1u);

  auto wire = [&](nfswitch::Lsi& lsi, const DeployedNf& dep,
                  std::vector<packet::PacketBuffer>& sink) {
    const auto ext_in = lsi.add_port("ext-in").value();
    const auto ext_out = lsi.add_port("ext-out").value();
    (void)lsi.set_port_peer(ext_out, [&sink](packet::PacketBuffer&& frame) {
      sink.push_back(std::move(frame));
    });
    lsi.flow_table().add(
        10, nfswitch::match_in_port(ext_in),
        {nfswitch::FlowAction::output(dep.ports[0].lsi_port)});
    lsi.flow_table().add(
        10, nfswitch::match_in_port(dep.ports[1].lsi_port),
        {nfswitch::FlowAction::output(ext_out)});
    return ext_in;
  };
  std::vector<packet::PacketBuffer> out_a;
  std::vector<packet::PacketBuffer> out_b;
  const auto in_a = wire(lsi_a_, dep_a.value(), out_a);
  const auto in_b = wire(lsi_b_, dep_b.value(), out_b);

  lsi_a_.receive(in_a, udp_frame("192.168.1.10"));
  lsi_b_.receive(in_b, udp_frame("192.168.1.10"));
  simulator_.run();

  ASSERT_EQ(out_a.size(), 1u);
  ASSERT_EQ(out_b.size(), 1u);
  auto src_of = [](const packet::PacketBuffer& frame) {
    auto eth = packet::parse_ethernet(frame.data());
    auto tuple = packet::extract_five_tuple(
        frame.data().subspan(eth->wire_size()));
    return tuple->src_ip.to_string();
  };
  // Each graph's traffic got its own context's external IP.
  EXPECT_EQ(src_of(out_a[0]), "203.0.113.1");
  EXPECT_EQ(src_of(out_b[0]), "203.0.113.2");
}

TEST_F(NativeDriverFixture, UpdateAppliesPerContext) {
  NfDeploySpec spec = spec_for("gA", "nat", "nat");
  spec.config["external_ip"] = "203.0.113.1";
  auto deployed = driver_->deploy(spec, lsi_a_);
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_TRUE(driver_
                  ->update(deployed.value(),
                           {{"external_ip", "203.0.113.200"}})
                  .is_ok());
  EXPECT_FALSE(driver_->update(deployed.value(), {{"bad", "x"}}).is_ok());
  DeployedNf ghost = deployed.value();
  ghost.graph_id = "none";
  EXPECT_FALSE(driver_->update(ghost, {}).is_ok());
}

TEST_F(NativeDriverFixture, RamExhaustionFailsCleanly) {
  virt::RamLedger tiny(1 * virt::kMiB);
  env_.ram = &tiny;
  NativeDriver driver(env_);
  auto deployed = driver.deploy(spec_for("gA", "vpn", "ipsec"), lsi_a_);
  ASSERT_FALSE(deployed.is_ok());
  EXPECT_EQ(deployed.status().code(), util::ErrorCode::kResourceExhausted);
  EXPECT_EQ(netns_.count(), 1u);      // namespace rolled back
  EXPECT_EQ(tiny.used(), 0u);
  EXPECT_EQ(driver.running_instances("ipsec"), 0u);
}

TEST_F(NativeDriverFixture, BadConfigRollsBackSharedContext) {
  NfDeploySpec good = spec_for("gA", "nat", "nat");
  good.config["external_ip"] = "203.0.113.1";
  ASSERT_TRUE(driver_->deploy(good, lsi_a_).is_ok());
  NfDeploySpec bad = spec_for("gB", "nat", "nat");
  bad.config["external_ip"] = "bogus";
  auto deployed = driver_->deploy(bad, lsi_b_);
  EXPECT_FALSE(deployed.is_ok());
  // The shared instance survives with one context; a retry works.
  EXPECT_EQ(driver_->running_instances("nat"), 1u);
  NfDeploySpec retry = spec_for("gB", "nat", "nat");
  retry.config["external_ip"] = "203.0.113.2";
  EXPECT_TRUE(driver_->deploy(retry, lsi_b_).is_ok());
}

TEST_F(NativeDriverFixture, UndeployUnknownFails) {
  DeployedNf ghost;
  ghost.graph_id = "gX";
  ghost.nf_id = "none";
  EXPECT_FALSE(driver_->undeploy(ghost).is_ok());
}

}  // namespace
}  // namespace nnfv::compute
