// Property-style sweeps over randomized inputs: invariants that must hold
// for *every* packet/flow/mutation, not just the examples in the unit
// tests. Seeds are fixed, so failures reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "nnf/ipsec.hpp"
#include "nnf/marking.hpp"
#include "nnf/nat.hpp"
#include "packet/builder.hpp"
#include "packet/buffer.hpp"
#include "packet/checksum.hpp"
#include "packet/flow_key.hpp"
#include "switch/flow_table.hpp"
#include "util/rng.hpp"

namespace nnfv {
namespace {

// ---------------------------------------------------------------------------
// PacketBuffer vs a reference model
// ---------------------------------------------------------------------------

class BufferModelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferModelSweep, RandomOpsMatchVectorModel) {
  util::Rng rng(GetParam());
  auto initial = rng.bytes(rng.uniform(0, 64));
  packet::PacketBuffer buffer =
      packet::PacketBuffer::copy_of(initial, /*headroom=*/8);
  std::vector<std::uint8_t> model = initial;

  for (int op = 0; op < 200; ++op) {
    switch (rng.uniform(0, 3)) {
      case 0: {  // push_front
        const std::size_t n = rng.uniform(1, 24);
        auto bytes = rng.bytes(n);
        auto span = buffer.push_front(n);
        std::copy(bytes.begin(), bytes.end(), span.begin());
        model.insert(model.begin(), bytes.begin(), bytes.end());
        break;
      }
      case 1: {  // pull_front
        if (model.empty()) break;
        const std::size_t n = rng.uniform(1, model.size());
        buffer.pull_front(n);
        model.erase(model.begin(),
                    model.begin() + static_cast<std::ptrdiff_t>(n));
        break;
      }
      case 2: {  // push_back
        const std::size_t n = rng.uniform(1, 24);
        auto bytes = rng.bytes(n);
        auto span = buffer.push_back(n);
        std::copy(bytes.begin(), bytes.end(), span.begin());
        model.insert(model.end(), bytes.begin(), bytes.end());
        break;
      }
      case 3: {  // trim
        if (model.empty()) break;
        const std::size_t n = rng.uniform(0, model.size());
        buffer.trim(n);
        model.resize(n);
        break;
      }
    }
    ASSERT_EQ(buffer.size(), model.size()) << "op " << op;
    ASSERT_TRUE(std::equal(model.begin(), model.end(),
                           buffer.data().begin()))
        << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferModelSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Checksums: any single-bit flip must be detected
// ---------------------------------------------------------------------------

class ChecksumSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChecksumSweep, SingleBitFlipsDetected) {
  util::Rng rng(GetParam());
  auto data = rng.bytes(64);
  const std::uint16_t sum = packet::internet_checksum(data);
  // Verify: data + stored checksum folds to zero.
  auto with_sum = data;
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum));
  ASSERT_EQ(packet::internet_checksum(with_sum), 0);
  // Any single-bit corruption breaks it (one's complement detects all
  // single-bit errors).
  for (int trial = 0; trial < 40; ++trial) {
    auto corrupted = with_sum;
    const std::size_t byte = rng.uniform(0, corrupted.size() - 1);
    const int bit = static_cast<int>(rng.uniform(0, 7));
    corrupted[byte] = static_cast<std::uint8_t>(corrupted[byte] ^ (1 << bit));
    EXPECT_NE(packet::internet_checksum(corrupted), 0)
        << "byte " << byte << " bit " << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// NAT: translation invariants over random flows
// ---------------------------------------------------------------------------

class NatSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NatSweep, RoundTripRestoresOriginalFiveTuple) {
  util::Rng rng(GetParam());
  nnf::Nat nat;
  ASSERT_TRUE(
      nat.configure(nnf::kDefaultContext, {{"external_ip", "203.0.113.1"}})
          .is_ok());
  std::set<std::uint16_t> external_ports;

  for (int flow = 0; flow < 50; ++flow) {
    const packet::Ipv4Address src{
        0x0A000000u | static_cast<std::uint32_t>(rng.uniform(1, 0xFFFF))};
    const packet::Ipv4Address dst{
        0x08080000u | static_cast<std::uint32_t>(rng.uniform(1, 0xFFFF))};
    const auto sport = static_cast<std::uint16_t>(rng.uniform(1024, 65535));
    const auto dport = static_cast<std::uint16_t>(rng.uniform(1, 65535));

    packet::UdpFrameSpec spec;
    spec.ip_src = src;
    spec.ip_dst = dst;
    spec.src_port = sport;
    spec.dst_port = dport;
    auto out = nat.process(nnf::kDefaultContext, 0,
                           static_cast<sim::SimTime>(flow),
                           packet::build_udp_frame(spec));
    ASSERT_EQ(out.size(), 1u);
    auto out_tuple =
        packet::extract_five_tuple(out[0].frame.data().subspan(14));
    ASSERT_TRUE(out_tuple.is_ok());
    // Invariant 1: destination untouched, source rewritten to external.
    EXPECT_EQ(out_tuple->dst_ip, dst);
    EXPECT_EQ(out_tuple->dst_port, dport);
    EXPECT_EQ(out_tuple->src_ip.to_string(), "203.0.113.1");
    // Invariant 2: external ports unique across active flows.
    EXPECT_TRUE(external_ports.insert(out_tuple->src_port).second);

    // Invariant 3: the reply is restored exactly.
    packet::UdpFrameSpec reply;
    reply.ip_src = dst;
    reply.ip_dst = *packet::Ipv4Address::parse("203.0.113.1");
    reply.src_port = dport;
    reply.dst_port = out_tuple->src_port;
    auto back = nat.process(nnf::kDefaultContext, 1,
                            static_cast<sim::SimTime>(flow),
                            packet::build_udp_frame(reply));
    ASSERT_EQ(back.size(), 1u);
    auto back_tuple =
        packet::extract_five_tuple(back[0].frame.data().subspan(14));
    EXPECT_EQ(back_tuple->dst_ip, src);
    EXPECT_EQ(back_tuple->dst_port, sport);
    EXPECT_EQ(back_tuple->src_ip, dst);

    // Invariant 4: checksums remain valid both ways.
    for (const auto* frame : {&out[0].frame, &back[0].frame}) {
      auto ip = packet::parse_ipv4(frame->data().subspan(14));
      ASSERT_TRUE(ip.is_ok());
      EXPECT_EQ(packet::internet_checksum(
                    frame->data().subspan(14, ip->header_size())),
                0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NatSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// IPsec: random corruption anywhere in the ESP packet must never yield a
// decrypted packet (authentication covers everything after the outer IP).
// ---------------------------------------------------------------------------

class IpsecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IpsecFuzz, CorruptedPacketsNeverDecrypt) {
  util::Rng rng(GetParam());
  nnf::IpsecEndpoint initiator;
  nnf::IpsecEndpoint responder;
  const nnf::NfConfig base = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  nnf::NfConfig resp = base;
  resp["local_ip"] = "198.51.100.2";
  resp["peer_ip"] = "198.51.100.1";
  resp["spi_out"] = "2002";
  resp["spi_in"] = "1001";
  ASSERT_TRUE(initiator.configure(nnf::kDefaultContext, base).is_ok());
  ASSERT_TRUE(responder.configure(nnf::kDefaultContext, resp).is_ok());

  for (int trial = 0; trial < 30; ++trial) {
    packet::UdpFrameSpec spec;
    spec.ip_src = *packet::Ipv4Address::parse("192.168.1.2");
    spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.9");
    auto payload = rng.bytes(rng.uniform(0, 512));
    spec.payload = payload;
    auto enc = initiator.process(nnf::kDefaultContext, 0, 0,
                                 packet::build_udp_frame(spec));
    ASSERT_EQ(enc.size(), 1u);

    // Corrupt 1..4 random bytes anywhere past the outer IP header.
    packet::PacketBuffer corrupted = packet::PacketBuffer::copy_of(enc[0].frame.data());
    const int flips = static_cast<int>(rng.uniform(1, 4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform(34, corrupted.size() - 1);
      corrupted[pos] = static_cast<std::uint8_t>(
          corrupted[pos] ^ (1 + rng.uniform(0, 254)));
    }
    auto dec = responder.process(nnf::kDefaultContext, 1, 0,
                                 std::move(corrupted));
    EXPECT_TRUE(dec.empty()) << "trial " << trial;

    // The untouched packet still decrypts (responder state not poisoned).
    auto ok = responder.process(nnf::kDefaultContext, 1, 0,
                                std::move(enc[0].frame));
    EXPECT_EQ(ok.size(), 1u) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpsecFuzz,
                         ::testing::Range<std::uint64_t>(1, 5));

// ---------------------------------------------------------------------------
// Flow table: shadowing and removal invariants under random rule sets
// ---------------------------------------------------------------------------

class FlowTableSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableSweep, LookupAlwaysReturnsHighestMatchingPriority) {
  util::Rng rng(GetParam());
  nfswitch::FlowTable table;
  struct RuleRef {
    nfswitch::FlowEntryId id;
    std::uint16_t priority;
    std::optional<std::uint16_t> dport;  // nullopt = wildcard
  };
  std::vector<RuleRef> rules;
  for (int i = 0; i < 60; ++i) {
    nfswitch::FlowMatch match;
    std::optional<std::uint16_t> dport;
    if (rng.chance(0.7)) {
      dport = static_cast<std::uint16_t>(rng.uniform(1, 16));
      match.tp_dst = dport;
    }
    const auto priority = static_cast<std::uint16_t>(rng.uniform(1, 8));
    const auto id = table.add(priority, match, {});
    rules.push_back({id, priority, dport});
  }

  for (int probe = 0; probe < 100; ++probe) {
    const auto dport = static_cast<std::uint16_t>(rng.uniform(1, 16));
    packet::UdpFrameSpec spec;
    spec.ip_src = *packet::Ipv4Address::parse("1.1.1.1");
    spec.ip_dst = *packet::Ipv4Address::parse("2.2.2.2");
    spec.dst_port = dport;
    auto frame = packet::build_udp_frame(spec);
    auto fields = packet::extract_flow_fields(frame.data());
    nfswitch::FlowContext ctx{0, fields.value()};
    const nfswitch::FlowEntry* hit = table.peek(ctx);
    ASSERT_NE(hit, nullptr);
    // Reference: best priority among matching rules; at equal priority the
    // earliest-added (lowest id) wins.
    const RuleRef* best = nullptr;
    for (const RuleRef& rule : rules) {
      if (rule.dport.has_value() && *rule.dport != dport) continue;
      if (best == nullptr || rule.priority > best->priority ||
          (rule.priority == best->priority && rule.id < best->id)) {
        best = &rule;
      }
    }
    ASSERT_NE(best, nullptr);
    EXPECT_EQ(hit->id, best->id) << "dport " << dport;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowTableSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------------
// Mark allocator: uniqueness and reuse under churn
// ---------------------------------------------------------------------------

TEST(MarkAllocatorChurn, NoDoubleAllocationUnderRandomChurn) {
  util::Rng rng(7);
  nnf::MarkAllocator allocator(3000, 3063);  // 64 marks
  std::map<std::string, nnf::Mark> live;
  for (int op = 0; op < 2000; ++op) {
    if (rng.chance(0.6) || live.empty()) {
      const std::string owner = "o" + std::to_string(rng.uniform(0, 99));
      auto mark = allocator.allocate(owner);
      if (live.contains(owner)) {
        // Idempotent re-allocation.
        ASSERT_TRUE(mark.is_ok());
        EXPECT_EQ(mark.value(), live[owner]);
      } else if (live.size() >= 64) {
        EXPECT_FALSE(mark.is_ok());
      } else if (mark.is_ok()) {
        // Uniqueness among live marks.
        for (const auto& [other, m] : live) {
          ASSERT_NE(mark.value(), m) << owner << " vs " << other;
        }
        live[owner] = mark.value();
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.uniform(0, live.size() - 1)));
      EXPECT_TRUE(allocator.release(it->first).is_ok());
      live.erase(it);
    }
    ASSERT_EQ(allocator.in_use(), live.size());
  }
}

// ---------------------------------------------------------------------------
// ESP sequence-number space: the replay window accepts each fresh packet
// exactly once for any delivery order.
// ---------------------------------------------------------------------------

class ReplayOrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayOrderSweep, AnyPermutationDeliveredExactlyOnce) {
  util::Rng rng(GetParam());
  nnf::IpsecEndpoint initiator;
  nnf::IpsecEndpoint responder;
  const nnf::NfConfig init = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  nnf::NfConfig resp = init;
  resp["local_ip"] = "198.51.100.2";
  resp["peer_ip"] = "198.51.100.1";
  resp["spi_out"] = "2002";
  resp["spi_in"] = "1001";
  ASSERT_TRUE(initiator.configure(0, init).is_ok());
  ASSERT_TRUE(responder.configure(0, resp).is_ok());

  // 32 packets, shuffled within the 64-slot window, each duplicated once.
  std::vector<packet::PacketBuffer> wire;
  for (int i = 0; i < 32; ++i) {
    packet::UdpFrameSpec spec;
    spec.ip_src = *packet::Ipv4Address::parse("192.168.1.2");
    spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.9");
    spec.src_port = static_cast<std::uint16_t>(1000 + i);
    auto enc = initiator.process(0, 0, 0, packet::build_udp_frame(spec));
    wire.push_back(std::move(enc[0].frame));
    wire.push_back(wire.back().copy());  // duplicate
  }
  // Fisher-Yates with our RNG.
  for (std::size_t i = wire.size() - 1; i > 0; --i) {
    const std::size_t j = rng.uniform(0, i);
    std::swap(wire[i], wire[j]);
  }
  std::size_t delivered = 0;
  for (auto& frame : wire) {
    delivered += responder.process(0, 1, 0, std::move(frame)).size();
  }
  EXPECT_EQ(delivered, 32u);
  EXPECT_EQ(responder.stats().replay_drops, 32u);
  EXPECT_EQ(responder.stats().auth_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayOrderSweep,
                         ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace nnfv

// -----------------------------------------------------------------------
// HTTP parser fuzz: random bytes must never crash, and never be accepted
// as a complete request; random mutations of a valid request must either
// parse or error, never hang in kNeedMore once the byte budget exceeds
// the message.
// -----------------------------------------------------------------------
#include "rest/http.hpp"

namespace nnfv {
namespace {

class HttpFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HttpFuzz, RandomBytesNeverAccepted) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    rest::RequestParser parser;
    auto bytes = rng.bytes(rng.uniform(1, 512));
    const auto state = parser.feed(
        {reinterpret_cast<const char*>(bytes.data()), bytes.size()});
    // Random bytes may error or need more — but must never be a complete
    // valid request (the chance of randomly generating one is ~0; if it
    // happens the seed is telling us the parser is too lax).
    EXPECT_NE(state, rest::RequestParser::State::kComplete);
  }
}

TEST_P(HttpFuzz, MutatedValidRequestTerminates) {
  util::Rng rng(GetParam() + 1000);
  const std::string valid =
      "PUT /NF-FG/g1 HTTP/1.1\r\nContent-Length: 4\r\nHost: x\r\n\r\nbody";
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = valid;
    const int flips = static_cast<int>(rng.uniform(1, 3));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.uniform(0, mutated.size() - 1);
      mutated[pos] = static_cast<char>(rng.uniform(1, 255));
    }
    rest::RequestParser parser;
    const auto state = parser.feed(mutated);
    // Whatever happened, feeding the parser must terminate in a definite
    // state, and a "complete" request must echo a parseable body size.
    if (state == rest::RequestParser::State::kComplete) {
      EXPECT_LE(parser.request().body.size(), mutated.size());
    } else {
      EXPECT_TRUE(state == rest::RequestParser::State::kError ||
                  state == rest::RequestParser::State::kNeedMore);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpFuzz,
                         ::testing::Range<std::uint64_t>(1, 5));

}  // namespace
}  // namespace nnfv

// -----------------------------------------------------------------------
// Orchestrator candidate fall-through under native-resource pressure:
// when the NNF driver cannot take another deployment (mark pool
// exhausted), the scheduler's next candidate (docker) must be used and
// the graph still deploys.
// -----------------------------------------------------------------------
#include "core/node.hpp"
#include "nffg/nffg.hpp"

namespace nnfv {
namespace {

TEST(FallthroughInjection, MarkExhaustionFallsBackToDocker) {
  core::UniversalNode node;
  // Starve the shared-path mark pool: NAT needs 2 marks per deployment.
  while (node.marks().allocate("hog" + std::to_string(node.marks().in_use()))
             .is_ok()) {
  }
  nffg::NfFg graph;
  graph.id = "pressed";
  graph.add_nf("nat", "nat").config["external_ip"] = "203.0.113.1";
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("nat", 0));
  graph.connect("r2", nffg::nf_port("nat", 1), nffg::endpoint_ref("wan"));
  auto report = node.orchestrator().deploy(graph);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  // Native was ranked first but failed; docker took over transparently.
  EXPECT_EQ(report->placements[0].backend, virt::BackendKind::kDocker);
  // And the datapath works.
  int wan_rx = 0;
  (void)node.set_egress("eth1",
                        [&](packet::PacketBuffer&&) { ++wan_rx; });
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.2");
  spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  spec.dst_port = 53;
  (void)node.inject("eth0", packet::build_udp_frame(spec));
  node.simulator().run();
  EXPECT_EQ(wan_rx, 1);
}

}  // namespace
}  // namespace nnfv
