// CryptoBackend dispatch tests: registry/selection semantics, published
// vectors re-run on every usable backend, and the bit-identity cross-check
// (every backend vs the byte-wise reference oracle) that makes backend
// selection a pure performance choice.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "util/byteorder.hpp"
#include "util/cpuid.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nnfv::crypto {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(util::hex_decode(hex, out));
  return out;
}

TEST(CryptoBackend, RegistryNamesAndLookup) {
  for (const char* name : {"portable", "aesni", "vaes", "reference"}) {
    ASSERT_NE(backend_by_name(name), nullptr) << name;
    EXPECT_EQ(backend_by_name(name)->name(), name);
  }
  EXPECT_EQ(backend_by_name("no-such-backend"), nullptr);
}

TEST(CryptoBackend, PortableAndReferenceAlwaysUsable) {
  EXPECT_TRUE(backend_by_name("portable")->usable());
  EXPECT_TRUE(backend_by_name("reference")->usable());
  // At minimum the two software backends are selectable everywhere.
  EXPECT_GE(usable_backends().size(), 2u);
}

TEST(CryptoBackend, AesniUsableMatchesCpuid) {
  const util::CpuFeatures& f = util::cpu_features();
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_EQ(backend_by_name("aesni")->usable(),
            f.aesni && f.ssse3 && f.sse41);
#else
  EXPECT_FALSE(backend_by_name("aesni")->usable());
#endif
}

TEST(CryptoBackend, VaesUsableMatchesCpuid) {
  const util::CpuFeatures& f = util::cpu_features();
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_EQ(backend_by_name("vaes")->usable(),
            f.vaes && f.vpclmul && f.avx2 && f.aesni && f.pclmul &&
                f.ssse3 && f.sse41);
#else
  EXPECT_FALSE(backend_by_name("vaes")->usable());
#endif
}

TEST(CryptoBackend, ActiveBackendIsUsableAndOverrideRestores) {
  const CryptoBackend& before = active_backend();
  EXPECT_TRUE(before.usable());
  {
    ScopedBackendOverride override_scope(
        detail::reference_backend());
    EXPECT_EQ(active_backend().name(), "reference");
  }
  EXPECT_EQ(&active_backend(), &before);
}

// ---------------------------------------------------------------------------
// Published vectors, re-run per backend (not just whichever is active).
// ---------------------------------------------------------------------------

class PerBackend : public ::testing::TestWithParam<const char*> {
 protected:
  const CryptoBackend& backend() { return *backend_by_name(GetParam()); }
};

#define NNFV_SKIP_IF_UNUSABLE()                              \
  if (!backend().usable()) {                                 \
    GTEST_SKIP() << GetParam() << " not usable on this CPU"; \
  }

TEST_P(PerBackend, Fips197SingleBlockAllKeySizes) {
  NNFV_SKIP_IF_UNUSABLE();
  const struct {
    std::string key;
    std::string cipher;
  } cases[] = {
      {"000102030405060708090a0b0c0d0e0f",
       "69c4e0d86a7b0430d8cdb78070b4c55a"},
      {"000102030405060708090a0b0c0d0e0f1011121314151617",
       "dda97ca4864cdfe06eaf70a0ec0d7191"},
      {"000102030405060708090a0b0c0d0e0f"
       "101112131415161718191a1b1c1d1e1f",
       "8ea2b7ca516745bfeafc49904b496089"},
  };
  const auto plain = from_hex("00112233445566778899aabbccddeeff");
  for (const auto& c : cases) {
    auto aes = Aes::create(from_hex(c.key));
    ASSERT_TRUE(aes.is_ok());
    std::uint8_t cipher[16];
    backend().aes_encrypt_blocks(*aes, plain.data(), cipher, 1);
    EXPECT_EQ(util::hex_encode({cipher, 16}), c.cipher);
    std::uint8_t back[16];
    backend().aes_decrypt_blocks(*aes, cipher, back, 1);
    EXPECT_EQ(util::hex_encode({back, 16}), util::hex_encode(plain));
  }
}

TEST_P(PerBackend, Sp80038aCbcVector) {
  NNFV_SKIP_IF_UNUSABLE();
  // NIST SP 800-38A F.2.1/F.2.2 (CBC-AES128), all four blocks.
  auto aes = Aes::create(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  ASSERT_TRUE(aes.is_ok());
  const auto iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const std::string expected =
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7";
  std::vector<std::uint8_t> cipher(plain.size());
  backend().cbc_encrypt(*aes, iv.data(), plain.data(), cipher.data(),
                        plain.size());
  EXPECT_EQ(util::hex_encode(cipher), expected);
  std::vector<std::uint8_t> back(plain.size());
  backend().cbc_decrypt(*aes, iv.data(), cipher.data(), back.data(),
                        cipher.size());
  EXPECT_EQ(util::hex_encode(back), util::hex_encode(plain));
}

TEST_P(PerBackend, Sha256KnownAnswers) {
  NNFV_SKIP_IF_UNUSABLE();
  ScopedBackendOverride override_scope(backend());
  const std::string abc = "abc";
  EXPECT_EQ(util::hex_encode(Sha256::digest(
                {reinterpret_cast<const std::uint8_t*>(abc.data()),
                 abc.size()})),
            "ba7816bf8f01cfea414140de5dae2223"
            "b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(util::hex_encode(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855");
  // Multi-block + buffering boundaries under this backend.
  const std::vector<std::uint8_t> data(200, 0x5A);
  Sha256 split;
  split.update({data.data(), 63});
  split.update({data.data() + 63, 137});
  const auto split_digest = split.final();
  EXPECT_EQ(util::hex_encode(split_digest), util::hex_encode(Sha256::digest(data)));
}

TEST_P(PerBackend, HmacRfc4231Case2) {
  NNFV_SKIP_IF_UNUSABLE();
  ScopedBackendOverride override_scope(backend());
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const auto mac = HmacSha256::mac(
      {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()},
      {reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()});
  EXPECT_EQ(util::hex_encode(mac),
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843");
}

// NIST SP 800-38D (GCM spec) test cases 1-4: AES-128, 96-bit IV, with and
// without payload/AAD. Run per backend so every GHASH implementation
// (bit-by-bit oracle, Shoup 4-bit table, PCLMUL aggregated) and every CTR
// path face the published answers directly.
TEST_P(PerBackend, GcmSp80038dVectors) {
  NNFV_SKIP_IF_UNUSABLE();
  ScopedBackendOverride override_scope(backend());
  const struct {
    const char* key;
    const char* iv;
    const char* plaintext;
    const char* aad;
    const char* ciphertext;
    const char* tag;
  } cases[] = {
      // Test Case 1: empty everything.
      {"00000000000000000000000000000000", "000000000000000000000000", "",
       "", "", "58e2fccefa7e3061367f1d57a4e7455a"},
      // Test Case 2: one zero block.
      {"00000000000000000000000000000000", "000000000000000000000000",
       "00000000000000000000000000000000", "",
       "0388dace60b6a392f328c2b971b2fe78",
       "ab6e47d42cec13bdf53a67b21257bddf"},
      // Test Case 3: four blocks, no AAD.
      {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
       "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
       "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
       "",
       "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
       "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
       "4d5c2af327cd64a62cf35abd2ba6fab4"},
      // Test Case 4: 60-byte payload (partial final block) + AAD.
      {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
       "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
       "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
       "feedfacedeadbeeffeedfacedeadbeefabaddad2",
       "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
       "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
       "5bc94fbc3221a5db94fae95ae7121a47"},
  };
  for (const auto& c : cases) {
    auto gcm = GcmContext::create(from_hex(c.key));
    ASSERT_TRUE(gcm.is_ok());
    const auto iv = from_hex(c.iv);
    const auto plain = from_hex(c.plaintext);
    const auto aad = from_hex(c.aad);
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[GcmContext::kTagSize];
    ASSERT_TRUE(gcm->seal(iv, aad, plain, cipher.data(), tag).is_ok());
    EXPECT_EQ(util::hex_encode(cipher), c.ciphertext) << GetParam();
    EXPECT_EQ(util::hex_encode({tag, sizeof(tag)}), c.tag) << GetParam();

    std::vector<std::uint8_t> back(cipher.size());
    EXPECT_TRUE(gcm->open(iv, aad, cipher, {tag, sizeof(tag)}, back.data()))
        << GetParam();
    EXPECT_EQ(back, plain) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PerBackend,
                         ::testing::Values("portable", "aesni", "vaes",
                                           "reference"));

// ---------------------------------------------------------------------------
// Bit-identity cross-check: every usable backend vs the reference oracle.
// ---------------------------------------------------------------------------

TEST(CryptoBackend, BitIdentityAcrossBackends) {
  util::Rng rng(1234);
  const CryptoBackend& oracle = detail::reference_backend();
  for (std::size_t key_len : {16u, 24u, 32u}) {
    const auto key = rng.bytes(key_len);
    const auto iv = rng.bytes(16);
    auto aes = Aes::create(key);
    ASSERT_TRUE(aes.is_ok());
    // Lengths straddle the 4-block unrolling in the AES-NI paths.
    for (std::size_t blocks : {1u, 2u, 3u, 4u, 5u, 8u, 11u, 90u}) {
      const auto data = rng.bytes(blocks * 16);
      std::vector<std::uint8_t> want_ecb(data.size()), want_cbc(data.size()),
          want_dec(data.size());
      oracle.aes_encrypt_blocks(*aes, data.data(), want_ecb.data(), blocks);
      oracle.cbc_encrypt(*aes, iv.data(), data.data(), want_cbc.data(),
                         data.size());
      oracle.cbc_decrypt(*aes, iv.data(), data.data(), want_dec.data(),
                         data.size());
      for (const CryptoBackend* backend : usable_backends()) {
        std::vector<std::uint8_t> got(data.size());
        backend->aes_encrypt_blocks(*aes, data.data(), got.data(), blocks);
        EXPECT_EQ(got, want_ecb) << backend->name() << " ECB " << blocks;
        std::vector<std::uint8_t> back(data.size());
        backend->aes_decrypt_blocks(*aes, want_ecb.data(), back.data(),
                                    blocks);
        EXPECT_EQ(back, data) << backend->name() << " ECB dec " << blocks;
        backend->cbc_encrypt(*aes, iv.data(), data.data(), got.data(),
                             data.size());
        EXPECT_EQ(got, want_cbc) << backend->name() << " CBC " << blocks;
        backend->cbc_decrypt(*aes, iv.data(), data.data(), got.data(),
                             data.size());
        EXPECT_EQ(got, want_dec) << backend->name() << " CBC dec " << blocks;
      }
    }
  }
}

TEST(CryptoBackend, CbcDecryptInPlaceMatchesOutOfPlace) {
  util::Rng rng(77);
  const auto key = rng.bytes(16);
  const auto iv = rng.bytes(16);
  const auto cipher = rng.bytes(160);
  auto aes = Aes::create(key);
  for (const CryptoBackend* backend : usable_backends()) {
    std::vector<std::uint8_t> out_of_place(cipher.size());
    backend->cbc_decrypt(*aes, iv.data(), cipher.data(), out_of_place.data(),
                         cipher.size());
    std::vector<std::uint8_t> in_place = cipher;
    backend->cbc_decrypt(*aes, iv.data(), in_place.data(), in_place.data(),
                         in_place.size());
    EXPECT_EQ(in_place, out_of_place) << backend->name();
  }
}

TEST(CryptoBackend, Sha256IdentityAcrossBackendsAllLengths) {
  util::Rng rng(99);
  for (std::size_t n : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 128u, 1450u}) {
    const auto data = rng.bytes(n);
    std::string want;
    {
      ScopedBackendOverride override_scope(detail::reference_backend());
      want = util::hex_encode(Sha256::digest(data));
    }
    for (const CryptoBackend* backend : usable_backends()) {
      ScopedBackendOverride override_scope(*backend);
      EXPECT_EQ(util::hex_encode(Sha256::digest(data)), want)
          << backend->name() << " length " << n;
    }
  }
}

TEST(CryptoBackend, CtrIdentityAcrossBackends) {
  util::Rng rng(5);
  const auto key = rng.bytes(16);
  const auto counter = rng.bytes(16);
  const auto data = rng.bytes(333);  // partial final block
  auto aes = Aes::create(key);
  std::string want;
  {
    ScopedBackendOverride override_scope(detail::reference_backend());
    auto out = aes_ctr_crypt(*aes, counter, data);
    ASSERT_TRUE(out.is_ok());
    want = util::hex_encode(*out);
  }
  for (const CryptoBackend* backend : usable_backends()) {
    ScopedBackendOverride override_scope(*backend);
    auto out = aes_ctr_crypt(*aes, counter, data);
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(util::hex_encode(*out), want) << backend->name();
  }
}

TEST(CryptoBackend, CtrXorIdentityAcrossBackends) {
  util::Rng rng(21);
  const CryptoBackend& oracle = detail::reference_backend();
  for (std::size_t key_len : {16u, 32u}) {
    const auto key = rng.bytes(key_len);
    auto aes = Aes::create(key);
    ASSERT_TRUE(aes.is_ok());
    auto counter = rng.bytes(16);
    // Force an inc32 wrap partway through the longer messages.
    counter[12] = counter[13] = counter[14] = 0xFF;
    counter[15] = 0xFD;
    // Lengths straddle the 8-blocks-in-flight AES-NI loop, its 1-block
    // tail, and partial final blocks.
    for (std::size_t len : {1u, 15u, 16u, 17u, 127u, 128u, 129u, 333u,
                            1408u, 1442u}) {
      const auto data = rng.bytes(len);
      std::vector<std::uint8_t> want(len);
      oracle.aes_ctr_xor(*aes, counter.data(), data.data(), want.data(), len);
      for (const CryptoBackend* backend : usable_backends()) {
        std::vector<std::uint8_t> got(len);
        backend->aes_ctr_xor(*aes, counter.data(), data.data(), got.data(),
                             len);
        EXPECT_EQ(got, want) << backend->name() << " len " << len;
        // In-place operation must match.
        std::vector<std::uint8_t> in_place = data;
        backend->aes_ctr_xor(*aes, counter.data(), in_place.data(),
                             in_place.data(), len);
        EXPECT_EQ(in_place, want) << backend->name() << " in-place " << len;
      }
    }
  }
}

TEST(CryptoBackend, GhashIdentityAcrossBackends) {
  util::Rng rng(22);
  const CryptoBackend& oracle = detail::reference_backend();
  for (int trial = 0; trial < 4; ++trial) {
    const auto h = rng.bytes(16);
    GhashKey oracle_key;
    std::copy(h.begin(), h.end(), oracle_key.h);
    oracle.ghash_init(oracle_key);
    // Block counts straddle the PCLMUL 4-block aggregation and its tail.
    for (std::size_t nblocks : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 90u}) {
      const auto data = rng.bytes(nblocks * 16);
      const auto start = rng.bytes(16);
      std::uint8_t want[16];
      std::copy(start.begin(), start.end(), want);
      oracle.ghash(oracle_key, want, data.data(), nblocks);
      for (const CryptoBackend* backend : usable_backends()) {
        GhashKey key;
        std::copy(h.begin(), h.end(), key.h);
        backend->ghash_init(key);
        EXPECT_EQ(key.owner, backend) << backend->name();
        std::uint8_t got[16];
        std::copy(start.begin(), start.end(), got);
        backend->ghash(key, got, data.data(), nblocks);
        EXPECT_EQ(util::hex_encode({got, 16}), util::hex_encode({want, 16}))
            << backend->name() << " nblocks " << nblocks;
      }
    }
  }
}

TEST(CryptoBackend, GcmCryptFusedIdentityAcrossBackends) {
  // The fused gcm_crypt (stitched CTR+GHASH) vs the reference oracle's
  // split two-pass, both directions and in-place, at lengths straddling
  // the 8-block CTR chunk (128 B) and the 4-block GHASH aggregation
  // (64 B) plus their single-block and partial-byte tails.
  util::Rng rng(27);
  const CryptoBackend& oracle = detail::reference_backend();
  const auto key = rng.bytes(16);
  auto aes = Aes::create(key);
  ASSERT_TRUE(aes.is_ok());
  GhashKey oracle_key;
  const std::uint8_t zero[16] = {};
  aes->encrypt_block(zero, oracle_key.h);  // H = AES_K(0), the GCM subkey
  oracle.ghash_init(oracle_key);
  for (std::size_t len :
       {1u,   15u,  16u,  17u,  63u,  64u,  65u,   79u,   80u,  127u,
        128u, 129u, 143u, 144u, 191u, 192u, 256u,  257u,  1408u, 1442u}) {
    auto counter = rng.bytes(16);
    // Force an inc32 wrap a few blocks in: the fused kernels carry
    // their own counter increments (SIMD lane add / ++block_ctr), so
    // the wrap must only touch the low 32 bits, never the nonce half.
    counter[12] = counter[13] = counter[14] = 0xFF;
    counter[15] = 0xFD;
    const auto data = rng.bytes(len);
    const auto start = rng.bytes(16);
    std::vector<std::uint8_t> want_ct(len);
    std::uint8_t want_state[16];
    std::copy(start.begin(), start.end(), want_state);
    oracle.gcm_crypt(*aes, oracle_key, counter.data(), data.data(),
                     want_ct.data(), len, want_state, /*encrypt=*/true);
    for (const CryptoBackend* backend : usable_backends()) {
      GhashKey bkey;
      std::copy(oracle_key.h, oracle_key.h + 16, bkey.h);
      backend->ghash_init(bkey);

      std::vector<std::uint8_t> got(len);
      std::uint8_t state[16];
      std::copy(start.begin(), start.end(), state);
      backend->gcm_crypt(*aes, bkey, counter.data(), data.data(), got.data(),
                         len, state, /*encrypt=*/true);
      EXPECT_EQ(got, want_ct) << backend->name() << " enc len " << len;
      EXPECT_EQ(util::hex_encode({state, 16}),
                util::hex_encode({want_state, 16}))
          << backend->name() << " enc state len " << len;

      // Decrypt direction: feeding the ciphertext must restore the
      // plaintext and hash the *input* to the same state.
      std::vector<std::uint8_t> back(len);
      std::copy(start.begin(), start.end(), state);
      backend->gcm_crypt(*aes, bkey, counter.data(), want_ct.data(),
                         back.data(), len, state, /*encrypt=*/false);
      EXPECT_EQ(back, data) << backend->name() << " dec len " << len;
      EXPECT_EQ(util::hex_encode({state, 16}),
                util::hex_encode({want_state, 16}))
          << backend->name() << " dec state len " << len;

      // In-place, both directions.
      std::vector<std::uint8_t> buf = data;
      std::copy(start.begin(), start.end(), state);
      backend->gcm_crypt(*aes, bkey, counter.data(), buf.data(), buf.data(),
                         len, state, /*encrypt=*/true);
      EXPECT_EQ(buf, want_ct) << backend->name() << " in-place enc " << len;
      std::copy(start.begin(), start.end(), state);
      backend->gcm_crypt(*aes, bkey, counter.data(), buf.data(), buf.data(),
                         len, state, /*encrypt=*/false);
      EXPECT_EQ(buf, data) << backend->name() << " in-place dec " << len;
      EXPECT_EQ(util::hex_encode({state, 16}),
                util::hex_encode({want_state, 16}))
          << backend->name() << " in-place dec state " << len;
    }
  }
}

TEST(CryptoBackend, GcmOpenWipesPlaintextOnAuthFailure) {
  // The fused open produces plaintext before the tag verdict; on failure
  // every byte must be wiped, never released.
  util::Rng rng(28);
  const auto key = rng.bytes(16);
  const auto iv = rng.bytes(GcmContext::kIvSize);
  const auto plain = rng.bytes(300);
  for (const CryptoBackend* backend : usable_backends()) {
    ScopedBackendOverride override_scope(*backend);
    auto gcm = GcmContext::create(key);
    ASSERT_TRUE(gcm.is_ok());
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[GcmContext::kTagSize];
    ASSERT_TRUE(gcm->seal(iv, {}, plain, cipher.data(), tag).is_ok());
    tag[0] ^= 0x01;
    std::vector<std::uint8_t> out(cipher.size(), 0xAA);
    ASSERT_FALSE(gcm->open(iv, {}, cipher, {tag, sizeof(tag)}, out.data()))
        << backend->name();
    EXPECT_EQ(out, std::vector<std::uint8_t>(cipher.size(), 0))
        << backend->name();
  }
}

TEST(CryptoBackend, GcmSealIdenticalAcrossBackendsRandomLengths) {
  util::Rng rng(23);
  const auto key = rng.bytes(16);
  for (int trial = 0; trial < 8; ++trial) {
    const auto iv = rng.bytes(GcmContext::kIvSize);
    const auto aad = rng.bytes(trial * 7);  // 0..49 bytes of AAD
    const auto plain = rng.bytes(1 + (trial * 211) % 1500);
    std::vector<std::uint8_t> want_cipher;
    std::string want_tag;
    for (const CryptoBackend* backend : usable_backends()) {
      ScopedBackendOverride override_scope(*backend);
      auto gcm = GcmContext::create(key);
      ASSERT_TRUE(gcm.is_ok());
      std::vector<std::uint8_t> cipher(plain.size());
      std::uint8_t tag[GcmContext::kTagSize];
      ASSERT_TRUE(gcm->seal(iv, aad, plain, cipher.data(), tag).is_ok());
      if (want_tag.empty()) {
        want_cipher = cipher;
        want_tag = util::hex_encode({tag, sizeof(tag)});
      } else {
        EXPECT_EQ(cipher, want_cipher) << backend->name();
        EXPECT_EQ(util::hex_encode({tag, sizeof(tag)}), want_tag)
            << backend->name();
      }
      std::vector<std::uint8_t> back(cipher.size());
      EXPECT_TRUE(
          gcm->open(iv, aad, cipher, {tag, sizeof(tag)}, back.data()))
          << backend->name();
      EXPECT_EQ(back, plain) << backend->name();
    }
  }
}

TEST(CryptoBackend, GcmContextSurvivesBackendSwitch) {
  // One context, used under every backend in turn: the lazily re-derived
  // GHASH table must keep outputs bit-identical.
  util::Rng rng(24);
  const auto key = rng.bytes(16);
  const auto iv = rng.bytes(GcmContext::kIvSize);
  const auto plain = rng.bytes(200);
  auto gcm = GcmContext::create(key);
  ASSERT_TRUE(gcm.is_ok());
  std::string want;
  for (const CryptoBackend* backend : usable_backends()) {
    ScopedBackendOverride override_scope(*backend);
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[GcmContext::kTagSize];
    ASSERT_TRUE(gcm->seal(iv, {}, plain, cipher.data(), tag).is_ok());
    const std::string got =
        util::hex_encode(cipher) + util::hex_encode({tag, sizeof(tag)});
    if (want.empty()) {
      want = got;
    } else {
      EXPECT_EQ(got, want) << backend->name();
    }
  }

  // The escalation ladder explicitly: portable -> aesni -> vaes mid-stream
  // on ONE context, each step re-deriving the GHASH table into a layout
  // the previous owner never wrote (Shoup 4-bit table vs H^1..H^8 power
  // pairs). The audit point is that hkey()'s owner check really fires on
  // every hop — a stale table surviving one hop would corrupt every tag.
  for (const char* name : {"portable", "aesni", "vaes", "portable"}) {
    const CryptoBackend* backend = backend_by_name(name);
    ASSERT_NE(backend, nullptr);
    if (!backend->usable()) continue;
    ScopedBackendOverride override_scope(*backend);
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[GcmContext::kTagSize];
    ASSERT_TRUE(gcm->seal(iv, {}, plain, cipher.data(), tag).is_ok());
    EXPECT_EQ(util::hex_encode(cipher) + util::hex_encode({tag, sizeof(tag)}),
              want)
        << "after switching to " << name;
  }
}

TEST(CryptoBackend, GcmTamperedInputFailsOpen) {
  util::Rng rng(25);
  const auto key = rng.bytes(16);
  const auto iv = rng.bytes(GcmContext::kIvSize);
  const auto aad = rng.bytes(20);
  const auto plain = rng.bytes(300);
  for (const CryptoBackend* backend : usable_backends()) {
    ScopedBackendOverride override_scope(*backend);
    auto gcm = GcmContext::create(key);
    ASSERT_TRUE(gcm.is_ok());
    std::vector<std::uint8_t> cipher(plain.size());
    std::uint8_t tag[GcmContext::kTagSize];
    ASSERT_TRUE(gcm->seal(iv, aad, plain, cipher.data(), tag).is_ok());
    std::vector<std::uint8_t> out(cipher.size());

    std::uint8_t bad_tag[GcmContext::kTagSize];
    std::copy(tag, tag + sizeof(tag), bad_tag);
    bad_tag[5] ^= 0x01;
    EXPECT_FALSE(
        gcm->open(iv, aad, cipher, {bad_tag, sizeof(bad_tag)}, out.data()))
        << backend->name() << " flipped tag byte must fail";

    auto bad_cipher = cipher;
    bad_cipher[17] ^= 0x80;
    EXPECT_FALSE(
        gcm->open(iv, aad, bad_cipher, {tag, sizeof(tag)}, out.data()))
        << backend->name() << " flipped ciphertext byte must fail";

    auto bad_aad = aad;
    bad_aad[0] ^= 0x01;
    EXPECT_FALSE(
        gcm->open(iv, bad_aad, cipher, {tag, sizeof(tag)}, out.data()))
        << backend->name() << " flipped AAD byte must fail";

    EXPECT_TRUE(gcm->open(iv, aad, cipher, {tag, sizeof(tag)}, out.data()))
        << backend->name() << " untampered must still verify";
    EXPECT_EQ(out, plain) << backend->name();
  }
}

TEST(CryptoBackend, ScheduleCacheBitIdenticalToWordSchedules) {
  // The cached byte-serialised schedules must be exactly the big-endian
  // serialisation of the word schedules (the AESENC/AESDEC register
  // layout), identical no matter which backend is active, and stable
  // across repeated reads (filled once at key expansion).
  util::Rng rng(26);
  for (std::size_t key_len : {16u, 24u, 32u}) {
    const auto key = rng.bytes(key_len);
    auto aes = Aes::create(key);
    ASSERT_TRUE(aes.is_ok());
    const auto enc_words = aes->enc_round_keys();
    const auto dec_words = aes->dec_round_keys();
    std::vector<std::uint8_t> want_enc(enc_words.size() * 4);
    std::vector<std::uint8_t> want_dec(dec_words.size() * 4);
    for (std::size_t i = 0; i < enc_words.size(); ++i) {
      util::store_be32(want_enc.data() + 4 * i, enc_words[i]);
      util::store_be32(want_dec.data() + 4 * i, dec_words[i]);
    }
    const auto enc_bytes = aes->enc_schedule_bytes();
    const auto dec_bytes = aes->dec_schedule_bytes();
    EXPECT_EQ(util::hex_encode(enc_bytes), util::hex_encode(want_enc));
    EXPECT_EQ(util::hex_encode(dec_bytes), util::hex_encode(want_dec));
    for (const CryptoBackend* backend : usable_backends()) {
      ScopedBackendOverride override_scope(*backend);
      // Cache hit: same storage, same bytes, regardless of active backend.
      EXPECT_EQ(aes->enc_schedule_bytes().data(), enc_bytes.data())
          << backend->name();
      EXPECT_EQ(util::hex_encode(aes->enc_schedule_bytes()),
                util::hex_encode(want_enc))
          << backend->name();
      EXPECT_EQ(util::hex_encode(aes->dec_schedule_bytes()),
                util::hex_encode(want_dec))
          << backend->name();
    }
  }
}

// The acceptance property in ISSUE terms: an ESP packet encapsulated under
// one backend is byte-identical under every other, so a tunnel can span
// hosts with different backend selections.
TEST(CryptoBackend, EspWireFormatIdenticalAcrossBackends) {
  const nnf::NfConfig config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  const auto make_frame = [] {
    util::Rng rng(42);
    packet::UdpFrameSpec spec;
    spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
    spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
    static std::vector<std::uint8_t> payload;
    payload = rng.bytes(400);
    spec.payload = payload;
    return packet::build_udp_frame(spec);
  };

  std::vector<std::uint8_t> want;
  for (const CryptoBackend* backend : usable_backends()) {
    ScopedBackendOverride override_scope(*backend);
    nnf::IpsecEndpoint endpoint;
    ASSERT_TRUE(endpoint.configure(nnf::kDefaultContext, config).is_ok());
    auto outs = endpoint.process(nnf::kDefaultContext, 0, 0, make_frame());
    ASSERT_EQ(outs.size(), 1u) << backend->name();
    std::vector<std::uint8_t> wire(outs[0].frame.data().begin(),
                                   outs[0].frame.data().end());
    if (want.empty()) {
      want = wire;
    } else {
      EXPECT_EQ(wire, want) << backend->name();
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-buffer GCM: the batched kernels vs the reference oracle.
// ---------------------------------------------------------------------------

// One gcm_crypt_mb batch on every usable backend vs the reference oracle
// (whose base implementation loops the single-buffer gcm_crypt), expecting
// bit-identical outputs AND GHASH states per lane. Both directions are a
// true differential over the same random inputs: "decrypt" of arbitrary
// bytes is legal (CTR keystream + GHASH over the input side), so no
// seal-first setup is needed. pre_block/post_block presence is varied per
// lane so the kernel's in-pass folds are exercised against the oracle's
// explicit ghash() round trips.
void expect_mb_matches_oracle(const std::vector<std::size_t>& lens,
                              bool encrypt, bool in_place,
                              std::uint32_t seed) {
  util::Rng rng(seed);
  const auto key = rng.bytes(16);
  auto aes = Aes::create(key);
  ASSERT_TRUE(aes.is_ok());
  const std::uint8_t zero[16] = {};
  const std::size_t nlanes = lens.size();
  ASSERT_LE(nlanes, CryptoBackend::kMaxMbLanes);

  std::vector<std::vector<std::uint8_t>> data(nlanes), counters(nlanes),
      starts(nlanes), pres(nlanes), posts(nlanes);
  for (std::size_t i = 0; i < nlanes; ++i) {
    counters[i] = rng.bytes(16);
    if (i % 2 == 0) {
      // Force an inc32 wrap a few blocks in on alternating lanes: the
      // interleaved kernels carry per-lane counters in SIMD registers,
      // so a wrap must only touch that lane's low 32 bits.
      counters[i][12] = counters[i][13] = counters[i][14] = 0xFF;
      counters[i][15] = 0xFD;
    }
    data[i] = rng.bytes(lens[i]);
    starts[i] = rng.bytes(16);
    pres[i] = rng.bytes(16);
    posts[i] = rng.bytes(16);
  }

  const auto run = [&](const CryptoBackend& backend, const GhashKey& bkey,
                       std::vector<std::vector<std::uint8_t>>& outs,
                       std::vector<std::vector<std::uint8_t>>& states) {
    GcmMbLane lanes[CryptoBackend::kMaxMbLanes];
    outs.resize(nlanes);
    states.resize(nlanes);
    for (std::size_t i = 0; i < nlanes; ++i) {
      outs[i] = in_place ? data[i] : std::vector<std::uint8_t>(lens[i]);
      states[i] = starts[i];
      lanes[i].counter = counters[i].data();
      lanes[i].in = in_place ? outs[i].data() : data[i].data();
      lanes[i].out = outs[i].data();
      lanes[i].len = lens[i];
      lanes[i].state = states[i].data();
      lanes[i].encrypt = encrypt;
      lanes[i].pre_block = (i % 3 != 2) ? pres[i].data() : nullptr;
      lanes[i].post_block = (i % 2 == 0) ? posts[i].data() : nullptr;
    }
    return backend.gcm_crypt_mb(*aes, bkey, lanes, nlanes);
  };

  const CryptoBackend& oracle = detail::reference_backend();
  GhashKey okey;
  aes->encrypt_block(zero, okey.h);
  oracle.ghash_init(okey);
  std::vector<std::vector<std::uint8_t>> want_out, want_state;
  ASSERT_TRUE(run(oracle, okey, want_out, want_state));

  for (const CryptoBackend* backend : usable_backends()) {
    GhashKey bkey;
    aes->encrypt_block(zero, bkey.h);
    backend->ghash_init(bkey);
    std::vector<std::vector<std::uint8_t>> got_out, got_state;
    ASSERT_TRUE(run(*backend, bkey, got_out, got_state)) << backend->name();
    for (std::size_t i = 0; i < nlanes; ++i) {
      EXPECT_EQ(util::hex_encode(got_out[i]), util::hex_encode(want_out[i]))
          << backend->name() << " lane " << i << " len " << lens[i]
          << (encrypt ? " enc" : " dec") << (in_place ? " in-place" : "");
      EXPECT_EQ(util::hex_encode(got_state[i]),
                util::hex_encode(want_state[i]))
          << backend->name() << " lane " << i << " state, len " << lens[i]
          << (encrypt ? " enc" : " dec") << (in_place ? " in-place" : "");
    }
  }
}

TEST(CryptoBackend, GcmCryptMbMatchesReferenceOracle) {
  // Ragged batches at every lane count: lengths straddle the 128-byte
  // chunk pipeline, the 8-block GHASH aggregation (128 B of ciphertext),
  // partial final blocks and single-byte lanes.
  constexpr std::size_t kLens[] = {1,   31,  63,  64,  96,  127, 128,
                                   129, 255, 256, 257, 576, 1408};
  constexpr std::size_t kNumLens = sizeof(kLens) / sizeof(kLens[0]);
  std::vector<std::vector<std::size_t>> cases;
  for (std::size_t nlanes = 1; nlanes <= CryptoBackend::kMaxMbLanes;
       ++nlanes) {
    std::vector<std::size_t> lens(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l) {
      lens[l] = kLens[(l * 5 + nlanes) % kNumLens];
    }
    cases.push_back(std::move(lens));
  }
  // Uniform full batches: 8 equal lanes with 32 <= len < 128 take the
  // register-resident uniform8 kernel on VAES; 128/256 take the chunk
  // pipeline with zero remainder. Both specialisations must face the
  // oracle directly, not only via the ragged mix above.
  for (const std::size_t len : {32u, 64u, 96u, 120u, 127u, 128u, 256u}) {
    cases.emplace_back(CryptoBackend::kMaxMbLanes, len);
  }
  std::uint32_t seed = 4000;
  for (const auto& lens : cases) {
    for (const bool encrypt : {true, false}) {
      for (const bool in_place : {false, true}) {
        expect_mb_matches_oracle(lens, encrypt, in_place, seed++);
      }
    }
  }
}

TEST(CryptoBackend, GcmCryptMbRejectsBadBatches) {
  // Mixed directions, zero lanes and too many lanes are rejected with no
  // lane touched, on every backend (the contract in backend.hpp).
  util::Rng rng(31);
  const auto key = rng.bytes(16);
  auto aes = Aes::create(key);
  ASSERT_TRUE(aes.is_ok());
  const std::uint8_t zero[16] = {};
  for (const CryptoBackend* backend : usable_backends()) {
    GhashKey bkey;
    aes->encrypt_block(zero, bkey.h);
    backend->ghash_init(bkey);

    constexpr std::size_t kTooMany = CryptoBackend::kMaxMbLanes + 1;
    std::vector<std::vector<std::uint8_t>> bufs(kTooMany),
        states(kTooMany), counters(kTooMany);
    GcmMbLane lanes[kTooMany];
    for (std::size_t i = 0; i < kTooMany; ++i) {
      bufs[i] = rng.bytes(100);
      states[i] = rng.bytes(16);
      counters[i] = rng.bytes(16);
      lanes[i].counter = counters[i].data();
      lanes[i].in = bufs[i].data();
      lanes[i].out = bufs[i].data();
      lanes[i].len = bufs[i].size();
      lanes[i].state = states[i].data();
      lanes[i].encrypt = true;
    }
    const auto bufs_before = bufs;
    const auto states_before = states;

    lanes[1].encrypt = false;  // mixed direction
    EXPECT_FALSE(backend->gcm_crypt_mb(*aes, bkey, lanes, 2))
        << backend->name() << " mixed direction must be rejected";
    lanes[1].encrypt = true;
    EXPECT_FALSE(backend->gcm_crypt_mb(*aes, bkey, lanes, 0))
        << backend->name() << " nlanes == 0 must be rejected";
    EXPECT_FALSE(backend->gcm_crypt_mb(*aes, bkey, lanes, kTooMany))
        << backend->name() << " nlanes > kMaxMbLanes must be rejected";
    EXPECT_EQ(bufs, bufs_before)
        << backend->name() << " rejected batch must not touch buffers";
    EXPECT_EQ(states, states_before)
        << backend->name() << " rejected batch must not touch GHASH states";
  }
}

TEST(CryptoBackend, GcmMbSealOpenPerLaneTamper) {
  // seal_mb must be bit-identical to per-lane seal(), and open_mb must
  // fail lanes INDEPENDENTLY: one forged packet in a batch wipes only its
  // own output, every honest sibling still authenticates.
  util::Rng rng(33);
  const auto key = rng.bytes(16);
  constexpr std::size_t kLanes = CryptoBackend::kMaxMbLanes;
  const std::size_t lens[kLanes] = {1, 64, 65, 127, 128, 129, 576, 1408};
  for (const CryptoBackend* backend : usable_backends()) {
    ScopedBackendOverride override_scope(*backend);
    auto gcm = GcmContext::create(key);
    ASSERT_TRUE(gcm.is_ok());

    std::vector<std::vector<std::uint8_t>> ivs(kLanes), aads(kLanes),
        plains(kLanes), ciphers(kLanes), tags(kLanes);
    GcmMbOp ops[kLanes];
    for (std::size_t i = 0; i < kLanes; ++i) {
      ivs[i] = rng.bytes(GcmContext::kIvSize);
      aads[i] = rng.bytes((i * 5) % 24);  // 0..20 bytes, some empty
      plains[i] = rng.bytes(lens[i]);
      ciphers[i].resize(lens[i]);
      tags[i].resize(GcmContext::kTagSize);
      ops[i].iv = ivs[i];
      ops[i].aad = aads[i];
      ops[i].input = plains[i];
      ops[i].output = ciphers[i].data();
      ops[i].tag = tags[i].data();
    }
    ASSERT_TRUE(gcm->seal_mb(ops, kLanes).is_ok()) << backend->name();

    // Bit-identity vs the single-lane path.
    for (std::size_t i = 0; i < kLanes; ++i) {
      std::vector<std::uint8_t> want_ct(lens[i]);
      std::uint8_t want_tag[GcmContext::kTagSize];
      ASSERT_TRUE(gcm->seal(ivs[i], aads[i], plains[i], want_ct.data(),
                            want_tag)
                      .is_ok());
      EXPECT_EQ(ciphers[i], want_ct)
          << backend->name() << " lane " << i << " ct vs single-lane seal";
      EXPECT_EQ(util::hex_encode(tags[i]),
                util::hex_encode({want_tag, sizeof(want_tag)}))
          << backend->name() << " lane " << i << " tag vs single-lane seal";
    }

    // Honest round trip first.
    std::vector<std::vector<std::uint8_t>> outs(kLanes);
    bool ok[kLanes];
    for (std::size_t i = 0; i < kLanes; ++i) {
      outs[i].assign(lens[i], 0xAA);
      ops[i].input = ciphers[i];
      ops[i].output = outs[i].data();
    }
    EXPECT_TRUE(gcm->open_mb(ops, kLanes, ok)) << backend->name();
    for (std::size_t i = 0; i < kLanes; ++i) {
      EXPECT_TRUE(ok[i]) << backend->name() << " lane " << i;
      EXPECT_EQ(outs[i], plains[i]) << backend->name() << " lane " << i;
    }

    // Tamper one lane at a time (ciphertext for one victim, tag for
    // another, AAD for a third): only the victim fails and is wiped.
    enum class Tamper { kCt, kTag, kAad };
    const struct {
      std::size_t lane;
      Tamper what;
    } tampers[] = {{0, Tamper::kTag}, {3, Tamper::kCt}, {7, Tamper::kAad}};
    for (const auto& t : tampers) {
      auto bad_ciphers = ciphers;
      auto bad_tags = tags;
      auto bad_aads = aads;
      switch (t.what) {
        case Tamper::kCt:
          bad_ciphers[t.lane][lens[t.lane] / 2] ^= 0x01;
          break;
        case Tamper::kTag:
          bad_tags[t.lane][9] ^= 0x80;
          break;
        case Tamper::kAad:
          if (bad_aads[t.lane].empty()) {
            bad_aads[t.lane].push_back(0x55);
          } else {
            bad_aads[t.lane][0] ^= 0x01;
          }
          break;
      }
      for (std::size_t i = 0; i < kLanes; ++i) {
        outs[i].assign(lens[i], 0xAA);
        ops[i].aad = bad_aads[i];
        ops[i].input = bad_ciphers[i];
        ops[i].output = outs[i].data();
        ops[i].tag = bad_tags[i].data();
      }
      EXPECT_FALSE(gcm->open_mb(ops, kLanes, ok))
          << backend->name() << " tampered lane " << t.lane;
      for (std::size_t i = 0; i < kLanes; ++i) {
        if (i == t.lane) {
          EXPECT_FALSE(ok[i])
              << backend->name() << " tampered lane " << i << " must fail";
          EXPECT_EQ(outs[i], std::vector<std::uint8_t>(lens[i], 0))
              << backend->name() << " tampered lane " << i << " must be wiped";
        } else {
          EXPECT_TRUE(ok[i])
              << backend->name() << " honest lane " << i << " must survive";
          EXPECT_EQ(outs[i], plains[i]) << backend->name() << " lane " << i;
        }
      }
      // Restore shared op state for the next tamper round.
      for (std::size_t i = 0; i < kLanes; ++i) {
        ops[i].aad = aads[i];
        ops[i].tag = tags[i].data();
      }
    }
  }
}

}  // namespace
}  // namespace nnfv::crypto
