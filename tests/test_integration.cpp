// End-to-end integration tests on the assembled UniversalNode:
//  * real traffic through deployed graphs (firewall, NAT, IPsec),
//  * an encrypt-then-decrypt two-node tunnel,
//  * the Table 1 structure (throughput ordering across flavors),
//  * shared-NNF isolation between two customers.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"
#include "traffic/measure.hpp"

namespace nnfv {
namespace {

using core::UniversalNode;
using core::UniversalNodeConfig;

nffg::NfFg chain_graph(const std::string& id, const std::string& type,
                       std::optional<virt::BackendKind> hint = {}) {
  nffg::NfFg graph;
  graph.id = id;
  graph.add_nf("nf", type).backend_hint = hint;
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("nf", 0));
  graph.connect("r2", nffg::nf_port("nf", 1), nffg::endpoint_ref("wan"));
  graph.connect("r3", nffg::endpoint_ref("wan"), nffg::nf_port("nf", 1));
  graph.connect("r4", nffg::nf_port("nf", 0), nffg::endpoint_ref("lan"));
  return graph;
}

packet::PacketBuffer lan_udp(const std::string& src, const std::string& dst,
                             std::uint16_t dport,
                             std::size_t payload_bytes = 64) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(0xC1);
  spec.eth_dst = packet::MacAddress::from_id(0xC2);
  spec.ip_src = *packet::Ipv4Address::parse(src);
  spec.ip_dst = *packet::Ipv4Address::parse(dst);
  spec.src_port = 40000;
  spec.dst_port = dport;
  static std::vector<std::uint8_t> payload;
  payload.assign(payload_bytes, 0x42);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

TEST(Integration, FirewallGraphFiltersTraffic) {
  UniversalNode node;
  nffg::NfFg graph = chain_graph("g1", "firewall");
  graph.nfs[0].config["policy"] = "accept";
  graph.nfs[0].config["rule.1"] = "drop,any,any,udp,23";
  ASSERT_TRUE(node.orchestrator().deploy(graph).is_ok());

  int wan_rx = 0;
  ASSERT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&&) {
                    ++wan_rx;
                  }).is_ok());

  ASSERT_TRUE(node.inject("eth0", lan_udp("10.0.0.2", "8.8.8.8", 53)).is_ok());
  ASSERT_TRUE(node.inject("eth0", lan_udp("10.0.0.2", "8.8.8.8", 23)).is_ok());
  node.simulator().run();
  EXPECT_EQ(wan_rx, 1);  // telnet-ish blocked, DNS passed
}

TEST(Integration, BurstInjectMatchesSingleInject) {
  // The burst path (inject_burst -> LSI-0 -> virtual link -> NF ->
  // restoration) must deliver the same frames as per-packet injection.
  UniversalNode node;
  nffg::NfFg graph = chain_graph("gb", "firewall");
  graph.nfs[0].config["policy"] = "accept";
  graph.nfs[0].config["rule.1"] = "drop,any,any,udp,23";
  ASSERT_TRUE(node.orchestrator().deploy(graph).is_ok());

  int wan_rx = 0;
  ASSERT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&&) {
                    ++wan_rx;
                  }).is_ok());

  packet::PacketBurst burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(lan_udp("10.0.0.2", "8.8.8.8", 53));
  }
  burst.push_back(lan_udp("10.0.0.2", "8.8.8.8", 23));  // blocked
  ASSERT_TRUE(node.inject_burst("eth0", std::move(burst)).is_ok());
  node.simulator().run();
  EXPECT_EQ(wan_rx, 8);
}

TEST(Integration, NatGraphTranslatesAndRestores) {
  UniversalNode node;
  nffg::NfFg graph = chain_graph("g1", "nat");
  graph.nfs[0].config["external_ip"] = "203.0.113.50";
  ASSERT_TRUE(node.orchestrator().deploy(graph).is_ok());

  std::vector<packet::PacketBuffer> wan_out;
  ASSERT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
                    wan_out.push_back(std::move(frame));
                  }).is_ok());
  std::vector<packet::PacketBuffer> lan_out;
  ASSERT_TRUE(node.set_egress("eth0", [&](packet::PacketBuffer&& frame) {
                    lan_out.push_back(std::move(frame));
                  }).is_ok());

  ASSERT_TRUE(
      node.inject("eth0", lan_udp("192.168.1.10", "8.8.8.8", 53)).is_ok());
  node.simulator().run();
  ASSERT_EQ(wan_out.size(), 1u);
  auto eth = packet::parse_ethernet(wan_out[0].data());
  auto out_tuple = packet::extract_five_tuple(
      wan_out[0].data().subspan(eth->wire_size()));
  EXPECT_EQ(out_tuple->src_ip.to_string(), "203.0.113.50");

  // Reply path.
  ASSERT_TRUE(node.inject("eth1", lan_udp("8.8.8.8", "203.0.113.50",
                                          out_tuple->src_port))
                  .is_ok());
  node.simulator().run();
  ASSERT_EQ(lan_out.size(), 1u);
  auto eth2 = packet::parse_ethernet(lan_out[0].data());
  auto back_tuple = packet::extract_five_tuple(
      lan_out[0].data().subspan(eth2->wire_size()));
  EXPECT_EQ(back_tuple->dst_ip.to_string(), "192.168.1.10");
  EXPECT_EQ(back_tuple->dst_port, 40000);
}

TEST(Integration, IpsecTunnelAcrossTwoNodes) {
  // CPE encrypts; a second node (the provider head-end) decrypts. The
  // decrypted packet must equal the original.
  UniversalNode cpe;
  UniversalNode headend;

  nffg::NfFg cpe_graph = chain_graph("cpe-vpn", "ipsec");
  cpe_graph.nfs[0].config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  ASSERT_TRUE(cpe.orchestrator().deploy(cpe_graph).is_ok());

  nffg::NfFg he_graph;
  he_graph.id = "he-vpn";
  he_graph.add_nf("nf", "ipsec");
  he_graph.nfs[0].config = {
      {"local_ip", "198.51.100.2"}, {"peer_ip", "198.51.100.1"},
      {"spi_out", "2002"},          {"spi_in", "1001"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  he_graph.add_endpoint("core", "eth0");   // decrypted side
  he_graph.add_endpoint("access", "eth1");  // encrypted side
  he_graph.connect("r1", nffg::endpoint_ref("access"),
                   nffg::nf_port("nf", 1));
  he_graph.connect("r2", nffg::nf_port("nf", 0),
                   nffg::endpoint_ref("core"));
  he_graph.connect("r3", nffg::endpoint_ref("core"), nffg::nf_port("nf", 0));
  he_graph.connect("r4", nffg::nf_port("nf", 1),
                   nffg::endpoint_ref("access"));
  ASSERT_TRUE(headend.orchestrator().deploy(he_graph).is_ok());

  // Wire: cpe eth1 (encrypted out) -> headend eth1 (encrypted in).
  ASSERT_TRUE(cpe.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
                   // Verify it is ESP on the wire.
                   auto eth = packet::parse_ethernet(frame.data());
                   auto ip = packet::parse_ipv4(
                       frame.data().subspan(eth->wire_size()));
                   ASSERT_TRUE(ip.is_ok());
                   EXPECT_EQ(ip->protocol, packet::kIpProtoEsp);
                   ASSERT_TRUE(
                       headend.inject("eth1", std::move(frame)).is_ok());
                 }).is_ok());

  std::vector<packet::PacketBuffer> decrypted;
  ASSERT_TRUE(headend.set_egress("eth0", [&](packet::PacketBuffer&& frame) {
                        decrypted.push_back(std::move(frame));
                      }).is_ok());

  packet::PacketBuffer original = lan_udp("192.168.1.10", "10.8.0.1", 5001,
                                          300);
  const std::vector<std::uint8_t> inner_before(
      original.data().begin() + 14, original.data().end());
  ASSERT_TRUE(cpe.inject("eth0", std::move(original)).is_ok());
  cpe.simulator().run();
  headend.simulator().run();

  ASSERT_EQ(decrypted.size(), 1u);
  const std::vector<std::uint8_t> inner_after(
      decrypted[0].data().begin() + 14, decrypted[0].data().end());
  EXPECT_EQ(inner_before, inner_after);
}

double measure_ipsec_goodput(virt::BackendKind backend) {
  UniversalNode node;
  nffg::NfFg graph = chain_graph("m", "ipsec", backend);
  graph.nfs[0].config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  EXPECT_TRUE(node.orchestrator().deploy(graph).is_ok());

  traffic::MeasurementConfig config;
  config.payload_bytes = 1408;
  config.offered_pps = 150000.0;  // ~1.7 Gbps offered: saturates all flavors
  config.warmup = 100 * sim::kMillisecond;
  config.duration = sim::kSecond;

  // Each ESP frame on eth1 corresponds 1:1 to one inner 1408-byte
  // datagram, so goodput = delivered * payload bits / window (what iPerf
  // reports end-to-end).
  std::uint64_t delivered = 0;
  EXPECT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&&) {
                    if (node.simulator().now() >= config.warmup &&
                        node.simulator().now() <
                            config.warmup + config.duration) {
                      ++delivered;
                    }
                  }).is_ok());

  traffic::UdpSourceConfig source_config;
  source_config.payload_bytes = config.payload_bytes;
  source_config.packets_per_second = config.offered_pps;
  source_config.stop = config.warmup + config.duration;
  traffic::UdpSource source(node.simulator(), source_config,
                            [&](packet::PacketBuffer&& frame) {
                              (void)node.inject("eth0", std::move(frame));
                            });
  source.begin();
  node.simulator().run_until(config.warmup + config.duration +
                             50 * sim::kMillisecond);
  return static_cast<double>(delivered) * 1408.0 * 8.0 /
         (static_cast<double>(config.duration) / 1e9) / 1e6;  // Mbps
}

TEST(Integration, Table1ThroughputShapeHolds) {
  const double native = measure_ipsec_goodput(virt::BackendKind::kNative);
  const double docker = measure_ipsec_goodput(virt::BackendKind::kDocker);
  const double vm = measure_ipsec_goodput(virt::BackendKind::kVm);

  // Paper: native 1094, docker 1095, vm 796 Mbps.
  EXPECT_NEAR(native, 1094.0, 35.0);
  EXPECT_NEAR(docker, 1095.0, 35.0);
  EXPECT_NEAR(vm, 796.0, 30.0);
  // Ordering: VM clearly slower; docker ~ native.
  EXPECT_LT(vm, 0.8 * native);
  EXPECT_NEAR(docker / native, 1.0, 0.02);
}

TEST(Integration, SharedNnfIsolatesTwoCustomers) {
  // Two customers' graphs share one native NAT instance; their conntrack
  // state and external IPs stay separate and traffic never crosses.
  UniversalNode node(UniversalNodeConfig{
      .physical_ports = {"eth0", "eth1", "eth2", "eth3"}});

  auto make = [&](const std::string& id, const std::string& lan_if,
                  const std::string& wan_if, const std::string& ext_ip) {
    nffg::NfFg graph;
    graph.id = id;
    graph.add_nf("nat", "nat").config["external_ip"] = ext_ip;
    graph.add_endpoint("lan", lan_if);
    graph.add_endpoint("wan", wan_if);
    graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("nat", 0));
    graph.connect("r2", nffg::nf_port("nat", 1), nffg::endpoint_ref("wan"));
    graph.connect("r3", nffg::endpoint_ref("wan"), nffg::nf_port("nat", 1));
    graph.connect("r4", nffg::nf_port("nat", 0), nffg::endpoint_ref("lan"));
    return graph;
  };
  auto report_a = node.orchestrator().deploy(
      make("custA", "eth0", "eth1", "203.0.113.1"));
  auto report_b = node.orchestrator().deploy(
      make("custB", "eth2", "eth3", "203.0.113.2"));
  ASSERT_TRUE(report_a.is_ok());
  ASSERT_TRUE(report_b.is_ok());
  EXPECT_TRUE(report_b->placements[0].reused_shared_instance);
  EXPECT_EQ(node.catalog().status_of("nat")->running_instances, 1u);

  std::vector<packet::PacketBuffer> wan_a;
  std::vector<packet::PacketBuffer> wan_b;
  ASSERT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
                    wan_a.push_back(std::move(frame));
                  }).is_ok());
  ASSERT_TRUE(node.set_egress("eth3", [&](packet::PacketBuffer&& frame) {
                    wan_b.push_back(std::move(frame));
                  }).is_ok());

  ASSERT_TRUE(
      node.inject("eth0", lan_udp("192.168.1.10", "8.8.8.8", 53)).is_ok());
  ASSERT_TRUE(
      node.inject("eth2", lan_udp("192.168.1.10", "8.8.8.8", 53)).is_ok());
  node.simulator().run();

  ASSERT_EQ(wan_a.size(), 1u);
  ASSERT_EQ(wan_b.size(), 1u);
  auto src_of = [](const packet::PacketBuffer& frame) {
    auto eth = packet::parse_ethernet(frame.data());
    return packet::extract_five_tuple(frame.data().subspan(eth->wire_size()))
        ->src_ip.to_string();
  };
  EXPECT_EQ(src_of(wan_a[0]), "203.0.113.1");
  EXPECT_EQ(src_of(wan_b[0]), "203.0.113.2");
}

TEST(Integration, GraphTeardownStopsDatapath) {
  UniversalNode node;
  nffg::NfFg graph = chain_graph("g1", "firewall");
  ASSERT_TRUE(node.orchestrator().deploy(graph).is_ok());
  int wan_rx = 0;
  ASSERT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&&) {
                    ++wan_rx;
                  }).is_ok());
  ASSERT_TRUE(node.inject("eth0", lan_udp("10.0.0.2", "8.8.8.8", 53)).is_ok());
  node.simulator().run();
  EXPECT_EQ(wan_rx, 1);

  ASSERT_TRUE(node.orchestrator().remove("g1").is_ok());
  ASSERT_TRUE(node.inject("eth0", lan_udp("10.0.0.2", "8.8.8.8", 53)).is_ok());
  node.simulator().run();
  EXPECT_EQ(wan_rx, 1);  // no path anymore
}

TEST(Integration, ChainOfThreeNativeFunctions) {
  // lan -> firewall -> nat -> bridge -> wan and back.
  UniversalNode node;
  nffg::NfFg graph;
  graph.id = "chain3";
  graph.add_nf("fw", "firewall");
  graph.add_nf("nat", "nat").config["external_ip"] = "203.0.113.9";
  graph.add_nf("br", "bridge");
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("fw", 0));
  graph.connect("r2", nffg::nf_port("fw", 1), nffg::nf_port("nat", 0));
  graph.connect("r3", nffg::nf_port("nat", 1), nffg::nf_port("br", 0));
  graph.connect("r4", nffg::nf_port("br", 1), nffg::endpoint_ref("wan"));
  graph.connect("r5", nffg::endpoint_ref("wan"), nffg::nf_port("br", 1));
  graph.connect("r6", nffg::nf_port("br", 0), nffg::nf_port("nat", 1));
  graph.connect("r7", nffg::nf_port("nat", 0), nffg::nf_port("fw", 1));
  graph.connect("r8", nffg::nf_port("fw", 0), nffg::endpoint_ref("lan"));

  auto report = node.orchestrator().deploy(graph);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->placements.size(), 3u);

  std::vector<packet::PacketBuffer> wan_out;
  ASSERT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
                    wan_out.push_back(std::move(frame));
                  }).is_ok());
  ASSERT_TRUE(
      node.inject("eth0", lan_udp("192.168.1.4", "8.8.8.8", 53)).is_ok());
  node.simulator().run();
  ASSERT_EQ(wan_out.size(), 1u);
  auto eth = packet::parse_ethernet(wan_out[0].data());
  auto tuple = packet::extract_five_tuple(
      wan_out[0].data().subspan(eth->wire_size()));
  EXPECT_EQ(tuple->src_ip.to_string(), "203.0.113.9");  // NAT applied
}

}  // namespace
}  // namespace nnfv
