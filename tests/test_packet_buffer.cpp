// PacketBuffer regression tests: operator[] bounds checking and the
// push_front grow path (headroom exhaustion), which previously had no
// coverage at all.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "packet/buffer.hpp"

namespace nnfv::packet {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> out(n);
  std::iota(out.begin(), out.end(), start);
  return out;
}

TEST(PacketBuffer, IndexReadsAndWritesLiveBytes) {
  auto bytes = pattern(16);
  PacketBuffer buf = PacketBuffer::copy_of(bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_EQ(buf[i], bytes[i]);
  }
  buf[3] = 0xAB;
  EXPECT_EQ(buf.data()[3], 0xAB);
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(NDEBUG)
TEST(PacketBufferDeathTest, IndexPastSizeAssertsInDebug) {
  auto bytes = pattern(8);
  PacketBuffer buf = PacketBuffer::copy_of(bytes);
  // Indexes in [size, size + headroom-ish) used to silently alias the
  // undefined region after the payload; now they die in debug builds.
  EXPECT_DEATH({ (void)buf[8]; }, "out of range");
  const PacketBuffer& cref = buf;
  EXPECT_DEATH({ (void)cref[123]; }, "out of range");
}

TEST(PacketBufferDeathTest, IndexOnEmptyBufferAsserts) {
  PacketBuffer buf;
  EXPECT_DEATH({ (void)buf[0]; }, "out of range");
}
#endif

TEST(PacketBuffer, PushFrontWithinHeadroomDoesNotReallocate) {
  auto bytes = pattern(32);
  PacketBuffer buf = PacketBuffer::copy_of(bytes);  // default 128B headroom
  const std::uint8_t* before = buf.data().data();
  auto span = buf.push_front(14);
  EXPECT_EQ(span.size(), 14u);
  EXPECT_EQ(buf.size(), 46u);
  EXPECT_EQ(buf.headroom(), PacketBuffer::kDefaultHeadroom - 14);
  // The old bytes stayed put; the new span sits immediately before them.
  EXPECT_EQ(buf.data().data() + 14, before);
  EXPECT_EQ(std::memcmp(buf.data().data() + 14, bytes.data(), bytes.size()),
            0);
}

TEST(PacketBuffer, PushFrontGrowPathPreservesPayload) {
  auto bytes = pattern(64, 100);
  PacketBuffer buf =
      PacketBuffer::copy_of(bytes, /*headroom=*/4);
  ASSERT_EQ(buf.headroom(), 4u);

  // Needs 20 > 4 bytes of headroom: triggers the grow-and-copy path.
  auto span = buf.push_front(20);
  ASSERT_EQ(span.size(), 20u);
  std::memset(span.data(), 0xEE, span.size());

  EXPECT_EQ(buf.size(), 84u);
  // The grow path tops headroom back up to the default.
  EXPECT_EQ(buf.headroom(), PacketBuffer::kDefaultHeadroom);
  // Original payload intact after the prepended region.
  EXPECT_EQ(std::memcmp(buf.data().data() + 20, bytes.data(), bytes.size()),
            0);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(buf[i], 0xEE);
}

TEST(PacketBuffer, PushFrontGrowOnZeroHeadroomBuffer) {
  auto bytes = pattern(10);
  PacketBuffer buf =
      PacketBuffer::copy_of(bytes, /*headroom=*/0);
  buf.push_front(1)[0] = 0x42;
  EXPECT_EQ(buf.size(), 11u);
  EXPECT_EQ(buf[0], 0x42);
  EXPECT_EQ(std::memcmp(buf.data().data() + 1, bytes.data(), bytes.size()),
            0);
}

TEST(PacketBuffer, PushFrontPullFrontRoundTrip) {
  auto bytes = pattern(48, 7);
  PacketBuffer buf =
      PacketBuffer::copy_of(bytes, /*headroom=*/8);
  // Grow path prepend, then strip the prepended header again.
  auto hdr = buf.push_front(32);
  std::memset(hdr.data(), 0x55, hdr.size());
  buf.pull_front(32);
  ASSERT_EQ(buf.size(), bytes.size());
  EXPECT_EQ(std::memcmp(buf.data().data(), bytes.data(), bytes.size()), 0);
  // Headroom is whatever the grow path left: room to prepend again
  // without another reallocation.
  EXPECT_GE(buf.headroom(), 32u);
}

TEST(PacketBuffer, TrimAfterGrowKeepsPrefix) {
  auto bytes = pattern(40);
  PacketBuffer buf =
      PacketBuffer::copy_of(bytes, /*headroom=*/2);
  buf.push_front(10);
  buf.trim(5);
  EXPECT_EQ(buf.size(), 5u);
  buf.push_back(3);
  EXPECT_EQ(buf.size(), 8u);
}

TEST(PacketBuffer, RepeatedGrowStaysConsistent) {
  auto bytes = pattern(8);
  PacketBuffer buf =
      PacketBuffer::copy_of(bytes, /*headroom=*/0);
  std::size_t expected = bytes.size();
  for (int round = 0; round < 5; ++round) {
    // 200 > kDefaultHeadroom forces a reallocation every round.
    auto span = buf.push_front(200);
    std::memset(span.data(), static_cast<int>(round), span.size());
    expected += 200;
    ASSERT_EQ(buf.size(), expected);
  }
  // The original payload is still the suffix.
  EXPECT_EQ(std::memcmp(buf.data().data() + buf.size() - bytes.size(),
                        bytes.data(), bytes.size()),
            0);
}

}  // namespace
}  // namespace nnfv::packet
