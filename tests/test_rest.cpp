// REST layer tests: HTTP codec, router, API semantics, and the real TCP
// server over loopback.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "core/node.hpp"
#include "nffg/nffg_json.hpp"
#include "rest/api.hpp"
#include "rest/http.hpp"
#include "rest/router.hpp"
#include "rest/server.hpp"

namespace nnfv::rest {
namespace {

// ---------------------------------------------------------------------------
// HTTP codec
// ---------------------------------------------------------------------------

TEST(Http, ParsesSimpleGet) {
  auto request = parse_request("GET /node HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_TRUE(request.is_ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->target, "/node");
  EXPECT_EQ(request->version, "HTTP/1.1");
  EXPECT_EQ(request->headers.at("Host"), "x");
  EXPECT_TRUE(request->body.empty());
}

TEST(Http, ParsesBodyWithContentLength) {
  auto request = parse_request(
      "PUT /NF-FG/g1 HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world");
  ASSERT_TRUE(request.is_ok());
  EXPECT_EQ(request->body, "hello world");
}

TEST(Http, HeaderNamesAreCaseInsensitive) {
  auto request = parse_request(
      "PUT /x HTTP/1.1\r\ncontent-length: 2\r\n\r\nok");
  ASSERT_TRUE(request.is_ok());
  EXPECT_EQ(request->headers.at("Content-Length"), "2");
  EXPECT_EQ(request->body, "ok");
}

TEST(Http, PathAndQuerySplit) {
  HttpRequest request;
  request.target = "/NF-FG/g1?verbose=1";
  EXPECT_EQ(request.path(), "/NF-FG/g1");
  EXPECT_EQ(request.query(), "verbose=1");
  request.target = "/plain";
  EXPECT_EQ(request.query(), "");
}

TEST(Http, IncrementalParsingAcrossChunks) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("PUT /x HTT"), RequestParser::State::kNeedMore);
  EXPECT_EQ(parser.feed("P/1.1\r\nContent-Le"),
            RequestParser::State::kNeedMore);
  EXPECT_EQ(parser.feed("ngth: 4\r\n\r\nab"),
            RequestParser::State::kNeedMore);
  EXPECT_EQ(parser.feed("cd"), RequestParser::State::kComplete);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(Http, RejectsMalformedRequests) {
  EXPECT_FALSE(parse_request("garbage\r\n\r\n").is_ok());
  EXPECT_FALSE(parse_request("GET /x\r\n\r\n").is_ok());  // no version
  EXPECT_FALSE(
      parse_request("GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n").is_ok());
  EXPECT_FALSE(parse_request(
                   "PUT /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n")
                   .is_ok());
  EXPECT_FALSE(parse_request("GET /x HTTP/1.1\r\n").is_ok());  // incomplete
}

TEST(Http, ResponseSerialization) {
  HttpResponse response = HttpResponse::json_response(201, "{\"ok\":true}");
  const std::string wire = response.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 201 Created\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"ok\":true}"), std::string::npos);
}

TEST(Http, RequestSerializationRoundTrips) {
  HttpRequest request;
  request.method = "PUT";
  request.target = "/NF-FG/g1";
  request.body = "{}";
  auto parsed = parse_request(request.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->method, "PUT");
  EXPECT_EQ(parsed->body, "{}");
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(Router, RoutesWithParams) {
  Router router;
  router.add("GET", "/NF-FG/{id}",
             [](const HttpRequest&, const PathParams& params) {
               return HttpResponse::json_response(
                   200, "{\"id\":\"" + params.at("id") + "\"}");
             });
  HttpRequest request;
  request.method = "GET";
  request.target = "/NF-FG/g42";
  HttpResponse response = router.route(request);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("g42"), std::string::npos);
}

TEST(Router, NotFoundVsMethodNotAllowed) {
  Router router;
  router.add("GET", "/thing", [](const HttpRequest&, const PathParams&) {
    return HttpResponse::json_response(200, "{}");
  });
  HttpRequest request;
  request.method = "DELETE";
  request.target = "/thing";
  EXPECT_EQ(router.route(request).status, 405);
  request.target = "/other";
  EXPECT_EQ(router.route(request).status, 404);
}

TEST(Router, MultiSegmentParams) {
  Router router;
  router.add("PUT", "/NF-FG/{id}/VNFs/{nf}/config",
             [](const HttpRequest&, const PathParams& params) {
               return HttpResponse::json_response(
                   200, params.at("id") + "/" + params.at("nf"));
             });
  HttpRequest request;
  request.method = "PUT";
  request.target = "/NF-FG/g1/VNFs/fw/config";
  EXPECT_EQ(router.route(request).body, "g1/fw");
  request.target = "/NF-FG/g1/VNFs/fw";  // shorter: no match
  EXPECT_EQ(router.route(request).status, 404);
}

// ---------------------------------------------------------------------------
// RestApi over a real node
// ---------------------------------------------------------------------------

constexpr const char* kGraphJson = R"({
  "forwarding-graph": {
    "id": "g1",
    "VNFs": [{"id": "fw", "functional_type": "firewall", "ports": 2}],
    "end-points": [
      {"id": "lan", "interface": "eth0"},
      {"id": "wan", "interface": "eth1"}
    ],
    "flow-rules": [
      {"id": "r1", "match": {"port_in": "endpoint:lan"},
       "action": {"output": "vnf:fw:0"}},
      {"id": "r2", "match": {"port_in": "vnf:fw:1"},
       "action": {"output": "endpoint:wan"}},
      {"id": "r3", "match": {"port_in": "endpoint:wan"},
       "action": {"output": "vnf:fw:1"}},
      {"id": "r4", "match": {"port_in": "vnf:fw:0"},
       "action": {"output": "endpoint:lan"}}
    ]
  }
})";

HttpRequest make_request(const std::string& method, const std::string& target,
                         const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

class ApiFixture : public ::testing::Test {
 protected:
  ApiFixture() : api_(&node_) {}
  core::UniversalNode node_;
  RestApi api_;
};

TEST_F(ApiFixture, DeployFetchDeleteCycle) {
  HttpResponse created =
      api_.handle(make_request("PUT", "/NF-FG/g1", kGraphJson));
  EXPECT_EQ(created.status, 201);
  EXPECT_NE(created.body.find("\"backend\":\"native\""), std::string::npos);

  HttpResponse listed = api_.handle(make_request("GET", "/NF-FG"));
  EXPECT_EQ(listed.status, 200);
  EXPECT_NE(listed.body.find("g1"), std::string::npos);

  HttpResponse fetched = api_.handle(make_request("GET", "/NF-FG/g1"));
  EXPECT_EQ(fetched.status, 200);
  auto graph = nffg::from_json_text(fetched.body);
  ASSERT_TRUE(graph.is_ok());
  EXPECT_EQ(graph->id, "g1");

  HttpResponse deleted = api_.handle(make_request("DELETE", "/NF-FG/g1"));
  EXPECT_EQ(deleted.status, 204);
  EXPECT_EQ(api_.handle(make_request("GET", "/NF-FG/g1")).status, 404);
}

TEST_F(ApiFixture, ErrorsMapToHttpStatuses) {
  // Bad JSON -> 400.
  EXPECT_EQ(api_.handle(make_request("PUT", "/NF-FG/g1", "{nope")).status,
            400);
  // Id mismatch -> 400.
  EXPECT_EQ(
      api_.handle(make_request("PUT", "/NF-FG/other", kGraphJson)).status,
      400);
  // Duplicate deploy -> 409.
  EXPECT_EQ(api_.handle(make_request("PUT", "/NF-FG/g1", kGraphJson)).status,
            201);
  EXPECT_EQ(api_.handle(make_request("PUT", "/NF-FG/g1", kGraphJson)).status,
            409);
  // Unknown graph delete -> 404.
  EXPECT_EQ(api_.handle(make_request("DELETE", "/NF-FG/zz")).status, 404);
}

TEST_F(ApiFixture, UpdateNfConfig) {
  ASSERT_EQ(api_.handle(make_request("PUT", "/NF-FG/g1", kGraphJson)).status,
            201);
  EXPECT_EQ(api_.handle(make_request("PUT", "/NF-FG/g1/VNFs/fw/config",
                                     R"({"policy":"drop"})"))
                .status,
            200);
  EXPECT_EQ(api_.handle(make_request("PUT", "/NF-FG/g1/VNFs/fw/config",
                                     R"({"policy":5})"))
                .status,
            400);
  EXPECT_EQ(api_.handle(make_request("PUT", "/NF-FG/g1/VNFs/zz/config",
                                     R"({"policy":"drop"})"))
                .status,
            404);
}

constexpr const char* kIpsecGraphJson = R"({
  "forwarding-graph": {
    "id": "gsec",
    "VNFs": [{"id": "vpn", "functional_type": "ipsec", "ports": 2}],
    "end-points": [
      {"id": "lan", "interface": "eth0"},
      {"id": "wan", "interface": "eth1"}
    ],
    "flow-rules": [
      {"id": "r1", "match": {"port_in": "endpoint:lan"},
       "action": {"output": "vnf:vpn:0"}},
      {"id": "r2", "match": {"port_in": "vnf:vpn:1"},
       "action": {"output": "endpoint:wan"}},
      {"id": "r3", "match": {"port_in": "endpoint:wan"},
       "action": {"output": "vnf:vpn:1"}},
      {"id": "r4", "match": {"port_in": "vnf:vpn:0"},
       "action": {"output": "endpoint:lan"}}
    ]
  }
})";

constexpr const char* kIpsecConfigJson = R"({
  "local_ip": "198.51.100.1", "peer_ip": "198.51.100.2",
  "spi_out": "1001", "spi_in": "2002",
  "enc_key": "000102030405060708090a0b0c0d0e0f",
  "auth_key":
      "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"
})";

TEST_F(ApiFixture, NfStatsRouteSurfacesSaLifecycle) {
  ASSERT_EQ(
      api_.handle(make_request("PUT", "/NF-FG/gsec", kIpsecGraphJson))
          .status,
      201);
  ASSERT_EQ(api_.handle(make_request("PUT", "/NF-FG/gsec/VNFs/vpn/config",
                                     kIpsecConfigJson))
                .status,
            200);

  HttpResponse stats =
      api_.handle(make_request("GET", "/NF-FG/gsec/VNFs/vpn/stats"));
  ASSERT_EQ(stats.status, 200);
  auto doc = json::parse(stats.body);
  ASSERT_TRUE(doc.is_ok());
  ASSERT_TRUE(doc->get("endpoint")->is_object());
  EXPECT_EQ(doc->get("endpoint")->as_object().find("rekeys_started")
                ->as_number(),
            0.0);
  ASSERT_TRUE(doc->get("tunnel")->is_object());
  const json::Object& tunnel = doc->get("tunnel")->as_object();
  EXPECT_EQ(tunnel.find("out_sa")->as_object().find("spi")->as_number(),
            1001.0);
  EXPECT_EQ(tunnel.find("out_sa")->as_object().find("state")->as_string(),
            "active");

  // Staging a rekey through the config route shows up in the stats.
  ASSERT_EQ(api_.handle(make_request(
                            "PUT", "/NF-FG/gsec/VNFs/vpn/config",
                            R"({"rekey_spi_out": "1003",
                                "rekey_spi_in": "2004",
                                "rekey_enc_key":
                                    "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"})"))
                .status,
            200);
  stats = api_.handle(make_request("GET", "/NF-FG/gsec/VNFs/vpn/stats"));
  ASSERT_EQ(stats.status, 200);
  doc = json::parse(stats.body);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->get("endpoint")->as_object().find("rekeys_started")
                ->as_number(),
            1.0);
  EXPECT_TRUE(doc->get("tunnel")->as_object().contains("staged"));

  // Unknown NF / graph -> 404.
  EXPECT_EQ(api_.handle(make_request("GET", "/NF-FG/gsec/VNFs/zz/stats"))
                .status,
            404);
  EXPECT_EQ(
      api_.handle(make_request("GET", "/NF-FG/nope/VNFs/vpn/stats")).status,
      404);
}

TEST_F(ApiFixture, TunnelChurnThroughOrchestratorStaysClean) {
  // Setup/teardown churn: repeated deploy -> configure -> stats ->
  // remove cycles must not leak SAD entries or reject later rounds.
  for (int round = 0; round < 25; ++round) {
    HttpResponse deployed =
        api_.handle(make_request("PUT", "/NF-FG/gsec", kIpsecGraphJson));
    ASSERT_EQ(deployed.status, 201) << "round " << round << ": "
                                    << deployed.body;
    ASSERT_EQ(
        api_.handle(make_request("PUT", "/NF-FG/gsec/VNFs/vpn/config",
                                 kIpsecConfigJson))
            .status,
        200)
        << "round " << round;
    HttpResponse stats =
        api_.handle(make_request("GET", "/NF-FG/gsec/VNFs/vpn/stats"));
    ASSERT_EQ(stats.status, 200) << "round " << round;
    auto doc = json::parse(stats.body);
    ASSERT_TRUE(doc.is_ok()) << "round " << round;
    // A clean world each round: one inbound SA in the SAD, never an
    // accumulation from previous rounds.
    EXPECT_EQ(doc->get("sad_size")->as_number(), 1.0) << "round " << round;
    ASSERT_EQ(api_.handle(make_request("DELETE", "/NF-FG/gsec")).status,
              204)
        << "round " << round;
  }
}

TEST_F(ApiFixture, NodeDescription) {
  HttpResponse response = api_.handle(make_request("GET", "/node"));
  EXPECT_EQ(response.status, 200);
  auto doc = json::parse(response.body);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->get_string("hostname"), "cpe-node");
  EXPECT_TRUE(doc->get("native_functions")->is_array());
}

TEST_F(ApiFixture, HealthRouteOnInlineNode) {
  // No datapath workers configured: /health still answers, with an
  // explicit workers:0 datapath object and the mbuf-pool counters.
  HttpResponse response = api_.handle(make_request("GET", "/health"));
  ASSERT_EQ(response.status, 200);
  auto doc = json::parse(response.body);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->get_string("status"), "ok");
  ASSERT_TRUE(doc->get("datapath")->is_object());
  EXPECT_EQ(doc->get("datapath")->as_object().find("workers")->as_number(),
            0.0);
  ASSERT_TRUE(doc->get("mbuf_pool")->is_object());
  EXPECT_TRUE(doc->get("mbuf_pool")->as_object().contains("segment_allocs"));
  EXPECT_FALSE(doc->as_object().contains("watchdog"));
  // Wrong method on the health route is routing noise, not a crash.
  EXPECT_EQ(api_.handle(make_request("POST", "/health")).status, 405);
}

TEST(Health, RouteSurfacesDatapathAndWatchdogState) {
  core::UniversalNodeConfig config;
  config.datapath_workers = 2;
  config.datapath_watchdog = true;
  core::UniversalNode node(config);
  RestApi api(&node);
  HttpResponse response;
  {
    HttpRequest request;
    request.method = "GET";
    request.target = "/health";
    response = api.handle(request);
  }
  ASSERT_EQ(response.status, 200);
  auto doc = json::parse(response.body);
  ASSERT_TRUE(doc.is_ok());
  const json::Object& datapath = doc->get("datapath")->as_object();
  EXPECT_EQ(datapath.find("workers")->as_number(), 2.0);
  ASSERT_TRUE(datapath.find("per_worker")->is_array());
  EXPECT_EQ(datapath.find("per_worker")->as_array().size(), 2u);
  EXPECT_EQ(datapath.find("worker_restarts")->as_number(), 0.0);
  const json::Object& watchdog = doc->get("watchdog")->as_object();
  EXPECT_EQ(watchdog.find("stalls_detected")->as_number(), 0.0);
  EXPECT_EQ(watchdog.find("restarts_performed")->as_number(), 0.0);
}

TEST(HttpStatusMapping, CoversAllCodes) {
  EXPECT_EQ(http_status_of(util::Status::ok()), 200);
  EXPECT_EQ(http_status_of(util::invalid_argument("x")), 400);
  EXPECT_EQ(http_status_of(util::not_found("x")), 404);
  EXPECT_EQ(http_status_of(util::already_exists("x")), 409);
  EXPECT_EQ(http_status_of(util::resource_exhausted("x")), 503);
  EXPECT_EQ(http_status_of(util::unavailable("x")), 503);
  EXPECT_EQ(http_status_of(util::internal_error("x")), 500);
}

// ---------------------------------------------------------------------------
// TCP server over loopback
// ---------------------------------------------------------------------------

std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string reply;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(HttpServer, ServesRequestsOverLoopback) {
  core::UniversalNode node;
  RestApi api(&node);
  HttpServer server(
      [&api](const HttpRequest& request) { return api.handle(request); });
  ASSERT_TRUE(server.start(0).is_ok());
  ASSERT_GT(server.port(), 0);

  const std::string reply =
      http_exchange(server.port(), "GET /node HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("cpe-node"), std::string::npos);

  // Deploy over the wire.
  std::string body = kGraphJson;
  std::string put = "PUT /NF-FG/g1 HTTP/1.1\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body;
  const std::string deploy_reply = http_exchange(server.port(), put);
  EXPECT_NE(deploy_reply.find("HTTP/1.1 201 Created"), std::string::npos);
  EXPECT_TRUE(node.orchestrator().has_graph("g1"));
  EXPECT_EQ(server.requests_served(), 2u);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServer, MalformedRequestGets400) {
  HttpServer server([](const HttpRequest&) {
    return HttpResponse::json_response(200, "{}");
  });
  ASSERT_TRUE(server.start(0).is_ok());
  const std::string reply =
      http_exchange(server.port(), "NONSENSE\r\n\r\n");
  EXPECT_NE(reply.find("400"), std::string::npos);
  server.stop();
}

TEST(HttpServer, SurvivesAbusiveClients) {
  core::UniversalNode node;
  RestApi api(&node);
  HttpServer server(
      [&api](const HttpRequest& request) { return api.handle(request); });
  ASSERT_TRUE(server.start(0).is_ok());

  // Oversized headers trip the parser's 64 KiB cap -> 400, connection
  // closed, accept loop alive.
  std::string oversized = "GET /health HTTP/1.1\r\nX-Filler: ";
  oversized.append(80 * 1024, 'a');
  const std::string huge_reply = http_exchange(server.port(), oversized);
  EXPECT_NE(huge_reply.find("400"), std::string::npos);

  // A client that sends half a request and hangs up gets no reply and
  // must not wedge the server.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const char truncated[] = "GET /health HTTP/1.1\r\nHo";
    ASSERT_GT(::send(fd, truncated, sizeof(truncated) - 1, 0), 0);
    ::close(fd);
  }

  // Malformed bytes on the health path specifically.
  const std::string garbled =
      http_exchange(server.port(), "GET /health\r\n\r\n");  // no version
  EXPECT_NE(garbled.find("400"), std::string::npos);

  // After all of the abuse, a well-formed health request still works.
  const std::string reply = http_exchange(
      server.port(), "GET /health HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(reply.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_TRUE(server.running());
  server.stop();
}

TEST(HttpServer, ThrowingHandlerYields500NotThreadDeath) {
  std::atomic<int> calls{0};
  HttpServer server([&calls](const HttpRequest&) -> HttpResponse {
    if (calls.fetch_add(1) == 0) {
      throw std::runtime_error("handler exploded");
    }
    return HttpResponse::json_response(200, "{}");
  });
  ASSERT_TRUE(server.start(0).is_ok());
  const std::string first = http_exchange(
      server.port(), "GET /x HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(first.find("500"), std::string::npos);
  EXPECT_NE(first.find("handler exploded"), std::string::npos);
  // The accept thread survived the exception and serves the next client.
  const std::string second = http_exchange(
      server.port(), "GET /x HTTP/1.1\r\nHost: l\r\n\r\n");
  EXPECT_NE(second.find("200"), std::string::npos);
  EXPECT_TRUE(server.running());
  server.stop();
}

}  // namespace
}  // namespace nnfv::rest
