// Discrete-event core tests: ordering, determinism, links, stations.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace nnfv::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(30, [&]() { order.push_back(3); });
  queue.schedule_at(10, [&]() { order.push_back(1); });
  queue.schedule_at(20, [&]() { order.push_back(2); });
  while (!queue.empty()) queue.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(5, [&order, i]() { order.push_back(i); });
  }
  while (!queue.empty()) queue.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeAndClear) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  queue.schedule_at(77, []() {});
  EXPECT_EQ(queue.next_time(), 77);
  EXPECT_EQ(queue.size(), 1u);
  queue.clear();
  EXPECT_TRUE(queue.empty());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator simulator;
  SimTime seen = -1;
  simulator.schedule(100, [&]() { seen = simulator.now(); });
  simulator.run();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(simulator.now(), 100);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator simulator;
  std::vector<SimTime> times;
  simulator.schedule(10, [&]() {
    times.push_back(simulator.now());
    simulator.schedule(5, [&]() { times.push_back(simulator.now()); });
  });
  simulator.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RunUntilStopsAndSetsClock) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(10, [&]() { ++fired; });
  simulator.schedule(100, [&]() { ++fired; });
  const std::uint64_t processed = simulator.run_until(50);
  EXPECT_EQ(processed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), 50);
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ResetDropsPendingEvents) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule(10, [&]() { ++fired; });
  simulator.reset();
  EXPECT_TRUE(simulator.idle());
  simulator.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(simulator.now(), 0);
}

TEST(TransmissionTime, Math) {
  // 1000 bytes at 1 Gbps = 8 us.
  EXPECT_EQ(transmission_time(1000, 1e9), 8000);
  // 1500 bytes at 100 Mbps = 120 us.
  EXPECT_EQ(transmission_time(1500, 1e8), 120000);
}

TEST(Link, SerializationPlusPropagation) {
  Simulator simulator;
  Link link(simulator, 1e9, 1000);  // 1 Gbps, 1 us propagation
  SimTime delivered_at = -1;
  link.transmit(1000, [&]() { delivered_at = simulator.now(); });
  simulator.run();
  EXPECT_EQ(delivered_at, 8000 + 1000);
  EXPECT_EQ(link.stats().completed, 1u);
}

TEST(Link, BackToBackSerializes) {
  Simulator simulator;
  Link link(simulator, 1e9, 0);
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 3; ++i) {
    link.transmit(1000, [&]() { deliveries.push_back(simulator.now()); });
  }
  simulator.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], 8000);
  EXPECT_EQ(deliveries[1], 16000);
  EXPECT_EQ(deliveries[2], 24000);
}

TEST(Link, TailDropsWhenFull) {
  Simulator simulator;
  Link link(simulator, 1e9, 0, /*queue_capacity=*/2);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    link.transmit(1000, [&]() { ++delivered; });
  }
  simulator.run();
  // Capacity 2: while the first is transmitting the queue holds 1... the
  // exact count depends on dequeue timing; drops must be non-zero and
  // enqueued+dropped == 10.
  EXPECT_GT(link.stats().dropped, 0u);
  EXPECT_EQ(link.stats().enqueued + link.stats().dropped, 10u);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered), link.stats().completed);
}

TEST(ServiceStation, ServesFifoWithServiceTimes) {
  Simulator simulator;
  ServiceStation station(simulator);
  std::vector<SimTime> completions;
  station.submit(100, [&]() { completions.push_back(simulator.now()); });
  station.submit(50, [&]() { completions.push_back(simulator.now()); });
  simulator.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], 100);  // first in, first served
  EXPECT_EQ(completions[1], 150);  // queued behind
}

TEST(ServiceStation, UtilizationReflectsBusyTime) {
  Simulator simulator;
  ServiceStation station(simulator);
  station.submit(600, []() {});
  simulator.run_until(1000);
  EXPECT_DOUBLE_EQ(station.utilization(), 0.6);
}

TEST(ServiceStation, SaturationThroughputMatchesServiceRate) {
  // Offered >> capacity: completions per second == 1/service_time.
  Simulator simulator;
  ServiceStation station(simulator, /*queue_capacity=*/64);
  const SimTime service = 10 * kMicrosecond;
  std::uint64_t completed = 0;

  // Closed-loop feeder: keep the queue topped up.
  std::function<void()> feed = [&]() {
    while (station.queue_depth() < 32) {
      if (!station.submit(service, [&]() { ++completed; })) break;
    }
    if (simulator.now() < kSecond) {
      simulator.schedule(50 * kMicrosecond, feed);
    }
  };
  simulator.schedule(0, feed);
  simulator.run_until(kSecond);
  // 1 second / 10 us = 100k completions (+- feeder edge effects).
  EXPECT_NEAR(static_cast<double>(completed), 100000.0, 200.0);
}

TEST(ServiceStation, DropsWhenQueueFull) {
  Simulator simulator;
  ServiceStation station(simulator, /*queue_capacity=*/1);
  int completed = 0;
  EXPECT_TRUE(station.submit(10, [&]() { ++completed; }));
  EXPECT_TRUE(station.submit(10, [&]() { ++completed; }));  // queued
  // Server busy, queue holds 1 => reject.
  EXPECT_FALSE(station.submit(10, [&]() { ++completed; }));
  simulator.run();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(station.stats().dropped, 1u);
}

TEST(Simulator, OnSimThreadTracksLoopOwner) {
  Simulator simulator;
  EXPECT_TRUE(simulator.on_sim_thread());  // constructing thread
  bool seen_on_worker = true;
  std::thread worker(
      [&]() { seen_on_worker = simulator.on_sim_thread(); });
  worker.join();
  EXPECT_FALSE(seen_on_worker);
}

TEST(Simulator, PostFromAnotherThreadRunsOnSimThread) {
  Simulator simulator;
  std::thread::id handler_thread;
  SimTime handler_time = -1;
  std::thread worker([&]() {
    simulator.post([&]() {
      handler_thread = std::this_thread::get_id();
      handler_time = simulator.now();
    });
  });
  worker.join();
  // Posted work is invisible until a run loop drains the mailbox.
  simulator.run();
  EXPECT_EQ(handler_thread, std::this_thread::get_id());
  EXPECT_EQ(handler_time, 0);
}

TEST(Simulator, PostedHandlersRunAtCurrentClock) {
  Simulator simulator;
  simulator.schedule(100, []() {});
  simulator.run();  // clock at 100
  std::thread worker([&]() { simulator.post([]() {}); });
  worker.join();
  SimTime seen = -1;
  simulator.schedule(50, [&]() { seen = simulator.now(); });
  simulator.run();
  EXPECT_EQ(seen, 150);
  EXPECT_EQ(simulator.now(), 150);
}

TEST(ServiceStation, SubmitFromWorkerThreadBouncesToSimThread) {
  Simulator simulator;
  ServiceStation station(simulator, /*queue_capacity=*/4);
  int completed = 0;
  std::thread worker([&]() {
    // Off the sim thread the submit is posted, not executed inline.
    EXPECT_TRUE(station.submit(10, [&]() { ++completed; }));
  });
  worker.join();
  EXPECT_EQ(station.queue_depth(), 0u);  // not yet landed
  simulator.run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(station.stats().completed, 1u);
}

}  // namespace
}  // namespace nnfv::sim
