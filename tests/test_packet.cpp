// Packet layer tests: buffer headroom mechanics, header codecs, checksums,
// flow-key extraction and the frame builders.
#include <gtest/gtest.h>

#include "packet/buffer.hpp"
#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "packet/flow_key.hpp"
#include "packet/headers.hpp"
#include "util/rng.hpp"

namespace nnfv::packet {
namespace {

// ---------------------------------------------------------------------------
// PacketBuffer
// ---------------------------------------------------------------------------

TEST(PacketBuffer, ConstructFromBytes) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4};
  PacketBuffer buf = PacketBuffer::copy_of(data);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[3], 4);
  EXPECT_EQ(buf.headroom(), PacketBuffer::kDefaultHeadroom);
}

TEST(PacketBuffer, PushFrontUsesHeadroom) {
  const std::vector<std::uint8_t> data = {9, 9};
  PacketBuffer buf = PacketBuffer::copy_of(data);
  auto hdr = buf.push_front(4);
  EXPECT_EQ(hdr.size(), 4u);
  hdr[0] = 1;
  hdr[3] = 4;
  EXPECT_EQ(buf.size(), 6u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[4], 9);
  EXPECT_EQ(buf.headroom(), PacketBuffer::kDefaultHeadroom - 4);
}

TEST(PacketBuffer, PushFrontBeyondHeadroomReallocates) {
  const std::vector<std::uint8_t> data = {7};
  PacketBuffer buf =
      PacketBuffer::copy_of(data, /*headroom=*/2);
  buf.push_front(10);  // exceeds the 2-byte headroom
  EXPECT_EQ(buf.size(), 11u);
  EXPECT_EQ(buf[10], 7);  // payload intact
}

TEST(PacketBuffer, PullFrontDecapsulates) {
  const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  PacketBuffer buf = PacketBuffer::copy_of(data);
  buf.pull_front(2);
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf[0], 3);
  // Headroom regained: a later push_front reuses it.
  auto hdr = buf.push_front(2);
  hdr[0] = 0xAA;
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf[0], 0xAA);
}

TEST(PacketBuffer, PushBackAndTrim) {
  PacketBuffer buf;
  EXPECT_TRUE(buf.empty());
  auto tail = buf.push_back(3);
  tail[0] = 1;
  tail[2] = 3;
  EXPECT_EQ(buf.size(), 3u);
  buf.trim(1);
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 1);
}

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

TEST(MacAddress, ParseAndFormatRoundTrip) {
  auto mac = MacAddress::parse("02:00:5e:10:00:ff");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "02:00:5e:10:00:ff");
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:00").has_value());
  EXPECT_FALSE(MacAddress::parse("02:00:5e:10:00:zz").has_value());
  EXPECT_FALSE(MacAddress::parse("0200:5e:10:00:ff:aa").has_value());
  EXPECT_FALSE(MacAddress::parse("").has_value());
}

TEST(MacAddress, Properties) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  auto unicast = MacAddress::from_id(7);
  EXPECT_FALSE(unicast.is_broadcast());
  EXPECT_FALSE(unicast.is_multicast());
  EXPECT_EQ(unicast, MacAddress::from_id(7));
  EXPECT_NE(unicast, MacAddress::from_id(8));
}

TEST(Ipv4Address, ParseAndFormat) {
  auto addr = Ipv4Address::parse("192.168.1.7");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value, 0xC0A80107u);
  EXPECT_EQ(addr->to_string(), "192.168.1.7");
  EXPECT_EQ(Ipv4Address{0}.to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Address{0xFFFFFFFF}.to_string(), "255.255.255.255");
}

TEST(Ipv4Address, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256").has_value());
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Address::parse("").has_value());
}

// ---------------------------------------------------------------------------
// Ethernet / VLAN
// ---------------------------------------------------------------------------

TEST(Ethernet, UntaggedRoundTrip) {
  EthernetHeader hdr;
  hdr.dst = MacAddress::from_id(1);
  hdr.src = MacAddress::from_id(2);
  hdr.ether_type = kEtherTypeIpv4;
  EXPECT_EQ(hdr.wire_size(), kEthernetHeaderSize);
  std::vector<std::uint8_t> wire(hdr.wire_size());
  write_ethernet(hdr, wire);
  auto parsed = parse_ethernet(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->dst, hdr.dst);
  EXPECT_EQ(parsed->src, hdr.src);
  EXPECT_EQ(parsed->ether_type, kEtherTypeIpv4);
  EXPECT_FALSE(parsed->vlan.has_value());
}

TEST(Ethernet, TaggedRoundTrip) {
  EthernetHeader hdr;
  hdr.dst = MacAddress::from_id(1);
  hdr.src = MacAddress::from_id(2);
  hdr.ether_type = kEtherTypeIpv4;
  hdr.vlan = 3001;
  hdr.pcp = 5;
  EXPECT_EQ(hdr.wire_size(), kEthernetHeaderSize + kVlanTagSize);
  std::vector<std::uint8_t> wire(hdr.wire_size());
  write_ethernet(hdr, wire);
  auto parsed = parse_ethernet(wire);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_TRUE(parsed->vlan.has_value());
  EXPECT_EQ(*parsed->vlan, 3001);
  EXPECT_EQ(parsed->pcp, 5);
  EXPECT_EQ(parsed->ether_type, kEtherTypeIpv4);
}

TEST(Ethernet, RejectsTruncated) {
  std::vector<std::uint8_t> tiny(13);
  EXPECT_FALSE(parse_ethernet(tiny).is_ok());
  // Tagged frame cut before the inner ethertype.
  std::vector<std::uint8_t> cut(16, 0);
  cut[12] = 0x81;
  cut[13] = 0x00;
  EXPECT_FALSE(parse_ethernet(cut).is_ok());
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

TEST(Ipv4, RoundTripWithChecksum) {
  Ipv4Header hdr;
  hdr.total_length = 40;
  hdr.identification = 0x1234;
  hdr.ttl = 61;
  hdr.protocol = kIpProtoUdp;
  hdr.src = *Ipv4Address::parse("10.0.0.1");
  hdr.dst = *Ipv4Address::parse("10.0.0.2");
  std::vector<std::uint8_t> wire(hdr.header_size());
  write_ipv4(hdr, wire);
  // Checksumming the written header (checksum field included) yields 0.
  EXPECT_EQ(internet_checksum(wire), 0);
  auto parsed = parse_ipv4(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->total_length, 40);
  EXPECT_EQ(parsed->ttl, 61);
  EXPECT_EQ(parsed->protocol, kIpProtoUdp);
  EXPECT_EQ(parsed->src, hdr.src);
  EXPECT_EQ(parsed->dst, hdr.dst);
  EXPECT_TRUE(parsed->dont_fragment);
}

TEST(Ipv4, RejectsMalformed) {
  std::vector<std::uint8_t> wire(20, 0);
  wire[0] = 0x60;  // version 6
  EXPECT_FALSE(parse_ipv4(wire).is_ok());
  wire[0] = 0x43;  // IHL 3 (< 5)
  EXPECT_FALSE(parse_ipv4(wire).is_ok());
  wire[0] = 0x4F;  // IHL 15 > buffer
  EXPECT_FALSE(parse_ipv4(wire).is_ok());
  EXPECT_FALSE(parse_ipv4({wire.data(), 10}).is_ok());
  // total_length smaller than header.
  wire[0] = 0x45;
  wire[2] = 0;
  wire[3] = 10;
  EXPECT_FALSE(parse_ipv4(wire).is_ok());
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

TEST(Checksum, Rfc1071Example) {
  // Classic example: verifying a checksummed buffer gives zero.
  const std::vector<std::uint8_t> data = {0x45, 0x00, 0x00, 0x3c, 0x1c,
                                          0x46, 0x40, 0x00, 0x40, 0x06};
  const std::uint16_t sum = internet_checksum(data);
  std::vector<std::uint8_t> with_sum = data;
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum & 0xFF));
  EXPECT_EQ(internet_checksum(with_sum), 0);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd = {0x01, 0x02, 0x03};
  const std::vector<std::uint8_t> even = {0x01, 0x02, 0x03, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(even));
}

TEST(Checksum, UdpFrameVerifies) {
  // A frame produced by the builder must carry a valid UDP checksum:
  // recomputing over the received segment (skipping the checksum field)
  // reproduces the stored value.
  util::Rng rng(1);
  auto payload = rng.bytes(100);
  UdpFrameSpec spec;
  spec.eth_src = MacAddress::from_id(1);
  spec.eth_dst = MacAddress::from_id(2);
  spec.ip_src = *Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *Ipv4Address::parse("10.0.0.2");
  spec.src_port = 1111;
  spec.dst_port = 2222;
  spec.payload = payload;
  PacketBuffer frame = build_udp_frame(spec);

  auto eth = parse_ethernet(frame.data());
  ASSERT_TRUE(eth.is_ok());
  auto ip = parse_ipv4(frame.data().subspan(eth->wire_size()));
  ASSERT_TRUE(ip.is_ok());
  const std::size_t l4_off = eth->wire_size() + ip->header_size();
  const std::size_t l4_len = ip->total_length - ip->header_size();
  auto udp = parse_udp(frame.data().subspan(l4_off));
  ASSERT_TRUE(udp.is_ok());
  const std::uint16_t expected =
      l4_checksum(ip->src, ip->dst, kIpProtoUdp,
                  frame.data().subspan(l4_off, l4_len), 6);
  EXPECT_EQ(udp->checksum, expected);
}

// ---------------------------------------------------------------------------
// Flow keys
// ---------------------------------------------------------------------------

PacketBuffer make_udp(std::uint16_t sport, std::uint16_t dport) {
  UdpFrameSpec spec;
  spec.eth_src = MacAddress::from_id(1);
  spec.eth_dst = MacAddress::from_id(2);
  spec.ip_src = *Ipv4Address::parse("10.1.0.1");
  spec.ip_dst = *Ipv4Address::parse("10.2.0.1");
  spec.src_port = sport;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(32, 0xAB);
  spec.payload = payload;
  return build_udp_frame(spec);
}

TEST(FlowKey, ExtractsUdpFields) {
  PacketBuffer frame = make_udp(1234, 5678);
  auto fields = extract_flow_fields(frame.data());
  ASSERT_TRUE(fields.is_ok());
  EXPECT_EQ(fields->eth.ether_type, kEtherTypeIpv4);
  ASSERT_TRUE(fields->ipv4.has_value());
  EXPECT_EQ(fields->ipv4->protocol, kIpProtoUdp);
  ASSERT_TRUE(fields->l4_src.has_value());
  EXPECT_EQ(*fields->l4_src, 1234);
  EXPECT_EQ(*fields->l4_dst, 5678);
}

TEST(FlowKey, FiveTupleReverse) {
  PacketBuffer frame = make_udp(1000, 2000);
  auto eth = parse_ethernet(frame.data());
  auto tuple = extract_five_tuple(frame.data().subspan(eth->wire_size()));
  ASSERT_TRUE(tuple.is_ok());
  const FiveTuple reversed = tuple->reversed();
  EXPECT_EQ(reversed.src_ip, tuple->dst_ip);
  EXPECT_EQ(reversed.src_port, 2000);
  EXPECT_EQ(reversed.dst_port, 1000);
  EXPECT_EQ(reversed.reversed(), tuple.value());
}

TEST(FlowKey, HashSpreadsAndMatchesEquality) {
  FiveTupleHash hasher;
  PacketBuffer a = make_udp(1, 2);
  PacketBuffer b = make_udp(1, 2);
  auto ta = extract_five_tuple(a.data().subspan(14));
  auto tb = extract_five_tuple(b.data().subspan(14));
  EXPECT_EQ(hasher(ta.value()), hasher(tb.value()));
  auto tc = ta.value();
  tc.src_port = 3;
  EXPECT_NE(hasher(ta.value()), hasher(tc));
}

TEST(FlowKey, TcpAndIcmpExtraction) {
  TcpFrameSpec tcp_spec;
  tcp_spec.eth_src = MacAddress::from_id(1);
  tcp_spec.eth_dst = MacAddress::from_id(2);
  tcp_spec.ip_src = *Ipv4Address::parse("1.1.1.1");
  tcp_spec.ip_dst = *Ipv4Address::parse("2.2.2.2");
  tcp_spec.src_port = 443;
  tcp_spec.dst_port = 55000;
  PacketBuffer tcp_frame = build_tcp_frame(tcp_spec);
  auto tcp_tuple = extract_five_tuple(tcp_frame.data().subspan(14));
  ASSERT_TRUE(tcp_tuple.is_ok());
  EXPECT_EQ(tcp_tuple->protocol, kIpProtoTcp);
  EXPECT_EQ(tcp_tuple->src_port, 443);

  IcmpEchoSpec icmp_spec;
  icmp_spec.eth_src = MacAddress::from_id(1);
  icmp_spec.eth_dst = MacAddress::from_id(2);
  icmp_spec.ip_src = *Ipv4Address::parse("1.1.1.1");
  icmp_spec.ip_dst = *Ipv4Address::parse("2.2.2.2");
  icmp_spec.identifier = 777;
  PacketBuffer icmp_frame = build_icmp_echo(icmp_spec);
  auto icmp_tuple = extract_five_tuple(icmp_frame.data().subspan(14));
  ASSERT_TRUE(icmp_tuple.is_ok());
  EXPECT_EQ(icmp_tuple->protocol, kIpProtoIcmp);
  EXPECT_EQ(icmp_tuple->src_port, 777);  // identifier in src_port slot
}

// ---------------------------------------------------------------------------
// VLAN rewriting + checksum fixing
// ---------------------------------------------------------------------------

TEST(SetVlan, PushSetPopSequence) {
  PacketBuffer frame = make_udp(1, 2);
  const std::size_t untagged = frame.size();

  set_vlan(frame, 100);
  EXPECT_EQ(frame.size(), untagged + kVlanTagSize);
  auto tagged = parse_ethernet(frame.data());
  ASSERT_TRUE(tagged.is_ok());
  EXPECT_EQ(tagged->vlan.value_or(0), 100);

  set_vlan(frame, 200);  // rewrite in place, no growth
  EXPECT_EQ(frame.size(), untagged + kVlanTagSize);
  EXPECT_EQ(parse_ethernet(frame.data())->vlan.value_or(0), 200);

  set_vlan(frame, std::nullopt);
  EXPECT_EQ(frame.size(), untagged);
  EXPECT_FALSE(parse_ethernet(frame.data())->vlan.has_value());
}

TEST(SetVlan, TagDoesNotCorruptPayload) {
  PacketBuffer frame = make_udp(7, 8);
  const std::vector<std::uint8_t> before(frame.data().begin() + 14,
                                         frame.data().end());
  set_vlan(frame, 300);
  set_vlan(frame, std::nullopt);
  const std::vector<std::uint8_t> after(frame.data().begin() + 14,
                                        frame.data().end());
  EXPECT_EQ(before, after);
}

TEST(FixChecksums, RepairsAfterRewrite) {
  PacketBuffer frame = make_udp(1234, 80);
  // Corrupt the destination address directly (as NAT would).
  auto eth = parse_ethernet(frame.data());
  auto ip = parse_ipv4(frame.data().subspan(eth->wire_size()));
  Ipv4Header rewritten = ip.value();
  rewritten.dst = *Ipv4Address::parse("99.99.99.99");
  write_ipv4(rewritten, frame.data().subspan(eth->wire_size(),
                                             rewritten.header_size()));
  fix_checksums(frame);

  auto ip2 = parse_ipv4(frame.data().subspan(eth->wire_size()));
  ASSERT_TRUE(ip2.is_ok());
  // IP header checksum valid:
  EXPECT_EQ(internet_checksum(frame.data().subspan(eth->wire_size(),
                                                   ip2->header_size())),
            0);
  // UDP checksum valid:
  const std::size_t l4_off = eth->wire_size() + ip2->header_size();
  const std::size_t l4_len = ip2->total_length - ip2->header_size();
  auto udp = parse_udp(frame.data().subspan(l4_off));
  const std::uint16_t expected =
      l4_checksum(ip2->src, ip2->dst, kIpProtoUdp,
                  frame.data().subspan(l4_off, l4_len), 6);
  EXPECT_EQ(udp->checksum, expected);
}

// ---------------------------------------------------------------------------
// ESP header
// ---------------------------------------------------------------------------

TEST(Esp, RoundTrip) {
  EspHeader hdr{0xDEADBEEF, 42};
  std::vector<std::uint8_t> wire(kEspHeaderSize);
  write_esp(hdr, wire);
  auto parsed = parse_esp(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed->spi, 0xDEADBEEFu);
  EXPECT_EQ(parsed->sequence, 42u);
  EXPECT_FALSE(parse_esp({wire.data(), 7}).is_ok());
}

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

TEST(Builder, UdpFrameLengthsConsistent) {
  util::Rng rng(2);
  for (std::size_t payload_size : {0u, 1u, 100u, 1408u}) {
    auto payload = rng.bytes(payload_size);
    UdpFrameSpec spec;
    spec.ip_src = *Ipv4Address::parse("10.0.0.1");
    spec.ip_dst = *Ipv4Address::parse("10.0.0.2");
    spec.payload = payload;
    PacketBuffer frame = build_udp_frame(spec);
    EXPECT_EQ(frame.size(), 14 + 20 + 8 + payload_size);
    auto ip = parse_ipv4(frame.data().subspan(14));
    EXPECT_EQ(ip->total_length, 28 + payload_size);
    auto udp = parse_udp(frame.data().subspan(34));
    EXPECT_EQ(udp->length, 8 + payload_size);
  }
}

TEST(Builder, VlanTaggedUdpFrame) {
  UdpFrameSpec spec;
  spec.vlan = 42;
  spec.ip_src = *Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *Ipv4Address::parse("10.0.0.2");
  PacketBuffer frame = build_udp_frame(spec);
  auto eth = parse_ethernet(frame.data());
  ASSERT_TRUE(eth.is_ok());
  EXPECT_EQ(eth->vlan.value_or(0), 42);
  EXPECT_EQ(frame.size(), 18u + 28u);
}

TEST(Builder, IcmpChecksumVerifies) {
  IcmpEchoSpec spec;
  spec.ip_src = *Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *Ipv4Address::parse("10.0.0.2");
  spec.identifier = 1;
  spec.sequence = 2;
  PacketBuffer frame = build_icmp_echo(spec);
  auto ip = parse_ipv4(frame.data().subspan(14));
  const std::size_t l4_off = 14 + ip->header_size();
  const std::size_t l4_len = ip->total_length - ip->header_size();
  EXPECT_EQ(internet_checksum(frame.data().subspan(l4_off, l4_len)), 0);
}

}  // namespace
}  // namespace nnfv::packet
