// Adaptation-layer burst coverage (ISSUE 3): a single-interface NNF
// behind the layer receives an N-frame burst as ONE process_burst call,
// per-packet subclasses still see N ordered process() calls, and the
// IpsecEndpoint burst override matches the per-packet path bit-for-bit.
#include <gtest/gtest.h>

#include <vector>

#include "nnf/adaptation.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "packet/headers.hpp"
#include "util/rng.hpp"

namespace nnfv::nnf {
namespace {

packet::PacketBuffer tagged_frame(std::uint16_t vlan, std::uint8_t tag) {
  packet::UdpFrameSpec spec;
  spec.vlan = vlan;
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
  static std::vector<std::uint8_t> payload;
  payload.assign(32, tag);  // payload[i] identifies the frame in asserts
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

std::uint8_t frame_tag(const packet::PacketBuffer& frame) {
  return frame.data()[frame.size() - 1];  // last payload byte
}

/// Per-packet NF: relies on the NetworkFunction::process_burst shim.
/// Records every process() call and echoes the frame out of port 0.
class PerPacketNf : public NetworkFunction {
 public:
  [[nodiscard]] std::string_view type() const override { return "recorder"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }
  util::Status configure(ContextId, const NfConfig&) override {
    return util::Status::ok();
  }
  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime,
                                packet::PacketBuffer&& frame) override {
    calls.push_back({ctx, in_port, frame_tag(frame)});
    std::vector<NfOutput> out;
    out.push_back(NfOutput{0, std::move(frame)});
    return out;
  }

  struct Call {
    ContextId ctx;
    NfPortIndex port;
    std::uint8_t tag;
  };
  std::vector<Call> calls;
};

/// Burst-aware NF: overrides process_burst and counts whole-burst calls.
class BurstNf : public PerPacketNf {
 public:
  std::vector<NfOutput> process_burst(ContextId ctx, NfPortIndex in_port,
                                      sim::SimTime now,
                                      packet::PacketBurst&& burst) override {
    burst_sizes.push_back(burst.size());
    return PerPacketNf::process_burst(ctx, in_port, now, std::move(burst));
  }
  std::vector<std::size_t> burst_sizes;
};

TEST(AdaptationBurst, BurstNfSeesOneCallPerPathGroup) {
  BurstNf nf;
  AdaptationLayer layer(nf);
  ASSERT_TRUE(layer.bind(kDefaultContext, 0, 100).is_ok());
  ASSERT_TRUE(layer.bind(kDefaultContext, 1, 101).is_ok());

  packet::PacketBurst burst;
  for (std::uint8_t i = 0; i < 5; ++i) burst.push_back(tagged_frame(100, i));
  layer.receive_burst(0, std::move(burst));

  // One process_burst with all 5 frames — not 5 calls of 1.
  ASSERT_EQ(nf.burst_sizes.size(), 1u);
  EXPECT_EQ(nf.burst_sizes[0], 5u);
  EXPECT_EQ(layer.stats().in_frames, 5u);
  EXPECT_EQ(layer.stats().out_frames, 5u);
}

TEST(AdaptationBurst, PerPacketNfSeesOrderedIndividualCalls) {
  PerPacketNf nf;
  AdaptationLayer layer(nf);
  ASSERT_TRUE(layer.bind(kDefaultContext, 0, 100).is_ok());

  packet::PacketBurst burst;
  for (std::uint8_t i = 0; i < 8; ++i) burst.push_back(tagged_frame(100, i));
  layer.receive_burst(0, std::move(burst));

  // The default shim unrolled the burst: 8 calls, arrival order intact.
  ASSERT_EQ(nf.calls.size(), 8u);
  for (std::uint8_t i = 0; i < 8; ++i) {
    EXPECT_EQ(nf.calls[i].tag, i);
    EXPECT_EQ(nf.calls[i].port, 0u);
  }
}

TEST(AdaptationBurst, MixedMarksGroupPerPathAndKeepOrder) {
  BurstNf nf;
  ASSERT_TRUE(nf.add_context(7).is_ok());
  AdaptationLayer layer(nf);
  ASSERT_TRUE(layer.bind(kDefaultContext, 0, 100).is_ok());
  ASSERT_TRUE(layer.bind(7, 1, 200).is_ok());

  // Interleaved marks: 100,200,100,200,100.
  packet::PacketBurst burst;
  burst.push_back(tagged_frame(100, 0));
  burst.push_back(tagged_frame(200, 1));
  burst.push_back(tagged_frame(100, 2));
  burst.push_back(tagged_frame(200, 3));
  burst.push_back(tagged_frame(100, 4));
  layer.receive_burst(0, std::move(burst));

  // Two groups: (ctx 0, port 0) x3 then (ctx 7, port 1) x2.
  ASSERT_EQ(nf.burst_sizes.size(), 2u);
  EXPECT_EQ(nf.burst_sizes[0], 3u);
  EXPECT_EQ(nf.burst_sizes[1], 2u);
  ASSERT_EQ(nf.calls.size(), 5u);
  EXPECT_EQ(nf.calls[0].tag, 0);
  EXPECT_EQ(nf.calls[1].tag, 2);
  EXPECT_EQ(nf.calls[2].tag, 4);
  EXPECT_EQ(nf.calls[0].ctx, kDefaultContext);
  EXPECT_EQ(nf.calls[3].tag, 1);
  EXPECT_EQ(nf.calls[4].tag, 3);
  EXPECT_EQ(nf.calls[3].ctx, 7u);
  EXPECT_EQ(nf.calls[3].port, 1u);
}

TEST(AdaptationBurst, EgressLeavesAsOneRemarkedBurst) {
  BurstNf nf;
  AdaptationLayer layer(nf);
  ASSERT_TRUE(layer.bind(kDefaultContext, 0, 100).is_ok());

  std::vector<packet::PacketBurst> egress_bursts;
  layer.set_burst_transmit([&](packet::PacketBurst&& out) {
    egress_bursts.push_back(std::move(out));
  });
  std::size_t single_transmits = 0;
  layer.set_transmit([&](packet::PacketBuffer&&) { ++single_transmits; });

  packet::PacketBurst burst;
  for (std::uint8_t i = 0; i < 4; ++i) burst.push_back(tagged_frame(100, i));
  layer.receive_burst(0, std::move(burst));

  // All 4 outputs leave in one burst-transmit call, re-marked, in order;
  // the per-frame transmit is not used when a burst transmit is wired.
  EXPECT_EQ(single_transmits, 0u);
  ASSERT_EQ(egress_bursts.size(), 1u);
  ASSERT_EQ(egress_bursts[0].size(), 4u);
  for (std::uint8_t i = 0; i < 4; ++i) {
    auto eth = packet::parse_ethernet(egress_bursts[0][i].data());
    ASSERT_TRUE(eth.is_ok());
    ASSERT_TRUE(eth->vlan.has_value());
    EXPECT_EQ(*eth->vlan, 100);
    EXPECT_EQ(frame_tag(egress_bursts[0][i]), i);
  }
}

TEST(AdaptationBurst, UntaggedAndUnmappedFramesAreCountedAndDropped) {
  BurstNf nf;
  AdaptationLayer layer(nf);
  ASSERT_TRUE(layer.bind(kDefaultContext, 0, 100).is_ok());

  packet::PacketBurst burst;
  burst.push_back(tagged_frame(100, 0));
  auto untagged = tagged_frame(100, 1);
  packet::set_vlan(untagged, std::nullopt);
  burst.push_back(std::move(untagged));
  burst.push_back(tagged_frame(999, 2));  // no binding
  layer.receive_burst(0, std::move(burst));

  EXPECT_EQ(layer.stats().untagged, 1u);
  EXPECT_EQ(layer.stats().unmapped_in, 1u);
  ASSERT_EQ(nf.burst_sizes.size(), 1u);
  EXPECT_EQ(nf.burst_sizes[0], 1u);
}

// ---------------------------------------------------------------------------
// IpsecEndpoint::process_burst
// ---------------------------------------------------------------------------

NfConfig ipsec_config(const char* local, const char* peer,
                      const char* spi_out, const char* spi_in) {
  return {{"local_ip", local}, {"peer_ip", peer},
          {"spi_out", spi_out}, {"spi_in", spi_in},
          {"enc_key", "000102030405060708090a0b0c0d0e0f"},
          {"auth_key",
           "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
}

packet::PacketBuffer inner_frame(std::uint64_t seed) {
  util::Rng rng(seed);
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
  const std::vector<std::uint8_t> payload = rng.bytes(100 + seed % 300);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

TEST(IpsecBurst, BurstEncapMatchesPerPacketPathBitForBit) {
  IpsecEndpoint burst_endpoint;
  IpsecEndpoint packet_endpoint;
  const auto config =
      ipsec_config("198.51.100.1", "198.51.100.2", "1001", "2002");
  ASSERT_TRUE(burst_endpoint.configure(kDefaultContext, config).is_ok());
  ASSERT_TRUE(packet_endpoint.configure(kDefaultContext, config).is_ok());

  packet::PacketBurst burst;
  for (std::uint64_t i = 0; i < 6; ++i) burst.push_back(inner_frame(i));
  auto burst_out =
      burst_endpoint.process_burst(kDefaultContext, 0, 0, std::move(burst));
  ASSERT_EQ(burst_out.size(), 6u);
  EXPECT_EQ(burst_endpoint.stats().encapsulated, 6u);

  for (std::uint64_t i = 0; i < 6; ++i) {
    auto one =
        packet_endpoint.process(kDefaultContext, 0, 0, inner_frame(i));
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(burst_out[i].port, 1u);
    const auto got = burst_out[i].frame.data();
    const auto want = one[0].frame.data();
    ASSERT_EQ(got.size(), want.size()) << "frame " << i;
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
        << "frame " << i;
  }
}

TEST(IpsecBurst, BurstRoundTripThroughResponder) {
  IpsecEndpoint initiator;
  IpsecEndpoint responder;
  ASSERT_TRUE(initiator
                  .configure(kDefaultContext,
                             ipsec_config("198.51.100.1", "198.51.100.2",
                                          "1001", "2002"))
                  .is_ok());
  ASSERT_TRUE(responder
                  .configure(kDefaultContext,
                             ipsec_config("198.51.100.2", "198.51.100.1",
                                          "2002", "1001"))
                  .is_ok());

  packet::PacketBurst burst;
  for (std::uint64_t i = 0; i < 8; ++i) burst.push_back(inner_frame(i));
  auto encapsulated =
      initiator.process_burst(kDefaultContext, 0, 0, std::move(burst));
  ASSERT_EQ(encapsulated.size(), 8u);

  packet::PacketBurst black;
  for (NfOutput& out : encapsulated) black.push_back(std::move(out.frame));
  auto decapsulated =
      responder.process_burst(kDefaultContext, 1, 0, std::move(black));
  ASSERT_EQ(decapsulated.size(), 8u);
  EXPECT_EQ(responder.stats().decapsulated, 8u);
  EXPECT_EQ(responder.stats().auth_failures, 0u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(decapsulated[i].port, 0u);
    // Inner payload round-trips (frame i's UDP payload was seeded with i).
    const auto inner = inner_frame(i);
    EXPECT_EQ(decapsulated[i].frame.size(), inner.size());
  }
}

TEST(IpsecBurst, UnconfiguredContextCountsWholeBurstAsNoSa) {
  IpsecEndpoint endpoint;  // never configured
  packet::PacketBurst burst;
  for (std::uint64_t i = 0; i < 3; ++i) burst.push_back(inner_frame(i));
  auto out = endpoint.process_burst(kDefaultContext, 0, 0, std::move(burst));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(endpoint.stats().no_sa, 3u);

  packet::PacketBurst bad_port;
  bad_port.push_back(inner_frame(0));
  out = endpoint.process_burst(kDefaultContext, 5, 0, std::move(bad_port));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(endpoint.stats().malformed, 1u);
}

}  // namespace
}  // namespace nnfv::nnf
