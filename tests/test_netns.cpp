// Simulated network-namespace semantics the NNF driver relies on.
#include <gtest/gtest.h>

#include "netns/netns.hpp"

namespace nnfv::netns {
namespace {

TEST(Netns, RootNamespaceAlwaysExists) {
  NamespaceRegistry registry;
  EXPECT_EQ(registry.count(), 1u);
  EXPECT_TRUE(
      registry.create_interface(kRootNamespace, "lo").is_ok());
}

TEST(Netns, CreateAndLookup) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns-ipsec-1");
  ASSERT_TRUE(ns.is_ok());
  EXPECT_TRUE(registry.exists("ns-ipsec-1"));
  EXPECT_EQ(registry.id_of("ns-ipsec-1").value(), ns.value());
  EXPECT_FALSE(registry.exists("other"));
  EXPECT_FALSE(registry.id_of("other").is_ok());
}

TEST(Netns, DuplicateNameRejected) {
  NamespaceRegistry registry;
  ASSERT_TRUE(registry.create("ns1").is_ok());
  auto dup = registry.create("ns1");
  EXPECT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.status().code(), util::ErrorCode::kAlreadyExists);
  EXPECT_FALSE(registry.create("").is_ok());
}

TEST(Netns, InterfaceNamesUniquePerNamespaceOnly) {
  NamespaceRegistry registry;
  auto ns1 = registry.create("ns1");
  auto ns2 = registry.create("ns2");
  EXPECT_TRUE(registry.create_interface(ns1.value(), "eth0").is_ok());
  EXPECT_FALSE(registry.create_interface(ns1.value(), "eth0").is_ok());
  // Same name in another namespace is fine (kernel semantics).
  EXPECT_TRUE(registry.create_interface(ns2.value(), "eth0").is_ok());
}

TEST(Netns, VethPairSpansNamespaces) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns1");
  ASSERT_TRUE(registry
                  .create_veth(kRootNamespace, "veth-host", ns.value(),
                               "eth0")
                  .is_ok());
  auto host_end = registry.interface(kRootNamespace, "veth-host");
  ASSERT_TRUE(host_end.has_value());
  EXPECT_EQ(host_end->veth_peer.value_or(""), "eth0");
  auto ns_end = registry.interface(ns.value(), "eth0");
  ASSERT_TRUE(ns_end.has_value());
  EXPECT_EQ(ns_end->veth_peer.value_or(""), "veth-host");
}

TEST(Netns, VethRejectsDuplicateEndAndRollsBack) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns1");
  ASSERT_TRUE(registry.create_interface(ns.value(), "eth0").is_ok());
  // Second end collides; the first end must not leak.
  EXPECT_FALSE(registry
                   .create_veth(kRootNamespace, "veth-x", ns.value(), "eth0")
                   .is_ok());
  EXPECT_FALSE(registry.interface(kRootNamespace, "veth-x").has_value());
}

TEST(Netns, DeletingOneVethEndDeletesPeer) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns1");
  ASSERT_TRUE(
      registry.create_veth(kRootNamespace, "vh", ns.value(), "eth0").is_ok());
  ASSERT_TRUE(registry.delete_interface(kRootNamespace, "vh").is_ok());
  EXPECT_FALSE(registry.interface(ns.value(), "eth0").has_value());
  EXPECT_TRUE(registry.interfaces_in(ns.value()).empty());
}

TEST(Netns, DestroyNamespaceRemovesInterfacesAndPeers) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns1");
  ASSERT_TRUE(
      registry.create_veth(kRootNamespace, "vh", ns.value(), "eth0").is_ok());
  ASSERT_TRUE(registry.create_interface(ns.value(), "dummy0").is_ok());
  auto removed = registry.destroy("ns1");
  ASSERT_TRUE(removed.is_ok());
  // Both the in-namespace interfaces and the host-side veth end are gone.
  EXPECT_FALSE(registry.exists("ns1"));
  EXPECT_FALSE(registry.interface(kRootNamespace, "vh").has_value());
  // Inventory mentions all three names.
  EXPECT_EQ(removed->size(), 3u);
}

TEST(Netns, DestroyUnknownFails) {
  NamespaceRegistry registry;
  EXPECT_FALSE(registry.destroy("ghost").is_ok());
}

TEST(Netns, MoveInterfaceBetweenNamespaces) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns1");
  ASSERT_TRUE(registry.create_interface(kRootNamespace, "tap0").is_ok());
  ASSERT_TRUE(
      registry.move_interface("tap0", kRootNamespace, ns.value()).is_ok());
  EXPECT_FALSE(registry.interface(kRootNamespace, "tap0").has_value());
  auto moved = registry.interface(ns.value(), "tap0");
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(moved->ns, ns.value());
}

TEST(Netns, MoveRejectsNameCollision) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns1");
  ASSERT_TRUE(registry.create_interface(kRootNamespace, "eth0").is_ok());
  ASSERT_TRUE(registry.create_interface(ns.value(), "eth0").is_ok());
  EXPECT_FALSE(
      registry.move_interface("eth0", kRootNamespace, ns.value()).is_ok());
}

TEST(Netns, MovedVethKeepsPeerLinkage) {
  NamespaceRegistry registry;
  auto ns1 = registry.create("ns1");
  auto ns2 = registry.create("ns2");
  ASSERT_TRUE(
      registry.create_veth(kRootNamespace, "vA", ns1.value(), "vB").is_ok());
  ASSERT_TRUE(
      registry.move_interface("vA", kRootNamespace, ns2.value()).is_ok());
  // Deleting the moved end still removes the peer.
  ASSERT_TRUE(registry.delete_interface(ns2.value(), "vA").is_ok());
  EXPECT_FALSE(registry.interface(ns1.value(), "vB").has_value());
}

TEST(Netns, UpDownFlag) {
  NamespaceRegistry registry;
  ASSERT_TRUE(registry.create_interface(kRootNamespace, "eth0").is_ok());
  EXPECT_FALSE(registry.interface(kRootNamespace, "eth0")->up);
  ASSERT_TRUE(
      registry.set_interface_up(kRootNamespace, "eth0", true).is_ok());
  EXPECT_TRUE(registry.interface(kRootNamespace, "eth0")->up);
  EXPECT_FALSE(
      registry.set_interface_up(kRootNamespace, "ghost", true).is_ok());
}

TEST(Netns, InterfacesInListsSorted) {
  NamespaceRegistry registry;
  auto ns = registry.create("ns1");
  ASSERT_TRUE(registry.create_interface(ns.value(), "b").is_ok());
  ASSERT_TRUE(registry.create_interface(ns.value(), "a").is_ok());
  auto list = registry.interfaces_in(ns.value());
  EXPECT_EQ(list, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(registry.interfaces_in(999).empty());
}

}  // namespace
}  // namespace nnfv::netns
