// Overload-resilience tests: the fault-injection harness, the worker
// watchdog's stall-detect/restart recovery, and priority-aware load
// shedding with per-worker drop attribution.
//
// These suites (FaultInject.*, Watchdog.*, Overload.*) run under the
// TSan and ASan CI jobs: the recovery path supersedes a live thread, so
// a data race here is a real bug, not test noise.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "exec/datapath_executor.hpp"
#include "exec/fault_inject.hpp"
#include "exec/priority.hpp"
#include "exec/watchdog.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "packet/headers.hpp"
#include "packet/mbuf.hpp"

namespace nnfv {
namespace {

using namespace std::chrono_literals;

packet::PacketBuffer make_udp(std::uint32_t flow, std::uint16_t sport,
                              std::uint16_t dport = 4789) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(0x11);
  spec.eth_dst = packet::MacAddress::from_id(0x22);
  spec.ip_src = packet::Ipv4Address{0x0A000000u + flow};  // 10.0.x.x
  spec.ip_dst = *packet::Ipv4Address::parse("192.0.2.1");
  spec.src_port = sport;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(64, 0xAB);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

packet::PacketBuffer make_arp() {
  std::array<std::uint8_t, 42> raw{};
  packet::EthernetHeader eth;
  eth.dst = packet::MacAddress::from_id(0xFF);
  eth.src = packet::MacAddress::from_id(0x11);
  eth.ether_type = packet::kEtherTypeArp;
  packet::write_ethernet(eth, raw);
  return packet::PacketBuffer::copy_of(raw);
}

packet::PacketBuffer make_esp(std::uint32_t spi) {
  std::array<std::uint8_t, 14 + 20 + 8> raw{};
  packet::EthernetHeader eth;
  eth.dst = packet::MacAddress::from_id(0x22);
  eth.src = packet::MacAddress::from_id(0x11);
  eth.ether_type = packet::kEtherTypeIpv4;
  packet::write_ethernet(eth, raw);
  packet::Ipv4Header ip;
  ip.total_length = 20 + 8;
  ip.protocol = packet::kIpProtoEsp;
  ip.src = *packet::Ipv4Address::parse("198.51.100.1");
  ip.dst = *packet::Ipv4Address::parse("198.51.100.2");
  packet::write_ipv4(ip, std::span(raw).subspan(14));
  packet::EspHeader esp;
  esp.spi = spi;
  esp.sequence = 1;
  packet::write_esp(esp, std::span(raw).subspan(34));
  return packet::PacketBuffer::copy_of(raw);
}

/// Enables the fault injector for one test and guarantees a clean,
/// disabled harness afterwards, whatever the test's outcome.
struct ScopedFaultInjection {
  ScopedFaultInjection() { exec::FaultInjector::instance().set_enabled(true); }
  ~ScopedFaultInjection() {
    exec::FaultInjector::instance().reset();
    exec::FaultInjector::instance().set_enabled(false);
  }
};

/// Polls `cond` up to `timeout`; true when it became true.
template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

std::uint64_t pool_outstanding() {
  const packet::MbufPoolStats s = packet::MbufPool::global_stats();
  return s.segment_allocs - s.segment_frees;
}

// ---------------------------------------------------------------------------
// FaultInject
// ---------------------------------------------------------------------------

TEST(FaultInject, InertWhenNothingIsArmed) {
  exec::FaultInjector& injector = exec::FaultInjector::instance();
  EXPECT_EQ(injector.stalled_threads(), 0u);
  EXPECT_FALSE(injector.should_fail_handoff(0, 1));
  EXPECT_EQ(injector.hoarded(), 0u);
  // An armed-then-reset harness goes back to inert.
  ScopedFaultInjection scoped;
  injector.fail_handoffs(0, 1, 5);
  injector.reset();
  EXPECT_FALSE(injector.should_fail_handoff(0, 1));
}

TEST(FaultInject, StallCapturesExactlyOneThreadAndReleases) {
  ScopedFaultInjection scoped;
  exec::FaultInjector& injector = exec::FaultInjector::instance();
  std::array<std::atomic<std::uint64_t>, 2> processed{};
  exec::DatapathExecutorConfig config;
  config.workers = 2;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext& ctx, std::uint32_t,
                  packet::PacketBurst&& burst) {
        processed[ctx.index()].fetch_add(burst.size());
      });
  injector.stall_worker(0);
  ASSERT_TRUE(eventually([&] { return injector.stalled_threads() == 1; }));
  // The other worker keeps processing while worker 0 is captured.
  ASSERT_TRUE(executor.submit_to(1, 0, make_udp(1, 1000)));
  ASSERT_TRUE(eventually([&] { return processed[1].load() == 1; }));
  // Frames for the captured worker pile up in its ring untouched.
  ASSERT_TRUE(executor.submit_to(0, 0, make_udp(2, 1000)));
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(processed[0].load(), 0u);
  injector.release_stall();
  executor.drain();
  EXPECT_EQ(processed[0].load(), 1u);
  EXPECT_TRUE(eventually([&] { return injector.stalled_threads() == 0; }));
  executor.stop();
}

TEST(FaultInject, HandoffFailuresCountAgainstTheOrderedPair) {
  ScopedFaultInjection scoped;
  exec::FaultInjector::instance().fail_handoffs(0, 1, 3);
  std::array<std::atomic<std::uint64_t>, 2> arrived{};
  exec::DatapathExecutorConfig config;
  config.workers = 2;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext& ctx, std::uint32_t tag,
                  packet::PacketBurst&& burst) {
        if (tag == 0 && ctx.index() == 0) {
          for (packet::PacketBuffer& frame : burst) {
            (void)ctx.handoff(1, 1, std::move(frame));
          }
          return;
        }
        arrived[ctx.index()].fetch_add(burst.size());
      });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(executor.submit_to(0, 0, make_udp(1, 1000)));
  }
  executor.drain();
  EXPECT_EQ(executor.handoff_drops(0, 1), 3u);
  EXPECT_EQ(executor.handoff_drops(1, 0), 0u);
  EXPECT_EQ(executor.worker_stats(0).handoff_drops, 3u);
  EXPECT_EQ(executor.worker_stats(0).handoff_out, 7u);
  EXPECT_EQ(executor.worker_stats(1).handoff_in, 7u);
  EXPECT_EQ(arrived[1].load(), 7u);
  executor.stop();
}

TEST(FaultInject, PoolHoardForcesHeapOverflow) {
  ScopedFaultInjection scoped;
  exec::FaultInjector& injector = exec::FaultInjector::instance();
  packet::MbufPool pool(/*prealloc_segments=*/8, /*slab_segments=*/0);
  injector.hoard_segments(pool, 8);
  EXPECT_EQ(injector.hoarded(), 8u);
  EXPECT_EQ(pool.stats().segment_allocs, 8u);
  EXPECT_EQ(pool.stats().heap_allocs, 0u);
  // The pool is dry and cannot grow: the next alloc overflows to the
  // heap path (counted, never failing).
  packet::MbufSegment* overflow = pool.alloc(128);
  ASSERT_NE(overflow, nullptr);
  EXPECT_EQ(overflow->owner, nullptr);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  overflow->refcount.store(0, std::memory_order_relaxed);
  packet::MbufPool::free_segment(overflow);
  injector.release_hoard();
  EXPECT_EQ(injector.hoarded(), 0u);
  // Accounting balanced: everything hoarded went back to the pool.
  const packet::MbufPoolStats stats = pool.stats();
  EXPECT_EQ(stats.segment_allocs, 9u);
  EXPECT_EQ(stats.segment_frees, 8u);  // the heap segment was deleted
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, DetectsStallAndRestartsWorker) {
  ScopedFaultInjection scoped;
  exec::FaultInjector& injector = exec::FaultInjector::instance();
  std::array<std::atomic<std::uint64_t>, 2> processed{};
  exec::DatapathExecutorConfig config;
  config.workers = 2;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext& ctx, std::uint32_t,
                  packet::PacketBurst&& burst) {
        processed[ctx.index()].fetch_add(burst.size());
      });
  exec::WatchdogConfig wd;
  wd.stall_timeout_ms = 50;
  exec::Watchdog watchdog(executor, wd);

  injector.stall_worker(0);
  ASSERT_TRUE(eventually([&] { return injector.stalled_threads() == 1; }));
  const std::uint64_t outstanding_before = pool_outstanding();

  constexpr std::size_t kFrames = 64;
  for (std::size_t i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(executor.submit_to(0, 0, make_udp(1, 1000)));
  }
  // The watchdog must notice the frozen heartbeat + backlog, supersede
  // the captured thread and respawn; traffic on the shard then resumes.
  ASSERT_TRUE(
      eventually([&] { return watchdog.restarts_performed() == 1; }));
  executor.drain();
  EXPECT_EQ(processed[0].load(), kFrames);
  const exec::WorkerStats stats = executor.worker_stats(0);
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(watchdog.stalls_detected(), 1u);
  // The superseded thread was released by the generation bump.
  EXPECT_TRUE(eventually([&] { return injector.stalled_threads() == 0; }));

  watchdog.stop();
  executor.stop();
  // No pooled segment leaked across the restart: every frame that went
  // through the recovery window was processed and recycled.
  EXPECT_EQ(pool_outstanding(), outstanding_before);
  EXPECT_EQ(executor.worker_stats(1).restarts, 0u);
}

TEST(Watchdog, IdleWorkersAreNotRestarted) {
  exec::DatapathExecutorConfig config;
  config.workers = 2;
  exec::DatapathExecutor executor(
      config,
      [&](exec::WorkerContext&, std::uint32_t, packet::PacketBurst&&) {});
  exec::WatchdogConfig wd;
  wd.stall_timeout_ms = 20;
  exec::Watchdog watchdog(executor, wd);
  std::this_thread::sleep_for(150ms);
  EXPECT_EQ(watchdog.stalls_detected(), 0u);
  EXPECT_EQ(watchdog.restarts_performed(), 0u);
  watchdog.stop();
  executor.stop();
}

TEST(Watchdog, DetectOnlyModeCountsButDoesNotRestart) {
  ScopedFaultInjection scoped;
  exec::FaultInjector& injector = exec::FaultInjector::instance();
  std::atomic<std::uint64_t> processed{0};
  exec::DatapathExecutorConfig config;
  config.workers = 1;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext&, std::uint32_t,
                  packet::PacketBurst&& burst) {
        processed.fetch_add(burst.size());
      });
  exec::WatchdogConfig wd;
  wd.stall_timeout_ms = 30;
  wd.restart_stalled = false;
  exec::Watchdog watchdog(executor, wd);
  injector.stall_worker(0);
  ASSERT_TRUE(eventually([&] { return injector.stalled_threads() == 1; }));
  ASSERT_TRUE(executor.submit_to(0, 0, make_udp(1, 1000)));
  ASSERT_TRUE(eventually([&] { return watchdog.stalls_detected() >= 1; }));
  EXPECT_EQ(watchdog.restarts_performed(), 0u);
  EXPECT_EQ(executor.worker_stats(0).restarts, 0u);
  injector.release_stall();
  executor.drain();
  EXPECT_EQ(processed.load(), 1u);
  watchdog.stop();
  executor.stop();
}

TEST(Watchdog, HeartbeatAdvancesOnIdleWorkers) {
  exec::DatapathExecutorConfig config;
  config.workers = 1;
  exec::DatapathExecutor executor(
      config,
      [&](exec::WorkerContext&, std::uint32_t, packet::PacketBurst&&) {});
  const std::uint64_t first = executor.worker_heartbeat(0);
  // The idle loop's doorbell sleep is bounded, so the heartbeat keeps
  // moving with no traffic at all — the invariant stall detection needs.
  EXPECT_TRUE(eventually(
      [&] { return executor.worker_heartbeat(0) > first; }, 1000ms));
  executor.stop();
}

// ---------------------------------------------------------------------------
// Overload (priority shedding + drop attribution)
// ---------------------------------------------------------------------------

TEST(Overload, ClassifierSplitsControlFromBulk) {
  const auto bulk = make_udp(1, 40000);
  EXPECT_EQ(exec::classify_priority(bulk.data()),
            exec::FramePriority::kBulk);
  const auto arp = make_arp();
  EXPECT_EQ(exec::classify_priority(arp.data()),
            exec::FramePriority::kControl);
  const auto dhcp = make_udp(1, 68, 67);
  EXPECT_EQ(exec::classify_priority(dhcp.data()),
            exec::FramePriority::kControl);
  // ESP is bulk unless its SPI belongs to an in-flight rekey.
  const auto esp = make_esp(7001);
  EXPECT_EQ(exec::classify_priority(esp.data()),
            exec::FramePriority::kBulk);
  exec::ControlSpiRegistry::instance().add(7001);
  EXPECT_EQ(exec::classify_priority(esp.data()),
            exec::FramePriority::kControl);
  exec::ControlSpiRegistry::instance().remove(7001);
  EXPECT_EQ(exec::classify_priority(esp.data()),
            exec::FramePriority::kBulk);
}

TEST(Overload, BulkShedsAtHighWatermarkWhileControlSurvives) {
  ScopedFaultInjection scoped;
  exec::FaultInjector& injector = exec::FaultInjector::instance();
  exec::DatapathExecutorConfig config;
  config.workers = 1;
  config.ring_capacity = 64;
  config.block_on_full = false;
  config.shed_enabled = true;
  config.shed_high_watermark = 8;
  config.shed_low_watermark = 4;
  config.shed_hard_watermark = 10;
  std::atomic<std::uint64_t> processed{0};
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext&, std::uint32_t,
                  packet::PacketBurst&& burst) {
        processed.fetch_add(burst.size());
      });
  // Freeze the only worker so ring occupancy is fully deterministic.
  injector.stall_worker(0);
  ASSERT_TRUE(eventually([&] { return injector.stalled_threads() == 1; }));

  // 30 bulk frames: occupancies 0..7 are admitted, the 9th submit sees
  // occupancy 8 == shed_high, arms shedding, and bulk sheds from there.
  packet::PacketBurst bulk;
  for (int i = 0; i < 30; ++i) bulk.push_back(make_udp(1, 40000));
  EXPECT_EQ(executor.submit_burst(0, std::move(bulk)), 8u);
  exec::WorkerStats stats = executor.worker_stats(0);
  EXPECT_EQ(stats.shed_bulk, 22u);
  EXPECT_EQ(stats.shed_control, 0u);

  // Control frames are still admitted (occupancy 8, 9 < shed_hard=10),
  // then shed once the hard watermark is reached.
  packet::PacketBurst control;
  for (int i = 0; i < 5; ++i) control.push_back(make_arp());
  EXPECT_EQ(executor.submit_burst(0, std::move(control)), 2u);
  stats = executor.worker_stats(0);
  EXPECT_EQ(stats.shed_control, 3u);
  EXPECT_EQ(stats.shed_bulk, 22u);
  EXPECT_EQ(stats.ingress_drops, 0u);  // shed ≠ tail drop

  // Hysteresis: once the worker drains below shed_low, bulk is admitted
  // again.
  injector.release_stall();
  executor.drain();
  EXPECT_EQ(processed.load(), 10u);
  packet::PacketBurst after;
  after.push_back(make_udp(1, 40000));
  EXPECT_EQ(executor.submit_burst(0, std::move(after)), 1u);
  executor.drain();
  stats = executor.worker_stats(0);
  EXPECT_EQ(stats.shed_bulk, 22u);  // unchanged
  EXPECT_EQ(processed.load(), 11u);
  executor.stop();
}

TEST(Overload, IngressDropsAreAttributedToTheHotShard) {
  ScopedFaultInjection scoped;
  exec::FaultInjector& injector = exec::FaultInjector::instance();
  exec::DatapathExecutorConfig config;
  config.workers = 2;
  config.ring_capacity = 4;  // rounds up to a usable capacity of 7
  config.block_on_full = false;
  exec::DatapathExecutor executor(
      config,
      [&](exec::WorkerContext&, std::uint32_t, packet::PacketBurst&&) {});
  injector.stall_worker(0);
  ASSERT_TRUE(eventually([&] { return injector.stalled_threads() == 1; }));
  std::size_t accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (executor.submit_to(0, 0, make_udp(1, 1000))) ++accepted;
  }
  EXPECT_EQ(accepted, 7u);
  EXPECT_EQ(executor.worker_stats(0).ingress_drops, 13u);
  EXPECT_EQ(executor.worker_stats(1).ingress_drops, 0u);
  EXPECT_EQ(executor.ingress_drops(), 13u);
  injector.release_stall();
  executor.drain();
  executor.stop();
}

TEST(Overload, DescribeStatsExposesPerWorkerHealth) {
  exec::DatapathExecutorConfig config;
  config.workers = 2;
  exec::DatapathExecutor executor(
      config,
      [&](exec::WorkerContext&, std::uint32_t, packet::PacketBurst&&) {});
  packet::PacketBurst burst;
  for (int i = 0; i < 16; ++i) burst.push_back(make_udp(i, 1000));
  executor.submit_burst(0, std::move(burst));
  executor.drain();
  const json::Value doc = executor.describe_stats();
  ASSERT_TRUE(doc.is_object());
  const json::Object& root = doc.as_object();
  ASSERT_TRUE(root.contains("per_worker"));
  const json::Array& workers = root.find("per_worker")->as_array();
  ASSERT_EQ(workers.size(), 2u);
  for (const json::Value& w : workers) {
    const json::Object& obj = w.as_object();
    for (const char* key :
         {"heartbeat", "occupancy", "processed", "ingress_drops",
          "shed_bulk", "shed_control", "stalls", "restarts",
          "handoff_drops"}) {
      EXPECT_TRUE(obj.contains(key)) << "missing key " << key;
    }
  }
  EXPECT_EQ(root.find("total_processed")->as_number(), 16.0);
  EXPECT_EQ(root.find("worker_restarts")->as_number(), 0.0);
  executor.stop();
}

TEST(Overload, IpsecRekeyTagsItsSpisControlPriority) {
  exec::ControlSpiRegistry& registry = exec::ControlSpiRegistry::instance();
  ASSERT_FALSE(registry.contains(31003));
  ASSERT_FALSE(registry.contains(32004));
  nnf::IpsecEndpoint endpoint;
  nnf::NfConfig config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "31001"},         {"spi_in", "32002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"},
      {"drain_ns", "1000"}};
  ASSERT_TRUE(endpoint.configure(nnf::kDefaultContext, config).is_ok());
  // No rekey in flight: nothing is control priority.
  EXPECT_FALSE(registry.contains(31001));

  nnf::NfConfig rekey = {{"rekey_spi_out", "31003"},
                         {"rekey_spi_in", "32004"},
                         {"rekey_enc_key", "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"},
                         {"rekey_cutover", "now"}};
  ASSERT_TRUE(endpoint.configure(nnf::kDefaultContext, rekey).is_ok());
  // Staged rekey: both new SPIs must survive load shedding.
  EXPECT_TRUE(registry.contains(31003));
  EXPECT_TRUE(registry.contains(32004));

  // Drive the cutover (immediate mode trips on the first packet) and
  // let the superseded SA pass its drain deadline.
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
  spec.src_port = 5001;
  spec.dst_port = 5001;
  static const std::vector<std::uint8_t> payload(64, 0xCD);
  spec.payload = payload;
  auto enc =
      endpoint.process(nnf::kDefaultContext, 0, 0,
                       packet::build_udp_frame(spec));
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_TRUE(registry.contains(31003));  // old SA still draining
  (void)endpoint.process(nnf::kDefaultContext, 0, 5000,
                         packet::build_udp_frame(spec));
  // Rekey fully complete: its SPIs are ordinary traffic again.
  EXPECT_FALSE(registry.contains(31003));
  EXPECT_FALSE(registry.contains(32004));
}

TEST(Overload, RemovingContextUnregistersControlSpis) {
  constexpr nnf::ContextId kCtx = 7;  // context 0 is undeletable
  exec::ControlSpiRegistry& registry = exec::ControlSpiRegistry::instance();
  nnf::IpsecEndpoint endpoint;
  ASSERT_TRUE(endpoint.add_context(kCtx).is_ok());
  nnf::NfConfig config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "41001"},         {"spi_in", "42002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  ASSERT_TRUE(endpoint.configure(kCtx, config).is_ok());
  nnf::NfConfig rekey = {{"rekey_spi_out", "41003"},
                         {"rekey_spi_in", "42004"},
                         {"rekey_enc_key", "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"}};
  ASSERT_TRUE(endpoint.configure(kCtx, rekey).is_ok());
  EXPECT_TRUE(registry.contains(41003));
  ASSERT_TRUE(endpoint.remove_context(kCtx).is_ok());
  EXPECT_FALSE(registry.contains(41003));
  EXPECT_FALSE(registry.contains(42004));
}

}  // namespace
}  // namespace nnfv
