// Traffic module tests: source pacing, sink windows, measurement harness.
#include <gtest/gtest.h>

#include "packet/flow_key.hpp"
#include "sim/link.hpp"
#include "traffic/measure.hpp"
#include "traffic/sink.hpp"
#include "traffic/source.hpp"
#include "util/byteorder.hpp"

namespace nnfv::traffic {
namespace {

TEST(UdpSource, CbrPacingAndFraming) {
  sim::Simulator simulator;
  UdpSourceConfig config;
  config.packets_per_second = 1000.0;  // 1 ms apart
  config.payload_bytes = 100;
  config.stop = 10 * sim::kMillisecond;
  std::vector<sim::SimTime> arrivals;
  std::size_t frame_size = 0;
  UdpSource source(simulator, config,
                   [&](packet::PacketBuffer&& frame) {
                     arrivals.push_back(simulator.now());
                     frame_size = frame.size();
                   });
  source.begin();
  simulator.run();
  EXPECT_EQ(arrivals.size(), 10u);  // t=0..9ms
  EXPECT_EQ(arrivals[1] - arrivals[0], sim::kMillisecond);
  EXPECT_EQ(frame_size, 14u + 20u + 8u + 100u);
  EXPECT_EQ(source.sent_packets(), 10u);
  EXPECT_EQ(source.sent_bytes(), 10u * frame_size);
}

TEST(UdpSource, BurstModeKeepsOfferedRate) {
  sim::Simulator simulator;
  UdpSourceConfig config;
  config.packets_per_second = 1000.0;  // 1 ms apart
  config.payload_bytes = 100;
  config.burst_size = 4;
  config.stop = 10 * sim::kMillisecond;
  std::uint64_t single_frames = 0;
  std::vector<std::size_t> bursts;
  UdpSource source(simulator, config,
                   [&](packet::PacketBuffer&&) { ++single_frames; });
  source.set_burst_transmit([&](packet::PacketBurst&& burst) {
    bursts.push_back(burst.size());
  });
  source.begin();
  simulator.run();
  // 10 ms at 1000 pps = 10 packets worth of credit; bursts of 4 fire at
  // t=0 and 4ms, and the t=8ms burst is clipped to the remaining credit
  // of 2 — exactly the 10 packets the per-packet source would have sent.
  EXPECT_EQ(single_frames, 0u);
  ASSERT_EQ(bursts.size(), 3u);
  EXPECT_EQ(bursts[0], 4u);
  EXPECT_EQ(bursts[2], 2u);
  EXPECT_EQ(source.sent_packets(), 10u);
}

TEST(UdpSource, BurstWithoutBurstSinkFallsBackToSingles) {
  sim::Simulator simulator;
  UdpSourceConfig config;
  config.packets_per_second = 1000.0;
  config.burst_size = 4;
  config.stop = 8 * sim::kMillisecond;
  std::uint64_t frames = 0;
  UdpSource source(simulator, config,
                   [&](packet::PacketBuffer&&) { ++frames; });
  source.begin();
  simulator.run();
  EXPECT_EQ(frames, 8u);  // t=0 and t=4ms, 4 frames each
}

TEST(UdpSource, PoissonMeanRateApproximatesTarget) {
  sim::Simulator simulator;
  UdpSourceConfig config;
  config.packets_per_second = 10000.0;
  config.poisson = true;
  config.stop = sim::kSecond;
  std::uint64_t count = 0;
  UdpSource source(simulator, config,
                   [&](packet::PacketBuffer&&) { ++count; });
  source.begin();
  simulator.run();
  EXPECT_NEAR(static_cast<double>(count), 10000.0, 400.0);
}

TEST(UdpSource, FramesCarrySequenceNumbers) {
  sim::Simulator simulator;
  UdpSourceConfig config;
  config.packets_per_second = 1000.0;
  config.stop = 3 * sim::kMillisecond;
  std::vector<std::uint64_t> seqs;
  UdpSource source(simulator, config, [&](packet::PacketBuffer&& frame) {
    // Sequence is the first 8 payload bytes (offset 42 in the frame).
    seqs.push_back(util::load_be64(frame.data().data() + 42));
  });
  source.begin();
  simulator.run();
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(ThroughputSink, WindowedCounting) {
  sim::Simulator simulator;
  ThroughputSink sink(simulator, 100, 200);
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("1.1.1.1");
  spec.ip_dst = *packet::Ipv4Address::parse("2.2.2.2");
  static const std::vector<std::uint8_t> payload(100, 0);
  spec.payload = payload;

  simulator.schedule(50, [&]() {  // before the window: ignored
    sink.receive(packet::build_udp_frame(spec));
  });
  simulator.schedule(150, [&]() {  // inside: counted
    sink.receive(packet::build_udp_frame(spec));
  });
  simulator.schedule(250, [&]() {  // after: ignored
    sink.receive(packet::build_udp_frame(spec));
  });
  simulator.run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(sink.total_packets(), 3u);
  EXPECT_EQ(sink.payload_bytes(), 100u);
  // 142 bytes in a 100 ns window.
  EXPECT_DOUBLE_EQ(sink.throughput_bps(), 142.0 * 8 * 1e9 / 100.0);
  EXPECT_DOUBLE_EQ(sink.goodput_bps(), 100.0 * 8 * 1e9 / 100.0);
}

TEST(Measurement, BottleneckStationLimitsGoodput) {
  // Datapath: source -> single-server station (10 us/packet) -> sink.
  // Offered 300kpps >> capacity 100kpps; goodput must reflect the station.
  sim::Simulator simulator;
  MeasurementConfig config;
  config.payload_bytes = 1000;
  config.offered_pps = 300000.0;
  config.warmup = 50 * sim::kMillisecond;
  config.duration = 500 * sim::kMillisecond;

  MeasurementHarness harness(simulator, config);
  sim::ServiceStation station(simulator, 128);
  auto result = harness.run([&](packet::PacketBuffer&& frame) {
    auto held = std::make_shared<packet::PacketBuffer>(std::move(frame));
    station.submit(10 * sim::kMicrosecond,
                   [&harness, held]() { harness.sink().receive(*held); });
  });

  // Capacity 100k pps * 1000 B payload = 800 Mbps goodput.
  EXPECT_NEAR(result.goodput_bps / 1e6, 800.0, 8.0);
  EXPECT_LT(result.delivery_ratio, 0.5);  // heavy overload: most dropped
  EXPECT_GT(result.delivered_packets, 0u);
  EXPECT_GT(result.offered_packets, result.delivered_packets);
}

TEST(Measurement, UnconstrainedPathDeliversOfferedLoad) {
  sim::Simulator simulator;
  MeasurementConfig config;
  config.payload_bytes = 500;
  config.offered_pps = 50000.0;
  config.warmup = 10 * sim::kMillisecond;
  config.duration = 200 * sim::kMillisecond;
  MeasurementHarness harness(simulator, config);
  auto result = harness.run([&](packet::PacketBuffer&& frame) {
    harness.sink().receive(frame);
  });
  // Everything arrives: goodput == offered payload rate.
  EXPECT_NEAR(result.goodput_bps / 1e6, 50000.0 * 500 * 8 / 1e6, 2.0);
  EXPECT_GT(result.delivery_ratio, 0.99);
}

TEST(UdpSource, FlowCountRotatesSourcePorts) {
  sim::Simulator simulator;
  UdpSourceConfig config;
  config.packets_per_second = 1000.0;
  config.stop = 8 * sim::kMillisecond;
  config.flow_count = 4;
  std::vector<std::uint16_t> ports;
  UdpSource source(simulator, config, [&](packet::PacketBuffer&& frame) {
    auto eth = packet::parse_ethernet(frame.data());
    auto tuple = packet::extract_five_tuple(
        frame.data().subspan(eth->wire_size()));
    ASSERT_TRUE(tuple.is_ok());
    ports.push_back(tuple->src_port);
  });
  source.begin();
  simulator.run();
  ASSERT_EQ(ports.size(), 8u);
  // Round-robin over [src_port, src_port + flow_count).
  for (std::size_t i = 0; i < ports.size(); ++i) {
    EXPECT_EQ(ports[i], config.src_port + i % 4);
  }
}

TEST(UdpSource, SingleFlowKeepsFixedTuple) {
  sim::Simulator simulator;
  UdpSourceConfig config;  // flow_count = 1 (default)
  config.packets_per_second = 1000.0;
  config.stop = 4 * sim::kMillisecond;
  std::vector<std::uint16_t> ports;
  UdpSource source(simulator, config, [&](packet::PacketBuffer&& frame) {
    auto eth = packet::parse_ethernet(frame.data());
    auto tuple = packet::extract_five_tuple(
        frame.data().subspan(eth->wire_size()));
    ports.push_back(tuple->src_port);
  });
  source.begin();
  simulator.run();
  for (std::uint16_t port : ports) EXPECT_EQ(port, config.src_port);
}

TEST(UdpSource, SourcesFromSameConfigGetDistinctSeeds) {
  sim::Simulator simulator;
  UdpSourceConfig config;  // every field default, seed = 42 for both
  UdpSource a(simulator, config, [](packet::PacketBuffer&&) {});
  UdpSource b(simulator, config, [](packet::PacketBuffer&&) {});
  // Identically-configured sources used to be clones (same payload, same
  // Poisson gap sequence); now each instance draws a unique stream.
  EXPECT_NE(a.effective_seed(), b.effective_seed());
}

}  // namespace
}  // namespace nnfv::traffic
