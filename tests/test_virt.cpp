// Virtualization model tests: cost model structure, RAM accounting and the
// layered image store. These pin the *shape* properties Table 1 relies on.
#include <gtest/gtest.h>

#include "virt/backend.hpp"
#include "virt/cost_model.hpp"
#include "virt/image_store.hpp"
#include "virt/ram_model.hpp"

namespace nnfv::virt {
namespace {

TEST(Backend, NamesRoundTrip) {
  for (BackendKind kind : kAllBackends) {
    auto back = backend_from_name(backend_name(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_EQ(backend_from_name("kvm"), BackendKind::kVm);
  EXPECT_EQ(backend_from_name("nnf"), BackendKind::kNative);
  EXPECT_FALSE(backend_from_name("xen").has_value());
}

TEST(CostModel, ServiceTimeIncreasesWithBytes) {
  CostModel model(BackendKind::kNative, profile_ipsec_esp());
  EXPECT_LT(model.service_time(100), model.service_time(1000));
  EXPECT_GT(model.service_time(0), 0);  // fixed costs remain
}

TEST(CostModel, VmSlowerThanNativeForSameWork) {
  const NfComputeProfile profile = profile_ipsec_esp();
  CostModel native(BackendKind::kNative, profile);
  CostModel vm(BackendKind::kVm, profile);
  CostModel docker(BackendKind::kDocker, profile);
  for (std::size_t bytes : {64u, 512u, 1450u}) {
    EXPECT_GT(vm.service_time(bytes), native.service_time(bytes))
        << bytes << " bytes";
    // Docker and native share the host kernel path (paper: "comparable").
    EXPECT_EQ(docker.service_time(bytes), native.service_time(bytes));
  }
}

TEST(CostModel, CalibrationHitsTable1NativeThroughput) {
  // 1450-byte frame carrying 1408 bytes of UDP payload; Table 1 native row
  // is 1094 Mbps of iPerf goodput. Allow 2% model slack.
  CostModel native(BackendKind::kNative, profile_ipsec_esp());
  const double service_s =
      static_cast<double>(native.service_time(1450)) * 1e-9;
  const double goodput = 1408.0 * 8.0 / service_s;
  EXPECT_NEAR(goodput / 1e6, 1094.0, 22.0);
}

TEST(CostModel, VmLandsNearTable1Ratio) {
  // Paper: VM 796 vs native 1094 => ratio ~0.727. Structural constants
  // should land within ~5%.
  const NfComputeProfile profile = profile_ipsec_esp();
  CostModel native(BackendKind::kNative, profile);
  CostModel vm(BackendKind::kVm, profile);
  const double ratio = static_cast<double>(native.service_time(1450)) /
                       static_cast<double>(vm.service_time(1450));
  EXPECT_NEAR(ratio, 796.0 / 1094.0, 0.05);
}

TEST(CostModel, SaturationPpsIsInverseServiceTime) {
  CostModel model(BackendKind::kDocker, profile_forwarding());
  const double pps = model.saturation_pps(1000);
  const double expected = 1e9 / static_cast<double>(model.service_time(1000));
  EXPECT_DOUBLE_EQ(pps, expected);
}

TEST(CostModel, LifecycleOrdering) {
  // Boot: VM (seconds) >> docker/dpdk (hundreds of ms) >> native (tens).
  EXPECT_GT(backend_cost(BackendKind::kVm).boot_ns,
            backend_cost(BackendKind::kDocker).boot_ns);
  EXPECT_GT(backend_cost(BackendKind::kDocker).boot_ns,
            backend_cost(BackendKind::kNative).boot_ns);
}

TEST(RamModel, OverheadOrderingMatchesTable1) {
  EXPECT_EQ(backend_ram_overhead(BackendKind::kNative), 0u);
  EXPECT_GT(backend_ram_overhead(BackendKind::kDocker), 0u);
  EXPECT_GT(backend_ram_overhead(BackendKind::kVm),
            50 * backend_ram_overhead(BackendKind::kDocker));
}

TEST(RamModel, InstanceRamReproducesTable1Column) {
  // Strongswan working set 19.4 MB.
  NfMemoryProfile strongswan{19 * kMiB + 400 * 1024, 0, 0};
  const double native_mb =
      static_cast<double>(instance_ram(BackendKind::kNative, strongswan)) /
      (1024.0 * 1024.0);
  const double docker_mb =
      static_cast<double>(instance_ram(BackendKind::kDocker, strongswan)) /
      (1024.0 * 1024.0);
  const double vm_mb =
      static_cast<double>(instance_ram(BackendKind::kVm, strongswan)) /
      (1024.0 * 1024.0);
  EXPECT_NEAR(native_mb, 19.4, 0.1);
  EXPECT_NEAR(docker_mb, 24.2, 0.5);
  EXPECT_NEAR(vm_mb, 390.6, 1.0);
}

TEST(RamModel, PerFlowGrowth) {
  NfMemoryProfile profile{kMiB, 100, 0};
  EXPECT_EQ(instance_ram(BackendKind::kNative, profile, 10),
            kMiB + 1000);
}

TEST(RamLedger, ReserveAndRelease) {
  RamLedger ledger(1000);
  EXPECT_TRUE(ledger.reserve(600));
  EXPECT_EQ(ledger.available(), 400u);
  EXPECT_FALSE(ledger.reserve(500));
  EXPECT_TRUE(ledger.reserve(400));
  ledger.release(700);
  EXPECT_EQ(ledger.used(), 300u);
  ledger.release(9999);  // clamped
  EXPECT_EQ(ledger.used(), 0u);
}

TEST(ImageStore, RegisterAndFind) {
  ImageStore store;
  Image image;
  image.name = "ipsec:vm";
  image.kind = BackendKind::kVm;
  image.layers = {{"os", 100}, {"pkg", 5}};
  ASSERT_TRUE(store.register_image(image).is_ok());
  EXPECT_FALSE(store.register_image(image).is_ok());  // duplicate
  EXPECT_TRUE(store.contains("ipsec:vm"));
  auto found = store.find("ipsec:vm");
  ASSERT_TRUE(found.is_ok());
  EXPECT_EQ(found->total_size(), 105u);
  EXPECT_FALSE(store.find("nope").is_ok());
  EXPECT_EQ(store.names().size(), 1u);
}

TEST(DiskLedger, LayersSharedBetweenImages) {
  DiskLedger disk(1000);
  Image a{"a:docker", BackendKind::kDocker, {{"base", 500}, {"a-pkg", 10}}};
  Image b{"b:docker", BackendKind::kDocker, {{"base", 500}, {"b-pkg", 20}}};
  ASSERT_TRUE(disk.install(a).is_ok());
  EXPECT_EQ(disk.used(), 510u);
  // Installing b adds only its unique layer (Docker layer dedup).
  ASSERT_TRUE(disk.install(b).is_ok());
  EXPECT_EQ(disk.used(), 530u);
  // Removing a keeps the shared base (b still references it).
  disk.remove(a);
  EXPECT_EQ(disk.used(), 520u);
  disk.remove(b);
  EXPECT_EQ(disk.used(), 0u);
}

TEST(DiskLedger, InstallIdempotentAndCapacityChecked) {
  DiskLedger disk(100);
  Image a{"a", BackendKind::kVm, {{"x", 80}}};
  ASSERT_TRUE(disk.install(a).is_ok());
  ASSERT_TRUE(disk.install(a).is_ok());  // no double count
  EXPECT_EQ(disk.used(), 80u);
  Image b{"b", BackendKind::kVm, {{"y", 50}}};
  auto status = disk.install(b);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), util::ErrorCode::kResourceExhausted);
  EXPECT_FALSE(disk.installed("b"));
}

TEST(FlavorImages, SizesMatchTable1Structure) {
  FlavorImages flavors = make_flavor_images("strongswan", 5 * kMiB);
  const double native_mb =
      static_cast<double>(flavors.native.total_size()) / (1024.0 * 1024.0);
  const double docker_mb =
      static_cast<double>(flavors.docker.total_size()) / (1024.0 * 1024.0);
  const double vm_mb =
      static_cast<double>(flavors.vm.total_size()) / (1024.0 * 1024.0);
  EXPECT_NEAR(native_mb, 5.0, 0.01);    // Table 1: 5 MB
  EXPECT_NEAR(docker_mb, 240.0, 1.0);   // Table 1: 240 MB
  EXPECT_NEAR(vm_mb, 522.0, 1.0);       // Table 1: 522 MB
  EXPECT_EQ(flavors.native.kind, BackendKind::kNative);
  EXPECT_EQ(flavors.docker.kind, BackendKind::kDocker);
  EXPECT_EQ(flavors.vm.kind, BackendKind::kVm);
}

TEST(FlavorImages, PackageLayerSharedAcrossFlavors) {
  // The NF package layer has the same digest in all flavors, so a node
  // holding the docker and vm images stores the package once.
  FlavorImages flavors = make_flavor_images("nat", 1200 * 1024);
  DiskLedger disk(2048ULL * kMiB);
  ASSERT_TRUE(disk.install(flavors.docker).is_ok());
  const std::uint64_t after_docker = disk.used();
  ASSERT_TRUE(disk.install(flavors.vm).is_ok());
  EXPECT_EQ(disk.used(),
            after_docker + flavors.vm.total_size() - 1200 * 1024);
}

}  // namespace
}  // namespace nnfv::virt
