// Generic-configuration translation tests (the paper's future-work hook)
// plus the LearningController (reactive per-LSI control).
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "nnf/firewall.hpp"
#include "nnf/ipsec.hpp"
#include "nnf/translator.hpp"
#include "packet/builder.hpp"
#include "switch/learning_controller.hpp"

namespace nnfv {
namespace {

using nnf::NfConfig;

// ---------------------------------------------------------------------------
// Vocabulary lowering
// ---------------------------------------------------------------------------

TEST(Translator, FirewallVocabulary) {
  auto lowered = nnf::translate_generic_config(
      "firewall", {{"default", "deny"},
                   {"allow.1", "udp:53"},
                   {"block.2", "tcp:20-21"},
                   {"description", "customer policy"}});
  ASSERT_TRUE(lowered.is_ok());
  EXPECT_EQ(lowered->at("policy"), "drop");
  EXPECT_EQ(lowered->at("rule.1"), "accept,any,any,udp,53");
  EXPECT_EQ(lowered->at("rule.2"), "drop,any,any,tcp,20-21");
  EXPECT_FALSE(lowered->contains("description"));
}

TEST(Translator, FirewallRejectsBadVocabulary) {
  EXPECT_FALSE(nnf::translate_generic_config("firewall",
                                             {{"default", "maybe"}})
                   .is_ok());
  EXPECT_FALSE(
      nnf::translate_generic_config("firewall", {{"block.1", "gre:5"}})
          .is_ok());
  EXPECT_FALSE(
      nnf::translate_generic_config("firewall", {{"wan_address", "1.2.3.4"}})
          .is_ok());
}

TEST(Translator, NatVocabulary) {
  auto lowered = nnf::translate_generic_config(
      "nat", {{"wan_address", "203.0.113.7"}});
  ASSERT_TRUE(lowered.is_ok());
  EXPECT_EQ(lowered->at("external_ip"), "203.0.113.7");
}

TEST(Translator, IpsecDerivesKeysAndSpis) {
  auto lowered = nnf::translate_generic_config(
      "ipsec", {{"tunnel_local", "198.51.100.1"},
                {"tunnel_remote", "198.51.100.2"},
                {"tunnel_id", "21"},
                {"psk", "correct horse battery staple"}});
  ASSERT_TRUE(lowered.is_ok());
  EXPECT_EQ(lowered->at("local_ip"), "198.51.100.1");
  EXPECT_EQ(lowered->at("spi_out"), "42");
  EXPECT_EQ(lowered->at("spi_in"), "43");
  EXPECT_EQ(lowered->at("enc_key").size(), 32u);   // 16 bytes hex
  EXPECT_EQ(lowered->at("auth_key").size(), 64u);  // 32 bytes hex
  // Deterministic KDF: same psk -> same keys.
  auto again = nnf::translate_generic_config(
      "ipsec", {{"psk", "correct horse battery staple"}});
  EXPECT_EQ(lowered->at("enc_key"), again->at("enc_key"));
  // Different psk -> different keys.
  auto other = nnf::translate_generic_config("ipsec", {{"psk", "other"}});
  EXPECT_NE(lowered->at("enc_key"), other->at("enc_key"));
  // enc and auth derivations differ.
  EXPECT_NE(lowered->at("enc_key"),
            lowered->at("auth_key").substr(0, 32));
}

TEST(Translator, IpsecLoweredConfigIsAccepted) {
  auto lowered = nnf::translate_generic_config(
      "ipsec", {{"tunnel_local", "198.51.100.1"},
                {"tunnel_remote", "198.51.100.2"},
                {"tunnel_id", "5"},
                {"psk", "secret"}});
  ASSERT_TRUE(lowered.is_ok());
  nnf::IpsecEndpoint endpoint;
  EXPECT_TRUE(
      endpoint.configure(nnf::kDefaultContext, lowered.value()).is_ok());
}

TEST(Translator, DhcpAndBridgeVocabulary) {
  auto dhcp = nnf::translate_generic_config(
      "dhcp", {{"lan_address", "192.168.1.1"},
               {"lan_pool", "192.168.1.100-192.168.1.200"}});
  ASSERT_TRUE(dhcp.is_ok());
  EXPECT_EQ(dhcp->at("server_ip"), "192.168.1.1");
  EXPECT_EQ(dhcp->at("pool_start"), "192.168.1.100");
  EXPECT_EQ(dhcp->at("pool_end"), "192.168.1.200");
  EXPECT_FALSE(
      nnf::translate_generic_config("dhcp", {{"lan_pool", "nodash"}})
          .is_ok());

  auto bridge =
      nnf::translate_generic_config("bridge", {{"mac_aging_s", "300"}});
  ASSERT_TRUE(bridge.is_ok());
  EXPECT_EQ(bridge->at("aging_time_ms"), "300000");
}

TEST(Translator, UnknownTypeRejected) {
  EXPECT_FALSE(nnf::translate_generic_config("quantum-dpi", {}).is_ok());
}

TEST(Translator, GenericMarkerDetection) {
  EXPECT_TRUE(nnf::is_generic_config({{"generic", "1"}}));
  EXPECT_FALSE(nnf::is_generic_config({{"generic", "0"}}));
  EXPECT_FALSE(nnf::is_generic_config({{"policy", "accept"}}));
}

// ---------------------------------------------------------------------------
// TranslatingNnfPlugin
// ---------------------------------------------------------------------------

TEST(TranslatingPlugin, TranslatesMarkedConfigs) {
  nnf::TranslatingNnfPlugin plugin(nnf::make_firewall_plugin());
  auto function = plugin.create_function();
  ASSERT_TRUE(function.is_ok());
  // Generic config: lowered and applied.
  ASSERT_TRUE(plugin
                  .update(*function.value(), nnf::kDefaultContext,
                          {{"generic", "1"},
                           {"default", "deny"},
                           {"allow.1", "udp:53"}})
                  .is_ok());
  auto* firewall = dynamic_cast<nnf::Firewall*>(function.value().get());
  ASSERT_NE(firewall, nullptr);
  EXPECT_EQ(firewall->rule_count(nnf::kDefaultContext), 1u);
  // Native config still passes through.
  EXPECT_TRUE(plugin
                  .update(*function.value(), nnf::kDefaultContext,
                          {{"policy", "accept"}})
                  .is_ok());
  // Bad generic vocab fails loudly.
  EXPECT_FALSE(plugin
                   .update(*function.value(), nnf::kDefaultContext,
                           {{"generic", "1"}, {"bogus", "x"}})
                   .is_ok());
}

TEST(TranslatingCatalog, HasSixTypesIncludingDhcpAndPolicer) {
  nnf::NnfCatalog catalog = nnf::translating_builtin_catalog();
  EXPECT_EQ(catalog.types().size(), 6u);
  EXPECT_TRUE(catalog.has("policer"));
  EXPECT_TRUE(catalog.has("dhcp"));
  auto plugin = catalog.plugin("dhcp");
  ASSERT_TRUE(plugin.is_ok());
  EXPECT_TRUE(plugin.value()->descriptor().sharable);
  EXPECT_TRUE(plugin.value()->descriptor().single_interface);
  EXPECT_EQ(plugin.value()->descriptor().num_ports, 1u);
}

TEST(TranslatingCatalog, EndToEndGenericDeployment) {
  // A node with translation on: deploy a firewall whose NF-FG carries only
  // the generic vocabulary; the NNF driver's update step lowers it.
  core::UniversalNodeConfig config;
  config.generic_config_translation = true;
  core::UniversalNode node(config);

  nffg::NfFg graph;
  graph.id = "generic";
  nffg::NfNode& fw = graph.add_nf("fw", "firewall");
  fw.config = {{"generic", "1"}, {"default", "allow"}, {"block.1", "udp:23"}};
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("fw", 0));
  graph.connect("r2", nffg::nf_port("fw", 1), nffg::endpoint_ref("wan"));
  ASSERT_TRUE(node.orchestrator().deploy(graph).is_ok());

  int wan_rx = 0;
  (void)node.set_egress("eth1",
                        [&](packet::PacketBuffer&&) { ++wan_rx; });
  auto send = [&](std::uint16_t dport) {
    packet::UdpFrameSpec spec;
    spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
    spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
    spec.dst_port = dport;
    (void)node.inject("eth0", packet::build_udp_frame(spec));
    node.simulator().run();
  };
  send(53);
  EXPECT_EQ(wan_rx, 1);
  send(23);  // blocked by the lowered rule
  EXPECT_EQ(wan_rx, 1);
}

// ---------------------------------------------------------------------------
// LearningController (reactive per-LSI control)
// ---------------------------------------------------------------------------

packet::PacketBuffer frame_from_to(std::uint32_t src, std::uint32_t dst) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(src);
  spec.eth_dst = packet::MacAddress::from_id(dst);
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
  return packet::build_udp_frame(spec);
}

class LearningFixture : public ::testing::Test {
 protected:
  LearningFixture() : lsi_(1, "LSI-react") {
    p1_ = lsi_.add_port("p1").value();
    p2_ = lsi_.add_port("p2").value();
    p3_ = lsi_.add_port("p3").value();
    for (auto [port, sink] : {std::pair{p1_, &rx1_}, std::pair{p2_, &rx2_},
                              std::pair{p3_, &rx3_}}) {
      (void)lsi_.set_port_peer(port, [sink](packet::PacketBuffer&&) {
        ++*sink;
      });
    }
    lsi_.set_controller(&controller_);
  }

  nfswitch::Lsi lsi_;
  nfswitch::LearningController controller_;
  nfswitch::PortId p1_ = 0, p2_ = 0, p3_ = 0;
  int rx1_ = 0, rx2_ = 0, rx3_ = 0;
};

TEST_F(LearningFixture, FloodsUnknownThenInstallsRule) {
  // Host A (on p1) talks to unknown host B: flood to p2+p3.
  lsi_.receive(p1_, frame_from_to(0xA, 0xB));
  EXPECT_EQ(controller_.packet_ins(), 1u);
  EXPECT_EQ(controller_.floods(), 1u);
  EXPECT_EQ(rx2_, 1);
  EXPECT_EQ(rx3_, 1);
  EXPECT_EQ(rx1_, 0);

  // Host B replies from p2: controller knows A -> installs rule + packet-out.
  lsi_.receive(p2_, frame_from_to(0xB, 0xA));
  EXPECT_EQ(controller_.rules_installed(), 1u);
  EXPECT_EQ(rx1_, 1);
  EXPECT_EQ(lsi_.flow_table().size(), 1u);

  // Subsequent B->A traffic uses the fast path (no new packet-in).
  const std::uint64_t before = controller_.packet_ins();
  lsi_.receive(p2_, frame_from_to(0xB, 0xA));
  EXPECT_EQ(controller_.packet_ins(), before);
  EXPECT_EQ(rx1_, 2);
}

TEST_F(LearningFixture, StationMovementRelearns) {
  lsi_.receive(p1_, frame_from_to(0xA, 0xF));  // learn A@p1
  lsi_.receive(p2_, frame_from_to(0xA, 0xF));  // A moved to p2
  // Traffic to A now goes out p2.
  lsi_.receive(p3_, frame_from_to(0xC, 0xA));
  EXPECT_EQ(rx2_, 2);  // flood copy + directed copy
  EXPECT_EQ(controller_.known_stations(), 2u);  // A and C
}

TEST_F(LearningFixture, BroadcastAlwaysFloods) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(0xA);
  spec.eth_dst = packet::MacAddress::broadcast();
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("255.255.255.255");
  lsi_.receive(p1_, packet::build_udp_frame(spec));
  EXPECT_EQ(rx2_, 1);
  EXPECT_EQ(rx3_, 1);
  EXPECT_EQ(controller_.rules_installed(), 0u);
}

TEST_F(LearningFixture, ResetRemovesRulesAndState) {
  lsi_.receive(p1_, frame_from_to(0xA, 0xB));
  lsi_.receive(p2_, frame_from_to(0xB, 0xA));
  ASSERT_EQ(lsi_.flow_table().size(), 1u);
  controller_.reset(lsi_);
  EXPECT_EQ(lsi_.flow_table().size(), 0u);
  EXPECT_EQ(controller_.known_stations(), 0u);
}

}  // namespace
}  // namespace nnfv
