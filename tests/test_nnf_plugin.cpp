// Plugin/catalog/marking/adaptation tests — the NNF-specific machinery of
// the paper's §2.
#include <gtest/gtest.h>

#include "nnf/adaptation.hpp"
#include "nnf/catalog.hpp"
#include "nnf/marking.hpp"
#include "nnf/nat.hpp"
#include "nnf/plugin.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"

namespace nnfv::nnf {
namespace {

// ---------------------------------------------------------------------------
// Plugins
// ---------------------------------------------------------------------------

TEST(Plugins, BuiltinDescriptors) {
  auto ipsec = make_ipsec_plugin();
  EXPECT_EQ(ipsec->descriptor().functional_type, "ipsec");
  EXPECT_TRUE(ipsec->descriptor().sharable);
  EXPECT_FALSE(ipsec->descriptor().single_interface);
  EXPECT_EQ(ipsec->descriptor().max_instances, 1u);

  auto nat = make_nat_plugin();
  EXPECT_TRUE(nat->descriptor().sharable);
  EXPECT_TRUE(nat->descriptor().single_interface);

  auto bridge = make_bridge_plugin();
  EXPECT_FALSE(bridge->descriptor().sharable);
  EXPECT_GT(bridge->descriptor().max_instances, 1u);

  auto firewall = make_firewall_plugin();
  EXPECT_TRUE(firewall->descriptor().sharable);
}

TEST(Plugins, CreateFunctionMatchesType) {
  for (auto plugin : {make_bridge_plugin(), make_firewall_plugin(),
                      make_nat_plugin(), make_ipsec_plugin()}) {
    auto function = plugin->create_function();
    ASSERT_TRUE(function.is_ok());
    EXPECT_EQ(function.value()->type(),
              plugin->descriptor().functional_type);
    EXPECT_EQ(function.value()->num_ports(), plugin->descriptor().num_ports);
  }
}

TEST(Plugins, UpdateTranslatesConfigToFunction) {
  auto plugin = make_nat_plugin();
  auto function = plugin->create_function();
  ASSERT_TRUE(function.is_ok());
  // The default update passes through to configure().
  EXPECT_TRUE(plugin
                  ->update(*function.value(), kDefaultContext,
                           {{"external_ip", "203.0.113.1"}})
                  .is_ok());
  EXPECT_FALSE(plugin
                   ->update(*function.value(), kDefaultContext,
                            {{"bad_key", "x"}})
                   .is_ok());
}

TEST(Plugins, IpsecMemoryMatchesTable1) {
  auto plugin = make_ipsec_plugin();
  EXPECT_NEAR(static_cast<double>(
                  plugin->descriptor().memory.working_set_bytes) /
                  (1024.0 * 1024.0),
              19.4, 0.05);
  EXPECT_EQ(plugin->descriptor().package_bytes, 5ULL * 1024 * 1024);
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

TEST(Catalog, RegisterAndLookup) {
  NnfCatalog catalog;
  ASSERT_TRUE(catalog.register_plugin(make_ipsec_plugin()).is_ok());
  EXPECT_TRUE(catalog.has("ipsec"));
  EXPECT_FALSE(catalog.has("nat"));
  EXPECT_TRUE(catalog.plugin("ipsec").is_ok());
  EXPECT_FALSE(catalog.plugin("nat").is_ok());
  EXPECT_FALSE(catalog.register_plugin(make_ipsec_plugin()).is_ok());
  EXPECT_FALSE(catalog.register_plugin(nullptr).is_ok());
}

TEST(Catalog, BuiltinsLoadAllFour) {
  NnfCatalog catalog = NnfCatalog::with_builtin_plugins();
  EXPECT_EQ(catalog.types().size(), 4u);
  for (const char* type : {"bridge", "firewall", "nat", "ipsec"}) {
    EXPECT_TRUE(catalog.has(type)) << type;
  }
}

TEST(Catalog, InstantiationLimits) {
  NnfCatalog catalog = NnfCatalog::with_builtin_plugins();
  EXPECT_TRUE(catalog.can_instantiate("ipsec"));
  catalog.status("ipsec").running_instances = 1;
  EXPECT_FALSE(catalog.can_instantiate("ipsec"));  // max 1
  EXPECT_TRUE(catalog.can_instantiate("bridge"));
  catalog.status("bridge").running_instances = 8;
  EXPECT_FALSE(catalog.can_instantiate("bridge"));
  EXPECT_FALSE(catalog.can_instantiate("ghost"));
}

TEST(Catalog, SharingRequiresRunningSharableInstance) {
  NnfCatalog catalog = NnfCatalog::with_builtin_plugins();
  EXPECT_FALSE(catalog.can_share("ipsec"));  // nothing running yet
  catalog.status("ipsec").running_instances = 1;
  EXPECT_TRUE(catalog.can_share("ipsec"));
  // Bridge is not sharable even when running.
  catalog.status("bridge").running_instances = 1;
  EXPECT_FALSE(catalog.can_share("bridge"));
  EXPECT_FALSE(catalog.can_share("ghost"));
}

// ---------------------------------------------------------------------------
// Marking
// ---------------------------------------------------------------------------

TEST(Marking, AllocateIsIdempotentPerOwner) {
  MarkAllocator allocator(3000, 3003);
  auto a = allocator.allocate("g1:nat:0");
  ASSERT_TRUE(a.is_ok());
  auto again = allocator.allocate("g1:nat:0");
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(a.value(), again.value());
  EXPECT_EQ(allocator.in_use(), 1u);
}

TEST(Marking, DistinctOwnersDistinctMarks) {
  MarkAllocator allocator(3000, 3999);
  auto a = allocator.allocate("g1:nat:0");
  auto b = allocator.allocate("g1:nat:1");
  auto c = allocator.allocate("g2:nat:0");
  EXPECT_NE(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
  EXPECT_NE(b.value(), c.value());
}

TEST(Marking, PoolExhaustion) {
  MarkAllocator allocator(3000, 3001);  // 2 marks
  ASSERT_TRUE(allocator.allocate("a").is_ok());
  ASSERT_TRUE(allocator.allocate("b").is_ok());
  auto overflow = allocator.allocate("c");
  EXPECT_FALSE(overflow.is_ok());
  EXPECT_EQ(overflow.status().code(), util::ErrorCode::kResourceExhausted);
  // Releasing frees a mark for reuse.
  ASSERT_TRUE(allocator.release("a").is_ok());
  EXPECT_TRUE(allocator.allocate("c").is_ok());
}

TEST(Marking, ReleaseByPrefix) {
  MarkAllocator allocator;
  (void)allocator.allocate("g:g1:nat:0");
  (void)allocator.allocate("g:g1:nat:1");
  (void)allocator.allocate("g:g2:nat:0");
  EXPECT_EQ(allocator.release_prefix("g:g1:"), 2u);
  EXPECT_EQ(allocator.in_use(), 1u);
  EXPECT_TRUE(allocator.mark_of("g:g2:nat:0").is_ok());
  EXPECT_FALSE(allocator.mark_of("g:g1:nat:0").is_ok());
}

TEST(Marking, ReleaseUnknownFails) {
  MarkAllocator allocator;
  EXPECT_FALSE(allocator.release("ghost").is_ok());
  EXPECT_FALSE(allocator.allocate("").is_ok());
}

// ---------------------------------------------------------------------------
// Adaptation layer
// ---------------------------------------------------------------------------

packet::PacketBuffer marked_udp(std::uint16_t vlan, const std::string& src,
                                std::uint16_t dport) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.vlan = vlan;
  spec.ip_src = *packet::Ipv4Address::parse(src);
  spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  spec.src_port = 1000;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(16, 0);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

class AdaptationFixture : public ::testing::Test {
 protected:
  AdaptationFixture() : adaptation_(nat_) {
    // NAT with two contexts (two service graphs share it).
    EXPECT_TRUE(
        nat_.configure(0, {{"external_ip", "203.0.113.1"}}).is_ok());
    EXPECT_TRUE(nat_.add_context(1).is_ok());
    EXPECT_TRUE(
        nat_.configure(1, {{"external_ip", "203.0.113.2"}}).is_ok());
    // Graph A: marks 3000 (inside) / 3001 (outside); graph B: 3010/3011.
    EXPECT_TRUE(adaptation_.bind(0, 0, 3000).is_ok());
    EXPECT_TRUE(adaptation_.bind(0, 1, 3001).is_ok());
    EXPECT_TRUE(adaptation_.bind(1, 0, 3010).is_ok());
    EXPECT_TRUE(adaptation_.bind(1, 1, 3011).is_ok());
    adaptation_.set_transmit([this](packet::PacketBuffer&& frame) {
      transmitted_.push_back(std::move(frame));
    });
  }

  Nat nat_;
  AdaptationLayer adaptation_;
  std::vector<packet::PacketBuffer> transmitted_;
};

TEST_F(AdaptationFixture, DemuxesByMarkAndRetags) {
  // Graph A inside-port traffic (mark 3000) -> NAT ctx 0 -> outside port
  // -> re-tagged with 3001.
  adaptation_.receive(0, marked_udp(3000, "192.168.1.5", 53));
  ASSERT_EQ(transmitted_.size(), 1u);
  auto eth = packet::parse_ethernet(transmitted_[0].data());
  EXPECT_EQ(eth->vlan.value_or(0), 3001);
  // The NAT applied context 0's external IP.
  auto tuple = packet::extract_five_tuple(
      transmitted_[0].data().subspan(eth->wire_size()));
  EXPECT_EQ(tuple->src_ip.to_string(), "203.0.113.1");
}

TEST_F(AdaptationFixture, ContextsIsolated) {
  adaptation_.receive(0, marked_udp(3010, "192.168.1.5", 53));
  ASSERT_EQ(transmitted_.size(), 1u);
  auto eth = packet::parse_ethernet(transmitted_[0].data());
  EXPECT_EQ(eth->vlan.value_or(0), 3011);
  auto tuple = packet::extract_five_tuple(
      transmitted_[0].data().subspan(eth->wire_size()));
  // Context 1's external IP, not context 0's.
  EXPECT_EQ(tuple->src_ip.to_string(), "203.0.113.2");
  EXPECT_EQ(nat_.session_count(1), 1u);
  EXPECT_EQ(nat_.session_count(0), 0u);
}

TEST_F(AdaptationFixture, UnboundMarkCounted) {
  adaptation_.receive(0, marked_udp(3999, "192.168.1.5", 53));
  EXPECT_TRUE(transmitted_.empty());
  EXPECT_EQ(adaptation_.stats().unmapped_in, 1u);
}

TEST_F(AdaptationFixture, UntaggedFrameCounted) {
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.5");
  spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  adaptation_.receive(0, packet::build_udp_frame(spec));
  EXPECT_TRUE(transmitted_.empty());
  EXPECT_EQ(adaptation_.stats().untagged, 1u);
}

TEST_F(AdaptationFixture, NfSeesUntaggedTraffic) {
  // The NAT must receive the frame with the mark popped: its translated
  // output exists (session created) proving it parsed the IP packet.
  adaptation_.receive(0, marked_udp(3000, "192.168.1.5", 53));
  EXPECT_EQ(nat_.session_count(0), 1u);
}

TEST_F(AdaptationFixture, UnbindContextStopsTraffic) {
  EXPECT_EQ(adaptation_.unbind_context(0), 2u);
  adaptation_.receive(0, marked_udp(3000, "192.168.1.5", 53));
  EXPECT_TRUE(transmitted_.empty());
  EXPECT_EQ(adaptation_.stats().unmapped_in, 1u);
  // Context 1 still works.
  adaptation_.receive(0, marked_udp(3010, "192.168.1.5", 53));
  EXPECT_EQ(transmitted_.size(), 1u);
}

TEST_F(AdaptationFixture, BindRejectsDuplicates) {
  EXPECT_FALSE(adaptation_.bind(2, 0, 3000).is_ok());  // mark taken
  EXPECT_FALSE(adaptation_.bind(0, 0, 3500).is_ok());  // path taken
  EXPECT_EQ(adaptation_.binding_count(), 4u);
}

}  // namespace
}  // namespace nnfv::nnf
