// Firewall NF tests: rule parsing, first-match-wins evaluation, policies,
// direction filters, per-context isolation.
#include <gtest/gtest.h>

#include "nnf/firewall.hpp"
#include "packet/builder.hpp"

namespace nnfv::nnf {
namespace {

packet::PacketBuffer udp_packet(const std::string& src, const std::string& dst,
                                std::uint16_t dport,
                                std::uint8_t proto = packet::kIpProtoUdp) {
  if (proto == packet::kIpProtoTcp) {
    packet::TcpFrameSpec spec;
    spec.eth_src = packet::MacAddress::from_id(1);
    spec.eth_dst = packet::MacAddress::from_id(2);
    spec.ip_src = *packet::Ipv4Address::parse(src);
    spec.ip_dst = *packet::Ipv4Address::parse(dst);
    spec.src_port = 30000;
    spec.dst_port = dport;
    return packet::build_tcp_frame(spec);
  }
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.ip_src = *packet::Ipv4Address::parse(src);
  spec.ip_dst = *packet::Ipv4Address::parse(dst);
  spec.src_port = 30000;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(16, 0);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

TEST(FilterRuleParse, FullSyntax) {
  auto rule = parse_filter_rule("drop,10.0.0.0/8,any,tcp,22,in=0");
  ASSERT_TRUE(rule.is_ok());
  EXPECT_EQ(rule->verdict, FilterVerdict::kDrop);
  EXPECT_EQ(rule->src->to_string(), "10.0.0.0");
  EXPECT_EQ(rule->src_prefix, 8);
  EXPECT_FALSE(rule->dst.has_value());
  EXPECT_EQ(*rule->protocol, packet::kIpProtoTcp);
  EXPECT_EQ(rule->dport_lo, 22);
  EXPECT_EQ(rule->dport_hi, 22);
  EXPECT_EQ(*rule->in_port, 0u);
}

TEST(FilterRuleParse, PortRangeAndNumericProto) {
  auto rule = parse_filter_rule("accept,any,any,47,5000-5010");
  ASSERT_TRUE(rule.is_ok());
  EXPECT_EQ(*rule->protocol, 47);
  EXPECT_EQ(rule->dport_lo, 5000);
  EXPECT_EQ(rule->dport_hi, 5010);
}

TEST(FilterRuleParse, RejectsGarbage) {
  EXPECT_FALSE(parse_filter_rule("").is_ok());
  EXPECT_FALSE(parse_filter_rule("accept,any,any,udp").is_ok());  // 4 fields
  EXPECT_FALSE(parse_filter_rule("maybe,any,any,udp,1").is_ok());
  EXPECT_FALSE(parse_filter_rule("drop,10.0.0.0/33,any,udp,1").is_ok());
  EXPECT_FALSE(parse_filter_rule("drop,any,any,300,1").is_ok());
  EXPECT_FALSE(parse_filter_rule("drop,any,any,udp,70000").is_ok());
  EXPECT_FALSE(parse_filter_rule("drop,any,any,udp,10-5").is_ok());
  EXPECT_FALSE(parse_filter_rule("drop,any,any,udp,1,in=2").is_ok());
}

TEST(Firewall, DefaultPolicyAcceptsAndCrosses) {
  Firewall firewall;
  auto outs = firewall.process(kDefaultContext, 0, 0,
                               udp_packet("10.0.0.1", "8.8.8.8", 53));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 1u);
  outs = firewall.process(kDefaultContext, 1, 0,
                          udp_packet("8.8.8.8", "10.0.0.1", 53));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 0u);
}

TEST(Firewall, DropPolicyBlocksEverythingIp) {
  Firewall firewall;
  firewall.set_policy(kDefaultContext, FilterVerdict::kDrop);
  auto outs = firewall.process(kDefaultContext, 0, 0,
                               udp_packet("10.0.0.1", "8.8.8.8", 53));
  EXPECT_TRUE(outs.empty());
  EXPECT_EQ(firewall.counters().dropped, 1u);
}

TEST(Firewall, FirstMatchWins) {
  Firewall firewall;
  // Rule 1: accept DNS. Rule 2: drop all UDP. DNS must still pass.
  ASSERT_TRUE(firewall
                  .configure(kDefaultContext,
                             {{"rule.1", "accept,any,any,udp,53"},
                              {"rule.2", "drop,any,any,udp,any"}})
                  .is_ok());
  auto dns = firewall.process(kDefaultContext, 0, 0,
                              udp_packet("10.0.0.1", "8.8.8.8", 53));
  EXPECT_EQ(dns.size(), 1u);
  auto other = firewall.process(kDefaultContext, 0, 0,
                                udp_packet("10.0.0.1", "8.8.8.8", 5000));
  EXPECT_TRUE(other.empty());
}

TEST(Firewall, SourcePrefixFiltering) {
  Firewall firewall;
  ASSERT_TRUE(firewall
                  .configure(kDefaultContext,
                             {{"policy", "accept"},
                              {"rule.1", "drop,192.168.0.0/16,any,any,any"}})
                  .is_ok());
  EXPECT_TRUE(firewall
                  .process(kDefaultContext, 0, 0,
                           udp_packet("192.168.44.5", "8.8.8.8", 80))
                  .empty());
  EXPECT_EQ(firewall
                .process(kDefaultContext, 0, 0,
                         udp_packet("172.16.0.1", "8.8.8.8", 80))
                .size(),
            1u);
}

TEST(Firewall, DirectionalRuleOnlyAffectsOnePort) {
  Firewall firewall;
  // Block inbound (WAN->LAN) TCP 22; outbound SSH still allowed.
  ASSERT_TRUE(firewall
                  .configure(kDefaultContext,
                             {{"rule.1", "drop,any,any,tcp,22,in=1"}})
                  .is_ok());
  EXPECT_TRUE(firewall
                  .process(kDefaultContext, 1, 0,
                           udp_packet("8.8.8.8", "10.0.0.1", 22,
                                      packet::kIpProtoTcp))
                  .empty());
  EXPECT_EQ(firewall
                .process(kDefaultContext, 0, 0,
                         udp_packet("10.0.0.1", "8.8.8.8", 22,
                                    packet::kIpProtoTcp))
                .size(),
            1u);
}

TEST(Firewall, NonIpTrafficPasses) {
  Firewall firewall;
  firewall.set_policy(kDefaultContext, FilterVerdict::kDrop);
  std::vector<std::uint8_t> arp(64, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  auto outs = firewall.process(kDefaultContext, 0, 0,
                               packet::PacketBuffer::copy_of(arp));
  EXPECT_EQ(outs.size(), 1u);
}

TEST(Firewall, ContextsHaveIndependentRuleSets) {
  Firewall firewall;
  ASSERT_TRUE(firewall.add_context(1).is_ok());
  firewall.set_policy(0, FilterVerdict::kDrop);
  firewall.set_policy(1, FilterVerdict::kAccept);
  auto packet0 = udp_packet("10.0.0.1", "8.8.8.8", 80);
  auto packet1 = udp_packet("10.0.0.1", "8.8.8.8", 80);
  EXPECT_TRUE(firewall.process(0, 0, 0, std::move(packet0)).empty());
  EXPECT_EQ(firewall.process(1, 0, 0, std::move(packet1)).size(), 1u);
}

TEST(Firewall, AppendRuleProgrammatically) {
  Firewall firewall;
  FilterRule rule;
  rule.protocol = packet::kIpProtoUdp;
  rule.dport_lo = rule.dport_hi = 53;
  rule.verdict = FilterVerdict::kDrop;
  ASSERT_TRUE(firewall.append_rule(kDefaultContext, rule).is_ok());
  EXPECT_EQ(firewall.rule_count(kDefaultContext), 1u);
  EXPECT_TRUE(firewall
                  .process(kDefaultContext, 0, 0,
                           udp_packet("1.1.1.1", "2.2.2.2", 53))
                  .empty());
  EXPECT_FALSE(firewall.append_rule(9, rule).is_ok());  // unknown ctx
}

TEST(Firewall, ConfigRejectsUnknownKeysAndBadPolicy) {
  Firewall firewall;
  EXPECT_FALSE(
      firewall.configure(kDefaultContext, {{"policy", "reject"}}).is_ok());
  EXPECT_FALSE(
      firewall.configure(kDefaultContext, {{"nonsense", "1"}}).is_ok());
  EXPECT_FALSE(
      firewall.configure(kDefaultContext, {{"rule.1", "bogus"}}).is_ok());
}

TEST(Firewall, RemoveContextDropsRules) {
  Firewall firewall;
  ASSERT_TRUE(firewall.add_context(3).is_ok());
  ASSERT_TRUE(firewall
                  .configure(3, {{"rule.1", "drop,any,any,udp,any"}})
                  .is_ok());
  EXPECT_EQ(firewall.rule_count(3), 1u);
  ASSERT_TRUE(firewall.remove_context(3).is_ok());
  EXPECT_EQ(firewall.rule_count(3), 0u);
}

}  // namespace
}  // namespace nnfv::nnf
