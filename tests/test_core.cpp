// Core support-block tests: resource manager, repository, resolver,
// scheduler policy, network manager (LSIs + virtual links) and steering.
#include <gtest/gtest.h>

#include "compute/docker_driver.hpp"
#include "compute/manager.hpp"
#include "compute/native_driver.hpp"
#include "compute/vm_driver.hpp"
#include "core/network_manager.hpp"
#include "core/repository.hpp"
#include "core/resolver.hpp"
#include "core/resource_manager.hpp"
#include "core/scheduler.hpp"
#include "core/node.hpp"
#include "core/steering.hpp"
#include "packet/builder.hpp"

namespace nnfv::core {
namespace {

// ---------------------------------------------------------------------------
// ResourceManager
// ---------------------------------------------------------------------------

TEST(ResourceManager, LedgersSizedFromCapacity) {
  NodeCapacity capacity;
  capacity.ram_bytes = 512 * virt::kMiB;
  capacity.disk_bytes = 1024 * virt::kMiB;
  ResourceManager resources(capacity);
  EXPECT_EQ(resources.ram().capacity(), 512 * virt::kMiB);
  EXPECT_EQ(resources.disk().capacity(), 1024 * virt::kMiB);
}

TEST(ResourceManager, DescribeReportsStateAndBackends) {
  ResourceManager resources(NodeCapacity{});
  resources.set_backends(
      {virt::BackendKind::kNative, virt::BackendKind::kDocker});
  ASSERT_TRUE(resources.ram().reserve(100));
  json::Value doc = resources.describe();
  EXPECT_EQ(doc.get_string("hostname"), "cpe-node");
  EXPECT_DOUBLE_EQ(doc.get("ram")->get_number("used_bytes"), 100.0);
  ASSERT_TRUE(doc.get("backends")->is_array());
  EXPECT_EQ(doc.get("backends")->as_array().size(), 2u);
  EXPECT_EQ(doc.get("backends")->as_array()[0].as_string(), "native");
}

// ---------------------------------------------------------------------------
// VnfRepository
// ---------------------------------------------------------------------------

TEST(VnfRepository, BuiltinsProvideAllFlavors) {
  VnfRepository repo = VnfRepository::with_builtins();
  for (const char* type : {"bridge", "firewall", "nat", "ipsec"}) {
    EXPECT_TRUE(repo.templates().has(type)) << type;
    for (virt::BackendKind kind :
         {virt::BackendKind::kNative, virt::BackendKind::kDocker,
          virt::BackendKind::kDpdk, virt::BackendKind::kVm}) {
      EXPECT_TRUE(repo.image_for(type, kind).is_ok())
          << type << "/" << virt::backend_name(kind);
    }
  }
}

TEST(VnfRepository, AddNfRejectsDuplicates) {
  VnfRepository repo = VnfRepository::with_builtins();
  compute::VnfTemplate dup;
  dup.functional_type = "ipsec";
  dup.factory = []() {
    return util::Result<std::unique_ptr<nnf::NetworkFunction>>(
        util::unimplemented("n/a"));
  };
  EXPECT_FALSE(repo.add_nf(std::move(dup)).is_ok());
}

// ---------------------------------------------------------------------------
// Resolver + scheduler on a real node assembly
// ---------------------------------------------------------------------------

class ResolverFixture : public ::testing::Test {
 protected:
  ResolverFixture()
      : catalog_(nnf::NnfCatalog::with_builtin_plugins()),
        repository_(VnfRepository::with_builtins()),
        resources_(NodeCapacity{}),
        resolver_(&repository_, &catalog_) {
    compute::DriverEnv generic;
    generic.simulator = &simulator_;
    generic.templates = &repository_.templates();
    generic.images = &repository_.images();
    generic.disk = &resources_.disk();
    generic.ram = &resources_.ram();
    compute::NativeDriverEnv native;
    native.simulator = &simulator_;
    native.catalog = &catalog_;
    native.netns = &netns_;
    native.marks = &marks_;
    native.ram = &resources_.ram();
    (void)manager_.register_driver(
        std::make_unique<compute::NativeDriver>(native));
    (void)manager_.register_driver(
        std::make_unique<compute::DockerDriver>(generic));
    (void)manager_.register_driver(
        std::make_unique<compute::VmDriver>(generic));
  }

  sim::Simulator simulator_;
  nnf::NnfCatalog catalog_;
  netns::NamespaceRegistry netns_;
  nnf::MarkAllocator marks_;
  VnfRepository repository_;
  ResourceManager resources_;
  compute::ComputeManager manager_;
  VnfResolver resolver_;
};

TEST_F(ResolverFixture, ResolvesAllViableBackends) {
  auto candidates = resolver_.resolve("ipsec", manager_);
  // native + docker + vm (no dpdk driver registered).
  ASSERT_EQ(candidates.size(), 3u);
  std::set<virt::BackendKind> kinds;
  for (const auto& c : candidates) kinds.insert(c.backend);
  EXPECT_TRUE(kinds.contains(virt::BackendKind::kNative));
  EXPECT_TRUE(kinds.contains(virt::BackendKind::kDocker));
  EXPECT_TRUE(kinds.contains(virt::BackendKind::kVm));
  EXPECT_FALSE(kinds.contains(virt::BackendKind::kDpdk));
}

TEST_F(ResolverFixture, UnknownTypeResolvesEmpty) {
  EXPECT_TRUE(resolver_.resolve("quantum-dpi", manager_).empty());
}

TEST_F(ResolverFixture, NativeCandidateReflectsSharing) {
  auto before = resolver_.resolve("ipsec", manager_);
  const auto* native = &before[0];
  for (const auto& c : before) {
    if (c.backend == virt::BackendKind::kNative) native = &c;
  }
  EXPECT_FALSE(native->shares_running_instance);
  const std::uint64_t fresh_ram = native->ram_estimate;

  catalog_.status("ipsec").running_instances = 1;  // as if one runs
  auto after = resolver_.resolve("ipsec", manager_);
  for (const auto& c : after) {
    if (c.backend == virt::BackendKind::kNative) {
      EXPECT_TRUE(c.shares_running_instance);
      EXPECT_LT(c.ram_estimate, fresh_ram);
    }
  }
}

TEST_F(ResolverFixture, NonSharableAtLimitDropsNativeCandidate) {
  catalog_.status("bridge").running_instances = 8;  // at max, not sharable
  auto candidates = resolver_.resolve("bridge", manager_);
  for (const auto& c : candidates) {
    EXPECT_NE(c.backend, virt::BackendKind::kNative);
  }
}

TEST_F(ResolverFixture, SchedulerPrefersNativeThenSmallestRam) {
  VnfScheduler scheduler;
  nffg::NfNode nf;
  nf.id = "vpn";
  nf.functional_type = "ipsec";
  auto ranked = scheduler.schedule(nf, resolver_.resolve("ipsec", manager_));
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].impl.backend, virt::BackendKind::kNative);
  EXPECT_EQ(ranked[1].impl.backend, virt::BackendKind::kDocker);
  EXPECT_EQ(ranked[2].impl.backend, virt::BackendKind::kVm);
  EXPECT_NE(ranked[0].reason.find("native"), std::string::npos);
}

TEST_F(ResolverFixture, BackendHintPinsChoice) {
  VnfScheduler scheduler;
  nffg::NfNode nf;
  nf.id = "vpn";
  nf.functional_type = "ipsec";
  nf.backend_hint = virt::BackendKind::kVm;
  auto ranked = scheduler.schedule(nf, resolver_.resolve("ipsec", manager_));
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].impl.backend, virt::BackendKind::kVm);
  EXPECT_NE(ranked[0].reason.find("pinned"), std::string::npos);

  nf.backend_hint = virt::BackendKind::kDpdk;  // no dpdk driver
  EXPECT_TRUE(
      scheduler.schedule(nf, resolver_.resolve("ipsec", manager_)).empty());
}

// ---------------------------------------------------------------------------
// NetworkManager
// ---------------------------------------------------------------------------

TEST(NetworkManager, PhysicalPorts) {
  NetworkManager network;
  auto eth0 = network.add_physical_port("eth0");
  ASSERT_TRUE(eth0.is_ok());
  EXPECT_FALSE(network.add_physical_port("eth0").is_ok());
  EXPECT_EQ(network.physical_port("eth0").value(), eth0.value());
  EXPECT_FALSE(network.physical_port("eth9").is_ok());
  EXPECT_EQ(network.lsi_count(), 1u);  // just LSI-0
}

TEST(NetworkManager, GraphLsiLifecycle) {
  NetworkManager network;
  auto lsi = network.create_graph_lsi("g1");
  ASSERT_TRUE(lsi.is_ok());
  EXPECT_FALSE(network.create_graph_lsi("g1").is_ok());
  EXPECT_EQ(network.lsi_count(), 2u);
  EXPECT_EQ(network.graph_lsi("g1"), lsi.value());
  EXPECT_EQ(network.graph_lsi("gX"), nullptr);
  EXPECT_EQ(network.graph_ids().size(), 1u);
  EXPECT_TRUE(network.destroy_graph_lsi("g1").is_ok());
  EXPECT_FALSE(network.destroy_graph_lsi("g1").is_ok());
  EXPECT_EQ(network.lsi_count(), 1u);
}

TEST(NetworkManager, VirtualLinkCrossWiresLsis) {
  NetworkManager network;
  auto lsi = network.create_graph_lsi("g1");
  ASSERT_TRUE(lsi.is_ok());
  auto link = network.create_virtual_link("g1", "lan");
  ASSERT_TRUE(link.is_ok());
  EXPECT_FALSE(network.create_virtual_link("gX", "lan").is_ok());

  // A frame transmitted out of the LSI-0 end arrives at the graph LSI.
  int graph_rx = 0;
  lsi.value()->flow_table().add(
      1, nfswitch::match_in_port(link->graph_port),
      {nfswitch::FlowAction::to_controller()});
  class Counter : public nfswitch::FlowController {
   public:
    explicit Counter(int* n) : n_(n) {}
    void on_packet_in(nfswitch::Lsi&, nfswitch::PortId,
                      const packet::PacketBuffer&) override {
      ++*n_;
    }
    int* n_;
  } controller(&graph_rx);
  lsi.value()->set_controller(&controller);

  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("1.1.1.1");
  spec.ip_dst = *packet::Ipv4Address::parse("2.2.2.2");
  network.base_lsi().transmit(link->base_port,
                              packet::build_udp_frame(spec));
  EXPECT_EQ(graph_rx, 1);
}

// ---------------------------------------------------------------------------
// TrafficSteering
// ---------------------------------------------------------------------------

class SteeringFixture : public ::testing::Test {
 protected:
  SteeringFixture() {
    (void)network_.add_physical_port("eth0");
    (void)network_.add_physical_port("eth1");
    lsi_ = network_.create_graph_lsi("g1").value();
    ports_.endpoints["lan"] = network_.create_virtual_link("g1", "lan").value();
    ports_.endpoints["wan"] = network_.create_virtual_link("g1", "wan").value();
    // Fake NF ports directly on the graph LSI.
    ports_.nf_ports[{"fw", 0}] = lsi_->add_port("fw:0").value();
    ports_.nf_ports[{"fw", 1}] = lsi_->add_port("fw:1").value();

    graph_.id = "g1";
    graph_.add_nf("fw", "firewall");
    graph_.add_endpoint("lan", "eth0", 10);
    graph_.add_endpoint("wan", "eth1");
    graph_.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("fw", 0));
    graph_.connect("r2", nffg::nf_port("fw", 1), nffg::endpoint_ref("wan"));
    graph_.connect("r3", nffg::endpoint_ref("wan"), nffg::nf_port("fw", 1));
    graph_.connect("r4", nffg::nf_port("fw", 0), nffg::endpoint_ref("lan"));
  }

  NetworkManager network_;
  nfswitch::Lsi* lsi_ = nullptr;
  GraphPorts ports_;
  nffg::NfFg graph_;
};

TEST_F(SteeringFixture, InstallCountsRules) {
  const auto cookie = TrafficSteering::cookie_for("g1");
  auto installed = TrafficSteering::install(graph_, network_, ports_, cookie);
  ASSERT_TRUE(installed.is_ok());
  // 2 per endpoint on LSI-0 (in+out) + 4 graph rules.
  EXPECT_EQ(installed.value(), 2u * 2u + 4u);
  EXPECT_EQ(network_.base_lsi().flow_table().size(), 4u);
  EXPECT_EQ(lsi_->flow_table().size(), 4u);
}

TEST_F(SteeringFixture, EndToEndClassificationAndRestoration) {
  ASSERT_TRUE(TrafficSteering::install(graph_, network_, ports_,
                                       TrafficSteering::cookie_for("g1"))
                  .is_ok());
  // fw ports loop back for the test: anything into fw:0 leaves fw:1.
  (void)lsi_->set_port_peer(
      ports_.nf_ports[{"fw", 0}],
      [this](packet::PacketBuffer&& frame) {
        lsi_->receive(ports_.nf_ports[{"fw", 1}], std::move(frame));
      });

  std::vector<packet::PacketBuffer> wan_out;
  ASSERT_TRUE(network_
                  .set_physical_egress("eth1",
                                       [&](packet::PacketBuffer&& frame) {
                                         wan_out.push_back(std::move(frame));
                                       })
                  .is_ok());

  // Tagged customer traffic enters eth0 on VLAN 10.
  packet::UdpFrameSpec spec;
  spec.vlan = 10;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.2");
  spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  spec.src_port = 1;
  spec.dst_port = 2;
  ASSERT_TRUE(
      network_.inject("eth0", packet::build_udp_frame(spec)).is_ok());

  ASSERT_EQ(wan_out.size(), 1u);
  // The WAN endpoint is untagged: the VLAN 10 tag was popped at LSI-0.
  EXPECT_FALSE(packet::parse_ethernet(wan_out[0].data())->vlan.has_value());
}

TEST_F(SteeringFixture, ReturnPathReTagsVlan) {
  ASSERT_TRUE(TrafficSteering::install(graph_, network_, ports_,
                                       TrafficSteering::cookie_for("g1"))
                  .is_ok());
  (void)lsi_->set_port_peer(
      ports_.nf_ports[{"fw", 1}],
      [this](packet::PacketBuffer&& frame) {
        lsi_->receive(ports_.nf_ports[{"fw", 0}], std::move(frame));
      });
  std::vector<packet::PacketBuffer> lan_out;
  ASSERT_TRUE(network_
                  .set_physical_egress("eth0",
                                       [&](packet::PacketBuffer&& frame) {
                                         lan_out.push_back(std::move(frame));
                                       })
                  .is_ok());
  packet::UdpFrameSpec spec;  // untagged from WAN
  spec.ip_src = *packet::Ipv4Address::parse("8.8.8.8");
  spec.ip_dst = *packet::Ipv4Address::parse("192.168.1.2");
  ASSERT_TRUE(
      network_.inject("eth1", packet::build_udp_frame(spec)).is_ok());
  ASSERT_EQ(lan_out.size(), 1u);
  // LAN endpoint is VLAN 10: the return traffic is re-tagged.
  EXPECT_EQ(packet::parse_ethernet(lan_out[0].data())->vlan.value_or(0), 10);
}

TEST_F(SteeringFixture, PacketFiltersNarrowRules) {
  // Replace r1 with a UDP-only rule plus a drop fallback.
  graph_.rules.clear();
  nffg::Rule& udp_rule = graph_.connect("r1", nffg::endpoint_ref("lan"),
                                        nffg::nf_port("fw", 0), 20);
  udp_rule.match.ip_proto = packet::kIpProtoUdp;
  udp_rule.match.tp_dst = 53;
  ASSERT_TRUE(TrafficSteering::install(graph_, network_, ports_,
                                       TrafficSteering::cookie_for("g1"))
                  .is_ok());
  int fw_rx = 0;
  (void)lsi_->set_port_peer(ports_.nf_ports[{"fw", 0}],
                            [&](packet::PacketBuffer&&) { ++fw_rx; });

  packet::UdpFrameSpec dns;
  dns.vlan = 10;
  dns.ip_src = *packet::Ipv4Address::parse("192.168.1.2");
  dns.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  dns.dst_port = 53;
  (void)network_.inject("eth0", packet::build_udp_frame(dns));
  EXPECT_EQ(fw_rx, 1);

  packet::UdpFrameSpec other = dns;
  other.dst_port = 80;
  (void)network_.inject("eth0", packet::build_udp_frame(other));
  EXPECT_EQ(fw_rx, 1);  // not matched: graph-LSI table miss, dropped
}

TEST_F(SteeringFixture, RemoveDeletesOnlyThisGraphsRules) {
  const auto cookie = TrafficSteering::cookie_for("g1");
  ASSERT_TRUE(
      TrafficSteering::install(graph_, network_, ports_, cookie).is_ok());
  // Unrelated rule survives.
  network_.base_lsi().flow_table().add(1, nfswitch::FlowMatch{}, {}, 0xABC);
  const std::size_t removed = TrafficSteering::remove(network_, cookie);
  EXPECT_EQ(removed, 4u);
  EXPECT_EQ(network_.base_lsi().flow_table().size(), 1u);
}

TEST_F(SteeringFixture, InstallFailsOnMissingMapping) {
  ports_.nf_ports.erase({"fw", 1});
  auto installed = TrafficSteering::install(graph_, network_, ports_,
                                            TrafficSteering::cookie_for("g1"));
  EXPECT_FALSE(installed.is_ok());
}

}  // namespace
}  // namespace nnfv::core

// -----------------------------------------------------------------------
// Alternative placement policies (appended with the A6 ablation)
// -----------------------------------------------------------------------

namespace nnfv::core {
namespace {

class PolicyFixture : public ::testing::Test {
 protected:
  PolicyFixture() {
    // Candidate set mimicking a full resolver result for "ipsec".
    NfImplementation native;
    native.backend = virt::BackendKind::kNative;
    native.ram_estimate = 20 * virt::kMiB;
    candidates_.push_back(native);
    NfImplementation docker;
    docker.backend = virt::BackendKind::kDocker;
    docker.image = "ipsec:docker";
    docker.ram_estimate = 24 * virt::kMiB;
    candidates_.push_back(docker);
    NfImplementation vm;
    vm.backend = virt::BackendKind::kVm;
    vm.image = "ipsec:vm";
    vm.ram_estimate = 390 * virt::kMiB;
    candidates_.push_back(vm);
    nf_.id = "vpn";
    nf_.functional_type = "ipsec";
  }
  std::vector<NfImplementation> candidates_;
  nffg::NfNode nf_;
};

TEST_F(PolicyFixture, VnfOnlyDropsNativeAndSortsByRam) {
  VnfOnlyPolicy policy;
  auto ranked = policy.rank(nf_, candidates_);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].impl.backend, virt::BackendKind::kDocker);
  EXPECT_EQ(ranked[1].impl.backend, virt::BackendKind::kVm);
}

TEST_F(PolicyFixture, FastActivationPrefersSharedNative) {
  // A shared native candidate activates in config time, beating boot.
  NfImplementation shared = candidates_[0];
  shared.shares_running_instance = true;
  auto with_shared = candidates_;
  with_shared.push_back(shared);
  FastActivationPolicy policy;
  auto ranked = policy.rank(nf_, with_shared);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_TRUE(ranked[0].impl.shares_running_instance);
  EXPECT_EQ(ranked[0].impl.backend, virt::BackendKind::kNative);
  // VM boots slowest: always last.
  EXPECT_EQ(ranked.back().impl.backend, virt::BackendKind::kVm);
}

TEST_F(PolicyFixture, MakePolicyFactoryCoversAllKinds) {
  for (PlacementPolicyKind kind :
       {PlacementPolicyKind::kDefault, PlacementPolicyKind::kVnfOnly,
        PlacementPolicyKind::kFastActivation}) {
    auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    (void)policy->rank(nf_, candidates_);
  }
}

TEST_F(PolicyFixture, VnfOnlyNodeNeverPlacesNative) {
  UniversalNodeConfig config;
  config.placement_policy = PlacementPolicyKind::kVnfOnly;
  UniversalNode node(config);
  nffg::NfFg graph;
  graph.id = "g";
  graph.add_nf("nf", "ipsec");
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("nf", 0));
  graph.connect("r2", nffg::nf_port("nf", 1), nffg::endpoint_ref("wan"));
  auto report = node.orchestrator().deploy(graph);
  ASSERT_TRUE(report.is_ok());
  EXPECT_NE(report->placements[0].backend, virt::BackendKind::kNative);
  EXPECT_EQ(node.catalog().status_of("ipsec")->running_instances, 0u);
}

}  // namespace
}  // namespace nnfv::core
