// SA lifecycle tests: soft/hard lifetimes, the ACTIVE -> REKEYING ->
// DRAINING -> DEAD rekey state machine with make-before-break cutover,
// non-ESN sequence-space exhaustion, SAD scaling, and the adversarial
// fault-injection corpus (replay floods, corrupted frames, truncations,
// garbage) with full drop accounting.
#include <gtest/gtest.h>

#include "crypto/backend.hpp"
#include "crypto/cipher_modes.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "traffic/adversary.hpp"
#include "util/byteorder.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {
namespace {

constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
constexpr const char* kAuthKey =
    "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f";
constexpr const char* kEncKey2 = "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff";
constexpr const char* kAuthKey2 =
    "606162636465666768696a6b6c6d6e6f707172737475767778797a7b7c7d7e7f";

NfConfig initiator_config() {
  return {{"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
          {"spi_out", "1001"},          {"spi_in", "2002"},
          {"enc_key", kEncKey},         {"auth_key", kAuthKey}};
}

NfConfig responder_config() {
  return {{"local_ip", "198.51.100.2"}, {"peer_ip", "198.51.100.1"},
          {"spi_out", "2002"},          {"spi_in", "1001"},
          {"enc_key", kEncKey},         {"auth_key", kAuthKey}};
}

/// Mirrored make-before-break keymat for the pair: the initiator's new
/// outbound SPI is the responder's new inbound SPI and vice versa.
NfConfig initiator_rekey() {
  return {{"rekey_spi_out", "1003"},
          {"rekey_spi_in", "2004"},
          {"rekey_enc_key", kEncKey2},
          {"rekey_auth_key", kAuthKey2}};
}

NfConfig responder_rekey() {
  return {{"rekey_spi_out", "2004"},
          {"rekey_spi_in", "1003"},
          {"rekey_enc_key", kEncKey2},
          {"rekey_auth_key", kAuthKey2}};
}

packet::PacketBuffer plaintext_frame(std::size_t payload_size = 200,
                                     std::uint64_t seed = 1) {
  util::Rng rng(seed);
  static std::vector<std::uint8_t> payload;
  payload = rng.bytes(payload_size);
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
  spec.src_port = 5001;
  spec.dst_port = 5001;
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

IpsecEndpoint make_endpoint(const NfConfig& config) {
  IpsecEndpoint endpoint;
  EXPECT_TRUE(endpoint.configure(kDefaultContext, config).is_ok());
  return endpoint;
}

std::uint32_t wire_spi(const packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  auto esp = packet::parse_esp(frame.data().subspan(eth->wire_size() + 20));
  return esp->spi;
}

/// Total inbound drops an endpoint has accounted for, every reason.
std::uint64_t accounted_drops(const IpsecEndpoint& ep) {
  const IpsecStats& s = ep.stats();
  return s.auth_failures + s.replay_drops + s.malformed + s.no_sa +
         s.lifetime_drops;
}

// ---------------------------------------------------------------------------
// Rekey state machine
// ---------------------------------------------------------------------------

TEST(IpsecLifecycle, SoftPacketThresholdCutsOverToStagedKeymat) {
  NfConfig init = initiator_config();
  init["life_soft_packets"] = "5";
  IpsecEndpoint initiator = make_endpoint(init);
  IpsecEndpoint responder = make_endpoint(responder_config());
  ASSERT_TRUE(
      initiator.configure(kDefaultContext, initiator_rekey()).is_ok());
  ASSERT_TRUE(
      responder.configure(kDefaultContext, responder_rekey()).is_ok());
  EXPECT_EQ(initiator.stats().rekeys_started, 1u);
  ASSERT_NE(initiator.staged_outbound_sa(kDefaultContext), nullptr);

  // 10 packets: the first 5 ride the old SA, the cutover happens before
  // packet 6, and every single one decapsulates — zero loss.
  for (int i = 0; i < 10; ++i) {
    auto enc = initiator.process(kDefaultContext, 0, 0,
                                 plaintext_frame(120, 100 + i));
    ASSERT_EQ(enc.size(), 1u) << "packet " << i;
    EXPECT_EQ(wire_spi(enc[0].frame), i < 5 ? 1001u : 1003u)
        << "packet " << i;
    auto dec = responder.process(kDefaultContext, 1, 0,
                                 std::move(enc[0].frame));
    ASSERT_EQ(dec.size(), 1u) << "packet " << i;
  }
  EXPECT_EQ(initiator.stats().rekeys_completed, 1u);
  EXPECT_EQ(initiator.outbound_sa(kDefaultContext)->spi, 1003u);
  // The superseded inbound generation is draining, not gone.
  ASSERT_NE(initiator.draining_sa(kDefaultContext), nullptr);
  EXPECT_EQ(initiator.draining_sa(kDefaultContext)->spi, 2002u);
  EXPECT_EQ(initiator.draining_sa(kDefaultContext)->state,
            SaState::kDraining);
  EXPECT_EQ(responder.stats().decapsulated, 10u);
  EXPECT_EQ(accounted_drops(responder), 0u);
}

TEST(IpsecLifecycle, RekeyCutoverNowSwitchesOnNextPacket) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto enc =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(100, 1));
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(wire_spi(enc[0].frame), 1001u);
  ASSERT_EQ(
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
          .size(),
      1u);

  NfConfig rekey = initiator_rekey();
  rekey["rekey_cutover"] = "now";
  ASSERT_TRUE(initiator.configure(kDefaultContext, rekey).is_ok());
  ASSERT_TRUE(
      responder.configure(kDefaultContext, responder_rekey()).is_ok());

  enc = initiator.process(kDefaultContext, 0, 0, plaintext_frame(100, 2));
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(wire_spi(enc[0].frame), 1003u);
  EXPECT_EQ(
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
          .size(),
      1u);
  EXPECT_EQ(initiator.stats().rekeys_completed, 1u);
}

TEST(IpsecLifecycle, InFlightOldGenerationPacketsDrainAfterCutover) {
  NfConfig init = initiator_config();
  init["life_soft_packets"] = "3";
  IpsecEndpoint initiator = make_endpoint(init);
  NfConfig resp = responder_config();
  resp["life_soft_packets"] = "3";
  IpsecEndpoint responder = make_endpoint(resp);
  ASSERT_TRUE(
      initiator.configure(kDefaultContext, initiator_rekey()).is_ok());
  ASSERT_TRUE(
      responder.configure(kDefaultContext, responder_rekey()).is_ok());

  // Capture old-generation ciphertext, then force the responder through
  // its own cutover (it sends 4 packets; the initiator accepts on its
  // staged inbound SA).
  auto in_flight =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(90, 7));
  ASSERT_EQ(in_flight.size(), 1u);
  for (int i = 0; i < 4; ++i) {
    auto enc = responder.process(kDefaultContext, 0, 0,
                                 plaintext_frame(90, 20 + i));
    ASSERT_EQ(enc.size(), 1u);
    ASSERT_EQ(
        initiator.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
            .size(),
        1u);
  }
  ASSERT_EQ(responder.stats().rekeys_completed, 1u);
  ASSERT_NE(responder.draining_sa(kDefaultContext), nullptr);

  // The pre-cutover packet arrives late: the draining inbound SA (old
  // SPI 1001) still accepts it.
  auto dec = responder.process(kDefaultContext, 1, 0,
                               std::move(in_flight[0].frame));
  EXPECT_EQ(dec.size(), 1u);
  EXPECT_EQ(accounted_drops(responder), 0u);
  EXPECT_EQ(responder.draining_sa(kDefaultContext)->packets, 1u);
}

TEST(IpsecLifecycle, ReplayWindowIsFreshAcrossSpiSwitchover) {
  NfConfig resp = responder_config();
  resp["life_soft_packets"] = "2";
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(resp);
  ASSERT_TRUE(
      initiator.configure(kDefaultContext, initiator_rekey()).is_ok());
  ASSERT_TRUE(
      responder.configure(kDefaultContext, responder_rekey()).is_ok());

  // Old generation runs its sequence up, and we keep a duplicate.
  packet::PacketBuffer old_dup;
  for (int i = 0; i < 3; ++i) {
    auto enc = initiator.process(kDefaultContext, 0, 0,
                                 plaintext_frame(80, 40 + i));
    ASSERT_EQ(enc.size(), 1u);
    old_dup = packet::PacketBuffer::copy_of(enc[0].frame.data());
    ASSERT_EQ(
        responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
            .size(),
        1u);
  }
  // Cut the initiator over by force (responder's inbound switchover).
  NfConfig now_rekey = initiator_rekey();
  now_rekey["rekey_cutover"] = "now";
  // Restaging with cutover=now replaces the pending soft-staged rekey.
  ASSERT_TRUE(initiator.configure(kDefaultContext, now_rekey).is_ok());

  // New generation starts at wire seq 1 — the fresh SA's replay window
  // must accept it even though the old SA was already at seq 3.
  auto enc =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(80, 50));
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(wire_spi(enc[0].frame), 1003u);
  packet::PacketBuffer new_dup = packet::PacketBuffer::copy_of(enc[0].frame.data());
  ASSERT_EQ(
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
          .size(),
      1u);

  // A duplicate on the *new* SA is a replay on the new window...
  EXPECT_TRUE(
      responder.process(kDefaultContext, 1, 0, std::move(new_dup)).empty());
  EXPECT_EQ(responder.stats().replay_drops, 1u);
  // ...and a duplicate of the old generation is a replay on the *old*
  // (still current on the responder, which has not cut over) SA: the two
  // windows are independent.
  EXPECT_TRUE(
      responder.process(kDefaultContext, 1, 0, std::move(old_dup)).empty());
  EXPECT_EQ(responder.stats().replay_drops, 2u);
  EXPECT_EQ(responder.inbound_sa(kDefaultContext)->replay_drops, 1u);
}

TEST(IpsecLifecycle, DrainDeadlineRetiresSupersededInboundSa) {
  NfConfig init = initiator_config();
  init["drain_ns"] = "1000";  // 1us drain window
  IpsecEndpoint initiator = make_endpoint(init);
  IpsecEndpoint responder = make_endpoint(responder_config());
  NfConfig rekey = initiator_rekey();
  rekey["rekey_cutover"] = "now";
  ASSERT_TRUE(initiator.configure(kDefaultContext, rekey).is_ok());
  ASSERT_TRUE(
      responder.configure(kDefaultContext, responder_rekey()).is_ok());

  // Cutover at t=0: the old inbound SA (2002) drains until t=1000.
  ASSERT_EQ(
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(64, 1))
          .size(),
      1u);
  ASSERT_NE(initiator.draining_sa(kDefaultContext), nullptr);

  // A responder packet on the old SA inside the window still decaps.
  auto enc =
      responder.process(kDefaultContext, 0, 0, plaintext_frame(64, 2));
  ASSERT_EQ(enc.size(), 1u);
  packet::PacketBuffer late = packet::PacketBuffer::copy_of(enc[0].frame.data());
  EXPECT_EQ(initiator.process(kDefaultContext, 1, 500,
                              std::move(enc[0].frame))
                .size(),
            1u);

  // Past the deadline the generation is retired: the SPI is gone from
  // the SAD, the late duplicate counts as no_sa, never UB.
  EXPECT_TRUE(
      initiator.process(kDefaultContext, 1, 2000, std::move(late)).empty());
  EXPECT_EQ(initiator.draining_sa(kDefaultContext), nullptr);
  EXPECT_EQ(initiator.stats().sas_retired, 1u);
  EXPECT_EQ(initiator.stats().no_sa, 1u);
}

TEST(IpsecLifecycle, StagedRekeyValidation) {
  IpsecEndpoint endpoint = make_endpoint(initiator_config());
  // Incomplete rekey bundles are rejected.
  EXPECT_FALSE(endpoint
                   .configure(kDefaultContext,
                              {{"rekey_spi_out", "1003"}})
                   .is_ok());
  // The staged inbound SPI must not collide with a live inbound SPI.
  EXPECT_FALSE(endpoint
                   .configure(kDefaultContext,
                              {{"rekey_spi_out", "1003"},
                               {"rekey_spi_in", "2002"},
                               {"rekey_enc_key", kEncKey2}})
                   .is_ok());
  // A valid bundle stages; restaging replaces (SAD stays at 2 entries:
  // current inbound + one staged inbound).
  ASSERT_TRUE(
      endpoint.configure(kDefaultContext, initiator_rekey()).is_ok());
  EXPECT_EQ(endpoint.sad_size(), 2u);
  NfConfig replacement = initiator_rekey();
  replacement["rekey_spi_in"] = "2006";
  ASSERT_TRUE(endpoint.configure(kDefaultContext, replacement).is_ok());
  EXPECT_EQ(endpoint.sad_size(), 2u);
  EXPECT_EQ(endpoint.staged_inbound_sa(kDefaultContext)->spi, 2006u);
  EXPECT_EQ(endpoint.stats().rekeys_started, 2u);
}

// ---------------------------------------------------------------------------
// Lifetimes and sequence exhaustion
// ---------------------------------------------------------------------------

TEST(IpsecLifecycle, NonEsnSequenceExhaustionHardStops) {
  NfConfig config = initiator_config();
  config["seq_headroom"] = "0";  // isolate the hard stop
  IpsecEndpoint endpoint = make_endpoint(config);
  endpoint.outbound_sa(kDefaultContext)->seq = 0xFFFFFFFFULL - 2;

  // Two packets left in the sequence space (2^32-2, 2^32-1)...
  EXPECT_EQ(
      endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, 1))
          .size(),
      1u);
  EXPECT_EQ(
      endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, 2))
          .size(),
      1u);
  EXPECT_EQ(endpoint.outbound_sa(kDefaultContext)->seq, 0xFFFFFFFFULL);

  // ...then the counter must not cycle (RFC 4303 §3.3.3): drop, count,
  // mark DEAD, and never move the sequence again.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(
        endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, 3 + i))
            .empty());
  }
  EXPECT_EQ(endpoint.stats().lifetime_drops, 3u);
  EXPECT_EQ(endpoint.outbound_sa(kDefaultContext)->lifetime_drops, 3u);
  EXPECT_EQ(endpoint.outbound_sa(kDefaultContext)->state, SaState::kDead);
  EXPECT_EQ(endpoint.outbound_sa(kDefaultContext)->seq, 0xFFFFFFFFULL);
  EXPECT_EQ(endpoint.stats().encapsulated, 2u);
}

TEST(IpsecLifecycle, SequenceHeadroomCutsOverBeforeExhaustion) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  ASSERT_TRUE(
      initiator.configure(kDefaultContext, initiator_rekey()).is_ok());
  ASSERT_TRUE(
      responder.configure(kDefaultContext, responder_rekey()).is_ok());

  // Inside the default 4096-sequence headroom: the staged keymat absorbs
  // the soft trigger, no packet is ever dropped.
  initiator.outbound_sa(kDefaultContext)->seq = 0xFFFFFFFFULL - 100;
  auto enc =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(64, 1));
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(wire_spi(enc[0].frame), 1003u);  // fresh SA, fresh sequence
  EXPECT_EQ(
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
          .size(),
      1u);
  EXPECT_EQ(initiator.stats().lifetime_drops, 0u);
  EXPECT_EQ(initiator.stats().rekeys_completed, 1u);
}

TEST(IpsecLifecycle, HardPacketLifetimeDropsWithoutStagedKeymat) {
  NfConfig config = initiator_config();
  config["life_hard_packets"] = "3";
  IpsecEndpoint endpoint = make_endpoint(config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(
        endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, i))
            .size(),
        1u);
  }
  EXPECT_TRUE(
      endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, 9))
          .empty());
  EXPECT_EQ(endpoint.stats().lifetime_drops, 1u);
  EXPECT_EQ(endpoint.outbound_sa(kDefaultContext)->state, SaState::kDead);

  // Make-before-break repairs even a dead SA: staging keymat afterwards
  // resolves the next send into a cutover, not a drop.
  ASSERT_TRUE(
      endpoint.configure(kDefaultContext, initiator_rekey()).is_ok());
  auto enc =
      endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, 10));
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(wire_spi(enc[0].frame), 1003u);
}

TEST(IpsecLifecycle, SoftExpiryWithoutStagedKeymatFlagsRekeying) {
  NfConfig config = initiator_config();
  config["life_soft_packets"] = "2";
  IpsecEndpoint endpoint = make_endpoint(config);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(
        endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, i))
            .size(),
        1u);
  }
  // Traffic continues (soft is advisory) but the SA asks for keymat.
  EXPECT_EQ(endpoint.outbound_sa(kDefaultContext)->state,
            SaState::kRekeying);
  EXPECT_EQ(endpoint.stats().lifetime_drops, 0u);
}

TEST(IpsecLifecycle, HardByteLifetimeEnforcedInbound) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  NfConfig resp = responder_config();
  resp["life_hard_bytes"] = "100";
  IpsecEndpoint responder = make_endpoint(resp);
  // First packet (≈160 inner bytes) passes and crosses the threshold;
  // the second is refused by the inbound hard stop.
  auto enc1 =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(120, 1));
  ASSERT_EQ(enc1.size(), 1u);
  EXPECT_EQ(
      responder.process(kDefaultContext, 1, 0, std::move(enc1[0].frame))
          .size(),
      1u);
  auto enc2 =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(120, 2));
  ASSERT_EQ(enc2.size(), 1u);
  EXPECT_TRUE(
      responder.process(kDefaultContext, 1, 0, std::move(enc2[0].frame))
          .empty());
  EXPECT_EQ(responder.stats().lifetime_drops, 1u);
  EXPECT_EQ(responder.inbound_sa(kDefaultContext)->state, SaState::kDead);
}

// ---------------------------------------------------------------------------
// Rekey under traffic, every backend / both transforms
// ---------------------------------------------------------------------------

TEST(IpsecLifecycle, RekeyUnderLiveBurstTrafficZeroLossOnEveryBackend) {
  for (const crypto::CryptoBackend* backend : crypto::usable_backends()) {
    crypto::ScopedBackendOverride override_scope(*backend);
    for (const char* transform : {"gcm", "cbc-hmac"}) {
      NfConfig init = initiator_config();
      init["esp_transform"] = transform;
      init["life_soft_packets"] = "40";
      NfConfig resp = responder_config();
      resp["esp_transform"] = transform;
      IpsecEndpoint initiator = make_endpoint(init);
      IpsecEndpoint responder = make_endpoint(resp);
      ASSERT_TRUE(
          initiator.configure(kDefaultContext, initiator_rekey()).is_ok());
      ASSERT_TRUE(
          responder.configure(kDefaultContext, responder_rekey()).is_ok());

      // 16 bursts x 8 frames: the soft threshold trips mid-stream, the
      // cutover lands inside a burst, and not one frame is lost.
      std::uint64_t sent = 0;
      for (int b = 0; b < 16; ++b) {
        packet::PacketBurst burst;
        for (int i = 0; i < 8; ++i) {
          burst.push_back(plaintext_frame(100, 1000 + b * 8 + i));
        }
        sent += burst.size();
        auto enc = initiator.process_burst(kDefaultContext, 0, b,
                                           std::move(burst));
        ASSERT_EQ(enc.size(), 8u)
            << backend->name() << "/" << transform << " burst " << b;
        packet::PacketBurst black;
        for (NfOutput& output : enc) black.push_back(std::move(output.frame));
        auto dec = responder.process_burst(kDefaultContext, 1, b,
                                           std::move(black));
        ASSERT_EQ(dec.size(), 8u)
            << backend->name() << "/" << transform << " burst " << b;
      }
      EXPECT_EQ(initiator.stats().rekeys_completed, 1u)
          << backend->name() << "/" << transform;
      EXPECT_EQ(initiator.outbound_sa(kDefaultContext)->spi, 1003u);
      EXPECT_EQ(responder.stats().decapsulated, sent)
          << backend->name() << "/" << transform;
      EXPECT_EQ(accounted_drops(responder), 0u)
          << backend->name() << "/" << transform;
    }
  }
}

TEST(IpsecLifecycle, EsnBoundaryRekeyOnEveryBackend) {
  // Rekey staged while the old SA crosses the 2^32 seq-lo boundary: ESN
  // recovery, the replay window and the cutover must all compose.
  for (const crypto::CryptoBackend* backend : crypto::usable_backends()) {
    crypto::ScopedBackendOverride override_scope(*backend);
    NfConfig init = initiator_config();
    init["esn"] = "on";
    init["life_soft_packets"] = "4";
    NfConfig resp = responder_config();
    resp["esn"] = "on";
    IpsecEndpoint initiator = make_endpoint(init);
    IpsecEndpoint responder = make_endpoint(resp);
    ASSERT_TRUE(
        initiator.configure(kDefaultContext, initiator_rekey()).is_ok());
    ASSERT_TRUE(
        responder.configure(kDefaultContext, responder_rekey()).is_ok());

    const std::uint64_t boundary = 1ULL << 32;
    initiator.outbound_sa(kDefaultContext)->seq = boundary - 2;
    responder.inbound_sa(kDefaultContext)->replay_top = boundary - 2;
    responder.inbound_sa(kDefaultContext)->replay_bitmap = 1;

    // Packets 1-4 straddle the boundary on the old SA (seq 2^32-1,
    // 2^32, 2^32+1, 2^32+2); packet 5 rides the cutover.
    for (int i = 0; i < 8; ++i) {
      auto enc = initiator.process(kDefaultContext, 0, 0,
                                   plaintext_frame(90, 300 + i));
      ASSERT_EQ(enc.size(), 1u) << backend->name() << " packet " << i;
      EXPECT_EQ(wire_spi(enc[0].frame), i < 4 ? 1001u : 1003u)
          << backend->name() << " packet " << i;
      ASSERT_EQ(
          responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
              .size(),
          1u)
          << backend->name() << " packet " << i;
    }
    EXPECT_EQ(initiator.stats().rekeys_completed, 1u) << backend->name();
    EXPECT_EQ(accounted_drops(responder), 0u) << backend->name();
  }
}

// ---------------------------------------------------------------------------
// SAD scale
// ---------------------------------------------------------------------------

TEST(IpsecLifecycle, SadScalesToThousandsOfTunnels) {
  IpsecEndpoint initiator;
  IpsecEndpoint responder;
  constexpr std::uint32_t kTunnels = 2000;
  for (std::uint32_t i = 0; i < kTunnels; ++i) {
    const ContextId ctx = i;
    if (ctx != kDefaultContext) {
      ASSERT_TRUE(initiator.add_context(ctx).is_ok());
      ASSERT_TRUE(responder.add_context(ctx).is_ok());
    }
    NfConfig init = initiator_config();
    init["spi_out"] = std::to_string(100000 + i);
    init["spi_in"] = std::to_string(200000 + i);
    NfConfig resp = responder_config();
    resp["spi_out"] = std::to_string(200000 + i);
    resp["spi_in"] = std::to_string(100000 + i);
    ASSERT_TRUE(initiator.configure(ctx, init).is_ok());
    ASSERT_TRUE(responder.configure(ctx, resp).is_ok());
  }
  EXPECT_EQ(responder.sad_size(), kTunnels);

  // Spot-check decap across the population (first, middle, last).
  for (ContextId ctx : {0u, kTunnels / 2, kTunnels - 1}) {
    auto enc = initiator.process(ctx, 0, 0, plaintext_frame(80, ctx));
    ASSERT_EQ(enc.size(), 1u) << "ctx " << ctx;
    EXPECT_EQ(responder.process(ctx, 1, 0, std::move(enc[0].frame)).size(),
              1u)
        << "ctx " << ctx;
  }

  // Teardown shrinks the SAD; a packet for a removed tunnel is no_sa.
  auto orphan = initiator.process(7, 0, 0, plaintext_frame(80, 9));
  ASSERT_EQ(orphan.size(), 1u);
  ASSERT_TRUE(responder.remove_context(7).is_ok());
  EXPECT_EQ(responder.sad_size(), kTunnels - 1);
  EXPECT_TRUE(
      responder.process(7, 1, 0, std::move(orphan[0].frame)).empty());
}

// ---------------------------------------------------------------------------
// Fault injection: the adversarial corpus, fully accounted
// ---------------------------------------------------------------------------

TEST(IpsecLifecycle, AdversarialCorpusEveryDropAccounted) {
  for (const char* transform : {"gcm", "cbc-hmac"}) {
    NfConfig init = initiator_config();
    init["esp_transform"] = transform;
    NfConfig resp = responder_config();
    resp["esp_transform"] = transform;
    IpsecEndpoint initiator = make_endpoint(init);
    IpsecEndpoint responder = make_endpoint(resp);
    const std::size_t icv = std::string(transform) == "gcm"
                                ? IpsecEndpoint::kGcmIcvSize
                                : IpsecEndpoint::kIcvSize;
    const std::size_t iv = std::string(transform) == "gcm"
                               ? IpsecEndpoint::kGcmIvSize
                               : IpsecEndpoint::kIvSize;

    // A little legitimate traffic first, keeping one delivered frame as
    // the adversary's raw material.
    packet::PacketBuffer captured;
    for (int i = 0; i < 4; ++i) {
      auto enc = initiator.process(kDefaultContext, 0, 0,
                                   plaintext_frame(150, 70 + i));
      ASSERT_EQ(enc.size(), 1u);
      captured = packet::PacketBuffer::copy_of(enc[0].frame.data());
      ASSERT_EQ(
          responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
              .size(),
          1u);
    }
    const std::uint64_t good = responder.stats().decapsulated;

    traffic::EspAdversary adversary(1234);
    packet::PacketBurst corpus;
    // Replay flood: 32 verbatim duplicates of a delivered frame.
    for (auto& frame : adversary.replay_flood(captured, 32)) {
      corpus.push_back(std::move(frame));
    }
    // Auth-failure storm: flipped ciphertext and flipped ICV bits.
    for (int i = 0; i < 16; ++i) {
      corpus.push_back(adversary.corrupt_ciphertext(captured, icv));
      corpus.push_back(adversary.corrupt_icv(captured, icv));
    }
    // Truncations at every parsing boundary.
    for (auto& frame : adversary.truncation_sweep(captured, iv)) {
      corpus.push_back(std::move(frame));
    }
    // Garbage that is ESP only by protocol number.
    for (std::size_t bytes : {0u, 3u, 8u, 24u, 200u}) {
      corpus.push_back(adversary.garbage_esp(captured, bytes));
    }
    const std::uint64_t offered = adversary.counters().total();
    ASSERT_EQ(offered, corpus.size());

    // Not one adversarial frame may decapsulate, and every one must be
    // accounted under exactly one drop reason.
    auto out = responder.process_burst(kDefaultContext, 1, 0,
                                       std::move(corpus));
    EXPECT_TRUE(out.empty()) << transform;
    EXPECT_EQ(responder.stats().decapsulated, good) << transform;
    EXPECT_EQ(accounted_drops(responder), offered) << transform;
    EXPECT_GE(responder.stats().replay_drops, 32u) << transform;
    EXPECT_GE(responder.stats().auth_failures, 32u) << transform;
    EXPECT_GE(responder.stats().malformed,
              adversary.counters().truncated)
        << transform;
    // Per-SA accounting matches the endpoint view for the SA the storm
    // targeted.
    const SecurityAssociation* sa =
        responder.inbound_sa(kDefaultContext);
    EXPECT_EQ(sa->replay_drops, responder.stats().replay_drops)
        << transform;
    EXPECT_EQ(sa->auth_fail, responder.stats().auth_failures) << transform;
  }
}

/// Builds a *validly tagged* GCM ESP frame for the responder's inbound
/// SA whose decrypted trailer is hostile — the only way to reach the
/// pad-length / pad-content checks behind authentication.
packet::PacketBuffer forge_gcm_esp(std::uint32_t spi, std::uint64_t seq,
                                   std::vector<std::uint8_t> plaintext) {
  std::vector<std::uint8_t> key_bytes;
  EXPECT_TRUE(util::hex_decode(kEncKey, key_bytes));
  auto gcm = crypto::GcmContext::create(key_bytes);
  EXPECT_TRUE(gcm.is_ok());

  const std::size_t esp_payload = packet::kEspHeaderSize +
                                  IpsecEndpoint::kGcmIvSize +
                                  plaintext.size() +
                                  IpsecEndpoint::kGcmIcvSize;
  const std::size_t esp_off =
      packet::kEthernetHeaderSize + packet::kIpv4MinHeaderSize;
  packet::PacketBuffer frame;
  auto buf = frame.push_back(esp_off + esp_payload);

  packet::EthernetHeader eth{.dst = packet::MacAddress::from_id(0xE1),
                             .src = packet::MacAddress::from_id(0xE0),
                             .ether_type = packet::kEtherTypeIpv4,
                             .vlan = std::nullopt};
  packet::write_ethernet(eth, buf.subspan(0, packet::kEthernetHeaderSize));
  packet::Ipv4Header ip;
  ip.protocol = packet::kIpProtoEsp;
  ip.src = *packet::Ipv4Address::parse("198.51.100.1");
  ip.dst = *packet::Ipv4Address::parse("198.51.100.2");
  ip.total_length =
      static_cast<std::uint16_t>(packet::kIpv4MinHeaderSize + esp_payload);
  packet::write_ipv4(ip, buf.subspan(packet::kEthernetHeaderSize,
                                     packet::kIpv4MinHeaderSize));
  packet::EspHeader esp{spi, static_cast<std::uint32_t>(seq)};
  packet::write_esp(esp, buf.subspan(esp_off, packet::kEspHeaderSize));
  util::store_be64(buf.data() + esp_off + packet::kEspHeaderSize, seq);

  // Nonce/AAD exactly as the endpoint derives them (32-hex key => zero
  // salt; non-ESN AAD = SPI || seq-lo).
  std::uint8_t nonce[crypto::GcmContext::kIvSize];
  util::store_be32(nonce, spi);
  util::store_be64(nonce + 4, seq);
  std::uint8_t aad[8];
  util::store_be32(aad, spi);
  util::store_be32(aad + 4, static_cast<std::uint32_t>(seq));

  const std::size_t ct_off =
      esp_off + packet::kEspHeaderSize + IpsecEndpoint::kGcmIvSize;
  EXPECT_TRUE(gcm->seal(nonce, aad, plaintext, buf.data() + ct_off,
                        buf.data() + ct_off + plaintext.size())
                  .is_ok());
  return frame;
}

TEST(IpsecLifecycle, ForgedTrailersFailClosedAsCountedMalformed) {
  IpsecEndpoint responder = make_endpoint(responder_config());

  // pad_length exceeding the decrypted payload: must not underflow.
  std::vector<std::uint8_t> oversized_pad = {0xAA, 0xBB, 250, 4};
  EXPECT_TRUE(responder
                  .process(kDefaultContext, 1, 0,
                           forge_gcm_esp(1001, 1, oversized_pad))
                  .empty());
  EXPECT_EQ(responder.stats().malformed, 1u);
  EXPECT_EQ(responder.stats().auth_failures, 0u);  // tag was genuine

  // Non-monotonic pad content (RFC 4303 §2.4 wants 1,2,3,...).
  std::vector<std::uint8_t> bad_pad = {0xAA, 0xBB, 9, 9, 2, 4};
  EXPECT_TRUE(responder
                  .process(kDefaultContext, 1, 0,
                           forge_gcm_esp(1001, 2, bad_pad))
                  .empty());
  EXPECT_EQ(responder.stats().malformed, 2u);

  // Unknown next_header fails the same closed way.
  std::vector<std::uint8_t> bad_nh = {0xAA, 0xBB, 0, 41};
  EXPECT_TRUE(responder
                  .process(kDefaultContext, 1, 0,
                           forge_gcm_esp(1001, 3, bad_nh))
                  .empty());
  EXPECT_EQ(responder.stats().malformed, 3u);
  EXPECT_EQ(responder.inbound_sa(kDefaultContext)->malformed, 3u);
  // None of the failures mutated the replay window (trailer checks run
  // after the window update, so the window holds 1..3 — but no inner
  // frame ever escaped).
  EXPECT_EQ(responder.stats().decapsulated, 0u);
}

TEST(IpsecLifecycle, DescribeStatsReportsLifecycle) {
  NfConfig init = initiator_config();
  init["life_soft_packets"] = "2";
  IpsecEndpoint endpoint = make_endpoint(init);
  ASSERT_TRUE(
      endpoint.configure(kDefaultContext, initiator_rekey()).is_ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(
        endpoint.process(kDefaultContext, 0, 0, plaintext_frame(64, i))
            .size(),
        1u);
  }
  json::Value doc = endpoint.describe_stats(kDefaultContext);
  ASSERT_TRUE(doc.is_object());
  const json::Object& obj = doc.as_object();
  ASSERT_TRUE(obj.contains("endpoint"));
  EXPECT_EQ(obj.find("endpoint")->as_object().find("rekeys_completed")
                ->as_number(),
            1.0);
  ASSERT_TRUE(obj.contains("tunnel"));
  const json::Object& tunnel = obj.find("tunnel")->as_object();
  EXPECT_EQ(tunnel.find("out_sa")->as_object().find("spi")->as_number(),
            1003.0);
  ASSERT_TRUE(tunnel.contains("draining"));
  EXPECT_EQ(tunnel.find("draining")
                ->as_object()
                .find("sa")
                ->as_object()
                .find("state")
                ->as_string(),
            "draining");
}

}  // namespace
}  // namespace nnfv::nnf
