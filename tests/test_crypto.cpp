// Crypto tests against published vectors (FIPS 197, RFC 4231, NIST SHA)
// plus property-style roundtrips for the cipher modes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nnfv::crypto {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  EXPECT_TRUE(util::hex_decode(hex, out));
  return out;
}

std::vector<std::uint8_t> bytes_of(const std::string& text) {
  return {text.begin(), text.end()};
}

template <typename Array>
std::string hex_of(const Array& digest) {
  return util::hex_encode({digest.data(), digest.size()});
}

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 / NIST CAVS vectors)
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(Sha256::digest(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex_of(Sha256::digest(bytes_of(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hash;
  const std::vector<std::uint8_t> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hash.update(chunk);
  EXPECT_EQ(hex_of(hash.final()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string text = "The quick brown fox jumps over the lazy dog";
  Sha256 incremental;
  for (char c : text) {
    const std::uint8_t byte = static_cast<std::uint8_t>(c);
    incremental.update({&byte, 1});
  }
  EXPECT_EQ(hex_of(incremental.final()),
            hex_of(Sha256::digest(bytes_of(text))));
}

TEST(Sha256, BoundaryLengths) {
  // 55/56/64 bytes straddle the padding boundary.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::vector<std::uint8_t> data(n, 0x5A);
    Sha256 split;
    split.update({data.data(), n / 2});
    split.update({data.data() + n / 2, n - n / 2});
    EXPECT_EQ(hex_of(split.final()), hex_of(Sha256::digest(data)))
        << "length " << n;
  }
}

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

TEST(Sha1, EmptyString) {
  EXPECT_EQ(hex_of(Sha1::digest({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex_of(Sha1::digest(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex_of(Sha1::digest(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

// ---------------------------------------------------------------------------
// HMAC (RFC 4231 for SHA-256, RFC 2202 for SHA-1)
// ---------------------------------------------------------------------------

TEST(HmacSha256, Rfc4231Case1) {
  const auto key = std::vector<std::uint8_t>(20, 0x0b);
  EXPECT_EQ(hex_of(HmacSha256::mac(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hex_of(HmacSha256::mac(bytes_of("Jefe"),
                                   bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3FiftyAa) {
  const auto key = std::vector<std::uint8_t>(20, 0xaa);
  const auto data = std::vector<std::uint8_t>(50, 0xdd);
  EXPECT_EQ(hex_of(HmacSha256::mac(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  // 131-byte key forces the hash-the-key path.
  const auto key = std::vector<std::uint8_t>(131, 0xaa);
  EXPECT_EQ(hex_of(HmacSha256::mac(
                key, bytes_of("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha1, Rfc2202Case1) {
  const auto key = std::vector<std::uint8_t>(20, 0x0b);
  EXPECT_EQ(hex_of(HmacSha1::mac(key, bytes_of("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(Hmac, IncrementalMatchesOneShot) {
  const auto key = bytes_of("secret-key");
  const auto data = bytes_of("some message to authenticate");
  HmacSha256 incremental(key);
  incremental.update({data.data(), 5});
  incremental.update({data.data() + 5, data.size() - 5});
  EXPECT_EQ(hex_of(incremental.final()), hex_of(HmacSha256::mac(key, data)));
}

TEST(ConstantTimeEqual, Basics) {
  const auto a = bytes_of("0123456789abcdef");
  auto b = a;
  EXPECT_TRUE(constant_time_equal(a, b));
  b[15] ^= 1;
  EXPECT_FALSE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, {b.data(), 15}));
}

// ---------------------------------------------------------------------------
// AES (FIPS 197 appendix vectors)
// ---------------------------------------------------------------------------

TEST(Aes, Fips197Aes128) {
  auto aes = Aes::create(from_hex("000102030405060708090a0b0c0d0e0f"));
  ASSERT_TRUE(aes.is_ok());
  EXPECT_EQ(aes->rounds(), 10);
  const auto plain = from_hex("00112233445566778899aabbccddeeff");
  std::uint8_t cipher[16];
  aes->encrypt_block(plain.data(), cipher);
  EXPECT_EQ(util::hex_encode({cipher, 16}),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  std::uint8_t back[16];
  aes->decrypt_block(cipher, back);
  EXPECT_EQ(util::hex_encode({back, 16}), util::hex_encode(plain));
}

TEST(Aes, Fips197Aes192) {
  auto aes = Aes::create(
      from_hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  ASSERT_TRUE(aes.is_ok());
  EXPECT_EQ(aes->rounds(), 12);
  const auto plain = from_hex("00112233445566778899aabbccddeeff");
  std::uint8_t cipher[16];
  aes->encrypt_block(plain.data(), cipher);
  EXPECT_EQ(util::hex_encode({cipher, 16}),
            "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  auto aes = Aes::create(from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  ASSERT_TRUE(aes.is_ok());
  EXPECT_EQ(aes->rounds(), 14);
  const auto plain = from_hex("00112233445566778899aabbccddeeff");
  std::uint8_t cipher[16];
  aes->encrypt_block(plain.data(), cipher);
  EXPECT_EQ(util::hex_encode({cipher, 16}),
            "8ea2b7ca516745bfeafc49904b496089");
}

// NIST CAVP (AESAVS) known-answer vectors guarding the T-table rewrite.

TEST(Aes, CavpGfSboxAes128) {
  auto aes = Aes::create(std::vector<std::uint8_t>(16, 0));
  ASSERT_TRUE(aes.is_ok());
  const auto plain = from_hex("f34481ec3cc627bacd5dc3fb08f273e6");
  std::uint8_t cipher[16];
  aes->encrypt_block(plain.data(), cipher);
  EXPECT_EQ(util::hex_encode({cipher, 16}),
            "0336763e966d92595a567cc9ce537f5e");
  std::uint8_t back[16];
  aes->decrypt_block(cipher, back);
  EXPECT_EQ(util::hex_encode({back, 16}), util::hex_encode(plain));
}

TEST(Aes, CavpGfSboxAes256) {
  auto aes = Aes::create(std::vector<std::uint8_t>(32, 0));
  ASSERT_TRUE(aes.is_ok());
  const auto plain = from_hex("014730f80ac625fe84f026c60bfd547d");
  std::uint8_t cipher[16];
  aes->encrypt_block(plain.data(), cipher);
  EXPECT_EQ(util::hex_encode({cipher, 16}),
            "5c9d844ed46f9885085e5d6a4f94c7d7");
}

TEST(Aes, Fips197DecryptAllKeySizes) {
  // The equivalent-inverse-cipher schedule must invert the FIPS 197
  // appendix C ciphertexts for every key length.
  const struct {
    std::string key;
    std::string cipher;
  } cases[] = {
      {"000102030405060708090a0b0c0d0e0f",
       "69c4e0d86a7b0430d8cdb78070b4c55a"},
      {"000102030405060708090a0b0c0d0e0f1011121314151617",
       "dda97ca4864cdfe06eaf70a0ec0d7191"},
      {"000102030405060708090a0b0c0d0e0f"
       "101112131415161718191a1b1c1d1e1f",
       "8ea2b7ca516745bfeafc49904b496089"},
  };
  for (const auto& c : cases) {
    auto aes = Aes::create(from_hex(c.key));
    ASSERT_TRUE(aes.is_ok());
    const auto cipher = from_hex(c.cipher);
    std::uint8_t back[16];
    aes->decrypt_block(cipher.data(), back);
    EXPECT_EQ(util::hex_encode({back, 16}),
              "00112233445566778899aabbccddeeff");
  }
}

TEST(Aes, RandomRoundTripsAllKeySizes) {
  util::Rng rng(7);
  for (std::size_t key_len : {16u, 24u, 32u}) {
    for (int i = 0; i < 50; ++i) {
      auto aes = Aes::create(rng.bytes(key_len));
      ASSERT_TRUE(aes.is_ok());
      const auto plain = rng.bytes(16);
      std::uint8_t cipher[16], back[16];
      aes->encrypt_block(plain.data(), cipher);
      aes->decrypt_block(cipher, back);
      EXPECT_EQ(util::hex_encode({back, 16}), util::hex_encode(plain));
    }
  }
}

TEST(Aes, Sp80038aCbcEncrypt) {
  // NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt), first two blocks.
  auto aes = Aes::create(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  ASSERT_TRUE(aes.is_ok());
  auto out = aes_cbc_encrypt_raw(
      aes.value(), from_hex("000102030405060708090a0b0c0d0e0f"),
      from_hex("6bc1bee22e409f96e93d7e117393172a"
               "ae2d8a571e03ac9c9eb76fac45af8e51"));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(util::hex_encode({out->data(), out->size()}),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_FALSE(Aes::create(std::vector<std::uint8_t>(15)).is_ok());
  EXPECT_FALSE(Aes::create(std::vector<std::uint8_t>(17)).is_ok());
  EXPECT_FALSE(Aes::create(std::vector<std::uint8_t>(0)).is_ok());
  EXPECT_TRUE(Aes::create(std::vector<std::uint8_t>(24)).is_ok());
}

// ---------------------------------------------------------------------------
// Cipher modes
// ---------------------------------------------------------------------------

TEST(AesCbc, Rfc3602Vector1) {
  // RFC 3602 case 1: single block.
  auto aes = Aes::create(from_hex("06a9214036b8a15b512e03d534120006"));
  ASSERT_TRUE(aes.is_ok());
  const auto iv = from_hex("3dafba429d9eb430b422da802c9fac41");
  const auto plain = bytes_of("Single block msg");
  auto cipher = aes_cbc_encrypt_raw(*aes, iv, plain);
  ASSERT_TRUE(cipher.is_ok());
  EXPECT_EQ(util::hex_encode(*cipher), "e353779c1079aeb82708942dbe77181a");
}

class CbcRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CbcRoundTrip, PaddedEncryptDecryptIsIdentity) {
  util::Rng rng(GetParam() + 1);
  auto aes = Aes::create(rng.bytes(16));
  ASSERT_TRUE(aes.is_ok());
  const auto iv = rng.bytes(16);
  const auto plain = rng.bytes(GetParam());
  auto cipher = aes_cbc_encrypt(*aes, iv, plain);
  ASSERT_TRUE(cipher.is_ok());
  EXPECT_EQ(cipher->size() % 16, 0u);
  EXPECT_GT(cipher->size(), plain.size());  // always at least 1 pad byte
  auto back = aes_cbc_decrypt(*aes, iv, *cipher);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, plain);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CbcRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 100,
                                           1000, 1450));

TEST(AesCbc, DecryptRejectsCorruptPadding) {
  util::Rng rng(3);
  auto aes = Aes::create(rng.bytes(16));
  const auto iv = rng.bytes(16);
  auto cipher = aes_cbc_encrypt(*aes, iv, rng.bytes(40));
  ASSERT_TRUE(cipher.is_ok());
  // Corrupt the last block (padding lives there).
  cipher->back() ^= 0xFF;
  auto back = aes_cbc_decrypt(*aes, iv, *cipher);
  // Either bad padding or (rarely) garbage that still parses — with this
  // seed it must fail.
  EXPECT_FALSE(back.is_ok());
}

TEST(AesCbc, RejectsBadInputs) {
  util::Rng rng(4);
  auto aes = Aes::create(rng.bytes(16));
  const auto iv15 = rng.bytes(15);
  EXPECT_FALSE(aes_cbc_encrypt(*aes, iv15, rng.bytes(16)).is_ok());
  const auto iv = rng.bytes(16);
  EXPECT_FALSE(aes_cbc_decrypt(*aes, iv, rng.bytes(15)).is_ok());
  EXPECT_FALSE(aes_cbc_decrypt(*aes, iv, {}).is_ok());
  EXPECT_FALSE(aes_cbc_encrypt_raw(*aes, iv, rng.bytes(17)).is_ok());
}

class CtrRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CtrRoundTrip, CryptTwiceIsIdentity) {
  util::Rng rng(GetParam() + 99);
  auto aes = Aes::create(rng.bytes(16));
  ASSERT_TRUE(aes.is_ok());
  const auto counter = rng.bytes(16);
  const auto plain = rng.bytes(GetParam());
  auto cipher = aes_ctr_crypt(*aes, counter, plain);
  ASSERT_TRUE(cipher.is_ok());
  EXPECT_EQ(cipher->size(), plain.size());
  auto back = aes_ctr_crypt(*aes, counter, *cipher);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, plain);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CtrRoundTrip,
                         ::testing::Values(0, 1, 16, 17, 333, 1450));

TEST(AesCtr, CounterIncrementCrossesBlockBoundary) {
  // A counter of all-FF must wrap without corrupting the stream:
  // encrypting 2 blocks equals encrypting each block with its counter.
  util::Rng rng(5);
  auto aes = Aes::create(rng.bytes(16));
  std::vector<std::uint8_t> counter(16, 0xFF);
  const auto plain = rng.bytes(32);
  auto whole = aes_ctr_crypt(*aes, counter, plain);
  ASSERT_TRUE(whole.is_ok());

  auto first = aes_ctr_crypt(*aes, counter, {plain.data(), 16});
  std::vector<std::uint8_t> counter2(16, 0x00);  // FF..FF + 1 wraps to zero
  auto second = aes_ctr_crypt(*aes, counter2, {plain.data() + 16, 16});
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  std::vector<std::uint8_t> stitched = *first;
  stitched.insert(stitched.end(), second->begin(), second->end());
  EXPECT_EQ(*whole, stitched);
}

TEST(AesCbcRaw, RoundTripAndChaining) {
  util::Rng rng(6);
  auto aes = Aes::create(rng.bytes(16));
  const auto iv = rng.bytes(16);
  const auto plain = rng.bytes(64);
  auto cipher = aes_cbc_encrypt_raw(*aes, iv, plain);
  ASSERT_TRUE(cipher.is_ok());
  EXPECT_EQ(cipher->size(), plain.size());
  auto back = aes_cbc_decrypt_raw(*aes, iv, *cipher);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(*back, plain);

  // CBC property: flipping an IV bit flips the same first-block plaintext
  // bit on decryption.
  auto iv2 = iv;
  iv2[0] ^= 0x80;
  auto tampered = aes_cbc_decrypt_raw(*aes, iv2, *cipher);
  ASSERT_TRUE(tampered.is_ok());
  EXPECT_EQ((*tampered)[0], plain[0] ^ 0x80);
  EXPECT_TRUE(std::equal(tampered->begin() + 16, tampered->end(),
                         plain.begin() + 16));
}

}  // namespace
}  // namespace nnfv::crypto
