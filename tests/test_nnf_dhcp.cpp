// DHCP server NF tests: wire-format parsing, the DORA handshake, lease
// lifecycle (stickiness, expiry, release, NAK), pool exhaustion and
// per-context isolation.
#include <gtest/gtest.h>

#include "nnf/dhcp.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"
#include "util/byteorder.hpp"

namespace nnfv::nnf {
namespace {

constexpr std::size_t kBootpFixed = 236;

/// Builds a minimal client DHCP message as a UDP frame to port 67.
packet::PacketBuffer client_message(std::uint8_t type,
                                    const packet::MacAddress& mac,
                                    std::uint32_t xid,
                                    std::optional<packet::Ipv4Address>
                                        requested = {},
                                    std::optional<packet::Ipv4Address>
                                        server_id = {},
                                    packet::Ipv4Address ciaddr = {}) {
  std::vector<std::uint8_t> payload(kBootpFixed + 4 + 24, 0);
  payload[0] = 1;  // BOOTREQUEST
  payload[1] = 1;  // Ethernet
  payload[2] = 6;
  util::store_be32(payload.data() + 4, xid);
  util::store_be32(payload.data() + 12, ciaddr.value);
  std::copy(mac.bytes.begin(), mac.bytes.end(), payload.begin() + 28);
  util::store_be32(payload.data() + kBootpFixed, 0x63825363);
  std::size_t pos = kBootpFixed + 4;
  payload[pos++] = 53;  // message type
  payload[pos++] = 1;
  payload[pos++] = type;
  if (requested.has_value()) {
    payload[pos++] = 50;
    payload[pos++] = 4;
    util::store_be32(payload.data() + pos, requested->value);
    pos += 4;
  }
  if (server_id.has_value()) {
    payload[pos++] = 54;
    payload[pos++] = 4;
    util::store_be32(payload.data() + pos, server_id->value);
    pos += 4;
  }
  payload[pos++] = 255;
  payload.resize(pos);

  packet::UdpFrameSpec spec;
  spec.eth_src = mac;
  spec.eth_dst = packet::MacAddress::broadcast();
  spec.ip_src = packet::Ipv4Address{0};
  spec.ip_dst = packet::Ipv4Address{0xFFFFFFFF};
  spec.src_port = 68;
  spec.dst_port = 67;
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

/// Extracts the DHCP payload from a server reply frame.
DhcpMessage reply_of(const packet::PacketBuffer& frame) {
  auto fields = packet::extract_flow_fields(frame.data());
  EXPECT_TRUE(fields.is_ok());
  const std::size_t off = fields->eth.wire_size() +
                          fields->ipv4->header_size() +
                          packet::kUdpHeaderSize;
  auto msg = parse_dhcp(frame.data().subspan(off));
  EXPECT_TRUE(msg.is_ok());
  return msg.value();
}

DhcpServer make_server() {
  DhcpServer server;
  EXPECT_TRUE(server
                  .configure(kDefaultContext,
                             {{"server_ip", "192.168.1.1"},
                              {"pool_start", "192.168.1.100"},
                              {"pool_end", "192.168.1.102"},
                              {"lease_time_ms", "60000"}})
                  .is_ok());
  return server;
}

TEST(DhcpParse, RejectsMalformed) {
  std::vector<std::uint8_t> tiny(100, 0);
  EXPECT_FALSE(parse_dhcp(tiny).is_ok());

  std::vector<std::uint8_t> no_magic(kBootpFixed + 8, 0);
  no_magic[0] = 1;
  no_magic[1] = 1;
  no_magic[2] = 6;
  EXPECT_FALSE(parse_dhcp(no_magic).is_ok());

  // Valid header but missing option 53.
  std::vector<std::uint8_t> no_type(kBootpFixed + 8, 0);
  no_type[0] = 1;
  no_type[1] = 1;
  no_type[2] = 6;
  util::store_be32(no_type.data() + kBootpFixed, 0x63825363);
  no_type[kBootpFixed + 4] = 255;
  EXPECT_FALSE(parse_dhcp(no_type).is_ok());

  // Option overrunning the buffer.
  std::vector<std::uint8_t> overrun(kBootpFixed + 7, 0);
  overrun[0] = 1;
  overrun[1] = 1;
  overrun[2] = 6;
  util::store_be32(overrun.data() + kBootpFixed, 0x63825363);
  overrun[kBootpFixed + 4] = 53;
  overrun[kBootpFixed + 5] = 10;  // length past the end
  EXPECT_FALSE(parse_dhcp(overrun).is_ok());
}

TEST(DhcpServer, DiscoverGetsOffer) {
  DhcpServer server = make_server();
  const auto mac = packet::MacAddress::from_id(0x31);
  auto outs = server.process(kDefaultContext, 0, 0,
                             client_message(kDhcpDiscover, mac, 0xABCD));
  ASSERT_EQ(outs.size(), 1u);
  const DhcpMessage offer = reply_of(outs[0].frame);
  EXPECT_EQ(offer.op, 2);
  EXPECT_EQ(offer.message_type, kDhcpOffer);
  EXPECT_EQ(offer.xid, 0xABCDu);
  EXPECT_EQ(offer.yiaddr.to_string(), "192.168.1.100");
  EXPECT_EQ(offer.server_id->to_string(), "192.168.1.1");
  EXPECT_EQ(offer.client_mac, mac);
}

TEST(DhcpServer, FullDoraHandshake) {
  DhcpServer server = make_server();
  const auto mac = packet::MacAddress::from_id(0x32);
  auto offers = server.process(kDefaultContext, 0, 0,
                               client_message(kDhcpDiscover, mac, 1));
  ASSERT_EQ(offers.size(), 1u);
  const packet::Ipv4Address offered = reply_of(offers[0].frame).yiaddr;

  auto acks = server.process(
      kDefaultContext, 0, sim::kSecond,
      client_message(kDhcpRequest, mac, 1, offered,
                     *packet::Ipv4Address::parse("192.168.1.1")));
  ASSERT_EQ(acks.size(), 1u);
  const DhcpMessage ack = reply_of(acks[0].frame);
  EXPECT_EQ(ack.message_type, kDhcpAck);
  EXPECT_EQ(ack.yiaddr, offered);
  EXPECT_EQ(server.active_leases(kDefaultContext, sim::kSecond), 1u);
  EXPECT_EQ(server.stats().acks, 1u);
}

TEST(DhcpServer, LeaseIsSticky) {
  DhcpServer server = make_server();
  const auto mac = packet::MacAddress::from_id(0x33);
  auto first = server.process(kDefaultContext, 0, 0,
                              client_message(kDhcpDiscover, mac, 1));
  auto again = server.process(kDefaultContext, 0, sim::kSecond,
                              client_message(kDhcpDiscover, mac, 2));
  EXPECT_EQ(reply_of(first[0].frame).yiaddr, reply_of(again[0].frame).yiaddr);
}

TEST(DhcpServer, DistinctClientsDistinctAddresses) {
  DhcpServer server = make_server();
  auto a = server.process(
      kDefaultContext, 0, 0,
      client_message(kDhcpDiscover, packet::MacAddress::from_id(1), 1));
  auto b = server.process(
      kDefaultContext, 0, 0,
      client_message(kDhcpDiscover, packet::MacAddress::from_id(2), 2));
  EXPECT_NE(reply_of(a[0].frame).yiaddr, reply_of(b[0].frame).yiaddr);
}

TEST(DhcpServer, PoolExhaustionGoesQuiet) {
  DhcpServer server = make_server();  // pool of 3
  for (std::uint32_t i = 0; i < 3; ++i) {
    auto outs = server.process(
        kDefaultContext, 0, 0,
        client_message(kDhcpDiscover, packet::MacAddress::from_id(10 + i),
                       i));
    EXPECT_EQ(outs.size(), 1u);
  }
  auto fourth = server.process(
      kDefaultContext, 0, 0,
      client_message(kDhcpDiscover, packet::MacAddress::from_id(99), 9));
  EXPECT_TRUE(fourth.empty());
  EXPECT_EQ(server.stats().pool_exhausted, 1u);
}

TEST(DhcpServer, RequestForForeignServerIgnored) {
  DhcpServer server = make_server();
  const auto mac = packet::MacAddress::from_id(0x40);
  auto outs = server.process(
      kDefaultContext, 0, 0,
      client_message(kDhcpRequest, mac, 1,
                     *packet::Ipv4Address::parse("192.168.1.100"),
                     *packet::Ipv4Address::parse("10.0.0.1")));  // other srv
  EXPECT_TRUE(outs.empty());
}

TEST(DhcpServer, RequestOutsidePoolNaked) {
  DhcpServer server = make_server();
  const auto mac = packet::MacAddress::from_id(0x41);
  auto outs = server.process(
      kDefaultContext, 0, 0,
      client_message(kDhcpRequest, mac, 1,
                     *packet::Ipv4Address::parse("10.9.9.9")));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(reply_of(outs[0].frame).message_type, kDhcpNak);
}

TEST(DhcpServer, RequestForTakenAddressNaked) {
  DhcpServer server = make_server();
  const auto owner = packet::MacAddress::from_id(0x50);
  const auto intruder = packet::MacAddress::from_id(0x51);
  const auto addr = *packet::Ipv4Address::parse("192.168.1.100");
  ASSERT_EQ(server
                .process(kDefaultContext, 0, 0,
                         client_message(kDhcpRequest, owner, 1, addr))
                .size(),
            1u);
  auto outs = server.process(kDefaultContext, 0, sim::kSecond,
                             client_message(kDhcpRequest, intruder, 2, addr));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(reply_of(outs[0].frame).message_type, kDhcpNak);
  EXPECT_EQ(server.stats().naks, 1u);
}

TEST(DhcpServer, LeasesExpire) {
  DhcpServer server = make_server();  // 60 s leases
  const auto mac = packet::MacAddress::from_id(0x60);
  const auto addr = *packet::Ipv4Address::parse("192.168.1.100");
  ASSERT_EQ(server
                .process(kDefaultContext, 0, 0,
                         client_message(kDhcpRequest, mac, 1, addr))
                .size(),
            1u);
  EXPECT_EQ(server.active_leases(kDefaultContext, 30 * sim::kSecond), 1u);
  EXPECT_EQ(server.active_leases(kDefaultContext, 120 * sim::kSecond), 0u);
  // After expiry another client can take the address.
  auto outs = server.process(
      kDefaultContext, 0, 120 * sim::kSecond,
      client_message(kDhcpRequest, packet::MacAddress::from_id(0x61), 2,
                     addr));
  EXPECT_EQ(reply_of(outs[0].frame).message_type, kDhcpAck);
}

TEST(DhcpServer, ReleaseFreesAddress) {
  DhcpServer server = make_server();
  const auto mac = packet::MacAddress::from_id(0x70);
  const auto addr = *packet::Ipv4Address::parse("192.168.1.100");
  ASSERT_EQ(server
                .process(kDefaultContext, 0, 0,
                         client_message(kDhcpRequest, mac, 1, addr))
                .size(),
            1u);
  auto release = server.process(
      kDefaultContext, 0, sim::kSecond,
      client_message(kDhcpRelease, mac, 2, std::nullopt, std::nullopt, addr));
  EXPECT_TRUE(release.empty());  // RELEASE is not acknowledged
  EXPECT_EQ(server.active_leases(kDefaultContext, sim::kSecond), 0u);
  EXPECT_EQ(server.stats().releases, 1u);
}

TEST(DhcpServer, ContextsHaveIndependentPools) {
  DhcpServer server = make_server();
  ASSERT_TRUE(server.add_context(1).is_ok());
  ASSERT_TRUE(server
                  .configure(1, {{"server_ip", "10.0.0.1"},
                                 {"pool_start", "10.0.0.100"},
                                 {"pool_end", "10.0.0.101"}})
                  .is_ok());
  const auto mac = packet::MacAddress::from_id(0x80);
  auto ctx0 = server.process(kDefaultContext, 0, 0,
                             client_message(kDhcpDiscover, mac, 1));
  auto ctx1 = server.process(1, 0, 0, client_message(kDhcpDiscover, mac, 2));
  EXPECT_EQ(reply_of(ctx0[0].frame).yiaddr.to_string(), "192.168.1.100");
  EXPECT_EQ(reply_of(ctx1[0].frame).yiaddr.to_string(), "10.0.0.100");
}

TEST(DhcpServer, IgnoresNonDhcpTraffic) {
  DhcpServer server = make_server();
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("1.1.1.1");
  spec.ip_dst = *packet::Ipv4Address::parse("2.2.2.2");
  spec.dst_port = 53;  // not DHCP
  EXPECT_TRUE(server
                  .process(kDefaultContext, 0, 0,
                           packet::build_udp_frame(spec))
                  .empty());
  EXPECT_EQ(server.stats().malformed, 0u);  // simply not consumed
}

TEST(DhcpServer, UnconfiguredStaysSilent) {
  DhcpServer server;
  const auto mac = packet::MacAddress::from_id(0x90);
  EXPECT_TRUE(server
                  .process(kDefaultContext, 0, 0,
                           client_message(kDhcpDiscover, mac, 1))
                  .empty());
}

TEST(DhcpServer, ConfigValidation) {
  DhcpServer server;
  EXPECT_FALSE(
      server.configure(kDefaultContext, {{"server_ip", "bad"}}).is_ok());
  EXPECT_FALSE(server
                   .configure(kDefaultContext,
                              {{"pool_start", "192.168.1.200"},
                               {"pool_end", "192.168.1.100"}})
                   .is_ok());
  EXPECT_FALSE(
      server.configure(kDefaultContext, {{"lease_time_ms", "0"}}).is_ok());
  EXPECT_FALSE(
      server.configure(kDefaultContext, {{"mystery", "1"}}).is_ok());
}

}  // namespace
}  // namespace nnfv::nnf
