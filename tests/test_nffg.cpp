// NF-FG model, JSON codec and validation tests.
#include <gtest/gtest.h>

#include "nffg/nffg.hpp"
#include "nffg/nffg_json.hpp"
#include "nffg/validate.hpp"

namespace nnfv::nffg {
namespace {

NfFg sample_graph() {
  NfFg graph;
  graph.id = "g1";
  graph.name = "customer chain";
  NfNode& fw = graph.add_nf("fw", "firewall");
  fw.config["policy"] = "accept";
  graph.add_nf("gw", "ipsec");
  graph.add_endpoint("lan", "eth0", 10);
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", endpoint_ref("lan"), nf_port("fw", 0), 10);
  graph.connect("r2", nf_port("fw", 1), nf_port("gw", 0), 10);
  graph.connect("r3", nf_port("gw", 1), endpoint_ref("wan"), 10);
  graph.connect("r4", endpoint_ref("wan"), nf_port("gw", 1), 10);
  graph.connect("r5", nf_port("gw", 0), nf_port("fw", 1), 10);
  graph.connect("r6", nf_port("fw", 0), endpoint_ref("lan"), 10);
  return graph;
}

// ---------------------------------------------------------------------------
// PortRef
// ---------------------------------------------------------------------------

TEST(PortRef, ParseAndFormat) {
  auto nf = PortRef::parse("vnf:fw:2");
  ASSERT_TRUE(nf.is_ok());
  EXPECT_EQ(nf->kind, PortRef::Kind::kNf);
  EXPECT_EQ(nf->id, "fw");
  EXPECT_EQ(nf->port, 2u);
  EXPECT_EQ(nf->to_string(), "vnf:fw:2");

  auto ep = PortRef::parse("endpoint:lan");
  ASSERT_TRUE(ep.is_ok());
  EXPECT_EQ(ep->kind, PortRef::Kind::kEndpoint);
  EXPECT_EQ(ep->to_string(), "endpoint:lan");
}

TEST(PortRef, ParseRejectsGarbage) {
  EXPECT_FALSE(PortRef::parse("").is_ok());
  EXPECT_FALSE(PortRef::parse("vnf:fw").is_ok());
  EXPECT_FALSE(PortRef::parse("vnf:fw:x").is_ok());
  EXPECT_FALSE(PortRef::parse("vnf::1").is_ok());
  EXPECT_FALSE(PortRef::parse("endpoint:").is_ok());
  EXPECT_FALSE(PortRef::parse("port:abc").is_ok());
  EXPECT_FALSE(PortRef::parse("vnf:fw:1:2").is_ok());
}

// ---------------------------------------------------------------------------
// Model helpers
// ---------------------------------------------------------------------------

TEST(NfFgModel, Lookups) {
  NfFg graph = sample_graph();
  EXPECT_NE(graph.find_nf("fw"), nullptr);
  EXPECT_EQ(graph.find_nf("fw")->functional_type, "firewall");
  EXPECT_EQ(graph.find_nf("nope"), nullptr);
  EXPECT_NE(graph.find_endpoint("lan"), nullptr);
  EXPECT_EQ(graph.find_endpoint("lan")->vlan.value_or(0), 10);
  EXPECT_EQ(graph.find_endpoint("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(Validate, AcceptsSampleGraph) {
  std::vector<std::string> warnings;
  EXPECT_TRUE(validate(sample_graph(), &warnings).is_ok());
  EXPECT_TRUE(warnings.empty());
}

TEST(Validate, RejectsEmptyGraphId) {
  NfFg graph = sample_graph();
  graph.id = "";
  EXPECT_FALSE(validate(graph).is_ok());
}

TEST(Validate, RejectsDuplicateNfIds) {
  NfFg graph = sample_graph();
  graph.add_nf("fw", "nat");
  EXPECT_FALSE(validate(graph).is_ok());
}

TEST(Validate, RejectsDuplicateEndpointAndRuleIds) {
  NfFg graph = sample_graph();
  graph.add_endpoint("lan", "eth2");
  EXPECT_FALSE(validate(graph).is_ok());

  NfFg graph2 = sample_graph();
  graph2.connect("r1", endpoint_ref("lan"), nf_port("fw", 0));
  EXPECT_FALSE(validate(graph2).is_ok());
}

TEST(Validate, RejectsUnknownReferences) {
  NfFg graph = sample_graph();
  graph.connect("rx", endpoint_ref("ghost"), nf_port("fw", 0));
  EXPECT_FALSE(validate(graph).is_ok());

  NfFg graph2 = sample_graph();
  graph2.connect("rx", nf_port("ghost", 0), endpoint_ref("lan"));
  EXPECT_FALSE(validate(graph2).is_ok());
}

TEST(Validate, RejectsOutOfRangePortIndex) {
  NfFg graph = sample_graph();
  graph.connect("rx", nf_port("fw", 5), endpoint_ref("lan"));
  EXPECT_FALSE(validate(graph).is_ok());
}

TEST(Validate, RejectsSelfLoopRule) {
  NfFg graph = sample_graph();
  graph.connect("rx", nf_port("fw", 0), nf_port("fw", 0));
  EXPECT_FALSE(validate(graph).is_ok());
}

TEST(Validate, RejectsVlanCollisionsOnInterface) {
  NfFg graph = sample_graph();
  graph.add_endpoint("lan2", "eth0", 10);  // same iface+vid as "lan"
  EXPECT_FALSE(validate(graph).is_ok());

  NfFg graph2 = sample_graph();
  graph2.add_endpoint("wan2", "eth1");  // second untagged on eth1
  EXPECT_FALSE(validate(graph2).is_ok());
}

TEST(Validate, RejectsBadVlanIds) {
  NfFg graph = sample_graph();
  graph.add_endpoint("x", "eth2", 0);
  EXPECT_FALSE(validate(graph).is_ok());
  NfFg graph2 = sample_graph();
  graph2.add_endpoint("x", "eth2", 4095);
  EXPECT_FALSE(validate(graph2).is_ok());
}

TEST(Validate, WarnsOnUnreferencedPorts) {
  NfFg graph = sample_graph();
  graph.add_nf("idle", "bridge");  // never wired
  std::vector<std::string> warnings;
  EXPECT_TRUE(validate(graph, &warnings).is_ok());
  EXPECT_EQ(warnings.size(), 2u);  // both ports of "idle"
}

TEST(Validate, RejectsZeroPortNf) {
  NfFg graph = sample_graph();
  NfNode& nf = graph.add_nf("x", "bridge");
  nf.num_ports = 0;
  EXPECT_FALSE(validate(graph).is_ok());
}

// ---------------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------------

constexpr const char* kSampleJson = R"({
  "forwarding-graph": {
    "id": "g7",
    "name": "ipsec cpe",
    "VNFs": [
      {"id": "vpn", "functional_type": "ipsec", "ports": 2,
       "backend": "native",
       "config": {"local_ip": "198.51.100.1", "spi_out": "77"}}
    ],
    "end-points": [
      {"id": "lan", "interface": "eth0", "vlan": 100},
      {"id": "wan", "interface": "eth1"}
    ],
    "flow-rules": [
      {"id": "in", "priority": 10,
       "match": {"port_in": "endpoint:lan", "ip_proto": 17,
                 "ip_dst": "10.0.0.0/8", "tp_dst": 5001},
       "action": {"output": "vnf:vpn:0"}},
      {"id": "out", "priority": 10,
       "match": {"port_in": "vnf:vpn:1"},
       "action": {"output": "endpoint:wan"}}
    ]
  }
})";

TEST(NffgJson, ParsesSampleDocument) {
  auto graph = from_json_text(kSampleJson);
  ASSERT_TRUE(graph.is_ok());
  EXPECT_EQ(graph->id, "g7");
  EXPECT_EQ(graph->name, "ipsec cpe");
  ASSERT_EQ(graph->nfs.size(), 1u);
  EXPECT_EQ(graph->nfs[0].functional_type, "ipsec");
  EXPECT_EQ(graph->nfs[0].backend_hint.value(), virt::BackendKind::kNative);
  EXPECT_EQ(graph->nfs[0].config.at("spi_out"), "77");
  ASSERT_EQ(graph->endpoints.size(), 2u);
  EXPECT_EQ(graph->endpoints[0].vlan.value_or(0), 100);
  EXPECT_FALSE(graph->endpoints[1].vlan.has_value());
  ASSERT_EQ(graph->rules.size(), 2u);
  const Rule& in = graph->rules[0];
  EXPECT_EQ(in.match.port_in.to_string(), "endpoint:lan");
  EXPECT_EQ(in.match.ip_proto.value(), 17);
  EXPECT_EQ(in.match.ip_dst->to_string(), "10.0.0.0");
  EXPECT_EQ(in.match.ip_dst_prefix, 8);
  EXPECT_EQ(in.match.tp_dst.value(), 5001);
  EXPECT_EQ(in.output.to_string(), "vnf:vpn:0");
}

TEST(NffgJson, RoundTripIsIdentity) {
  auto graph = from_json_text(kSampleJson);
  ASSERT_TRUE(graph.is_ok());
  auto again = from_json(to_json(graph.value()));
  ASSERT_TRUE(again.is_ok());
  // Compare the canonical serializations.
  EXPECT_EQ(to_json(graph.value()).dump(), to_json(again.value()).dump());
}

TEST(NffgJson, SampleGraphSurvivesRoundTrip) {
  NfFg graph = sample_graph();
  auto again = from_json(to_json(graph));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again->id, graph.id);
  EXPECT_EQ(again->nfs.size(), graph.nfs.size());
  EXPECT_EQ(again->rules.size(), graph.rules.size());
  EXPECT_EQ(again->nfs[0].config.at("policy"), "accept");
  EXPECT_TRUE(validate(again.value()).is_ok());
}

TEST(NffgJson, RejectsStructuralErrors) {
  EXPECT_FALSE(from_json_text("{}").is_ok());
  EXPECT_FALSE(from_json_text(R"({"forwarding-graph": 5})").is_ok());
  EXPECT_FALSE(from_json_text(R"({"forwarding-graph": {}})").is_ok());
  // VNF without functional_type.
  EXPECT_FALSE(from_json_text(
                   R"({"forwarding-graph":{"id":"g","VNFs":[{"id":"x"}]}})")
                   .is_ok());
  // Rule without action.
  EXPECT_FALSE(
      from_json_text(
          R"({"forwarding-graph":{"id":"g","flow-rules":[)"
          R"({"id":"r","match":{"port_in":"endpoint:e"}}]}})")
          .is_ok());
  // Bad backend name.
  EXPECT_FALSE(
      from_json_text(
          R"({"forwarding-graph":{"id":"g","VNFs":[)"
          R"({"id":"x","functional_type":"nat","backend":"xen"}]}})")
          .is_ok());
  // Bad port ref.
  EXPECT_FALSE(
      from_json_text(
          R"({"forwarding-graph":{"id":"g","flow-rules":[)"
          R"({"id":"r","match":{"port_in":"garbage"},)"
          R"("action":{"output":"endpoint:e"}}]}})")
          .is_ok());
  // VLAN out of range.
  EXPECT_FALSE(
      from_json_text(
          R"({"forwarding-graph":{"id":"g","end-points":[)"
          R"({"id":"e","interface":"eth0","vlan":5000}]}})")
          .is_ok());
}

TEST(NffgJson, ConfigValuesMustBeStrings) {
  EXPECT_FALSE(
      from_json_text(
          R"({"forwarding-graph":{"id":"g","VNFs":[)"
          R"({"id":"x","functional_type":"nat","config":{"n":5}}]}})")
          .is_ok());
}

TEST(NffgJson, MinimalGraphParses) {
  auto graph = from_json_text(R"({"forwarding-graph":{"id":"tiny"}})");
  ASSERT_TRUE(graph.is_ok());
  EXPECT_EQ(graph->id, "tiny");
  EXPECT_TRUE(graph->nfs.empty());
  EXPECT_TRUE(validate(graph.value()).is_ok());
}

}  // namespace
}  // namespace nnfv::nffg
