// Switch substrate tests: match semantics, actions, table priority, LSI
// forwarding and controller punting.
#include <gtest/gtest.h>

#include "packet/builder.hpp"
#include "switch/flow_table.hpp"
#include "switch/lsi.hpp"
#include "util/rng.hpp"

namespace nnfv::nfswitch {
namespace {

packet::PacketBuffer make_udp(const std::string& src_ip,
                              const std::string& dst_ip, std::uint16_t sport,
                              std::uint16_t dport,
                              std::optional<std::uint16_t> vlan = {}) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(0x11);
  spec.eth_dst = packet::MacAddress::from_id(0x22);
  spec.vlan = vlan;
  spec.ip_src = *packet::Ipv4Address::parse(src_ip);
  spec.ip_dst = *packet::Ipv4Address::parse(dst_ip);
  spec.src_port = sport;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(64, 0x55);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

FlowContext context_of(PortId port, const packet::PacketBuffer& frame) {
  auto fields = packet::extract_flow_fields(frame.data());
  EXPECT_TRUE(fields.is_ok());
  return FlowContext{port, fields.value()};
}

// ---------------------------------------------------------------------------
// FlowMatch
// ---------------------------------------------------------------------------

TEST(FlowMatch, EmptyMatchesEverything) {
  FlowMatch any;
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 10, 20);
  EXPECT_TRUE(any.matches(context_of(3, frame)));
  EXPECT_EQ(any.specified_fields(), 0);
  EXPECT_EQ(any.to_string(), "any");
}

TEST(FlowMatch, InPort) {
  FlowMatch match = match_in_port(5);
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 10, 20);
  EXPECT_TRUE(match.matches(context_of(5, frame)));
  EXPECT_FALSE(match.matches(context_of(6, frame)));
}

TEST(FlowMatch, VlanSemantics) {
  auto tagged = make_udp("1.1.1.1", "2.2.2.2", 10, 20, 100);
  auto untagged = make_udp("1.1.1.1", "2.2.2.2", 10, 20);

  FlowMatch want_vid;
  want_vid.vlan = 100;
  EXPECT_TRUE(want_vid.matches(context_of(1, tagged)));
  EXPECT_FALSE(want_vid.matches(context_of(1, untagged)));

  FlowMatch want_other;
  want_other.vlan = 101;
  EXPECT_FALSE(want_other.matches(context_of(1, tagged)));

  FlowMatch want_untagged;
  want_untagged.vlan = FlowMatch::kMatchUntagged;
  EXPECT_FALSE(want_untagged.matches(context_of(1, tagged)));
  EXPECT_TRUE(want_untagged.matches(context_of(1, untagged)));

  FlowMatch wildcard;  // no VLAN constraint
  EXPECT_TRUE(wildcard.matches(context_of(1, tagged)));
  EXPECT_TRUE(wildcard.matches(context_of(1, untagged)));
}

TEST(FlowMatch, IpPrefixes) {
  auto frame = make_udp("10.1.2.3", "192.168.7.9", 10, 20);
  FlowMatch match;
  match.ip_src = *packet::Ipv4Address::parse("10.0.0.0");
  match.ip_src_prefix = 8;
  EXPECT_TRUE(match.matches(context_of(1, frame)));
  match.ip_src_prefix = 16;  // 10.0/16 does not cover 10.1.2.3
  EXPECT_FALSE(match.matches(context_of(1, frame)));
  match.ip_src_prefix = 0;  // prefix 0 = any
  EXPECT_TRUE(match.matches(context_of(1, frame)));

  FlowMatch dst;
  dst.ip_dst = *packet::Ipv4Address::parse("192.168.7.9");
  EXPECT_TRUE(dst.matches(context_of(1, frame)));
  dst.ip_dst = *packet::Ipv4Address::parse("192.168.7.8");
  EXPECT_FALSE(dst.matches(context_of(1, frame)));
}

TEST(FlowMatch, TransportPorts) {
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 5001, 443);
  FlowMatch match;
  match.ip_proto = packet::kIpProtoUdp;
  match.tp_src = 5001;
  match.tp_dst = 443;
  EXPECT_TRUE(match.matches(context_of(1, frame)));
  match.tp_dst = 444;
  EXPECT_FALSE(match.matches(context_of(1, frame)));
}

TEST(FlowMatch, IpFieldsRequireIpPacket) {
  // An ARP-ish frame: ethertype != IPv4.
  std::vector<std::uint8_t> raw(64, 0);
  raw[12] = 0x08;
  raw[13] = 0x06;  // ARP
  auto fields = packet::extract_flow_fields(raw);
  ASSERT_TRUE(fields.is_ok());
  FlowContext ctx{1, fields.value()};
  FlowMatch ip_match;
  ip_match.ip_proto = packet::kIpProtoUdp;
  EXPECT_FALSE(ip_match.matches(ctx));
  FlowMatch eth_match;
  eth_match.eth_type = 0x0806;
  EXPECT_TRUE(eth_match.matches(ctx));
}

TEST(FlowMatch, MacAddresses) {
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  FlowMatch match;
  match.eth_src = packet::MacAddress::from_id(0x11);
  match.eth_dst = packet::MacAddress::from_id(0x22);
  EXPECT_TRUE(match.matches(context_of(1, frame)));
  match.eth_dst = packet::MacAddress::from_id(0x33);
  EXPECT_FALSE(match.matches(context_of(1, frame)));
}

// ---------------------------------------------------------------------------
// Actions
// ---------------------------------------------------------------------------

TEST(Actions, OutputCollectsPorts) {
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  auto outcome = apply_actions(
      {FlowAction::output(3), FlowAction::output(7)}, frame);
  EXPECT_EQ(outcome.outputs, (std::vector<PortId>{3, 7}));
  EXPECT_FALSE(outcome.dropped);
  EXPECT_FALSE(outcome.to_controller);
}

TEST(Actions, DropTerminates) {
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  auto outcome = apply_actions(
      {FlowAction::drop(), FlowAction::output(3)}, frame);
  EXPECT_TRUE(outcome.dropped);
  EXPECT_TRUE(outcome.outputs.empty());
}

TEST(Actions, VlanPushPop) {
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  const std::size_t base = frame.size();
  auto outcome = apply_actions({FlowAction::push_vlan(99)}, frame);
  EXPECT_EQ(frame.size(), base + packet::kVlanTagSize);
  EXPECT_EQ(packet::parse_ethernet(frame.data())->vlan.value_or(0), 99);
  outcome = apply_actions({FlowAction::pop_vlan()}, frame);
  EXPECT_EQ(frame.size(), base);
  (void)outcome;
}

TEST(Actions, MacRewrite) {
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  const auto new_src = packet::MacAddress::from_id(0xAA);
  const auto new_dst = packet::MacAddress::from_id(0xBB);
  apply_actions({FlowAction::set_eth_src(new_src),
                 FlowAction::set_eth_dst(new_dst)},
                frame);
  auto eth = packet::parse_ethernet(frame.data());
  EXPECT_EQ(eth->src, new_src);
  EXPECT_EQ(eth->dst, new_dst);
}

TEST(Actions, ControllerFlagSet) {
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  auto outcome = apply_actions(
      {FlowAction::to_controller(), FlowAction::output(1)}, frame);
  EXPECT_TRUE(outcome.to_controller);
  EXPECT_EQ(outcome.outputs.size(), 1u);
}

// ---------------------------------------------------------------------------
// FlowTable
// ---------------------------------------------------------------------------

TEST(FlowTable, HighestPriorityWins) {
  FlowTable table;
  table.add(10, FlowMatch{}, {FlowAction::output(1)});
  const FlowEntryId high =
      table.add(20, FlowMatch{}, {FlowAction::output(2)});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  FlowEntry* hit = table.lookup(context_of(0, frame), frame.size());
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->id, high);
}

TEST(FlowTable, EqualPriorityFirstAddedWins) {
  FlowTable table;
  const FlowEntryId first = table.add(5, FlowMatch{}, {});
  table.add(5, FlowMatch{}, {});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, first);
}

TEST(FlowTable, FallsThroughToLessSpecific) {
  FlowTable table;
  FlowMatch specific;
  specific.tp_dst = 443;
  const FlowEntryId https = table.add(20, specific, {FlowAction::drop()});
  const FlowEntryId any = table.add(10, FlowMatch{}, {FlowAction::output(1)});

  auto https_frame = make_udp("1.1.1.1", "2.2.2.2", 1, 443);
  auto other_frame = make_udp("1.1.1.1", "2.2.2.2", 1, 80);
  EXPECT_EQ(table.lookup(context_of(0, https_frame), 1)->id, https);
  EXPECT_EQ(table.lookup(context_of(0, other_frame), 1)->id, any);
}

TEST(FlowTable, StatsAccumulate) {
  FlowTable table;
  const FlowEntryId id = table.add(1, FlowMatch{}, {});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  table.lookup(context_of(0, frame), 100);
  table.lookup(context_of(0, frame), 50);
  const FlowEntry& entry = *table.entries().front();
  EXPECT_EQ(entry.id, id);
  EXPECT_EQ(entry.stats.packets, 2u);
  EXPECT_EQ(entry.stats.bytes, 150u);
}

TEST(FlowTable, MissCounting) {
  FlowTable table;
  FlowMatch never;
  never.in_port = 99;
  table.add(1, never, {});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  EXPECT_EQ(table.lookup(context_of(0, frame), 1), nullptr);
  EXPECT_EQ(table.misses(), 1u);
  EXPECT_EQ(table.peek(context_of(0, frame)), nullptr);
}

TEST(FlowTable, RemoveByIdAndCookie) {
  FlowTable table;
  const FlowEntryId a = table.add(1, FlowMatch{}, {}, /*cookie=*/7);
  table.add(2, FlowMatch{}, {}, 7);
  table.add(3, FlowMatch{}, {}, 8);
  EXPECT_TRUE(table.remove(a).is_ok());
  EXPECT_FALSE(table.remove(a).is_ok());  // already gone
  EXPECT_EQ(table.remove_by_cookie(7), 1u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.entries().front()->cookie, 8u);
}

TEST(FlowTable, DumpContainsRules) {
  FlowTable table;
  FlowMatch match;
  match.in_port = 4;
  table.add(9, match, {FlowAction::output(2)});
  const std::string dump = table.dump();
  EXPECT_NE(dump.find("prio=9"), std::string::npos);
  EXPECT_NE(dump.find("in_port=4"), std::string::npos);
  EXPECT_NE(dump.find("output:2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// LSI
// ---------------------------------------------------------------------------

class CapturingController : public FlowController {
 public:
  void on_packet_in(Lsi& lsi, PortId in_port,
                    const packet::PacketBuffer& frame) override {
    ++packet_ins;
    last_port = in_port;
    last_size = frame.size();
    (void)lsi;
  }
  int packet_ins = 0;
  PortId last_port = kInvalidPort;
  std::size_t last_size = 0;
};

TEST(Lsi, PortManagement) {
  Lsi lsi(1, "LSI-test");
  auto a = lsi.add_port("eth0");
  ASSERT_TRUE(a.is_ok());
  EXPECT_FALSE(lsi.add_port("eth0").is_ok());  // duplicate name
  auto b = lsi.add_port("eth1");
  EXPECT_NE(a.value(), b.value());
  EXPECT_TRUE(lsi.has_port(a.value()));
  EXPECT_EQ(lsi.port_by_name("eth1").value(), b.value());
  EXPECT_FALSE(lsi.port_by_name("nope").is_ok());
  EXPECT_EQ(lsi.ports().size(), 2u);
  EXPECT_TRUE(lsi.remove_port(a.value()).is_ok());
  EXPECT_FALSE(lsi.has_port(a.value()));
  EXPECT_FALSE(lsi.remove_port(a.value()).is_ok());
}

TEST(Lsi, ForwardsPerFlowTable) {
  Lsi lsi(1, "LSI-test");
  const PortId in = lsi.add_port("in").value();
  const PortId out = lsi.add_port("out").value();

  std::vector<packet::PacketBuffer> received;
  (void)lsi.set_port_peer(out, [&](packet::PacketBuffer&& frame) {
    received.push_back(std::move(frame));
  });
  lsi.flow_table().add(1, match_in_port(in), {FlowAction::output(out)});

  lsi.receive(in, make_udp("1.1.1.1", "2.2.2.2", 1, 2));
  ASSERT_EQ(received.size(), 1u);
  const PortStats* in_stats = lsi.port_stats(in);
  const PortStats* out_stats = lsi.port_stats(out);
  EXPECT_EQ(in_stats->rx_packets, 1u);
  EXPECT_EQ(out_stats->tx_packets, 1u);
  EXPECT_EQ(lsi.processed_packets(), 1u);
}

TEST(Lsi, TableMissGoesToController) {
  Lsi lsi(1, "LSI-test");
  const PortId in = lsi.add_port("in").value();
  CapturingController controller;
  lsi.set_controller(&controller);
  lsi.receive(in, make_udp("1.1.1.1", "2.2.2.2", 1, 2));
  EXPECT_EQ(controller.packet_ins, 1);
  EXPECT_EQ(controller.last_port, in);
  EXPECT_GT(controller.last_size, 0u);
}

TEST(Lsi, ReplicatesToMultipleOutputs) {
  Lsi lsi(1, "LSI-test");
  const PortId in = lsi.add_port("in").value();
  const PortId out1 = lsi.add_port("out1").value();
  const PortId out2 = lsi.add_port("out2").value();
  int count1 = 0;
  int count2 = 0;
  (void)lsi.set_port_peer(out1,
                          [&](packet::PacketBuffer&&) { ++count1; });
  (void)lsi.set_port_peer(out2,
                          [&](packet::PacketBuffer&&) { ++count2; });
  lsi.flow_table().add(
      1, match_in_port(in),
      {FlowAction::output(out1), FlowAction::output(out2)});
  lsi.receive(in, make_udp("1.1.1.1", "2.2.2.2", 1, 2));
  EXPECT_EQ(count1, 1);
  EXPECT_EQ(count2, 1);
}

TEST(Lsi, TxWithoutPeerCounted) {
  Lsi lsi(1, "LSI-test");
  const PortId in = lsi.add_port("in").value();
  const PortId out = lsi.add_port("out").value();
  lsi.flow_table().add(1, match_in_port(in), {FlowAction::output(out)});
  lsi.receive(in, make_udp("1.1.1.1", "2.2.2.2", 1, 2));
  EXPECT_EQ(lsi.port_stats(out)->tx_no_peer, 1u);
}

TEST(Lsi, VlanSteeringPipeline) {
  // LSI-0-style classification: tagged traffic in, pop, forward; and the
  // reverse path re-tags.
  Lsi lsi(0, "LSI-0");
  const PortId phys = lsi.add_port("eth0").value();
  const PortId vlink = lsi.add_port("vl:g1").value();

  packet::PacketBuffer forwarded;
  bool got = false;
  (void)lsi.set_port_peer(vlink, [&](packet::PacketBuffer&& frame) {
    forwarded = std::move(frame);
    got = true;
  });

  FlowMatch tagged = match_port_vlan(phys, 10);
  lsi.flow_table().add(100, tagged,
                       {FlowAction::pop_vlan(), FlowAction::output(vlink)});

  lsi.receive(phys, make_udp("1.1.1.1", "2.2.2.2", 1, 2, /*vlan=*/10));
  ASSERT_TRUE(got);
  EXPECT_FALSE(packet::parse_ethernet(forwarded.data())->vlan.has_value());
}

TEST(Lsi, ScalesToManyRules) {
  Lsi lsi(1, "LSI-big");
  const PortId in = lsi.add_port("in").value();
  const PortId out = lsi.add_port("out").value();
  int received = 0;
  (void)lsi.set_port_peer(out, [&](packet::PacketBuffer&&) { ++received; });
  // 1000 specific rules + 1 catch-all.
  for (int i = 0; i < 1000; ++i) {
    FlowMatch match;
    match.in_port = in;
    match.tp_dst = static_cast<std::uint16_t>(10000 + i);
    lsi.flow_table().add(10, match, {FlowAction::output(out)});
  }
  lsi.flow_table().add(1, match_in_port(in), {FlowAction::drop()});
  lsi.receive(in, make_udp("1.1.1.1", "2.2.2.2", 1, 10500));
  EXPECT_EQ(received, 1);
  lsi.receive(in, make_udp("1.1.1.1", "2.2.2.2", 1, 99));
  EXPECT_EQ(received, 1);  // dropped by catch-all
}

// ---------------------------------------------------------------------------
// Tiered classifier semantics: the tuple-space + microflow-cache rewrite
// must be observationally identical to the old linear scan.
// ---------------------------------------------------------------------------

TEST(FlowClassifier, EqualPriorityTieBreakAcrossMatchShapes) {
  // Two entries of equal priority in *different* tuple-space groups (one
  // matches on tp_dst, one on ip_src): the earliest-added must win even
  // though the groups are probed independently.
  FlowTable table;
  FlowMatch by_port;
  by_port.tp_dst = 2000;
  FlowMatch by_ip;
  by_ip.ip_src = *packet::Ipv4Address::parse("1.1.1.1");
  const FlowEntryId first = table.add(10, by_port, {});
  const FlowEntryId second = table.add(10, by_ip, {});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1000, 2000);  // matches both
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, first);
  EXPECT_TRUE(table.remove(first).is_ok());
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, second);
}

TEST(FlowClassifier, VlanUntaggedVsWildcard) {
  FlowTable table;
  FlowMatch untagged_only;
  untagged_only.vlan = FlowMatch::kMatchUntagged;
  FlowMatch tagged_100;
  tagged_100.vlan = 100;
  FlowMatch wildcard;  // matches tagged and untagged alike
  const FlowEntryId u = table.add(20, untagged_only, {});
  const FlowEntryId t = table.add(20, tagged_100, {});
  const FlowEntryId w = table.add(10, wildcard, {});

  auto plain = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  auto tagged = make_udp("1.1.1.1", "2.2.2.2", 1, 2, 100);
  auto other_vid = make_udp("1.1.1.1", "2.2.2.2", 1, 2, 101);
  EXPECT_EQ(table.lookup(context_of(0, plain), 1)->id, u);
  EXPECT_EQ(table.lookup(context_of(0, tagged), 1)->id, t);
  EXPECT_EQ(table.lookup(context_of(0, other_vid), 1)->id, w);
}

TEST(FlowClassifier, IpPrefixGroupsMatchCorrectly) {
  FlowTable table;
  FlowMatch subnet;
  subnet.ip_dst = *packet::Ipv4Address::parse("10.1.0.0");
  subnet.ip_dst_prefix = 16;
  FlowMatch host;
  host.ip_dst = *packet::Ipv4Address::parse("10.1.2.3");
  const FlowEntryId s = table.add(10, subnet, {});
  const FlowEntryId h = table.add(20, host, {});

  auto exact = make_udp("9.9.9.9", "10.1.2.3", 1, 2);
  auto inside = make_udp("9.9.9.9", "10.1.9.9", 1, 2);
  auto outside = make_udp("9.9.9.9", "10.2.0.1", 1, 2);
  EXPECT_EQ(table.lookup(context_of(0, exact), 1)->id, h);
  EXPECT_EQ(table.lookup(context_of(0, inside), 1)->id, s);
  EXPECT_EQ(table.lookup(context_of(0, outside), 1), nullptr);
}

TEST(FlowClassifier, ZeroPrefixStillRequiresIpv4) {
  // ip_src with /0 matches any address — but only on IPv4 packets.
  FlowTable table;
  FlowMatch any_ip;
  any_ip.ip_src = *packet::Ipv4Address::parse("0.0.0.0");
  any_ip.ip_src_prefix = 0;
  table.add(10, any_ip, {});

  auto ip_frame = make_udp("1.2.3.4", "5.6.7.8", 1, 2);
  EXPECT_NE(table.lookup(context_of(0, ip_frame), 1), nullptr);

  packet::PacketBuffer arp = packet::PacketBuffer::copy_of(std::vector<std::uint8_t>(64, 0));
  auto eth = packet::parse_ethernet(arp.data());
  ASSERT_TRUE(eth.is_ok());  // zeroed frame parses as untagged ethertype 0
  EXPECT_EQ(table.lookup(context_of(0, arp), 1), nullptr);
}

TEST(FlowClassifier, CacheInvalidationAfterAdd) {
  FlowTable table;
  const FlowEntryId low = table.add(10, FlowMatch{}, {});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  // Warm the microflow cache.
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, low);
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, low);
  // A higher-priority entry added later must beat the cached result.
  const FlowEntryId high = table.add(20, FlowMatch{}, {});
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, high);
}

TEST(FlowClassifier, CacheInvalidationAfterRemove) {
  FlowTable table;
  const FlowEntryId high = table.add(20, FlowMatch{}, {});
  const FlowEntryId low = table.add(10, FlowMatch{}, {});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, high);
  EXPECT_TRUE(table.remove(high).is_ok());
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, low);
}

TEST(FlowClassifier, CacheInvalidationAfterRemoveByCookie) {
  FlowTable table;
  table.add(20, FlowMatch{}, {}, /*cookie=*/7);
  const FlowEntryId keep = table.add(10, FlowMatch{}, {}, 8);
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  table.lookup(context_of(0, frame), 1);
  EXPECT_EQ(table.remove_by_cookie(7), 1u);
  EXPECT_EQ(table.lookup(context_of(0, frame), 1)->id, keep);
  // Cached misses must also be invalidated.
  FlowTable empty;
  auto miss_frame = make_udp("3.3.3.3", "4.4.4.4", 5, 6);
  EXPECT_EQ(empty.lookup(context_of(0, miss_frame), 1), nullptr);
  const FlowEntryId later = empty.add(1, FlowMatch{}, {});
  EXPECT_EQ(empty.lookup(context_of(0, miss_frame), 1)->id, later);
}

TEST(FlowClassifier, CacheHitsAreCountedAndStatsKeepAccumulating) {
  FlowTable table;
  table.add(10, FlowMatch{}, {});
  auto frame = make_udp("1.1.1.1", "2.2.2.2", 1, 2);
  table.lookup(context_of(0, frame), 100);
  table.lookup(context_of(0, frame), 100);
  table.lookup(context_of(0, frame), 100);
  EXPECT_GE(table.cache_hits(), 2u);
  EXPECT_EQ(table.cache_lookups(), 3u);
  EXPECT_EQ(table.entries().front()->stats.packets, 3u);
  EXPECT_EQ(table.entries().front()->stats.bytes, 300u);
}

TEST(FlowClassifier, SecondaryIndexes) {
  FlowTable table;
  const FlowEntryId a = table.add(1, FlowMatch{}, {}, /*cookie=*/7);
  const FlowEntryId b = table.add(2, FlowMatch{}, {}, 7);
  const FlowEntryId c = table.add(3, FlowMatch{}, {}, 8);
  EXPECT_EQ(table.find(a)->id, a);
  EXPECT_EQ(table.find(999), nullptr);
  auto sevens = table.entries_by_cookie(7);
  EXPECT_EQ(sevens.size(), 2u);
  EXPECT_NE(std::find(sevens.begin(), sevens.end(), a), sevens.end());
  EXPECT_NE(std::find(sevens.begin(), sevens.end(), b), sevens.end());
  EXPECT_EQ(table.entries_by_cookie(9).size(), 0u);
  (void)c;
}

TEST(FlowClassifier, GroupCountTracksMatchShapes) {
  FlowTable table;
  for (int i = 0; i < 100; ++i) {
    FlowMatch match;
    match.in_port = 1;
    match.vlan = static_cast<std::uint16_t>(100 + i);
    table.add(100, match, {});
  }
  // 100 rules, one match shape -> one tuple-space group.
  EXPECT_EQ(table.classifier_groups(), 1u);
  FlowMatch other;
  other.tp_dst = 443;
  table.add(5, other, {});
  EXPECT_EQ(table.classifier_groups(), 2u);
}

// ---------------------------------------------------------------------------
// Burst pipeline
// ---------------------------------------------------------------------------

TEST(LsiBurst, BurstFollowsFlowTable) {
  Lsi lsi(1, "burst");
  const PortId in = lsi.add_port("in").value();
  const PortId out_a = lsi.add_port("a").value();
  const PortId out_b = lsi.add_port("b").value();
  std::vector<std::size_t> burst_sizes;
  std::uint64_t singles = 0;
  (void)lsi.set_port_burst_peer(out_a, [&](packet::PacketBurst&& burst) {
    burst_sizes.push_back(burst.size());
  });
  (void)lsi.set_port_peer(out_b, [&](packet::PacketBuffer&&) { ++singles; });

  FlowMatch to_a;
  to_a.in_port = in;
  to_a.tp_dst = 1000;
  FlowMatch to_b;
  to_b.in_port = in;
  to_b.tp_dst = 2000;
  lsi.flow_table().add(10, to_a, {FlowAction::output(out_a)});
  lsi.flow_table().add(10, to_b, {FlowAction::output(out_b)});

  packet::PacketBurst burst;
  for (int i = 0; i < 5; ++i) {
    burst.push_back(make_udp("1.1.1.1", "2.2.2.2", 1, 1000));
  }
  for (int i = 0; i < 3; ++i) {
    burst.push_back(make_udp("1.1.1.1", "2.2.2.2", 1, 2000));
  }
  lsi.receive_burst(in, std::move(burst));

  // Port a has a burst peer: one call with all 5 frames. Port b falls back
  // to per-frame delivery.
  ASSERT_EQ(burst_sizes.size(), 1u);
  EXPECT_EQ(burst_sizes[0], 5u);
  EXPECT_EQ(singles, 3u);
  EXPECT_EQ(lsi.port_stats(out_a)->tx_packets, 5u);
  EXPECT_EQ(lsi.port_stats(out_b)->tx_packets, 3u);
  EXPECT_EQ(lsi.processed_packets(), 8u);
}

TEST(LsiBurst, BurstMissesPuntToController) {
  class CountingController : public FlowController {
   public:
    void on_packet_in(Lsi&, PortId, const packet::PacketBuffer&) override {
      ++punts;
    }
    int punts = 0;
  };
  Lsi lsi(1, "burst-miss");
  const PortId in = lsi.add_port("in").value();
  CountingController controller;
  lsi.set_controller(&controller);
  packet::PacketBurst burst;
  burst.push_back(make_udp("1.1.1.1", "2.2.2.2", 1, 2));
  burst.push_back(make_udp("1.1.1.1", "2.2.2.2", 1, 3));
  lsi.receive_burst(in, std::move(burst));
  EXPECT_EQ(controller.punts, 2);
  EXPECT_EQ(lsi.flow_table().misses(), 2u);
}

}  // namespace
}  // namespace nnfv::nfswitch
