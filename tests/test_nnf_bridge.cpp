// Learning-bridge NF tests: learning, forwarding, flooding, aging,
// per-context isolation.
#include <gtest/gtest.h>

#include "nnf/bridge.hpp"
#include "packet/builder.hpp"

namespace nnfv::nnf {
namespace {

packet::PacketBuffer frame_between(std::uint32_t src_id, std::uint32_t dst_id,
                                   bool broadcast = false) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(src_id);
  spec.eth_dst = broadcast ? packet::MacAddress::broadcast()
                           : packet::MacAddress::from_id(dst_id);
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
  static const std::vector<std::uint8_t> payload(20, 1);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

TEST(Bridge, FloodsUnknownDestination) {
  Bridge bridge(3);
  auto outs = bridge.process(kDefaultContext, 0, 0, frame_between(1, 2));
  ASSERT_EQ(outs.size(), 2u);  // every port except ingress
  EXPECT_EQ(outs[0].port, 1u);
  EXPECT_EQ(outs[1].port, 2u);
}

TEST(Bridge, LearnsAndForwardsUnicast) {
  Bridge bridge(3);
  // Host 1 on port 0 talks; bridge learns 1 -> 0.
  bridge.process(kDefaultContext, 0, 0, frame_between(1, 2));
  // Reply toward host 1 from port 2: unicast to port 0, no flood.
  auto outs = bridge.process(kDefaultContext, 2, 0, frame_between(2, 1));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 0u);
  EXPECT_EQ(bridge.table_size(kDefaultContext), 2u);
}

TEST(Bridge, BroadcastAlwaysFloods) {
  Bridge bridge(2);
  bridge.process(kDefaultContext, 0, 0, frame_between(1, 2));
  auto outs = bridge.process(kDefaultContext, 1, 0,
                             frame_between(2, 0, /*broadcast=*/true));
  ASSERT_EQ(outs.size(), 1u);  // only the other port
  EXPECT_EQ(outs[0].port, 0u);
}

TEST(Bridge, NeverHairpinsToIngress) {
  Bridge bridge(2);
  bridge.process(kDefaultContext, 0, 0, frame_between(1, 2));
  // A frame *to* host 1 arriving on host 1's own port is dropped.
  auto outs = bridge.process(kDefaultContext, 0, 0, frame_between(3, 1));
  EXPECT_TRUE(outs.empty());
  EXPECT_EQ(bridge.counters().dropped, 1u);
}

TEST(Bridge, StationMovesPorts) {
  Bridge bridge(2);
  bridge.process(kDefaultContext, 0, 0, frame_between(1, 9));
  // Host 1 reappears on port 1 (moved cable); learning updates.
  bridge.process(kDefaultContext, 1, 0, frame_between(1, 9));
  auto outs = bridge.process(kDefaultContext, 0, 0, frame_between(2, 1));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 1u);
}

TEST(Bridge, EntriesAgeOut) {
  Bridge bridge(2);
  ASSERT_TRUE(
      bridge.configure(kDefaultContext, {{"aging_time_ms", "1000"}}).is_ok());
  bridge.process(kDefaultContext, 0, 0, frame_between(1, 2));
  // Within the aging window: unicast.
  auto outs = bridge.process(kDefaultContext, 1, 500 * sim::kMillisecond,
                             frame_between(2, 1));
  EXPECT_EQ(outs.size(), 1u);
  // After expiry the destination is unknown again: flood.
  outs = bridge.process(kDefaultContext, 1, 2 * sim::kSecond,
                        frame_between(2, 1));
  ASSERT_EQ(outs.size(), 1u);  // 2-port bridge floods to the 1 other port
  EXPECT_EQ(outs[0].port, 0u);
  // The aged entry was evicted.
  EXPECT_EQ(bridge.table_size(kDefaultContext), 1u);  // only host 2 now
}

TEST(Bridge, ContextsIsolateForwardingTables) {
  Bridge bridge(2);
  ASSERT_TRUE(bridge.add_context(1).is_ok());
  bridge.process(0, 0, 0, frame_between(1, 2));
  EXPECT_EQ(bridge.table_size(0), 1u);
  EXPECT_EQ(bridge.table_size(1), 0u);
  // Context 1 has not learned host 1: flood.
  auto outs = bridge.process(1, 1, 0, frame_between(2, 1));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 0u);
}

TEST(Bridge, RemoveContextDropsState) {
  Bridge bridge(2);
  ASSERT_TRUE(bridge.add_context(5).is_ok());
  bridge.process(5, 0, 0, frame_between(1, 2));
  EXPECT_EQ(bridge.table_size(5), 1u);
  ASSERT_TRUE(bridge.remove_context(5).is_ok());
  EXPECT_EQ(bridge.table_size(5), 0u);
  EXPECT_TRUE(bridge.process(5, 0, 0, frame_between(1, 2)).empty());
  EXPECT_FALSE(bridge.remove_context(0).is_ok());  // default undeletable
}

TEST(Bridge, RejectsBadConfig) {
  Bridge bridge(2);
  EXPECT_FALSE(
      bridge.configure(kDefaultContext, {{"aging_time_ms", "abc"}}).is_ok());
  EXPECT_FALSE(
      bridge.configure(kDefaultContext, {{"unknown_key", "1"}}).is_ok());
  EXPECT_FALSE(bridge.configure(42, {}).is_ok());  // unknown context
}

TEST(Bridge, InvalidPortCountsError) {
  Bridge bridge(2);
  EXPECT_TRUE(bridge.process(kDefaultContext, 7, 0, frame_between(1, 2))
                  .empty());
  EXPECT_EQ(bridge.counters().errors, 1u);
}

TEST(Bridge, MinimumTwoPorts) {
  Bridge bridge(0);
  EXPECT_EQ(bridge.num_ports(), 2u);
  EXPECT_EQ(bridge.type(), "bridge");
}

}  // namespace
}  // namespace nnfv::nnf
