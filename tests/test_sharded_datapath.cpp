// Sharded-datapath tests: the SPSC handoff ring, the RSS hash contract,
// worker-slot identity, the DatapathExecutor run-to-completion loop, and
// multi-worker runs of the stateful NFs (LSI classify, IPsec encap with a
// shared tunnel, NAT port slices) plus the UniversalNode wiring.
//
// These are the tests the TSan CI job pins (docs/datapath.md §6).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/node.hpp"
#include "exec/datapath_executor.hpp"
#include "exec/rss.hpp"
#include "exec/spsc_ring.hpp"
#include "exec/worker_slot.hpp"
#include "nnf/ipsec.hpp"
#include "nnf/nat.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"
#include "packet/headers.hpp"
#include "switch/lsi.hpp"

namespace nnfv {
namespace {

packet::PacketBuffer make_udp(std::uint32_t flow, std::uint16_t sport) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(0x11);
  spec.eth_dst = packet::MacAddress::from_id(0x22);
  spec.ip_src = packet::Ipv4Address{0x0A000000u + flow};  // 10.0.x.x
  spec.ip_dst = *packet::Ipv4Address::parse("192.0.2.1");
  spec.src_port = sport;
  spec.dst_port = 4789;
  static const std::vector<std::uint8_t> payload(64, 0xAB);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRing, PushPopKeepsFifoOrder) {
  exec::SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(int{i}));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));  // empty again
}

TEST(SpscRing, RejectsPushWhenFull) {
  exec::SpscRing<int> ring(4);
  std::size_t pushed = 0;
  while (ring.push(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, ring.capacity());
  int out = -1;
  ASSERT_TRUE(ring.pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.push(99));  // one slot freed
}

TEST(SpscRing, BatchOpsMoveWholeRuns) {
  exec::SpscRing<int> ring(16);
  std::vector<int> in{1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(ring.push_batch(in.data(), in.size()), in.size());
  std::vector<int> out;
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(ring.pop_batch(out, 100), 3u);
  EXPECT_EQ(out.back(), 7);
}

TEST(SpscRing, WrapAroundSurvivesManyCycles) {
  exec::SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_in = 0, next_out = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    while (ring.push(std::uint64_t{next_in})) ++next_in;
    std::uint64_t v = 0;
    while (ring.pop(v)) EXPECT_EQ(v, next_out++);
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(SpscRing, CrossThreadTransfersEverythingInOrder) {
  exec::SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&]() {
    for (std::uint64_t i = 0; i < kCount;) {
      if (ring.push(std::uint64_t{i})) ++i;
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t v = 0;
    if (ring.pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

TEST(SpscRing, ProducerSizeTracksOccupancyAtBoundaries) {
  exec::SpscRing<int> ring(8);
  EXPECT_EQ(ring.producer_size(), 0u);
  // Fill to capacity: producer_size tracks exactly on the producer
  // thread with no concurrent consumer.
  for (std::size_t i = 0; i < ring.capacity(); ++i) {
    EXPECT_EQ(ring.producer_size(), i);
    ASSERT_TRUE(ring.push(static_cast<int>(i)));
  }
  EXPECT_EQ(ring.producer_size(), ring.capacity());
  EXPECT_FALSE(ring.push(-1));  // full: occupancy must not move
  EXPECT_EQ(ring.producer_size(), ring.capacity());
  int out = 0;
  while (ring.pop(out)) {
  }
  EXPECT_EQ(ring.producer_size(), 0u);
}

TEST(SpscRing, ProducerSizeSurvivesIndexWraparound) {
  exec::SpscRing<int> ring(4);
  // Run the head/tail indices far past the ring size so the masked
  // subtraction in producer_size() is exercised across wraps.
  int out = 0;
  for (int cycle = 0; cycle < 1000; ++cycle) {
    ASSERT_TRUE(ring.push(int{cycle}));
    ASSERT_TRUE(ring.push(int{cycle}));
    EXPECT_EQ(ring.producer_size(), 2u);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(ring.producer_size(), 1u);
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(ring.producer_size(), 0u);
  }
}

TEST(SpscRing, ProducerSizeIsBoundedUnderConcurrentDrain) {
  // The shedding watermarks compare producer_size() against capacity,
  // so the one invariant that matters under concurrency: the estimate
  // never exceeds capacity (stale head only makes it an overestimate,
  // which errs toward shedding, never past the ring).
  exec::SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 50000;
  std::atomic<bool> done{false};
  std::thread consumer([&]() {
    std::uint64_t expected = 0;
    while (expected < kCount) {
      std::uint64_t v = 0;
      if (ring.pop(v)) {
        ASSERT_EQ(v, expected);
        ++expected;
      }
    }
    done.store(true);
  });
  for (std::uint64_t i = 0; i < kCount;) {
    const std::size_t occupancy = ring.producer_size();
    ASSERT_LE(occupancy, ring.capacity());
    if (ring.push(std::uint64_t{i})) ++i;
  }
  consumer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(ring.producer_size(), 0u);
}

// ---------------------------------------------------------------------------
// RSS hash
// ---------------------------------------------------------------------------

TEST(Rss, SameFlowAlwaysSameShard) {
  auto frame = make_udp(1, 5000);
  const std::uint64_t h1 = exec::rss_hash_frame(frame.data());
  const std::uint64_t h2 = exec::rss_hash_frame(frame.data());
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(exec::shard_for(h1, 4), exec::shard_for(h2, 4));
}

TEST(Rss, DistinctFlowsSpreadAcrossShards) {
  std::set<std::size_t> shards;
  for (std::uint32_t flow = 0; flow < 64; ++flow) {
    auto frame = make_udp(flow, static_cast<std::uint16_t>(5000 + flow));
    shards.insert(exec::shard_for(exec::rss_hash_frame(frame.data()), 4));
  }
  // 64 distinct tuples into 4 shards: every shard must be hit.
  EXPECT_EQ(shards.size(), 4u);
}

TEST(Rss, UndecodableFramesAllLandOnShardZero) {
  std::vector<std::uint8_t> runt(6, 0);
  EXPECT_EQ(exec::rss_hash_frame(runt), 0u);
  EXPECT_EQ(exec::shard_for(0, 4), 0u);
}

// ---------------------------------------------------------------------------
// Worker slots
// ---------------------------------------------------------------------------

TEST(WorkerSlot, ControlThreadIsSlotZero) {
  EXPECT_EQ(exec::current_worker_slot(), 0u);
  {
    exec::ScopedWorkerSlot scope(3);
    EXPECT_EQ(exec::current_worker_slot(), 3u);
    {
      exec::ScopedWorkerSlot inner(5);
      EXPECT_EQ(exec::current_worker_slot(), 5u);
    }
    EXPECT_EQ(exec::current_worker_slot(), 3u);
  }
  EXPECT_EQ(exec::current_worker_slot(), 0u);
}

// ---------------------------------------------------------------------------
// DatapathExecutor
// ---------------------------------------------------------------------------

TEST(DatapathExecutor, ProcessesEveryFrameExactlyOnce) {
  std::atomic<std::uint64_t> seen{0};
  exec::DatapathExecutorConfig config;
  config.workers = 4;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext&, std::uint32_t,
                  packet::PacketBurst&& burst) {
        seen.fetch_add(burst.size(), std::memory_order_relaxed);
      });
  constexpr std::size_t kFrames = 512;
  packet::PacketBurst burst;
  for (std::size_t i = 0; i < kFrames; ++i) {
    burst.push_back(make_udp(static_cast<std::uint32_t>(i % 32),
                             static_cast<std::uint16_t>(1000 + i % 32)));
  }
  EXPECT_EQ(executor.submit_burst(7, std::move(burst)), kFrames);
  executor.drain();
  EXPECT_EQ(seen.load(), kFrames);
  EXPECT_EQ(executor.total_processed(), kFrames);
  EXPECT_EQ(executor.ingress_drops(), 0u);
  std::uint64_t per_worker = 0;
  for (std::size_t w = 0; w < executor.worker_count(); ++w) {
    per_worker += executor.worker_stats(w).processed;
  }
  EXPECT_EQ(per_worker, kFrames);
}

TEST(DatapathExecutor, FlowsStickToOneWorker) {
  std::mutex mu;
  std::map<std::uint16_t, std::set<std::size_t>> flow_workers;
  exec::DatapathExecutorConfig config;
  config.workers = 4;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext& ctx, std::uint32_t,
                  packet::PacketBurst&& burst) {
        for (const auto& frame : burst) {
          auto eth = packet::parse_ethernet(frame.data());
          auto tuple = packet::extract_five_tuple(
              frame.data().subspan(eth->wire_size()));
          std::lock_guard<std::mutex> lock(mu);
          flow_workers[tuple->src_port].insert(ctx.index());
        }
      });
  packet::PacketBurst burst;
  for (int rep = 0; rep < 8; ++rep) {
    for (std::uint32_t flow = 0; flow < 16; ++flow) {
      burst.push_back(make_udp(flow, static_cast<std::uint16_t>(2000 + flow)));
    }
  }
  executor.submit_burst(0, std::move(burst));
  executor.drain();
  ASSERT_EQ(flow_workers.size(), 16u);
  std::set<std::size_t> used;
  for (const auto& [port, workers] : flow_workers) {
    // The RSS contract: one flow, one worker.
    EXPECT_EQ(workers.size(), 1u) << "flow port " << port;
    used.insert(*workers.begin());
  }
  EXPECT_GT(used.size(), 1u);  // 16 flows must not all collapse to one core
}

TEST(DatapathExecutor, PipelineRunsOnRegisteredWorkerSlot) {
  std::atomic<bool> slot_ok{true};
  exec::DatapathExecutorConfig config;
  config.workers = 2;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext& ctx, std::uint32_t,
                  packet::PacketBurst&&) {
        if (exec::current_worker_slot() != ctx.slot()) slot_ok = false;
        if (ctx.slot() != ctx.index() + 1) slot_ok = false;
      });
  packet::PacketBurst burst;
  for (std::uint32_t i = 0; i < 64; ++i) {
    burst.push_back(make_udp(i, static_cast<std::uint16_t>(3000 + i)));
  }
  executor.submit_burst(0, std::move(burst));
  executor.drain();
  EXPECT_TRUE(slot_ok.load());
}

TEST(DatapathExecutor, HandoffMovesFrameToTargetWorker) {
  constexpr std::uint32_t kIngressTag = 1;
  constexpr std::uint32_t kHandoffTag = 2;
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> hops;  // (from, at)
  exec::DatapathExecutorConfig config;
  config.workers = 3;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext& ctx, std::uint32_t tag,
                  packet::PacketBurst&& burst) {
        for (auto& frame : burst) {
          if (tag == kIngressTag) {
            const std::size_t target =
                (ctx.index() + 1) % ctx.worker_count();
            EXPECT_TRUE(
                ctx.handoff(target, kHandoffTag, std::move(frame)));
          } else {
            std::lock_guard<std::mutex> lock(mu);
            hops.emplace_back(tag, ctx.index());
          }
        }
      });
  packet::PacketBurst burst;
  for (std::uint32_t i = 0; i < 96; ++i) {
    burst.push_back(make_udp(i, static_cast<std::uint16_t>(4000 + i)));
  }
  executor.submit_burst(kIngressTag, std::move(burst));
  executor.drain();
  EXPECT_EQ(hops.size(), 96u);
  for (const auto& [tag, at] : hops) EXPECT_EQ(tag, kHandoffTag);
  std::uint64_t out = 0, in = 0;
  for (std::size_t w = 0; w < executor.worker_count(); ++w) {
    out += executor.worker_stats(w).handoff_out;
    in += executor.worker_stats(w).handoff_in;
  }
  EXPECT_EQ(out, 96u);
  EXPECT_EQ(in, 96u);
}

TEST(DatapathExecutor, SubmitToPinsFrameToChosenWorker) {
  std::atomic<std::uint64_t> on_target{0};
  exec::DatapathExecutorConfig config;
  config.workers = 4;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext& ctx, std::uint32_t,
                  packet::PacketBurst&& burst) {
        if (ctx.index() == 2) on_target += burst.size();
      });
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_TRUE(executor.submit_to(2, 0, make_udp(i, 5000)));
  }
  executor.drain();
  EXPECT_EQ(on_target.load(), 32u);
}

// ---------------------------------------------------------------------------
// Multi-worker LSI classify (per-slot microflow caches)
// ---------------------------------------------------------------------------

TEST(ShardedDatapath, LsiClassifyFromFourWorkers) {
  nfswitch::Lsi lsi(0, "LSI-0");
  const nfswitch::PortId in = lsi.add_port("in").value();
  const nfswitch::PortId out_a = lsi.add_port("a").value();
  const nfswitch::PortId out_b = lsi.add_port("b").value();
  // Even flows (10.0.0.x, x even src port) to a, rest to b.
  nfswitch::FlowMatch even;
  even.ip_proto = packet::kIpProtoUdp;
  even.tp_dst = 4789;
  even.tp_src = 2000;  // overwritten per rule below
  for (std::uint16_t port = 2000; port < 2016; ++port) {
    nfswitch::FlowMatch match = even;
    match.tp_src = port;
    lsi.flow_table().add(
        10, match,
        {nfswitch::FlowAction::output(port % 2 == 0 ? out_a : out_b)});
  }
  std::atomic<std::uint64_t> got_a{0}, got_b{0};
  ASSERT_TRUE(lsi.set_port_burst_peer(out_a, [&](packet::PacketBurst&& b) {
                   got_a += b.size();
                 }).is_ok());
  ASSERT_TRUE(lsi.set_port_burst_peer(out_b, [&](packet::PacketBurst&& b) {
                   got_b += b.size();
                 }).is_ok());

  exec::DatapathExecutorConfig config;
  config.workers = 4;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext&, std::uint32_t tag,
                  packet::PacketBurst&& burst) {
        lsi.receive_burst(static_cast<nfswitch::PortId>(tag),
                          std::move(burst));
      });
  constexpr int kReps = 32;
  packet::PacketBurst burst;
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::uint32_t flow = 0; flow < 16; ++flow) {
      burst.push_back(make_udp(flow, static_cast<std::uint16_t>(2000 + flow)));
    }
  }
  executor.submit_burst(in, std::move(burst));
  executor.drain();
  EXPECT_EQ(got_a.load(), 8u * kReps);
  EXPECT_EQ(got_b.load(), 8u * kReps);
  EXPECT_EQ(lsi.processed_packets(), 16u * kReps);
  EXPECT_EQ(lsi.port_stats(in)->rx_packets.load(), 16u * kReps);
}

// ---------------------------------------------------------------------------
// Multi-worker IPsec: shared tunnel, unique sequence numbers
// ---------------------------------------------------------------------------

constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
constexpr const char* kAuthKey =
    "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f";

nnf::NfConfig tunnel_config(const char* local, const char* peer,
                            const char* spi_out, const char* spi_in) {
  return {{"local_ip", local},   {"peer_ip", peer}, {"spi_out", spi_out},
          {"spi_in", spi_in},    {"enc_key", kEncKey},
          {"auth_key", kAuthKey}};
}

std::uint32_t esp_sequence(const packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  auto esp =
      packet::parse_esp(frame.data().subspan(eth->wire_size() + 20));
  return esp->sequence;
}

TEST(ShardedDatapath, SharedTunnelClaimsUniqueEspSequences) {
  nnf::IpsecEndpoint initiator;
  ASSERT_TRUE(initiator
                  .configure(nnf::kDefaultContext,
                             tunnel_config("198.51.100.1", "198.51.100.2",
                                           "1001", "2002"))
                  .is_ok());
  std::mutex mu;
  packet::PacketBurst encrypted;
  exec::DatapathExecutorConfig config;
  config.workers = 4;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext&, std::uint32_t,
                  packet::PacketBurst&& burst) {
        auto outs = initiator.process_burst(nnf::kDefaultContext, 0, 0,
                                            std::move(burst));
        std::lock_guard<std::mutex> lock(mu);
        for (auto& out : outs) encrypted.push_back(std::move(out.frame));
      });
  constexpr std::size_t kFrames = 256;
  packet::PacketBurst burst;
  for (std::size_t i = 0; i < kFrames; ++i) {
    burst.push_back(make_udp(static_cast<std::uint32_t>(i % 32),
                             static_cast<std::uint16_t>(6000 + i % 32)));
  }
  executor.submit_burst(0, std::move(burst));
  executor.drain();

  ASSERT_EQ(encrypted.size(), kFrames);
  EXPECT_EQ(initiator.stats().encapsulated, kFrames);
  std::set<std::uint32_t> seqs;
  for (const auto& frame : encrypted) seqs.insert(esp_sequence(frame));
  // The atomic claim in encapsulate: no two workers share a sequence.
  EXPECT_EQ(seqs.size(), kFrames);

  // Replay the ciphertext in sequence order through the responder: every
  // frame decapsulates (ordered arrival never trips the replay window).
  nnf::IpsecEndpoint responder;
  ASSERT_TRUE(responder
                  .configure(nnf::kDefaultContext,
                             tunnel_config("198.51.100.2", "198.51.100.1",
                                           "2002", "1001"))
                  .is_ok());
  std::sort(encrypted.begin(), encrypted.end(),
            [](const packet::PacketBuffer& a, const packet::PacketBuffer& b) {
              return esp_sequence(a) < esp_sequence(b);
            });
  std::size_t decapsulated = 0;
  for (auto& frame : encrypted) {
    decapsulated += responder
                        .process(nnf::kDefaultContext, 1, 0, std::move(frame))
                        .size();
  }
  EXPECT_EQ(decapsulated, kFrames);
}

TEST(ShardedDatapath, RekeyUnderTrafficLosesNothing) {
  nnf::IpsecEndpoint initiator;
  nnf::NfConfig base = tunnel_config("198.51.100.1", "198.51.100.2", "1001",
                                     "2002");
  base["life_soft_packets"] = "100";  // cut over mid-run
  ASSERT_TRUE(initiator.configure(nnf::kDefaultContext, base).is_ok());

  std::atomic<std::uint64_t> out_frames{0};
  exec::DatapathExecutorConfig config;
  config.workers = 4;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext&, std::uint32_t,
                  packet::PacketBurst&& burst) {
        auto outs = initiator.process_burst(nnf::kDefaultContext, 0, 0,
                                            std::move(burst));
        out_frames.fetch_add(outs.size(), std::memory_order_relaxed);
      });

  constexpr std::size_t kFrames = 400;
  packet::PacketBurst first_half, second_half;
  for (std::size_t i = 0; i < kFrames; ++i) {
    auto frame = make_udp(static_cast<std::uint32_t>(i % 16),
                          static_cast<std::uint16_t>(7000 + i % 16));
    (i < kFrames / 2 ? first_half : second_half).push_back(std::move(frame));
  }
  executor.submit_burst(0, std::move(first_half));
  // Stage the rekey from the control thread while workers are encrypting:
  // configure() takes the endpoint's writer lock against the fast path.
  ASSERT_TRUE(initiator
                  .configure(nnf::kDefaultContext,
                             {{"rekey_spi_out", "1003"},
                              {"rekey_spi_in", "2004"},
                              {"rekey_enc_key",
                               "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"},
                              {"rekey_auth_key",
                               "606162636465666768696a6b6c6d6e6f"
                               "707172737475767778797a7b7c7d7e7f"}})
                  .is_ok());
  executor.submit_burst(0, std::move(second_half));
  executor.drain();

  // Make-before-break: every offered frame leaves encrypted, none dropped
  // in the cutover window.
  EXPECT_EQ(out_frames.load(), kFrames);
  EXPECT_EQ(initiator.stats().encapsulated, kFrames);
  EXPECT_EQ(initiator.stats().rekeys_started, 1u);
  EXPECT_EQ(initiator.stats().rekeys_completed, 1u);
}

// ---------------------------------------------------------------------------
// Multi-worker NAT: per-slot port slices
// ---------------------------------------------------------------------------

TEST(ShardedDatapath, NatWorkersAllocateFromDisjointSlices) {
  nnf::Nat nat;
  ASSERT_TRUE(
      nat.configure(nnf::kDefaultContext, {{"external_ip", "203.0.113.1"}})
          .is_ok());
  nat.set_worker_count(4);

  std::mutex mu;
  std::set<std::uint16_t> external_ports;
  exec::DatapathExecutorConfig config;
  config.workers = 4;
  exec::DatapathExecutor executor(
      config, [&](exec::WorkerContext&, std::uint32_t,
                  packet::PacketBurst&& burst) {
        auto outs = nat.process_burst(nnf::kDefaultContext, 0, 0,
                                      std::move(burst));
        std::lock_guard<std::mutex> lock(mu);
        for (const auto& out : outs) {
          auto eth = packet::parse_ethernet(out.frame.data());
          auto tuple = packet::extract_five_tuple(
              out.frame.data().subspan(eth->wire_size()));
          external_ports.insert(tuple->src_port);
        }
      });
  constexpr std::uint32_t kFlows = 128;
  packet::PacketBurst burst;
  for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
    burst.push_back(
        make_udp(flow, static_cast<std::uint16_t>(10000 + flow)));
  }
  executor.submit_burst(0, std::move(burst));
  executor.drain();

  // Every flow got its own session and its own external port; slices
  // guarantee two workers never hand out the same port concurrently.
  EXPECT_EQ(nat.session_count(nnf::kDefaultContext), kFlows);
  EXPECT_EQ(external_ports.size(), kFlows);
}

// ---------------------------------------------------------------------------
// UniversalNode wiring
// ---------------------------------------------------------------------------

TEST(ShardedDatapath, NodeRoutesIngressThroughWorkers) {
  core::UniversalNodeConfig config;
  config.datapath_workers = 2;
  core::UniversalNode node(config);
  ASSERT_NE(node.datapath(), nullptr);
  EXPECT_EQ(node.datapath()->worker_count(), 2u);

  // eth0 -> eth1 passthrough rule on LSI-0.
  auto& lsi = node.network().base_lsi();
  const nfswitch::PortId eth0 = node.network().physical_port("eth0").value();
  const nfswitch::PortId eth1 = node.network().physical_port("eth1").value();
  nfswitch::FlowMatch from_eth0;
  from_eth0.in_port = eth0;
  lsi.flow_table().add(1, from_eth0, {nfswitch::FlowAction::output(eth1)});

  std::atomic<std::uint64_t> egress{0};
  ASSERT_TRUE(node.set_egress("eth1", [&](packet::PacketBuffer&&) {
                    egress.fetch_add(1, std::memory_order_relaxed);
                  }).is_ok());

  constexpr std::size_t kFrames = 128;
  packet::PacketBurst burst;
  for (std::size_t i = 0; i < kFrames; ++i) {
    burst.push_back(make_udp(static_cast<std::uint32_t>(i % 8),
                             static_cast<std::uint16_t>(8000 + i % 8)));
  }
  ASSERT_TRUE(node.inject_burst("eth0", std::move(burst)).is_ok());
  ASSERT_TRUE(node.inject("eth0", make_udp(0, 8000)).is_ok());
  node.drain_datapath();

  EXPECT_EQ(egress.load(), kFrames + 1);
  EXPECT_EQ(node.datapath()->total_processed(), kFrames + 1);
  EXPECT_EQ(node.inject_burst("missing", {}).is_ok(), false);
}

TEST(ShardedDatapath, NodeDefaultStaysInline) {
  core::UniversalNode node;  // datapath_workers = 0
  EXPECT_EQ(node.datapath(), nullptr);
  node.drain_datapath();  // no-op, must not crash
}

}  // namespace
}  // namespace nnfv
