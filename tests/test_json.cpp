// Tests for the JSON parser/serializer carrying the NF-FG wire format.
#include <gtest/gtest.h>

#include "json/json.hpp"

namespace nnfv::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_TRUE(parse("true")->as_bool());
  EXPECT_FALSE(parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(parse("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.5")->as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("2.5E-2")->as_number(), 0.025);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]")->as_array().empty());
  EXPECT_TRUE(parse("{}")->as_object().empty());
  EXPECT_TRUE(parse("  [ ]  ")->as_array().empty());
}

TEST(JsonParse, NestedStructure) {
  auto doc = parse(R"({"a": [1, {"b": "c"}, null], "d": true})");
  ASSERT_TRUE(doc.is_ok());
  const Value& v = doc.value();
  ASSERT_TRUE(v.is_object());
  const Value* a = v.get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[1].get_string("b"), "c");
  EXPECT_TRUE(a->as_array()[2].is_null());
  EXPECT_TRUE(v.get_bool("d", false));
}

TEST(JsonParse, StringEscapes) {
  auto doc = parse(R"("a\"b\\c\/d\b\f\n\r\t")");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->as_string(), "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonParse, UnicodeEscapesBmp) {
  auto doc = parse("\"\\u0041\\u00e9\\u20ac\"");  // A, é, €
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->as_string(), "A\xC3\xA9\xE2\x82\xAC");
}

TEST(JsonParse, UnicodeSurrogatePair) {
  auto doc = parse("\"\\ud83d\\ude00\"");  // U+1F600
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RawUtf8PassesThrough) {
  auto doc = parse("\"caf\xC3\xA9\"");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->as_string(), "caf\xC3\xA9");
}

TEST(JsonParse, RejectsLoneSurrogates) {
  EXPECT_FALSE(parse(R"("\ud83d")").is_ok());
  EXPECT_FALSE(parse(R"("\ude00")").is_ok());
  EXPECT_FALSE(parse(R"("\ud83dxx")").is_ok());
}

struct BadInput {
  const char* name;
  const char* text;
};

class JsonRejects : public ::testing::TestWithParam<BadInput> {};

TEST_P(JsonRejects, MalformedDocuments) {
  EXPECT_FALSE(parse(GetParam().text).is_ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonRejects,
    ::testing::Values(
        BadInput{"empty", ""}, BadInput{"bare_word", "nul"},
        BadInput{"trailing", "{} extra"}, BadInput{"unclosed_obj", "{\"a\":1"},
        BadInput{"unclosed_arr", "[1,2"}, BadInput{"missing_colon", "{\"a\" 1}"},
        BadInput{"trailing_comma_obj", "{\"a\":1,}"},
        BadInput{"trailing_comma_arr", "[1,]"},
        BadInput{"unquoted_key", "{a:1}"},
        BadInput{"single_quotes", "{'a':1}"},
        BadInput{"bad_number", "01"}, BadInput{"plus_number", "+1"},
        BadInput{"dot_no_digits", "1."}, BadInput{"exp_no_digits", "1e"},
        BadInput{"unterminated_str", "\"abc"},
        BadInput{"raw_control", "\"a\x01b\""},
        BadInput{"bad_escape", "\"\\q\""},
        BadInput{"bad_hex", "\"\\u00zz\""}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(JsonParse, DepthLimitEnforced) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(parse(deep).is_ok());

  std::string ok;
  for (int i = 0; i < 50; ++i) ok += '[';
  for (int i = 0; i < 50; ++i) ok += ']';
  EXPECT_TRUE(parse(ok).is_ok());
}

TEST(JsonDump, CompactOutput) {
  Object obj;
  obj["name"] = "lsi-0";
  obj["ports"] = Array{Value(1), Value(2)};
  obj["up"] = true;
  EXPECT_EQ(Value(obj).dump(), R"({"name":"lsi-0","ports":[1,2],"up":true})");
}

TEST(JsonDump, IntegersHaveNoDecimalPoint) {
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(0).dump(), "0");
  EXPECT_EQ(Value(2.5).dump(), "2.5");
}

TEST(JsonDump, StringEscaping) {
  EXPECT_EQ(Value("a\"b\n").dump(), R"("a\"b\n")");
  EXPECT_EQ(Value(std::string(1, '\x02')).dump(), "\"\\u0002\"");
}

TEST(JsonDump, PrettyIsReparsable) {
  auto doc = parse(R"({"a":[1,2,{"b":null}],"c":"x"})");
  ASSERT_TRUE(doc.is_ok());
  auto again = parse(doc->dump_pretty());
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(doc.value() == again.value());
}

TEST(JsonRoundTrip, PreservesStructure) {
  const char* text =
      R"({"forwarding-graph":{"id":"g1","VNFs":[{"id":"fw","ports":2}],)"
      R"("flow-rules":[{"id":"r1","priority":10}]}})";
  auto doc = parse(text);
  ASSERT_TRUE(doc.is_ok());
  auto again = parse(doc->dump());
  ASSERT_TRUE(again.is_ok());
  EXPECT_TRUE(doc.value() == again.value());
}

TEST(JsonObject, PreservesInsertionOrder) {
  Object obj;
  obj["zebra"] = 1;
  obj["alpha"] = 2;
  obj["mike"] = 3;
  std::vector<std::string> keys;
  for (const auto& [key, value] : obj) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<std::string>{"zebra", "alpha", "mike"}));
}

TEST(JsonObject, FindAndErase) {
  Object obj;
  obj["a"] = 1;
  obj["b"] = 2;
  EXPECT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("zz"), nullptr);
  obj.erase("a");
  EXPECT_EQ(obj.find("a"), nullptr);
  EXPECT_EQ(obj.size(), 1u);
}

TEST(JsonValue, SafeAccessorsFallBack) {
  auto doc = parse(R"({"n": 5, "s": "str", "b": false})");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->get_string("s"), "str");
  EXPECT_EQ(doc->get_string("n", "dflt"), "dflt");  // wrong type
  EXPECT_EQ(doc->get_string("zz", "dflt"), "dflt");  // missing
  EXPECT_DOUBLE_EQ(doc->get_number("n"), 5.0);
  EXPECT_DOUBLE_EQ(doc->get_number("s", -1.0), -1.0);
  EXPECT_FALSE(doc->get_bool("b", true));
  EXPECT_TRUE(doc->get_bool("zz", true));
}

TEST(JsonValue, EqualityIsDeepAndOrderInsensitiveForObjects) {
  auto a = parse(R"({"x":1,"y":[true,null]})");
  auto b = parse(R"({"y":[true,null],"x":1})");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_TRUE(a.value() == b.value());
  auto c = parse(R"({"x":1,"y":[true,false]})");
  EXPECT_FALSE(a.value() == c.value());
}

TEST(JsonParse, WhitespaceTolerance) {
  auto doc = parse(" \t\r\n { \"a\" : [ 1 , 2 ] } \n");
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->get("a")->as_array().size(), 2u);
}

TEST(JsonParse, LargeArray) {
  std::string text = "[";
  for (int i = 0; i < 10000; ++i) {
    if (i != 0) text += ',';
    text += std::to_string(i);
  }
  text += ']';
  auto doc = parse(text);
  ASSERT_TRUE(doc.is_ok());
  EXPECT_EQ(doc->as_array().size(), 10000u);
  EXPECT_DOUBLE_EQ(doc->as_array()[9999].as_number(), 9999.0);
}

}  // namespace
}  // namespace nnfv::json
