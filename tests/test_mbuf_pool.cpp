// MbufPool and zero-copy PacketBuffer tests: exhaustion overflow to the
// heap (never-failing alloc), slab growth accounting, refcounted
// clone/copy semantics, cross-worker MPSC returns (run under TSan in
// CI), and the headroom/tailroom invariants that make ESP encap→decap a
// pure offset adjustment within one pooled segment.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "exec/worker_slot.hpp"
#include "nnf/ipsec.hpp"
#include "packet/buffer.hpp"
#include "packet/builder.hpp"
#include "packet/mbuf.hpp"

namespace nnfv::packet {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> out(n);
  std::iota(out.begin(), out.end(), start);
  return out;
}

// Drops a raw segment's refcount to zero and returns it, the way
// PacketBuffer::release() does. Pool-level tests work on MbufSegment
// directly so they can pin down overflow accounting per pool instance.
void drop(MbufSegment* seg) {
  seg->refcount.store(0, std::memory_order_release);
  MbufPool::free_segment(seg);
}

TEST(MbufPool, ExhaustedNonGrowingPoolOverflowsToHeapAndNeverFails) {
  MbufPool pool(/*prealloc_segments=*/2, /*slab_segments=*/0);
  MbufSegment* a = pool.alloc(64);
  MbufSegment* b = pool.alloc(64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->owner, &pool);
  EXPECT_EQ(b->owner, &pool);
  EXPECT_EQ(pool.stats().heap_allocs, 0u);

  // Pool dry, growth disabled: allocation keeps succeeding off the heap
  // and every overflow is counted.
  MbufSegment* c = pool.alloc(64);
  MbufSegment* d = pool.alloc(64);
  ASSERT_NE(c, nullptr);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(c->owner, nullptr);
  EXPECT_EQ(d->owner, nullptr);
  EXPECT_EQ(pool.stats().heap_allocs, 2u);
  EXPECT_EQ(pool.stats().slab_allocs, 0u);
  EXPECT_EQ(pool.stats().segment_allocs, 4u);

  drop(a);
  drop(b);
  drop(c);
  drop(d);

  // The pooled segments are reclaimable: the next alloc drains the
  // return stack instead of touching the heap again.
  MbufSegment* e = pool.alloc(64);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner, &pool);
  EXPECT_TRUE(e == a || e == b);
  EXPECT_EQ(pool.stats().heap_allocs, 2u);
  drop(e);
}

TEST(MbufPool, OversizeAllocTakesDedicatedHeapSegment) {
  MbufPool pool(/*prealloc_segments=*/1, /*slab_segments=*/0);
  MbufSegment* seg = pool.alloc(MbufPool::kDataCapacity + 1);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->owner, nullptr);
  EXPECT_GE(seg->capacity, MbufPool::kDataCapacity + 1);
  EXPECT_EQ(pool.stats().heap_allocs, 1u);
  drop(seg);
}

TEST(MbufPool, SlabGrowthIsCountedOnceAndSegmentsRecycle) {
  MbufPool pool(/*prealloc_segments=*/0, /*slab_segments=*/4);
  std::vector<MbufSegment*> segs;
  for (int i = 0; i < 5; ++i) segs.push_back(pool.alloc(64));
  // 5 allocs from 4-segment slabs: exactly two growths, no heap one-offs.
  EXPECT_EQ(pool.stats().slab_allocs, 2u);
  EXPECT_EQ(pool.stats().heap_allocs, 0u);
  for (MbufSegment* seg : segs) drop(seg);

  // Recycled warm pool: another round grows nothing.
  segs.clear();
  for (int i = 0; i < 5; ++i) segs.push_back(pool.alloc(64));
  EXPECT_EQ(pool.stats().slab_allocs, 2u);
  EXPECT_EQ(pool.stats().segment_frees, 5u);
  for (MbufSegment* seg : segs) drop(seg);
}

TEST(MbufPool, BurstAllocAndFreeRecycleWithoutHeapEvents) {
  // Warm the calling slot's pool, then verify steady-state burst
  // traffic is pure recycling: segment churn with zero heap events.
  constexpr std::size_t kBurst = 64;
  PacketBuffer::free_burst(PacketBuffer::alloc_burst(kBurst));

  const MbufPoolStats before = MbufPool::local().stats();
  for (int round = 0; round < 10; ++round) {
    PacketBurst burst = PacketBuffer::alloc_burst(kBurst);
    ASSERT_EQ(burst.size(), kBurst);
    for (PacketBuffer& frame : burst) {
      EXPECT_TRUE(frame.empty());
      EXPECT_EQ(frame.headroom(), PacketBuffer::kDefaultHeadroom);
      frame.push_back(100);
    }
    PacketBuffer::free_burst(std::move(burst));
  }
  const MbufPoolStats after = MbufPool::local().stats();
  EXPECT_EQ(after.segment_allocs - before.segment_allocs, 10 * kBurst);
  EXPECT_EQ(after.segment_frees - before.segment_frees, 10 * kBurst);
  EXPECT_EQ(after.slab_allocs, before.slab_allocs);
  EXPECT_EQ(after.heap_allocs, before.heap_allocs);
}

TEST(MbufPool, CrossWorkerFreeReturnsSegmentsToOwningPool) {
  // Frames allocated on the control slot (0) and destroyed on a worker
  // slot must come back through the owner's MPSC stack and become
  // allocatable again — the handoff-ring ownership transfer in miniature.
  constexpr std::size_t kRounds = 16;
  constexpr std::size_t kBurst = 32;
  const MbufPoolStats before = MbufPool::for_slot(0).stats();

  for (std::size_t round = 0; round < kRounds; ++round) {
    PacketBurst burst = PacketBuffer::alloc_burst(kBurst);
    for (PacketBuffer& frame : burst) {
      std::memset(frame.push_back(64).data(), static_cast<int>(round), 64);
    }
    std::thread worker([&burst] {
      exec::ScopedWorkerSlot slot(1);
      for (PacketBuffer& frame : burst) {
        ASSERT_EQ(frame.size(), 64u);
        EXPECT_EQ(frame.data()[0], frame.data()[63]);
      }
      burst.clear();  // destruction on slot 1 → foreign push to pool 0
    });
    worker.join();
  }

  const MbufPoolStats after = MbufPool::for_slot(0).stats();
  EXPECT_GE(after.cross_worker_frees - before.cross_worker_frees,
            kRounds * kBurst);
  // The foreign stack drains back into circulation: all that traffic
  // grew the owner pool at most once and never hit the oversize path.
  EXPECT_LE(after.slab_allocs - before.slab_allocs, 1u);
  EXPECT_EQ(after.heap_allocs, before.heap_allocs);
}

TEST(MbufPool, ConcurrentForeignReturnsUnderOwnerTraffic) {
  // Two foreign slots hammer the Treiber stack while the owner keeps
  // allocating and freeing locally; TSan checks the interleavings.
  constexpr std::size_t kPerThread = 128;
  PacketBurst a = PacketBuffer::alloc_burst(kPerThread);
  PacketBurst b = PacketBuffer::alloc_burst(kPerThread);
  const MbufPoolStats before = MbufPool::for_slot(0).stats();

  std::thread t1([&a] {
    exec::ScopedWorkerSlot slot(1);
    a.clear();
  });
  std::thread t2([&b] {
    exec::ScopedWorkerSlot slot(2);
    b.clear();
  });
  for (int i = 0; i < 200; ++i) {
    PacketBuffer::free_burst(PacketBuffer::alloc_burst(8));
  }
  t1.join();
  t2.join();

  const MbufPoolStats after = MbufPool::for_slot(0).stats();
  EXPECT_EQ(after.cross_worker_frees - before.cross_worker_frees,
            2 * kPerThread);
}

#if defined(GTEST_HAS_DEATH_TEST) && !defined(NDEBUG)
TEST(MbufPoolDeathTest, FreeingLiveSegmentAsserts) {
  MbufPool pool(/*prealloc_segments=*/1, /*slab_segments=*/0);
  MbufSegment* seg = pool.alloc(64);
  ASSERT_EQ(seg->refcount.load(), 1u);
  // Returning a segment somebody still references is the double-free /
  // premature-free class of bug; debug builds refuse.
  EXPECT_DEATH(MbufPool::free_segment(seg), "still referenced");
  drop(seg);
}
#endif

TEST(PacketBufferRefcount, CloneSharesBytesUntilExplicitCopy) {
  auto bytes = pattern(48);
  PacketBuffer original = PacketBuffer::copy_of(bytes);
  EXPECT_FALSE(original.shared());

  PacketBuffer clone = original.clone();
  EXPECT_TRUE(original.shared());
  EXPECT_TRUE(clone.shared());
  // Same segment, same bytes — no copy happened.
  EXPECT_EQ(clone.data().data(), original.data().data());

  PacketBuffer deep = clone.copy();
  EXPECT_NE(deep.data().data(), original.data().data());
  deep.data()[0] = 0xFF;
  EXPECT_EQ(original[0], bytes[0]);

  // Dropping the last clone returns the original to exclusive ownership.
  { PacketBuffer sink = std::move(clone); }
  EXPECT_FALSE(original.shared());
}

TEST(PacketBufferRefcount, GeometryChangeOnCloneUnsharesAutomatically) {
  auto bytes = pattern(32, 5);
  PacketBuffer original = PacketBuffer::copy_of(bytes);
  PacketBuffer clone = original.clone();
  const std::uint8_t* shared_ptr = original.data().data();

  // push_front must not scribble headroom the sibling can see: the clone
  // silently goes private before its layout diverges.
  std::memset(clone.push_front(14).data(), 0xEE, 14);
  EXPECT_NE(clone.data().data(), shared_ptr);
  EXPECT_FALSE(original.shared());
  EXPECT_EQ(original.size(), bytes.size());
  EXPECT_EQ(std::memcmp(original.data().data(), bytes.data(), bytes.size()),
            0);
  EXPECT_EQ(clone.size(), bytes.size() + 14);
  EXPECT_EQ(std::memcmp(clone.data().data() + 14, bytes.data(), bytes.size()),
            0);
}

TEST(PacketBufferRefcount, ViewOnlyOpsStaySharedAndIndependent) {
  auto bytes = pattern(40);
  PacketBuffer original = PacketBuffer::copy_of(bytes);
  PacketBuffer clone = original.clone();

  // pull_front/trim adjust only this view's offsets; the sibling keeps
  // the full frame and the bytes are still shared.
  clone.pull_front(8);
  clone.trim(16);
  EXPECT_TRUE(original.shared());
  EXPECT_EQ(clone.size(), 16u);
  EXPECT_EQ(clone.data().data(), original.data().data() + 8);
  EXPECT_EQ(original.size(), bytes.size());
}

TEST(PacketBufferRefcount, UnshareCopiesOnlyWhenShared) {
  auto bytes = pattern(24);
  PacketBuffer original = PacketBuffer::copy_of(bytes);
  const std::uint8_t* before = original.data().data();
  original.unshare();  // exclusive: must be a no-op
  EXPECT_EQ(original.data().data(), before);

  PacketBuffer clone = original.clone();
  original.unshare();
  EXPECT_NE(original.data().data(), clone.data().data());
  EXPECT_FALSE(original.shared());
  EXPECT_FALSE(clone.shared());
  EXPECT_EQ(std::memcmp(original.data().data(), clone.data().data(),
                        bytes.size()),
            0);
}

// --- ESP zero-copy: encap and decap move offsets inside one segment ---

nnf::NfConfig esp_config(const char* local, const char* peer,
                         const char* spi_out, const char* spi_in,
                         const char* transform) {
  return {{"local_ip", local},
          {"peer_ip", peer},
          {"spi_out", spi_out},
          {"spi_in", spi_in},
          {"esp_transform", transform},
          {"enc_key", "000102030405060708090a0b0c0d0e0f"},
          {"auth_key",
           "202122232425262728292a2b2c2d2e2f"
           "303132333435363738393a3b3c3d3e3f"}};
}

PacketBuffer udp_frame(std::size_t payload_size) {
  UdpFrameSpec spec;
  spec.eth_src = MacAddress::from_id(1);
  spec.eth_dst = MacAddress::from_id(2);
  spec.ip_src = *Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *Ipv4Address::parse("10.8.0.5");
  spec.src_port = 5001;
  spec.dst_port = 5001;
  spec.payload = pattern(payload_size);
  return build_udp_frame(spec);
}

TEST(EspZeroCopy, GcmEncapDecapRoundTripStaysInOneSegment) {
  nnf::IpsecEndpoint initiator;
  nnf::IpsecEndpoint responder;
  ASSERT_TRUE(initiator
                  .configure(nnf::kDefaultContext,
                             esp_config("198.51.100.1", "198.51.100.2",
                                        "1001", "2002", "gcm"))
                  .is_ok());
  ASSERT_TRUE(responder
                  .configure(nnf::kDefaultContext,
                             esp_config("198.51.100.2", "198.51.100.1",
                                        "2002", "1001", "gcm"))
                  .is_ok());

  PacketBuffer frame = udp_frame(400);
  const std::vector<std::uint8_t> plain(frame.data().begin(),
                                        frame.data().end());
  const std::uint8_t* base = frame.data().data();
  const std::size_t headroom_before = frame.headroom();
  const std::size_t tailroom_before = frame.tailroom();
  ASSERT_EQ(headroom_before, PacketBuffer::kDefaultHeadroom);

  // Encap: pop inner Ethernet (14), prepend outer Eth+IP+ESP+IV (50) —
  // the output's first byte sits 36 before the input's within the SAME
  // segment; nothing was copied or reallocated.
  auto enc = initiator.process(nnf::kDefaultContext, 0, 0, std::move(frame));
  ASSERT_EQ(enc.size(), 1u);
  PacketBuffer& wire = enc[0].frame;
  EXPECT_EQ(wire.data().data(), base + 14 - 50);
  EXPECT_EQ(wire.headroom(), headroom_before - (50 - 14));
  // Trailer + ICV grew into the tailroom.
  EXPECT_LT(wire.tailroom(), tailroom_before);

  // Decap: authenticate+decrypt in place, then pure offset adjustment
  // back to the original geometry — same first byte as the input frame.
  auto dec = responder.process(nnf::kDefaultContext, 1, 0,
                               std::move(enc[0].frame));
  ASSERT_EQ(dec.size(), 1u);
  PacketBuffer& inner = dec[0].frame;
  EXPECT_EQ(inner.data().data(), base);
  EXPECT_EQ(inner.headroom(), headroom_before);
  EXPECT_EQ(inner.size(), plain.size());
  // Inner IP packet bytes identical (the Ethernet header is rebuilt).
  EXPECT_EQ(std::memcmp(inner.data().data() + 14, plain.data() + 14,
                        plain.size() - 14),
            0);
}

TEST(EspZeroCopy, CbcEncapReusesTheInputSegment) {
  nnf::IpsecEndpoint initiator;
  nnf::IpsecEndpoint responder;
  ASSERT_TRUE(initiator
                  .configure(nnf::kDefaultContext,
                             esp_config("198.51.100.1", "198.51.100.2",
                                        "1001", "2002", "cbc-hmac"))
                  .is_ok());
  ASSERT_TRUE(responder
                  .configure(nnf::kDefaultContext,
                             esp_config("198.51.100.2", "198.51.100.1",
                                        "2002", "1001", "cbc-hmac"))
                  .is_ok());

  PacketBuffer frame = udp_frame(256);
  const std::vector<std::uint8_t> plain(frame.data().begin(),
                                        frame.data().end());
  const std::uint8_t* base = frame.data().data();

  // CBC stages padding/ICV in scratch vectors (not length-preserving),
  // but the wire frame is rebuilt into the input's own segment: no pool
  // allocation per packet.
  auto enc = initiator.process(nnf::kDefaultContext, 0, 0, std::move(frame));
  ASSERT_EQ(enc.size(), 1u);
  EXPECT_EQ(enc[0].frame.data().data(), base);

  auto dec = responder.process(nnf::kDefaultContext, 1, 0,
                               std::move(enc[0].frame));
  ASSERT_EQ(dec.size(), 1u);
  // Decap rebuilds the plaintext at the default offset and prepends the
  // inner Ethernet header into headroom — still the same segment.
  EXPECT_EQ(dec[0].frame.data().data(), base - packet::kEthernetHeaderSize);
  ASSERT_EQ(dec[0].frame.size(), plain.size());
  EXPECT_EQ(std::memcmp(dec[0].frame.data().data() + 14, plain.data() + 14,
                        plain.size() - 14),
            0);
}

}  // namespace
}  // namespace nnfv::packet
