// IPsec ESP endpoint tests: real encrypt/decrypt roundtrips between two
// endpoints, wire-format properties, authentication, anti-replay, and
// multi-tunnel (sharable) contexts.
#include <gtest/gtest.h>

#include "crypto/backend.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nnfv::nnf {
namespace {

constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
constexpr const char* kAuthKey =
    "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f";

NfConfig initiator_config() {
  return {{"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
          {"spi_out", "1001"},          {"spi_in", "2002"},
          {"enc_key", kEncKey},         {"auth_key", kAuthKey}};
}

NfConfig responder_config() {
  return {{"local_ip", "198.51.100.2"}, {"peer_ip", "198.51.100.1"},
          {"spi_out", "2002"},          {"spi_in", "1001"},
          {"enc_key", kEncKey},         {"auth_key", kAuthKey}};
}

packet::PacketBuffer plaintext_frame(std::size_t payload_size = 200,
                                     std::uint64_t seed = 1) {
  util::Rng rng(seed);
  static std::vector<std::uint8_t> payload;
  payload = rng.bytes(payload_size);
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
  spec.src_port = 5001;
  spec.dst_port = 5001;
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

IpsecEndpoint make_endpoint(const NfConfig& config) {
  IpsecEndpoint endpoint;
  EXPECT_TRUE(endpoint.configure(kDefaultContext, config).is_ok());
  return endpoint;
}

TEST(Ipsec, EncapsulateProducesEspPacket) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  auto outs =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame());
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 1u);

  auto eth = packet::parse_ethernet(outs[0].frame.data());
  ASSERT_TRUE(eth.is_ok());
  auto ip = packet::parse_ipv4(outs[0].frame.data().subspan(eth->wire_size()));
  ASSERT_TRUE(ip.is_ok());
  EXPECT_EQ(ip->protocol, packet::kIpProtoEsp);
  EXPECT_EQ(ip->src.to_string(), "198.51.100.1");
  EXPECT_EQ(ip->dst.to_string(), "198.51.100.2");
  auto esp = packet::parse_esp(
      outs[0].frame.data().subspan(eth->wire_size() + ip->header_size()));
  ASSERT_TRUE(esp.is_ok());
  EXPECT_EQ(esp->spi, 1001u);
  EXPECT_EQ(esp->sequence, 1u);
  EXPECT_EQ(initiator.stats().encapsulated, 1u);
}

TEST(Ipsec, CiphertextHidesPlaintext) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  auto plain = plaintext_frame(300, 7);
  // Remember a distinctive plaintext run (the inner IP src address bytes).
  const std::vector<std::uint8_t> inner(plain.data().begin() + 14,
                                        plain.data().begin() + 34);
  auto outs = initiator.process(kDefaultContext, 0, 0, std::move(plain));
  ASSERT_EQ(outs.size(), 1u);
  const auto wire = outs[0].frame.data();
  // The inner header must not appear verbatim in the ESP packet.
  auto it = std::search(wire.begin() + 34, wire.end(), inner.begin(),
                        inner.end());
  EXPECT_EQ(it, wire.end());
}

TEST(Ipsec, TunnelRoundTripRestoresInnerPacket) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());

  auto original = plaintext_frame(500, 3);
  // Capture the inner IP packet for comparison.
  const std::vector<std::uint8_t> inner_before(original.data().begin() + 14,
                                               original.data().end());

  auto encrypted =
      initiator.process(kDefaultContext, 0, 0, std::move(original));
  ASSERT_EQ(encrypted.size(), 1u);
  auto decrypted = responder.process(kDefaultContext, 1, 0,
                                     std::move(encrypted[0].frame));
  ASSERT_EQ(decrypted.size(), 1u);
  EXPECT_EQ(decrypted[0].port, 0u);

  const std::vector<std::uint8_t> inner_after(
      decrypted[0].frame.data().begin() + 14,
      decrypted[0].frame.data().end());
  EXPECT_EQ(inner_before, inner_after);
  EXPECT_EQ(responder.stats().decapsulated, 1u);
  EXPECT_EQ(responder.stats().auth_failures, 0u);
}

class IpsecPayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IpsecPayloadSizes, RoundTripAnySize) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto original = plaintext_frame(GetParam(), GetParam() + 11);
  const std::vector<std::uint8_t> inner_before(original.data().begin() + 14,
                                               original.data().end());
  auto enc = initiator.process(kDefaultContext, 0, 0, std::move(original));
  ASSERT_EQ(enc.size(), 1u);
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  ASSERT_EQ(dec.size(), 1u);
  const std::vector<std::uint8_t> inner_after(
      dec[0].frame.data().begin() + 14, dec[0].frame.data().end());
  EXPECT_EQ(inner_before, inner_after);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IpsecPayloadSizes,
                         ::testing::Values(0, 1, 14, 15, 16, 100, 576, 1408));

TEST(Ipsec, SequenceNumbersIncrease) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  for (std::uint32_t i = 1; i <= 5; ++i) {
    auto outs =
        initiator.process(kDefaultContext, 0, 0, plaintext_frame(64, i));
    ASSERT_EQ(outs.size(), 1u);
    auto eth = packet::parse_ethernet(outs[0].frame.data());
    auto esp = packet::parse_esp(
        outs[0].frame.data().subspan(eth->wire_size() + 20));
    EXPECT_EQ(esp->sequence, i);
  }
}

TEST(Ipsec, TamperedPacketFailsAuthentication) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto enc =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(128, 9));
  ASSERT_EQ(enc.size(), 1u);
  // Flip one ciphertext byte (beyond headers: eth 14 + ip 20 + esp 8 + iv 16).
  enc[0].frame[60] ^= 0x01;
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  EXPECT_TRUE(dec.empty());
  EXPECT_EQ(responder.stats().auth_failures, 1u);
}

TEST(Ipsec, ReplayedPacketDropped) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto enc =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(128, 4));
  ASSERT_EQ(enc.size(), 1u);
  packet::PacketBuffer copy = packet::PacketBuffer::copy_of(enc[0].frame.data());
  ASSERT_EQ(responder
                .process(kDefaultContext, 1, 0, std::move(enc[0].frame))
                .size(),
            1u);
  auto replay = responder.process(kDefaultContext, 1, 0, std::move(copy));
  EXPECT_TRUE(replay.empty());
  EXPECT_EQ(responder.stats().replay_drops, 1u);
}

TEST(Ipsec, OutOfOrderWithinWindowAccepted) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  std::vector<packet::PacketBuffer> encrypted;
  for (int i = 0; i < 3; ++i) {
    auto outs =
        initiator.process(kDefaultContext, 0, 0, plaintext_frame(64, i));
    encrypted.push_back(std::move(outs[0].frame));
  }
  // Deliver 3, 1, 2 — all must decrypt.
  EXPECT_EQ(responder
                .process(kDefaultContext, 1, 0, std::move(encrypted[2]))
                .size(),
            1u);
  EXPECT_EQ(responder
                .process(kDefaultContext, 1, 0, std::move(encrypted[0]))
                .size(),
            1u);
  EXPECT_EQ(responder
                .process(kDefaultContext, 1, 0, std::move(encrypted[1]))
                .size(),
            1u);
  EXPECT_EQ(responder.stats().replay_drops, 0u);
}

TEST(Ipsec, WrongSpiDropped) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  NfConfig bad = responder_config();
  bad["spi_in"] = "9999";  // expects a different SPI
  IpsecEndpoint responder = make_endpoint(bad);
  auto enc =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(64, 5));
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  EXPECT_TRUE(dec.empty());
  EXPECT_EQ(responder.stats().no_sa, 1u);
}

TEST(Ipsec, WrongDestinationDropped) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  NfConfig other = responder_config();
  other["local_ip"] = "198.51.100.77";  // not the tunnel destination
  IpsecEndpoint responder = make_endpoint(other);
  auto enc =
      initiator.process(kDefaultContext, 0, 0, plaintext_frame(64, 6));
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  EXPECT_TRUE(dec.empty());
}

TEST(Ipsec, UnconfiguredContextDropsTraffic) {
  IpsecEndpoint endpoint;
  auto outs = endpoint.process(kDefaultContext, 0, 0, plaintext_frame());
  EXPECT_TRUE(outs.empty());
  EXPECT_EQ(endpoint.stats().no_sa, 1u);
}

TEST(Ipsec, MultiTunnelContextsAreIsolated) {
  // One instance, two tunnels with different keys — the sharable-NNF case.
  IpsecEndpoint shared;
  ASSERT_TRUE(shared.configure(0, initiator_config()).is_ok());
  ASSERT_TRUE(shared.add_context(1).is_ok());
  NfConfig second = initiator_config();
  second["spi_out"] = "3003";
  second["enc_key"] = "ffeeddccbbaa99887766554433221100";
  ASSERT_TRUE(shared.configure(1, second).is_ok());

  auto out0 = shared.process(0, 0, 0, plaintext_frame(100, 1));
  auto out1 = shared.process(1, 0, 0, plaintext_frame(100, 1));
  ASSERT_EQ(out0.size(), 1u);
  ASSERT_EQ(out1.size(), 1u);

  auto spi_of = [](const packet::PacketBuffer& frame) {
    auto esp = packet::parse_esp(frame.data().subspan(34));
    return esp->spi;
  };
  EXPECT_EQ(spi_of(out0[0].frame), 1001u);
  EXPECT_EQ(spi_of(out1[0].frame), 3003u);
  // Same plaintext, different keys -> different ciphertext bodies.
  EXPECT_NE(std::vector<std::uint8_t>(out0[0].frame.data().begin() + 42,
                                      out0[0].frame.data().end()),
            std::vector<std::uint8_t>(out1[0].frame.data().begin() + 42,
                                      out1[0].frame.data().end()));
}

TEST(Ipsec, RemoveContextDropsTunnel) {
  IpsecEndpoint endpoint;
  ASSERT_TRUE(endpoint.add_context(1).is_ok());
  ASSERT_TRUE(endpoint.configure(1, initiator_config()).is_ok());
  ASSERT_TRUE(endpoint.remove_context(1).is_ok());
  auto outs = endpoint.process(1, 0, 0, plaintext_frame());
  EXPECT_TRUE(outs.empty());
}

TEST(Ipsec, ConfigValidation) {
  IpsecEndpoint endpoint;
  NfConfig config = initiator_config();
  config["enc_key"] = "short";
  EXPECT_FALSE(endpoint.configure(kDefaultContext, config).is_ok());
  config = initiator_config();
  config["spi_out"] = "0";
  EXPECT_FALSE(endpoint.configure(kDefaultContext, config).is_ok());
  config = initiator_config();
  config["local_ip"] = "not-an-ip";
  EXPECT_FALSE(endpoint.configure(kDefaultContext, config).is_ok());
  config = initiator_config();
  config["bogus"] = "1";
  EXPECT_FALSE(endpoint.configure(kDefaultContext, config).is_ok());
}

TEST(Ipsec, EspOverheadIsBounded) {
  // Tunnel-mode ESP adds a predictable overhead. GCM (the default):
  // new eth (14) + outer IP (20) + ESP (8) + IV (8) + pad (<= 3) +
  // pad_len + next_hdr (2) + ICV (16). cbc-hmac: IV is 16 and padding
  // runs to the 16-byte block size.
  IpsecEndpoint gcm = make_endpoint(initiator_config());
  NfConfig cbc_config = initiator_config();
  cbc_config["esp_transform"] = "cbc-hmac";
  IpsecEndpoint cbc = make_endpoint(cbc_config);
  for (std::size_t size : {0u, 100u, 1000u, 1408u}) {
    auto plain = plaintext_frame(size, size);
    const std::size_t inner_ip_len = plain.size() - 14;

    packet::PacketBuffer copy = packet::PacketBuffer::copy_of(plain.data());
    auto outs = gcm.process(kDefaultContext, 0, 0, std::move(plain));
    ASSERT_EQ(outs.size(), 1u);
    const std::size_t gcm_overhead = outs[0].frame.size() - 14 - inner_ip_len;
    EXPECT_GE(gcm_overhead, 20u + 8u + 8u + 2u + 16u);
    EXPECT_LE(gcm_overhead, 20u + 8u + 8u + 3u + 2u + 16u);

    auto cbc_outs = cbc.process(kDefaultContext, 0, 0, std::move(copy));
    ASSERT_EQ(cbc_outs.size(), 1u);
    const std::size_t cbc_overhead =
        cbc_outs[0].frame.size() - 14 - inner_ip_len;
    EXPECT_GE(cbc_overhead, 20u + 8u + 16u + 2u + 16u);
    EXPECT_LE(cbc_overhead, 20u + 8u + 16u + 16u + 2u + 16u);
    // The stream-mode transform never pads past 4-byte alignment, so it
    // is strictly leaner on the wire.
    EXPECT_LT(gcm_overhead, cbc_overhead);
  }
}

TEST(Ipsec, DefaultTransformIsGcm) {
  // RFC 4106 wire shape: ESP header, then an 8-byte explicit IV carrying
  // the 64-bit sequence counter, ciphertext, 16-byte ICV.
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  auto outs = initiator.process(kDefaultContext, 0, 0, plaintext_frame());
  ASSERT_EQ(outs.size(), 1u);
  const auto wire = outs[0].frame.data();
  auto esp = packet::parse_esp(wire.subspan(34));
  ASSERT_TRUE(esp.is_ok());
  EXPECT_EQ(esp->sequence, 1u);
  // Explicit IV = be64(seq).
  const std::uint8_t want_iv[8] = {0, 0, 0, 0, 0, 0, 0, 1};
  EXPECT_TRUE(std::equal(want_iv, want_iv + 8, wire.begin() + 42));
}

TEST(Ipsec, TransformsDoNotInteroperate) {
  // A GCM initiator's packets must fail cleanly (auth failure, no crash,
  // no plaintext release) at a cbc-hmac responder — the transform is part
  // of the SA, not negotiated on the wire.
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  NfConfig cbc_config = responder_config();
  cbc_config["esp_transform"] = "cbc-hmac";
  IpsecEndpoint responder = make_endpoint(cbc_config);
  auto enc = initiator.process(kDefaultContext, 0, 0, plaintext_frame());
  ASSERT_EQ(enc.size(), 1u);
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  EXPECT_TRUE(dec.empty());
  EXPECT_EQ(responder.stats().decapsulated, 0u);
}

TEST(Ipsec, CbcHmacRoundTripStillWorks) {
  NfConfig init = initiator_config();
  NfConfig resp = responder_config();
  init["esp_transform"] = "cbc-hmac";
  resp["esp_transform"] = "cbc-hmac";
  IpsecEndpoint initiator = make_endpoint(init);
  IpsecEndpoint responder = make_endpoint(resp);
  auto original = plaintext_frame(500, 3);
  const std::vector<std::uint8_t> inner_before(original.data().begin() + 14,
                                               original.data().end());
  auto enc = initiator.process(kDefaultContext, 0, 0, std::move(original));
  ASSERT_EQ(enc.size(), 1u);
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  ASSERT_EQ(dec.size(), 1u);
  const std::vector<std::uint8_t> inner_after(
      dec[0].frame.data().begin() + 14, dec[0].frame.data().end());
  EXPECT_EQ(inner_before, inner_after);
}

TEST(Ipsec, GcmSaltFromExtendedKeyChangesWireAndRoundTrips) {
  // 40-hex enc_key = AES-128 key + RFC 4106 salt. The salt feeds the GCM
  // nonce, so two tunnels differing only in salt must produce different
  // ciphertext — and both peers need the same salt to interoperate.
  NfConfig init = initiator_config();
  NfConfig resp = responder_config();
  const std::string salted_key = std::string(kEncKey) + "aabbccdd";
  init["enc_key"] = salted_key;
  resp["enc_key"] = salted_key;
  IpsecEndpoint initiator = make_endpoint(init);
  IpsecEndpoint responder = make_endpoint(resp);
  IpsecEndpoint zero_salt = make_endpoint(initiator_config());

  auto frame = plaintext_frame(300, 5);
  packet::PacketBuffer copy = packet::PacketBuffer::copy_of(frame.data());
  auto salted = initiator.process(kDefaultContext, 0, 0, std::move(frame));
  auto unsalted = zero_salt.process(kDefaultContext, 0, 0, std::move(copy));
  ASSERT_EQ(salted.size(), 1u);
  ASSERT_EQ(unsalted.size(), 1u);
  EXPECT_NE(std::vector<std::uint8_t>(salted[0].frame.data().begin() + 50,
                                      salted[0].frame.data().end()),
            std::vector<std::uint8_t>(unsalted[0].frame.data().begin() + 50,
                                      unsalted[0].frame.data().end()));

  auto dec = responder.process(kDefaultContext, 1, 0,
                               std::move(salted[0].frame));
  ASSERT_EQ(dec.size(), 1u);
  EXPECT_EQ(responder.stats().auth_failures, 0u);
}

TEST(Ipsec, GcmTamperedIvFailsAuthentication) {
  // The explicit IV feeds the nonce: flipping it must break the tag even
  // though the IV itself is not part of the AAD.
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto enc = initiator.process(kDefaultContext, 0, 0, plaintext_frame());
  ASSERT_EQ(enc.size(), 1u);
  enc[0].frame[45] ^= 0x01;  // eth 14 + ip 20 + esp 8 = 42; IV at 42..49
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  EXPECT_TRUE(dec.empty());
  EXPECT_EQ(responder.stats().auth_failures, 1u);
}

TEST(Ipsec, GcmTamperedIcvFailsAuthentication) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto enc = initiator.process(kDefaultContext, 0, 0, plaintext_frame());
  ASSERT_EQ(enc.size(), 1u);
  enc[0].frame[enc[0].frame.size() - 1] ^= 0x01;  // last ICV byte
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  EXPECT_TRUE(dec.empty());
  EXPECT_EQ(responder.stats().auth_failures, 1u);
}

TEST(Ipsec, InvalidTransformRejected) {
  IpsecEndpoint endpoint;
  NfConfig config = initiator_config();
  config["esp_transform"] = "chacha";
  EXPECT_FALSE(endpoint.configure(kDefaultContext, config).is_ok());
}

TEST(Ipsec, GcmDirectionsNeverShareANonce) {
  // Both directions run one enc_key + salt, so the per-direction SPI
  // must reach the GCM nonce: the initiator's packet #1 and the
  // responder's packet #1 (same plaintext, same sequence number, same
  // key) must NOT produce the same keystream — identical ciphertext
  // here would mean a reused (key, nonce) pair, which breaks GCM
  // entirely.
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto frame = plaintext_frame(300, 7);
  packet::PacketBuffer copy = packet::PacketBuffer::copy_of(frame.data());
  auto a = initiator.process(kDefaultContext, 0, 0, std::move(frame));
  auto b = responder.process(kDefaultContext, 0, 0, std::move(copy));
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  // Ciphertext starts after eth(14) + ip(20) + esp(8) + iv(8) = 50.
  EXPECT_NE(std::vector<std::uint8_t>(a[0].frame.data().begin() + 50,
                                      a[0].frame.data().end()),
            std::vector<std::uint8_t>(b[0].frame.data().begin() + 50,
                                      b[0].frame.data().end()));
}

TEST(Ipsec, EqualSpisRejected) {
  // The SPI is the only per-direction component of the nonce/IV
  // derivation, so spi_out == spi_in must not configure.
  IpsecEndpoint endpoint;
  NfConfig config = initiator_config();
  config["spi_in"] = config["spi_out"];
  EXPECT_FALSE(endpoint.configure(kDefaultContext, config).is_ok());
}

// ---------------------------------------------------------------------------
// Replay-window edge cases (64-entry window; sequence steered through the
// outbound_sa test hook so exact wire sequences reach the responder).
// ---------------------------------------------------------------------------

// Sends one packet with wire sequence `seq` from initiator to responder
// and reports whether the responder emitted it.
bool deliver_seq(IpsecEndpoint& initiator, IpsecEndpoint& responder,
                 std::uint64_t seq) {
  initiator.outbound_sa(kDefaultContext)->seq = seq - 1;  // encap adds 1
  auto enc = initiator.process(kDefaultContext, 0, 0,
                               plaintext_frame(64, seq));
  EXPECT_EQ(enc.size(), 1u);
  if (enc.size() != 1) return false;
  return responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame))
             .size() == 1;
}

TEST(Ipsec, ReplayWindowAdvanceAcrossBoundary) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  EXPECT_TRUE(deliver_seq(initiator, responder, 1));
  // A jump past the whole 64-entry window must reset the bitmap...
  EXPECT_TRUE(deliver_seq(initiator, responder, 70));
  // ...after which seq 6 (offset 64) is exactly one slot too old...
  EXPECT_FALSE(deliver_seq(initiator, responder, 6));
  EXPECT_EQ(responder.stats().replay_drops, 1u);
  // ...and seq 7 (offset 63) is the last slot still inside the window.
  EXPECT_TRUE(deliver_seq(initiator, responder, 7));
  EXPECT_EQ(responder.stats().replay_drops, 1u);
}

TEST(Ipsec, DuplicateAtWindowEdgeDropped) {
  IpsecEndpoint initiator = make_endpoint(initiator_config());
  IpsecEndpoint responder = make_endpoint(responder_config());
  EXPECT_TRUE(deliver_seq(initiator, responder, 64));
  // Offset 63: the very edge of the window, accepted once...
  EXPECT_TRUE(deliver_seq(initiator, responder, 1));
  // ...and only once — the edge bit must have been recorded.
  EXPECT_FALSE(deliver_seq(initiator, responder, 1));
  // The top of the window is likewise a duplicate.
  EXPECT_FALSE(deliver_seq(initiator, responder, 64));
  EXPECT_EQ(responder.stats().replay_drops, 2u);
}

// ---------------------------------------------------------------------------
// ESN (RFC 4304 64-bit extended sequence numbers).
// ---------------------------------------------------------------------------

NfConfig esn_config(NfConfig base) {
  base["esn"] = "on";
  return base;
}

TEST(Ipsec, EsnRoundTripOnEveryBackend) {
  for (const crypto::CryptoBackend* backend : crypto::usable_backends()) {
    crypto::ScopedBackendOverride override_scope(*backend);
    IpsecEndpoint initiator = make_endpoint(esn_config(initiator_config()));
    IpsecEndpoint responder = make_endpoint(esn_config(responder_config()));
    auto original = plaintext_frame(500, 3);
    const std::vector<std::uint8_t> inner_before(
        original.data().begin() + 14, original.data().end());
    auto enc =
        initiator.process(kDefaultContext, 0, 0, std::move(original));
    ASSERT_EQ(enc.size(), 1u) << backend->name();
    auto dec =
        responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
    ASSERT_EQ(dec.size(), 1u) << backend->name();
    const std::vector<std::uint8_t> inner_after(
        dec[0].frame.data().begin() + 14, dec[0].frame.data().end());
    EXPECT_EQ(inner_before, inner_after) << backend->name();
    EXPECT_EQ(responder.stats().auth_failures, 0u) << backend->name();
  }
}

TEST(Ipsec, EsnTamperedPacketFailsOnEveryBackend) {
  for (const crypto::CryptoBackend* backend : crypto::usable_backends()) {
    crypto::ScopedBackendOverride override_scope(*backend);
    IpsecEndpoint initiator = make_endpoint(esn_config(initiator_config()));
    IpsecEndpoint responder = make_endpoint(esn_config(responder_config()));
    auto enc =
        initiator.process(kDefaultContext, 0, 0, plaintext_frame(128, 9));
    ASSERT_EQ(enc.size(), 1u) << backend->name();
    enc[0].frame[60] ^= 0x01;  // a ciphertext byte
    auto dec =
        responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
    EXPECT_TRUE(dec.empty()) << backend->name();
    EXPECT_EQ(responder.stats().auth_failures, 1u) << backend->name();
  }
}

TEST(Ipsec, EsnSeqHiRolloverRoundTripsOnEveryBackend) {
  // An established tunnel crossing the 2^32 seq-lo boundary: the wire
  // seq field wraps to small values while the recovered 64-bit sequence
  // keeps climbing, so packets keep authenticating and the window never
  // treats the wrap as a replay.
  for (const crypto::CryptoBackend* backend : crypto::usable_backends()) {
    crypto::ScopedBackendOverride override_scope(*backend);
    IpsecEndpoint initiator = make_endpoint(esn_config(initiator_config()));
    IpsecEndpoint responder = make_endpoint(esn_config(responder_config()));
    const std::uint64_t boundary = 1ULL << 32;
    initiator.outbound_sa(kDefaultContext)->seq = boundary - 3;
    // Simulate the established session: the responder has authenticated
    // everything up to the same point.
    responder.inbound_sa(kDefaultContext)->replay_top = boundary - 3;
    responder.inbound_sa(kDefaultContext)->replay_bitmap = 1;
    for (int i = 0; i < 6; ++i) {
      auto enc = initiator.process(kDefaultContext, 0, 0,
                                   plaintext_frame(100, i));
      ASSERT_EQ(enc.size(), 1u) << backend->name() << " packet " << i;
      auto dec = responder.process(kDefaultContext, 1, 0,
                                   std::move(enc[0].frame));
      ASSERT_EQ(dec.size(), 1u) << backend->name() << " packet " << i;
    }
    // The recovered high half advanced past the boundary.
    EXPECT_EQ(responder.inbound_sa(kDefaultContext)->replay_top,
              boundary + 3)
        << backend->name();
    EXPECT_EQ(responder.stats().auth_failures, 0u) << backend->name();
    EXPECT_EQ(responder.stats().replay_drops, 0u) << backend->name();
  }
}

TEST(Ipsec, EsnWrongSeqHiFailsAuthentication) {
  // A packet whose seq-lo lands below the responder's window bottom is
  // inferred to belong to the *next* 2^32 cycle (RFC 4304 A2). The
  // sender's actual seq-hi was 0, so the tag — computed over the
  // recovered hi — must fail: an attacker cannot replay an old cycle's
  // packet into a window that has moved on.
  for (const crypto::CryptoBackend* backend : crypto::usable_backends()) {
    crypto::ScopedBackendOverride override_scope(*backend);
    IpsecEndpoint initiator = make_endpoint(esn_config(initiator_config()));
    IpsecEndpoint responder = make_endpoint(esn_config(responder_config()));
    auto enc = initiator.process(kDefaultContext, 0, 0,
                                 plaintext_frame(128, 5));
    ASSERT_EQ(enc.size(), 1u) << backend->name();
    // Window far ahead: top at hi=1, lo=1000 -> wire seq 1 recovers hi=2.
    responder.inbound_sa(kDefaultContext)->replay_top = (1ULL << 32) | 1000;
    auto dec =
        responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
    EXPECT_TRUE(dec.empty()) << backend->name();
    EXPECT_EQ(responder.stats().auth_failures, 1u) << backend->name();
    EXPECT_EQ(responder.stats().replay_drops, 0u) << backend->name();
  }
}

TEST(Ipsec, EsnCbcHmacRoundTripAndRollover) {
  // ESN is transform-independent: the cbc-hmac path authenticates the
  // implicit seq-hi suffix (RFC 4303 §2.2.1) instead of widening an AAD.
  NfConfig init = esn_config(initiator_config());
  NfConfig resp = esn_config(responder_config());
  init["esp_transform"] = "cbc-hmac";
  resp["esp_transform"] = "cbc-hmac";
  IpsecEndpoint initiator = make_endpoint(init);
  IpsecEndpoint responder = make_endpoint(resp);
  const std::uint64_t boundary = 1ULL << 32;
  initiator.outbound_sa(kDefaultContext)->seq = boundary - 2;
  responder.inbound_sa(kDefaultContext)->replay_top = boundary - 2;
  responder.inbound_sa(kDefaultContext)->replay_bitmap = 1;
  for (int i = 0; i < 4; ++i) {
    auto enc = initiator.process(kDefaultContext, 0, 0,
                                 plaintext_frame(200, i));
    ASSERT_EQ(enc.size(), 1u);
    auto dec =
        responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
    ASSERT_EQ(dec.size(), 1u) << "packet " << i;
  }
  EXPECT_EQ(responder.inbound_sa(kDefaultContext)->replay_top, boundary + 2);
  EXPECT_EQ(responder.stats().auth_failures, 0u);
}

TEST(Ipsec, EsnMismatchFailsCleanly) {
  // esn is SA configuration, not negotiated on the wire: an ESN sender's
  // packets (12-byte AAD) must fail auth at a non-ESN receiver (8-byte
  // AAD) even while seq-hi is still zero.
  IpsecEndpoint initiator = make_endpoint(esn_config(initiator_config()));
  IpsecEndpoint responder = make_endpoint(responder_config());
  auto enc = initiator.process(kDefaultContext, 0, 0, plaintext_frame());
  ASSERT_EQ(enc.size(), 1u);
  auto dec =
      responder.process(kDefaultContext, 1, 0, std::move(enc[0].frame));
  EXPECT_TRUE(dec.empty());
  EXPECT_EQ(responder.stats().auth_failures, 1u);
}

TEST(Ipsec, EsnConfigValidation) {
  IpsecEndpoint endpoint;
  NfConfig config = initiator_config();
  config["esn"] = "banana";
  EXPECT_FALSE(endpoint.configure(kDefaultContext, config).is_ok());
}

TEST(Ipsec, EsnBurstRoundTrip) {
  // The burst path shares parse_esp_ingress, so the per-packet seq-hi
  // recovery feeds AAD + replay there too — across a rollover.
  IpsecEndpoint initiator = make_endpoint(esn_config(initiator_config()));
  IpsecEndpoint responder = make_endpoint(esn_config(responder_config()));
  const std::uint64_t boundary = 1ULL << 32;
  initiator.outbound_sa(kDefaultContext)->seq = boundary - 4;
  responder.inbound_sa(kDefaultContext)->replay_top = boundary - 4;
  responder.inbound_sa(kDefaultContext)->replay_bitmap = 1;
  packet::PacketBurst burst;
  for (int i = 0; i < 8; ++i) burst.push_back(plaintext_frame(120, i));
  auto enc = initiator.process_burst(kDefaultContext, 0, 0,
                                     std::move(burst));
  ASSERT_EQ(enc.size(), 8u);
  packet::PacketBurst black;
  for (auto& o : enc) black.push_back(std::move(o.frame));
  auto dec = responder.process_burst(kDefaultContext, 1, 0,
                                     std::move(black));
  EXPECT_EQ(dec.size(), 8u);
  EXPECT_EQ(responder.stats().auth_failures, 0u);
  EXPECT_EQ(responder.inbound_sa(kDefaultContext)->replay_top, boundary + 4);
}

TEST(Ipsec, MacRewriteConfigRespected) {
  NfConfig config = initiator_config();
  config["outer_src_mac"] = "02:00:00:00:00:aa";
  config["outer_dst_mac"] = "02:00:00:00:00:bb";
  IpsecEndpoint initiator = make_endpoint(config);
  auto outs = initiator.process(kDefaultContext, 0, 0, plaintext_frame());
  auto eth = packet::parse_ethernet(outs[0].frame.data());
  EXPECT_EQ(eth->src.to_string(), "02:00:00:00:00:aa");
  EXPECT_EQ(eth->dst.to_string(), "02:00:00:00:00:bb");
}

}  // namespace
}  // namespace nnfv::nnf
