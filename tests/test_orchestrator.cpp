// LocalOrchestrator tests on a fully assembled UniversalNode: deployment,
// NNF-vs-VNF decisions, rollback, teardown, updates.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "nffg/nffg.hpp"
#include "packet/builder.hpp"

namespace nnfv::core {
namespace {

nffg::NfFg simple_graph(const std::string& id, const std::string& nf_type,
                        std::optional<virt::BackendKind> hint = {}) {
  nffg::NfFg graph;
  graph.id = id;
  nffg::NfNode& nf = graph.add_nf("nf", nf_type);
  nf.backend_hint = hint;
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("nf", 0));
  graph.connect("r2", nffg::nf_port("nf", 1), nffg::endpoint_ref("wan"));
  graph.connect("r3", nffg::endpoint_ref("wan"), nffg::nf_port("nf", 1));
  graph.connect("r4", nffg::nf_port("nf", 0), nffg::endpoint_ref("lan"));
  return graph;
}

TEST(Orchestrator, DeploysSimpleGraphAsNative) {
  UniversalNode node;
  auto report = node.orchestrator().deploy(simple_graph("g1", "firewall"));
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report->placements.size(), 1u);
  // Default policy prefers the native implementation.
  EXPECT_EQ(report->placements[0].backend, virt::BackendKind::kNative);
  EXPECT_GT(report->flow_rules_installed, 0u);
  EXPECT_TRUE(node.orchestrator().has_graph("g1"));
  EXPECT_EQ(node.network().lsi_count(), 2u);
  EXPECT_EQ(node.orchestrator().graph_count(), 1u);
}

TEST(Orchestrator, BackendHintForcesVm) {
  UniversalNode node;
  auto report = node.orchestrator().deploy(
      simple_graph("g1", "ipsec", virt::BackendKind::kVm));
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->placements[0].backend, virt::BackendKind::kVm);
  // The VM reserves its Table 1 RAM on the node.
  EXPECT_GT(node.resources().ram().used(), 380ULL * virt::kMiB);
  EXPECT_EQ(report->ready_latency, 9 * sim::kSecond);
}

TEST(Orchestrator, RejectsInvalidGraph) {
  UniversalNode node;
  nffg::NfFg graph = simple_graph("g1", "firewall");
  graph.connect("r1", nffg::endpoint_ref("lan"),
                nffg::nf_port("nf", 0));  // duplicate rule id
  auto report = node.orchestrator().deploy(graph);
  EXPECT_FALSE(report.is_ok());
  EXPECT_FALSE(node.orchestrator().has_graph("g1"));
  EXPECT_EQ(node.network().lsi_count(), 1u);  // nothing leaked
}

TEST(Orchestrator, RejectsDuplicateGraphId) {
  UniversalNode node;
  ASSERT_TRUE(
      node.orchestrator().deploy(simple_graph("g1", "firewall")).is_ok());
  auto again = node.orchestrator().deploy(simple_graph("g1", "nat"));
  EXPECT_FALSE(again.is_ok());
  EXPECT_EQ(again.status().code(), util::ErrorCode::kAlreadyExists);
}

TEST(Orchestrator, RejectsUnknownEndpointInterface) {
  UniversalNode node;
  nffg::NfFg graph = simple_graph("g1", "firewall");
  graph.endpoints[0].interface = "eth42";
  auto report = node.orchestrator().deploy(graph);
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(node.network().lsi_count(), 1u);
}

TEST(Orchestrator, UnknownFunctionalTypeFailsAndRollsBack) {
  UniversalNode node;
  nffg::NfFg graph = simple_graph("g1", "firewall");
  graph.add_nf("mystery", "quantum-dpi");
  graph.connect("r5", nffg::nf_port("nf", 1), nffg::nf_port("mystery", 0));
  auto report = node.orchestrator().deploy(graph);
  EXPECT_FALSE(report.is_ok());
  // The firewall that deployed first was rolled back.
  EXPECT_EQ(node.compute().total_deployments(), 0u);
  EXPECT_EQ(node.network().lsi_count(), 1u);
  EXPECT_EQ(node.resources().ram().used(), 0u);
  EXPECT_EQ(node.catalog().status_of("firewall")->running_instances, 0u);
}

TEST(Orchestrator, FallsBackWhenHintedBackendUnavailable) {
  // Node without a VM driver: pinning to VM must fail cleanly.
  UniversalNodeConfig config;
  config.backends = {virt::BackendKind::kNative, virt::BackendKind::kDocker};
  UniversalNode node(config);
  auto report = node.orchestrator().deploy(
      simple_graph("g1", "ipsec", virt::BackendKind::kVm));
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), util::ErrorCode::kUnavailable);
}

TEST(Orchestrator, FallsBackToVnfWhenRamBlocksVm) {
  // RAM too small for a VM but fine for native: policy picks native; when
  // native is impossible too (empty catalog), deployment fails.
  UniversalNodeConfig config;
  config.capacity.ram_bytes = 64 * virt::kMiB;
  UniversalNode node(config);
  auto report = node.orchestrator().deploy(simple_graph("g1", "ipsec"));
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->placements[0].backend, virt::BackendKind::kNative);
}

TEST(Orchestrator, CandidateFallthroughOnResourceExhaustion) {
  // No native plugins; RAM fits Docker (24 MB) but not a VM (390 MB):
  // the scheduler ranks docker first anyway; force VM-first by removing
  // docker and dpdk -> deployment must fail with the VM error.
  UniversalNodeConfig config;
  config.builtin_nnf_plugins = false;
  config.capacity.ram_bytes = 64 * virt::kMiB;
  config.backends = {virt::BackendKind::kVm};
  UniversalNode node(config);
  auto report = node.orchestrator().deploy(simple_graph("g1", "ipsec"));
  EXPECT_FALSE(report.is_ok());
  EXPECT_EQ(report.status().code(), util::ErrorCode::kResourceExhausted);
}

TEST(Orchestrator, SecondGraphSharesNativeInstance) {
  UniversalNode node;
  auto first = node.orchestrator().deploy(simple_graph("gA", "ipsec"));
  ASSERT_TRUE(first.is_ok());
  auto second = node.orchestrator().deploy(simple_graph("gB", "ipsec"));
  ASSERT_TRUE(second.is_ok());
  EXPECT_FALSE(first->placements[0].reused_shared_instance);
  EXPECT_TRUE(second->placements[0].reused_shared_instance);
  EXPECT_EQ(node.catalog().status_of("ipsec")->running_instances, 1u);
  EXPECT_EQ(node.catalog().status_of("ipsec")->graphs.size(), 2u);
  // Shared activation is far cheaper than first boot.
  EXPECT_LT(second->ready_latency, first->ready_latency);
}

TEST(Orchestrator, RemoveTearsDownEverything) {
  UniversalNode node;
  ASSERT_TRUE(
      node.orchestrator().deploy(simple_graph("g1", "ipsec")).is_ok());
  const std::size_t lsi0_rules_before =
      node.network().base_lsi().flow_table().size();
  EXPECT_GT(lsi0_rules_before, 0u);

  ASSERT_TRUE(node.orchestrator().remove("g1").is_ok());
  EXPECT_FALSE(node.orchestrator().has_graph("g1"));
  EXPECT_EQ(node.network().lsi_count(), 1u);
  EXPECT_EQ(node.network().base_lsi().flow_table().size(), 0u);
  EXPECT_EQ(node.compute().total_deployments(), 0u);
  EXPECT_EQ(node.resources().ram().used(), 0u);
  EXPECT_EQ(node.catalog().status_of("ipsec")->running_instances, 0u);
  EXPECT_FALSE(node.orchestrator().remove("g1").is_ok());
}

TEST(Orchestrator, RemoveOneGraphKeepsSharedInstanceForOther) {
  UniversalNode node;
  ASSERT_TRUE(
      node.orchestrator().deploy(simple_graph("gA", "ipsec")).is_ok());
  ASSERT_TRUE(
      node.orchestrator().deploy(simple_graph("gB", "ipsec")).is_ok());
  ASSERT_TRUE(node.orchestrator().remove("gA").is_ok());
  EXPECT_EQ(node.catalog().status_of("ipsec")->running_instances, 1u);
  EXPECT_TRUE(node.catalog().status_of("ipsec")->graphs.contains("gB"));
  EXPECT_FALSE(node.catalog().status_of("ipsec")->graphs.contains("gA"));
  ASSERT_TRUE(node.orchestrator().remove("gB").is_ok());
  EXPECT_EQ(node.catalog().status_of("ipsec")->running_instances, 0u);
}

TEST(Orchestrator, UpdateNfReconfigures) {
  UniversalNode node;
  ASSERT_TRUE(node.orchestrator().deploy(simple_graph("g1", "nat")).is_ok());
  EXPECT_TRUE(node.orchestrator()
                  .update_nf("g1", "nf", {{"external_ip", "203.0.113.7"}})
                  .is_ok());
  EXPECT_FALSE(node.orchestrator()
                   .update_nf("g1", "ghost", {{"external_ip", "1.2.3.4"}})
                   .is_ok());
  EXPECT_FALSE(node.orchestrator()
                   .update_nf("gX", "nf", {{"external_ip", "1.2.3.4"}})
                   .is_ok());
  EXPECT_FALSE(
      node.orchestrator().update_nf("g1", "nf", {{"bogus", "x"}}).is_ok());
}

TEST(Orchestrator, GraphRecordExposesReport) {
  UniversalNode node;
  ASSERT_TRUE(
      node.orchestrator().deploy(simple_graph("g1", "firewall")).is_ok());
  auto record = node.orchestrator().graph("g1");
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value()->graph.id, "g1");
  EXPECT_EQ(record.value()->deployments.size(), 1u);
  EXPECT_EQ(record.value()->report.placements.size(), 1u);
  EXPECT_FALSE(node.orchestrator().graph("gX").is_ok());
  EXPECT_EQ(node.orchestrator().graph_ids().size(), 1u);
}

TEST(Orchestrator, MixedBackendChain) {
  // One graph mixing a native NAT, a Docker firewall and a VM ipsec —
  // "complex services that include VNFs created with different
  // technologies".
  UniversalNode node;
  nffg::NfFg graph;
  graph.id = "mixed";
  graph.add_nf("fw", "firewall").backend_hint = virt::BackendKind::kDocker;
  graph.add_nf("nat", "nat").backend_hint = virt::BackendKind::kNative;
  graph.add_nf("vpn", "ipsec").backend_hint = virt::BackendKind::kVm;
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("fw", 0));
  graph.connect("r2", nffg::nf_port("fw", 1), nffg::nf_port("nat", 0));
  graph.connect("r3", nffg::nf_port("nat", 1), nffg::nf_port("vpn", 0));
  graph.connect("r4", nffg::nf_port("vpn", 1), nffg::endpoint_ref("wan"));
  graph.connect("r5", nffg::endpoint_ref("wan"), nffg::nf_port("vpn", 1));
  graph.connect("r6", nffg::nf_port("vpn", 0), nffg::nf_port("nat", 1));
  graph.connect("r7", nffg::nf_port("nat", 0), nffg::nf_port("fw", 1));
  graph.connect("r8", nffg::nf_port("fw", 0), nffg::endpoint_ref("lan"));

  auto report = node.orchestrator().deploy(graph);
  ASSERT_TRUE(report.is_ok());
  std::map<std::string, virt::BackendKind> backends;
  for (const auto& placement : report->placements) {
    backends[placement.nf_id] = placement.backend;
  }
  EXPECT_EQ(backends.at("fw"), virt::BackendKind::kDocker);
  EXPECT_EQ(backends.at("nat"), virt::BackendKind::kNative);
  EXPECT_EQ(backends.at("vpn"), virt::BackendKind::kVm);
  // Ready latency is dominated by the VM boot.
  EXPECT_EQ(report->ready_latency, 9 * sim::kSecond);
}

TEST(Orchestrator, NodeDescribeReflectsState) {
  UniversalNode node;
  ASSERT_TRUE(
      node.orchestrator().deploy(simple_graph("g1", "ipsec")).is_ok());
  json::Value doc = node.describe();
  EXPECT_DOUBLE_EQ(doc.get_number("lsi_count"), 2.0);
  bool found = false;
  for (const json::Value& nf : doc.get("native_functions")->as_array()) {
    if (nf.get_string("functional_type") == "ipsec") {
      found = true;
      EXPECT_DOUBLE_EQ(nf.get_number("running_instances"), 1.0);
      EXPECT_DOUBLE_EQ(nf.get_number("serving_graphs"), 1.0);
      EXPECT_TRUE(nf.get_bool("sharable", false));
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nnfv::core
