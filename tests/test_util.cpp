// Tests for util: Status/Result, strings, RNG, byte order, logging.
#include <gtest/gtest.h>

#include "util/byteorder.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace nnfv::util {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status status = not_found("graph 'g1'");
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "graph 'g1'");
  EXPECT_EQ(status.to_string(), "not_found: graph 'g1'");
}

TEST(Status, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(invalid_argument("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(not_found("x").code(), ErrorCode::kNotFound);
  EXPECT_EQ(already_exists("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(resource_exhausted("x").code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(unavailable("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(failed_precondition("x").code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(unimplemented("x").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(internal_error("x").code(), ErrorCode::kInternal);
}

TEST(Status, ErrorCodeNamesAreStable) {
  EXPECT_EQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_EQ(error_code_name(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(error_code_name(ErrorCode::kResourceExhausted),
            "resource_exhausted");
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(Result, HoldsError) {
  Result<int> result = not_found("nope");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

TEST(Result, MoveOutValue) {
  Result<std::string> result(std::string(1000, 'x'));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 1000u);
}

TEST(Result, ConstructedFromOkStatusBecomesInternalError) {
  Result<int> result = Status::ok();
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInternal);
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
  auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, IequalsIgnoresCase) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("rule.5", "rule."));
  EXPECT_FALSE(starts_with("rul", "rule."));
  EXPECT_TRUE(ends_with("image.qcow2", ".qcow2"));
  EXPECT_FALSE(ends_with("image", ".qcow2"));
}

TEST(Strings, HexRoundTrip) {
  std::vector<std::uint8_t> data = {0x00, 0x01, 0xAB, 0xFF, 0x7E};
  std::string hex = hex_encode(data);
  EXPECT_EQ(hex, "0001abff7e");
  std::vector<std::uint8_t> back;
  ASSERT_TRUE(hex_decode(hex, back));
  EXPECT_EQ(back, data);
}

TEST(Strings, HexDecodeAcceptsUppercase) {
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(hex_decode("ABCDEF", out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xAB, 0xCD, 0xEF}));
}

TEST(Strings, HexDecodeRejectsOddAndBadChars) {
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(hex_decode("abc", out));
  EXPECT_FALSE(hex_decode("zz", out));
}

TEST(Strings, ParseU64Basics) {
  std::uint64_t value = 0;
  EXPECT_TRUE(parse_u64("0", value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", value));
  EXPECT_EQ(value, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", value));  // overflow
  EXPECT_FALSE(parse_u64("", value));
  EXPECT_FALSE(parse_u64("12x", value));
  EXPECT_FALSE(parse_u64("-1", value));
}

TEST(Strings, FormatBytesPicksUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(5 * 1024 * 1024), "5.0 MB");
  EXPECT_EQ(format_bytes(1536ULL * 1024 * 1024), "1.5 GB");
}

TEST(Strings, FormatMbps) {
  EXPECT_EQ(format_mbps(796e6), "796.0 Mbps");
  EXPECT_EQ(format_mbps(1094.4e6), "1094.4 Mbps");
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformHitsBounds) {
  Rng rng(7);
  bool low = false;
  bool high = false;
  for (int i = 0; i < 10000 && !(low && high); ++i) {
    const std::uint64_t v = rng.uniform(0, 3);
    low = low || v == 0;
    high = high || v == 3;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.1);  // mean = 1/rate
}

TEST(Rng, BytesProducesRequestedLength) {
  Rng rng(13);
  EXPECT_EQ(rng.bytes(0).size(), 0u);
  EXPECT_EQ(rng.bytes(7).size(), 7u);
  EXPECT_EQ(rng.bytes(64).size(), 64u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---------------------------------------------------------------------------
// byte order
// ---------------------------------------------------------------------------

TEST(ByteOrder, RoundTrip16) {
  std::uint8_t buf[2];
  store_be16(buf, 0xBEEF);
  EXPECT_EQ(buf[0], 0xBE);
  EXPECT_EQ(buf[1], 0xEF);
  EXPECT_EQ(load_be16(buf), 0xBEEF);
}

TEST(ByteOrder, RoundTrip32) {
  std::uint8_t buf[4];
  store_be32(buf, 0xDEADBEEF);
  EXPECT_EQ(buf[0], 0xDE);
  EXPECT_EQ(load_be32(buf), 0xDEADBEEFu);
}

TEST(ByteOrder, RoundTrip64) {
  std::uint8_t buf[8];
  store_be64(buf, 0x0123456789ABCDEFULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xEF);
  EXPECT_EQ(load_be64(buf), 0x0123456789ABCDEFULL);
}

// ---------------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------------

TEST(Logging, CapturesAtOrAboveLevel) {
  std::string captured;
  set_log_capture(&captured);
  set_log_level(LogLevel::kInfo);
  NNFV_LOG(kInfo, "test") << "hello " << 42;
  NNFV_LOG(kDebug, "test") << "invisible";
  set_log_capture(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_NE(captured.find("hello 42"), std::string::npos);
  EXPECT_EQ(captured.find("invisible"), std::string::npos);
  EXPECT_NE(captured.find("INFO"), std::string::npos);
}

TEST(Logging, OffSilencesEverything) {
  std::string captured;
  set_log_capture(&captured);
  set_log_level(LogLevel::kOff);
  NNFV_LOG(kError, "test") << "should not appear";
  set_log_capture(nullptr);
  set_log_level(LogLevel::kWarn);
  EXPECT_TRUE(captured.empty());
}

}  // namespace
}  // namespace nnfv::util
