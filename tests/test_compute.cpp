// Compute layer tests: NfInstance timing/lifecycle, the generic VM/Docker/
// DPDK drivers, the template registry and the compute manager dispatch.
#include <gtest/gtest.h>

#include "compute/docker_driver.hpp"
#include "compute/dpdk_driver.hpp"
#include "compute/instance.hpp"
#include "compute/manager.hpp"
#include "compute/templates.hpp"
#include "compute/vm_driver.hpp"
#include "core/repository.hpp"
#include "nnf/bridge.hpp"
#include "packet/builder.hpp"

namespace nnfv::compute {
namespace {

packet::PacketBuffer test_frame(std::uint32_t src = 1, std::uint32_t dst = 2) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(src);
  spec.eth_dst = packet::MacAddress::from_id(dst);
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
  static const std::vector<std::uint8_t> payload(100, 7);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

// ---------------------------------------------------------------------------
// NfInstance
// ---------------------------------------------------------------------------

TEST(NfInstance, ProcessesAfterServiceDelay) {
  sim::Simulator simulator;
  NfInstance instance(
      1, "test", std::make_unique<nnf::Bridge>(),
      virt::CostModel(virt::BackendKind::kNative, {1000, 0.0}), simulator);
  ASSERT_TRUE(instance.start().is_ok());

  std::vector<sim::SimTime> egress_times;
  instance.set_egress(nnf::kDefaultContext,
                      [&](nnf::NfPortIndex, packet::PacketBuffer&&) {
                        egress_times.push_back(simulator.now());
                      });
  instance.inject(nnf::kDefaultContext, 0, test_frame());
  simulator.run();
  ASSERT_EQ(egress_times.size(), 1u);  // bridge floods to the other port
  // Service time = path_fixed(850) + nf_fixed(1000) + 0/byte.
  EXPECT_EQ(egress_times[0], 1850);
}

TEST(NfInstance, QueuesBackToBack) {
  sim::Simulator simulator;
  NfInstance instance(
      1, "test", std::make_unique<nnf::Bridge>(),
      virt::CostModel(virt::BackendKind::kNative, {1000, 0.0}), simulator);
  ASSERT_TRUE(instance.start().is_ok());
  int processed = 0;
  instance.set_egress(nnf::kDefaultContext,
                      [&](nnf::NfPortIndex, packet::PacketBuffer&&) {
                        ++processed;
                      });
  instance.inject(nnf::kDefaultContext, 0, test_frame());
  instance.inject(nnf::kDefaultContext, 0, test_frame());
  simulator.run();
  EXPECT_EQ(processed, 2);
  EXPECT_EQ(simulator.now(), 2 * 1850);
  EXPECT_EQ(instance.queue_stats().completed, 2u);
}

TEST(NfInstance, DropsWhenNotRunning) {
  sim::Simulator simulator;
  NfInstance instance(
      1, "test", std::make_unique<nnf::Bridge>(),
      virt::CostModel(virt::BackendKind::kNative, {0, 0.0}), simulator);
  instance.inject(nnf::kDefaultContext, 0, test_frame());  // created
  ASSERT_TRUE(instance.start().is_ok());
  ASSERT_TRUE(instance.stop().is_ok());
  instance.inject(nnf::kDefaultContext, 0, test_frame());  // stopped
  simulator.run();
  EXPECT_EQ(instance.dropped_not_running(), 2u);
}

TEST(NfInstance, LifecycleTransitions) {
  sim::Simulator simulator;
  NfInstance instance(
      1, "test", std::make_unique<nnf::Bridge>(),
      virt::CostModel(virt::BackendKind::kVm, {0, 0.0}), simulator);
  EXPECT_EQ(instance.state(), InstanceState::kCreated);
  EXPECT_FALSE(instance.stop().is_ok());  // not running yet
  EXPECT_TRUE(instance.start().is_ok());
  EXPECT_EQ(instance.state(), InstanceState::kRunning);
  EXPECT_TRUE(instance.stop().is_ok());
  EXPECT_TRUE(instance.destroy().is_ok());
  EXPECT_FALSE(instance.start().is_ok());  // destroyed is terminal
  EXPECT_EQ(std::string(instance_state_name(instance.state())), "destroyed");
}

TEST(NfInstance, EgressPerContext) {
  sim::Simulator simulator;
  auto bridge = std::make_unique<nnf::Bridge>();
  ASSERT_TRUE(bridge->add_context(1).is_ok());
  NfInstance instance(
      1, "test", std::move(bridge),
      virt::CostModel(virt::BackendKind::kNative, {0, 0.0}), simulator);
  ASSERT_TRUE(instance.start().is_ok());
  int ctx0 = 0;
  int ctx1 = 0;
  instance.set_egress(0, [&](nnf::NfPortIndex, packet::PacketBuffer&&) {
    ++ctx0;
  });
  instance.set_egress(1, [&](nnf::NfPortIndex, packet::PacketBuffer&&) {
    ++ctx1;
  });
  instance.inject(1, 0, test_frame());
  simulator.run();
  EXPECT_EQ(ctx0, 0);
  EXPECT_EQ(ctx1, 1);
  instance.clear_egress(1);
  instance.inject(1, 0, test_frame());
  simulator.run();
  EXPECT_EQ(ctx1, 1);  // egress cleared: output discarded
}

// ---------------------------------------------------------------------------
// Templates
// ---------------------------------------------------------------------------

TEST(Templates, BuiltinsCoverAllTypes) {
  auto registry = VnfTemplateRegistry::with_builtin_templates();
  EXPECT_EQ(registry.types().size(), 4u);
  for (const char* type : {"bridge", "firewall", "nat", "ipsec"}) {
    EXPECT_TRUE(registry.has(type)) << type;
    auto tmpl = registry.find(type);
    ASSERT_TRUE(tmpl.is_ok());
    auto function = tmpl->factory();
    ASSERT_TRUE(function.is_ok());
    EXPECT_EQ(function.value()->type(), type);
  }
  EXPECT_FALSE(registry.find("ghost").is_ok());
}

TEST(Templates, RegistrationValidation) {
  VnfTemplateRegistry registry;
  VnfTemplate bad;
  EXPECT_FALSE(registry.register_template(bad).is_ok());  // empty type
  bad.functional_type = "x";
  EXPECT_FALSE(registry.register_template(bad).is_ok());  // no factory
  bad.factory = []() {
    return util::Result<std::unique_ptr<nnf::NetworkFunction>>(
        std::make_unique<nnf::Bridge>());
  };
  EXPECT_TRUE(registry.register_template(bad).is_ok());
  EXPECT_FALSE(registry.register_template(bad).is_ok());  // duplicate
}

// ---------------------------------------------------------------------------
// Generic drivers
// ---------------------------------------------------------------------------

class GenericDriverFixture : public ::testing::Test {
 protected:
  GenericDriverFixture()
      : repository_(core::VnfRepository::with_builtins()),
        disk_(4096ULL * virt::kMiB),
        ram_(1024ULL * virt::kMiB),
        lsi_(1, "LSI-g1") {
    env_.simulator = &simulator_;
    env_.templates = &repository_.templates();
    env_.images = &repository_.images();
    env_.disk = &disk_;
    env_.ram = &ram_;
  }

  NfDeploySpec spec_for(const std::string& type) {
    NfDeploySpec spec;
    spec.graph_id = "g1";
    spec.nf_id = "nf1";
    spec.functional_type = type;
    spec.num_ports = 2;
    return spec;
  }

  sim::Simulator simulator_;
  core::VnfRepository repository_;
  virt::DiskLedger disk_;
  virt::RamLedger ram_;
  nfswitch::Lsi lsi_;
  DriverEnv env_;
};

TEST_F(GenericDriverFixture, DockerDeployCreatesPortsAndAccounts) {
  DockerDriver driver(env_);
  EXPECT_TRUE(driver.can_deploy("ipsec"));
  EXPECT_FALSE(driver.can_deploy("ghost"));

  auto deployed = driver.deploy(spec_for("ipsec"), lsi_);
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_EQ(deployed->backend, virt::BackendKind::kDocker);
  EXPECT_EQ(deployed->ports.size(), 2u);
  EXPECT_TRUE(lsi_.has_port(deployed->ports[0].lsi_port));
  // Table 1 shape: Docker RAM ~24.2 MB, image ~240 MB.
  EXPECT_NEAR(static_cast<double>(deployed->ram_bytes) / (1024 * 1024), 24.2,
              0.5);
  EXPECT_NEAR(static_cast<double>(deployed->image_bytes) / (1024 * 1024),
              240.0, 1.0);
  EXPECT_EQ(ram_.used(), deployed->ram_bytes);
  EXPECT_GT(disk_.used(), 0u);
  EXPECT_EQ(driver.instance_count(), 1u);

  ASSERT_TRUE(driver.undeploy(deployed.value()).is_ok());
  EXPECT_EQ(ram_.used(), 0u);
  EXPECT_EQ(disk_.used(), 0u);
  EXPECT_FALSE(lsi_.has_port(deployed->ports[0].lsi_port));
  EXPECT_EQ(driver.instance_count(), 0u);
}

TEST_F(GenericDriverFixture, VmUsesVmConstants) {
  VmDriver driver(env_);
  auto deployed = driver.deploy(spec_for("ipsec"), lsi_);
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_EQ(std::string(driver.name()), "libvirt");
  EXPECT_NEAR(static_cast<double>(deployed->ram_bytes) / (1024 * 1024),
              390.6, 1.0);
  EXPECT_NEAR(static_cast<double>(deployed->image_bytes) / (1024 * 1024),
              522.0, 1.0);
  EXPECT_EQ(deployed->boot_time, 9 * sim::kSecond);
}

TEST_F(GenericDriverFixture, DeployFailsWhenRamExhausted) {
  virt::RamLedger tiny(10 * virt::kMiB);
  env_.ram = &tiny;
  VmDriver driver(env_);
  auto deployed = driver.deploy(spec_for("ipsec"), lsi_);
  ASSERT_FALSE(deployed.is_ok());
  EXPECT_EQ(deployed.status().code(), util::ErrorCode::kResourceExhausted);
  // No partial state: disk rolled back, no ports added.
  EXPECT_EQ(disk_.used(), 0u);
  EXPECT_EQ(lsi_.ports().size(), 0u);
}

TEST_F(GenericDriverFixture, DeployFailsOnBadConfig) {
  DockerDriver driver(env_);
  NfDeploySpec spec = spec_for("nat");
  spec.config["external_ip"] = "not-an-ip";
  auto deployed = driver.deploy(spec, lsi_);
  EXPECT_FALSE(deployed.is_ok());
  EXPECT_EQ(ram_.used(), 0u);
  EXPECT_EQ(disk_.used(), 0u);
}

TEST_F(GenericDriverFixture, DatapathFlowsThroughLsi) {
  DockerDriver driver(env_);
  auto deployed = driver.deploy(spec_for("bridge"), lsi_);
  ASSERT_TRUE(deployed.is_ok());

  // Wire an external port and steer: ext -> NF port 0; NF port 1 -> ext2.
  const auto ext_in = lsi_.add_port("ext-in").value();
  const auto ext_out = lsi_.add_port("ext-out").value();
  int delivered = 0;
  (void)lsi_.set_port_peer(ext_out,
                           [&](packet::PacketBuffer&&) { ++delivered; });
  lsi_.flow_table().add(
      10, nfswitch::match_in_port(ext_in),
      {nfswitch::FlowAction::output(deployed->ports[0].lsi_port)});
  lsi_.flow_table().add(
      10, nfswitch::match_in_port(deployed->ports[1].lsi_port),
      {nfswitch::FlowAction::output(ext_out)});

  lsi_.receive(ext_in, test_frame());
  simulator_.run();
  EXPECT_EQ(delivered, 1);  // bridge flooded out its port 1 -> ext-out
}

TEST_F(GenericDriverFixture, UpdateReconfiguresFunction) {
  DockerDriver driver(env_);
  auto deployed = driver.deploy(spec_for("nat"), lsi_);
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_TRUE(
      driver.update(deployed.value(), {{"external_ip", "203.0.113.9"}})
          .is_ok());
  EXPECT_FALSE(driver.update(deployed.value(), {{"bad", "1"}}).is_ok());
  DeployedNf ghost = deployed.value();
  ghost.instance = 999;
  EXPECT_FALSE(driver.update(ghost, {}).is_ok());
}

TEST_F(GenericDriverFixture, SharedLayersAcrossBackends) {
  DockerDriver docker(env_);
  DpdkDriver dpdk(env_);
  auto a = docker.deploy(spec_for("ipsec"), lsi_);
  ASSERT_TRUE(a.is_ok());
  const std::uint64_t after_docker = disk_.used();
  NfDeploySpec spec2 = spec_for("ipsec");
  spec2.nf_id = "nf2";
  auto b = dpdk.deploy(spec2, lsi_);
  ASSERT_TRUE(b.is_ok());
  // The 5 MB package layer is shared between docker and dpdk images.
  EXPECT_EQ(disk_.used(),
            after_docker + b->image_bytes - 5ULL * virt::kMiB);
}

// ---------------------------------------------------------------------------
// ComputeManager
// ---------------------------------------------------------------------------

TEST_F(GenericDriverFixture, ManagerDispatchesAndTracks) {
  ComputeManager manager;
  ASSERT_TRUE(
      manager.register_driver(std::make_unique<DockerDriver>(env_)).is_ok());
  ASSERT_TRUE(
      manager.register_driver(std::make_unique<VmDriver>(env_)).is_ok());
  EXPECT_FALSE(
      manager.register_driver(std::make_unique<VmDriver>(env_)).is_ok());
  EXPECT_FALSE(manager.register_driver(nullptr).is_ok());
  EXPECT_TRUE(manager.has_driver(virt::BackendKind::kDocker));
  EXPECT_FALSE(manager.has_driver(virt::BackendKind::kNative));
  EXPECT_EQ(manager.backends().size(), 2u);

  auto deployed =
      manager.deploy(virt::BackendKind::kDocker, spec_for("ipsec"), lsi_);
  ASSERT_TRUE(deployed.is_ok());
  EXPECT_EQ(manager.total_deployments(), 1u);
  EXPECT_EQ(manager.deployments_of("g1").size(), 1u);
  EXPECT_TRUE(manager.deployments_of("other").empty());
  EXPECT_EQ(manager.dispatch_counts().at(virt::BackendKind::kDocker), 1u);

  auto missing =
      manager.deploy(virt::BackendKind::kDpdk, spec_for("ipsec"), lsi_);
  EXPECT_FALSE(missing.is_ok());
  EXPECT_EQ(missing.status().code(), util::ErrorCode::kUnavailable);

  EXPECT_TRUE(manager.undeploy(deployed.value()).is_ok());
  EXPECT_EQ(manager.total_deployments(), 0u);
}

}  // namespace
}  // namespace nnfv::compute
