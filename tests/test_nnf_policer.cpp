// Token-bucket policer NF tests: conformance math, burst behaviour,
// refill over simulated time, direction config, context isolation, and an
// end-to-end rate-plan enforcement run on a UniversalNode.
#include <gtest/gtest.h>

#include "core/node.hpp"
#include "nnf/policer.hpp"
#include "nnf/translator.hpp"
#include "packet/builder.hpp"
#include "traffic/source.hpp"

namespace nnfv::nnf {
namespace {

packet::PacketBuffer frame_of(std::size_t payload) {
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
  static std::vector<std::uint8_t> buf;
  buf.assign(payload, 0x33);
  spec.payload = buf;
  return packet::build_udp_frame(spec);
}

TokenBucketPolicer make_policer(const std::string& mbps,
                                const std::string& burst_kb = "64") {
  TokenBucketPolicer policer;
  EXPECT_TRUE(policer
                  .configure(kDefaultContext,
                             {{"rate_mbps", mbps}, {"burst_kb", burst_kb}})
                  .is_ok());
  return policer;
}

TEST(Policer, UnconfiguredPassesEverything) {
  TokenBucketPolicer policer;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policer.process(kDefaultContext, 0, 0, frame_of(1400)).size(),
              1u);
  }
  EXPECT_EQ(policer.stats().exceeded, 0u);
}

TEST(Policer, ForwardsBetweenPorts) {
  TokenBucketPolicer policer = make_policer("100");
  auto up = policer.process(kDefaultContext, 0, 0, frame_of(100));
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].port, 1u);
  auto down = policer.process(kDefaultContext, 1, 0, frame_of(100));
  ASSERT_EQ(down.size(), 1u);
  EXPECT_EQ(down[0].port, 0u);
}

TEST(Policer, BurstThenDrop) {
  // 8 Mbit/s, 2 KB bucket: ~14 frames of 142 B pass, then drops (at t=0,
  // no refill).
  TokenBucketPolicer policer = make_policer("8", "2");
  int passed = 0;
  for (int i = 0; i < 30; ++i) {
    passed += static_cast<int>(
        policer.process(kDefaultContext, 0, 0, frame_of(100)).size());
  }
  EXPECT_EQ(passed, 14);  // floor(2048 / 142)
  EXPECT_EQ(policer.stats().exceeded, 16u);
}

TEST(Policer, BucketRefillsOverTime) {
  TokenBucketPolicer policer = make_policer("8", "2");  // 1 B/us refill
  // Drain the bucket at t=0.
  for (int i = 0; i < 20; ++i) {
    (void)policer.process(kDefaultContext, 0, 0, frame_of(100));
  }
  EXPECT_TRUE(policer.process(kDefaultContext, 0, 0, frame_of(100)).empty());
  // 142 us later exactly one more 142-byte frame fits.
  const sim::SimTime later = 142 * sim::kMicrosecond;
  EXPECT_EQ(policer.process(kDefaultContext, 0, later, frame_of(100)).size(),
            1u);
  EXPECT_TRUE(
      policer.process(kDefaultContext, 0, later, frame_of(100)).empty());
}

TEST(Policer, SteadyStateRateEnforced) {
  // Offer 100 Mbit/s for 100 ms against a 20 Mbit/s policer: ~20% passes.
  TokenBucketPolicer policer = make_policer("20", "16");
  const std::size_t frame_bytes = frame_of(1400).size();
  const sim::SimTime gap =
      static_cast<sim::SimTime>(frame_bytes * 8.0 * 1e9 / 100e6);
  std::uint64_t passed_bytes = 0;
  for (sim::SimTime t = 0; t < 100 * sim::kMillisecond; t += gap) {
    if (!policer.process(kDefaultContext, 0, t, frame_of(1400)).empty()) {
      passed_bytes += frame_bytes;
    }
  }
  const double rate_mbps = static_cast<double>(passed_bytes) * 8.0 / 0.1 / 1e6;
  EXPECT_NEAR(rate_mbps, 20.0, 2.5);  // burst slack
}

TEST(Policer, UpstreamOnlyDirection) {
  TokenBucketPolicer policer;
  ASSERT_TRUE(policer
                  .configure(kDefaultContext, {{"rate_mbps", "8"},
                                               {"burst_kb", "1"},
                                               {"direction", "up"}})
                  .is_ok());
  // Drain upstream.
  for (int i = 0; i < 20; ++i) {
    (void)policer.process(kDefaultContext, 0, 0, frame_of(100));
  }
  EXPECT_TRUE(policer.process(kDefaultContext, 0, 0, frame_of(100)).empty());
  // Downstream is never policed.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policer.process(kDefaultContext, 1, 0, frame_of(100)).size(),
              1u);
  }
}

TEST(Policer, ContextsHaveIndependentBuckets) {
  TokenBucketPolicer policer = make_policer("8", "1");
  ASSERT_TRUE(policer.add_context(1).is_ok());
  ASSERT_TRUE(
      policer.configure(1, {{"rate_mbps", "8"}, {"burst_kb", "1"}}).is_ok());
  // Drain context 0.
  for (int i = 0; i < 10; ++i) {
    (void)policer.process(0, 0, 0, frame_of(100));
  }
  EXPECT_TRUE(policer.process(0, 0, 0, frame_of(100)).empty());
  // Context 1 still has a full bucket.
  EXPECT_EQ(policer.process(1, 0, 0, frame_of(100)).size(), 1u);
  EXPECT_GT(policer.tokens(1), 0.0);
}

TEST(Policer, ConfigValidation) {
  TokenBucketPolicer policer;
  EXPECT_FALSE(
      policer.configure(kDefaultContext, {{"rate_mbps", "0"}}).is_ok());
  EXPECT_FALSE(
      policer.configure(kDefaultContext, {{"rate_mbps", "x"}}).is_ok());
  EXPECT_FALSE(
      policer.configure(kDefaultContext, {{"burst_kb", "0"}}).is_ok());
  EXPECT_FALSE(
      policer.configure(kDefaultContext, {{"direction", "sideways"}}).is_ok());
  EXPECT_FALSE(policer.configure(kDefaultContext, {{"zzz", "1"}}).is_ok());
  EXPECT_FALSE(policer.configure(9, {}).is_ok());
}

TEST(PolicerPlugin, DescriptorAndFactory) {
  auto plugin = make_policer_plugin();
  EXPECT_EQ(plugin->descriptor().functional_type, "policer");
  EXPECT_TRUE(plugin->descriptor().sharable);
  EXPECT_TRUE(plugin->descriptor().single_interface);
  auto function = plugin->create_function();
  ASSERT_TRUE(function.is_ok());
  EXPECT_EQ(function.value()->type(), "policer");
}

TEST(PolicerGeneric, VocabularyLowers) {
  auto lowered = translate_generic_config(
      "policer", {{"rate_limit_mbps", "50"},
                  {"rate_burst_kb", "128"},
                  {"upstream_only", "1"}});
  ASSERT_TRUE(lowered.is_ok());
  EXPECT_EQ(lowered->at("rate_mbps"), "50");
  EXPECT_EQ(lowered->at("burst_kb"), "128");
  EXPECT_EQ(lowered->at("direction"), "up");
  EXPECT_FALSE(
      translate_generic_config("policer", {{"upstream_only", "2"}}).is_ok());
}

TEST(PolicerEndToEnd, RatePlanEnforcedOnNode) {
  // 20 Mbit/s customer plan on a node with translation enabled; offer
  // 100 Mbit/s upstream and check the WAN side sees ~20.
  core::UniversalNodeConfig config;
  config.generic_config_translation = true;
  core::UniversalNode node(config);

  nffg::NfFg graph;
  graph.id = "plan";
  graph.add_nf("shaper", "policer").config = {
      {"generic", "1"}, {"rate_limit_mbps", "20"}, {"rate_burst_kb", "32"}};
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"),
                nffg::nf_port("shaper", 0));
  graph.connect("r2", nffg::nf_port("shaper", 1),
                nffg::endpoint_ref("wan"));
  auto report = node.orchestrator().deploy(graph);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report->placements[0].backend, virt::BackendKind::kNative);

  std::uint64_t wan_bytes = 0;
  (void)node.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
    wan_bytes += frame.size();
  });
  traffic::UdpSourceConfig source_config;
  source_config.payload_bytes = 1400;
  source_config.packets_per_second = 100e6 / (1442.0 * 8.0);  // ~100 Mbit/s
  source_config.stop = 200 * sim::kMillisecond;
  traffic::UdpSource source(node.simulator(), source_config,
                            [&](packet::PacketBuffer&& frame) {
                              (void)node.inject("eth0", std::move(frame));
                            });
  source.begin();
  node.simulator().run();
  const double mbps = static_cast<double>(wan_bytes) * 8.0 / 0.2 / 1e6;
  EXPECT_NEAR(mbps, 20.0, 3.0);
}

}  // namespace
}  // namespace nnfv::nnf
