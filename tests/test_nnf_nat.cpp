// NAT NF tests: SNAT translation, conntrack, checksum validity, timeouts,
// per-context isolation, unsolicited-inbound drops.
#include <gtest/gtest.h>

#include "nnf/nat.hpp"
#include "packet/builder.hpp"
#include "packet/checksum.hpp"
#include "packet/flow_key.hpp"

namespace nnfv::nnf {
namespace {

constexpr const char* kExternalIp = "203.0.113.1";

packet::PacketBuffer udp_from(const std::string& src_ip, std::uint16_t sport,
                              const std::string& dst_ip,
                              std::uint16_t dport) {
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.ip_src = *packet::Ipv4Address::parse(src_ip);
  spec.ip_dst = *packet::Ipv4Address::parse(dst_ip);
  spec.src_port = sport;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(24, 3);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

packet::FiveTuple tuple_of(const packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  auto tuple =
      packet::extract_five_tuple(frame.data().subspan(eth->wire_size()));
  EXPECT_TRUE(tuple.is_ok());
  return tuple.value();
}

Nat make_nat() {
  Nat nat;
  EXPECT_TRUE(
      nat.configure(kDefaultContext, {{"external_ip", kExternalIp}}).is_ok());
  return nat;
}

TEST(Nat, OutboundRewritesSource) {
  Nat nat = make_nat();
  auto outs = nat.process(kDefaultContext, 0, 0,
                          udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 1u);
  const packet::FiveTuple tuple = tuple_of(outs[0].frame);
  EXPECT_EQ(tuple.src_ip.to_string(), kExternalIp);
  EXPECT_NE(tuple.src_port, 0);
  EXPECT_EQ(tuple.dst_ip.to_string(), "8.8.8.8");
  EXPECT_EQ(tuple.dst_port, 53);
  EXPECT_EQ(nat.session_count(kDefaultContext), 1u);
}

TEST(Nat, TranslationIsStablePerFlow) {
  Nat nat = make_nat();
  auto first = nat.process(kDefaultContext, 0, 0,
                           udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  auto second = nat.process(kDefaultContext, 0, 1000,
                            udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  EXPECT_EQ(tuple_of(first[0].frame).src_port,
            tuple_of(second[0].frame).src_port);
  EXPECT_EQ(nat.session_count(kDefaultContext), 1u);
}

TEST(Nat, DistinctFlowsGetDistinctPorts) {
  Nat nat = make_nat();
  auto a = nat.process(kDefaultContext, 0, 0,
                       udp_from("192.168.1.10", 1001, "8.8.8.8", 53));
  auto b = nat.process(kDefaultContext, 0, 0,
                       udp_from("192.168.1.11", 1001, "8.8.8.8", 53));
  EXPECT_NE(tuple_of(a[0].frame).src_port, tuple_of(b[0].frame).src_port);
  EXPECT_EQ(nat.session_count(kDefaultContext), 2u);
}

TEST(Nat, InboundReplyTranslatedBack) {
  Nat nat = make_nat();
  auto out = nat.process(kDefaultContext, 0, 0,
                         udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  const std::uint16_t ext_port = tuple_of(out[0].frame).src_port;

  auto reply = nat.process(kDefaultContext, 1, 1000,
                           udp_from("8.8.8.8", 53, kExternalIp, ext_port));
  ASSERT_EQ(reply.size(), 1u);
  EXPECT_EQ(reply[0].port, 0u);
  const packet::FiveTuple tuple = tuple_of(reply[0].frame);
  EXPECT_EQ(tuple.dst_ip.to_string(), "192.168.1.10");
  EXPECT_EQ(tuple.dst_port, 5555);
}

TEST(Nat, ChecksumsValidAfterTranslation) {
  Nat nat = make_nat();
  auto outs = nat.process(kDefaultContext, 0, 0,
                          udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  ASSERT_EQ(outs.size(), 1u);
  const auto& frame = outs[0].frame;
  auto eth = packet::parse_ethernet(frame.data());
  auto ip = packet::parse_ipv4(frame.data().subspan(eth->wire_size()));
  ASSERT_TRUE(ip.is_ok());
  // IP header checksum verifies to zero.
  EXPECT_EQ(packet::internet_checksum(frame.data().subspan(
                eth->wire_size(), ip->header_size())),
            0);
  // UDP checksum matches a fresh computation.
  const std::size_t l4_off = eth->wire_size() + ip->header_size();
  const std::size_t l4_len = ip->total_length - ip->header_size();
  auto udp = packet::parse_udp(frame.data().subspan(l4_off));
  EXPECT_EQ(udp->checksum,
            packet::l4_checksum(ip->src, ip->dst, packet::kIpProtoUdp,
                                frame.data().subspan(l4_off, l4_len), 6));
}

TEST(Nat, UnsolicitedInboundDropped) {
  Nat nat = make_nat();
  auto outs = nat.process(kDefaultContext, 1, 0,
                          udp_from("8.8.8.8", 53, kExternalIp, 3333));
  EXPECT_TRUE(outs.empty());
  EXPECT_EQ(nat.counters().dropped, 1u);
}

TEST(Nat, InboundToWrongAddressDropped) {
  Nat nat = make_nat();
  nat.process(kDefaultContext, 0, 0,
              udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  auto outs = nat.process(kDefaultContext, 1, 0,
                          udp_from("8.8.8.8", 53, "203.0.113.99", 1024));
  EXPECT_TRUE(outs.empty());
}

TEST(Nat, SessionsExpireAfterIdleTimeout) {
  Nat nat;
  ASSERT_TRUE(nat.configure(kDefaultContext,
                            {{"external_ip", kExternalIp},
                             {"idle_timeout_ms", "1000"}})
                  .is_ok());
  auto out = nat.process(kDefaultContext, 0, 0,
                         udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  const std::uint16_t ext_port = tuple_of(out[0].frame).src_port;
  EXPECT_EQ(nat.session_count(kDefaultContext), 1u);

  // 5 seconds later the session is gone; the late reply is unsolicited.
  auto reply = nat.process(kDefaultContext, 1, 5 * sim::kSecond,
                           udp_from("8.8.8.8", 53, kExternalIp, ext_port));
  EXPECT_TRUE(reply.empty());
  EXPECT_EQ(nat.session_count(kDefaultContext), 0u);
}

TEST(Nat, KeepaliveRefreshesTimeout) {
  Nat nat;
  ASSERT_TRUE(nat.configure(kDefaultContext,
                            {{"external_ip", kExternalIp},
                             {"idle_timeout_ms", "1000"}})
                  .is_ok());
  nat.process(kDefaultContext, 0, 0,
              udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  // Refresh at 0.8s, then check at 1.5s: still alive (idle only 0.7s).
  nat.process(kDefaultContext, 0, 800 * sim::kMillisecond,
              udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  nat.process(kDefaultContext, 0, 1500 * sim::kMillisecond,
              udp_from("192.168.1.99", 1, "8.8.8.8", 53));  // triggers expire
  EXPECT_EQ(nat.session_count(kDefaultContext), 2u);
}

TEST(Nat, DropsWithoutExternalIp) {
  Nat nat;  // not configured
  auto outs = nat.process(kDefaultContext, 0, 0,
                          udp_from("192.168.1.10", 5555, "8.8.8.8", 53));
  EXPECT_TRUE(outs.empty());
  EXPECT_EQ(nat.counters().dropped, 1u);
}

TEST(Nat, ContextsHaveIndependentSessionsAndIps) {
  Nat nat;
  ASSERT_TRUE(nat.add_context(1).is_ok());
  ASSERT_TRUE(
      nat.configure(0, {{"external_ip", "203.0.113.1"}}).is_ok());
  ASSERT_TRUE(
      nat.configure(1, {{"external_ip", "203.0.113.2"}}).is_ok());
  auto a = nat.process(0, 0, 0, udp_from("10.0.0.1", 100, "8.8.8.8", 53));
  auto b = nat.process(1, 0, 0, udp_from("10.0.0.1", 100, "8.8.8.8", 53));
  EXPECT_EQ(tuple_of(a[0].frame).src_ip.to_string(), "203.0.113.1");
  EXPECT_EQ(tuple_of(b[0].frame).src_ip.to_string(), "203.0.113.2");
  EXPECT_EQ(nat.session_count(0), 1u);
  EXPECT_EQ(nat.session_count(1), 1u);
}

TEST(Nat, TcpFlowsTranslated) {
  Nat nat = make_nat();
  packet::TcpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.20");
  spec.ip_dst = *packet::Ipv4Address::parse("1.2.3.4");
  spec.src_port = 44000;
  spec.dst_port = 443;
  spec.flags = packet::TcpHeader::kSyn;
  auto outs =
      nat.process(kDefaultContext, 0, 0, packet::build_tcp_frame(spec));
  ASSERT_EQ(outs.size(), 1u);
  const packet::FiveTuple tuple = tuple_of(outs[0].frame);
  EXPECT_EQ(tuple.protocol, packet::kIpProtoTcp);
  EXPECT_EQ(tuple.src_ip.to_string(), kExternalIp);
}

TEST(Nat, NonIpPassesThrough) {
  Nat nat = make_nat();
  std::vector<std::uint8_t> arp(64, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  auto outs =
      nat.process(kDefaultContext, 0, 0, packet::PacketBuffer::copy_of(arp));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].port, 1u);
}

TEST(Nat, RejectsBadConfig) {
  Nat nat;
  EXPECT_FALSE(
      nat.configure(kDefaultContext, {{"external_ip", "999.1.1.1"}}).is_ok());
  EXPECT_FALSE(
      nat.configure(kDefaultContext, {{"idle_timeout_ms", "x"}}).is_ok());
  EXPECT_FALSE(nat.configure(kDefaultContext, {{"bogus", "1"}}).is_ok());
  EXPECT_FALSE(nat.configure(77, {}).is_ok());
}

}  // namespace
}  // namespace nnfv::nnf
