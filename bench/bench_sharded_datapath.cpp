// Experiment: multi-core sharded datapath scaling.
//
// The DatapathExecutor RSS-hashes ingress frames to run-to-completion
// workers, each running classify (LSI-0) -> ESP encapsulation on its own
// core. This bench measures aggregate packets/sec for 1, 2 and 4 workers
// over two traffic mixes:
//
//   uniform  — 32 equal flows (UdpSource flow_count rotation), the case
//              RSS is built for; the acceptance metric is the 4-worker
//              speedup over 1 worker (target >= 3x on >= 4 cores).
//   elephant — ~70% of frames belong to one flow. RSS pins the elephant
//              to a single worker, so aggregate speedup is bounded by the
//              elephant's share (~1/0.7 = 1.4x); measured here so the
//              limitation is a number, not folklore.
//
// Speedups are dimensionless and trend-gated via bench/baseline.json;
// the 4-worker entries carry "_requires_cores": 4, so runs on smaller
// machines validate output shape but skip the scaling floor. Per-worker
// spread on the uniform mix is asserted directly (every worker must see
// traffic) — that checks the RSS contract, which holds on any core count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "exec/datapath_executor.hpp"
#include "nnf/ipsec.hpp"
#include "packet/mbuf.hpp"
#include "switch/flow_action.hpp"
#include "switch/lsi.hpp"
#include "traffic/source.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench

constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
constexpr const char* kAuthKey =
    "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f";

/// Collects exactly `count` frames from a UdpSource into `pool`.
void collect_frames(packet::PacketBurst& pool, std::size_t count,
                    std::uint16_t src_port_base, std::size_t flow_count) {
  sim::Simulator simulator;
  traffic::UdpSourceConfig config;
  config.packets_per_second = 1e6;  // 1 us apart: sim time is free
  config.payload_bytes = 256;
  config.src_port = src_port_base;
  config.flow_count = flow_count;
  config.stop = static_cast<sim::SimTime>(count) * sim::kMicrosecond;
  traffic::UdpSource source(simulator, config,
                            [&](packet::PacketBuffer&& frame) {
                              pool.push_back(std::move(frame));
                            });
  source.begin();
  simulator.run();
}

/// uniform: 32 equal flows. elephant: ~70% one flow, rest over 8 mice.
packet::PacketBurst make_pool(const std::string& mix, std::size_t frames) {
  packet::PacketBurst pool;
  pool.reserve(frames);
  if (mix == "uniform") {
    collect_frames(pool, frames, 40000, 32);
    return pool;
  }
  packet::PacketBurst elephant, mice;
  collect_frames(elephant, frames * 7 / 10, 50000, 1);
  collect_frames(mice, frames - elephant.size(), 51000, 8);
  // Deterministic interleave: 7 elephant frames, then 3 mice.
  std::size_t e = 0, m = 0;
  while (e < elephant.size() || m < mice.size()) {
    for (int i = 0; i < 7 && e < elephant.size(); ++i) {
      pool.push_back(std::move(elephant[e++]));
    }
    for (int i = 0; i < 3 && m < mice.size(); ++i) {
      pool.push_back(std::move(mice[m++]));
    }
  }
  return pool;
}

struct RunResult {
  double pps = 0.0;
  double ns_per_frame = 0.0;
  std::uint64_t frames = 0;
  /// Pool heap events per frame over the timed rounds (after a warmup
  /// round grows the pools to the working set). Must be 0: copies,
  /// encap, and cross-worker frees all recycle pooled segments.
  double allocs_per_packet = 0.0;
  std::vector<std::uint64_t> per_worker;
};

/// Deep copy of a burst: PacketBuffer is move-only, so reuse rounds
/// duplicate the frame pool explicitly (pooled segments, not heap).
packet::PacketBurst copy_burst(const packet::PacketBurst& pool) {
  packet::PacketBurst out;
  out.reserve(pool.size());
  for (const packet::PacketBuffer& frame : pool) out.push_back(frame.copy());
  return out;
}

/// Pool-level heap events so far (slab growths + oversize segments).
std::uint64_t pool_heap_events() {
  const packet::MbufPoolStats stats = packet::MbufPool::global_stats();
  return stats.slab_allocs + stats.heap_allocs;
}

/// One scaling point: `workers` cores running classify -> ESP encap to
/// completion over copies of `pool` for ~`budget_ms` of wall time.
RunResult run_point(const packet::PacketBurst& pool, std::size_t workers,
                    double budget_ms) {
  nnf::IpsecEndpoint tunnel;
  const nnf::NfConfig config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", kEncKey},         {"auth_key", kAuthKey}};
  if (!tunnel.configure(nnf::kDefaultContext, config).is_ok()) return {};

  nfswitch::Lsi lsi(0, "LSI-0");
  const nfswitch::PortId in = lsi.add_port("eth0").value();
  const nfswitch::PortId out = lsi.add_port("eth1").value();
  nfswitch::FlowMatch any;
  lsi.flow_table().add(1, any, {nfswitch::FlowAction::output(out)});
  std::atomic<std::uint64_t> encrypted{0};
  (void)lsi.set_port_burst_peer(out, [&](packet::PacketBurst&& burst) {
    auto outs = tunnel.process_burst(nnf::kDefaultContext, 0, 0,
                                     std::move(burst));
    bench::do_not_optimize(outs.size());
    encrypted.fetch_add(outs.size(), std::memory_order_relaxed);
  });

  exec::DatapathExecutorConfig dp;
  dp.workers = workers;
  exec::DatapathExecutor executor(
      dp, [&](exec::WorkerContext&, std::uint32_t tag,
              packet::PacketBurst&& burst) {
        lsi.receive_burst(static_cast<nfswitch::PortId>(tag),
                          std::move(burst));
      });

  using Clock = std::chrono::steady_clock;
  RunResult result;
  // One untimed warmup round grows the mbuf pools to this worker count's
  // working set; the timed rounds after it must be pure recycling.
  executor.submit_burst(in, copy_burst(pool));
  executor.drain();
  const std::uint64_t heap_events_start = pool_heap_events();
  double elapsed_ms = 0.0;
  while (elapsed_ms < budget_ms) {
    packet::PacketBurst round = copy_burst(pool);  // outside the timed section
    const auto start = Clock::now();
    executor.submit_burst(in, std::move(round));
    executor.drain();
    elapsed_ms +=
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    result.frames += pool.size();
  }
  const std::uint64_t heap_events_end = pool_heap_events();
  executor.stop();
  result.allocs_per_packet =
      result.frames > 0
          ? static_cast<double>(heap_events_end - heap_events_start) /
                static_cast<double>(result.frames)
          : 0.0;

  result.pps =
      elapsed_ms > 0.0 ? static_cast<double>(result.frames) * 1e3 / elapsed_ms
                       : 0.0;
  result.ns_per_frame = result.frames > 0
                            ? elapsed_ms * 1e6 /
                                  static_cast<double>(result.frames)
                            : 0.0;
  for (std::size_t w = 0; w < executor.worker_count(); ++w) {
    result.per_worker.push_back(executor.worker_stats(w).processed);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  bench::JsonReport report("bench_sharded_datapath");
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  report.set_num_field("cpus", cpus);

  const std::size_t pool_frames = bench::smoke_mode() ? 256 : 8192;
  const double budget_ms = bench::smoke_mode() ? 1.0 : 500.0;

  std::printf("=== sharded datapath scaling (classify -> ESP encap, "
              "%u hardware threads) ===\n\n", cpus);
  std::printf("%-16s %8s %14s %14s %10s\n", "mix", "workers", "pps",
              "ns/frame", "speedup");

  bool spread_ok = true;
  double uniform_speedup_4w = 0.0;
  double allocs_per_packet = 0.0;  // worst point; must be 0 in steady state
  for (const char* mix : {"uniform", "elephant"}) {
    const packet::PacketBurst pool = make_pool(mix, pool_frames);
    double pps_1w = 0.0;
    for (std::size_t workers : {1u, 2u, 4u}) {
      const RunResult r = run_point(pool, workers, budget_ms);
      if (workers == 1) pps_1w = r.pps;
      const double speedup = pps_1w > 0.0 ? r.pps / pps_1w : 0.0;
      char name[64];
      std::snprintf(name, sizeof(name), "%s_w%zu", mix, workers);
      std::printf("%-16s %8zu %14.0f %14.1f %9.2fx\n", mix, workers, r.pps,
                  r.ns_per_frame, speedup);
      auto& result = report.add(name, r.frames, r.ns_per_frame);
      result.extra.emplace_back("pps", r.pps);
      result.extra.emplace_back("speedup_vs_1w", speedup);
      allocs_per_packet = std::max(allocs_per_packet, r.allocs_per_packet);

      if (std::string(mix) == "uniform" && workers == 4) {
        uniform_speedup_4w = speedup;
        // RSS contract: 32 uniform flows must land on every worker. This
        // holds regardless of the machine's core count.
        std::uint64_t min_share = ~0ULL;
        for (std::uint64_t p : r.per_worker) min_share = std::min(min_share, p);
        if (min_share == 0) spread_ok = false;
        result.extra.emplace_back(
            "worker_min_share",
            r.frames > 0 ? static_cast<double>(min_share) *
                               static_cast<double>(r.per_worker.size()) /
                               static_cast<double>(r.frames)
                         : 0.0);
      }
    }
  }

  std::printf("\nacceptance: uniform 4-worker speedup %.2fx "
              "(target >= 3x on >= 4 cores), per-worker spread %s, "
              "pool heap events %.4f/pkt (target 0)\n\n",
              uniform_speedup_4w, spread_ok ? "ok" : "VIOLATED",
              allocs_per_packet);
  // Zero-copy acceptance: steady-state frames (copy -> classify -> ESP
  // encap -> cross-worker free) recycle pooled segments; ceiling-gated
  // at 0 via bench/baseline.json too.
  report.add_metric("allocs_per_packet", "allocs_per_packet",
                    allocs_per_packet);
  report.emit();
  if (!bench::gates_enabled()) return 0;  // smoke / unoptimised build
  if (allocs_per_packet > 0.0) return 1;
  if (!spread_ok) return 1;               // RSS spread: gate on any machine
  if (cpus >= 4 && uniform_speedup_4w < 3.0) return 1;
  return 0;
}
