// Experiment F1 — exercises **Figure 1** (the compute-node architecture).
//
// Figure 1 is structural, not a data plot, so this bench regenerates the
// architecture's operational footprint: it deploys N NF-FGs with mixed
// driver technologies on one node and reports, per the figure's boxes:
//   * LSIs: one base LSI + one per graph, connected by virtual links
//   * flow rules installed per LSI by the traffic-steering manager
//   * compute-manager dispatches per management driver
//   * NNF sharing status from the catalog (instances vs serving graphs)
//   * network namespaces created by the NNF driver
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  constexpr int kGraphs = 8;
  core::UniversalNodeConfig config;
  config.physical_ports = {"eth0", "eth1"};
  core::UniversalNode node(config);

  std::printf("=== Figure 1: compute node architecture, %d NF-FGs ===\n\n",
              kGraphs);

  // Mix of technologies across graphs, as in the figure (VNF1..VNFn over
  // different drivers + NNF).
  const std::optional<virt::BackendKind> hints[] = {
      virt::BackendKind::kNative, virt::BackendKind::kDocker,
      std::nullopt,  // scheduler decides (-> native, shared)
      virt::BackendKind::kDpdk,   virt::BackendKind::kVm,
      std::nullopt,               virt::BackendKind::kDocker,
      virt::BackendKind::kNative,
  };

  int deployed = 0;
  for (int i = 0; i < kGraphs; ++i) {
    // Distinct VLANs keep the endpoint classification rules disjoint.
    nffg::NfFg graph = bench::ipsec_cpe_graph("g" + std::to_string(i),
                                              hints[i % 8]);
    graph.endpoints[0].vlan = static_cast<std::uint16_t>(100 + i);
    graph.endpoints[1].vlan = static_cast<std::uint16_t>(200 + i);
    auto report = node.orchestrator().deploy(graph);
    if (!report) {
      std::printf("graph g%d: FAILED (%s)\n", i,
                  report.status().to_string().c_str());
      continue;
    }
    ++deployed;
    const auto& placement = report->placements.at(0);
    std::printf("graph g%d: backend=%-7s shared=%d  rules=%zu  "
                "boot=%7.1f ms  (%s)\n",
                i, std::string(virt::backend_name(placement.backend)).c_str(),
                placement.reused_shared_instance ? 1 : 0,
                report->flow_rules_installed,
                static_cast<double>(placement.boot_time) / 1e6,
                placement.reason.c_str());
  }

  std::printf("\n--- Architecture footprint ---\n");
  std::printf("LSIs (base + per-graph):      %zu (expect %d)\n",
              node.network().lsi_count(), deployed + 1);
  std::printf("LSI-0 flow rules (classifier): %zu (expect 4/graph)\n",
              node.network().base_lsi().flow_table().size());
  std::printf("deployments tracked:           %zu\n",
              node.compute().total_deployments());
  std::printf("network namespaces:            %zu (root + NNF instances)\n",
              node.namespaces().count());

  std::printf("\ncompute-manager dispatches per driver:\n");
  for (const auto& [kind, count] : node.compute().dispatch_counts()) {
    std::printf("  %-7s: %llu\n",
                std::string(virt::backend_name(kind)).c_str(),
                static_cast<unsigned long long>(count));
  }

  std::printf("\nNNF catalog status (sharing):\n");
  for (const std::string& type : node.catalog().types()) {
    const nnf::NnfStatus* status = node.catalog().status_of(type);
    std::printf("  %-9s: instances=%zu serving_graphs=%zu\n", type.c_str(),
                status->running_instances, status->graphs.size());
  }

  std::printf("\nnode description (REST GET /node):\n%s\n",
              node.describe().dump_pretty().c_str());

  bench::JsonReport json_report("bench_fig1_architecture");
  auto& row = json_report.add_metric("architecture_footprint",
                                     "graphs_deployed", deployed);
  row.extra.emplace_back("lsis",
                         static_cast<double>(node.network().lsi_count()));
  row.extra.emplace_back(
      "lsi0_flow_rules",
      static_cast<double>(node.network().base_lsi().flow_table().size()));
  row.extra.emplace_back(
      "deployments", static_cast<double>(node.compute().total_deployments()));
  row.extra.emplace_back("namespaces",
                         static_cast<double>(node.namespaces().count()));
  json_report.emit();
  return 0;
}
