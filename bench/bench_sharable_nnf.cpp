// Experiment A1 — sharability ablation (paper §2).
//
// The paper argues a sharable NNF can serve several service graphs from
// one instance (marking + isolated internal paths). This bench quantifies
// what that buys: for 1..16 service graphs, compare
//   * shared native NNF (1 instance, N contexts)     — the paper's design
//   * dedicated Docker VNFs (N containers)           — the alternative
// on marginal RAM, activation latency, and node footprint.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

namespace {

nffg::NfFg nat_graph(const std::string& id, int index,
                     std::optional<virt::BackendKind> hint) {
  nffg::NfFg graph = bench::chain_graph(id, "nat", hint);
  graph.nfs[0].config["external_ip"] =
      "203.0.113." + std::to_string(index + 1);
  graph.endpoints[0].vlan = static_cast<std::uint16_t>(100 + index);
  graph.endpoints[1].vlan = static_cast<std::uint16_t>(1100 + index);
  return graph;
}

struct Footprint {
  double ram_mb = 0.0;
  double total_boot_ms = 0.0;
  std::size_t namespaces = 0;
  std::size_t marks = 0;
  bool ok = true;
};

Footprint deploy_n(int n, std::optional<virt::BackendKind> hint) {
  core::UniversalNode node;
  Footprint footprint;
  for (int i = 0; i < n; ++i) {
    auto report =
        node.orchestrator().deploy(nat_graph("g" + std::to_string(i), i,
                                             hint));
    if (!report) {
      footprint.ok = false;
      return footprint;
    }
    footprint.total_boot_ms +=
        static_cast<double>(report->placements[0].boot_time) / 1e6;
  }
  footprint.ram_mb =
      static_cast<double>(node.resources().ram().used()) / (1024.0 * 1024.0);
  footprint.namespaces = node.namespaces().count() - 1;  // minus root
  footprint.marks = node.marks().in_use();
  return footprint;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  std::printf("=== A1: sharable NNF vs dedicated VNF instances (NAT) ===\n");
  std::printf("shared: 1 native instance, per-graph contexts + VLAN marks\n");
  std::printf("dedicated: one Docker container per graph\n\n");
  std::printf("%7s | %12s %12s %8s %7s | %12s %12s\n", "graphs",
              "sharedRAM", "dedicRAM", "ratio", "marks", "sharedBoot",
              "dedicBoot");
  std::printf("--------+--------------------------------------------------+"
              "--------------------------\n");

  bench::JsonReport report("bench_sharable_nnf");
  const std::vector<int> graph_counts =
      bench::smoke_mode() ? std::vector<int>{1, 2}
                          : std::vector<int>{1, 2, 4, 8, 16};
  for (int n : graph_counts) {
    Footprint shared = deploy_n(n, virt::BackendKind::kNative);
    Footprint dedicated = deploy_n(n, virt::BackendKind::kDocker);
    if (!shared.ok || !dedicated.ok) {
      std::printf("%7d | deployment failed\n", n);
      continue;
    }
    std::printf("%7d | %9.1f MB %9.1f MB %7.1fx %7zu | %9.1f ms %9.1f ms\n",
                n, shared.ram_mb, dedicated.ram_mb,
                dedicated.ram_mb / shared.ram_mb, shared.marks,
                shared.total_boot_ms, dedicated.total_boot_ms);
    auto& row = report.add_metric("sharable_" + std::to_string(n),
                                  "shared_ram_mb", shared.ram_mb);
    row.extra.emplace_back("dedicated_ram_mb", dedicated.ram_mb);
    row.extra.emplace_back("ram_ratio", dedicated.ram_mb / shared.ram_mb);
    row.extra.emplace_back("shared_boot_ms", shared.total_boot_ms);
    row.extra.emplace_back("dedicated_boot_ms", dedicated.total_boot_ms);
  }

  std::printf("\nClaim under test: RAM and activation cost of the shared "
              "NNF grow by a\nper-context increment, not a per-process one; "
              "the dedicated-VNF column\ngrows linearly with full instance "
              "overhead.\n\n");
  report.emit();
  return 0;
}
