// Machine-readable bench reporting: every bench_* binary prints its
// human-readable tables as before, then emits ONE JSON object on stdout
// (last line, marker-free) of the shape
//
//   {"bench":"<name>","results":[
//     {"name":"...","iterations":N,"ns_per_op":X,"ops_per_sec":Y,
//      "extra":{"key":value,...}}, ...]}
//
// so the BENCH_*.json trajectory can be scraped with `tail -1 | jq`.
// measure_ns() is a self-calibrating wall-clock loop for micro-benches.
// Smoke mode (--smoke flag or NNFV_BENCH_SMOKE=1) runs every measurement
// with a tiny budget so CI can execute all bench binaries in seconds and
// validate their JSON output shape; timings are meaningless there, so
// perf acceptance gates must be skipped (see gates_enabled()).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace nnfv::bench {

namespace detail {
inline bool& smoke_flag() {
  static bool smoke = []() {
    const char* env = std::getenv("NNFV_BENCH_SMOKE");
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
  }();
  return smoke;
}
inline std::string& mode_flag() {
  static std::string mode;
  return mode;
}
}  // namespace detail

/// True when the bench should run with a tiny iteration budget.
inline bool smoke_mode() { return detail::smoke_flag(); }

/// The --mode=<value> flag, or "" when absent. Benches that distinguish
/// workload variants (e.g. bench_table1_ipsec --mode=gcm|cbc) read this;
/// others ignore it.
inline const std::string& mode() { return detail::mode_flag(); }

/// Call first in main(): enables smoke mode on --smoke (the env var
/// NNFV_BENCH_SMOKE=1 works without touching argv) and captures
/// --mode=<value>.
inline void parse_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) detail::smoke_flag() = true;
    if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      detail::mode_flag() = argv[i] + 7;
    }
  }
}

/// False when timings cannot be trusted: smoke runs, or benches built
/// against an unoptimised nnfv library (CMake defines
/// NNFV_BENCH_UNOPTIMIZED then). Perf acceptance gates must return
/// success without judging in that case.
inline bool gates_enabled() {
#ifdef NNFV_BENCH_UNOPTIMIZED
  return false;
#else
  return !smoke_mode();
#endif
}

struct BenchResult {
  std::string name;
  std::uint64_t iterations = 0;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  std::vector<std::pair<std::string, double>> extra;
};

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    if (smoke_mode()) flags_.emplace_back("smoke");
#ifdef NNFV_BENCH_UNOPTIMIZED
    // The nnfv library this bench links was built without optimisation
    // (CMake warned at configure time); poison the JSON so tooling
    // (scripts/check_bench_json.py, CI) rejects the numbers.
    flags_.emplace_back("unoptimized");
    std::fprintf(stderr,
                 "%s: WARNING: built against an unoptimised nnfv library; "
                 "numbers are not meaningful\n",
                 bench_name_.c_str());
#endif
  }

  /// Adds a top-level string field, e.g. set_field("backend", "aesni").
  void set_field(const std::string& key, const std::string& value) {
    string_fields_.emplace_back(key, value);
  }

  /// Adds a top-level numeric field, e.g. set_num_field("cpus", 4) —
  /// hardware facts that baseline _requires_* conditions match against.
  void set_num_field(const std::string& key, double value) {
    num_fields_.emplace_back(key, value);
  }

  BenchResult& add(const std::string& name, std::uint64_t iterations,
                   double ns_per_op) {
    BenchResult result;
    result.name = name;
    result.iterations = iterations;
    result.ns_per_op = ns_per_op;
    result.ops_per_sec = ns_per_op > 0.0 ? 1e9 / ns_per_op : 0.0;
    results_.push_back(std::move(result));
    return results_.back();
  }

  /// For benches whose headline metric is not a latency (goodput, counts):
  /// records the metric under `extra` with ns_per_op = 0.
  BenchResult& add_metric(const std::string& name, const std::string& key,
                          double value) {
    BenchResult& result = add(name, 0, 0.0);
    result.extra.emplace_back(key, value);
    return result;
  }

  void emit(std::FILE* out = stdout) const {
    std::fprintf(out, "{\"bench\":\"%s\"", bench_name_.c_str());
    for (const auto& [key, value] : string_fields_) {
      std::fprintf(out, ",\"%s\":\"%s\"", key.c_str(), value.c_str());
    }
    for (const auto& [key, value] : num_fields_) {
      std::fprintf(out, ",\"%s\":%.6g", key.c_str(), value);
    }
    for (const std::string& flag : flags_) {
      std::fprintf(out, ",\"%s\":true", flag.c_str());
    }
    std::fprintf(out, ",\"results\":[");
    for (std::size_t i = 0; i < results_.size(); ++i) {
      const BenchResult& r = results_[i];
      std::fprintf(out,
                   "%s{\"name\":\"%s\",\"iterations\":%llu,"
                   "\"ns_per_op\":%.6g,\"ops_per_sec\":%.6g",
                   i == 0 ? "" : ",", r.name.c_str(),
                   static_cast<unsigned long long>(r.iterations), r.ns_per_op,
                   r.ops_per_sec);
      if (!r.extra.empty()) {
        std::fprintf(out, ",\"extra\":{");
        for (std::size_t j = 0; j < r.extra.size(); ++j) {
          std::fprintf(out, "%s\"%s\":%.6g", j == 0 ? "" : ",",
                       r.extra[j].first.c_str(), r.extra[j].second);
        }
        std::fprintf(out, "}");
      }
      std::fprintf(out, "}");
    }
    std::fprintf(out, "]}\n");
  }

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, std::string>> string_fields_;
  std::vector<std::pair<std::string, double>> num_fields_;
  std::vector<std::string> flags_;
  // deque: references returned by add()/add_metric() stay valid across
  // later add() calls (a vector would invalidate them on reallocation).
  std::deque<BenchResult> results_;
};

/// Wall-clock ns per call of `fn`, self-calibrated to run ~`min_ms` total
/// (default 100 ms, or ~1 ms in smoke mode). Returns {ns_per_op,
/// iterations}.
template <typename F>
inline std::pair<double, std::uint64_t> measure_ns(F&& fn,
                                                   double min_ms = -1.0) {
  if (min_ms < 0.0) min_ms = smoke_mode() ? 1.0 : 100.0;
  using Clock = std::chrono::steady_clock;
  std::uint64_t iters = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    if (elapsed_ms >= min_ms || iters > (1ULL << 30)) {
      return {elapsed_ms * 1e6 / static_cast<double>(iters), iters};
    }
    const double scale =
        elapsed_ms > 0.0 ? (min_ms * 1.2) / elapsed_ms : 1000.0;
    iters = static_cast<std::uint64_t>(
        static_cast<double>(iters) * (scale > 1000.0 ? 1000.0 : scale) + 1);
  }
}

/// Keeps a value alive so the optimiser cannot delete the computation.
template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace nnfv::bench
