// Experiment A5 — deployment latency per management driver.
//
// The paper motivates NNFs by execution overhead; activation cost matters
// just as much on a CPE (service turn-up time). This bench reports the
// modeled create->running latency per driver, the marginal latency of
// sharing an already-running NNF, and the wall-clock cost of the
// orchestrator's own control-plane work (validation, LSI setup, steering),
// measured on the host.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  bench::JsonReport report("bench_deploy_latency");
  std::printf("=== A5: deployment latency per driver (IPsec NF) ===\n\n");
  std::printf("%-10s | %14s %14s | %14s\n", "backend", "boot (model)",
              "shared (model)", "ctl-plane (host)");
  std::printf("-----------+--------------------------------+--------------"
              "---\n");

  for (virt::BackendKind kind :
       {virt::BackendKind::kNative, virt::BackendKind::kDocker,
        virt::BackendKind::kDpdk, virt::BackendKind::kVm}) {
    core::UniversalNode node;

    const auto wall_start = std::chrono::steady_clock::now();
    auto first = node.orchestrator().deploy(bench::ipsec_cpe_graph("a", kind));
    const auto wall_end = std::chrono::steady_clock::now();
    if (!first) {
      std::printf("%-10s | deploy failed: %s\n",
                  std::string(virt::backend_name(kind)).c_str(),
                  first.status().to_string().c_str());
      continue;
    }
    const double control_plane_us =
        std::chrono::duration<double, std::micro>(wall_end - wall_start)
            .count();

    // Second graph of the same type: NNFs share; VNFs boot again.
    nffg::NfFg second_graph = bench::ipsec_cpe_graph("b", kind);
    second_graph.endpoints[0].vlan = 100;
    second_graph.endpoints[1].vlan = 200;
    auto second = node.orchestrator().deploy(second_graph);
    const double second_ms =
        second ? static_cast<double>(second->placements[0].boot_time) / 1e6
               : -1.0;

    std::printf("%-10s | %11.1f ms %11.1f ms | %11.1f us\n",
                std::string(virt::backend_name(kind)).c_str(),
                static_cast<double>(first->placements[0].boot_time) / 1e6,
                second_ms, control_plane_us);
    auto& row = report.add_metric(
        "deploy_" + std::string(virt::backend_name(kind)), "boot_ms",
        static_cast<double>(first->placements[0].boot_time) / 1e6);
    row.extra.emplace_back("shared_boot_ms", second_ms);
    row.extra.emplace_back("control_plane_us", control_plane_us);
  }

  std::printf("\nReadings: native boots in tens of ms (plugin scripts) and "
              "*shares* in\n~20 ms (context + marks); a VM pays seconds of "
              "boot for every graph.\nThe orchestrator's own control-plane "
              "work is microseconds — placement\nis never the bottleneck.\n\n");
  report.emit();
  return 0;
}
