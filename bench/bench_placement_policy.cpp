// Experiment A6 — placement-policy ablation: what does NNF support buy a
// CPE, end to end?
//
// Identical IPsec service graphs are deployed one by one onto a 1 GB CPE
// until the node refuses, under three scheduler policies:
//   * default       — the paper's policy (prefer NNF, share when possible)
//   * vnf-only      — a conventional NFV platform (no NNFs exist)
//   * fast-activate — minimize service turn-up latency
// Reported: how many customer graphs fit, RAM at capacity, and cumulative
// activation latency. This is the paper's value proposition as one number:
// the NNF-aware node hosts orders of magnitude more lightweight services.
#include <cstdio>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

namespace {

struct PolicyOutcome {
  int graphs = 0;
  double ram_mb = 0.0;
  double activation_ms = 0.0;
  std::string first_backend;
};

PolicyOutcome fill_node(core::PlacementPolicyKind policy, int cap) {
  core::UniversalNodeConfig config;
  config.placement_policy = policy;
  core::UniversalNode node(config);
  PolicyOutcome outcome;
  for (int i = 0; i < cap; ++i) {
    nffg::NfFg graph = bench::ipsec_cpe_graph("g" + std::to_string(i),
                                              std::nullopt);
    graph.endpoints[0].vlan = static_cast<std::uint16_t>(100 + i);
    graph.endpoints[1].vlan = static_cast<std::uint16_t>(1500 + i);
    auto report = node.orchestrator().deploy(graph);
    if (!report) break;
    if (i == 0) {
      outcome.first_backend =
          std::string(virt::backend_name(report->placements[0].backend));
    }
    outcome.activation_ms +=
        static_cast<double>(report->ready_latency) / 1e6;
    ++outcome.graphs;
  }
  outcome.ram_mb =
      static_cast<double>(node.resources().ram().used()) / (1024.0 * 1024.0);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  std::printf("=== A6: placement policies on a 1 GB CPE (IPsec graphs until "
              "full) ===\n\n");
  std::printf("%-14s | %7s | %10s | %14s | %s\n", "policy", "graphs",
              "RAM used", "cum. turn-up", "1st placement");
  std::printf("---------------+---------+------------+----------------+----"
              "-----------\n");

  struct Row {
    const char* name;
    core::PlacementPolicyKind kind;
    int cap;  // stop early for unbounded cases
  } rows[] = {
      {"default", core::PlacementPolicyKind::kDefault, 300},
      {"vnf-only", core::PlacementPolicyKind::kVnfOnly, 300},
      {"fast-activate", core::PlacementPolicyKind::kFastActivation, 300},
  };
  bench::JsonReport report("bench_placement_policy");
  for (const Row& row : rows) {
    PolicyOutcome outcome =
        fill_node(row.kind, bench::smoke_mode() ? 5 : row.cap);
    std::printf("%-14s | %6d%s | %7.1f MB | %11.1f ms | %s\n", row.name,
                outcome.graphs, outcome.graphs >= row.cap ? "+" : " ",
                outcome.ram_mb, outcome.activation_ms,
                outcome.first_backend.c_str());
    auto& json_row = report.add_metric(std::string("policy_") + row.name,
                                       "graphs_deployed", outcome.graphs);
    json_row.extra.emplace_back("ram_mb", outcome.ram_mb);
    json_row.extra.emplace_back("cumulative_activation_ms",
                                outcome.activation_ms);
  }

  std::printf(
      "\nReadings:\n"
      "  * default: the first graph boots the NNF (19.4 MB); every further\n"
      "    graph is a 0.7 MB context — hundreds of customers fit, turn-up\n"
      "    stays tens of ms.\n"
      "  * vnf-only: each graph is a 24.2 MB container (or worse, a VM) —\n"
      "    the node fills after a few dozen graphs and turn-up accumulates\n"
      "    hundreds of ms per service.\n"
      "  * fast-activate coincides with default here: the shared NNF is\n"
      "    also the fastest activation.\n\n");
  report.emit();
  return 0;
}
