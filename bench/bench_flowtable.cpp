// Experiment A3 — steering cost: flow-table lookup scaling.
//
// LSI-0 classifies every packet entering the node; its rule count grows
// with the number of deployed graphs (one rule per graph VLAN here). The
// production FlowTable uses the tiered classifier (microflow cache +
// tuple-space search); LinearTable below replicates the seed's linear
// priority scan as the baseline. Emits the JSON result block described in
// bench_json.hpp; the headline `speedup_vs_linear` at 1024 entries is the
// acceptance metric for the classifier rewrite.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "packet/builder.hpp"
#include "switch/flow_table.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench

/// The seed's FlowTable lookup: a linear scan over priority-ordered
/// entries, each probed with FlowMatch::matches().
class LinearTable {
 public:
  void add(std::uint16_t priority, nfswitch::FlowMatch match) {
    Entry entry{next_id_++, priority, std::move(match)};
    auto pos = std::find_if(entries_.begin(), entries_.end(),
                            [priority](const Entry& e) {
                              return e.priority < priority;
                            });
    entries_.insert(pos, std::move(entry));
  }

  const nfswitch::FlowMatch* lookup(const nfswitch::FlowContext& ctx) const {
    for (const Entry& entry : entries_) {
      if (entry.match.matches(ctx)) return &entry.match;
    }
    return nullptr;
  }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint16_t priority;
    nfswitch::FlowMatch match;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 1;
};

packet::PacketBuffer make_frame(std::uint16_t vlan) {
  packet::UdpFrameSpec spec;
  spec.vlan = vlan;
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
  spec.src_port = 1000;
  spec.dst_port = 2000;
  static const std::vector<std::uint8_t> payload(64, 0);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

nfswitch::FlowMatch rule_for(int graph) {
  nfswitch::FlowMatch match;
  match.in_port = 1;
  match.vlan = static_cast<std::uint16_t>(100 + graph);
  return match;
}

nfswitch::FlowContext context_for(std::uint16_t vlan) {
  auto frame = make_frame(vlan);
  auto fields = packet::extract_flow_fields(frame.data());
  return nfswitch::FlowContext{1, fields.value()};
}

struct Scenario {
  const char* name;
  std::uint16_t vlan;  ///< packet VLAN for this scenario
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  bench::JsonReport report("bench_flowtable");
  std::printf("=== A3: flow-table lookup scaling "
              "(tiered classifier vs seed linear scan) ===\n\n");
  std::printf("%-28s %12s %12s %10s\n", "scenario", "linear ns", "tiered ns",
              "speedup");

  double speedup_1024 = 0.0;
  for (int graphs : {4, 64, 1024}) {
    LinearTable linear;
    nfswitch::FlowTable tiered;
    for (int g = 0; g < graphs; ++g) {
      linear.add(100, rule_for(g));
      tiered.add(100, rule_for(g),
                 {nfswitch::FlowAction::output(
                     static_cast<nfswitch::PortId>(10 + g))});
    }

    const Scenario scenarios[] = {
        {"first_rule", 100},
        {"last_rule", static_cast<std::uint16_t>(100 + graphs - 1)},
        {"miss", 99},
    };
    for (const Scenario& s : scenarios) {
      const nfswitch::FlowContext ctx = context_for(s.vlan);
      const nfswitch::FlowKeyView key =
          nfswitch::FlowKeyView::from_context(ctx);

      auto [linear_ns, linear_iters] = bench::measure_ns(
          [&]() { bench::do_not_optimize(linear.lookup(ctx)); });
      auto [tiered_ns, tiered_iters] = bench::measure_ns(
          [&]() { bench::do_not_optimize(tiered.lookup_key(key, 64)); });

      const double speedup = tiered_ns > 0.0 ? linear_ns / tiered_ns : 0.0;
      char name[64];
      std::snprintf(name, sizeof(name), "lookup_%d_%s", graphs, s.name);
      std::printf("%-28s %12.1f %12.1f %9.1fx\n", name, linear_ns, tiered_ns,
                  speedup);

      auto& result = report.add(name, tiered_iters, tiered_ns);
      result.extra.emplace_back("linear_ns_per_op", linear_ns);
      result.extra.emplace_back("speedup_vs_linear", speedup);
      (void)linear_iters;
    }

    // Multiflow: cycle 4096 distinct flows (defeats the microflow cache
    // often enough to exercise the tuple-space tier).
    std::vector<nfswitch::FlowKeyView> keys;
    std::vector<nfswitch::FlowContext> contexts;
    for (int i = 0; i < 4096; ++i) {
      contexts.push_back(
          context_for(static_cast<std::uint16_t>(100 + (i % graphs))));
      keys.push_back(nfswitch::FlowKeyView::from_context(contexts.back()));
    }
    std::size_t li = 0, ti = 0;
    auto [linear_ns, linear_iters] = bench::measure_ns([&]() {
      bench::do_not_optimize(linear.lookup(contexts[li++ & 4095]));
    });
    auto [tiered_ns, tiered_iters] = bench::measure_ns([&]() {
      bench::do_not_optimize(tiered.lookup_key(keys[ti++ & 4095], 64));
    });
    char name[64];
    std::snprintf(name, sizeof(name), "lookup_%d_multiflow", graphs);
    const double speedup = tiered_ns > 0.0 ? linear_ns / tiered_ns : 0.0;
    std::printf("%-28s %12.1f %12.1f %9.1fx\n", name, linear_ns, tiered_ns,
                speedup);
    auto& result = report.add(name, tiered_iters, tiered_ns);
    result.extra.emplace_back("linear_ns_per_op", linear_ns);
    result.extra.emplace_back("speedup_vs_linear", speedup);
    (void)linear_iters;
    // The acceptance gate uses the 4096-flow working set, which exercises
    // the tuple-space tier rather than pure microflow-cache hits.
    if (graphs == 1024) speedup_1024 = speedup;
  }

  // Install/remove churn: 64 rules in, one cookie's worth out.
  auto [churn_ns, churn_iters] = bench::measure_ns([&]() {
    nfswitch::FlowTable table;
    for (int g = 0; g < 64; ++g) {
      table.add(100, rule_for(g), {nfswitch::FlowAction::output(2)},
                static_cast<nfswitch::Cookie>(g % 4));
    }
    bench::do_not_optimize(table.remove_by_cookie(2));
  });
  std::printf("%-28s %12s %12.1f\n", "install64_remove_cookie", "-",
              churn_ns);
  report.add("install64_remove_cookie", churn_iters, churn_ns);

  std::printf("\nacceptance: 1024-entry multiflow speedup %.1fx "
              "(target >= 10x)\n\n", speedup_1024);
  report.emit();
  if (!bench::gates_enabled()) return 0;  // smoke / unoptimised build
  return speedup_1024 >= 10.0 ? 0 : 1;
}
