// Experiment A3 — steering cost: flow-table lookup scaling.
//
// LSI-0 classifies every packet entering the node; its rule count grows
// with the number of deployed graphs (4 rules per graph here). This
// micro-bench measures lookup latency vs table size and the best/worst
// position of the matching rule (linear table, priority order).
#include <benchmark/benchmark.h>

#include "packet/builder.hpp"
#include "switch/flow_table.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench

packet::PacketBuffer make_frame(std::uint16_t vlan) {
  packet::UdpFrameSpec spec;
  spec.vlan = vlan;
  spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
  spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
  spec.src_port = 1000;
  spec.dst_port = 2000;
  static const std::vector<std::uint8_t> payload(64, 0);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

/// Builds an LSI-0-style classifier: per "graph" g, one rule matching
/// (in_port=1, vlan=100+g).
nfswitch::FlowTable classifier_of(int graphs) {
  nfswitch::FlowTable table;
  for (int g = 0; g < graphs; ++g) {
    nfswitch::FlowMatch match;
    match.in_port = 1;
    match.vlan = static_cast<std::uint16_t>(100 + g);
    table.add(100, match,
              {nfswitch::FlowAction::output(
                  static_cast<nfswitch::PortId>(10 + g))});
  }
  return table;
}

void BM_LookupFirstRule(benchmark::State& state) {
  const int graphs = static_cast<int>(state.range(0));
  nfswitch::FlowTable table = classifier_of(graphs);
  auto frame = make_frame(100);  // matches the first-installed rule
  auto fields = packet::extract_flow_fields(frame.data());
  nfswitch::FlowContext ctx{1, fields.value()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(ctx, frame.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupFirstRule)->Arg(4)->Arg(64)->Arg(1024);

void BM_LookupLastRule(benchmark::State& state) {
  const int graphs = static_cast<int>(state.range(0));
  nfswitch::FlowTable table = classifier_of(graphs);
  auto frame = make_frame(static_cast<std::uint16_t>(100 + graphs - 1));
  auto fields = packet::extract_flow_fields(frame.data());
  nfswitch::FlowContext ctx{1, fields.value()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(ctx, frame.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupLastRule)->Arg(4)->Arg(64)->Arg(1024);

void BM_LookupMiss(benchmark::State& state) {
  const int graphs = static_cast<int>(state.range(0));
  nfswitch::FlowTable table = classifier_of(graphs);
  auto frame = make_frame(99);  // matches nothing
  auto fields = packet::extract_flow_fields(frame.data());
  nfswitch::FlowContext ctx{1, fields.value()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(ctx, frame.size()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LookupMiss)->Arg(4)->Arg(64)->Arg(1024);

void BM_FieldExtraction(benchmark::State& state) {
  auto frame = make_frame(100);
  for (auto _ : state) {
    auto fields = packet::extract_flow_fields(frame.data());
    benchmark::DoNotOptimize(fields);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FieldExtraction);

void BM_RuleInstallRemove(benchmark::State& state) {
  for (auto _ : state) {
    nfswitch::FlowTable table;
    for (int g = 0; g < 64; ++g) {
      nfswitch::FlowMatch match;
      match.in_port = 1;
      match.vlan = static_cast<std::uint16_t>(100 + g);
      table.add(100, match, {nfswitch::FlowAction::output(2)},
                /*cookie=*/static_cast<nfswitch::Cookie>(g % 4));
    }
    benchmark::DoNotOptimize(table.remove_by_cookie(2));
  }
}
BENCHMARK(BM_RuleInstallRemove);

}  // namespace
