// Experiment T1 — reproduces **Table 1** of the paper:
//
//   "Results with IPSec client VNFs"
//   Platform    Through.   RAM       Image size
//   KVM/QEMU    796 Mbps   390.6 MB  522 MB
//   Docker      1095 Mbps  24.2 MB   240 MB
//   Native NF   1094 Mbps  19.4 MB   5 MB
//
// Method (mirrors §3): deploy the Strongswan-like ESP tunnel endpoint as a
// VM, a Docker container and a native NF on the same CPE node model;
// saturate it with 1408-byte UDP datagrams (iPerf-style) and report the
// maximum goodput, the runtime RAM reserved for the deployment, and the
// size of the image the flavor required.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

struct Row {
  const char* platform;
  virt::BackendKind backend;
  double paper_mbps;
  double paper_ram_mb;
  double paper_image_mb;
};

constexpr Row kRows[] = {
    {"KVM/QEMU", virt::BackendKind::kVm, 796.0, 390.6, 522.0},
    {"Docker", virt::BackendKind::kDocker, 1095.0, 24.2, 240.0},
    {"Native NF", virt::BackendKind::kNative, 1094.0, 19.4, 5.0},
};

}  // namespace

int main() {
  std::printf(
      "=== Table 1: Results with IPSec client VNFs "
      "(paper vs this reproduction) ===\n");
  std::printf("workload: saturating UDP, 1408 B datagrams, ESP tunnel mode, "
              "1-core CPE model\n\n");
  std::printf("%-10s | %13s %13s | %11s %11s | %11s %11s\n", "Platform",
              "Thr (paper)", "Thr (ours)", "RAM (paper)", "RAM (ours)",
              "Img (paper)", "Img (ours)");
  std::printf("-----------+----------------------------+------------------"
              "-------+-------------------------\n");

  for (const Row& row : kRows) {
    core::UniversalNode node;
    auto report =
        node.orchestrator().deploy(bench::ipsec_cpe_graph("t1", row.backend));
    if (!report) {
      std::printf("%-10s | deploy failed: %s\n", row.platform,
                  report.status().to_string().c_str());
      return 1;
    }
    const auto& placement = report->placements.at(0);

    auto result = bench::measure_saturation(node, 1408, 150000.0,
                                            100 * sim::kMillisecond,
                                            sim::kSecond);
    std::printf("%-10s | %8.0f Mbps %8.1f Mbps | %8.1f MB %8.1f MB | "
                "%8.0f MB %8.1f MB\n",
                row.platform, row.paper_mbps, result.goodput_mbps,
                row.paper_ram_mb,
                static_cast<double>(placement.ram_bytes) / (1024.0 * 1024.0),
                row.paper_image_mb,
                static_cast<double>(placement.image_bytes) /
                    (1024.0 * 1024.0));
  }

  std::printf("\nShape checks (the claims under test):\n");
  std::printf("  * VM throughput ~0.73x of native (user-space packet path"
              " + hypervisor exits)\n");
  std::printf("  * Docker ~= native throughput (both use the host kernel"
              " path)\n");
  std::printf("  * RAM: VM >> Docker > native; image: VM >> Docker >> native"
              " (~100x)\n");
  return 0;
}
