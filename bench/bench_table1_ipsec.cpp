// Experiment T1 — reproduces **Table 1** of the paper:
//
//   "Results with IPSec client VNFs"
//   Platform    Through.   RAM       Image size
//   KVM/QEMU    796 Mbps   390.6 MB  522 MB
//   Docker      1095 Mbps  24.2 MB   240 MB
//   Native NF   1094 Mbps  19.4 MB   5 MB
//
// Method (mirrors §3): deploy the Strongswan-like ESP tunnel endpoint as a
// VM, a Docker container and a native NF on the same CPE node model;
// saturate it with 1408-byte UDP datagrams (iPerf-style) and report the
// maximum goodput, the runtime RAM reserved for the deployment, and the
// size of the image the flavor required.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_backend.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "crypto/backend.hpp"
#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "reference_crypto.hpp"
#include "util/cpuid.hpp"
#include "util/rng.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

struct Row {
  const char* platform;
  virt::BackendKind backend;
  double paper_mbps;
  double paper_ram_mb;
  double paper_image_mb;
};

constexpr Row kRows[] = {
    {"KVM/QEMU", virt::BackendKind::kVm, 796.0, 390.6, 522.0},
    {"Docker", virt::BackendKind::kDocker, 1095.0, 24.2, 240.0},
    {"Native NF", virt::BackendKind::kNative, 1094.0, 19.4, 5.0},
};

/// Host-clock ESP crypto cost (AES-128-CBC + HMAC-SHA256 over a 1408-byte
/// datagram), current implementation vs the seed's byte-wise AES. This is
/// the "honest competition" check: the native row's functional datapath
/// must not be handicapped by slow crypto.
double host_crypto_speedup(nnfv::bench::JsonReport& report) {
  using namespace nnfv;
  util::Rng rng(11);
  const auto key = rng.bytes(16);
  const auto auth_key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(1408);  // already a multiple of the block size
  auto aes = crypto::Aes::create(key);
  bench::ref::ReferenceAes ref_aes(key);

  const auto fast = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
  const auto slow = bench::ref::cbc_encrypt(ref_aes, iv, data);
  if (!fast.is_ok() || fast->size() != slow.size() ||
      std::memcmp(fast->data(), slow.data(), slow.size()) != 0) {
    std::fprintf(stderr, "T-table/reference AES mismatch!\n");
    return -1.0;
  }

  auto [ns_new, iters_new] = bench::measure_ns([&]() {
    auto cipher = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, *cipher));
  });
  auto [ns_ref, iters_ref] = bench::measure_ns([&]() {
    auto cipher = bench::ref::cbc_encrypt(ref_aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, cipher));
  });
  const double speedup = ns_new > 0.0 ? ns_ref / ns_new : 0.0;

  std::printf("\nHost crypto (ESP AES-CBC+HMAC, 1408 B): %.0f ns now vs "
              "%.0f ns seed AES -> %.1fx\n", ns_new, ns_ref, speedup);
  auto& now = report.add("esp_crypto_1408", iters_new, ns_new);
  now.extra.emplace_back("mbit_per_sec", data.size() * 8.0 / ns_new * 1e3);
  auto& ref = report.add("esp_crypto_1408_seed_ref", iters_ref, ns_ref);
  ref.extra.emplace_back("mbit_per_sec", data.size() * 8.0 / ns_ref * 1e3);
  report.add_metric("esp_crypto_speedup_vs_seed", "speedup", speedup);
  return speedup;
}

/// Active backend vs the forced T-table portable backend on the same ESP
/// kernel. The acceptance gate: when a hardware backend is selected it
/// must be >= 2x the portable baseline; when the portable backend is the
/// active one there is nothing to gate (returns success).
double backend_speedup_vs_portable(nnfv::bench::JsonReport& report) {
  using namespace nnfv;
  util::Rng rng(12);
  const auto key = rng.bytes(16);
  const auto auth_key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(1408);
  auto aes = crypto::Aes::create(key);

  const auto esp_kernel = [&]() {
    auto cipher = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, *cipher));
  };
  return bench::report_backend_speedup(
      report, "esp_crypto_1408_portable_baseline", esp_kernel);
}

struct GcmSpeedups {
  double vs_cbc = 0.0;       ///< GCM seal vs CBC+HMAC, active backend
  double vs_portable = 0.0;  ///< GCM seal, active backend vs portable
  double vs_split = 0.0;     ///< fused gcm_crypt seal vs PR 4 split passes
};

/// Differential guard for the stitched kernel: the fused seal must be
/// bit-identical to the reference oracle's split two-pass at lengths
/// straddling both the 8-block (128 B) CTR chunk and the 4-block (64 B)
/// GHASH aggregation, including their tails and partial final blocks.
bool fused_seal_matches_reference_oracle() {
  util::Rng rng(14);
  const auto key = rng.bytes(16);
  const auto aad = rng.bytes(8);
  for (std::size_t len : {1u, 15u, 16u, 17u, 63u, 64u, 65u, 79u, 80u, 127u,
                          128u, 129u, 143u, 144u, 191u, 192u, 1408u, 1419u}) {
    const auto nonce = rng.bytes(12);
    const auto plain = rng.bytes(len);
    std::vector<std::uint8_t> want_ct(len);
    std::uint8_t want_tag[crypto::GcmContext::kTagSize];
    {
      crypto::ScopedBackendOverride oracle(
          crypto::detail::reference_backend());
      auto gcm = crypto::GcmContext::create(key);
      if (!gcm.is_ok() ||
          !gcm->seal(nonce, aad, plain, want_ct.data(), want_tag).is_ok()) {
        return false;
      }
    }
    auto gcm = crypto::GcmContext::create(key);
    std::vector<std::uint8_t> got_ct(len);
    std::uint8_t got_tag[crypto::GcmContext::kTagSize];
    if (!gcm.is_ok() ||
        !gcm->seal(nonce, aad, plain, got_ct.data(), got_tag).is_ok() ||
        got_ct != want_ct ||
        std::memcmp(got_tag, want_tag, sizeof(want_tag)) != 0) {
      std::fprintf(stderr,
                   "fused GCM seal diverges from the reference oracle at "
                   "length %zu!\n", len);
      return false;
    }
  }
  return true;
}

/// The two ESP encrypt transforms head to head on the active backend —
/// AES-GCM seal (one pass: CTR + GHASH) vs AES-CBC + HMAC-SHA256 (serial
/// chain + separate MAC pass) over the same 1408-byte datagram — plus the
/// GCM kernel's own active-vs-portable comparison. Both transforms are
/// always measured so one JSON run captures cbc and gcm side by side.
GcmSpeedups gcm_crypto_speedups(nnfv::bench::JsonReport& report) {
  using namespace nnfv;
  util::Rng rng(13);
  const auto key = rng.bytes(16);
  const auto auth_key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto nonce = rng.bytes(12);
  const auto aad = rng.bytes(8);  // ESP header-sized
  const auto data = rng.bytes(1408);
  auto aes = crypto::Aes::create(key);
  auto gcm = crypto::GcmContext::create(key);
  std::vector<std::uint8_t> cipher(data.size());
  std::uint8_t tag[crypto::GcmContext::kTagSize];

  auto [ns_cbc, iters_cbc] = bench::measure_ns([&]() {
    auto c = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, *c));
  });
  (void)iters_cbc;
  const auto gcm_kernel = [&]() {
    (void)gcm->seal(nonce, aad, data, cipher.data(), tag);
    bench::do_not_optimize(tag);
  };
  auto [ns_gcm, iters_gcm] = bench::measure_ns(gcm_kernel);

  GcmSpeedups speedups;
  speedups.vs_cbc = ns_gcm > 0.0 ? ns_cbc / ns_gcm : 0.0;
  std::printf("ESP encrypt 1408 B: gcm %.0f ns vs cbc-hmac %.0f ns -> "
              "%.1fx\n", ns_gcm, ns_cbc, speedups.vs_cbc);
  auto& row = report.add("esp_gcm_encrypt_1408", iters_gcm, ns_gcm);
  row.extra.emplace_back("mbit_per_sec", data.size() * 8.0 / ns_gcm * 1e3);
  report.add_metric("esp_gcm_vs_cbc_speedup", "speedup", speedups.vs_cbc);

  // The PR 4 split-pass seal (aes_ctr_xor, then ghash over AAD +
  // ciphertext + lengths) as the yardstick for the stitched gcm_crypt:
  // same primitives, same backend, two walks over the payload.
  crypto::GhashKey hkey;
  const std::uint8_t zero[16] = {};
  (*aes).encrypt_block(zero, hkey.h);
  crypto::active_backend().ghash_init(hkey);
  const auto split_kernel = [&]() {
    bench::gcm_split_seal(*aes, hkey, nonce, aad, data, cipher.data(), tag);
    bench::do_not_optimize(tag);
  };
  auto [ns_split, iters_split] = bench::measure_ns(split_kernel);
  auto& split_row =
      report.add("esp_gcm_encrypt_1408_split", iters_split, ns_split);
  split_row.extra.emplace_back("fused_ns_per_op", ns_gcm);
  speedups.vs_split = ns_gcm > 0.0 ? ns_split / ns_gcm : 0.0;
  std::printf("ESP GCM seal 1408 B: fused %.0f ns vs split passes %.0f ns "
              "-> %.2fx\n", ns_gcm, ns_split, speedups.vs_split);
  report.add_metric("gcm_stitch_speedup_vs_split", "speedup",
                    speedups.vs_split);

  speedups.vs_portable = bench::report_backend_speedup(
      report, "esp_gcm_1408_portable_baseline", gcm_kernel,
      "gcm_backend_speedup_vs_portable");
  return speedups;
}

}  // namespace

int main(int argc, char** argv) {
  nnfv::bench::parse_cli(argc, argv);
  // --mode selects the ESP transform the Table-1 graphs deploy (the
  // crypto kernel comparisons below always measure both transforms).
  const std::string mode =
      nnfv::bench::mode().empty() ? "gcm" : nnfv::bench::mode();
  if (mode != "gcm" && mode != "cbc") {
    std::fprintf(stderr, "unknown --mode=%s (want gcm or cbc)\n",
                 mode.c_str());
    return 2;
  }
  const std::string esp_transform = mode == "cbc" ? "cbc-hmac" : "gcm";
  nnfv::bench::JsonReport json_report("bench_table1_ipsec");
  json_report.set_field("backend",
                        std::string(crypto::active_backend().name()));
  json_report.set_field("cpu_features", util::cpu_feature_string());
  json_report.set_field("mode", mode);
  std::printf(
      "=== Table 1: Results with IPSec client VNFs "
      "(paper vs this reproduction) ===\n");
  std::printf("workload: saturating UDP, 1408 B datagrams, ESP tunnel mode "
              "(%s), 1-core CPE model\n\n", esp_transform.c_str());
  std::printf("%-10s | %13s %13s | %11s %11s | %11s %11s\n", "Platform",
              "Thr (paper)", "Thr (ours)", "RAM (paper)", "RAM (ours)",
              "Img (paper)", "Img (ours)");
  std::printf("-----------+----------------------------+------------------"
              "-------+-------------------------\n");

  double allocs_per_packet = 0.0;  // worst row; must be 0 in steady state
  for (const Row& row : kRows) {
    core::UniversalNode node;
    auto report = node.orchestrator().deploy(
        bench::ipsec_cpe_graph("t1", row.backend, esp_transform));
    if (!report) {
      std::printf("%-10s | deploy failed: %s\n", row.platform,
                  report.status().to_string().c_str());
      return 1;
    }
    const auto& placement = report->placements.at(0);

    // Smoke: a few hundred simulated packets still exercise deploy +
    // datapath + JSON plumbing; full runs saturate for a simulated second.
    auto result = bench::smoke_mode()
                      ? bench::measure_saturation(node, 1408, 20000.0,
                                                  10 * sim::kMillisecond,
                                                  50 * sim::kMillisecond)
                      : bench::measure_saturation(node, 1408, 150000.0,
                                                  100 * sim::kMillisecond,
                                                  sim::kSecond);
    std::printf("%-10s | %8.0f Mbps %8.1f Mbps | %8.1f MB %8.1f MB | "
                "%8.0f MB %8.1f MB\n",
                row.platform, row.paper_mbps, result.goodput_mbps,
                row.paper_ram_mb,
                static_cast<double>(placement.ram_bytes) / (1024.0 * 1024.0),
                row.paper_image_mb,
                static_cast<double>(placement.image_bytes) /
                    (1024.0 * 1024.0));
    auto& json_row = json_report.add_metric(
        std::string("table1_") + row.platform, "goodput_mbps",
        result.goodput_mbps);
    json_row.extra.emplace_back("paper_mbps", row.paper_mbps);
    json_row.extra.emplace_back(
        "ram_mb", static_cast<double>(placement.ram_bytes) / (1024.0 * 1024.0));
    json_row.extra.emplace_back(
        "image_mb",
        static_cast<double>(placement.image_bytes) / (1024.0 * 1024.0));
    allocs_per_packet = std::max(allocs_per_packet, result.allocs_per_packet);
  }
  // Zero-copy acceptance: once warm, ESP forwarding must not touch the
  // system allocator — encap/decap are offset adjustments inside one
  // pooled mbuf segment. Ceiling-gated at 0 via bench/baseline.json too.
  json_report.add_metric("allocs_per_packet", "allocs_per_packet",
                         allocs_per_packet);

  // Correctness before timing: the stitched seal must match the oracle
  // (cheap, so it runs in every mode including smoke).
  if (!fused_seal_matches_reference_oracle()) return 1;

  const double crypto_speedup = host_crypto_speedup(json_report);
  const double hw_speedup = backend_speedup_vs_portable(json_report);
  const GcmSpeedups gcm_speedups = gcm_crypto_speedups(json_report);
  // The >=2x gate only applies with FULL hardware crypto: the ESP kernel
  // is AES + HMAC-SHA256, and on CPUs with AES-NI but no SHA-NI the aesni
  // backend deliberately keeps portable SHA-256 — accelerating half the
  // kernel legitimately lands below 2x.
  const bool hw_active = crypto::active_backend().name() != "portable" &&
                         crypto::active_backend().name() != "reference";
  const bool hw_gated = hw_active && util::cpu_features().sha_ni;
  // The GCM gates likewise need the whole kernel in hardware: without
  // PCLMULQDQ the GHASH half falls back to the 4-bit table.
  const bool gcm_gated = hw_active && util::cpu_features().pclmul;

  std::printf("\nShape checks (the claims under test):\n");
  std::printf("  * VM throughput ~0.73x of native (user-space packet path"
              " + hypervisor exits)\n");
  std::printf("  * Docker ~= native throughput (both use the host kernel"
              " path)\n");
  std::printf("  * RAM: VM >> Docker > native; image: VM >> Docker >> native"
              " (~100x)\n");
  std::printf("  * ESP crypto >= 2x the seed implementation (got %.1fx)\n",
              crypto_speedup);
  std::printf("  * zero pool heap events per packet in steady state "
              "(got %.4f/pkt)\n", allocs_per_packet);
  if (hw_gated) {
    std::printf("  * accelerated backend >= 2x the T-table portable baseline"
                " (got %.1fx)\n", hw_speedup);
  } else if (hw_active) {
    std::printf("  * partial hardware crypto (AES-NI without SHA-NI); "
                "backend speedup %.1fx reported but not gated\n", hw_speedup);
  } else {
    std::printf("  * no hardware crypto backend on this CPU; portable-vs-"
                "portable not gated\n");
  }
  if (gcm_gated) {
    std::printf("  * ESP GCM encrypt >= 3x cbc-hmac on the accelerated "
                "backend (got %.1fx)\n", gcm_speedups.vs_cbc);
    std::printf("  * accelerated GCM >= 2x the portable GCM baseline "
                "(got %.1fx)\n", gcm_speedups.vs_portable);
    std::printf("  * stitched GCM seal >= 1.15x the split-pass kernel "
                "(got %.2fx)\n", gcm_speedups.vs_split);
  } else {
    std::printf("  * GCM-vs-cbc %.1fx, GCM backend speedup %.1fx and "
                "stitch-vs-split %.2fx reported but not gated (no "
                "AES-NI+PCLMUL)\n",
                gcm_speedups.vs_cbc, gcm_speedups.vs_portable,
                gcm_speedups.vs_split);
  }
  std::printf("\n");
  json_report.emit();
  if (!nnfv::bench::gates_enabled()) return 0;  // smoke / unoptimised build
  if (allocs_per_packet > 0.0) return 1;
  if (crypto_speedup < 2.0) return 1;
  if (hw_gated && hw_speedup < 2.0) return 1;
  if (gcm_gated && gcm_speedups.vs_cbc < 3.0) return 1;
  if (gcm_gated && gcm_speedups.vs_portable < 2.0) return 1;
  if (gcm_gated && gcm_speedups.vs_split < 1.15) return 1;
  return 0;
}
