// Experiment T1 — reproduces **Table 1** of the paper:
//
//   "Results with IPSec client VNFs"
//   Platform    Through.   RAM       Image size
//   KVM/QEMU    796 Mbps   390.6 MB  522 MB
//   Docker      1095 Mbps  24.2 MB   240 MB
//   Native NF   1094 Mbps  19.4 MB   5 MB
//
// Method (mirrors §3): deploy the Strongswan-like ESP tunnel endpoint as a
// VM, a Docker container and a native NF on the same CPE node model;
// saturate it with 1408-byte UDP datagrams (iPerf-style) and report the
// maximum goodput, the runtime RAM reserved for the deployment, and the
// size of the image the flavor required.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "bench_backend.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "crypto/backend.hpp"
#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "reference_crypto.hpp"
#include "util/cpuid.hpp"
#include "util/rng.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

struct Row {
  const char* platform;
  virt::BackendKind backend;
  double paper_mbps;
  double paper_ram_mb;
  double paper_image_mb;
};

constexpr Row kRows[] = {
    {"KVM/QEMU", virt::BackendKind::kVm, 796.0, 390.6, 522.0},
    {"Docker", virt::BackendKind::kDocker, 1095.0, 24.2, 240.0},
    {"Native NF", virt::BackendKind::kNative, 1094.0, 19.4, 5.0},
};

/// Host-clock ESP crypto cost (AES-128-CBC + HMAC-SHA256 over a 1408-byte
/// datagram), current implementation vs the seed's byte-wise AES. This is
/// the "honest competition" check: the native row's functional datapath
/// must not be handicapped by slow crypto.
double host_crypto_speedup(nnfv::bench::JsonReport& report) {
  using namespace nnfv;
  util::Rng rng(11);
  const auto key = rng.bytes(16);
  const auto auth_key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(1408);  // already a multiple of the block size
  auto aes = crypto::Aes::create(key);
  bench::ref::ReferenceAes ref_aes(key);

  const auto fast = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
  const auto slow = bench::ref::cbc_encrypt(ref_aes, iv, data);
  if (!fast.is_ok() || fast->size() != slow.size() ||
      std::memcmp(fast->data(), slow.data(), slow.size()) != 0) {
    std::fprintf(stderr, "T-table/reference AES mismatch!\n");
    return -1.0;
  }

  auto [ns_new, iters_new] = bench::measure_ns([&]() {
    auto cipher = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, *cipher));
  });
  auto [ns_ref, iters_ref] = bench::measure_ns([&]() {
    auto cipher = bench::ref::cbc_encrypt(ref_aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, cipher));
  });
  const double speedup = ns_new > 0.0 ? ns_ref / ns_new : 0.0;

  std::printf("\nHost crypto (ESP AES-CBC+HMAC, 1408 B): %.0f ns now vs "
              "%.0f ns seed AES -> %.1fx\n", ns_new, ns_ref, speedup);
  auto& now = report.add("esp_crypto_1408", iters_new, ns_new);
  now.extra.emplace_back("mbit_per_sec", data.size() * 8.0 / ns_new * 1e3);
  auto& ref = report.add("esp_crypto_1408_seed_ref", iters_ref, ns_ref);
  ref.extra.emplace_back("mbit_per_sec", data.size() * 8.0 / ns_ref * 1e3);
  report.add_metric("esp_crypto_speedup_vs_seed", "speedup", speedup);
  return speedup;
}

/// Active backend vs the forced T-table portable backend on the same ESP
/// kernel. The acceptance gate: when a hardware backend is selected it
/// must be >= 2x the portable baseline; when the portable backend is the
/// active one there is nothing to gate (returns success).
double backend_speedup_vs_portable(nnfv::bench::JsonReport& report) {
  using namespace nnfv;
  util::Rng rng(12);
  const auto key = rng.bytes(16);
  const auto auth_key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(1408);
  auto aes = crypto::Aes::create(key);

  const auto esp_kernel = [&]() {
    auto cipher = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, *cipher));
  };
  return bench::report_backend_speedup(
      report, "esp_crypto_1408_portable_baseline", esp_kernel);
}

struct GcmSpeedups {
  double vs_cbc = 0.0;       ///< GCM seal vs CBC+HMAC, active backend
  double vs_portable = 0.0;  ///< GCM seal, active backend vs portable
  double vs_split = 0.0;     ///< fused gcm_crypt seal vs PR 4 split passes
};

/// Differential guard for the stitched kernel: the fused seal must be
/// bit-identical to the reference oracle's split two-pass at lengths
/// straddling both the 8-block (128 B) CTR chunk and the 4-block (64 B)
/// GHASH aggregation, including their tails and partial final blocks.
bool fused_seal_matches_reference_oracle() {
  util::Rng rng(14);
  const auto key = rng.bytes(16);
  const auto aad = rng.bytes(8);
  for (std::size_t len : {1u, 15u, 16u, 17u, 63u, 64u, 65u, 79u, 80u, 127u,
                          128u, 129u, 143u, 144u, 191u, 192u, 1408u, 1419u}) {
    const auto nonce = rng.bytes(12);
    const auto plain = rng.bytes(len);
    std::vector<std::uint8_t> want_ct(len);
    std::uint8_t want_tag[crypto::GcmContext::kTagSize];
    {
      crypto::ScopedBackendOverride oracle(
          crypto::detail::reference_backend());
      auto gcm = crypto::GcmContext::create(key);
      if (!gcm.is_ok() ||
          !gcm->seal(nonce, aad, plain, want_ct.data(), want_tag).is_ok()) {
        return false;
      }
    }
    auto gcm = crypto::GcmContext::create(key);
    std::vector<std::uint8_t> got_ct(len);
    std::uint8_t got_tag[crypto::GcmContext::kTagSize];
    if (!gcm.is_ok() ||
        !gcm->seal(nonce, aad, plain, got_ct.data(), got_tag).is_ok() ||
        got_ct != want_ct ||
        std::memcmp(got_tag, want_tag, sizeof(want_tag)) != 0) {
      std::fprintf(stderr,
                   "fused GCM seal diverges from the reference oracle at "
                   "length %zu!\n", len);
      return false;
    }
  }
  return true;
}

/// Differential guard for the multi-buffer kernel: seal_mb over 1..8
/// ragged lanes must be bit-identical to the reference oracle's per-lane
/// seal, and open_mb must round-trip every lane. Lane lengths straddle
/// the 128 B CTR chunk and the 8-block GHASH aggregation so the batched
/// scheduler's drain paths are all exercised before any timing runs.
bool mb_seal_matches_reference_oracle() {
  constexpr std::size_t kMaxLanes = crypto::CryptoBackend::kMaxMbLanes;
  constexpr std::size_t kLaneLens[kMaxLanes] = {1,   64,  65,  127,
                                                128, 129, 576, 1408};
  util::Rng rng(15);
  const auto key = rng.bytes(16);
  std::vector<std::vector<std::size_t>> cases;
  for (std::size_t nlanes = 1; nlanes <= kMaxLanes; ++nlanes) {
    std::vector<std::size_t> lens(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l) {
      lens[l] = kLaneLens[(l * 3 + nlanes) % kMaxLanes];
    }
    cases.push_back(std::move(lens));
  }
  // Full equal-length batches: the shape the burst gather produces and
  // the curve above times. Below 128 B they hit the register-resident
  // uniform kernel (including its partial-tail epilogue at 96/127);
  // 128/256 B run the cross-lane chunk pipeline with zero remainder.
  for (const std::size_t len : {32U, 64U, 96U, 127U, 128U, 256U}) {
    cases.emplace_back(kMaxLanes, static_cast<std::size_t>(len));
  }
  for (const auto& lens : cases) {
    const std::size_t nlanes = lens.size();
    std::vector<std::vector<std::uint8_t>> nonce(nlanes), aad(nlanes),
        plain(nlanes), want_ct(nlanes), got_ct(nlanes), got_plain(nlanes);
    std::vector<std::array<std::uint8_t, crypto::GcmContext::kTagSize>>
        want_tag(nlanes), got_tag(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l) {
      const std::size_t len = lens[l];
      nonce[l] = rng.bytes(12);
      aad[l] = rng.bytes(8);
      plain[l] = rng.bytes(len);
      want_ct[l].resize(len);
      got_ct[l].resize(len);
      got_plain[l].resize(len);
    }
    {
      crypto::ScopedBackendOverride oracle(
          crypto::detail::reference_backend());
      auto gcm = crypto::GcmContext::create(key);
      if (!gcm.is_ok()) return false;
      for (std::size_t l = 0; l < nlanes; ++l) {
        if (!gcm->seal(nonce[l], aad[l], plain[l], want_ct[l].data(),
                       want_tag[l].data())
                 .is_ok()) {
          return false;
        }
      }
    }
    auto gcm = crypto::GcmContext::create(key);
    if (!gcm.is_ok()) return false;
    std::vector<crypto::GcmMbOp> ops(nlanes);
    for (std::size_t l = 0; l < nlanes; ++l) {
      ops[l] = {nonce[l], aad[l], plain[l], got_ct[l].data(),
                got_tag[l].data()};
    }
    if (!gcm->seal_mb(ops.data(), nlanes).is_ok()) return false;
    for (std::size_t l = 0; l < nlanes; ++l) {
      if (got_ct[l] != want_ct[l] ||
          std::memcmp(got_tag[l].data(), want_tag[l].data(),
                      want_tag[l].size()) != 0) {
        std::fprintf(stderr,
                     "multi-buffer GCM seal diverges from the reference "
                     "oracle (lanes=%zu lane=%zu len=%zu)!\n",
                     nlanes, l, plain[l].size());
        return false;
      }
      ops[l] = {nonce[l], aad[l], got_ct[l], got_plain[l].data(),
                got_tag[l].data()};
    }
    std::vector<std::uint8_t> ok(nlanes, 0);
    if (!gcm->open_mb(ops.data(), nlanes,
                      reinterpret_cast<bool*>(ok.data())) ||
        !std::all_of(ok.begin(), ok.end(), [](std::uint8_t o) { return o; })) {
      std::fprintf(stderr, "multi-buffer GCM open rejects its own seal "
                           "(lanes=%zu)!\n", nlanes);
      return false;
    }
    for (std::size_t l = 0; l < nlanes; ++l) {
      if (got_plain[l] != plain[l]) {
        std::fprintf(stderr, "multi-buffer GCM open round-trip mismatch "
                             "(lanes=%zu lane=%zu)!\n", nlanes, l);
        return false;
      }
    }
  }
  return true;
}

constexpr std::size_t kMbCurveSizes[] = {64, 128, 256, 576, 1408};

struct MbSpeedups {
  /// seal_mb over 8 same-size lanes vs 8 per-packet seal() calls, one
  /// ratio per kMbCurveSizes entry.
  double vs_single[std::size(kMbCurveSizes)] = {};
};

/// The multi-buffer payoff curve: small packets amortise the per-call
/// GHASH/CTR ramp-in across lanes (where Table 1's 64 B IMIX tail
/// lives), large packets converge toward the single-buffer kernel's
/// steady-state throughput.
MbSpeedups mb_crypto_speedups(nnfv::bench::JsonReport& report) {
  constexpr std::size_t kLanes = crypto::CryptoBackend::kMaxMbLanes;
  util::Rng rng(16);
  const auto key = rng.bytes(16);
  auto gcm = crypto::GcmContext::create(key);
  MbSpeedups speedups;
  std::printf("\nMulti-buffer GCM seal (%zu lanes) vs per-packet seal:\n",
              kLanes);
  for (std::size_t si = 0; si < std::size(kMbCurveSizes); ++si) {
    const std::size_t size = kMbCurveSizes[si];
    std::vector<std::vector<std::uint8_t>> nonce(kLanes), aad(kLanes),
        plain(kLanes), cipher(kLanes);
    std::vector<crypto::GcmMbOp> ops(kLanes);
    std::uint8_t tags[kLanes][crypto::GcmContext::kTagSize];
    for (std::size_t l = 0; l < kLanes; ++l) {
      nonce[l] = rng.bytes(12);
      aad[l] = rng.bytes(8);
      plain[l] = rng.bytes(size);
      cipher[l].resize(size);
      ops[l] = {nonce[l], aad[l], plain[l], cipher[l].data(), tags[l]};
    }
    // The two sides of the ratio are measured back-to-back inside each
    // trial and the ratio is taken per trial; the median trial wins. A
    // noise burst that lands on one whole trial shifts both sides
    // together and cancels in the ratio — independent windows per side
    // cannot guarantee that on shared hardware, and this ratio carries
    // a hard gate below.
    struct Trial {
      double ns_single;
      double ns_mb;
      std::uint64_t iters_mb;
    };
    const int ntrials = bench::smoke_mode() ? 1 : 3;
    Trial trials[3];
    for (int t = 0; t < ntrials; ++t) {
      auto [ns_s, it_s] = bench::measure_ns([&]() {
        for (std::size_t l = 0; l < kLanes; ++l) {
          (void)gcm->seal(nonce[l], aad[l], plain[l], cipher[l].data(),
                          tags[l]);
        }
        bench::do_not_optimize(tags);
      });
      (void)it_s;
      auto [ns_m, it_m] = bench::measure_ns([&]() {
        (void)gcm->seal_mb(ops.data(), kLanes);
        bench::do_not_optimize(tags);
      });
      trials[t] = {ns_s, ns_m, it_m};
    }
    std::sort(trials, trials + ntrials,
              [](const Trial& a, const Trial& b) {
                return a.ns_single / a.ns_mb < b.ns_single / b.ns_mb;
              });
    const double ns_single = trials[ntrials / 2].ns_single;
    const double ns_mb = trials[ntrials / 2].ns_mb;
    const std::uint64_t iters_mb = trials[ntrials / 2].iters_mb;
    speedups.vs_single[si] = ns_mb > 0.0 ? ns_single / ns_mb : 0.0;
    std::printf("  %4zu B x %zu: mb %.0f ns vs single %.0f ns -> %.2fx\n",
                size, kLanes, ns_mb, ns_single, speedups.vs_single[si]);
    auto& row = report.add(
        "esp_gcm_mb_seal8_" + std::to_string(size), iters_mb, ns_mb);
    row.extra.emplace_back("single_ns_per_batch", ns_single);
    row.extra.emplace_back(
        "mbit_per_sec",
        static_cast<double>(size) * kLanes * 8.0 / ns_mb * 1e3);
    report.add_metric("mb_speedup_vs_single_" + std::to_string(size),
                      "speedup", speedups.vs_single[si]);
  }
  return speedups;
}

/// The two ESP encrypt transforms head to head on the active backend —
/// AES-GCM seal (one pass: CTR + GHASH) vs AES-CBC + HMAC-SHA256 (serial
/// chain + separate MAC pass) over the same 1408-byte datagram — plus the
/// GCM kernel's own active-vs-portable comparison. Both transforms are
/// always measured so one JSON run captures cbc and gcm side by side.
GcmSpeedups gcm_crypto_speedups(nnfv::bench::JsonReport& report) {
  using namespace nnfv;
  util::Rng rng(13);
  const auto key = rng.bytes(16);
  const auto auth_key = rng.bytes(32);
  const auto iv = rng.bytes(16);
  const auto nonce = rng.bytes(12);
  const auto aad = rng.bytes(8);  // ESP header-sized
  const auto data = rng.bytes(1408);
  auto aes = crypto::Aes::create(key);
  auto gcm = crypto::GcmContext::create(key);
  std::vector<std::uint8_t> cipher(data.size());
  std::uint8_t tag[crypto::GcmContext::kTagSize];

  auto [ns_cbc, iters_cbc] = bench::measure_ns([&]() {
    auto c = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
    bench::do_not_optimize(crypto::HmacSha256::mac(auth_key, *c));
  });
  (void)iters_cbc;
  const auto gcm_kernel = [&]() {
    (void)gcm->seal(nonce, aad, data, cipher.data(), tag);
    bench::do_not_optimize(tag);
  };
  auto [ns_gcm, iters_gcm] = bench::measure_ns(gcm_kernel);

  GcmSpeedups speedups;
  speedups.vs_cbc = ns_gcm > 0.0 ? ns_cbc / ns_gcm : 0.0;
  std::printf("ESP encrypt 1408 B: gcm %.0f ns vs cbc-hmac %.0f ns -> "
              "%.1fx\n", ns_gcm, ns_cbc, speedups.vs_cbc);
  auto& row = report.add("esp_gcm_encrypt_1408", iters_gcm, ns_gcm);
  row.extra.emplace_back("mbit_per_sec", data.size() * 8.0 / ns_gcm * 1e3);
  report.add_metric("esp_gcm_vs_cbc_speedup", "speedup", speedups.vs_cbc);

  // The PR 4 split-pass seal (aes_ctr_xor, then ghash over AAD +
  // ciphertext + lengths) as the yardstick for the stitched gcm_crypt:
  // same primitives, same backend, two walks over the payload.
  crypto::GhashKey hkey;
  const std::uint8_t zero[16] = {};
  (*aes).encrypt_block(zero, hkey.h);
  crypto::active_backend().ghash_init(hkey);
  const auto split_kernel = [&]() {
    bench::gcm_split_seal(*aes, hkey, nonce, aad, data, cipher.data(), tag);
    bench::do_not_optimize(tag);
  };
  auto [ns_split, iters_split] = bench::measure_ns(split_kernel);
  auto& split_row =
      report.add("esp_gcm_encrypt_1408_split", iters_split, ns_split);
  split_row.extra.emplace_back("fused_ns_per_op", ns_gcm);
  speedups.vs_split = ns_gcm > 0.0 ? ns_split / ns_gcm : 0.0;
  std::printf("ESP GCM seal 1408 B: fused %.0f ns vs split passes %.0f ns "
              "-> %.2fx\n", ns_gcm, ns_split, speedups.vs_split);
  report.add_metric("gcm_stitch_speedup_vs_split", "speedup",
                    speedups.vs_split);

  speedups.vs_portable = bench::report_backend_speedup(
      report, "esp_gcm_1408_portable_baseline", gcm_kernel,
      "gcm_backend_speedup_vs_portable");
  return speedups;
}

}  // namespace

int main(int argc, char** argv) {
  nnfv::bench::parse_cli(argc, argv);
  // --mode selects how the Table-1 graphs deploy and are driven (the
  // crypto kernel comparisons below always measure every transform):
  // gcm / cbc pick the ESP transform with frame-at-a-time ingress; mb
  // deploys the gcm transform and feeds 8-frame RX bursts, so the
  // endpoint gathers same-SA frames into multi-buffer GCM lanes.
  const std::string mode =
      nnfv::bench::mode().empty() ? "gcm" : nnfv::bench::mode();
  if (mode != "gcm" && mode != "cbc" && mode != "mb") {
    std::fprintf(stderr, "unknown --mode=%s (want gcm, cbc or mb)\n",
                 mode.c_str());
    return 2;
  }
  const std::string esp_transform = mode == "cbc" ? "cbc-hmac" : "gcm";
  const std::size_t burst_width =
      mode == "mb" ? crypto::CryptoBackend::kMaxMbLanes : 1;
  nnfv::bench::JsonReport json_report("bench_table1_ipsec");
  json_report.set_field("backend",
                        std::string(crypto::active_backend().name()));
  json_report.set_field("cpu_features", util::cpu_feature_string());
  json_report.set_field("mode", mode);
  std::printf(
      "=== Table 1: Results with IPSec client VNFs "
      "(paper vs this reproduction) ===\n");
  std::printf("workload: saturating UDP, 1408 B datagrams, ESP tunnel mode "
              "(%s), %s ingress, 1-core CPE model\n\n", esp_transform.c_str(),
              burst_width > 1 ? "8-frame burst" : "frame-at-a-time");
  std::printf("%-10s | %13s %13s | %11s %11s | %11s %11s\n", "Platform",
              "Thr (paper)", "Thr (ours)", "RAM (paper)", "RAM (ours)",
              "Img (paper)", "Img (ours)");
  std::printf("-----------+----------------------------+------------------"
              "-------+-------------------------\n");

  double allocs_per_packet = 0.0;  // worst row; must be 0 in steady state
  for (const Row& row : kRows) {
    core::UniversalNode node;
    auto report = node.orchestrator().deploy(
        bench::ipsec_cpe_graph("t1", row.backend, esp_transform));
    if (!report) {
      std::printf("%-10s | deploy failed: %s\n", row.platform,
                  report.status().to_string().c_str());
      return 1;
    }
    const auto& placement = report->placements.at(0);

    // Smoke: a few hundred simulated packets still exercise deploy +
    // datapath + JSON plumbing; full runs saturate for a simulated second.
    auto result = bench::smoke_mode()
                      ? bench::measure_saturation(node, 1408, 20000.0,
                                                  10 * sim::kMillisecond,
                                                  50 * sim::kMillisecond,
                                                  burst_width)
                      : bench::measure_saturation(node, 1408, 150000.0,
                                                  100 * sim::kMillisecond,
                                                  sim::kSecond, burst_width);
    std::printf("%-10s | %8.0f Mbps %8.1f Mbps | %8.1f MB %8.1f MB | "
                "%8.0f MB %8.1f MB\n",
                row.platform, row.paper_mbps, result.goodput_mbps,
                row.paper_ram_mb,
                static_cast<double>(placement.ram_bytes) / (1024.0 * 1024.0),
                row.paper_image_mb,
                static_cast<double>(placement.image_bytes) /
                    (1024.0 * 1024.0));
    auto& json_row = json_report.add_metric(
        std::string("table1_") + row.platform, "goodput_mbps",
        result.goodput_mbps);
    json_row.extra.emplace_back("paper_mbps", row.paper_mbps);
    json_row.extra.emplace_back(
        "ram_mb", static_cast<double>(placement.ram_bytes) / (1024.0 * 1024.0));
    json_row.extra.emplace_back(
        "image_mb",
        static_cast<double>(placement.image_bytes) / (1024.0 * 1024.0));
    allocs_per_packet = std::max(allocs_per_packet, result.allocs_per_packet);
  }
  // Zero-copy acceptance: once warm, ESP forwarding must not touch the
  // system allocator — encap/decap are offset adjustments inside one
  // pooled mbuf segment. Ceiling-gated at 0 via bench/baseline.json too.
  json_report.add_metric("allocs_per_packet", "allocs_per_packet",
                         allocs_per_packet);

  // Correctness before timing: the stitched seal and the multi-buffer
  // batch scheduler must both match the oracle (cheap, so they run in
  // every mode including smoke) — on divergence the bench refuses to
  // emit numbers at all.
  if (!fused_seal_matches_reference_oracle()) return 1;
  if (!mb_seal_matches_reference_oracle()) return 1;

  const double crypto_speedup = host_crypto_speedup(json_report);
  const double hw_speedup = backend_speedup_vs_portable(json_report);
  const GcmSpeedups gcm_speedups = gcm_crypto_speedups(json_report);
  const MbSpeedups mb_speedups = mb_crypto_speedups(json_report);
  // The >=2x gate only applies with FULL hardware crypto: the ESP kernel
  // is AES + HMAC-SHA256, and on CPUs with AES-NI but no SHA-NI the aesni
  // backend deliberately keeps portable SHA-256 — accelerating half the
  // kernel legitimately lands below 2x.
  const bool hw_active = crypto::active_backend().name() != "portable" &&
                         crypto::active_backend().name() != "reference";
  const bool hw_gated = hw_active && util::cpu_features().sha_ni;
  // The GCM gates likewise need the whole kernel in hardware: without
  // PCLMULQDQ the GHASH half falls back to the 4-bit table.
  const bool gcm_gated = hw_active && util::cpu_features().pclmul;

  std::printf("\nShape checks (the claims under test):\n");
  std::printf("  * VM throughput ~0.73x of native (user-space packet path"
              " + hypervisor exits)\n");
  std::printf("  * Docker ~= native throughput (both use the host kernel"
              " path)\n");
  std::printf("  * RAM: VM >> Docker > native; image: VM >> Docker >> native"
              " (~100x)\n");
  std::printf("  * ESP crypto >= 2x the seed implementation (got %.1fx)\n",
              crypto_speedup);
  std::printf("  * zero pool heap events per packet in steady state "
              "(got %.4f/pkt)\n", allocs_per_packet);
  if (hw_gated) {
    std::printf("  * accelerated backend >= 2x the T-table portable baseline"
                " (got %.1fx)\n", hw_speedup);
  } else if (hw_active) {
    std::printf("  * partial hardware crypto (AES-NI without SHA-NI); "
                "backend speedup %.1fx reported but not gated\n", hw_speedup);
  } else {
    std::printf("  * no hardware crypto backend on this CPU; portable-vs-"
                "portable not gated\n");
  }
  if (gcm_gated) {
    std::printf("  * ESP GCM encrypt >= 3x cbc-hmac on the accelerated "
                "backend (got %.1fx)\n", gcm_speedups.vs_cbc);
    std::printf("  * accelerated GCM >= 2x the portable GCM baseline "
                "(got %.1fx)\n", gcm_speedups.vs_portable);
    std::printf("  * stitched GCM seal >= 1.3x the split-pass kernel "
                "(got %.2fx)\n", gcm_speedups.vs_split);
    std::printf("  * 8-lane multi-buffer seal >= 1.5x per-packet seal at "
                "64 B, monotone floors above (got %.2fx / %.2fx / %.2fx at "
                "64/128/256 B)\n",
                mb_speedups.vs_single[0], mb_speedups.vs_single[1],
                mb_speedups.vs_single[2]);
  } else {
    std::printf("  * GCM-vs-cbc %.1fx, GCM backend speedup %.1fx, "
                "stitch-vs-split %.2fx and mb-vs-single %.2fx/%.2fx/%.2fx "
                "reported but not gated (no AES-NI+PCLMUL)\n",
                gcm_speedups.vs_cbc, gcm_speedups.vs_portable,
                gcm_speedups.vs_split, mb_speedups.vs_single[0],
                mb_speedups.vs_single[1], mb_speedups.vs_single[2]);
  }
  std::printf("\n");
  json_report.emit();
  if (!nnfv::bench::gates_enabled()) return 0;  // smoke / unoptimised build
  if (allocs_per_packet > 0.0) return 1;
  if (crypto_speedup < 2.0) return 1;
  if (hw_gated && hw_speedup < 2.0) return 1;
  if (gcm_gated && gcm_speedups.vs_cbc < 3.0) return 1;
  if (gcm_gated && gcm_speedups.vs_portable < 2.0) return 1;
  if (gcm_gated && gcm_speedups.vs_split < 1.3) return 1;
  // The multi-buffer payoff gates. At 64 B the whole packet is per-call
  // overhead (AES/GHASH ramp, AAD + lengths round trips, J0, tag), so
  // batching 8 lanes must win outright: >= 1.5x. Above that the floor
  // steps down with packet size because the amortisable share shrinks —
  // by 256 B the stitched single-buffer kernel is already
  // throughput-bound (16 blocks in flight, aggregated GHASH), the
  // per-packet overhead is ~30% of packet cost, and even a zero-cost
  // batch tops out near 1.4x; measured steady state on VAES hardware is
  // ~1.2x at 256 B and ~1.25-1.4x at 128 B. The floors below assert the
  // batch path never loses money at any curve point, and the full
  // measured ratios are trend-gated against the blessed baseline. The
  // 576/1408 B points carry no absolute floor — large packets
  // legitimately converge toward the single-buffer steady state.
  if (gcm_gated && mb_speedups.vs_single[0] < 1.5) return 1;   // 64 B
  if (gcm_gated && mb_speedups.vs_single[1] < 1.15) return 1;  // 128 B
  if (gcm_gated && mb_speedups.vs_single[2] < 1.0) return 1;   // 256 B
  return 0;
}
