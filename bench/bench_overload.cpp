// Experiment: goodput under overload with priority-aware shedding.
//
// An unprotected run-to-completion datapath collapses under overload:
// every frame admitted past capacity steals pipeline cycles from frames
// that could still complete, so goodput falls as offered load rises
// past saturation. The shedding path (datapath_executor.cpp,
// should_shed) drops bulk frames at submit — before any classify/crypto
// work is invested — once a shard's ingress occupancy crosses the high
// watermark, while control frames (here: DHCP) are admitted until the
// hard watermark.
//
// Phase 1 measures saturation goodput: 2 workers, backpressure
// submission (block_on_full), classify -> ESP encap to completion.
// Phase 2 offers 1x, 2x and 4x that rate, paced, with shedding on and
// backpressure off; the traffic is ~90% bulk (32 UDP flows) + ~10%
// control (DHCP).
//
// Acceptance (>= 4 cores, non-smoke): goodput at 2x offered load stays
// >= 85% of saturation — overload sheds cheap, not expensive — and the
// control share survives while bulk is shed (shed_control == 0,
// shed_bulk > 0 at 2x). The 2x ratio is trend-gated via
// bench/baseline.json as overload_2x.speedup_vs_saturation; the 1x and
// 4x points are curve context (see EXCLUDED_METRICS in
// scripts/regen_baseline.py).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "exec/datapath_executor.hpp"
#include "nnf/ipsec.hpp"
#include "packet/mbuf.hpp"
#include "switch/flow_action.hpp"
#include "switch/lsi.hpp"
#include "traffic/source.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench

constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
constexpr const char* kAuthKey =
    "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f";

/// Collects exactly `count` frames from a UdpSource into `pool`.
void collect_frames(packet::PacketBurst& pool, std::size_t count,
                    std::uint16_t src_port_base, std::uint16_t dst_port,
                    std::size_t flow_count) {
  sim::Simulator simulator;
  traffic::UdpSourceConfig config;
  config.packets_per_second = 1e6;  // 1 us apart: sim time is free
  config.payload_bytes = 256;
  config.src_port = src_port_base;
  config.dst_port = dst_port;
  config.flow_count = flow_count;
  config.stop = static_cast<sim::SimTime>(count) * sim::kMicrosecond;
  traffic::UdpSource source(simulator, config,
                            [&](packet::PacketBuffer&& frame) {
                              pool.push_back(std::move(frame));
                            });
  source.begin();
  simulator.run();
}

/// ~90% bulk (32 UDP flows) interleaved 9:1 with DHCP control frames
/// (src 68 -> dst 67, which classify_priority tags kControl).
packet::PacketBurst make_pool(std::size_t frames) {
  packet::PacketBurst bulk, control, pool;
  collect_frames(bulk, frames * 9 / 10, 40000, 5001, 32);
  collect_frames(control, frames - bulk.size(), 68, 67, 1);
  pool.reserve(frames);
  std::size_t b = 0, c = 0;
  while (b < bulk.size() || c < control.size()) {
    for (int i = 0; i < 9 && b < bulk.size(); ++i) {
      pool.push_back(std::move(bulk[b++]));
    }
    if (c < control.size()) pool.push_back(std::move(control[c++]));
  }
  return pool;
}

packet::PacketBurst copy_burst(const packet::PacketBurst& pool) {
  packet::PacketBurst out;
  out.reserve(pool.size());
  for (const packet::PacketBuffer& frame : pool) out.push_back(frame.copy());
  return out;
}

/// The classify -> ESP encap pipeline shared by every load point.
struct EncapPipeline {
  nnf::IpsecEndpoint tunnel;
  nfswitch::Lsi lsi{0, "LSI-0"};
  nfswitch::PortId in = 0;

  bool init() {
    const nnf::NfConfig config = {
        {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
        {"spi_out", "1001"},          {"spi_in", "2002"},
        {"enc_key", kEncKey},         {"auth_key", kAuthKey}};
    if (!tunnel.configure(nnf::kDefaultContext, config).is_ok()) return false;
    in = lsi.add_port("eth0").value();
    const nfswitch::PortId out = lsi.add_port("eth1").value();
    nfswitch::FlowMatch any;
    lsi.flow_table().add(1, any, {nfswitch::FlowAction::output(out)});
    (void)lsi.set_port_burst_peer(out, [this](packet::PacketBurst&& burst) {
      auto outs = tunnel.process_burst(nnf::kDefaultContext, 0, 0,
                                       std::move(burst));
      bench::do_not_optimize(outs.size());
    });
    return true;
  }
};

struct LoadResult {
  double offered_pps = 0.0;
  double goodput_pps = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t processed = 0;
  std::uint64_t shed_bulk = 0;
  std::uint64_t shed_control = 0;
  std::uint64_t ingress_drops = 0;
};

/// Saturation goodput: backpressure submission, no shedding — the
/// pipeline's maximum sustainable rate over this pool.
double run_saturation(const packet::PacketBurst& pool, std::size_t workers,
                      double budget_ms) {
  EncapPipeline pipeline;
  if (!pipeline.init()) return 0.0;
  exec::DatapathExecutorConfig dp;
  dp.workers = workers;
  exec::DatapathExecutor executor(
      dp, [&](exec::WorkerContext&, std::uint32_t tag,
              packet::PacketBurst&& burst) {
        pipeline.lsi.receive_burst(static_cast<nfswitch::PortId>(tag),
                                   std::move(burst));
      });
  using Clock = std::chrono::steady_clock;
  // Warmup round grows the mbuf pools to the working set.
  executor.submit_burst(pipeline.in, copy_burst(pool));
  executor.drain();
  std::uint64_t frames = 0;
  double elapsed_ms = 0.0;
  while (elapsed_ms < budget_ms) {
    packet::PacketBurst round = copy_burst(pool);
    const auto start = Clock::now();
    executor.submit_burst(pipeline.in, std::move(round));
    executor.drain();
    elapsed_ms +=
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
    frames += pool.size();
  }
  executor.stop();
  return elapsed_ms > 0.0
             ? static_cast<double>(frames) * 1e3 / elapsed_ms
             : 0.0;
}

/// Offered-load point: submission paced at `offered_pps` with shedding
/// on and backpressure off; goodput is what the workers processed.
LoadResult run_offered(const packet::PacketBurst& pool, std::size_t workers,
                       double offered_pps, double budget_ms) {
  EncapPipeline pipeline;
  LoadResult result;
  if (!pipeline.init() || offered_pps <= 0.0) return result;
  exec::DatapathExecutorConfig dp;
  dp.workers = workers;
  dp.block_on_full = false;
  dp.shed_enabled = true;
  exec::DatapathExecutor executor(
      dp, [&](exec::WorkerContext&, std::uint32_t tag,
              packet::PacketBurst&& burst) {
        pipeline.lsi.receive_burst(static_cast<nfswitch::PortId>(tag),
                                   std::move(burst));
      });
  using Clock = std::chrono::steady_clock;
  executor.submit_burst(pipeline.in, copy_burst(pool));
  executor.drain();
  const std::uint64_t processed_start = executor.total_processed();

  // Pace in pool-sized rounds: round i's submission may not start
  // before start + i * pool_period. Submitting a round takes well under
  // a period (shedding is the point), so the offered rate holds.
  const std::chrono::duration<double> pool_period(
      static_cast<double>(pool.size()) / offered_pps);
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration<double, std::milli>(budget_ms);
  std::size_t round = 0;
  while (Clock::now() < deadline) {
    packet::PacketBurst copy = copy_burst(pool);
    std::this_thread::sleep_until(
        start + pool_period * static_cast<double>(round));
    executor.submit_burst(pipeline.in, std::move(copy));
    result.offered += pool.size();
    ++round;
  }
  executor.drain();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  result.processed = executor.total_processed() - processed_start;
  for (std::size_t w = 0; w < executor.worker_count(); ++w) {
    const exec::WorkerStats stats = executor.worker_stats(w);
    result.shed_bulk += stats.shed_bulk;
    result.shed_control += stats.shed_control;
    result.ingress_drops += stats.ingress_drops;
  }
  executor.stop();
  if (elapsed_ms > 0.0) {
    result.offered_pps =
        static_cast<double>(result.offered) * 1e3 / elapsed_ms;
    result.goodput_pps =
        static_cast<double>(result.processed) * 1e3 / elapsed_ms;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  bench::JsonReport report("bench_overload");
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  report.set_num_field("cpus", cpus);

  constexpr std::size_t kWorkers = 2;
  const std::size_t pool_frames = bench::smoke_mode() ? 256 : 4096;
  const double budget_ms = bench::smoke_mode() ? 2.0 : 500.0;

  const packet::PacketBurst pool = make_pool(pool_frames);
  std::printf("=== overload goodput (classify -> ESP encap, %zu workers, "
              "%u hardware threads) ===\n\n", kWorkers, cpus);

  const double sat_pps = run_saturation(pool, kWorkers, budget_ms);
  std::printf("%-12s %14s %14s %10s %12s %12s\n", "point", "offered/s",
              "goodput/s", "vs sat", "shed_bulk", "shed_ctrl");
  std::printf("%-12s %14s %14.0f %9.2fx %12s %12s\n", "saturation", "-",
              sat_pps, 1.0, "-", "-");
  report.add_metric("saturation", "pps", sat_pps);

  double goodput_ratio_2x = 0.0;
  std::uint64_t shed_bulk_2x = 0, shed_control_2x = 0;
  for (const double multiple : {1.0, 2.0, 4.0}) {
    const LoadResult r =
        run_offered(pool, kWorkers, sat_pps * multiple, budget_ms);
    const double ratio = sat_pps > 0.0 ? r.goodput_pps / sat_pps : 0.0;
    char name[32];
    std::snprintf(name, sizeof(name), "overload_%.0fx", multiple);
    std::printf("%-12s %14.0f %14.0f %9.2fx %12llu %12llu\n", name,
                r.offered_pps, r.goodput_pps, ratio,
                static_cast<unsigned long long>(r.shed_bulk),
                static_cast<unsigned long long>(r.shed_control));
    auto& entry = report.add(name, r.offered,
                             r.goodput_pps > 0.0 ? 1e9 / r.goodput_pps : 0.0);
    entry.extra.emplace_back("offered_pps", r.offered_pps);
    entry.extra.emplace_back("goodput_pps", r.goodput_pps);
    entry.extra.emplace_back("speedup_vs_saturation", ratio);
    entry.extra.emplace_back("shed_bulk", static_cast<double>(r.shed_bulk));
    entry.extra.emplace_back("shed_control",
                             static_cast<double>(r.shed_control));
    entry.extra.emplace_back("ingress_drops",
                             static_cast<double>(r.ingress_drops));
    if (multiple == 2.0) {
      goodput_ratio_2x = ratio;
      shed_bulk_2x = r.shed_bulk;
      shed_control_2x = r.shed_control;
    }
  }

  std::printf("\nacceptance: goodput at 2x offered load %.2fx of saturation "
              "(target >= 0.85 on >= 4 cores), control shed at 2x %llu "
              "(target 0), bulk shed at 2x %llu (target > 0)\n\n",
              goodput_ratio_2x,
              static_cast<unsigned long long>(shed_control_2x),
              static_cast<unsigned long long>(shed_bulk_2x));
  report.emit();
  if (!bench::gates_enabled()) return 0;  // smoke / unoptimised build
  if (cpus < 4) return 0;  // submit thread + 2 workers need their own cores
  if (goodput_ratio_2x < 0.85) return 1;
  if (shed_control_2x != 0) return 1;  // control must survive overload
  if (shed_bulk_2x == 0) return 1;     // 2x offered load must actually shed
  return 0;
}
