// SA lifecycle / SAD scaling bench: the robustness work (lifetime
// accounting, SPI-keyed SAD, make-before-break rekey) must not tax the
// datapath.
//
//   * tunnel_roundtrip_N — encap+decap of one 200-byte datagram with N
//     live tunnels in the SAD, round-robin across tunnels. Flat ns_per_op
//     across N is the O(1)-SPI-lookup claim.
//   * rekey_cycle — stage keymat + immediate cutover + one packet through
//     the fresh generation: the full control-plane cost of a rekey.
//   * steady_encap — per-packet encapsulation cost with lifetime
//     accounting enabled, for the same tunnel shape as rekey_cycle.
//
// No ratio metrics on purpose: absolute latencies only, so the trend gate
// compares like against like across commits.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "util/rng.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
constexpr const char* kEncKey2 = "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff";

packet::PacketBuffer plaintext_frame(std::uint64_t seed) {
  util::Rng rng(seed);
  static std::vector<std::uint8_t> payload;
  payload = rng.bytes(200);
  packet::UdpFrameSpec spec;
  spec.eth_src = packet::MacAddress::from_id(1);
  spec.eth_dst = packet::MacAddress::from_id(2);
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
  spec.src_port = 5001;
  spec.dst_port = 5001;
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

nnf::NfConfig tunnel_config(bool initiator) {
  nnf::NfConfig config;
  config["local_ip"] = initiator ? "198.51.100.1" : "198.51.100.2";
  config["peer_ip"] = initiator ? "198.51.100.2" : "198.51.100.1";
  config["spi_out"] = initiator ? "1001" : "2002";
  config["spi_in"] = initiator ? "2002" : "1001";
  config["enc_key"] = kEncKey;
  config["esp_transform"] = "gcm";
  return config;
}

/// One encap+decap round through tunnel `ctx` of the pair.
void roundtrip(nnf::IpsecEndpoint& sender, nnf::IpsecEndpoint& receiver,
               nnf::ContextId ctx, packet::PacketBuffer&& frame) {
  auto enc = sender.process(ctx, 0, 0, std::move(frame));
  if (enc.size() != 1) {
    std::fprintf(stderr, "encap lost a frame on tunnel %u\n", ctx);
    std::exit(1);
  }
  auto dec = receiver.process(ctx, 1, 0, std::move(enc[0].frame));
  if (dec.size() != 1) {
    std::fprintf(stderr, "decap lost a frame on tunnel %u\n", ctx);
    std::exit(1);
  }
}

void bench_sad_scaling(nnfv::bench::JsonReport& report) {
  std::vector<std::uint32_t> tunnel_counts =
      nnfv::bench::smoke_mode() ? std::vector<std::uint32_t>{1, 16}
                                : std::vector<std::uint32_t>{1, 64, 1024,
                                                             4096};
  std::printf("SAD scaling (GCM, 200 B datagram, encap+decap):\n");
  for (std::uint32_t tunnels : tunnel_counts) {
    nnf::IpsecEndpoint sender;
    nnf::IpsecEndpoint receiver;
    for (std::uint32_t ctx = 0; ctx < tunnels; ++ctx) {
      if (ctx != nnf::kDefaultContext) {
        (void)sender.add_context(ctx);
        (void)receiver.add_context(ctx);
      }
      if (!sender.configure(ctx, tunnel_config(true)).is_ok() ||
          !receiver.configure(ctx, tunnel_config(false)).is_ok()) {
        std::fprintf(stderr, "tunnel %u configure failed\n", ctx);
        std::exit(1);
      }
    }
    std::uint32_t next = 0;
    auto [ns, iters] = nnfv::bench::measure_ns([&]() {
      roundtrip(sender, receiver, next, plaintext_frame(next));
      next = (next + 1) % tunnels;
    });
    std::printf("  %5u tunnels: %8.0f ns/roundtrip (sad=%zu)\n", tunnels,
                ns, receiver.sad_size());
    auto& row = report.add("tunnel_roundtrip_" + std::to_string(tunnels),
                           iters, ns);
    row.extra.emplace_back("tunnels", static_cast<double>(tunnels));
  }
}

void bench_rekey_cycle(nnfv::bench::JsonReport& report) {
  nnf::IpsecEndpoint sender;
  nnf::IpsecEndpoint receiver;
  if (!sender.configure(nnf::kDefaultContext, tunnel_config(true)).is_ok() ||
      !receiver.configure(nnf::kDefaultContext, tunnel_config(false))
           .is_ok()) {
    std::fprintf(stderr, "rekey bench configure failed\n");
    std::exit(1);
  }

  // Steady state first: per-packet encap/decap with lifetime accounting on
  // the books but no rekey in flight.
  auto [steady_ns, steady_iters] = nnfv::bench::measure_ns([&]() {
    roundtrip(sender, receiver, nnf::kDefaultContext, plaintext_frame(7));
  });
  report.add("steady_roundtrip", steady_iters, steady_ns);

  // Full rekey cycle: stage fresh keymat on both ends, cut over
  // immediately, and push one packet through the new generation. Every
  // generation gets never-before-used SPIs: the superseded inbound SA is
  // still draining when the next rekey lands, so its SPI is not yet
  // reusable (cutover force-retires the previous draining generation,
  // which keeps the SAD bounded across millions of cycles).
  std::uint64_t generation = 0;
  auto [rekey_ns, rekey_iters] = nnfv::bench::measure_ns([&]() {
    const std::string out_spi = std::to_string(10000 + 2 * generation);
    const std::string in_spi = std::to_string(10001 + 2 * generation);
    const char* key = (generation & 1) != 0 ? kEncKey : kEncKey2;
    ++generation;
    nnf::NfConfig init_rekey{{"rekey_spi_out", out_spi},
                             {"rekey_spi_in", in_spi},
                             {"rekey_enc_key", key},
                             {"rekey_cutover", "now"}};
    nnf::NfConfig resp_rekey{{"rekey_spi_out", in_spi},
                             {"rekey_spi_in", out_spi},
                             {"rekey_enc_key", key},
                             {"rekey_cutover", "now"}};
    if (util::Status status =
            sender.configure(nnf::kDefaultContext, init_rekey);
        !status.is_ok()) {
      std::fprintf(stderr, "sender rekey staging failed: %s\n",
                   status.message().c_str());
      std::exit(1);
    }
    if (util::Status status =
            receiver.configure(nnf::kDefaultContext, resp_rekey);
        !status.is_ok()) {
      std::fprintf(stderr, "receiver rekey staging failed: %s\n",
                   status.message().c_str());
      std::exit(1);
    }
    roundtrip(sender, receiver, nnf::kDefaultContext, plaintext_frame(9));
  });
  report.add("rekey_cycle", rekey_iters, rekey_ns);

  std::printf("\nRekey (GCM): steady roundtrip %.0f ns, full rekey cycle "
              "%.0f ns (%llu rekeys completed)\n",
              steady_ns, rekey_ns,
              static_cast<unsigned long long>(
                  sender.stats().rekeys_completed));
}

}  // namespace

int main(int argc, char** argv) {
  nnfv::bench::parse_cli(argc, argv);
  nnfv::bench::JsonReport report("ipsec_lifecycle");

  bench_sad_scaling(report);
  bench_rekey_cycle(report);

  report.emit();
  return 0;
}
