// Shared active-vs-portable crypto-backend comparison for bench binaries.
// One implementation so the two benches that emit the
// "backend_speedup_vs_portable" metric (bench_crypto, bench_table1_ipsec)
// cannot drift in how they measure or report it.
#pragma once

#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "crypto/backend.hpp"

namespace nnfv::bench {

/// Measures `kernel` under the active crypto backend, then again with the
/// portable backend forced, and reports both: `row_name` carries the
/// portable run (its own iteration count) with the active backend's ns/op
/// as `extra.active_ns_per_op`, plus a speedup metric named `metric_name`
/// (default "backend_speedup_vs_portable"; benches comparing several
/// kernels pass distinct names so the metrics do not collide). Returns
/// the speedup (~1.0x when portable is already active).
template <typename Kernel>
double report_backend_speedup(
    JsonReport& report, const char* row_name, const Kernel& kernel,
    const char* metric_name = "backend_speedup_vs_portable") {
  const auto [ns_active, iters_active] = measure_ns(kernel);
  (void)iters_active;
  double ns_portable = ns_active;
  std::uint64_t iters_portable = 0;
  {
    crypto::ScopedBackendOverride forced(crypto::detail::portable_backend());
    const auto portable = measure_ns(kernel);
    ns_portable = portable.first;
    iters_portable = portable.second;
  }
  const double speedup = ns_active > 0.0 ? ns_portable / ns_active : 0.0;
  std::printf("%-32s %9.2fx (active '%s' %.0f ns vs portable %.0f ns)\n",
              metric_name, speedup,
              std::string(crypto::active_backend().name()).c_str(), ns_active,
              ns_portable);
  auto& row = report.add(row_name, iters_portable, ns_portable);
  row.extra.emplace_back("active_ns_per_op", ns_active);
  report.add_metric(metric_name, "speedup", speedup);
  return speedup;
}

}  // namespace nnfv::bench
