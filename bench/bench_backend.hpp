// Shared active-vs-portable crypto-backend comparison for bench binaries.
// One implementation so the two benches that emit the
// "backend_speedup_vs_portable" metric (bench_crypto, bench_table1_ipsec)
// cannot drift in how they measure or report it.
#pragma once

#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "bench_json.hpp"
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "util/byteorder.hpp"

namespace nnfv::bench {

/// The PR 4 split-pass GCM seal — aes_ctr_xor over the payload, then
/// ghash over AAD + ciphertext + lengths as separate walks — kept as
/// the shared yardstick both crypto benches measure the fused gcm_crypt
/// seal against, so their identically-named
/// `gcm_stitch_speedup_vs_split` metrics cannot drift apart. `hkey`
/// must be ghash_init'd by the active backend with H = AES_K(0);
/// `nonce` is 12 bytes, `aad` at most 16, `data.size()` a multiple of
/// 16, `cipher` data-sized and `tag` 16 bytes.
inline void gcm_split_seal(const crypto::Aes& aes,
                           const crypto::GhashKey& hkey,
                           std::span<const std::uint8_t> nonce,
                           std::span<const std::uint8_t> aad,
                           std::span<const std::uint8_t> data,
                           std::uint8_t* cipher, std::uint8_t tag[16]) {
  const crypto::CryptoBackend& backend = crypto::active_backend();
  std::uint8_t j0[16];
  std::memcpy(j0, nonce.data(), 12);
  util::store_be32(j0 + 12, 1);
  std::uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  util::store_be32(counter + 12, 2);
  backend.aes_ctr_xor(aes, counter, data.data(), cipher, data.size());
  std::uint8_t s[16] = {};
  std::uint8_t aad_block[16] = {};
  std::memcpy(aad_block, aad.data(), aad.size());
  backend.ghash(hkey, s, aad_block, 1);
  backend.ghash(hkey, s, cipher, data.size() / 16);
  std::uint8_t lengths[16];
  util::store_be64(lengths, aad.size() * 8);
  util::store_be64(lengths + 8, data.size() * 8);
  backend.ghash(hkey, s, lengths, 1);
  backend.aes_ctr_xor(aes, j0, s, tag, 16);
}

/// Measures `kernel` under the active crypto backend, then again with the
/// portable backend forced, and reports both: `row_name` carries the
/// portable run (its own iteration count) with the active backend's ns/op
/// as `extra.active_ns_per_op`, plus a speedup metric named `metric_name`
/// (default "backend_speedup_vs_portable"; benches comparing several
/// kernels pass distinct names so the metrics do not collide). Returns
/// the speedup (~1.0x when portable is already active).
template <typename Kernel>
double report_backend_speedup(
    JsonReport& report, const char* row_name, const Kernel& kernel,
    const char* metric_name = "backend_speedup_vs_portable") {
  const auto [ns_active, iters_active] = measure_ns(kernel);
  (void)iters_active;
  double ns_portable = ns_active;
  std::uint64_t iters_portable = 0;
  {
    crypto::ScopedBackendOverride forced(crypto::detail::portable_backend());
    const auto portable = measure_ns(kernel);
    ns_portable = portable.first;
    iters_portable = portable.second;
  }
  const double speedup = ns_active > 0.0 ? ns_portable / ns_active : 0.0;
  std::printf("%-32s %9.2fx (active '%s' %.0f ns vs portable %.0f ns)\n",
              metric_name, speedup,
              std::string(crypto::active_backend().name()).c_str(), ns_active,
              ns_portable);
  auto& row = report.add(row_name, iters_portable, ns_portable);
  row.extra.emplace_back("active_ns_per_op", ns_active);
  report.add_metric(metric_name, "speedup", speedup);
  return speedup;
}

}  // namespace nnfv::bench
