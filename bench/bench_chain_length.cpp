// Experiment A2 — chain-length ablation.
//
// A service chain of k forwarding NFs (k = 1..8) per backend. Each NF
// instance is its own service station (one core per NF, pipelined), so:
//   * saturation throughput is set by the bottleneck NF — roughly flat in
//     k, with the per-backend gap (VM < docker/native) persisting;
//   * end-to-end latency grows linearly in k, with a per-hop slope that
//     depends on the backend's per-packet path cost — this is where the
//     VM flavor hurts chained services most.
// Exception: the *native* firewall is a single shared instance (one
// netfilter), so all k hops serialize on one station — its throughput
// falls ~1/k while its RAM stays constant. The bench surfaces exactly this
// trade-off of the paper's sharable-NNF design.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench main

namespace {

nffg::NfFg chain_of(int k, virt::BackendKind backend) {
  nffg::NfFg graph;
  graph.id = "chain";
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  for (int i = 0; i < k; ++i) {
    nffg::NfNode& nf = graph.add_nf("fw" + std::to_string(i), "firewall");
    nf.backend_hint = backend;
  }
  graph.connect("rin", nffg::endpoint_ref("lan"), nffg::nf_port("fw0", 0));
  for (int i = 0; i + 1 < k; ++i) {
    graph.connect("r" + std::to_string(i),
                  nffg::nf_port("fw" + std::to_string(i), 1),
                  nffg::nf_port("fw" + std::to_string(i + 1), 0));
  }
  graph.connect("rout", nffg::nf_port("fw" + std::to_string(k - 1), 1),
                nffg::endpoint_ref("wan"));
  return graph;
}

struct ChainResult {
  double goodput_mbps = -1.0;
  double latency_us = -1.0;
};

ChainResult run_chain(int k, virt::BackendKind backend) {
  ChainResult result;
  {
    // Capacity via binary search (adaptive-rate iPerf behaviour): in a
    // tandem through one shared server, blind saturation starves the
    // later hops, so "max rate with <1% loss" is the meaningful number.
    bool deploy_failed = false;
    const sim::SimTime warmup =
        bench::smoke_mode() ? 2 * sim::kMillisecond : 20 * sim::kMillisecond;
    const sim::SimTime duration = bench::smoke_mode()
                                      ? 20 * sim::kMillisecond
                                      : 200 * sim::kMillisecond;
    result.goodput_mbps = bench::measure_capacity_mbps(
        [&]() -> std::unique_ptr<core::UniversalNode> {
          auto node = std::make_unique<core::UniversalNode>();
          if (!node->orchestrator().deploy(chain_of(k, backend))) {
            deploy_failed = true;
            return nullptr;
          }
          return node;
        },
        1408, 1000.0, 1.2e6, warmup, duration);
    if (deploy_failed) {
      ChainResult failed;
      return failed;  // goodput -1 marks "n/a" (e.g. k VMs exceed CPE RAM)
    }
  }
  {
    // Latency: 100 packets, widely spaced so queues stay empty.
    core::UniversalNode node;
    if (!node.orchestrator().deploy(chain_of(k, backend))) return result;
    std::vector<sim::SimTime> in_times;
    std::vector<sim::SimTime> out_times;
    (void)node.set_egress("eth1", [&](packet::PacketBuffer&&) {
      out_times.push_back(node.simulator().now());
    });
    const int latency_packets = bench::smoke_mode() ? 10 : 100;
    for (int i = 0; i < latency_packets; ++i) {
      node.simulator().schedule_at(
          static_cast<sim::SimTime>(i) * sim::kMillisecond, [&node, i]() {
            packet::UdpFrameSpec spec;
            spec.ip_src = *packet::Ipv4Address::parse("10.0.0.1");
            spec.ip_dst = *packet::Ipv4Address::parse("10.0.0.2");
            spec.src_port = 1000;
            spec.dst_port = static_cast<std::uint16_t>(2000 + i);
            static const std::vector<std::uint8_t> payload(1408, 0x5A);
            spec.payload = payload;
            (void)node.inject("eth0", packet::build_udp_frame(spec));
          });
      in_times.push_back(static_cast<sim::SimTime>(i) * sim::kMillisecond);
    }
    node.simulator().run();
    if (out_times.size() == in_times.size()) {
      double total = 0.0;
      for (std::size_t i = 0; i < out_times.size(); ++i) {
        total += static_cast<double>(out_times[i] - in_times[i]);
      }
      result.latency_us = total / static_cast<double>(out_times.size()) /
                          1000.0;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  std::printf("=== A2: service chains of k firewall NFs (1408 B frames) "
              "===\n\n");
  std::printf("%3s | %21s | %21s | %21s | %21s\n", "k", "native (shared NNF)",
              "docker", "dpdk", "vm");
  std::printf("%3s | %10s %10s | %10s %10s | %10s %10s | %10s %10s\n", "",
              "Mbps", "us/pkt", "Mbps", "us/pkt", "Mbps", "us/pkt", "Mbps",
              "us/pkt");
  std::printf("----+-----------------------+----------------------+--------"
              "--------------+----------------------\n");
  auto cell = [](const ChainResult& r) {
    char buf[32];
    if (r.goodput_mbps < 0) {
      std::snprintf(buf, sizeof(buf), "%10s %10s", "n/a(RAM)", "-");
    } else {
      std::snprintf(buf, sizeof(buf), "%10.0f %10.2f", r.goodput_mbps,
                    r.latency_us);
    }
    return std::string(buf);
  };
  const std::vector<int> chain_lengths =
      bench::smoke_mode() ? std::vector<int>{1, 2}
                          : std::vector<int>{1, 2, 3, 4, 6, 8};
  bench::JsonReport report("bench_chain_length");
  auto record = [&report](int k, const char* backend, const ChainResult& r) {
    auto& row = report.add_metric(
        "chain_" + std::to_string(k) + "_" + backend, "goodput_mbps",
        r.goodput_mbps);
    row.extra.emplace_back("latency_us", r.latency_us);
  };
  for (int k : chain_lengths) {
    const ChainResult native = run_chain(k, virt::BackendKind::kNative);
    const ChainResult docker = run_chain(k, virt::BackendKind::kDocker);
    const ChainResult dpdk = run_chain(k, virt::BackendKind::kDpdk);
    const ChainResult vm = run_chain(k, virt::BackendKind::kVm);
    std::printf("%3d | %s | %s | %s | %s\n", k, cell(native).c_str(),
                cell(docker).c_str(), cell(dpdk).c_str(), cell(vm).c_str());
    record(k, "native", native);
    record(k, "docker", docker);
    record(k, "dpdk", dpdk);
    record(k, "vm", vm);
  }
  std::printf(
      "\nReadings:\n"
      "  * docker/dpdk/vm: one instance per hop -> pipelined; throughput\n"
      "    ~flat in k (bottleneck NF), latency grows linearly with the\n"
      "    backend's per-hop path cost (vm slope is the largest).\n"
      "  * native: ONE shared netfilter instance hosts all k hops\n"
      "    (isolated contexts), so its throughput falls ~1/k while RAM and\n"
      "    activation stay per-context — the sharability trade-off.\n"
      "  * vm at k>=3: n/a — three 390 MB VMs exceed the 1 GB CPE, the\n"
      "    resource wall that motivates NNFs in the first place.\n\n");
  report.emit();
  return 0;
}
