// Shared helpers for the reproduction benches: the IPsec-CPE graph of the
// paper's validation section and the iPerf-style saturation measurement.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>

#include "core/node.hpp"
#include "nffg/nffg.hpp"
#include "packet/mbuf.hpp"
#include "traffic/source.hpp"
#include "util/strings.hpp"

namespace nnfv::bench {

inline constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
inline constexpr const char* kAuthKey =
    "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f";

/// lan -> <nf> -> wan chain with return rules — the CPE service graph.
inline nffg::NfFg chain_graph(const std::string& id, const std::string& type,
                              std::optional<virt::BackendKind> hint = {}) {
  nffg::NfFg graph;
  graph.id = id;
  graph.add_nf("nf", type).backend_hint = hint;
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("nf", 0));
  graph.connect("r2", nffg::nf_port("nf", 1), nffg::endpoint_ref("wan"));
  graph.connect("r3", nffg::endpoint_ref("wan"), nffg::nf_port("nf", 1));
  graph.connect("r4", nffg::nf_port("nf", 0), nffg::endpoint_ref("lan"));
  return graph;
}

/// The validation-section NF: Strongswan-like ESP tunnel endpoint.
/// `esp_transform` is "gcm" (RFC 4106, the default) or "cbc-hmac".
inline nffg::NfFg ipsec_cpe_graph(const std::string& id,
                                  std::optional<virt::BackendKind> hint,
                                  const std::string& esp_transform = "gcm") {
  nffg::NfFg graph = chain_graph(id, "ipsec", hint);
  graph.nfs[0].config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", kEncKey},         {"auth_key", kAuthKey},
      {"esp_transform", esp_transform}};
  return graph;
}

struct SaturationResult {
  double goodput_mbps = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t offered = 0;
  /// System-allocator events (mbuf slab growths + oversize heap
  /// segments) per delivered packet inside the measurement window. The
  /// zero-copy acceptance gate: 0 in steady state — the warmup grows the
  /// pools to the working set, after which every frame recycles.
  double allocs_per_packet = 0.0;
};

/// Pool-level heap events so far: how often the mbuf pools touched the
/// system allocator (see MbufPoolStats).
inline std::uint64_t pool_heap_events() {
  const packet::MbufPoolStats stats = packet::MbufPool::global_stats();
  return stats.slab_allocs + stats.heap_allocs;
}

/// Saturates eth0 with `payload_bytes` UDP datagrams and counts frames
/// leaving eth1 inside [warmup, warmup+duration). Goodput is reported on
/// the *inner* payload, matching the paper's iPerf methodology.
/// `burst_width` > 1 accumulates that many frames and injects them as
/// one PacketBurst (a NIC RX burst), which is what lets the ESP endpoint
/// gather same-SA frames into multi-buffer GCM lanes; 1 keeps the
/// historic frame-at-a-time ingress.
inline SaturationResult measure_saturation(core::UniversalNode& node,
                                           std::size_t payload_bytes,
                                           double offered_pps,
                                           sim::SimTime warmup,
                                           sim::SimTime duration,
                                           std::size_t burst_width = 1) {
  std::uint64_t delivered = 0;
  (void)node.set_egress("eth1", [&](packet::PacketBuffer&&) {
    const sim::SimTime now = node.simulator().now();
    if (now >= warmup && now < warmup + duration) ++delivered;
  });
  // Snapshot the pool heap-event counters at the measurement-window
  // edges, so allocs_per_packet ignores the warmup (where slab growth to
  // the working set is expected) and the drain tail.
  std::uint64_t heap_events_start = 0;
  std::uint64_t heap_events_end = 0;
  node.simulator().schedule_at(warmup,
                               [&]() { heap_events_start = pool_heap_events(); });
  node.simulator().schedule_at(warmup + duration,
                               [&]() { heap_events_end = pool_heap_events(); });

  traffic::UdpSourceConfig config;
  config.payload_bytes = payload_bytes;
  config.packets_per_second = offered_pps;
  config.stop = warmup + duration;
  packet::PacketBurst pending;
  traffic::UdpSource source(
      node.simulator(), config, [&](packet::PacketBuffer&& frame) {
        if (burst_width <= 1) {
          (void)node.inject("eth0", std::move(frame));
          return;
        }
        pending.push_back(std::move(frame));
        if (pending.size() >= burst_width) {
          (void)node.inject_burst("eth0", std::move(pending));
          pending.clear();
        }
      });
  source.begin();
  if (burst_width > 1) {
    // Flush the sub-width tail once the source stops, so the last few
    // frames of the offered load are not silently dropped at the edge.
    node.simulator().schedule_at(config.stop, [&]() {
      if (!pending.empty()) {
        (void)node.inject_burst("eth0", std::move(pending));
        pending.clear();
      }
    });
  }
  node.simulator().run_until(warmup + duration + 50 * sim::kMillisecond);

  SaturationResult result;
  result.delivered = delivered;
  result.offered = source.sent_packets();
  result.goodput_mbps = static_cast<double>(delivered) *
                        static_cast<double>(payload_bytes) * 8.0 /
                        (static_cast<double>(duration) / 1e9) / 1e6;
  result.allocs_per_packet =
      delivered > 0
          ? static_cast<double>(heap_events_end - heap_events_start) /
                static_cast<double>(delivered)
          : 0.0;
  return result;
}

/// Highest offered rate (pps) the datapath delivers with <1% loss —
/// binary search, like an adaptive iPerf TCP run. `deploy` must build a
/// fresh node per trial (state such as queues must not leak across
/// trials); returns goodput at the found rate.
template <typename MakeNode>
inline double measure_capacity_mbps(MakeNode make_node,
                                    std::size_t payload_bytes,
                                    double lo_pps, double hi_pps,
                                    sim::SimTime warmup,
                                    sim::SimTime duration) {
  double best = 0.0;
  for (int iter = 0; iter < 12 && hi_pps - lo_pps > lo_pps * 0.01; ++iter) {
    const double rate = (lo_pps + hi_pps) / 2.0;
    auto node = make_node();
    if (node == nullptr) return -1.0;
    SaturationResult result =
        measure_saturation(*node, payload_bytes, rate, warmup, duration);
    const double expected =
        rate * (static_cast<double>(duration) / 1e9);
    if (static_cast<double>(result.delivered) >= 0.99 * expected) {
      best = result.goodput_mbps;
      lo_pps = rate;
    } else {
      hi_pps = rate;
    }
  }
  return best;
}

}  // namespace nnfv::bench
