// Experiment A4 — crypto datapath micro-benchmarks (host wall-clock).
//
// These numbers do NOT feed the Table 1 reproduction (simulated timing
// comes from virt::CostModel); they document the functional datapath's
// host cost: AES-128-CBC, HMAC-SHA256, SHA-256, and a full ESP tunnel
// encap+decap round trip on MTU-sized packets.
#include <benchmark/benchmark.h>

#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "util/rng.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench

void BM_Sha256(benchmark::State& state) {
  util::Rng rng(1);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1450);

void BM_HmacSha256(benchmark::State& state) {
  util::Rng rng(2);
  const auto key = rng.bytes(32);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::HmacSha256::mac(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1450);

void BM_AesCbcEncrypt(benchmark::State& state) {
  util::Rng rng(3);
  auto aes = crypto::Aes::create(rng.bytes(16));
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_encrypt(*aes, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcEncrypt)->Arg(64)->Arg(1450);

void BM_AesCbcDecrypt(benchmark::State& state) {
  util::Rng rng(4);
  auto aes = crypto::Aes::create(rng.bytes(16));
  const auto iv = rng.bytes(16);
  const auto data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const auto cipher = crypto::aes_cbc_encrypt(*aes, iv, data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aes_cbc_decrypt(*aes, iv, *cipher));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCbcDecrypt)->Arg(1450);

void BM_EspEncapDecap(benchmark::State& state) {
  nnf::IpsecEndpoint initiator;
  nnf::IpsecEndpoint responder;
  const nnf::NfConfig init_config = {
      {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
      {"spi_out", "1001"},          {"spi_in", "2002"},
      {"enc_key", "000102030405060708090a0b0c0d0e0f"},
      {"auth_key",
       "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
  nnf::NfConfig resp_config = init_config;
  resp_config["local_ip"] = "198.51.100.2";
  resp_config["peer_ip"] = "198.51.100.1";
  resp_config["spi_out"] = "2002";
  resp_config["spi_in"] = "1001";
  (void)initiator.configure(nnf::kDefaultContext, init_config);
  (void)responder.configure(nnf::kDefaultContext, resp_config);

  util::Rng rng(5);
  const auto payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
  spec.payload = payload;

  std::uint64_t processed = 0;
  for (auto _ : state) {
    auto enc = initiator.process(nnf::kDefaultContext, 0, 0,
                                 packet::build_udp_frame(spec));
    auto dec = responder.process(nnf::kDefaultContext, 1, 0,
                                 std::move(enc[0].frame));
    benchmark::DoNotOptimize(dec);
    ++processed;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(processed) *
                          state.range(0));
}
BENCHMARK(BM_EspEncapDecap)->Arg(64)->Arg(1408);

}  // namespace
