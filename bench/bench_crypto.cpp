// Experiment A4 — crypto datapath micro-benchmarks (host wall-clock).
//
// These numbers do NOT feed the Table 1 reproduction (simulated timing
// comes from virt::CostModel); they document the functional datapath's
// host cost: AES-128-CBC (T-table vs the seed's byte-wise reference),
// HMAC-SHA256, SHA-256, and a full ESP tunnel encap+decap round trip on
// MTU-sized packets. Emits the JSON result block (see bench_json.hpp).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_backend.hpp"
#include "bench_json.hpp"
#include "crypto/backend.hpp"
#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "nnf/ipsec.hpp"
#include "packet/builder.hpp"
#include "reference_crypto.hpp"
#include "util/cpuid.hpp"
#include "util/rng.hpp"

namespace {

using namespace nnfv;  // NOLINT(google-build-using-namespace): bench

void report_bytes(bench::JsonReport& report, const char* name,
                  std::size_t bytes, double ns, std::uint64_t iters) {
  const double mbps = bytes * 8.0 / ns * 1e3;  // bits/ns -> Mbit/s
  std::printf("%-32s %10.1f ns/op %10.1f MB/s\n", name, ns,
              bytes / ns * 1e3);
  auto& result = report.add(name, iters, ns);
  result.extra.emplace_back("bytes", static_cast<double>(bytes));
  result.extra.emplace_back("mbit_per_sec", mbps);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_cli(argc, argv);
  bench::JsonReport report("bench_crypto");
  report.set_field("backend", std::string(crypto::active_backend().name()));
  report.set_field("cpu_features", util::cpu_feature_string());
  util::Rng rng(1);
  std::printf("=== A4: crypto datapath micro-benchmarks (backend: %s) ===\n\n",
              std::string(crypto::active_backend().name()).c_str());

  // SHA-256 / HMAC-SHA256.
  for (std::size_t n : {64u, 1450u}) {
    const auto data = rng.bytes(n);
    auto [ns, iters] = bench::measure_ns(
        [&]() { bench::do_not_optimize(crypto::Sha256::digest(data)); });
    char name[48];
    std::snprintf(name, sizeof(name), "sha256_%zu", n);
    report_bytes(report, name, n, ns, iters);
  }
  {
    const auto key = rng.bytes(32);
    const auto data = rng.bytes(1450);
    auto [ns, iters] = bench::measure_ns([&]() {
      bench::do_not_optimize(crypto::HmacSha256::mac(key, data));
    });
    report_bytes(report, "hmac_sha256_1450", 1450, ns, iters);
  }

  // AES-128-CBC: T-table implementation vs the seed's byte-wise reference.
  {
    const auto key = rng.bytes(16);
    const auto iv = rng.bytes(16);
    const auto data = rng.bytes(1440);  // multiple of the block size
    auto aes = crypto::Aes::create(key);
    bench::ref::ReferenceAes ref_aes(key);

    // Functional guard: both implementations must agree.
    const auto fast = crypto::aes_cbc_encrypt_raw(*aes, iv, data);
    const auto slow = bench::ref::cbc_encrypt(ref_aes, iv, data);
    if (!fast.is_ok() || fast->size() != slow.size() ||
        std::memcmp(fast->data(), slow.data(), slow.size()) != 0) {
      std::fprintf(stderr, "T-table/reference AES mismatch!\n");
      return 1;
    }

    auto [ns_new, iters_new] = bench::measure_ns([&]() {
      bench::do_not_optimize(crypto::aes_cbc_encrypt_raw(*aes, iv, data));
    });
    auto [ns_ref, iters_ref] = bench::measure_ns([&]() {
      bench::do_not_optimize(bench::ref::cbc_encrypt(ref_aes, iv, data));
    });
    report_bytes(report, "aes128_cbc_encrypt_1440", 1440, ns_new, iters_new);
    report_bytes(report, "aes128_cbc_encrypt_1440_ref", 1440, ns_ref,
                 iters_ref);
    std::printf("%-32s %9.1fx\n", "aes_cbc_speedup_vs_seed",
                ns_ref / ns_new);
    report.add_metric("aes_cbc_speedup_vs_seed", "speedup", ns_ref / ns_new);

    auto cipher = crypto::aes_cbc_encrypt(*aes, iv, data);
    auto [ns_dec, iters_dec] = bench::measure_ns([&]() {
      bench::do_not_optimize(crypto::aes_cbc_decrypt(*aes, iv, *cipher));
    });
    report_bytes(report, "aes128_cbc_decrypt_1440", 1440, ns_dec, iters_dec);
  }

  // AES-128-GCM (the RFC 4106 ESP default): seal/open on an MTU-sized
  // payload with ESP-header-sized AAD, the raw GHASH primitive, and the
  // cbc-vs-gcm encrypt comparison — one run's JSON carries both modes.
  {
    const auto key = rng.bytes(16);
    const auto nonce = rng.bytes(12);
    const auto aad = rng.bytes(8);
    const auto data = rng.bytes(1408);
    auto aes = crypto::Aes::create(key);
    auto gcm = crypto::GcmContext::create(key);
    std::vector<std::uint8_t> cipher(data.size());
    std::uint8_t tag[crypto::GcmContext::kTagSize];

    const auto seal_kernel = [&]() {
      (void)gcm->seal(nonce, aad, data, cipher.data(), tag);
      bench::do_not_optimize(tag);
    };
    auto [ns_seal, iters_seal] = bench::measure_ns(seal_kernel);
    report_bytes(report, "aes128_gcm_seal_1408", 1408, ns_seal, iters_seal);

    (void)gcm->seal(nonce, aad, data, cipher.data(), tag);
    std::vector<std::uint8_t> plain(cipher.size());
    auto [ns_open, iters_open] = bench::measure_ns([&]() {
      bench::do_not_optimize(
          gcm->open(nonce, aad, cipher, {tag, sizeof(tag)}, plain.data()));
    });
    report_bytes(report, "aes128_gcm_open_1408", 1408, ns_open, iters_open);

    // Raw GHASH over the same payload (88 blocks), isolating the
    // PCLMUL / 4-bit-table half of the transform from the CTR half.
    crypto::GhashKey hkey;
    {
      const std::uint8_t zero[16] = {};
      (*aes).encrypt_block(zero, hkey.h);  // H = AES_K(0), the real subkey
      crypto::active_backend().ghash_init(hkey);
      std::uint8_t state[16] = {};
      auto [ns_gh, iters_gh] = bench::measure_ns([&]() {
        crypto::active_backend().ghash(hkey, state, data.data(),
                                       data.size() / 16);
        bench::do_not_optimize(state);
      });
      report_bytes(report, "ghash_1408", 1408, ns_gh, iters_gh);
    }

    // The PR 4 split-pass seal: aes_ctr_xor over the payload, then ghash
    // over AAD + ciphertext + lengths as separate walks — exactly what
    // seal() did before the stitched gcm_crypt. Kept here as the
    // yardstick for the gcm_stitch_speedup_vs_split metric (and as a
    // correctness cross-check: it must produce the identical tag).
    std::uint8_t split_tag[crypto::GcmContext::kTagSize];
    const auto split_kernel = [&]() {
      bench::gcm_split_seal(*aes, hkey, nonce, aad, data, cipher.data(),
                            split_tag);
      bench::do_not_optimize(split_tag);
    };
    split_kernel();
    (void)gcm->seal(nonce, aad, data, cipher.data(), tag);
    if (std::memcmp(split_tag, tag, sizeof(tag)) != 0) {
      std::fprintf(stderr, "fused/split GCM tag mismatch!\n");
      return 1;
    }
    auto [ns_split, iters_split] = bench::measure_ns(split_kernel);
    report_bytes(report, "aes128_gcm_seal_1408_split", 1408, ns_split,
                 iters_split);
    const double stitch = ns_seal > 0.0 ? ns_split / ns_seal : 0.0;
    std::printf("%-32s %9.2fx\n", "gcm_stitch_speedup_vs_split", stitch);
    report.add_metric("gcm_stitch_speedup_vs_split", "speedup", stitch);

    bench::report_backend_speedup(report, "aes128_gcm_seal_1408_portable",
                                  seal_kernel,
                                  "gcm_backend_speedup_vs_portable");
  }

  // Full ESP tunnel encap+decap.
  {
    nnf::IpsecEndpoint initiator;
    nnf::IpsecEndpoint responder;
    const nnf::NfConfig init_config = {
        {"local_ip", "198.51.100.1"}, {"peer_ip", "198.51.100.2"},
        {"spi_out", "1001"},          {"spi_in", "2002"},
        {"enc_key", "000102030405060708090a0b0c0d0e0f"},
        {"auth_key",
         "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f"}};
    nnf::NfConfig resp_config = init_config;
    resp_config["local_ip"] = "198.51.100.2";
    resp_config["peer_ip"] = "198.51.100.1";
    resp_config["spi_out"] = "2002";
    resp_config["spi_in"] = "1001";
    (void)initiator.configure(nnf::kDefaultContext, init_config);
    (void)responder.configure(nnf::kDefaultContext, resp_config);

    const auto payload = rng.bytes(1408);
    packet::UdpFrameSpec spec;
    spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
    spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.5");
    spec.payload = payload;

    auto [ns, iters] = bench::measure_ns([&]() {
      auto enc = initiator.process(nnf::kDefaultContext, 0, 0,
                                   packet::build_udp_frame(spec));
      auto dec = responder.process(nnf::kDefaultContext, 1, 0,
                                   std::move(enc[0].frame));
      bench::do_not_optimize(dec);
    });
    report_bytes(report, "esp_encap_decap_1408", 1408, ns, iters);

    // Burst path: 32 frames per process_burst call (SA/tunnel resolution
    // amortised) vs 32 process() calls.
    constexpr std::size_t kBurst = 32;
    auto [ns_burst, iters_burst] = bench::measure_ns([&]() {
      packet::PacketBurst burst;
      burst.reserve(kBurst);
      for (std::size_t i = 0; i < kBurst; ++i) {
        burst.push_back(packet::build_udp_frame(spec));
      }
      auto enc = initiator.process_burst(nnf::kDefaultContext, 0, 0,
                                         std::move(burst));
      packet::PacketBurst black;
      black.reserve(enc.size());
      for (auto& out : enc) black.push_back(std::move(out.frame));
      auto dec = responder.process_burst(nnf::kDefaultContext, 1, 0,
                                         std::move(black));
      bench::do_not_optimize(dec);
    });
    const double ns_per_pkt = ns_burst / static_cast<double>(kBurst);
    report_bytes(report, "esp_encap_decap_1408_burst32", 1408, ns_per_pkt,
                 iters_burst * kBurst);
    std::printf("%-32s %9.2fx\n", "esp_burst_speedup_vs_single",
                ns_per_pkt > 0.0 ? ns / ns_per_pkt : 0.0);
    report.add_metric("esp_burst_speedup_vs_single", "speedup",
                      ns_per_pkt > 0.0 ? ns / ns_per_pkt : 0.0);
  }

  // Active backend vs forced-portable on the ESP crypto kernel: the
  // cross-backend observability that lets CI catch dispatch regressions.
  {
    const auto key = rng.bytes(16);
    const auto iv = rng.bytes(16);
    const auto data = rng.bytes(1408);
    auto aes = crypto::Aes::create(key);
    bench::report_backend_speedup(
        report, "aes128_cbc_encrypt_1408_portable", [&]() {
          bench::do_not_optimize(crypto::aes_cbc_encrypt_raw(*aes, iv, data));
        });
  }

  std::printf("\n");
  report.emit();
  return 0;
}
