// The paper's validation scenario (§3): a customer activates an IPSec
// endpoint on a domestic CPE. Deploys the Strongswan-like ESP tunnel
// endpoint in all three flavors of Table 1 and reports goodput + RAM +
// image, then shows the tunnel really encrypts: a second node decrypts the
// traffic and the inner packet survives byte-for-byte.
#include <cstdio>
#include <vector>

#include "core/node.hpp"
#include "nffg/nffg.hpp"
#include "packet/builder.hpp"
#include "traffic/source.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): example

namespace {

constexpr const char* kEncKey = "000102030405060708090a0b0c0d0e0f";
constexpr const char* kAuthKey =
    "202122232425262728292a2b2c2d2e2f303132333435363738393a3b3c3d3e3f";

nffg::NfFg vpn_graph(const std::string& id, bool initiator,
                     std::optional<virt::BackendKind> hint) {
  nffg::NfFg graph;
  graph.id = id;
  nffg::NfNode& nf = graph.add_nf("vpn", "ipsec");
  nf.backend_hint = hint;
  nf.config = {{"local_ip", initiator ? "198.51.100.1" : "198.51.100.2"},
               {"peer_ip", initiator ? "198.51.100.2" : "198.51.100.1"},
               {"spi_out", initiator ? "1001" : "2002"},
               {"spi_in", initiator ? "2002" : "1001"},
               {"enc_key", kEncKey},
               {"auth_key", kAuthKey}};
  graph.add_endpoint("red", "eth0");    // plaintext side
  graph.add_endpoint("black", "eth1");  // encrypted side
  graph.connect("r1", nffg::endpoint_ref("red"), nffg::nf_port("vpn", 0));
  graph.connect("r2", nffg::nf_port("vpn", 1), nffg::endpoint_ref("black"));
  graph.connect("r3", nffg::endpoint_ref("black"), nffg::nf_port("vpn", 1));
  graph.connect("r4", nffg::nf_port("vpn", 0), nffg::endpoint_ref("red"));
  return graph;
}

double measure_flavor(virt::BackendKind backend, double* ram_mb,
                      double* image_mb) {
  core::UniversalNode node;
  auto report = node.orchestrator().deploy(vpn_graph("vpn", true, backend));
  if (!report) return -1.0;
  *ram_mb =
      static_cast<double>(report->placements[0].ram_bytes) / (1024 * 1024);
  *image_mb =
      static_cast<double>(report->placements[0].image_bytes) / (1024 * 1024);

  const sim::SimTime warmup = 100 * sim::kMillisecond;
  const sim::SimTime window = 500 * sim::kMillisecond;
  std::uint64_t delivered = 0;
  (void)node.set_egress("eth1", [&](packet::PacketBuffer&&) {
    const sim::SimTime now = node.simulator().now();
    if (now >= warmup && now < warmup + window) ++delivered;
  });
  traffic::UdpSourceConfig source_config;
  source_config.payload_bytes = 1408;
  source_config.packets_per_second = 150000.0;
  source_config.stop = warmup + window;
  traffic::UdpSource source(node.simulator(), source_config,
                            [&](packet::PacketBuffer&& frame) {
                              (void)node.inject("eth0", std::move(frame));
                            });
  source.begin();
  node.simulator().run_until(warmup + window + 20 * sim::kMillisecond);
  return static_cast<double>(delivered) * 1408 * 8 /
         (static_cast<double>(window) / 1e9) / 1e6;
}

}  // namespace

int main() {
  std::printf("=== IPSec endpoint on a domestic CPE (paper §3) ===\n\n");
  std::printf("%-10s %12s %10s %10s\n", "flavor", "goodput", "RAM", "image");

  struct Flavor {
    const char* name;
    virt::BackendKind backend;
  } flavors[] = {{"vm", virt::BackendKind::kVm},
                 {"docker", virt::BackendKind::kDocker},
                 {"native", virt::BackendKind::kNative}};
  for (const Flavor& flavor : flavors) {
    double ram = 0.0;
    double image = 0.0;
    const double mbps = measure_flavor(flavor.backend, &ram, &image);
    std::printf("%-10s %7.1f Mbps %7.1f MB %7.1f MB\n", flavor.name, mbps,
                ram, image);
  }

  // Functional proof: CPE encrypts, head-end decrypts.
  std::printf("\n--- end-to-end tunnel check (CPE -> provider head-end) "
              "---\n");
  core::UniversalNode cpe;
  core::UniversalNode headend;
  if (!cpe.orchestrator()
           .deploy(vpn_graph("cpe", true, virt::BackendKind::kNative))
           .is_ok() ||
      !headend.orchestrator()
           .deploy(vpn_graph("he", false, virt::BackendKind::kNative))
           .is_ok()) {
    std::printf("tunnel deployment failed\n");
    return 1;
  }
  // Head-end's red side is eth0, black side eth1; CPE black -> HE black.
  (void)cpe.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
    std::printf("wire: ESP frame of %zu bytes\n", frame.size());
    (void)headend.inject("eth1", std::move(frame));
  });
  std::vector<packet::PacketBuffer> decrypted;
  (void)headend.set_egress("eth0", [&](packet::PacketBuffer&& frame) {
    decrypted.push_back(std::move(frame));
  });

  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("10.8.0.1");
  spec.src_port = 40000;
  spec.dst_port = 5001;
  static const std::vector<std::uint8_t> payload(300, 0x5A);
  spec.payload = payload;
  packet::PacketBuffer original = packet::build_udp_frame(spec);
  const std::vector<std::uint8_t> inner_before(original.data().begin() + 14,
                                               original.data().end());
  (void)cpe.inject("eth0", std::move(original));
  cpe.simulator().run();
  headend.simulator().run();

  if (decrypted.size() == 1) {
    const std::vector<std::uint8_t> inner_after(
        decrypted[0].data().begin() + 14, decrypted[0].data().end());
    std::printf("decrypted inner packet %s the original (%zu bytes)\n",
                inner_before == inner_after ? "MATCHES" : "DIFFERS FROM",
                inner_after.size());
    return inner_before == inner_after ? 0 : 1;
  }
  std::printf("no decrypted packet received\n");
  return 1;
}
