// REST-driven node: starts the orchestrator's REST server on loopback and
// drives it the way an upper-layer (global) orchestrator would — deploy an
// NF-FG with HTTP PUT, inspect the node, update a firewall rule, delete.
//
// Self-contained: the example is its own HTTP client.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "core/node.hpp"
#include "rest/server.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): example

namespace {

std::string http(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
  std::string reply;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string status_line(const std::string& reply) {
  return reply.substr(0, reply.find("\r\n"));
}

constexpr const char* kGraph = R"({
  "forwarding-graph": {
    "id": "svc1",
    "name": "customer firewall service",
    "VNFs": [
      {"id": "fw", "functional_type": "firewall", "ports": 2,
       "config": {"policy": "accept"}}
    ],
    "end-points": [
      {"id": "lan", "interface": "eth0"},
      {"id": "wan", "interface": "eth1"}
    ],
    "flow-rules": [
      {"id": "r1", "match": {"port_in": "endpoint:lan"},
       "action": {"output": "vnf:fw:0"}},
      {"id": "r2", "match": {"port_in": "vnf:fw:1"},
       "action": {"output": "endpoint:wan"}},
      {"id": "r3", "match": {"port_in": "endpoint:wan"},
       "action": {"output": "vnf:fw:1"}},
      {"id": "r4", "match": {"port_in": "vnf:fw:0"},
       "action": {"output": "endpoint:lan"}}
    ]
  }
})";

}  // namespace

int main() {
  core::UniversalNode node;
  rest::RestApi api(&node);
  rest::HttpServer server(
      [&api](const rest::HttpRequest& request) { return api.handle(request); });
  if (!server.start(0).is_ok()) {
    std::printf("failed to start REST server\n");
    return 1;
  }
  std::printf("REST server on 127.0.0.1:%u\n\n", server.port());

  // 1. Node description.
  std::printf("> GET /node\n< %s\n\n",
              status_line(http(server.port(),
                               "GET /node HTTP/1.1\r\nHost: l\r\n\r\n"))
                  .c_str());

  // 2. Deploy the NF-FG.
  const std::string body = kGraph;
  const std::string put = "PUT /NF-FG/svc1 HTTP/1.1\r\nContent-Length: " +
                          std::to_string(body.size()) + "\r\n\r\n" + body;
  const std::string deploy_reply = http(server.port(), put);
  std::printf("> PUT /NF-FG/svc1 (NF-FG JSON, %zu bytes)\n< %s\n", body.size(),
              status_line(deploy_reply).c_str());
  const auto json_start = deploy_reply.find("\r\n\r\n");
  if (json_start != std::string::npos) {
    auto doc = json::parse(deploy_reply.substr(json_start + 4));
    if (doc.is_ok()) {
      std::printf("  placement report:\n%s\n", doc->dump_pretty().c_str());
    }
  }

  // 3. List and fetch.
  std::printf("\n> GET /NF-FG\n< %s\n",
              status_line(http(server.port(),
                               "GET /NF-FG HTTP/1.1\r\nHost: l\r\n\r\n"))
                  .c_str());

  // 4. Update the firewall config at runtime (the "update" lifecycle op).
  const std::string cfg = R"({"rule.1": "drop,any,any,tcp,23"})";
  const std::string update =
      "PUT /NF-FG/svc1/VNFs/fw/config HTTP/1.1\r\nContent-Length: " +
      std::to_string(cfg.size()) + "\r\n\r\n" + cfg;
  std::printf("> PUT /NF-FG/svc1/VNFs/fw/config\n< %s\n",
              status_line(http(server.port(), update)).c_str());

  // 5. Delete the service.
  std::printf("> DELETE /NF-FG/svc1\n< %s\n",
              status_line(http(server.port(),
                               "DELETE /NF-FG/svc1 HTTP/1.1\r\nHost: l\r\n"
                               "\r\n"))
                  .c_str());

  const bool deployed_then_deleted = !node.orchestrator().has_graph("svc1");
  std::printf("\nrequests served: %llu; graph removed: %s\n",
              static_cast<unsigned long long>(server.requests_served()),
              deployed_then_deleted ? "yes" : "no");
  server.stop();
  return deployed_then_deleted ? 0 : 1;
}
