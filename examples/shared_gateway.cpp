// Shared residential gateway: two customers' service graphs on one CPE
// sharing a single native NAT instance — the paper's sharability mechanism
// (marking + isolated internal paths) in action.
//
// Each customer gets a firewall (own policy) + the shared NAT. The example
// prints the placement decisions (second NAT deployment reuses the running
// instance), then pushes traffic for both customers and shows their flows
// are translated with separate external IPs and tracked in separate
// conntrack contexts.
#include <cstdio>
#include <vector>

#include "core/node.hpp"
#include "nffg/nffg.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): example

namespace {

nffg::NfFg customer_graph(const std::string& id, const std::string& lan_if,
                          const std::string& wan_if,
                          const std::string& external_ip,
                          const std::string& firewall_rule) {
  nffg::NfFg graph;
  graph.id = id;
  nffg::NfNode& fw = graph.add_nf("fw", "firewall");
  fw.config["policy"] = "accept";
  if (!firewall_rule.empty()) fw.config["rule.1"] = firewall_rule;
  graph.add_nf("nat", "nat").config["external_ip"] = external_ip;
  graph.add_endpoint("lan", lan_if);
  graph.add_endpoint("wan", wan_if);
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("fw", 0));
  graph.connect("r2", nffg::nf_port("fw", 1), nffg::nf_port("nat", 0));
  graph.connect("r3", nffg::nf_port("nat", 1), nffg::endpoint_ref("wan"));
  graph.connect("r4", nffg::endpoint_ref("wan"), nffg::nf_port("nat", 1));
  graph.connect("r5", nffg::nf_port("nat", 0), nffg::nf_port("fw", 1));
  graph.connect("r6", nffg::nf_port("fw", 0), nffg::endpoint_ref("lan"));
  return graph;
}

packet::PacketBuffer lan_packet(std::uint16_t dport) {
  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  spec.src_port = 40000;
  spec.dst_port = dport;
  static const std::vector<std::uint8_t> payload(64, 0x11);
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

std::string src_ip_of(const packet::PacketBuffer& frame) {
  auto eth = packet::parse_ethernet(frame.data());
  auto tuple =
      packet::extract_five_tuple(frame.data().subspan(eth->wire_size()));
  return tuple ? tuple->src_ip.to_string() : "?";
}

}  // namespace

int main() {
  core::UniversalNodeConfig config;
  config.physical_ports = {"custA-lan", "custA-wan", "custB-lan",
                           "custB-wan"};
  core::UniversalNode node(config);

  std::printf("=== Two customers sharing one CPE ===\n\n");
  for (const auto& [id, lan, wan, ext, rule] :
       std::vector<std::tuple<std::string, std::string, std::string,
                              std::string, std::string>>{
           {"custA", "custA-lan", "custA-wan", "203.0.113.1",
            "drop,any,any,udp,23"},
           {"custB", "custB-lan", "custB-wan", "203.0.113.2", ""}}) {
    auto report = node.orchestrator().deploy(
        customer_graph(id, lan, wan, ext, rule));
    if (!report) {
      std::printf("%s: deploy failed: %s\n", id.c_str(),
                  report.status().to_string().c_str());
      return 1;
    }
    std::printf("%s deployed:\n", id.c_str());
    for (const core::NfPlacement& placement : report->placements) {
      std::printf("  %-4s -> %-7s shared=%d  (%s)\n",
                  placement.nf_id.c_str(),
                  std::string(virt::backend_name(placement.backend)).c_str(),
                  placement.reused_shared_instance ? 1 : 0,
                  placement.reason.c_str());
    }
  }

  const nnf::NnfStatus* nat_status = node.catalog().status_of("nat");
  std::printf("\nNAT catalog status: %zu instance(s) serving %zu graph(s); "
              "%zu marks in use\n",
              nat_status->running_instances, nat_status->graphs.size(),
              node.marks().in_use());

  // Traffic: both customers resolve DNS; customer A also tries telnet
  // (blocked by A's firewall only).
  std::vector<packet::PacketBuffer> wan_a;
  std::vector<packet::PacketBuffer> wan_b;
  (void)node.set_egress("custA-wan", [&](packet::PacketBuffer&& frame) {
    wan_a.push_back(std::move(frame));
  });
  (void)node.set_egress("custB-wan", [&](packet::PacketBuffer&& frame) {
    wan_b.push_back(std::move(frame));
  });

  (void)node.inject("custA-lan", lan_packet(53));
  (void)node.inject("custA-lan", lan_packet(23));  // blocked by A's fw
  (void)node.inject("custB-lan", lan_packet(53));
  (void)node.inject("custB-lan", lan_packet(23));  // B has no such rule
  node.simulator().run();

  std::printf("\ncustomer A WAN egress: %zu packet(s)", wan_a.size());
  for (const auto& frame : wan_a) {
    std::printf("  [src %s]", src_ip_of(frame).c_str());
  }
  std::printf("\ncustomer B WAN egress: %zu packet(s)", wan_b.size());
  for (const auto& frame : wan_b) {
    std::printf("  [src %s]", src_ip_of(frame).c_str());
  }
  std::printf("\n\nExpected: A delivers 1 (telnet dropped) with src "
              "203.0.113.1; B delivers 2\nwith src 203.0.113.2 — one shared "
              "NAT process, fully isolated per graph.\n");

  const bool ok = wan_a.size() == 1 && wan_b.size() == 2 &&
                  src_ip_of(wan_a[0]) == "203.0.113.1" &&
                  src_ip_of(wan_b[0]) == "203.0.113.2";
  return ok ? 0 : 1;
}
