// Quickstart: deploy a one-NF service graph on a Universal Node and push a
// packet through it.
//
//   $ ./build/examples/quickstart
//
// Walks the full public API surface: build an NF-FG, deploy it (the
// scheduler picks the native firewall), wire traffic in and out of the
// node's physical ports, and inspect the deployment report.
#include <cstdio>

#include "core/node.hpp"
#include "nffg/nffg.hpp"
#include "packet/builder.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): example

int main() {
  // 1. A node with two physical ports and all four drivers (Figure 1).
  core::UniversalNode node;

  // 2. Describe the service as an NF-FG: lan -> firewall -> wan (+return).
  nffg::NfFg graph;
  graph.id = "quickstart";
  nffg::NfNode& fw = graph.add_nf("fw", "firewall");
  fw.config["policy"] = "accept";
  fw.config["rule.1"] = "drop,any,any,tcp,23";  // no telnet
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("fw", 0));
  graph.connect("r2", nffg::nf_port("fw", 1), nffg::endpoint_ref("wan"));
  graph.connect("r3", nffg::endpoint_ref("wan"), nffg::nf_port("fw", 1));
  graph.connect("r4", nffg::nf_port("fw", 0), nffg::endpoint_ref("lan"));

  // 3. Deploy. The orchestrator validates, creates the graph LSI, decides
  //    NNF-vs-VNF per function and installs the steering rules.
  auto report = node.orchestrator().deploy(graph);
  if (!report) {
    std::printf("deploy failed: %s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("deployed '%s': %zu NF(s), %zu flow rules, ready in %.1f ms\n",
              report->graph_id.c_str(), report->placements.size(),
              report->flow_rules_installed,
              static_cast<double>(report->ready_latency) / 1e6);
  for (const core::NfPlacement& placement : report->placements) {
    std::printf("  NF '%s' -> %s (%s)\n", placement.nf_id.c_str(),
                std::string(virt::backend_name(placement.backend)).c_str(),
                placement.reason.c_str());
  }

  // 4. Attach a sink to the WAN port and send one packet from the LAN.
  int wan_rx = 0;
  (void)node.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
    ++wan_rx;
    std::printf("WAN egress: %zu-byte frame\n", frame.size());
  });

  packet::UdpFrameSpec spec;
  spec.ip_src = *packet::Ipv4Address::parse("192.168.1.10");
  spec.ip_dst = *packet::Ipv4Address::parse("8.8.8.8");
  spec.src_port = 40000;
  spec.dst_port = 53;
  static const std::vector<std::uint8_t> payload(64, 0x42);
  spec.payload = payload;
  (void)node.inject("eth0", packet::build_udp_frame(spec));

  // 5. Run the simulated datapath until it drains.
  node.simulator().run();
  std::printf("packets delivered to WAN: %d\n", wan_rx);

  // 6. Tear the service down again.
  (void)node.orchestrator().remove("quickstart");
  std::printf("graph removed; LSIs on node: %zu\n",
              node.network().lsi_count());
  return wan_rx == 1 ? 0 : 1;
}
