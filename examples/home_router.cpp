// Home router: the full CPE service the paper's introduction motivates —
// DHCP + firewall + NAT, every function native, configured entirely
// through the *generic* vocabulary (the paper's future-work translation
// mechanism, see nnf/translator.hpp).
//
// The example walks a realistic session:
//   1. deploy the router NF-FG (scheduler picks native for all three NFs);
//   2. a LAN client runs the DHCP DORA handshake and obtains a lease;
//   3. the client's web traffic is firewalled and NATted to the WAN;
//   4. the operator tightens the firewall at runtime via the generic
//      config (update lifecycle step).
#include <cstdio>
#include <vector>

#include "core/node.hpp"
#include "nffg/nffg.hpp"
#include "packet/builder.hpp"
#include "packet/flow_key.hpp"
#include "util/byteorder.hpp"

using namespace nnfv;  // NOLINT(google-build-using-namespace): example

namespace {

/// Minimal DHCP client message (DISCOVER or REQUEST).
packet::PacketBuffer dhcp_client(std::uint8_t type,
                                 const packet::MacAddress& mac,
                                 std::optional<packet::Ipv4Address> wanted) {
  std::vector<std::uint8_t> payload(236 + 4 + 16, 0);
  payload[0] = 1;
  payload[1] = 1;
  payload[2] = 6;
  util::store_be32(payload.data() + 4, 0x1234);
  std::copy(mac.bytes.begin(), mac.bytes.end(), payload.begin() + 28);
  util::store_be32(payload.data() + 236, 0x63825363);
  std::size_t pos = 240;
  payload[pos++] = 53;
  payload[pos++] = 1;
  payload[pos++] = type;
  if (wanted.has_value()) {
    payload[pos++] = 50;
    payload[pos++] = 4;
    util::store_be32(payload.data() + pos, wanted->value);
    pos += 4;
  }
  payload[pos++] = 255;
  payload.resize(pos);

  packet::UdpFrameSpec spec;
  spec.eth_src = mac;
  spec.eth_dst = packet::MacAddress::broadcast();
  spec.ip_src = packet::Ipv4Address{0};
  spec.ip_dst = packet::Ipv4Address{0xFFFFFFFF};
  spec.src_port = 68;
  spec.dst_port = 67;
  spec.payload = payload;
  return packet::build_udp_frame(spec);
}

}  // namespace

int main() {
  core::UniversalNodeConfig config;
  config.generic_config_translation = true;  // future-work mechanism on
  core::UniversalNode node(config);

  // --- 1. The router NF-FG, generic configuration only -------------------
  nffg::NfFg graph;
  graph.id = "home";
  graph.add_nf("dhcp", "dhcp", 1).config = {
      {"generic", "1"},
      {"lan_address", "192.168.1.1"},
      {"lan_pool", "192.168.1.100-192.168.1.150"}};
  graph.add_nf("fw", "firewall").config = {{"generic", "1"},
                                           {"default", "allow"}};
  graph.add_nf("nat", "nat").config = {{"generic", "1"},
                                       {"wan_address", "203.0.113.77"}};
  graph.add_endpoint("lan", "eth0");
  graph.add_endpoint("wan", "eth1");

  // DHCP traffic peels off to the DHCP server and back.
  nffg::Rule& to_dhcp = graph.connect("d1", nffg::endpoint_ref("lan"),
                                      nffg::nf_port("dhcp", 0), 100);
  to_dhcp.match.ip_proto = packet::kIpProtoUdp;
  to_dhcp.match.tp_dst = 67;
  graph.connect("d2", nffg::nf_port("dhcp", 0), nffg::endpoint_ref("lan"),
                100);
  // Everything else: lan -> fw -> nat -> wan and back.
  graph.connect("r1", nffg::endpoint_ref("lan"), nffg::nf_port("fw", 0), 10);
  graph.connect("r2", nffg::nf_port("fw", 1), nffg::nf_port("nat", 0), 10);
  graph.connect("r3", nffg::nf_port("nat", 1), nffg::endpoint_ref("wan"),
                10);
  graph.connect("r4", nffg::endpoint_ref("wan"), nffg::nf_port("nat", 1),
                10);
  graph.connect("r5", nffg::nf_port("nat", 0), nffg::nf_port("fw", 1), 10);
  graph.connect("r6", nffg::nf_port("fw", 0), nffg::endpoint_ref("lan"), 10);

  auto report = node.orchestrator().deploy(graph);
  if (!report) {
    std::printf("deploy failed: %s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("home router deployed (%zu NFs, %zu rules):\n",
              report->placements.size(), report->flow_rules_installed);
  for (const core::NfPlacement& placement : report->placements) {
    std::printf("  %-5s -> %-7s %s\n", placement.nf_id.c_str(),
                std::string(virt::backend_name(placement.backend)).c_str(),
                placement.reason.c_str());
  }

  // --- 2. DHCP handshake --------------------------------------------------
  std::vector<packet::PacketBuffer> lan_rx;
  std::vector<packet::PacketBuffer> wan_rx;
  (void)node.set_egress("eth0", [&](packet::PacketBuffer&& frame) {
    lan_rx.push_back(std::move(frame));
  });
  (void)node.set_egress("eth1", [&](packet::PacketBuffer&& frame) {
    wan_rx.push_back(std::move(frame));
  });

  const auto client_mac = packet::MacAddress::from_id(0xC0FFEE);
  (void)node.inject("eth0", dhcp_client(1, client_mac, std::nullopt));
  node.simulator().run();
  if (lan_rx.empty()) {
    std::printf("no DHCP offer received\n");
    return 1;
  }
  // The offered address sits at BOOTP yiaddr (offset 16 of the payload).
  auto offer_fields = packet::extract_flow_fields(lan_rx[0].data());
  const std::size_t dhcp_off = offer_fields->eth.wire_size() +
                               offer_fields->ipv4->header_size() + 8;
  const packet::Ipv4Address leased{
      util::load_be32(lan_rx[0].data().data() + dhcp_off + 16)};
  std::printf("\nDHCP: client %s offered %s\n",
              client_mac.to_string().c_str(), leased.to_string().c_str());
  (void)node.inject("eth0", dhcp_client(3, client_mac, leased));
  node.simulator().run();
  std::printf("DHCP: lease acknowledged (%zu server replies)\n",
              lan_rx.size());

  // --- 3. Client traffic through fw + nat --------------------------------
  packet::UdpFrameSpec web;
  web.eth_src = client_mac;
  web.eth_dst = packet::MacAddress::from_id(0x01);
  web.ip_src = leased;
  web.ip_dst = *packet::Ipv4Address::parse("93.184.216.34");
  web.src_port = 52000;
  web.dst_port = 443;
  (void)node.inject("eth0", packet::build_udp_frame(web));
  node.simulator().run();
  if (wan_rx.empty()) {
    std::printf("no WAN egress\n");
    return 1;
  }
  auto eth = packet::parse_ethernet(wan_rx[0].data());
  auto tuple = packet::extract_five_tuple(
      wan_rx[0].data().subspan(eth->wire_size()));
  std::printf("WAN: %s (NATted from %s)\n", tuple->to_string().c_str(),
              leased.to_string().c_str());

  // --- 4. Runtime tightening via generic config ---------------------------
  util::Status update = node.orchestrator().update_nf(
      "home", "fw",
      {{"generic", "1"}, {"default", "allow"}, {"block.1", "udp:443"}});
  std::printf("\noperator blocks QUIC: update_nf -> %s\n",
              update.to_string().c_str());
  const std::size_t wan_before = wan_rx.size();
  (void)node.inject("eth0", packet::build_udp_frame(web));
  node.simulator().run();
  std::printf("re-sent client packet: WAN egress %s\n",
              wan_rx.size() == wan_before ? "blocked (as configured)"
                                          : "NOT blocked");
  return wan_rx.size() == wan_before ? 0 : 1;
}
