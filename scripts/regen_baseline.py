#!/usr/bin/env python3
"""Regenerate (or schema-check) bench/baseline.json from a bench run.

The trend baseline used to be curated by hand, which drifts: metrics get
renamed, new ratio metrics never get gated, and the safety margins are
folklore. This script makes the baseline self-regenerating:

  regen (default)
      Runs every bench_* binary in --build-dir in FULL (non-smoke) mode,
      collects every dimensionless ratio metric (extra keys named
      "speedup" or "speedup_vs_*" — the only numbers comparable across
      runner hardware — plus the ceiling-gated allocs_per_packet counts,
      pinned at 0), applies the safety margin automatically, and
      rewrites the baseline. Margins shrink the observed ratio toward
      1.0 (baseline = 1 + (observed - 1) * margin) so near-1 ratios do
      not collapse below a meaningful floor and large ratios keep a
      generous noise budget; CI applies --max-regress on top. Runs
      flagged "unoptimized" are rejected — a blessed run must come from
      a Release build. Hardware-conditioned metrics (see
      HARDWARE_CONDITIONS) get their _requires_backend/_requires_cpu
      stamps; when the regen run itself does not satisfy a metric's
      conditions, its previous baseline entry is kept (with a warning)
      rather than blessing a software number as a hardware floor.

  --check
      Runs the suite in --smoke mode (values are noise, the key
      structure is real) and fails when the committed baseline no longer
      matches what the benches emit: a baseline (bench, result, key)
      that no bench produces, a produced ratio metric missing from the
      baseline, or an unknown underscore key. This is the CI guard
      against silent baseline rot.

  --check --from-json <file|dir> [...]
      Same schema check, but against the last-line JSON of bench output
      files already on disk (e.g. CI's bench-out/*.out artifacts)
      instead of re-running every binary. Several files for one bench
      (mode variants) merge their result lists, so a metric only
      emitted under --mode=gcm still counts as emitted. regen mode
      never accepts --from-json: a blessed baseline must come from a
      fresh full run, not from whatever artifacts happen to be lying
      around.

Usage:
    regen_baseline.py [--build-dir build] [--margin 0.25]
                      [--baseline bench/baseline.json] [--check]
                      [--from-json <file|dir> ...]
"""
import glob
import json
import os
import subprocess
import sys

# Shared with the gating script so the regen/check/gate pipeline cannot
# disagree on skip semantics or the legal underscore-key set (both
# scripts live in scripts/, which is sys.path[0] when either is run).
from check_bench_json import (CEILING_KEYS, KNOWN_UNDERSCORE_KEYS,
                              conditions_met)

# Which ratio metrics only hold on specific hardware. Mirrors the
# in-bench gating logic (bench_table1_ipsec/bench_crypto): a run on
# weaker hardware must skip these instead of failing them. The
# *_vs_seed metrics are here too — their value is the active backend's
# speedup over the seed implementation (~40x on aesni, ~4x portable),
# so a floor blessed on one backend must never judge a run on another.
# Backend lists name the acceptable set: which PCLMUL-class backend the
# run auto-selects (aesni vs vaes) depends on the CPU generation, and
# the floor holds on either.
HARDWARE_CONDITIONS = {
    "backend_speedup_vs_portable": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "sha"},
    "gcm_backend_speedup_vs_portable": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    "esp_gcm_vs_cbc_speedup": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    "gcm_stitch_speedup_vs_split": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    "aes_cbc_speedup_vs_seed": {"_requires_backend": ["aesni", "vaes"]},
    "esp_crypto_speedup_vs_seed": {"_requires_backend": ["aesni", "vaes"]},
    # The multi-buffer seal curve (8 lanes vs 8 per-packet seals, per
    # packet size). The ratios come from batched VAES/CLMUL kernels, so
    # only PCLMUL-class backends observe them; the 576/1408 B points are
    # trend-gated too — a scheduling regression that makes batching lose
    # money on large packets (mb << 1.0) must not land silently.
    "mb_speedup_vs_single_64": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    "mb_speedup_vs_single_128": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    "mb_speedup_vs_single_256": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    "mb_speedup_vs_single_576": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    "mb_speedup_vs_single_1408": {
        "_requires_backend": ["aesni", "vaes"], "_requires_cpu": "pclmul"},
    # Parallel scaling only exists on enough hardware threads; runs on
    # smaller machines validate output shape and skip the floor.
    "uniform_w4": {"_requires_cores": 4},
    # Overload goodput needs the submit thread and both workers on their
    # own cores; on fewer the "saturation" denominator is itself noise.
    "overload_2x": {"_requires_cores": 4},
}

# Floors for hardware-conditioned metrics that a blessed run on weaker
# hardware cannot observe and that have a declared acceptance target:
# regen seeds the entry at the target instead of leaving the metric
# ungated until someone blesses a baseline on big hardware. A seeded
# value is replaced by a real observation (margin applied) on the first
# regen run that satisfies the entry's conditions.
SEED_FLOORS = {
    "uniform_w4": {"speedup_vs_1w": 3.0},
    "overload_2x": {"speedup_vs_saturation": 0.85},
    # Multi-buffer acceptance floors (the in-bench gates): a baseline
    # blessed on non-PCLMUL hardware still demands these from the first
    # qualifying runner.
    "mb_speedup_vs_single_64": {"speedup": 1.5},
    "mb_speedup_vs_single_128": {"speedup": 1.15},
    "mb_speedup_vs_single_256": {"speedup": 1.0},
}

# Ratio metrics excluded from the baseline on purpose: near-1 by design
# (amortisation of already-cheap work), so a trend floor would gate pure
# scheduling noise. The sharded-datapath w1 points are the ratio
# denominator (always exactly 1.0); the elephant mix's speedup is bounded
# by the elephant flow's share — RSS pins it to one worker by design —
# so a floor there would gate traffic topology, not a regression; the
# uniform 2-worker point is an intermediate measured for the curve only.
EXCLUDED_METRICS = {"esp_burst_speedup_vs_single", "uniform_w1",
                    "uniform_w2", "elephant_w1", "elephant_w2",
                    "elephant_w4",
                    # bench_overload curve context: 1x is the paced
                    # sanity point (~1.0 by construction) and 4x's ratio
                    # depends on how hard the shed path is hammered, not
                    # on a regression; only the 2x acceptance point is
                    # floor-gated.
                    "overload_1x", "overload_4x"}


def is_ratio_key(key):
    """Baseline-worthy keys: dimensionless speedups (floor-gated) and the
    ceiling-gated per-packet event counts (also hardware-independent —
    allocation behaviour does not depend on the runner)."""
    return (key == "speedup" or key.startswith("speedup_vs_")
            or key in CEILING_KEYS)


def run_benches(build_dir, smoke):
    """Runs every bench_* binary; returns {bench_name: parsed JSON}."""
    binaries = sorted(glob.glob(os.path.join(build_dir, "bench_*")))
    binaries = [b for b in binaries
                if os.path.isfile(b) and os.access(b, os.X_OK)]
    if not binaries:
        raise SystemExit(
            f"regen_baseline: no bench_* binaries in {build_dir} "
            "(build them with: cmake --build <dir> --target bench)")
    runs = {}
    for binary in binaries:
        args = [binary] + (["--smoke"] if smoke else [])
        print(f"regen_baseline: running {' '.join(args)}", flush=True)
        proc = subprocess.run(args, stdout=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            raise SystemExit(
                f"regen_baseline: {binary} exited {proc.returncode}; a "
                "blessed run must be green")
        lines = [l for l in proc.stdout.splitlines() if l.strip()]
        try:
            obj = json.loads(lines[-1])
        except (IndexError, json.JSONDecodeError) as err:
            raise SystemExit(
                f"regen_baseline: {binary} emitted no valid last-line "
                f"JSON ({err})")
        if obj.get("unoptimized") is True:
            raise SystemExit(
                f"regen_baseline: {binary} is flagged unoptimized — "
                "rebuild with -DCMAKE_BUILD_TYPE=Release before blessing "
                "a baseline")
        runs[obj.get("bench", os.path.basename(binary))] = obj
    return runs


def load_bench_outputs(paths):
    """Parses the last-line JSON of existing bench output files (CI's
    bench-out/*.out artifacts) instead of re-running binaries; returns
    {bench_name: parsed JSON}. Mode-variant files of one bench merge
    their result lists under the shared bench name."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(glob.glob(os.path.join(path, "*.out"))))
        else:
            files.append(path)
    if not files:
        raise SystemExit(
            f"regen_baseline: --from-json matched no files in {paths}")
    runs = {}
    for fname in files:
        with open(fname, encoding="utf-8") as f:
            lines = [l for l in f.read().splitlines() if l.strip()]
        try:
            obj = json.loads(lines[-1])
        except (IndexError, json.JSONDecodeError) as err:
            raise SystemExit(
                f"regen_baseline: {fname} has no valid last-line JSON "
                f"({err})")
        name = obj.get("bench", os.path.basename(fname))
        if name in runs:
            runs[name].setdefault("results", []).extend(
                obj.get("results", []))
        else:
            runs[name] = obj
    return runs


def ratio_metrics(obj):
    """Yields (result_name, key, value) for every ratio metric in a run."""
    for result in obj.get("results", []):
        name = result.get("name")
        for key, value in (result.get("extra") or {}).items():
            if is_ratio_key(key) and name not in EXCLUDED_METRICS:
                yield name, key, value


def apply_margin(observed, margin):
    """The baseline must sit safely BELOW the observation. Above parity,
    shrink toward 1.0 — keep `margin` of the gain, so a 35x observation
    floors around 1+34*margin while a 1.2x observation still floors
    above 1.0 instead of at a meaningless 0.3. Below parity (ratios the
    suite tracks where the comparison point legitimately wins, e.g.
    tiny-table lookups vs a 4-entry linear scan), shrinking toward 1.0
    would RAISE the floor above the observation, so scale down
    multiplicatively instead."""
    if observed >= 1.0:
        return round(1.0 + (observed - 1.0) * margin, 2)
    return round(observed * (1.0 - margin), 2)


def regenerate(runs, old_baseline, margin):
    benches = {}
    for bench, obj in runs.items():
        entries = {}
        for name, key, value in ratio_metrics(obj):
            conditions = HARDWARE_CONDITIONS.get(name, {})
            old_entry = (old_baseline.get("benches", {})
                         .get(bench, {}).get(name))
            if conditions and not conditions_met(conditions, obj):
                if old_entry is not None:
                    print(f"regen_baseline: WARNING keeping previous "
                          f"'{bench}.{name}' — this run does not satisfy "
                          f"{conditions}", file=sys.stderr)
                    entries[name] = old_entry
                elif name in SEED_FLOORS:
                    entry = {"_observed":
                             "seeded at the acceptance target (blessed "
                             "run did not satisfy the conditions)"}
                    entry.update(conditions)
                    entry.update(SEED_FLOORS[name])
                    entries[name] = entry
                    print(f"regen_baseline: WARNING seeding "
                          f"'{bench}.{name}' at its acceptance target — "
                          f"this run does not satisfy {conditions}",
                          file=sys.stderr)
                else:
                    print(f"regen_baseline: WARNING skipping "
                          f"'{bench}.{name}' — this run does not satisfy "
                          f"{conditions} and no previous entry exists",
                          file=sys.stderr)
                continue
            entry = {"_observed": f"{value:.3g} on the blessed run"}
            entry.update(conditions)
            if key in CEILING_KEYS:
                # Ceilings are pinned at the contract value, not the
                # observation: zero allocations is an invariant, and the
                # regen run itself fails (in-bench gate) when nonzero.
                entry[key] = 0.0
            else:
                entry[key] = apply_margin(value, margin)
            entries[name] = entry
        if entries:
            benches[bench] = entries
    return {
        "_comment": [
            "Trend baseline for scripts/check_bench_json.py --compare.",
            "REGENERATED by scripts/regen_baseline.py from a blessed",
            "full (non-smoke) Release bench run — do not edit values by",
            "hand; rerun the script instead. Only dimensionless ratio",
            "metrics (speedups) belong here: they are the only numbers",
            "comparable across runner hardware. Values are the observed",
            "ratios shrunk toward 1.0 by the safety margin (see",
            "apply_margin); the CI --max-regress factor applies on top.",
            "_requires_backend / _requires_cpu skip an entry when the",
            "run's backend / cpu_features do not match, so runs on",
            "weaker hardware are not judged against hardware ratios.",
        ],
        "benches": benches,
    }


def check(runs, baseline):
    """Schema check: committed baseline vs what the benches emit."""
    problems = []
    emitted = {(bench, name, key)
               for bench, obj in runs.items()
               for name, key, _ in ratio_metrics(obj)}
    curated = set()
    for bench, entries in baseline.get("benches", {}).items():
        if not isinstance(entries, dict):
            problems.append(f"baseline bench '{bench}' is not an object")
            continue
        for name, spec in entries.items():
            if not isinstance(spec, dict):
                problems.append(
                    f"baseline entry '{bench}.{name}' is not an object")
                continue
            numeric = 0
            for key in spec:
                if key.startswith("_"):
                    if key not in KNOWN_UNDERSCORE_KEYS:
                        problems.append(
                            f"baseline '{bench}.{name}' has unknown "
                            f"underscore key '{key}'")
                    continue
                numeric += 1
                curated.add((bench, name, key))
                if (bench, name, key) not in emitted:
                    problems.append(
                        f"baseline '{bench}.{name}.{key}' is not emitted "
                        "by any bench (renamed or removed metric? rerun "
                        "regen_baseline.py)")
            if numeric == 0:
                problems.append(
                    f"baseline '{bench}.{name}' curates no numeric ratio "
                    "key")
    for bench, name, key in sorted(emitted - curated):
        problems.append(
            f"bench '{bench}' emits ratio metric '{name}.{key}' that the "
            "baseline does not curate (rerun regen_baseline.py on a "
            "blessed machine)")
    return problems


def parse_args(argv):
    build_dir, margin = "build", 0.25
    baseline_path, check_mode = os.path.join("bench", "baseline.json"), False
    from_json = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--build-dir":
            i += 1
            build_dir = argv[i]
        elif arg == "--margin":
            i += 1
            margin = float(argv[i])
        elif arg == "--baseline":
            i += 1
            baseline_path = argv[i]
        elif arg == "--check":
            check_mode = True
        elif arg == "--from-json":
            i += 1
            from_json.append(argv[i])
        else:
            raise ValueError(f"unknown argument {arg}")
        i += 1
    if not 0.0 < margin <= 1.0:
        raise ValueError("--margin must be in (0, 1]")
    if from_json and not check_mode:
        raise ValueError(
            "--from-json only works with --check (a blessed regen must "
            "come from a fresh full run)")
    return build_dir, margin, baseline_path, check_mode, from_json


def main(argv):
    try:
        (build_dir, margin, baseline_path, check_mode,
         from_json) = parse_args(argv)
    except (IndexError, ValueError) as err:
        print(f"regen_baseline: {err}\n\n{__doc__.strip()}",
              file=sys.stderr)
        return 2

    old_baseline = {}
    if os.path.exists(baseline_path):
        with open(baseline_path, encoding="utf-8") as f:
            old_baseline = json.load(f)

    if from_json:
        runs = load_bench_outputs(from_json)
    else:
        runs = run_benches(build_dir, smoke=check_mode)

    if check_mode:
        problems = check(runs, old_baseline)
        for problem in problems:
            print(f"regen_baseline: FAIL {problem}", file=sys.stderr)
        if problems:
            return 1
        curated = sum(len(v) for v in old_baseline.get("benches",
                                                       {}).values())
        print(f"regen_baseline: OK baseline schema matches the bench "
              f"suite ({curated} curated entries)")
        return 0

    baseline = regenerate(runs, old_baseline, margin)
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, ensure_ascii=False)
        f.write("\n")
    total = sum(len(v) for v in baseline["benches"].values())
    print(f"regen_baseline: wrote {baseline_path} ({total} ratio metrics, "
          f"margin {margin})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
