#!/usr/bin/env python3
"""Validate the last-line JSON emitted by bench_* binaries.

Usage:
    check_bench_json.py FILE [FILE...]
    some_bench --smoke | check_bench_json.py -

Each FILE holds the full stdout of one bench run; the JSON object is its
last non-empty line (see bench/bench_json.hpp for the shape). The check
fails (exit 1, one diagnostic line per problem) when:

  * the last line is not a JSON object,
  * "bench" is missing or not a string,
  * "results" is missing, not a list, or empty,
  * a result lacks name/iterations/ns_per_op/ops_per_sec or their types
    are wrong (extra, when present, must map strings to numbers),
  * the run is flagged "unoptimized": the binary was linked against an
    nnfv library built without optimization (CMake warned at configure
    time), so the numbers are untrustworthy and CI must not green-light
    them.

"smoke":true is fine — smoke runs exist precisely so this script can
exercise the reporting path cheaply; only the perf *gates* are skipped
in smoke mode, not the output contract.
"""
import json
import sys


def fail(name, msg, problems):
    problems.append(f"{name}: {msg}")


def check_result(name, i, result, problems):
    where = f"{name}: results[{i}]"
    if not isinstance(result, dict):
        fail(name, f"results[{i}] is not an object", problems)
        return
    label = result.get("name")
    if not isinstance(label, str) or not label:
        fail(name, f"results[{i}] has no string 'name'", problems)
    for key, kinds in (("iterations", (int,)),
                      ("ns_per_op", (int, float)),
                      ("ops_per_sec", (int, float))):
        value = result.get(key)
        if not isinstance(value, kinds) or isinstance(value, bool):
            fail(name, f"{where} '{key}' missing or non-numeric", problems)
    extra = result.get("extra")
    if extra is not None:
        if not isinstance(extra, dict):
            fail(name, f"{where} 'extra' is not an object", problems)
        else:
            for key, value in extra.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    fail(name, f"{where} extra['{key}'] is non-numeric", problems)


def check_stream(name, text, problems):
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        fail(name, "no output at all", problems)
        return
    try:
        obj = json.loads(lines[-1])
    except json.JSONDecodeError as err:
        fail(name, f"last line is not valid JSON ({err})", problems)
        return
    if not isinstance(obj, dict):
        fail(name, "last line is not a JSON object", problems)
        return
    bench = obj.get("bench")
    if not isinstance(bench, str) or not bench:
        fail(name, "missing string field 'bench'", problems)
    if obj.get("unoptimized") is True:
        fail(name, "flagged \"unoptimized\":true — bench was built against "
                   "an unoptimised nnfv library; numbers are meaningless "
                   "(rebuild with -DCMAKE_BUILD_TYPE=Release)", problems)
    results = obj.get("results")
    if not isinstance(results, list) or not results:
        fail(name, "'results' missing, not a list, or empty", problems)
        return
    for i, result in enumerate(results):
        check_result(name, i, result, problems)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    problems = []
    checked = 0
    for path in argv[1:]:
        if path == "-":
            check_stream("<stdin>", sys.stdin.read(), problems)
        else:
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    check_stream(path, f.read(), problems)
            except OSError as err:
                fail(path, f"cannot read ({err})", problems)
        checked += 1
    for problem in problems:
        print(f"check_bench_json: FAIL {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"check_bench_json: OK ({checked} bench output"
          f"{'s' if checked != 1 else ''} valid)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
