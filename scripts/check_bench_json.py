#!/usr/bin/env python3
"""Validate the last-line JSON emitted by bench_* binaries, and optionally
gate ratio metrics against a committed trend baseline.

Usage:
    check_bench_json.py FILE [FILE...]
    some_bench --smoke | check_bench_json.py -
    check_bench_json.py --compare bench/baseline.json --max-regress 0.85 \
        FILE [FILE...]

Each FILE holds the full stdout of one bench run; the JSON object is its
last non-empty line (see bench/bench_json.hpp for the shape). The contract
check fails (exit 1, one diagnostic line per problem) when:

  * the last line is not a JSON object,
  * "bench" is missing or not a string,
  * "results" is missing, not a list, or empty,
  * a result lacks name/iterations/ns_per_op/ops_per_sec or their types
    are wrong (extra, when present, must map strings to numbers),
  * the run is flagged "unoptimized": the binary was linked against an
    nnfv library built without optimization (CMake warned at configure
    time), so the numbers are untrustworthy and CI must not green-light
    them.

"smoke":true is fine — smoke runs exist precisely so this script can
exercise the reporting path cheaply; only the perf *gates* are skipped
in smoke mode, not the output contract.

Trend gating (--compare BASELINE --max-regress F): BASELINE is a curated
JSON file of the shape

    {"benches": {"<bench>": {"<result name>": {"<extra key>": <value>,
        "_requires_backend": "aesni", "_requires_cpu": "pclmul",
        "_requires_cores": 4}, ...}}}

For every baseline entry whose bench appears among the inputs (and whose
_requires_* conditions match the run's "backend" / "cpu_features" /
"cpus" fields), the current run's extra[<key>] must be >= <value> * F.
_requires_backend accepts either one backend name or a list of
acceptable names (a floor that holds on any PCLMUL-class backend lists
["aesni", "vaes"]; which one the run auto-selects depends on the CPU
generation).
_requires_cores guards parallel-scaling floors: a 4-worker speedup only
exists on >= 4 hardware threads, so runs on smaller machines skip the
entry instead of failing it (the bench emits its "cpus" count). Baseline
values are dimensionless ratios (speedups) by design — they are the only
numbers comparable across runner hardware; raw ns/op never belongs in
the baseline. Keys in CEILING_KEYS invert the comparison: the run's
value must be <= the baseline value, exactly (no --max-regress slack) —
used for allocs_per_packet, where the steady-state datapath must not
touch the system allocator at all and any nonzero count is a leak of
work onto the hot path, not noise. A baseline entry whose result or key is missing from the
run fails (a renamed metric must be renamed in the baseline too), and a
compare run that ends up checking nothing at all fails (catches a dead
baseline). Underscore keys in a baseline entry must come from the known
set (_observed, _requires_backend, _requires_cpu, _requires_cores) — a
typo'd condition
key silently changing what an entry gates is a hard error — and every
entry must curate at least one numeric ratio key, so an entry cannot
decay into a comment that always passes.

--self-test runs the embedded scenario suite (valid output passes, each
contract violation and gating failure mode is rejected) and exits.
"""
import json
import sys

KNOWN_UNDERSCORE_KEYS = {"_observed", "_requires_backend", "_requires_cpu",
                         "_requires_cores"}

# Baseline keys gated as hard ceilings (run value <= baseline value, no
# --max-regress slack) instead of regression floors. These count events
# that must not happen at all in steady state, so "within 85% of zero"
# is meaningless — zero is the contract.
CEILING_KEYS = {"allocs_per_packet"}


def fail(name, msg, problems):
    problems.append(f"{name}: {msg}")


def check_result(name, i, result, problems):
    where = f"{name}: results[{i}]"
    if not isinstance(result, dict):
        fail(name, f"results[{i}] is not an object", problems)
        return
    label = result.get("name")
    if not isinstance(label, str) or not label:
        fail(name, f"results[{i}] has no string 'name'", problems)
    for key, kinds in (("iterations", (int,)),
                      ("ns_per_op", (int, float)),
                      ("ops_per_sec", (int, float))):
        value = result.get(key)
        if not isinstance(value, kinds) or isinstance(value, bool):
            fail(name, f"{where} '{key}' missing or non-numeric", problems)
    extra = result.get("extra")
    if extra is not None:
        if not isinstance(extra, dict):
            fail(name, f"{where} 'extra' is not an object", problems)
        else:
            for key, value in extra.items():
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    fail(name, f"{where} extra['{key}'] is non-numeric", problems)


def check_stream(name, text, problems):
    """Contract check; returns the parsed JSON object (or None)."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        fail(name, "no output at all", problems)
        return None
    try:
        obj = json.loads(lines[-1])
    except json.JSONDecodeError as err:
        fail(name, f"last line is not valid JSON ({err})", problems)
        return None
    if not isinstance(obj, dict):
        fail(name, "last line is not a JSON object", problems)
        return None
    bench = obj.get("bench")
    if not isinstance(bench, str) or not bench:
        fail(name, "missing string field 'bench'", problems)
    if obj.get("unoptimized") is True:
        fail(name, "flagged \"unoptimized\":true — bench was built against "
                   "an unoptimised nnfv library; numbers are meaningless "
                   "(rebuild with -DCMAKE_BUILD_TYPE=Release)", problems)
    results = obj.get("results")
    if not isinstance(results, list) or not results:
        fail(name, "'results' missing, not a list, or empty", problems)
        return obj
    for i, result in enumerate(results):
        check_result(name, i, result, problems)
    return obj


def conditions_met(spec, obj):
    """_requires_backend / _requires_cpu / _requires_cores guard
    hardware-specific baselines so a run on weaker hardware skips them
    instead of failing."""
    backend = spec.get("_requires_backend")
    if backend is not None:
        # A string names one backend; a list names the acceptable set
        # (e.g. ["aesni", "vaes"] for a floor that holds on any
        # PCLMUL-class backend — the auto-selected backend differs by
        # CPU generation, and the floor is the same on both).
        allowed = backend if isinstance(backend, list) else [backend]
        if obj.get("backend") not in allowed:
            return False
    cpu = spec.get("_requires_cpu")
    if cpu is not None and cpu not in obj.get("cpu_features", ""):
        return False
    cores = spec.get("_requires_cores")
    if cores is not None:
        cpus = obj.get("cpus")
        if not isinstance(cpus, (int, float)) or isinstance(cpus, bool) \
                or cpus < cores:
            return False
    return True


def compare_one(name, obj, baseline_benches, max_regress, problems):
    """Gates one run against the baseline; returns comparisons performed."""
    specs = baseline_benches.get(obj.get("bench"))
    if not isinstance(specs, dict):
        return 0
    by_name = {r.get("name"): r for r in obj.get("results", [])
               if isinstance(r, dict)}
    compared = 0
    for result_name, spec in specs.items():
        if not isinstance(spec, dict):
            fail(name, f"baseline entry '{result_name}' is not an object",
                 problems)
            continue
        # A typo'd underscore key must not silently change what the entry
        # gates (e.g. _require_backend would make a hardware-only floor
        # apply everywhere), and an entry with only underscore keys would
        # always pass while looking curated.
        bad_key = False
        for key in spec:
            if key.startswith("_") and key not in KNOWN_UNDERSCORE_KEYS:
                fail(name, f"baseline '{result_name}' has unknown "
                           f"underscore key '{key}'", problems)
                bad_key = True
        if bad_key:
            continue
        if not any(not key.startswith("_") for key in spec):
            fail(name, f"baseline '{result_name}' curates no ratio key",
                 problems)
            continue
        if not conditions_met(spec, obj):
            continue
        result = by_name.get(result_name)
        for key, want in spec.items():
            if key.startswith("_"):
                continue
            if not isinstance(want, (int, float)) or isinstance(want, bool):
                fail(name, f"baseline '{result_name}.{key}' is non-numeric",
                     problems)
                continue
            if result is None:
                fail(name, f"baseline result '{result_name}' missing from "
                           "run (renamed metric? update the baseline)",
                     problems)
                break
            got = (result.get("extra") or {}).get(key)
            if not isinstance(got, (int, float)) or isinstance(got, bool):
                fail(name, f"'{result_name}' has no numeric extra['{key}'] "
                           "to compare", problems)
                continue
            compared += 1
            if key in CEILING_KEYS:
                # Hard ceiling: events that must not happen in steady
                # state. No max_regress slack — zero means zero.
                if got > want:
                    fail(name, f"REGRESSION '{result_name}.{key}': "
                               f"{got:.3g} > ceiling {want:.3g}", problems)
                continue
            floor = want * max_regress
            if got < floor:
                fail(name, f"REGRESSION '{result_name}.{key}': {got:.3g} < "
                           f"{floor:.3g} (baseline {want:.3g} x "
                           f"max-regress {max_regress})", problems)
    return compared


def self_test():
    """Embedded scenario suite: every contract and gating failure mode
    must be detected, and clean input must pass. Returns 0/1."""
    good_run = json.dumps({
        "bench": "bench_x", "backend": "aesni",
        "cpu_features": "aes pclmul sha", "cpus": 8,
        "results": [{"name": "kernel", "iterations": 10, "ns_per_op": 1.0,
                     "ops_per_sec": 1e9, "extra": {"speedup": 5.0}}]})
    allocs_run = json.dumps({
        "bench": "bench_x",
        "results": [{"name": "allocs_per_packet", "iterations": 1,
                     "ns_per_op": 1.0, "ops_per_sec": 1.0,
                     "extra": {"allocs_per_packet": 0.0}}]})
    leaky_run = json.dumps({
        "bench": "bench_x",
        "results": [{"name": "allocs_per_packet", "iterations": 1,
                     "ns_per_op": 1.0, "ops_per_sec": 1.0,
                     "extra": {"allocs_per_packet": 0.031}}]})
    zero_alloc_ceiling = {"bench_x": {"allocs_per_packet": {
        "allocs_per_packet": 0.0}}}

    def stream_problems(text):
        problems = []
        check_stream("t", text, problems)
        return problems

    def compare_problems(baseline, run_text=good_run):
        problems = []
        obj = check_stream("t", run_text, problems)
        compared = compare_one("t", obj, baseline, 0.85, problems)
        if compared == 0 and not problems:
            problems.append("dead baseline")
        return problems

    cases = [
        # (description, wants_failure, problems)
        ("valid output passes", False, stream_problems(good_run)),
        ("non-JSON last line", True, stream_problems("not json")),
        ("missing bench field", True,
         stream_problems(json.dumps({"results": [
             {"name": "k", "iterations": 1, "ns_per_op": 1.0,
              "ops_per_sec": 1.0}]}))),
        ("empty results", True,
         stream_problems(json.dumps({"bench": "x", "results": []}))),
        ("non-numeric ns_per_op", True,
         stream_problems(json.dumps({"bench": "x", "results": [
             {"name": "k", "iterations": 1, "ns_per_op": "fast",
              "ops_per_sec": 1.0}]}))),
        ("unoptimized flag rejected", True,
         stream_problems(json.dumps({"bench": "x", "unoptimized": True,
                                     "results": [
             {"name": "k", "iterations": 1, "ns_per_op": 1.0,
              "ops_per_sec": 1.0}]}))),
        ("met baseline passes", False,
         compare_problems({"bench_x": {"kernel": {"speedup": 4.0}}})),
        ("regression caught", True,
         compare_problems({"bench_x": {"kernel": {"speedup": 10.0}}})),
        ("missing result caught", True,
         compare_problems({"bench_x": {"renamed": {"speedup": 1.0}}})),
        ("unmet condition skips (dead baseline)", True,
         compare_problems({"bench_x": {"kernel": {
             "_requires_backend": "portable", "speedup": 50.0}}})),
        ("met condition still gates", True,
         compare_problems({"bench_x": {"kernel": {
             "_requires_backend": "aesni", "_requires_cpu": "pclmul",
             "speedup": 50.0}}})),
        ("backend list containing the run's backend still gates", True,
         compare_problems({"bench_x": {"kernel": {
             "_requires_backend": ["aesni", "vaes"], "speedup": 50.0}}})),
        ("backend list without the run's backend skips (dead baseline)",
         True,
         compare_problems({"bench_x": {"kernel": {
             "_requires_backend": ["vaes", "portable"],
             "speedup": 50.0}}})),
        ("unmet cores condition skips (dead baseline)", True,
         compare_problems({"bench_x": {"kernel": {
             "_requires_cores": 64, "speedup": 50.0}}})),
        ("met cores condition still gates", True,
         compare_problems({"bench_x": {"kernel": {
             "_requires_cores": 4, "speedup": 50.0}}})),
        ("cores condition on a run without cpus skips", True,
         compare_problems({"bench_x": {"kernel": {
             "_requires_cores": 4, "speedup": 1.0}}},
             json.dumps({"bench": "bench_x", "results": [
                 {"name": "kernel", "iterations": 1, "ns_per_op": 1.0,
                  "ops_per_sec": 1.0, "extra": {"speedup": 5.0}}]}))),
        ("unknown underscore key is a hard error", True,
         compare_problems({"bench_x": {"kernel": {
             "_require_backend": "portable", "speedup": 1.0}}})),
        ("entry with no ratio key is a hard error", True,
         compare_problems({"bench_x": {"kernel": {
             "_observed": "once upon a time"}}})),
        ("non-numeric baseline value caught", True,
         compare_problems({"bench_x": {"kernel": {"speedup": "big"}}})),
        ("zero-allocation ceiling met passes", False,
         compare_problems(zero_alloc_ceiling, allocs_run)),
        ("nonzero allocs_per_packet rejected by the ceiling", True,
         compare_problems(zero_alloc_ceiling, leaky_run)),
    ]
    failures = 0
    for description, wants_failure, problems in cases:
        ok = bool(problems) == wants_failure
        if not ok:
            failures += 1
            print(f"self-test FAIL: {description}: expected "
                  f"{'problems' if wants_failure else 'no problems'}, got "
                  f"{problems}", file=sys.stderr)
    if failures:
        print(f"check_bench_json: self-test FAILED ({failures}/{len(cases)})",
              file=sys.stderr)
        return 1
    print(f"check_bench_json: self-test OK ({len(cases)} scenarios)")
    return 0


def parse_args(argv):
    baseline_path = None
    max_regress = 0.85
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--compare":
            i += 1
            baseline_path = argv[i]
        elif arg == "--max-regress":
            i += 1
            max_regress = float(argv[i])
        else:
            paths.append(arg)
        i += 1
    return baseline_path, max_regress, paths


def main(argv):
    if "--self-test" in argv:
        return self_test()
    try:
        baseline_path, max_regress, paths = parse_args(argv)
    except (IndexError, ValueError):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline_benches = None
    problems = []
    if baseline_path is not None:
        try:
            with open(baseline_path, encoding="utf-8") as f:
                baseline = json.load(f)
            baseline_benches = baseline["benches"]
        except (OSError, ValueError, KeyError) as err:
            print(f"check_bench_json: FAIL cannot load baseline "
                  f"{baseline_path}: {err}", file=sys.stderr)
            return 1

    checked = 0
    compared = 0
    for path in paths:
        if path == "-":
            obj = check_stream("<stdin>", sys.stdin.read(), problems)
            name = "<stdin>"
        else:
            name = path
            try:
                with open(path, encoding="utf-8", errors="replace") as f:
                    obj = check_stream(path, f.read(), problems)
            except OSError as err:
                fail(path, f"cannot read ({err})", problems)
                obj = None
        if obj is not None and baseline_benches is not None:
            compared += compare_one(name, obj, baseline_benches, max_regress,
                                    problems)
        checked += 1

    if baseline_benches is not None and compared == 0 and not problems:
        problems.append(f"--compare {baseline_path}: no baseline metric "
                        "matched any input (dead baseline?)")
    for problem in problems:
        print(f"check_bench_json: FAIL {problem}", file=sys.stderr)
    if problems:
        return 1
    trend = (f", {compared} baseline metrics within "
             f"{max_regress} of baseline" if baseline_benches is not None
             else "")
    print(f"check_bench_json: OK ({checked} bench output"
          f"{'s' if checked != 1 else ''} valid{trend})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
