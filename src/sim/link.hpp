// Link and ServiceStation: the two queueing primitives of the datapath.
//
// Link models a serialising transmitter (rate + propagation delay) with a
// bounded FIFO. ServiceStation models a single-server queue whose service
// time is supplied per item — NF instances use it with the per-backend cost
// model, which is how the VM / Docker / native throughput differences arise.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/simulator.hpp"

namespace nnfv::sim {

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;   ///< tail drops on a full queue
  std::uint64_t completed = 0;
  SimTime busy_time = 0;       ///< total time the server spent serving
};

/// Point-to-point link: serialization at `bits_per_second`, then
/// `propagation_delay` before delivery. Back-to-back sends queue behind the
/// transmitter; beyond `queue_capacity` packets are tail-dropped.
class Link {
 public:
  using Deliver = std::function<void()>;

  Link(Simulator& simulator, double bits_per_second,
       SimTime propagation_delay, std::size_t queue_capacity = 1024);

  /// Offers a packet of `bytes` to the link. On delivery, `deliver` runs at
  /// the receiver. Returns false when the queue is full (packet dropped).
  bool transmit(std::uint64_t bytes, Deliver deliver);

  [[nodiscard]] const QueueStats& stats() const { return stats_; }
  [[nodiscard]] double rate_bps() const { return rate_bps_; }

 private:
  void start_next();

  struct Pending {
    std::uint64_t bytes;
    Deliver deliver;
  };

  Simulator& simulator_;
  double rate_bps_;
  SimTime propagation_delay_;
  std::size_t capacity_;
  std::deque<Pending> queue_;
  bool transmitting_ = false;
  QueueStats stats_;
};

/// Single-server FIFO with caller-supplied service time per item.
class ServiceStation {
 public:
  using Complete = std::function<void()>;

  ServiceStation(Simulator& simulator, std::size_t queue_capacity = 1024);

  /// Offers an item taking `service_time` ns of server time; `complete`
  /// runs when service finishes. Returns false on tail drop.
  bool submit(SimTime service_time, Complete complete);

  [[nodiscard]] const QueueStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] bool busy() const { return busy_; }

  /// Server utilisation over [0, now].
  [[nodiscard]] double utilization() const;

 private:
  void start_next();

  struct Pending {
    SimTime service_time;
    Complete complete;
  };

  Simulator& simulator_;
  std::size_t capacity_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  QueueStats stats_;
};

}  // namespace nnfv::sim
