#include "sim/link.hpp"

#include <utility>

namespace nnfv::sim {

Link::Link(Simulator& simulator, double bits_per_second,
           SimTime propagation_delay, std::size_t queue_capacity)
    : simulator_(simulator),
      rate_bps_(bits_per_second),
      propagation_delay_(propagation_delay),
      capacity_(queue_capacity) {}

bool Link::transmit(std::uint64_t bytes, Deliver deliver) {
  if (queue_.size() >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  ++stats_.enqueued;
  queue_.push_back(Pending{bytes, std::move(deliver)});
  if (!transmitting_) start_next();
  return true;
}

void Link::start_next() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  Pending item = std::move(queue_.front());
  queue_.pop_front();
  const SimTime tx = transmission_time(item.bytes, rate_bps_);
  stats_.busy_time += tx;
  // After serialization the transmitter is free; delivery happens one
  // propagation delay later.
  simulator_.schedule(tx, [this, deliver = std::move(item.deliver)]() mutable {
    ++stats_.completed;
    simulator_.schedule(propagation_delay_, std::move(deliver));
    start_next();
  });
}

ServiceStation::ServiceStation(Simulator& simulator,
                               std::size_t queue_capacity)
    : simulator_(simulator), capacity_(queue_capacity) {}

bool ServiceStation::submit(SimTime service_time, Complete complete) {
  if (!simulator_.on_sim_thread()) {
    // A datapath worker is handing work to a sim-bound component: bounce
    // the submit through the simulator's cross-thread mailbox. The item
    // is accepted optimistically — tail-drop accounting happens on the
    // sim thread when the post lands.
    simulator_.post(
        [this, service_time, complete = std::move(complete)]() mutable {
          submit(service_time, std::move(complete));
        });
    return true;
  }
  if (queue_.size() >= capacity_) {
    ++stats_.dropped;
    return false;
  }
  ++stats_.enqueued;
  queue_.push_back(Pending{service_time, std::move(complete)});
  if (!busy_) start_next();
  return true;
}

void ServiceStation::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending item = std::move(queue_.front());
  queue_.pop_front();
  stats_.busy_time += item.service_time;
  simulator_.schedule(item.service_time,
                      [this, complete = std::move(item.complete)]() mutable {
                        ++stats_.completed;
                        complete();
                        start_next();
                      });
}

double ServiceStation::utilization() const {
  const SimTime now = simulator_.now();
  if (now <= 0) return 0.0;
  return static_cast<double>(stats_.busy_time) / static_cast<double>(now);
}

}  // namespace nnfv::sim
