// Simulated time: signed 64-bit nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace nnfv::sim {

using SimTime = std::int64_t;  // nanoseconds

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Time to serialize `bytes` onto a link of `bits_per_second`, in ns.
constexpr SimTime transmission_time(std::uint64_t bytes,
                                    double bits_per_second) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 * 1e9 /
                              bits_per_second);
}

}  // namespace nnfv::sim
