#include "sim/event_queue.hpp"

#include <limits>
#include <utility>

namespace nnfv::sim {

void EventQueue::schedule_at(SimTime at, Handler handler) {
  events_.push(Event{at, next_seq_++, std::move(handler)});
}

SimTime EventQueue::next_time() const {
  if (events_.empty()) return std::numeric_limits<SimTime>::max();
  return events_.top().at;
}

SimTime EventQueue::run_next() {
  // priority_queue::top() is const; move is safe because we pop immediately.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  event.handler();
  return event.at;
}

void EventQueue::clear() {
  while (!events_.empty()) events_.pop();
  next_seq_ = 0;
}

}  // namespace nnfv::sim
