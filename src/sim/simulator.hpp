// Simulator: clock + event queue + run loops.
//
// All datapath components (links, NF service stations, traffic sources)
// hold a Simulator& and schedule their own continuations on it.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace nnfv::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `handler` `delay` ns from now (delay >= 0).
  void schedule(SimTime delay, EventQueue::Handler handler);

  /// Schedules at an absolute time (>= now()).
  void schedule_at(SimTime at, EventQueue::Handler handler);

  /// Runs until the queue drains. Returns the number of events processed.
  std::uint64_t run();

  /// Runs events with timestamp <= `until`; the clock ends at `until` even
  /// if the queue drained earlier. Returns events processed.
  std::uint64_t run_until(SimTime until);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Drops all pending events and rewinds the clock to zero.
  void reset();

 private:
  EventQueue queue_;
  SimTime now_ = 0;
};

}  // namespace nnfv::sim
