// Simulator: clock + event queue + run loops.
//
// All datapath components (links, NF service stations, traffic sources)
// hold a Simulator& and schedule their own continuations on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace nnfv::sim {

class Simulator {
 public:
  Simulator() : home_thread_(std::this_thread::get_id()) {}

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `handler` `delay` ns from now (delay >= 0).
  void schedule(SimTime delay, EventQueue::Handler handler);

  /// Schedules at an absolute time (>= now()).
  void schedule_at(SimTime at, EventQueue::Handler handler);

  /// Thread-safe event injection: hands `handler` to the simulator from
  /// another thread (a datapath worker). The handler runs on the
  /// simulator thread at the clock's current value, picked up at the
  /// next run()/run_until() loop iteration. This is the only Simulator
  /// entry point that may be called off the simulator thread.
  void post(EventQueue::Handler handler);

  /// True when the calling thread is the one driving the event loop
  /// (the constructing thread until run()/run_until() is first called).
  [[nodiscard]] bool on_sim_thread() const {
    return std::this_thread::get_id() ==
           home_thread_.load(std::memory_order_relaxed);
  }

  /// Runs until the queue drains. Returns the number of events processed.
  std::uint64_t run();

  /// Runs events with timestamp <= `until`; the clock ends at `until` even
  /// if the queue drained earlier. Returns events processed.
  std::uint64_t run_until(SimTime until);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Drops all pending events and rewinds the clock to zero.
  void reset();

 private:
  /// Moves cross-thread posts into the event queue; sim thread only.
  void drain_posted();

  EventQueue queue_;
  SimTime now_ = 0;
  std::atomic<std::thread::id> home_thread_;
  std::atomic<bool> posted_pending_{false};
  std::mutex posted_mutex_;
  std::vector<EventQueue::Handler> posted_;
};

}  // namespace nnfv::sim
