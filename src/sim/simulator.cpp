#include "sim/simulator.hpp"

#include <cassert>

namespace nnfv::sim {

void Simulator::schedule(SimTime delay, EventQueue::Handler handler) {
  assert(delay >= 0);
  queue_.schedule_at(now_ + delay, std::move(handler));
}

void Simulator::schedule_at(SimTime at, EventQueue::Handler handler) {
  assert(at >= now_);
  queue_.schedule_at(at, std::move(handler));
}

std::uint64_t Simulator::run() {
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    // Advance the clock before dispatching so handlers see now() == their
    // own timestamp.
    now_ = queue_.next_time();
    queue_.run_next();
    ++processed;
  }
  return processed;
}

std::uint64_t Simulator::run_until(SimTime until) {
  std::uint64_t processed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    now_ = queue_.next_time();
    queue_.run_next();
    ++processed;
  }
  now_ = until;
  return processed;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0;
}

}  // namespace nnfv::sim
