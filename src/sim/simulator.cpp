#include "sim/simulator.hpp"

#include <cassert>

namespace nnfv::sim {

void Simulator::schedule(SimTime delay, EventQueue::Handler handler) {
  assert(delay >= 0);
  queue_.schedule_at(now_ + delay, std::move(handler));
}

void Simulator::schedule_at(SimTime at, EventQueue::Handler handler) {
  assert(at >= now_);
  queue_.schedule_at(at, std::move(handler));
}

void Simulator::post(EventQueue::Handler handler) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(handler));
  }
  posted_pending_.store(true, std::memory_order_release);
}

void Simulator::drain_posted() {
  // Fast exit without the lock: the flag is only set under the mutex.
  if (!posted_pending_.load(std::memory_order_acquire)) return;
  std::vector<EventQueue::Handler> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
    posted_pending_.store(false, std::memory_order_relaxed);
  }
  for (auto& handler : batch) queue_.schedule_at(now_, std::move(handler));
}

std::uint64_t Simulator::run() {
  // Whichever thread drives the loop is the sim thread from here on.
  home_thread_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  std::uint64_t processed = 0;
  drain_posted();
  while (!queue_.empty()) {
    // Advance the clock before dispatching so handlers see now() == their
    // own timestamp.
    now_ = queue_.next_time();
    queue_.run_next();
    ++processed;
    drain_posted();
  }
  return processed;
}

std::uint64_t Simulator::run_until(SimTime until) {
  home_thread_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  std::uint64_t processed = 0;
  while (true) {
    drain_posted();
    if (queue_.empty() || queue_.next_time() > until) break;
    now_ = queue_.next_time();
    queue_.run_next();
    ++processed;
  }
  now_ = until;
  return processed;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0;
  std::lock_guard<std::mutex> lock(posted_mutex_);
  posted_.clear();
  posted_pending_.store(false, std::memory_order_relaxed);
}

}  // namespace nnfv::sim
