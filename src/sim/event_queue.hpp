// The discrete-event core: a time-ordered queue of closures.
//
// Ties are broken by insertion order so simulations are deterministic
// (required for reproducible Table-1 runs and property tests).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace nnfv::sim {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `at` (>= current pop frontier).
  void schedule_at(SimTime at, Handler handler);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Time of the earliest pending event; kSecond*INT64_MAX-ish when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pops and runs the earliest event; returns its timestamp.
  SimTime run_next();

  void clear();

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace nnfv::sim
