#include "util/status.hpp"

namespace nnfv::util {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kAlreadyExists:
      return "already_exists";
    case ErrorCode::kResourceExhausted:
      return "resource_exhausted";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kUnimplemented:
      return "unimplemented";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out{error_code_name(code_)};
  out += ": ";
  out += message_;
  return out;
}

}  // namespace nnfv::util
