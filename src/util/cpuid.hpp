// Runtime CPU-feature probe (CPUID on x86) backing the crypto backend
// dispatch: the accelerated AES-NI/SHA-NI backend is compiled
// unconditionally but only *selected* when the executing CPU advertises
// the instructions. Non-x86 builds report every feature as absent.
#pragma once

#include <string>

namespace nnfv::util {

struct CpuFeatures {
  bool ssse3 = false;    ///< PSHUFB et al. (leaf 1 ECX bit 9)
  bool sse41 = false;    ///< PBLENDW et al. (leaf 1 ECX bit 19)
  bool aesni = false;    ///< AESENC/AESDEC (leaf 1 ECX bit 25)
  bool pclmul = false;   ///< PCLMULQDQ (leaf 1 ECX bit 1)
  bool avx2 = false;     ///< leaf 7 EBX bit 5
  bool sha_ni = false;   ///< SHA256RNDS2 et al. (leaf 7 EBX bit 29)
  bool vaes = false;     ///< vector AESENC on YMM/ZMM (leaf 7 ECX bit 9)
  bool vpclmul = false;  ///< vector PCLMULQDQ (leaf 7 ECX bit 10)
};

/// Probed once per process (thread-safe static init).
const CpuFeatures& cpu_features();

/// "ssse3 sse4.1 aes pclmul avx2 sha vaes vpclmulqdq" subset string, for
/// logs and bench JSON provenance (matched by substring in the bench
/// baseline's _requires_cpu conditions).
std::string cpu_feature_string();

}  // namespace nnfv::util
