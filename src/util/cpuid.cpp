#include "util/cpuid.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define NNFV_HAVE_CPUID 1
#endif

namespace nnfv::util {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#ifdef NNFV_HAVE_CPUID
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.pclmul = (ecx & (1u << 1)) != 0;
    f.ssse3 = (ecx & (1u << 9)) != 0;
    f.sse41 = (ecx & (1u << 19)) != 0;
    f.aesni = (ecx & (1u << 25)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.sha_ni = (ebx & (1u << 29)) != 0;
    f.vaes = (ecx & (1u << 9)) != 0;
    f.vpclmul = (ecx & (1u << 10)) != 0;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = probe();
  return features;
}

std::string cpu_feature_string() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  const auto append = [&out](bool have, const char* name) {
    if (!have) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  append(f.ssse3, "ssse3");
  append(f.sse41, "sse4.1");
  append(f.aesni, "aes");
  append(f.pclmul, "pclmul");
  append(f.avx2, "avx2");
  append(f.sha_ni, "sha");
  append(f.vaes, "vaes");
  append(f.vpclmul, "vpclmulqdq");
  return out;
}

}  // namespace nnfv::util
