// String helpers shared by the JSON parser, REST layer and NF-FG codecs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace nnfv::util {

/// Splits `text` on `sep`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Case-insensitive ASCII comparison (HTTP header names).
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

std::string to_lower(std::string_view text);

/// Hex encoding of arbitrary bytes, lowercase, no separators.
std::string hex_encode(std::span<const std::uint8_t> data);

/// Inverse of hex_encode; returns false on odd length or non-hex characters.
bool hex_decode(std::string_view hex, std::vector<std::uint8_t>& out);

/// Parses a non-negative decimal integer; returns false on any non-digit or
/// overflow of uint64_t.
bool parse_u64(std::string_view text, std::uint64_t& out);

/// Formats bytes as a human-readable quantity ("390.6 MB", "5 MB", "1.2 GB").
std::string format_bytes(std::uint64_t bytes);

/// Formats bits/second as Mbps with one decimal ("796.0 Mbps").
std::string format_mbps(double bits_per_second);

}  // namespace nnfv::util
