// Relaxed atomic wrappers for hot-path statistics and sequence state.
//
// The sharded datapath mutates counters from several worker threads at
// once. These wrappers make that race-free without changing the call
// sites: RelaxedCounter behaves like a plain uint64_t (assignment,
// comparison, +=, ++) but every access is a relaxed atomic op, and —
// unlike std::atomic — it is copyable, so structs holding one (SAs,
// flow-entry stats) keep their value semantics. Relaxed ordering is the
// contract: counters are statistics, not synchronization; anything that
// needs ordering takes a lock or uses acquire/release explicitly.
#pragma once

#include <atomic>
#include <cstdint>

namespace nnfv::util {

/// A copyable uint64 whose every access is a relaxed atomic operation.
class RelaxedCounter {
 public:
  constexpr RelaxedCounter() noexcept = default;
  constexpr RelaxedCounter(std::uint64_t v) noexcept : value_(v) {}
  RelaxedCounter(const RelaxedCounter& other) noexcept
      : value_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    store(other.load());
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) noexcept {
    store(v);
    return *this;
  }

  std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void store(std::uint64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  /// Atomic post-increment; returns the previous value.
  std::uint64_t fetch_add(std::uint64_t v) noexcept {
    return value_.fetch_add(v, std::memory_order_relaxed);
  }

  operator std::uint64_t() const noexcept { return load(); }
  RelaxedCounter& operator+=(std::uint64_t v) noexcept {
    fetch_add(v);
    return *this;
  }
  RelaxedCounter& operator-=(std::uint64_t v) noexcept {
    value_.fetch_sub(v, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator|=(std::uint64_t v) noexcept {
    value_.fetch_or(v, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t operator++() noexcept { return fetch_add(1) + 1; }
  std::uint64_t operator++(int) noexcept { return fetch_add(1); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A copyable trivially-copyable value (enum, bool, small int) with
/// relaxed atomic load/store. Used for state flags read on the hot path
/// but only mutated under the owner's exclusive lock.
template <typename T>
class Relaxed {
 public:
  constexpr Relaxed() noexcept = default;
  constexpr Relaxed(T v) noexcept : value_(v) {}
  Relaxed(const Relaxed& other) noexcept : value_(other.load()) {}
  Relaxed& operator=(const Relaxed& other) noexcept {
    store(other.load());
    return *this;
  }
  Relaxed& operator=(T v) noexcept {
    store(v);
    return *this;
  }

  T load() const noexcept { return value_.load(std::memory_order_relaxed); }
  void store(T v) noexcept { value_.store(v, std::memory_order_relaxed); }
  operator T() const noexcept { return load(); }

 private:
  std::atomic<T> value_{};
};

}  // namespace nnfv::util
