#include "util/rng.hpp"

#include <cmath>

namespace nnfv::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed-expand with splitmix64 as recommended by the xoshiro authors.
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return lo + value % span;
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double rate) {
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t word = next_u64();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  if (i < n) {
    std::uint64_t word = next_u64();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(word);
      word >>= 8;
    }
  }
  return out;
}

bool Rng::chance(double probability) { return uniform01() < probability; }

}  // namespace nnfv::util
