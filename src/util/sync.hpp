// Synchronization helpers for the sharded datapath.
//
// Classes that grow a lock for worker-thread safety (IpsecEndpoint, Nat,
// FlowTable) were value types before: tests and factories construct them
// by value and move them around. std::shared_mutex / std::mutex would
// delete those moves, so these wrappers make the lock itself "movable"
// with no-op move semantics — the destination keeps its own freshly
// constructed lock. Moving an object whose lock is currently held is
// undefined, exactly as it always was; moves only happen at setup time,
// before any worker thread exists.
#pragma once

#include <mutex>
#include <shared_mutex>

namespace nnfv::util {

/// std::shared_mutex with no-op move construction/assignment.
class SharedMutex : public std::shared_mutex {
 public:
  SharedMutex() = default;
  SharedMutex(SharedMutex&&) noexcept : std::shared_mutex() {}
  SharedMutex& operator=(SharedMutex&&) noexcept { return *this; }
};

/// std::mutex with no-op move construction/assignment.
class Mutex : public std::mutex {
 public:
  Mutex() = default;
  Mutex(Mutex&&) noexcept : std::mutex() {}
  Mutex& operator=(Mutex&&) noexcept { return *this; }
};

}  // namespace nnfv::util
