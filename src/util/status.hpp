// Status / Result: lightweight error propagation used across the library.
//
// The orchestrator and its drivers report recoverable failures (bad NF-FG,
// missing image, exhausted resources) as values, not exceptions, so callers
// such as the REST layer can map them onto protocol errors.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace nnfv::util {

/// Machine-inspectable error category. Kept deliberately small; the message
/// carries the specifics.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad NF-FG, bad JSON, bad config)
  kNotFound,          ///< unknown id (graph, NF, image, port, namespace)
  kAlreadyExists,     ///< duplicate id where uniqueness is required
  kResourceExhausted, ///< resource manager refused the reservation
  kUnavailable,       ///< capability or driver not present on this node
  kFailedPrecondition,///< valid request in the wrong state
  kUnimplemented,     ///< feature hook not provided by a plugin
  kInternal,          ///< invariant violation inside the library
};

/// Human-readable name of an ErrorCode ("invalid_argument", ...).
std::string_view error_code_name(ErrorCode code);

/// A success-or-error value. `ok()` is true iff code()==kOk.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// Result<T>: either a value or an error Status. Minimal expected<> stand-in.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(Status status) : status_(std::move(status)) {
    if (status_.is_ok()) {
      status_ = internal_error("Result constructed from OK status");
    }
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const& {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate errors early:  NNFV_RETURN_IF_ERROR(do_thing());
#define NNFV_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::nnfv::util::Status nnfv_status_ = (expr);     \
    if (!nnfv_status_.is_ok()) return nnfv_status_; \
  } while (false)

}  // namespace nnfv::util
