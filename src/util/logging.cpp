#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace nnfv::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
std::string* g_capture = nullptr;

std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_capture(std::string* sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_capture = sink;
}

namespace detail {

void log_line(LogLevel level, std::string_view component, std::string_view msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::string line;
  line.reserve(component.size() + msg.size() + 16);
  line += '[';
  line += level_tag(level);
  line += "] ";
  line += component;
  line += ": ";
  line += msg;
  line += '\n';
  if (g_capture != nullptr) {
    *g_capture += line;
  } else {
    std::cerr << line;
  }
}

}  // namespace detail

}  // namespace nnfv::util
