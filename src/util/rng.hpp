// Deterministic RNG used by workload generators and property tests.
//
// Simulations must be reproducible run-to-run, so all randomness flows
// through an explicitly seeded engine (never std::random_device at use
// sites).
#pragma once

#include <cstdint>
#include <vector>

namespace nnfv::util {

/// xoshiro256** — small, fast, and good enough for workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponential with the given rate (for Poisson arrivals).
  double exponential(double rate);

  /// `n` random bytes (keys, payloads).
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Bernoulli trial.
  bool chance(double probability);

 private:
  std::uint64_t state_[4];
};

}  // namespace nnfv::util
