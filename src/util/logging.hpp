// Minimal leveled logger.
//
// The orchestrator narrates deployment decisions (driver selection, LSI
// creation, flow-rule installation) at kInfo; datapath components log at
// kDebug so simulations stay quiet by default.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace nnfv::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Default kWarn so
/// tests and benches are quiet unless they opt in.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect log output into a string buffer (for tests); pass nullptr to
/// restore stderr.
void set_log_capture(std::string* sink);

namespace detail {
void log_line(LogLevel level, std::string_view component, std::string_view msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace nnfv::util

// Usage: NNFV_LOG(kInfo, "orchestrator") << "deployed graph " << id;
#define NNFV_LOG(level, component)                                      \
  if (::nnfv::util::LogLevel::level < ::nnfv::util::log_level()) {     \
  } else                                                                \
    ::nnfv::util::detail::LogMessage(::nnfv::util::LogLevel::level, component)
