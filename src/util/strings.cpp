#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace nnfv::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string hex_encode(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t byte : data) {
    out += kDigits[byte >> 4];
    out += kDigits[byte & 0x0F];
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

bool hex_decode(std::string_view hex, std::vector<std::uint8_t>& out) {
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_nibble(hex[i]);
    int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= 1024ULL * 1024ULL * 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", b / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ULL * 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024.0));
  } else if (bytes >= 1024ULL) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_mbps(double bits_per_second) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f Mbps", bits_per_second / 1e6);
  return buf;
}

}  // namespace nnfv::util
