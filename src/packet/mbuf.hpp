// Pooled packet-buffer memory, modelled on DPDK's rte_mbuf: fixed-size
// cache-aligned segments recycled through per-worker-slot pools, so the
// steady-state datapath allocates zero heap memory per packet.
//
// Layout of one segment (stride kSegmentStride, 64-byte aligned):
//
//   [ MbufSegment header | ..... data region (kDataCapacity bytes) ..... ]
//
// PacketBuffer carves the data region into headroom | packet | tailroom
// and adjusts offsets in place for encap/decap (see buffer.hpp).
//
// Ownership and threading:
//  * Each worker slot (exec::current_worker_slot(), 0 = control/inline)
//    owns one pool. A pool's local free list is only touched by its
//    owning slot's thread, so steady-state alloc/free is a pointer swap
//    with no atomics beyond the segment refcount.
//  * A buffer freed on a different slot than it was allocated on is
//    pushed onto the owning pool's MPSC free stack (Treiber push; the
//    owner drains it wholesale with exchange(nullptr), so there is no
//    ABA window). This is the "cross-worker return" path for frames that
//    cross SPSC handoff rings between shards.
//  * When a pool runs dry it first drains the foreign stack, then grows
//    by one slab (counted in stats.slab_allocs). Frames larger than
//    kDataCapacity get a dedicated heap segment (counted in
//    stats.heap_allocs, freed with operator delete). Allocation never
//    fails.
//
// The per-slot pool registry is a leaked singleton: segments handed to
// PacketBuffers must outlive every static destructor that might still
// hold a frame, so the pools (and their slabs) are intentionally never
// destroyed. Standalone pools can still be constructed for tests.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "exec/worker_slot.hpp"

namespace nnfv::packet {

class MbufPool;

/// Per-segment header, refcounted for PacketBuffer::clone(). Lives at
/// the front of the 64-byte-aligned segment; `data()` is the byte region
/// PacketBuffer slices into headroom | packet | tailroom.
struct alignas(64) MbufSegment {
  std::atomic<std::uint32_t> refcount{1};
  std::uint32_t capacity = 0;   ///< usable data bytes after this header
  MbufPool* owner = nullptr;    ///< pool to return to; null = plain heap
  MbufSegment* next = nullptr;  ///< free-list link (only while free)

  std::uint8_t* data() { return reinterpret_cast<std::uint8_t*>(this + 1); }
  [[nodiscard]] const std::uint8_t* data() const {
    return reinterpret_cast<const std::uint8_t*>(this + 1);
  }
};

static_assert(sizeof(MbufSegment) == 64, "segment header must fill one line");

/// Monotonic pool counters. `slab_allocs + heap_allocs` is the number of
/// times the pool touched the system allocator — the quantity the bench
/// gate `allocs_per_packet` requires to stay flat in steady state.
struct MbufPoolStats {
  std::uint64_t segment_allocs = 0;     ///< alloc() calls served
  std::uint64_t segment_frees = 0;      ///< segments returned (any path)
  std::uint64_t slab_allocs = 0;        ///< slab growths (heap events)
  std::uint64_t heap_allocs = 0;        ///< oversize one-off segments
  std::uint64_t cross_worker_frees = 0; ///< returns via the MPSC stack
};

class MbufPool {
 public:
  /// Segment stride: one header line + 2496 data bytes. Covers a
  /// 128-byte-headroom frame up to ~2.3 KB — every frame the simulated
  /// 1500-MTU datapath produces, plus ESP expansion — in one segment.
  static constexpr std::size_t kSegmentStride = 2560;
  static constexpr std::size_t kDataCapacity =
      kSegmentStride - sizeof(MbufSegment);
  /// Segments added per slab growth.
  static constexpr std::size_t kDefaultSlabSegments = 256;

  /// `slab_segments == 0` disables slab growth entirely: every alloc
  /// beyond the prealloc falls through to the heap path (tests use this
  /// to exercise overflow accounting deterministically).
  explicit MbufPool(std::size_t prealloc_segments = 0,
                    std::size_t slab_segments = kDefaultSlabSegments);
  ~MbufPool();
  MbufPool(const MbufPool&) = delete;
  MbufPool& operator=(const MbufPool&) = delete;

  /// Pops a segment sized for `capacity` data bytes; refcount == 1.
  /// Oversize requests (> kDataCapacity) or an exhausted non-growing
  /// pool get a dedicated heap segment. Never returns null.
  MbufSegment* alloc(std::size_t capacity);

  /// Burst alloc: fills `out[0..n)`, amortising the free-list lock to
  /// one acquisition. All segments have kDataCapacity capacity.
  void alloc_burst(MbufSegment** out, std::size_t n);

  /// Returns a segment whose refcount has reached zero. Routes to the
  /// local free list, the MPSC stack (caller on a foreign slot), or
  /// operator delete (heap-backed segment).
  static void free_segment(MbufSegment* seg);

  /// Burst free of same-pool segments (pool == owner of each).
  static void free_burst(MbufSegment** segs, std::size_t n);

  [[nodiscard]] MbufPoolStats stats() const;

  /// Pool owned by `slot`'s thread (leaked singleton registry).
  static MbufPool& for_slot(std::size_t slot);
  /// Pool of the calling thread's slot.
  static MbufPool& local() {
    return for_slot(exec::current_worker_slot());
  }
  /// Sum of stats() across all slot pools.
  static MbufPoolStats global_stats();

 private:
  std::size_t pop_local(std::size_t n, MbufSegment** out);
  void drain_foreign();
  void grow_slab();
  void return_local(MbufSegment* seg);
  void return_foreign(MbufSegment* seg);
  static MbufSegment* heap_segment(std::size_t capacity);

  // The owning slot's thread is the only free-list consumer, but slot 0
  // (control) may be entered from several non-worker threads, so the
  // local list stays under a mutex. It is uncontended in steady state.
  mutable std::mutex mutex_;
  MbufSegment* free_list_ = nullptr;  // guarded by mutex_
  std::size_t slab_segments_;
  MbufPoolStats stats_;  // guarded by mutex_
  std::vector<void*> slabs_;  // guarded by mutex_; freed in ~MbufPool

  /// Cross-worker returns: lock-free Treiber push by foreign threads,
  /// exchange(nullptr) drain by the owner.
  std::atomic<MbufSegment*> foreign_free_{nullptr};
  std::atomic<std::uint64_t> foreign_frees_{0};
};

}  // namespace nnfv::packet
