// Protocol header codecs: Ethernet (+802.1Q), IPv4, UDP, TCP, ICMP, ESP.
//
// Parsers take spans and validate length; serializers write network byte
// order. These are the wire formats the LSIs match on and the NFs rewrite.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/status.hpp"

namespace nnfv::packet {

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  bool operator==(const MacAddress&) const = default;
  auto operator<=>(const MacAddress&) const = default;

  [[nodiscard]] bool is_broadcast() const;
  [[nodiscard]] bool is_multicast() const;
  [[nodiscard]] std::string to_string() const;  // "aa:bb:cc:dd:ee:ff"

  static std::optional<MacAddress> parse(std::string_view text);
  /// Deterministic locally-administered unicast MAC from an integer id.
  static MacAddress from_id(std::uint32_t id);
  static MacAddress broadcast();
};

struct Ipv4Address {
  std::uint32_t value = 0;  // host byte order

  bool operator==(const Ipv4Address&) const = default;
  auto operator<=>(const Ipv4Address&) const = default;

  [[nodiscard]] std::string to_string() const;  // "10.0.0.1"
  static std::optional<Ipv4Address> parse(std::string_view text);
};

// ---------------------------------------------------------------------------
// Ethernet / 802.1Q
// ---------------------------------------------------------------------------

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;

inline constexpr std::size_t kEthernetHeaderSize = 14;
inline constexpr std::size_t kVlanTagSize = 4;

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;       ///< type after any VLAN tag
  std::optional<std::uint16_t> vlan;  ///< VID when 802.1Q-tagged (12 bits)
  std::uint8_t pcp = 0;               ///< VLAN priority bits

  /// Header length on the wire (14 or 18 bytes).
  [[nodiscard]] std::size_t wire_size() const {
    return kEthernetHeaderSize + (vlan.has_value() ? kVlanTagSize : 0);
  }
};

util::Result<EthernetHeader> parse_ethernet(std::span<const std::uint8_t> data);
/// Serializes into `out`, which must be at least hdr.wire_size() bytes.
void write_ethernet(const EthernetHeader& hdr, std::span<std::uint8_t> out);

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint8_t kIpProtoEsp = 50;

inline constexpr std::size_t kIpv4MinHeaderSize = 20;

struct Ipv4Header {
  std::uint8_t ihl = 5;  ///< header length in 32-bit words (options unused)
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  ///< header + payload, bytes
  std::uint16_t identification = 0;
  bool dont_fragment = true;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  ///< as parsed; recomputed on write
  Ipv4Address src;
  Ipv4Address dst;

  [[nodiscard]] std::size_t header_size() const {
    return static_cast<std::size_t>(ihl) * 4;
  }
};

util::Result<Ipv4Header> parse_ipv4(std::span<const std::uint8_t> data);
/// Serializes with a freshly computed header checksum. `out` must hold
/// hdr.header_size() bytes.
void write_ipv4(const Ipv4Header& hdr, std::span<std::uint8_t> out);

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload
  std::uint16_t checksum = 0;
};

util::Result<UdpHeader> parse_udp(std::span<const std::uint8_t> data);
void write_udp(const UdpHeader& hdr, std::span<std::uint8_t> out);

// ---------------------------------------------------------------------------
// TCP (header only; enough for NAT/firewall 5-tuple handling)
// ---------------------------------------------------------------------------

inline constexpr std::size_t kTcpMinHeaderSize = 20;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  ///< words
  std::uint8_t flags = 0;        ///< FIN=0x01 SYN=0x02 RST=0x04 ... as on wire
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kAck = 0x10;

  [[nodiscard]] std::size_t header_size() const {
    return static_cast<std::size_t>(data_offset) * 4;
  }
};

util::Result<TcpHeader> parse_tcp(std::span<const std::uint8_t> data);
void write_tcp(const TcpHeader& hdr, std::span<std::uint8_t> out);

// ---------------------------------------------------------------------------
// ICMP (echo only)
// ---------------------------------------------------------------------------

inline constexpr std::size_t kIcmpHeaderSize = 8;

struct IcmpHeader {
  std::uint8_t type = 8;  ///< 8=echo request, 0=echo reply
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
};

util::Result<IcmpHeader> parse_icmp(std::span<const std::uint8_t> data);
void write_icmp(const IcmpHeader& hdr, std::span<std::uint8_t> out);

// ---------------------------------------------------------------------------
// ESP (RFC 4303) — header + trailer layout used by the IPsec NF
// ---------------------------------------------------------------------------

inline constexpr std::size_t kEspHeaderSize = 8;  // SPI + sequence

struct EspHeader {
  std::uint32_t spi = 0;
  std::uint32_t sequence = 0;
};

util::Result<EspHeader> parse_esp(std::span<const std::uint8_t> data);
void write_esp(const EspHeader& hdr, std::span<std::uint8_t> out);

}  // namespace nnfv::packet
