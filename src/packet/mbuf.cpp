#include "packet/mbuf.hpp"

#include <cassert>
#include <cstdlib>
#include <new>

namespace nnfv::packet {

MbufPool::MbufPool(std::size_t prealloc_segments, std::size_t slab_segments)
    : slab_segments_(slab_segments) {
  if (prealloc_segments > 0) {
    const std::size_t saved = slab_segments_;
    slab_segments_ = prealloc_segments;
    std::lock_guard<std::mutex> lock(mutex_);
    grow_slab();
    slab_segments_ = saved;
    // The prealloc is pool capacity, not an overflow event.
    stats_.slab_allocs = 0;
  }
}

MbufPool::~MbufPool() {
  // Only standalone (test) pools are ever destroyed — the slot registry
  // leaks its pools on purpose. Any segment still in flight at this
  // point is a caller bug; freeing the slabs turns it into a visible
  // use-after-free under ASan instead of a silent leak.
  std::lock_guard<std::mutex> lock(mutex_);
  for (void* slab : slabs_) {
    ::operator delete[](slab, std::align_val_t{64});
  }
}

MbufSegment* MbufPool::heap_segment(std::size_t capacity) {
  void* raw = ::operator new(sizeof(MbufSegment) + capacity,
                             std::align_val_t{64});
  auto* seg = new (raw) MbufSegment{};
  seg->capacity = static_cast<std::uint32_t>(capacity);
  seg->owner = nullptr;
  return seg;
}

void MbufPool::grow_slab() {
  // Called with mutex_ held and slab growth enabled.
  void* raw = ::operator new[](kSegmentStride * slab_segments_,
                               std::align_val_t{64});
  slabs_.push_back(raw);
  auto* base = static_cast<std::uint8_t*>(raw);
  for (std::size_t i = 0; i < slab_segments_; ++i) {
    auto* seg = new (base + i * kSegmentStride) MbufSegment{};
    seg->capacity = kDataCapacity;
    seg->owner = this;
    seg->next = free_list_;
    free_list_ = seg;
  }
  ++stats_.slab_allocs;
}

void MbufPool::drain_foreign() {
  // Called with mutex_ held. Splice the whole foreign stack into the
  // local free list; push order vs pop order does not matter.
  MbufSegment* head = foreign_free_.exchange(nullptr, std::memory_order_acquire);
  while (head != nullptr) {
    MbufSegment* next = head->next;
    head->next = free_list_;
    free_list_ = head;
    head = next;
  }
}

std::size_t MbufPool::pop_local(std::size_t n, MbufSegment** out) {
  // Called with mutex_ held; pops up to n segments into out and returns
  // how many it could serve (short only when growth is disabled).
  std::size_t got = 0;
  while (got < n) {
    if (free_list_ == nullptr) {
      drain_foreign();
      if (free_list_ == nullptr) {
        if (slab_segments_ == 0) break;  // growth disabled → heap path
        grow_slab();
      }
    }
    MbufSegment* seg = free_list_;
    free_list_ = seg->next;
    seg->next = nullptr;
    seg->refcount.store(1, std::memory_order_relaxed);
    out[got++] = seg;
  }
  stats_.segment_allocs += got;
  return got;
}

MbufSegment* MbufPool::alloc(std::size_t capacity) {
  if (capacity > kDataCapacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.heap_allocs;
    ++stats_.segment_allocs;
    return heap_segment(capacity);
  }
  MbufSegment* seg = nullptr;
  std::size_t got;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    got = pop_local(1, &seg);
    if (got == 0) {
      ++stats_.heap_allocs;
      ++stats_.segment_allocs;
    }
  }
  if (got == 1) return seg;
  // Pool exhausted with growth disabled: heap overflow, never fails.
  return heap_segment(kDataCapacity);
}

void MbufPool::alloc_burst(MbufSegment** out, std::size_t n) {
  std::size_t got;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    got = pop_local(n, out);
    if (got < n) {
      stats_.heap_allocs += n - got;
      stats_.segment_allocs += n - got;
    }
  }
  for (std::size_t i = got; i < n; ++i) {
    out[i] = heap_segment(kDataCapacity);
  }
}

void MbufPool::return_local(MbufSegment* seg) {
  std::lock_guard<std::mutex> lock(mutex_);
  seg->next = free_list_;
  free_list_ = seg;
  ++stats_.segment_frees;
}

void MbufPool::return_foreign(MbufSegment* seg) {
  // Treiber push; the owner drains with exchange(nullptr), so a stale
  // head can only cause a benign CAS retry, never ABA corruption.
  MbufSegment* head = foreign_free_.load(std::memory_order_relaxed);
  do {
    seg->next = head;
  } while (!foreign_free_.compare_exchange_weak(
      head, seg, std::memory_order_release, std::memory_order_relaxed));
  foreign_frees_.fetch_add(1, std::memory_order_relaxed);
}

void MbufPool::free_segment(MbufSegment* seg) {
  assert(seg->refcount.load(std::memory_order_relaxed) == 0 &&
         "segment freed while still referenced");
  MbufPool* owner = seg->owner;
  if (owner == nullptr) {
    seg->~MbufSegment();
    ::operator delete(seg, std::align_val_t{64});
    return;
  }
  if (&MbufPool::local() == owner) {
    owner->return_local(seg);
  } else {
    owner->return_foreign(seg);
  }
}

void MbufPool::free_burst(MbufSegment** segs, std::size_t n) {
  if (n == 0) return;
  // Chain the caller-local segments first, then splice the whole chain
  // into the owner's free list under one lock acquisition. Heap and
  // cross-worker segments take their individual paths.
  MbufPool& here = MbufPool::local();
  MbufSegment* chain = nullptr;
  std::size_t chained = 0;
  for (std::size_t i = 0; i < n; ++i) {
    MbufSegment* seg = segs[i];
    assert(seg->refcount.load(std::memory_order_relaxed) == 0 &&
           "segment freed while still referenced");
    MbufPool* owner = seg->owner;
    if (owner == &here) {
      seg->next = chain;
      chain = seg;
      ++chained;
    } else if (owner != nullptr) {
      owner->return_foreign(seg);
    } else {
      seg->~MbufSegment();
      ::operator delete(seg, std::align_val_t{64});
    }
  }
  if (chain != nullptr) {
    std::lock_guard<std::mutex> lock(here.mutex_);
    MbufSegment* tail = chain;
    while (tail->next != nullptr) tail = tail->next;
    tail->next = here.free_list_;
    here.free_list_ = chain;
    here.stats_.segment_frees += chained;
  }
}

MbufPoolStats MbufPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MbufPoolStats out = stats_;
  out.cross_worker_frees = foreign_frees_.load(std::memory_order_relaxed);
  // Foreign returns bump the owner's free count here rather than under
  // the owner's mutex (the freeing thread must not take it).
  out.segment_frees += out.cross_worker_frees;
  return out;
}

MbufPool& MbufPool::for_slot(std::size_t slot) {
  assert(slot < exec::kMaxSlots);
  // Leaked on purpose: PacketBuffers held by static-lifetime objects may
  // release segments during static destruction, after any non-leaked
  // pool would already be gone.
  static MbufPool* const pools = [] {
    auto* p = new MbufPool[exec::kMaxSlots];
    return p;
  }();
  return pools[slot];
}

MbufPoolStats MbufPool::global_stats() {
  MbufPoolStats total;
  for (std::size_t slot = 0; slot < exec::kMaxSlots; ++slot) {
    const MbufPoolStats s = for_slot(slot).stats();
    total.segment_allocs += s.segment_allocs;
    total.segment_frees += s.segment_frees;
    total.slab_allocs += s.slab_allocs;
    total.heap_allocs += s.heap_allocs;
    total.cross_worker_frees += s.cross_worker_frees;
  }
  return total;
}

}  // namespace nnfv::packet
