#include "packet/headers.hpp"

#include <algorithm>
#include <cstdio>

#include "packet/checksum.hpp"
#include "util/byteorder.hpp"
#include "util/strings.hpp"

namespace nnfv::packet {

using util::invalid_argument;
using util::load_be16;
using util::load_be32;
using util::Result;
using util::store_be16;
using util::store_be32;

// ---------------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------------

bool MacAddress::is_broadcast() const {
  for (std::uint8_t b : bytes) {
    if (b != 0xFF) return false;
  }
  return true;
}

bool MacAddress::is_multicast() const { return (bytes[0] & 0x01) != 0; }

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  MacAddress mac;
  const auto parts = util::split(text, ':');
  if (parts.size() != 6) return std::nullopt;
  for (std::size_t i = 0; i < 6; ++i) {
    std::vector<std::uint8_t> byte;
    if (parts[i].size() != 2 || !util::hex_decode(parts[i], byte)) {
      return std::nullopt;
    }
    mac.bytes[i] = byte[0];
  }
  return mac;
}

MacAddress MacAddress::from_id(std::uint32_t id) {
  MacAddress mac;
  mac.bytes[0] = 0x02;  // locally administered, unicast
  mac.bytes[1] = 0x00;
  mac.bytes[2] = static_cast<std::uint8_t>(id >> 24);
  mac.bytes[3] = static_cast<std::uint8_t>(id >> 16);
  mac.bytes[4] = static_cast<std::uint8_t>(id >> 8);
  mac.bytes[5] = static_cast<std::uint8_t>(id);
  return mac;
}

MacAddress MacAddress::broadcast() {
  MacAddress mac;
  mac.bytes.fill(0xFF);
  return mac;
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    std::uint64_t octet = 0;
    if (part.empty() || part.size() > 3 || !util::parse_u64(part, octet) ||
        octet > 255) {
      return std::nullopt;
    }
    value = (value << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Address{value};
}

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

Result<EthernetHeader> parse_ethernet(std::span<const std::uint8_t> data) {
  if (data.size() < kEthernetHeaderSize) {
    return invalid_argument("ethernet frame too short");
  }
  EthernetHeader hdr;
  std::copy_n(data.data(), 6, hdr.dst.bytes.begin());
  std::copy_n(data.data() + 6, 6, hdr.src.bytes.begin());
  std::uint16_t type = load_be16(data.data() + 12);
  if (type == kEtherTypeVlan) {
    if (data.size() < kEthernetHeaderSize + kVlanTagSize) {
      return invalid_argument("truncated 802.1Q tag");
    }
    const std::uint16_t tci = load_be16(data.data() + 14);
    hdr.vlan = static_cast<std::uint16_t>(tci & 0x0FFF);
    hdr.pcp = static_cast<std::uint8_t>(tci >> 13);
    type = load_be16(data.data() + 16);
  }
  hdr.ether_type = type;
  return hdr;
}

void write_ethernet(const EthernetHeader& hdr, std::span<std::uint8_t> out) {
  std::copy(hdr.dst.bytes.begin(), hdr.dst.bytes.end(), out.begin());
  std::copy(hdr.src.bytes.begin(), hdr.src.bytes.end(), out.begin() + 6);
  if (hdr.vlan.has_value()) {
    store_be16(out.data() + 12, kEtherTypeVlan);
    const std::uint16_t tci = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(hdr.pcp) << 13) | (*hdr.vlan & 0x0FFF));
    store_be16(out.data() + 14, tci);
    store_be16(out.data() + 16, hdr.ether_type);
  } else {
    store_be16(out.data() + 12, hdr.ether_type);
  }
}

// ---------------------------------------------------------------------------
// IPv4
// ---------------------------------------------------------------------------

Result<Ipv4Header> parse_ipv4(std::span<const std::uint8_t> data) {
  if (data.size() < kIpv4MinHeaderSize) {
    return invalid_argument("IPv4 header too short");
  }
  const std::uint8_t version = data[0] >> 4;
  if (version != 4) return invalid_argument("not an IPv4 packet");
  Ipv4Header hdr;
  hdr.ihl = data[0] & 0x0F;
  if (hdr.ihl < 5 || hdr.header_size() > data.size()) {
    return invalid_argument("bad IPv4 IHL");
  }
  hdr.dscp = data[1] >> 2;
  hdr.total_length = load_be16(data.data() + 2);
  if (hdr.total_length < hdr.header_size()) {
    return invalid_argument("IPv4 total length smaller than header");
  }
  hdr.identification = load_be16(data.data() + 4);
  hdr.dont_fragment = (data[6] & 0x40) != 0;
  hdr.ttl = data[8];
  hdr.protocol = data[9];
  hdr.checksum = load_be16(data.data() + 10);
  hdr.src.value = load_be32(data.data() + 12);
  hdr.dst.value = load_be32(data.data() + 16);
  return hdr;
}

void write_ipv4(const Ipv4Header& hdr, std::span<std::uint8_t> out) {
  out[0] = static_cast<std::uint8_t>(0x40 | (hdr.ihl & 0x0F));
  out[1] = static_cast<std::uint8_t>(hdr.dscp << 2);
  store_be16(out.data() + 2, hdr.total_length);
  store_be16(out.data() + 4, hdr.identification);
  out[6] = hdr.dont_fragment ? 0x40 : 0x00;
  out[7] = 0;
  out[8] = hdr.ttl;
  out[9] = hdr.protocol;
  store_be16(out.data() + 10, 0);  // checksum placeholder
  store_be32(out.data() + 12, hdr.src.value);
  store_be32(out.data() + 16, hdr.dst.value);
  for (std::size_t i = kIpv4MinHeaderSize; i < hdr.header_size(); ++i) {
    out[i] = 0;  // options unused
  }
  const std::uint16_t sum =
      internet_checksum({out.data(), hdr.header_size()});
  store_be16(out.data() + 10, sum);
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

Result<UdpHeader> parse_udp(std::span<const std::uint8_t> data) {
  if (data.size() < kUdpHeaderSize) {
    return invalid_argument("UDP header too short");
  }
  UdpHeader hdr;
  hdr.src_port = load_be16(data.data());
  hdr.dst_port = load_be16(data.data() + 2);
  hdr.length = load_be16(data.data() + 4);
  hdr.checksum = load_be16(data.data() + 6);
  if (hdr.length < kUdpHeaderSize) {
    return invalid_argument("bad UDP length");
  }
  return hdr;
}

void write_udp(const UdpHeader& hdr, std::span<std::uint8_t> out) {
  store_be16(out.data(), hdr.src_port);
  store_be16(out.data() + 2, hdr.dst_port);
  store_be16(out.data() + 4, hdr.length);
  store_be16(out.data() + 6, hdr.checksum);
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

Result<TcpHeader> parse_tcp(std::span<const std::uint8_t> data) {
  if (data.size() < kTcpMinHeaderSize) {
    return invalid_argument("TCP header too short");
  }
  TcpHeader hdr;
  hdr.src_port = load_be16(data.data());
  hdr.dst_port = load_be16(data.data() + 2);
  hdr.seq = load_be32(data.data() + 4);
  hdr.ack = load_be32(data.data() + 8);
  hdr.data_offset = data[12] >> 4;
  if (hdr.data_offset < 5 || hdr.header_size() > data.size()) {
    return invalid_argument("bad TCP data offset");
  }
  hdr.flags = data[13];
  hdr.window = load_be16(data.data() + 14);
  hdr.checksum = load_be16(data.data() + 16);
  return hdr;
}

void write_tcp(const TcpHeader& hdr, std::span<std::uint8_t> out) {
  store_be16(out.data(), hdr.src_port);
  store_be16(out.data() + 2, hdr.dst_port);
  store_be32(out.data() + 4, hdr.seq);
  store_be32(out.data() + 8, hdr.ack);
  out[12] = static_cast<std::uint8_t>(hdr.data_offset << 4);
  out[13] = hdr.flags;
  store_be16(out.data() + 14, hdr.window);
  store_be16(out.data() + 16, hdr.checksum);
  store_be16(out.data() + 18, 0);  // urgent pointer unused
  for (std::size_t i = kTcpMinHeaderSize; i < hdr.header_size(); ++i) {
    out[i] = 0;  // options zeroed
  }
}

// ---------------------------------------------------------------------------
// ICMP
// ---------------------------------------------------------------------------

Result<IcmpHeader> parse_icmp(std::span<const std::uint8_t> data) {
  if (data.size() < kIcmpHeaderSize) {
    return invalid_argument("ICMP header too short");
  }
  IcmpHeader hdr;
  hdr.type = data[0];
  hdr.code = data[1];
  hdr.checksum = load_be16(data.data() + 2);
  hdr.identifier = load_be16(data.data() + 4);
  hdr.sequence = load_be16(data.data() + 6);
  return hdr;
}

void write_icmp(const IcmpHeader& hdr, std::span<std::uint8_t> out) {
  out[0] = hdr.type;
  out[1] = hdr.code;
  store_be16(out.data() + 2, hdr.checksum);
  store_be16(out.data() + 4, hdr.identifier);
  store_be16(out.data() + 6, hdr.sequence);
}

// ---------------------------------------------------------------------------
// ESP
// ---------------------------------------------------------------------------

Result<EspHeader> parse_esp(std::span<const std::uint8_t> data) {
  if (data.size() < kEspHeaderSize) {
    return invalid_argument("ESP header too short");
  }
  EspHeader hdr;
  hdr.spi = load_be32(data.data());
  hdr.sequence = load_be32(data.data() + 4);
  return hdr;
}

void write_esp(const EspHeader& hdr, std::span<std::uint8_t> out) {
  store_be32(out.data(), hdr.spi);
  store_be32(out.data() + 4, hdr.sequence);
}

}  // namespace nnfv::packet
