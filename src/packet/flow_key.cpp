#include "packet/flow_key.hpp"

#include "util/byteorder.hpp"

namespace nnfv::packet {

using util::Result;

std::string FiveTuple::to_string() const {
  std::string out = src_ip.to_string() + ":" + std::to_string(src_port) +
                    " -> " + dst_ip.to_string() + ":" +
                    std::to_string(dst_port) + " proto " +
                    std::to_string(protocol);
  return out;
}

std::size_t FiveTupleHash::operator()(const FiveTuple& t) const noexcept {
  // FNV-1a over the tuple fields.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  mix(t.src_ip.value);
  mix(t.dst_ip.value);
  mix((static_cast<std::uint64_t>(t.protocol) << 32) |
      (static_cast<std::uint64_t>(t.src_port) << 16) | t.dst_port);
  return static_cast<std::size_t>(h);
}

Result<FlowFields> extract_flow_fields(std::span<const std::uint8_t> frame) {
  FlowFields fields;
  auto eth = parse_ethernet(frame);
  if (!eth) return eth.status();
  fields.eth = eth.value();

  if (fields.eth.ether_type != kEtherTypeIpv4) return fields;
  auto l3 = frame.subspan(fields.eth.wire_size());
  auto ip = parse_ipv4(l3);
  if (!ip) return fields;  // tolerate short/garbled L3: match on L2 only
  fields.ipv4 = ip.value();

  auto l4 = l3.subspan(ip->header_size());
  if (ip->protocol == kIpProtoUdp) {
    if (auto udp = parse_udp(l4)) {
      fields.l4_src = udp->src_port;
      fields.l4_dst = udp->dst_port;
    }
  } else if (ip->protocol == kIpProtoTcp) {
    if (auto tcp = parse_tcp(l4)) {
      fields.l4_src = tcp->src_port;
      fields.l4_dst = tcp->dst_port;
    }
  }
  return fields;
}

Result<FiveTuple> extract_five_tuple(std::span<const std::uint8_t> ip_packet) {
  auto ip = parse_ipv4(ip_packet);
  if (!ip) return ip.status();
  FiveTuple tuple;
  tuple.src_ip = ip->src;
  tuple.dst_ip = ip->dst;
  tuple.protocol = ip->protocol;
  auto l4 = ip_packet.subspan(ip->header_size());
  switch (ip->protocol) {
    case kIpProtoUdp: {
      auto udp = parse_udp(l4);
      if (!udp) return udp.status();
      tuple.src_port = udp->src_port;
      tuple.dst_port = udp->dst_port;
      break;
    }
    case kIpProtoTcp: {
      auto tcp = parse_tcp(l4);
      if (!tcp) return tcp.status();
      tuple.src_port = tcp->src_port;
      tuple.dst_port = tcp->dst_port;
      break;
    }
    case kIpProtoIcmp: {
      auto icmp = parse_icmp(l4);
      if (!icmp) return icmp.status();
      tuple.src_port = icmp->identifier;
      tuple.dst_port = 0;
      break;
    }
    default:
      break;  // ports stay zero (e.g. ESP)
  }
  return tuple;
}

}  // namespace nnfv::packet
