#include "packet/buffer.hpp"

#include <cassert>
#include <cstring>

namespace nnfv::packet {

PacketBuffer::PacketBuffer(std::span<const std::uint8_t> data,
                           std::size_t headroom)
    : storage_(headroom + data.size()),
      offset_(headroom),
      length_(data.size()) {
  if (!data.empty()) {
    std::memcpy(storage_.data() + offset_, data.data(), data.size());
  }
}

std::span<std::uint8_t> PacketBuffer::push_front(std::size_t n) {
  if (n > offset_) {
    // Grow headroom; rare path.
    const std::size_t extra = n - offset_ + kDefaultHeadroom;
    std::vector<std::uint8_t> grown(storage_.size() + extra);
    std::memcpy(grown.data() + offset_ + extra, storage_.data() + offset_,
                length_);
    storage_ = std::move(grown);
    offset_ += extra;
  }
  offset_ -= n;
  length_ += n;
  return {storage_.data() + offset_, n};
}

void PacketBuffer::pull_front(std::size_t n) {
  assert(n <= length_);
  offset_ += n;
  length_ -= n;
}

std::span<std::uint8_t> PacketBuffer::push_back(std::size_t n) {
  if (offset_ + length_ + n > storage_.size()) {
    storage_.resize(offset_ + length_ + n);
  }
  std::span<std::uint8_t> out{storage_.data() + offset_ + length_, n};
  length_ += n;
  return out;
}

void PacketBuffer::trim(std::size_t n) {
  assert(n <= length_);
  length_ = n;
}

}  // namespace nnfv::packet
