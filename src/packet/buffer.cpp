#include "packet/buffer.hpp"

#include <cstring>

namespace nnfv::packet {

PacketBuffer PacketBuffer::alloc(std::size_t size, std::size_t headroom) {
  MbufSegment* seg =
      MbufPool::local().alloc(headroom + size + kDefaultTailroom);
  return PacketBuffer(seg, static_cast<std::uint32_t>(headroom),
                      static_cast<std::uint32_t>(size));
}

PacketBuffer PacketBuffer::copy_of(std::span<const std::uint8_t> data,
                                   std::size_t headroom) {
  PacketBuffer buf = alloc(data.size(), headroom);
  if (!data.empty()) {
    std::memcpy(buf.data().data(), data.data(), data.size());
  }
  return buf;
}

PacketBurst PacketBuffer::alloc_burst(std::size_t count) {
  PacketBurst out;
  out.reserve(count);
  if (count == 0) return out;
  MbufSegment* segs[64];
  while (count > 0) {
    const std::size_t n = std::min<std::size_t>(count, 64);
    MbufPool::local().alloc_burst(segs, n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(PacketBuffer(segs[i], kDefaultHeadroom, 0));
    }
    count -= n;
  }
  return out;
}

void PacketBuffer::free_burst(PacketBurst&& burst) {
  MbufSegment* segs[64];
  std::size_t n = 0;
  for (PacketBuffer& frame : burst) {
    MbufSegment* seg = frame.seg_;
    if (seg == nullptr) continue;
    frame.seg_ = nullptr;
    frame.offset_ = frame.length_ = 0;
    if (seg->refcount.fetch_sub(1, std::memory_order_acq_rel) != 1) {
      continue;  // a clone still holds it
    }
    segs[n++] = seg;
    if (n == 64) {
      MbufPool::free_burst(segs, n);
      n = 0;
    }
  }
  MbufPool::free_burst(segs, n);
  burst.clear();
}

PacketBuffer PacketBuffer::clone() const {
  if (seg_ != nullptr) {
    seg_->refcount.fetch_add(1, std::memory_order_relaxed);
  }
  return PacketBuffer(seg_, offset_, length_);
}

PacketBuffer PacketBuffer::copy() const {
  PacketBuffer out = alloc(length_, offset_);
  if (length_ > 0) {
    std::memcpy(out.data().data(), seg_->data() + offset_, length_);
  }
  return out;
}

void PacketBuffer::release() {
  if (seg_ == nullptr) return;
  if (seg_->refcount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MbufPool::free_segment(seg_);
  }
  seg_ = nullptr;
}

void PacketBuffer::reset(std::size_t headroom) {
  unshare();
  if (seg_ == nullptr) {
    offset_ = length_ = 0;
    return;
  }
  assert(headroom <= seg_->capacity);
  offset_ = static_cast<std::uint32_t>(headroom);
  length_ = 0;
}

void PacketBuffer::reseat(std::size_t headroom, std::size_t min_tailroom) {
  MbufSegment* seg =
      MbufPool::local().alloc(headroom + length_ + min_tailroom);
  if (length_ > 0) {
    std::memcpy(seg->data() + headroom, seg_->data() + offset_, length_);
  }
  release();
  seg_ = seg;
  offset_ = static_cast<std::uint32_t>(headroom);
}

std::span<std::uint8_t> PacketBuffer::push_front(std::size_t n) {
  unshare();
  if (seg_ == nullptr || offset_ < n) {
    // Headroom exhausted; rare (builders reserve kDefaultHeadroom).
    reseat(n + kDefaultHeadroom, seg_ == nullptr ? kDefaultTailroom
                                                 : tailroom());
  }
  offset_ -= static_cast<std::uint32_t>(n);
  length_ += static_cast<std::uint32_t>(n);
  return {seg_->data() + offset_, n};
}

std::span<std::uint8_t> PacketBuffer::push_back(std::size_t n) {
  unshare();
  if (seg_ == nullptr) {
    // Lazy pooled alloc: `PacketBuffer b; b.push_back(n)` builders.
    *this = alloc(n, kDefaultHeadroom);
    return {seg_->data() + offset_, n};
  }
  if (tailroom() < n) {
    reseat(offset_, n + kDefaultTailroom);
  }
  std::span<std::uint8_t> out{seg_->data() + offset_ + length_, n};
  length_ += static_cast<std::uint32_t>(n);
  return out;
}

}  // namespace nnfv::packet
