// Flow-key extraction: the decoded header fields an LSI matches on and a
// canonical 5-tuple used by NAT conntrack and firewall state.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "packet/headers.hpp"

namespace nnfv::packet {

/// Transport 5-tuple (host byte order). For ICMP the identifier is stored in
/// src_port and 0 in dst_port so echo sessions can be tracked uniformly.
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint8_t protocol = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  bool operator==(const FiveTuple&) const = default;
  auto operator<=>(const FiveTuple&) const = default;

  /// The same flow seen from the opposite direction.
  [[nodiscard]] FiveTuple reversed() const {
    return {dst_ip, src_ip, protocol, dst_port, src_port};
  }

  [[nodiscard]] std::string to_string() const;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept;
};

/// All fields an LSI flow table can match on, decoded once per packet.
struct FlowFields {
  EthernetHeader eth;
  std::optional<Ipv4Header> ipv4;
  std::optional<std::uint16_t> l4_src;
  std::optional<std::uint16_t> l4_dst;
};

/// Decodes Ethernet (+VLAN), IPv4 and L4 ports from a frame. Non-IP or
/// truncated L4 payloads simply leave the optional fields empty.
util::Result<FlowFields> extract_flow_fields(
    std::span<const std::uint8_t> frame);

/// Extracts the 5-tuple from an IPv4 packet (no Ethernet header).
util::Result<FiveTuple> extract_five_tuple(
    std::span<const std::uint8_t> ip_packet);

}  // namespace nnfv::packet
