// RFC 1071 internet checksum, plus the IPv4 pseudo-header sums used by
// UDP/TCP (which NAT must recompute after rewriting addresses/ports).
#pragma once

#include <cstdint>
#include <span>

#include "packet/headers.hpp"

namespace nnfv::packet {

/// One's-complement sum over `data`, folded to 16 bits and complemented.
/// Returned in host order; store with store_be16.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// UDP/TCP checksum including the IPv4 pseudo-header.
/// `l4_segment` covers the transport header (checksum field zeroed by the
/// caller or ignored via `checksum_offset`) and payload.
std::uint16_t l4_checksum(Ipv4Address src, Ipv4Address dst,
                          std::uint8_t protocol,
                          std::span<const std::uint8_t> l4_segment,
                          std::size_t checksum_offset);

}  // namespace nnfv::packet
