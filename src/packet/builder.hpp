// Convenience frame builders for tests, examples and traffic generators.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "packet/buffer.hpp"
#include "packet/headers.hpp"

namespace nnfv::packet {

struct UdpFrameSpec {
  MacAddress eth_src;
  MacAddress eth_dst;
  std::optional<std::uint16_t> vlan;
  Ipv4Address ip_src;
  Ipv4Address ip_dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = 64;
  std::span<const std::uint8_t> payload;
};

/// Builds a complete Ethernet/IPv4/UDP frame with correct lengths and
/// checksums, in place in a pooled buffer. Passing `reuse` (e.g. one
/// buffer of a PacketBuffer::alloc_burst) rebuilds into its segment
/// without touching the pool — the traffic sources' burst path.
PacketBuffer build_udp_frame(const UdpFrameSpec& spec,
                             PacketBuffer&& reuse = PacketBuffer());

struct TcpFrameSpec {
  MacAddress eth_src;
  MacAddress eth_dst;
  std::optional<std::uint16_t> vlan;
  Ipv4Address ip_src;
  Ipv4Address ip_dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = TcpHeader::kAck;
  std::span<const std::uint8_t> payload;
};

PacketBuffer build_tcp_frame(const TcpFrameSpec& spec);

struct IcmpEchoSpec {
  MacAddress eth_src;
  MacAddress eth_dst;
  Ipv4Address ip_src;
  Ipv4Address ip_dst;
  bool is_reply = false;
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::span<const std::uint8_t> payload;
};

PacketBuffer build_icmp_echo(const IcmpEchoSpec& spec);

/// Rewrites the VLAN tag of a frame in place (push, set or pop).
/// vlan == nullopt pops any existing tag.
void set_vlan(PacketBuffer& frame, std::optional<std::uint16_t> vlan);

/// Recomputes IPv4 header checksum and the UDP/TCP checksum of a frame after
/// header fields were rewritten (used by NAT). No-op for non-IP frames.
void fix_checksums(PacketBuffer& frame);

}  // namespace nnfv::packet
