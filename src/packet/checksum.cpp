#include "packet/checksum.hpp"

namespace nnfv::packet {

namespace {

std::uint32_t sum_bytes(std::span<const std::uint8_t> data,
                        std::size_t skip_offset, std::size_t skip_len) {
  std::uint32_t sum = 0;
  const std::size_t n = data.size();
  for (std::size_t i = 0; i + 1 < n + 1; i += 2) {
    std::uint16_t word;
    const bool skip_hi = i >= skip_offset && i < skip_offset + skip_len;
    const std::uint8_t hi = skip_hi ? 0 : data[i];
    if (i + 1 < n) {
      const bool skip_lo =
          (i + 1) >= skip_offset && (i + 1) < skip_offset + skip_len;
      const std::uint8_t lo = skip_lo ? 0 : data[i + 1];
      word = static_cast<std::uint16_t>((hi << 8) | lo);
    } else {
      word = static_cast<std::uint16_t>(hi << 8);  // odd length: pad zero
    }
    sum += word;
  }
  return sum;
}

std::uint16_t fold(std::uint32_t sum) {
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return fold(sum_bytes(data, data.size(), 0));
}

std::uint16_t l4_checksum(Ipv4Address src, Ipv4Address dst,
                          std::uint8_t protocol,
                          std::span<const std::uint8_t> l4_segment,
                          std::size_t checksum_offset) {
  std::uint32_t sum = 0;
  // Pseudo-header: src, dst, zero+proto, length.
  sum += (src.value >> 16) & 0xFFFF;
  sum += src.value & 0xFFFF;
  sum += (dst.value >> 16) & 0xFFFF;
  sum += dst.value & 0xFFFF;
  sum += protocol;
  sum += static_cast<std::uint32_t>(l4_segment.size());
  sum += sum_bytes(l4_segment, checksum_offset, 2);
  std::uint16_t result = fold(sum);
  // Per RFC 768, a computed UDP checksum of zero is transmitted as 0xFFFF.
  if (result == 0 && protocol == kIpProtoUdp) result = 0xFFFF;
  return result;
}

}  // namespace nnfv::packet
