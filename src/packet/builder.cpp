#include "packet/builder.hpp"

#include <cstring>
#include <utility>

#include "packet/checksum.hpp"
#include "util/byteorder.hpp"

namespace nnfv::packet {

namespace {

/// Lays out Ethernet + IPv4 and returns the offset of the L3 header.
/// `buf` may be empty (lazily pool-allocated) or a recycled buffer
/// whose segment is rebuilt in place.
std::size_t write_l2_l3(PacketBuffer& buf, const EthernetHeader& eth,
                        Ipv4Header& ip, std::size_t l4_size) {
  const std::size_t eth_size = eth.wire_size();
  const std::size_t total = eth_size + ip.header_size() + l4_size;
  buf.reset();
  buf.push_back(total);
  write_ethernet(eth, buf.data().subspan(0, eth_size));
  ip.total_length =
      static_cast<std::uint16_t>(ip.header_size() + l4_size);
  write_ipv4(ip, buf.data().subspan(eth_size, ip.header_size()));
  return eth_size;
}

}  // namespace

PacketBuffer build_udp_frame(const UdpFrameSpec& spec,
                             PacketBuffer&& reuse) {
  PacketBuffer buf = std::move(reuse);
  EthernetHeader eth{.dst = spec.eth_dst,
                     .src = spec.eth_src,
                     .ether_type = kEtherTypeIpv4,
                     .vlan = spec.vlan};
  Ipv4Header ip;
  ip.protocol = kIpProtoUdp;
  ip.ttl = spec.ttl;
  ip.src = spec.ip_src;
  ip.dst = spec.ip_dst;

  const std::size_t l4_size = kUdpHeaderSize + spec.payload.size();
  const std::size_t l3_off = write_l2_l3(buf, eth, ip, l4_size);
  const std::size_t l4_off = l3_off + ip.header_size();

  UdpHeader udp{.src_port = spec.src_port,
                .dst_port = spec.dst_port,
                .length = static_cast<std::uint16_t>(l4_size),
                .checksum = 0};
  write_udp(udp, buf.data().subspan(l4_off, kUdpHeaderSize));
  if (!spec.payload.empty()) {
    std::memcpy(buf.data().data() + l4_off + kUdpHeaderSize,
                spec.payload.data(), spec.payload.size());
  }
  const std::uint16_t sum =
      l4_checksum(spec.ip_src, spec.ip_dst, kIpProtoUdp,
                  buf.data().subspan(l4_off, l4_size), 6);
  util::store_be16(buf.data().data() + l4_off + 6, sum);
  return buf;
}

PacketBuffer build_tcp_frame(const TcpFrameSpec& spec) {
  PacketBuffer buf;
  EthernetHeader eth{.dst = spec.eth_dst,
                     .src = spec.eth_src,
                     .ether_type = kEtherTypeIpv4,
                     .vlan = spec.vlan};
  Ipv4Header ip;
  ip.protocol = kIpProtoTcp;
  ip.src = spec.ip_src;
  ip.dst = spec.ip_dst;

  const std::size_t l4_size = kTcpMinHeaderSize + spec.payload.size();
  const std::size_t l3_off = write_l2_l3(buf, eth, ip, l4_size);
  const std::size_t l4_off = l3_off + ip.header_size();

  TcpHeader tcp;
  tcp.src_port = spec.src_port;
  tcp.dst_port = spec.dst_port;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.flags = spec.flags;
  write_tcp(tcp, buf.data().subspan(l4_off, kTcpMinHeaderSize));
  if (!spec.payload.empty()) {
    std::memcpy(buf.data().data() + l4_off + kTcpMinHeaderSize,
                spec.payload.data(), spec.payload.size());
  }
  const std::uint16_t sum =
      l4_checksum(spec.ip_src, spec.ip_dst, kIpProtoTcp,
                  buf.data().subspan(l4_off, l4_size), 16);
  util::store_be16(buf.data().data() + l4_off + 16, sum);
  return buf;
}

PacketBuffer build_icmp_echo(const IcmpEchoSpec& spec) {
  PacketBuffer buf;
  EthernetHeader eth{.dst = spec.eth_dst,
                     .src = spec.eth_src,
                     .ether_type = kEtherTypeIpv4,
                     .vlan = std::nullopt};
  Ipv4Header ip;
  ip.protocol = kIpProtoIcmp;
  ip.src = spec.ip_src;
  ip.dst = spec.ip_dst;

  const std::size_t l4_size = kIcmpHeaderSize + spec.payload.size();
  const std::size_t l3_off = write_l2_l3(buf, eth, ip, l4_size);
  const std::size_t l4_off = l3_off + ip.header_size();

  IcmpHeader icmp;
  icmp.type = spec.is_reply ? 0 : 8;
  icmp.identifier = spec.identifier;
  icmp.sequence = spec.sequence;
  icmp.checksum = 0;
  write_icmp(icmp, buf.data().subspan(l4_off, kIcmpHeaderSize));
  if (!spec.payload.empty()) {
    std::memcpy(buf.data().data() + l4_off + kIcmpHeaderSize,
                spec.payload.data(), spec.payload.size());
  }
  const std::uint16_t sum =
      internet_checksum(buf.data().subspan(l4_off, l4_size));
  util::store_be16(buf.data().data() + l4_off + 2, sum);
  return buf;
}

void set_vlan(PacketBuffer& frame, std::optional<std::uint16_t> vlan) {
  frame.unshare();
  auto eth = parse_ethernet(frame.data());
  if (!eth) return;
  EthernetHeader hdr = eth.value();
  const std::size_t old_size = hdr.wire_size();
  hdr.vlan = vlan;
  const std::size_t new_size = hdr.wire_size();
  if (new_size > old_size) {
    frame.push_front(new_size - old_size);
  } else if (new_size < old_size) {
    frame.pull_front(old_size - new_size);
  }
  write_ethernet(hdr, frame.data().subspan(0, new_size));
}

void fix_checksums(PacketBuffer& frame) {
  frame.unshare();
  auto eth = parse_ethernet(frame.data());
  if (!eth || eth->ether_type != kEtherTypeIpv4) return;
  const std::size_t l3_off = eth->wire_size();
  auto ip = parse_ipv4(frame.data().subspan(l3_off));
  if (!ip) return;
  // Rewrite the IP header (write_ipv4 recomputes its checksum).
  write_ipv4(ip.value(),
             frame.data().subspan(l3_off, ip->header_size()));
  const std::size_t l4_off = l3_off + ip->header_size();
  const std::size_t l4_size = ip->total_length - ip->header_size();
  if (l4_off + l4_size > frame.size()) return;
  auto l4 = frame.data().subspan(l4_off, l4_size);
  if (ip->protocol == kIpProtoUdp && l4_size >= kUdpHeaderSize) {
    const std::uint16_t sum =
        l4_checksum(ip->src, ip->dst, kIpProtoUdp, l4, 6);
    util::store_be16(l4.data() + 6, sum);
  } else if (ip->protocol == kIpProtoTcp && l4_size >= kTcpMinHeaderSize) {
    const std::uint16_t sum =
        l4_checksum(ip->src, ip->dst, kIpProtoTcp, l4, 16);
    util::store_be16(l4.data() + 16, sum);
  } else if (ip->protocol == kIpProtoIcmp && l4_size >= kIcmpHeaderSize) {
    util::store_be16(l4.data() + 2, 0);
    const std::uint16_t sum = internet_checksum(l4);
    util::store_be16(l4.data() + 2, sum);
  }
}

}  // namespace nnfv::packet
