// PacketBuffer: a view over a pooled, refcounted mbuf segment (see
// mbuf.hpp) carved as headroom | packet | tailroom, so encapsulating NFs
// (IPsec tunnel mode, VLAN push) prepend and append headers in place and
// decapsulation is a pure offset adjustment — no per-packet heap
// allocation and no payload copy on the steady-state path.
//
// Ownership contract:
//  * PacketBuffer is move-only. The implicit copy-from-span constructor
//    is gone; construction is `alloc()` + in-place build, or an explicit
//    `copy_of(span)` for tests and control-plane code.
//  * `clone()` is a refcounted share of the same bytes — O(1), for
//    read-only fan-out (flooding, multi-output replication).
//  * `copy()` is an explicit deep copy into a fresh pooled segment.
//  * Geometry changes (push_front/push_back/reset) unshare first: a
//    cloned buffer silently becomes private before its layout diverges.
//    Writing through data() on a shared buffer is the caller's bug —
//    call unshare() first (the IPsec transforms do).
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "packet/mbuf.hpp"

namespace nnfv::packet {

class PacketBuffer;
using PacketBurst = std::vector<PacketBuffer>;

class PacketBuffer {
 public:
  /// Default headroom leaves room for outer Ethernet+IPv4+ESP+IV on encap.
  static constexpr std::size_t kDefaultHeadroom = 128;
  /// Tailroom slack requested for heap-backed (oversize) segments so ESP
  /// trailer+ICV append does not immediately re-seat the buffer. Pooled
  /// segments have whatever the fixed stride leaves, which is plenty.
  static constexpr std::size_t kDefaultTailroom = 64;

  /// Empty buffer with no segment. push_back() lazily allocates from the
  /// caller's slot pool, which keeps `PacketBuffer b; b.push_back(n)`
  /// builders on the pooled path.
  PacketBuffer() = default;

  /// `size` uninitialised packet bytes from the calling slot's pool.
  static PacketBuffer alloc(std::size_t size,
                            std::size_t headroom = kDefaultHeadroom);

  /// Explicit deep copy of `data` into a fresh pooled segment — the
  /// replacement for the old implicit PacketBuffer(span) constructor,
  /// kept for tests and control-plane code off the hot path.
  static PacketBuffer copy_of(std::span<const std::uint8_t> data,
                              std::size_t headroom = kDefaultHeadroom);

  /// `count` empty buffers (length 0, default headroom) popped from the
  /// pool under a single lock acquisition.
  static PacketBurst alloc_burst(std::size_t count);

  /// Releases every buffer of `burst`, batching same-pool returns under
  /// one lock acquisition.
  static void free_burst(PacketBurst&& burst);

  ~PacketBuffer() { release(); }

  PacketBuffer(PacketBuffer&& other) noexcept
      : seg_(other.seg_), offset_(other.offset_), length_(other.length_) {
    other.seg_ = nullptr;
    other.offset_ = other.length_ = 0;
  }
  PacketBuffer& operator=(PacketBuffer&& other) noexcept {
    if (this != &other) {
      release();
      seg_ = other.seg_;
      offset_ = other.offset_;
      length_ = other.length_;
      other.seg_ = nullptr;
      other.offset_ = other.length_ = 0;
    }
    return *this;
  }
  PacketBuffer(const PacketBuffer&) = delete;
  PacketBuffer& operator=(const PacketBuffer&) = delete;

  /// Refcounted share: same segment, same view. O(1).
  [[nodiscard]] PacketBuffer clone() const;

  /// Deep copy into a fresh segment, preserving headroom.
  [[nodiscard]] PacketBuffer copy() const;

  /// True when another clone still references the segment.
  [[nodiscard]] bool shared() const {
    return seg_ != nullptr &&
           seg_->refcount.load(std::memory_order_acquire) > 1;
  }

  /// Makes the view private (deep copy) when shared; no-op otherwise.
  /// Call before writing through data() into a possibly-cloned buffer.
  void unshare() {
    if (shared()) *this = copy();
  }

  /// Bytes of the current packet (mutable view).
  std::span<std::uint8_t> data() {
    return seg_ == nullptr
               ? std::span<std::uint8_t>{}
               : std::span<std::uint8_t>{seg_->data() + offset_, length_};
  }
  [[nodiscard]] std::span<const std::uint8_t> data() const {
    return seg_ == nullptr ? std::span<const std::uint8_t>{}
                           : std::span<const std::uint8_t>{
                                 seg_->data() + offset_, length_};
  }

  [[nodiscard]] std::size_t size() const { return length_; }
  [[nodiscard]] bool empty() const { return length_ == 0; }
  [[nodiscard]] std::size_t headroom() const { return offset_; }
  [[nodiscard]] std::size_t tailroom() const {
    return seg_ == nullptr ? 0 : seg_->capacity - offset_ - length_;
  }
  [[nodiscard]] std::size_t capacity() const {
    return seg_ == nullptr ? 0 : seg_->capacity;
  }

  /// Drops the contents (keeping the segment) and re-centres the view at
  /// `headroom` with zero length, ready for an in-place rebuild.
  void reset(std::size_t headroom = kDefaultHeadroom);

  /// Prepends `n` bytes (uninitialised) and returns a span over them.
  /// Unshares first; re-seats into a fresh segment only when headroom is
  /// exhausted (counted as a pool alloc — the bench gate keeps the hot
  /// path honest).
  std::span<std::uint8_t> push_front(std::size_t n);

  /// Removes `n` bytes from the front (decapsulation). Pure offset
  /// bump — safe even on a shared buffer. n must be <= size().
  void pull_front(std::size_t n) {
    assert(n <= length_);
    offset_ += static_cast<std::uint32_t>(n);
    length_ -= static_cast<std::uint32_t>(n);
  }

  /// Appends `n` bytes (uninitialised) and returns a span over them.
  /// Unshares first; lazily allocates on an empty buffer.
  std::span<std::uint8_t> push_back(std::size_t n);

  /// Truncates to `n` bytes. Pure length adjustment. n must be <= size().
  void trim(std::size_t n) {
    assert(n <= length_);
    length_ = static_cast<std::uint32_t>(n);
  }

  /// Bounds are checked in debug builds only; the hot path stays a bare
  /// add in release builds.
  std::uint8_t& operator[](std::size_t i) {
    assert(i < length_ && "PacketBuffer index out of range");
    return seg_->data()[offset_ + i];
  }
  const std::uint8_t& operator[](std::size_t i) const {
    assert(i < length_ && "PacketBuffer index out of range");
    return seg_->data()[offset_ + i];
  }

 private:
  PacketBuffer(MbufSegment* seg, std::uint32_t offset, std::uint32_t length)
      : seg_(seg), offset_(offset), length_(length) {}

  void release();

  /// Moves the view into a freshly allocated segment with `headroom`
  /// bytes in front and at least `min_tailroom` behind.
  void reseat(std::size_t headroom, std::size_t min_tailroom);

  MbufSegment* seg_ = nullptr;
  std::uint32_t offset_ = 0;  // start of live data within seg_->data()
  std::uint32_t length_ = 0;
};

/// Order-preserving per-port regrouping for the burst paths (LSI egress,
/// NF burst egress): frames bound for the same port stay in arrival
/// order; group discovery order is first-seen. Port counts per burst are
/// tiny, so group lookup is a linear scan.
template <typename Port>
class BurstGroups {
 public:
  void add(Port port, PacketBuffer&& frame) {
    for (auto& [p, group] : groups_) {
      if (p == port) {
        group.push_back(std::move(frame));
        return;
      }
    }
    groups_.emplace_back(port, PacketBurst{});
    groups_.back().second.push_back(std::move(frame));
  }

  auto begin() { return groups_.begin(); }
  auto end() { return groups_.end(); }

 private:
  std::vector<std::pair<Port, PacketBurst>> groups_;
};

}  // namespace nnfv::packet
