// PacketBuffer: a byte buffer with headroom, so encapsulating NFs (IPsec
// tunnel mode, VLAN push) can prepend headers without copying the payload.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace nnfv::packet {

class PacketBuffer {
 public:
  /// Default headroom leaves room for outer Ethernet+IPv4+ESP+IV on encap.
  static constexpr std::size_t kDefaultHeadroom = 128;

  PacketBuffer() : PacketBuffer(std::span<const std::uint8_t>{}) {}

  explicit PacketBuffer(std::span<const std::uint8_t> data,
                        std::size_t headroom = kDefaultHeadroom);

  /// Bytes of the current packet (mutable view).
  std::span<std::uint8_t> data() {
    return {storage_.data() + offset_, length_};
  }
  [[nodiscard]] std::span<const std::uint8_t> data() const {
    return {storage_.data() + offset_, length_};
  }

  [[nodiscard]] std::size_t size() const { return length_; }
  [[nodiscard]] bool empty() const { return length_ == 0; }
  [[nodiscard]] std::size_t headroom() const { return offset_; }

  /// Prepends `n` bytes (uninitialised) and returns a span over them.
  /// Reallocates when headroom is insufficient.
  std::span<std::uint8_t> push_front(std::size_t n);

  /// Removes `n` bytes from the front (decapsulation). n must be <= size().
  void pull_front(std::size_t n);

  /// Appends `n` bytes (uninitialised) and returns a span over them.
  std::span<std::uint8_t> push_back(std::size_t n);

  /// Truncates to `n` bytes. n must be <= size().
  void trim(std::size_t n);

  /// Bounds are checked in debug builds only; the hot path stays a bare
  /// add in release builds.
  std::uint8_t& operator[](std::size_t i) {
    assert(i < length_ && "PacketBuffer index out of range");
    return storage_[offset_ + i];
  }
  const std::uint8_t& operator[](std::size_t i) const {
    assert(i < length_ && "PacketBuffer index out of range");
    return storage_[offset_ + i];
  }

 private:
  std::vector<std::uint8_t> storage_;
  std::size_t offset_ = 0;  // start of live data within storage_
  std::size_t length_ = 0;
};

/// A batch of frames moving through the datapath as one unit — the burst
/// path amortises virtual dispatch and event-queue overhead per hop.
using PacketBurst = std::vector<PacketBuffer>;

/// Order-preserving per-port regrouping for the burst paths (LSI egress,
/// NF burst egress): frames bound for the same port stay in arrival
/// order; group discovery order is first-seen. Port counts per burst are
/// tiny, so group lookup is a linear scan.
template <typename Port>
class BurstGroups {
 public:
  void add(Port port, PacketBuffer&& frame) {
    for (auto& [p, group] : groups_) {
      if (p == port) {
        group.push_back(std::move(frame));
        return;
      }
    }
    groups_.emplace_back(port, PacketBurst{});
    groups_.back().second.push_back(std::move(frame));
  }

  auto begin() { return groups_.begin(); }
  auto end() { return groups_.end(); }

 private:
  std::vector<std::pair<Port, PacketBurst>> groups_;
};

}  // namespace nnfv::packet
