#include "rest/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hpp"

namespace nnfv::rest {

HttpServer::HttpServer(HandlerFn handler) : handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

util::Status HttpServer::start(std::uint16_t port) {
  if (running_.load()) return util::failed_precondition("server running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::internal_error(std::string("socket: ") +
                                std::strerror(errno));
  }
  int yes = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof(yes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::internal_error(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::internal_error(std::string("listen: ") +
                                std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  thread_ = std::thread([this]() { accept_loop(); });
  NNFV_LOG(kInfo, "rest") << "listening on 127.0.0.1:" << port_;
  return util::Status::ok();
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Shut the listener down to unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;
      continue;  // transient accept error
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  RequestParser parser;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // peer closed or error before a full request
    const RequestParser::State state = parser.feed({buf,
                                                    static_cast<std::size_t>(n)});
    if (state == RequestParser::State::kError) {
      const std::string reply =
          HttpResponse::error(400, parser.error_message()).serialize();
      (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      return;
    }
    if (state == RequestParser::State::kComplete) break;
  }
  // A throwing handler must cost the client a 500, never the accept
  // thread: this loop is the node's only management plane.
  HttpResponse response;
  try {
    response = handler_(parser.request());
  } catch (const std::exception& e) {
    response = HttpResponse::error(
        500, std::string("internal error: ") + e.what());
  } catch (...) {
    response = HttpResponse::error(500, "internal error");
  }
  requests_.fetch_add(1);
  const std::string reply = response.serialize();
  std::size_t off = 0;
  while (off < reply.size()) {
    const ssize_t n =
        ::send(fd, reply.data() + off, reply.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace nnfv::rest
