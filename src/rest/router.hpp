// Path router with "{param}" captures, e.g. "/NF-FG/{id}".
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "rest/http.hpp"

namespace nnfv::rest {

using PathParams = std::map<std::string, std::string>;
using Handler = std::function<HttpResponse(const HttpRequest&,
                                           const PathParams&)>;

class Router {
 public:
  /// Registers a handler for METHOD + pattern. Patterns are segment-wise;
  /// "{name}" captures one segment into PathParams.
  void add(const std::string& method, const std::string& pattern,
           Handler handler);

  /// Dispatches; 404 when no pattern matches, 405 when the path matches
  /// with a different method.
  [[nodiscard]] HttpResponse route(const HttpRequest& request) const;

  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;
    Handler handler;
  };

  static std::vector<std::string> split_path(const std::string& path);
  static bool match(const Route& route,
                    const std::vector<std::string>& segments,
                    PathParams& params);

  std::vector<Route> routes_;
};

}  // namespace nnfv::rest
