// Minimal HTTP/1.1 message codec for the orchestrator's REST server.
//
// Supports what the NF-FG API needs: request line + headers +
// Content-Length bodies (no chunked encoding, no pipelining).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace nnfv::rest {

/// Case-insensitive header map (HTTP header names are case-insensitive).
struct CiLess {
  bool operator()(const std::string& a, const std::string& b) const;
};
using HeaderMap = std::map<std::string, std::string, CiLess>;

struct HttpRequest {
  std::string method;   ///< "GET", "PUT", "DELETE", "POST"
  std::string target;   ///< path with optional query ("/NF-FG/g1")
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string path() const;   ///< target without query
  [[nodiscard]] std::string query() const;  ///< after '?', may be empty

  [[nodiscard]] std::string serialize() const;
};

struct HttpResponse {
  int status = 200;
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;

  static HttpResponse json_response(int status, std::string json_body);
  static HttpResponse error(int status, const std::string& message);
};

std::string_view status_reason(int status);

/// Incremental request parser: feed() bytes until a complete request is
/// available. Handles requests split across arbitrary read boundaries.
class RequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  State feed(std::string_view bytes);

  /// Valid when feed() returned kComplete.
  HttpRequest& request() { return request_; }
  [[nodiscard]] const std::string& error_message() const { return error_; }

  void reset();

 private:
  State parse_buffer();

  std::string buffer_;
  HttpRequest request_;
  std::string error_;
  bool headers_done_ = false;
  std::size_t body_needed_ = 0;
  State state_ = State::kNeedMore;
};

/// One-shot convenience for tests: parses a complete request string.
util::Result<HttpRequest> parse_request(std::string_view text);

}  // namespace nnfv::rest
