// RestApi: Figure 1's "REST server" — the NF-FG API over the local
// orchestrator.
//
//   PUT    /NF-FG/{id}                 deploy (body: NF-FG JSON)
//   GET    /NF-FG/{id}                 fetch the deployed graph
//   DELETE /NF-FG/{id}                 remove
//   GET    /NF-FG                      list deployed graph ids
//   PUT    /NF-FG/{id}/VNFs/{nf}/config   update one NF's configuration
//   GET    /node                       node description & resources
//   GET    /health                     datapath health & overload state
#pragma once

#include "core/node.hpp"
#include "rest/router.hpp"

namespace nnfv::rest {

class RestApi {
 public:
  explicit RestApi(core::UniversalNode* node);

  /// In-process dispatch (also what the TCP server calls).
  [[nodiscard]] HttpResponse handle(const HttpRequest& request) const;

  [[nodiscard]] const Router& router() const { return router_; }

 private:
  void install_routes();

  core::UniversalNode* node_;
  Router router_;
};

/// Maps library Status codes onto HTTP statuses.
int http_status_of(const util::Status& status);

}  // namespace nnfv::rest
