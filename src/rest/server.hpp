// Small blocking TCP server exposing a RestApi on localhost.
//
// One thread accepts connections; each request is parsed, dispatched and
// answered with Connection: close semantics — enough for the NF-FG API's
// low-rate control traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "rest/api.hpp"
#include "util/status.hpp"

namespace nnfv::rest {

class HttpServer {
 public:
  using HandlerFn = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HandlerFn handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  util::Status start(std::uint16_t port = 0);

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load();
  }

 private:
  void accept_loop();
  void serve_connection(int fd);

  HandlerFn handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace nnfv::rest
