#include "rest/http.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace nnfv::rest {

bool CiLess::operator()(const std::string& a, const std::string& b) const {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(), [](char x, char y) {
        return std::tolower(static_cast<unsigned char>(x)) <
               std::tolower(static_cast<unsigned char>(y));
      });
}

std::string HttpRequest::path() const {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::query() const {
  const auto q = target.find('?');
  return q == std::string::npos ? std::string() : target.substr(q + 1);
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  HeaderMap all = headers;
  if (!body.empty() && !all.contains("Content-Length")) {
    all["Content-Length"] = std::to_string(body.size());
  }
  for (const auto& [key, value] : all) {
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 409:
      return "Conflict";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string HttpResponse::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(status_reason(status)) + "\r\n";
  HeaderMap all = headers;
  all["Content-Length"] = std::to_string(body.size());
  if (!all.contains("Content-Type")) {
    all["Content-Type"] = "application/json";
  }
  all["Connection"] = "close";
  for (const auto& [key, value] : all) {
    out += key + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

HttpResponse HttpResponse::json_response(int status, std::string json_body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(json_body);
  return response;
}

HttpResponse HttpResponse::error(int status, const std::string& message) {
  return json_response(
      status, "{\"error\":\"" + std::string(status_reason(status)) +
                  "\",\"message\":\"" + message + "\"}");
}

void RequestParser::reset() {
  buffer_.clear();
  request_ = HttpRequest{};
  error_.clear();
  headers_done_ = false;
  body_needed_ = 0;
  state_ = State::kNeedMore;
}

RequestParser::State RequestParser::feed(std::string_view bytes) {
  if (state_ == State::kError || state_ == State::kComplete) return state_;
  buffer_.append(bytes);
  state_ = parse_buffer();
  return state_;
}

RequestParser::State RequestParser::parse_buffer() {
  if (!headers_done_) {
    const auto end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      if (buffer_.size() > 64 * 1024) {
        error_ = "headers too large";
        return State::kError;
      }
      return State::kNeedMore;
    }
    const std::string head = buffer_.substr(0, end);
    buffer_.erase(0, end + 4);

    const auto lines = util::split(head, '\n');
    if (lines.empty()) {
      error_ = "empty request";
      return State::kError;
    }
    // Request line: METHOD SP TARGET SP VERSION.
    std::string_view line = util::trim(lines[0]);
    const auto sp1 = line.find(' ');
    const auto sp2 = line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) {
      error_ = "malformed request line";
      return State::kError;
    }
    request_.method = std::string(line.substr(0, sp1));
    request_.target = std::string(
        util::trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
    request_.version = std::string(line.substr(sp2 + 1));
    if (request_.method.empty() || request_.target.empty() ||
        !util::starts_with(request_.version, "HTTP/")) {
      error_ = "malformed request line";
      return State::kError;
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      std::string_view header = util::trim(lines[i]);
      if (header.empty()) continue;
      const auto colon = header.find(':');
      if (colon == std::string_view::npos) {
        error_ = "malformed header: " + std::string(header);
        return State::kError;
      }
      request_.headers[std::string(util::trim(header.substr(0, colon)))] =
          std::string(util::trim(header.substr(colon + 1)));
    }
    headers_done_ = true;
    auto it = request_.headers.find("Content-Length");
    if (it != request_.headers.end()) {
      std::uint64_t length = 0;
      if (!util::parse_u64(it->second, length) || length > 16 * 1024 * 1024) {
        error_ = "bad Content-Length";
        return State::kError;
      }
      body_needed_ = static_cast<std::size_t>(length);
    }
  }
  if (buffer_.size() < body_needed_) return State::kNeedMore;
  request_.body = buffer_.substr(0, body_needed_);
  return State::kComplete;
}

util::Result<HttpRequest> parse_request(std::string_view text) {
  RequestParser parser;
  const RequestParser::State state = parser.feed(text);
  if (state == RequestParser::State::kComplete) {
    return parser.request();
  }
  if (state == RequestParser::State::kError) {
    return util::invalid_argument("HTTP parse error: " +
                                  parser.error_message());
  }
  return util::invalid_argument("incomplete HTTP request");
}

}  // namespace nnfv::rest
