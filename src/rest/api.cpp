#include "rest/api.hpp"

#include "nffg/nffg_json.hpp"

namespace nnfv::rest {

int http_status_of(const util::Status& status) {
  switch (status.code()) {
    case util::ErrorCode::kOk:
      return 200;
    case util::ErrorCode::kInvalidArgument:
      return 400;
    case util::ErrorCode::kNotFound:
      return 404;
    case util::ErrorCode::kAlreadyExists:
      return 409;
    case util::ErrorCode::kResourceExhausted:
    case util::ErrorCode::kUnavailable:
      return 503;
    case util::ErrorCode::kFailedPrecondition:
      return 409;
    case util::ErrorCode::kUnimplemented:
      return 405;
    case util::ErrorCode::kInternal:
      return 500;
  }
  return 500;
}

namespace {

json::Value report_to_json(const core::DeploymentReport& report) {
  json::Object doc;
  doc["graph_id"] = report.graph_id;
  doc["flow_rules_installed"] =
      static_cast<double>(report.flow_rules_installed);
  doc["ready_latency_ms"] =
      static_cast<double>(report.ready_latency) / 1e6;
  json::Array placements;
  for (const core::NfPlacement& placement : report.placements) {
    json::Object p;
    p["nf_id"] = placement.nf_id;
    p["functional_type"] = placement.functional_type;
    p["backend"] = std::string(virt::backend_name(placement.backend));
    p["shared"] = placement.reused_shared_instance;
    p["reason"] = placement.reason;
    p["ram_bytes"] = static_cast<double>(placement.ram_bytes);
    p["image_bytes"] = static_cast<double>(placement.image_bytes);
    p["boot_ms"] = static_cast<double>(placement.boot_time) / 1e6;
    placements.push_back(std::move(p));
  }
  doc["placements"] = std::move(placements);
  json::Array warnings;
  for (const std::string& warning : report.warnings) {
    warnings.push_back(warning);
  }
  doc["warnings"] = std::move(warnings);
  return doc;
}

}  // namespace

RestApi::RestApi(core::UniversalNode* node) : node_(node) {
  install_routes();
}

HttpResponse RestApi::handle(const HttpRequest& request) const {
  return router_.route(request);
}

void RestApi::install_routes() {
  core::UniversalNode* node = node_;

  router_.add("PUT", "/NF-FG/{id}",
              [node](const HttpRequest& request, const PathParams& params) {
                auto graph = nffg::from_json_text(request.body);
                if (!graph) {
                  return HttpResponse::error(400,
                                             graph.status().message());
                }
                if (graph->id != params.at("id")) {
                  return HttpResponse::error(
                      400, "graph id '" + graph->id +
                               "' does not match URL id '" +
                               params.at("id") + "'");
                }
                auto report = node->orchestrator().deploy(graph.value());
                if (!report) {
                  return HttpResponse::error(http_status_of(report.status()),
                                             report.status().message());
                }
                return HttpResponse::json_response(
                    201, report_to_json(report.value()).dump());
              });

  router_.add("GET", "/NF-FG/{id}",
              [node](const HttpRequest&, const PathParams& params) {
                auto record = node->orchestrator().graph(params.at("id"));
                if (!record) {
                  return HttpResponse::error(http_status_of(record.status()),
                                             record.status().message());
                }
                return HttpResponse::json_response(
                    200, nffg::to_json(record.value()->graph).dump());
              });

  router_.add("DELETE", "/NF-FG/{id}",
              [node](const HttpRequest&, const PathParams& params) {
                util::Status status =
                    node->orchestrator().remove(params.at("id"));
                if (!status.is_ok()) {
                  return HttpResponse::error(http_status_of(status),
                                             status.message());
                }
                return HttpResponse::json_response(204, "");
              });

  router_.add("GET", "/NF-FG",
              [node](const HttpRequest&, const PathParams&) {
                json::Array ids;
                for (const std::string& id :
                     node->orchestrator().graph_ids()) {
                  ids.push_back(id);
                }
                json::Object doc;
                doc["graphs"] = std::move(ids);
                return HttpResponse::json_response(200,
                                                   json::Value(doc).dump());
              });

  router_.add(
      "PUT", "/NF-FG/{id}/VNFs/{nf}/config",
      [node](const HttpRequest& request, const PathParams& params) {
        auto body = json::parse(request.body);
        if (!body || !body->is_object()) {
          return HttpResponse::error(400, "body must be a JSON object");
        }
        nnf::NfConfig config;
        for (const auto& [key, value] : body->as_object()) {
          if (!value.is_string()) {
            return HttpResponse::error(400, "config values must be strings");
          }
          config[key] = value.as_string();
        }
        util::Status status = node->orchestrator().update_nf(
            params.at("id"), params.at("nf"), config);
        if (!status.is_ok()) {
          return HttpResponse::error(http_status_of(status),
                                     status.message());
        }
        return HttpResponse::json_response(200, "{\"updated\":true}");
      });

  router_.add("GET", "/NF-FG/{id}/VNFs/{nf}/stats",
              [node](const HttpRequest&, const PathParams& params) {
                auto stats = node->orchestrator().nf_stats(params.at("id"),
                                                           params.at("nf"));
                if (!stats) {
                  return HttpResponse::error(http_status_of(stats.status()),
                                             stats.status().message());
                }
                return HttpResponse::json_response(200,
                                                   stats.value().dump());
              });

  router_.add("GET", "/node",
              [node](const HttpRequest&, const PathParams&) {
                return HttpResponse::json_response(
                    200, node->describe().dump());
              });

  router_.add("GET", "/health",
              [node](const HttpRequest&, const PathParams&) {
                return HttpResponse::json_response(
                    200, node->health().dump());
              });
}

}  // namespace nnfv::rest
