#include "rest/router.hpp"

#include "util/strings.hpp"

namespace nnfv::rest {

std::vector<std::string> Router::split_path(const std::string& path) {
  std::vector<std::string> out;
  for (std::string& segment : util::split(path, '/')) {
    if (!segment.empty()) out.push_back(std::move(segment));
  }
  return out;
}

void Router::add(const std::string& method, const std::string& pattern,
                 Handler handler) {
  routes_.push_back(Route{method, split_path(pattern), std::move(handler)});
}

bool Router::match(const Route& route,
                   const std::vector<std::string>& segments,
                   PathParams& params) {
  if (route.segments.size() != segments.size()) return false;
  PathParams captured;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const std::string& pattern = route.segments[i];
    if (pattern.size() >= 2 && pattern.front() == '{' &&
        pattern.back() == '}') {
      captured[pattern.substr(1, pattern.size() - 2)] = segments[i];
    } else if (pattern != segments[i]) {
      return false;
    }
  }
  params = std::move(captured);
  return true;
}

HttpResponse Router::route(const HttpRequest& request) const {
  const std::vector<std::string> segments = split_path(request.path());
  bool path_matched = false;
  for (const Route& candidate : routes_) {
    PathParams params;
    if (!match(candidate, segments, params)) continue;
    path_matched = true;
    if (candidate.method != request.method) continue;
    return candidate.handler(request, params);
  }
  if (path_matched) {
    return HttpResponse::error(405, "method not allowed for " +
                                        request.path());
  }
  return HttpResponse::error(404, "no route for " + request.path());
}

}  // namespace nnfv::rest
