#include "core/orchestrator.hpp"

#include <algorithm>

#include "nffg/validate.hpp"
#include "util/logging.hpp"

namespace nnfv::core {

using util::Result;
using util::Status;

LocalOrchestrator::LocalOrchestrator(compute::ComputeManager* compute,
                                     NetworkManager* network,
                                     VnfResolver* resolver,
                                     VnfScheduler* scheduler,
                                     ResourceManager* resources)
    : compute_(compute),
      network_(network),
      resolver_(resolver),
      scheduler_(scheduler),
      resources_(resources) {}

Result<DeploymentReport> LocalOrchestrator::deploy(const nffg::NfFg& graph) {
  DeploymentReport report;
  report.graph_id = graph.id;

  NNFV_RETURN_IF_ERROR(nffg::validate(graph, &report.warnings));
  if (graphs_.contains(graph.id)) {
    return util::already_exists("graph '" + graph.id + "'");
  }

  // 1. Per-graph LSI.
  auto lsi = network_->create_graph_lsi(graph.id);
  if (!lsi) return lsi.status();

  GraphRecord record;
  record.graph = graph;
  record.cookie = TrafficSteering::cookie_for(graph.id);

  auto rollback = [&]() {
    TrafficSteering::remove(*network_, record.cookie);
    for (const compute::DeployedNf& deployed : record.deployments) {
      (void)compute_->undeploy(deployed);
    }
    (void)network_->destroy_graph_lsi(graph.id);
  };

  // 2. Virtual link per endpoint.
  for (const nffg::Endpoint& ep : graph.endpoints) {
    // Endpoints must reference existing physical ports.
    auto phys = network_->physical_port(ep.interface);
    if (!phys) {
      rollback();
      return Status(util::ErrorCode::kInvalidArgument,
                    "endpoint '" + ep.id + "': no physical port '" +
                        ep.interface + "' on this node");
    }
    auto link = network_->create_virtual_link(graph.id, ep.id);
    if (!link) {
      rollback();
      return link.status();
    }
    record.ports.endpoints[ep.id] = link.value();
  }

  // 3. Place every NF: resolver -> scheduler -> first driver that accepts.
  for (const nffg::NfNode& nf : graph.nfs) {
    std::vector<NfImplementation> candidates =
        resolver_->resolve(nf.functional_type, *compute_);
    std::vector<PlacementChoice> ranked = scheduler_->schedule(nf, candidates);
    if (ranked.empty()) {
      rollback();
      return util::unavailable(
          "no deployable implementation for NF '" + nf.id + "' (type '" +
          nf.functional_type + "'" +
          (nf.backend_hint.has_value()
               ? ", hint " + std::string(virt::backend_name(*nf.backend_hint))
               : "") +
          ")");
    }

    compute::NfDeploySpec spec;
    spec.graph_id = graph.id;
    spec.nf_id = nf.id;
    spec.functional_type = nf.functional_type;
    spec.num_ports = nf.num_ports;
    spec.config = nf.config;

    bool placed = false;
    Status last_error;
    for (const PlacementChoice& choice : ranked) {
      spec.image = choice.impl.image;
      auto deployed =
          compute_->deploy(choice.impl.backend, spec, *lsi.value());
      if (!deployed) {
        last_error = deployed.status();
        NNFV_LOG(kDebug, "orchestrator")
            << "candidate " << virt::backend_name(choice.impl.backend)
            << " failed for " << nf.id << ": " << last_error.to_string();
        continue;
      }
      record.deployments.push_back(deployed.value());
      for (std::uint32_t p = 0; p < deployed->ports.size(); ++p) {
        record.ports.nf_ports[{nf.id, p}] = deployed->ports[p].lsi_port;
      }
      NfPlacement placement;
      placement.nf_id = nf.id;
      placement.functional_type = nf.functional_type;
      placement.backend = deployed->backend;
      placement.reused_shared_instance = deployed->reused_shared_instance;
      placement.reason = choice.reason;
      placement.ram_bytes = deployed->ram_bytes;
      placement.image_bytes = deployed->image_bytes;
      placement.boot_time = deployed->boot_time;
      report.placements.push_back(std::move(placement));
      placed = true;
      break;
    }
    if (!placed) {
      rollback();
      if (last_error.is_ok()) {
        last_error = util::unavailable("no candidate accepted NF '" + nf.id +
                                       "'");
      }
      return last_error;
    }
  }

  // 4. Steering rules.
  auto installed = TrafficSteering::install(graph, *network_, record.ports,
                                            record.cookie);
  if (!installed) {
    rollback();
    return installed.status();
  }
  report.flow_rules_installed = installed.value();
  for (const NfPlacement& placement : report.placements) {
    report.ready_latency = std::max(report.ready_latency,
                                    placement.boot_time);
  }

  record.report = report;
  graphs_[graph.id] = std::move(record);
  NNFV_LOG(kInfo, "orchestrator")
      << "deployed graph '" << graph.id << "' (" << report.placements.size()
      << " NFs, " << report.flow_rules_installed << " flow rules)";
  return report;
}

Status LocalOrchestrator::remove(const std::string& graph_id) {
  auto it = graphs_.find(graph_id);
  if (it == graphs_.end()) {
    return util::not_found("graph '" + graph_id + "'");
  }
  GraphRecord& record = it->second;
  TrafficSteering::remove(*network_, record.cookie);
  Status first_error;
  for (const compute::DeployedNf& deployed : record.deployments) {
    Status status = compute_->undeploy(deployed);
    if (!status.is_ok() && first_error.is_ok()) first_error = status;
  }
  (void)network_->destroy_graph_lsi(graph_id);
  graphs_.erase(it);
  NNFV_LOG(kInfo, "orchestrator") << "removed graph '" << graph_id << "'";
  return first_error;
}

Status LocalOrchestrator::update_nf(const std::string& graph_id,
                                    const std::string& nf_id,
                                    const nnf::NfConfig& config) {
  auto it = graphs_.find(graph_id);
  if (it == graphs_.end()) {
    return util::not_found("graph '" + graph_id + "'");
  }
  for (const compute::DeployedNf& deployed : it->second.deployments) {
    if (deployed.nf_id == nf_id) {
      return compute_->update(deployed, config);
    }
  }
  return util::not_found("NF '" + nf_id + "' in graph '" + graph_id + "'");
}

Result<json::Value> LocalOrchestrator::nf_stats(
    const std::string& graph_id, const std::string& nf_id) const {
  auto it = graphs_.find(graph_id);
  if (it == graphs_.end()) {
    return util::not_found("graph '" + graph_id + "'");
  }
  for (const compute::DeployedNf& deployed : it->second.deployments) {
    if (deployed.nf_id == nf_id) {
      return compute_->nf_stats(deployed);
    }
  }
  return util::not_found("NF '" + nf_id + "' in graph '" + graph_id + "'");
}

bool LocalOrchestrator::has_graph(const std::string& graph_id) const {
  return graphs_.contains(graph_id);
}

Result<const GraphRecord*> LocalOrchestrator::graph(
    const std::string& graph_id) const {
  auto it = graphs_.find(graph_id);
  if (it == graphs_.end()) {
    return util::not_found("graph '" + graph_id + "'");
  }
  return static_cast<const GraphRecord*>(&it->second);
}

std::vector<std::string> LocalOrchestrator::graph_ids() const {
  std::vector<std::string> out;
  out.reserve(graphs_.size());
  for (const auto& [id, record] : graphs_) out.push_back(id);
  return out;
}

}  // namespace nnfv::core
