// ResourceManager: the node's resource ledgers plus the "node description,
// capabilities and resources" record the local orchestrator publishes
// (Figure 1, bottom).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "virt/backend.hpp"
#include "virt/image_store.hpp"
#include "virt/ram_model.hpp"

namespace nnfv::core {

/// Hardware description of the node. Defaults model a capable residential
/// CPE (enough RAM that a single VM fits, so Table 1 can run all flavors).
struct NodeCapacity {
  std::uint64_t ram_bytes = 1024ULL * virt::kMiB;
  std::uint64_t disk_bytes = 4096ULL * virt::kMiB;
  unsigned cpu_cores = 1;
  std::string hostname = "cpe-node";
};

class ResourceManager {
 public:
  explicit ResourceManager(NodeCapacity capacity);

  virt::RamLedger& ram() { return ram_; }
  [[nodiscard]] const virt::RamLedger& ram() const { return ram_; }
  virt::DiskLedger& disk() { return disk_; }
  [[nodiscard]] const virt::DiskLedger& disk() const { return disk_; }

  [[nodiscard]] const NodeCapacity& capacity() const { return capacity_; }

  /// Capability advertisement: which backends this node can host.
  void set_backends(std::vector<virt::BackendKind> backends);
  [[nodiscard]] const std::vector<virt::BackendKind>& backends() const {
    return backends_;
  }

  /// JSON node description (REST: GET /node).
  [[nodiscard]] json::Value describe() const;

 private:
  NodeCapacity capacity_;
  virt::RamLedger ram_;
  virt::DiskLedger disk_;
  std::vector<virt::BackendKind> backends_;
};

}  // namespace nnfv::core
