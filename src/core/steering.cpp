#include "core/steering.hpp"

#include <functional>

namespace nnfv::core {

using util::Result;

namespace {

/// Graph-LSI port for a rule's PortRef.
Result<nfswitch::PortId> resolve_ref(const nffg::PortRef& ref,
                                     const GraphPorts& ports) {
  if (ref.kind == nffg::PortRef::Kind::kEndpoint) {
    auto it = ports.endpoints.find(ref.id);
    if (it == ports.endpoints.end()) {
      return util::not_found("virtual link for endpoint '" + ref.id + "'");
    }
    return it->second.graph_port;
  }
  auto it = ports.nf_ports.find({ref.id, ref.port});
  if (it == ports.nf_ports.end()) {
    return util::not_found("LSI port for NF '" + ref.id + "' port " +
                           std::to_string(ref.port));
  }
  return it->second;
}

}  // namespace

nfswitch::Cookie TrafficSteering::cookie_for(const std::string& graph_id) {
  return std::hash<std::string>{}(graph_id) | 1ULL;  // never zero
}

Result<std::size_t> TrafficSteering::install(const nffg::NfFg& graph,
                                             NetworkManager& network,
                                             const GraphPorts& ports,
                                             nfswitch::Cookie cookie) {
  nfswitch::Lsi* graph_lsi = network.graph_lsi(graph.id);
  if (graph_lsi == nullptr) {
    return util::not_found("LSI for graph '" + graph.id + "'");
  }
  std::size_t installed = 0;

  // --- LSI-0: classification in, restoration out --------------------------
  for (const nffg::Endpoint& ep : graph.endpoints) {
    auto link_it = ports.endpoints.find(ep.id);
    if (link_it == ports.endpoints.end()) {
      return util::not_found("virtual link for endpoint '" + ep.id + "'");
    }
    const VirtualLink& link = link_it->second;
    auto phys = network.physical_port(ep.interface);
    if (!phys) return phys.status();

    // Ingress: physical (+VLAN) -> virtual link. Tagged flows match at a
    // higher priority than the untagged catch-all of the same interface.
    nfswitch::FlowMatch in_match;
    in_match.in_port = phys.value();
    std::vector<nfswitch::FlowAction> in_actions;
    if (ep.vlan.has_value()) {
      in_match.vlan = *ep.vlan;
      in_actions.push_back(nfswitch::FlowAction::pop_vlan());
    } else {
      in_match.vlan = nfswitch::FlowMatch::kMatchUntagged;
    }
    in_actions.push_back(nfswitch::FlowAction::output(link.base_port));
    network.base_lsi().flow_table().add(ep.vlan.has_value() ? 100 : 50,
                                        in_match, in_actions, cookie);
    ++installed;

    // Egress: virtual link -> physical, re-tagging VLAN endpoints.
    nfswitch::FlowMatch out_match;
    out_match.in_port = link.base_port;
    std::vector<nfswitch::FlowAction> out_actions;
    if (ep.vlan.has_value()) {
      out_actions.push_back(nfswitch::FlowAction::push_vlan(*ep.vlan));
    }
    out_actions.push_back(nfswitch::FlowAction::output(phys.value()));
    network.base_lsi().flow_table().add(100, out_match, out_actions, cookie);
    ++installed;
  }

  // --- Graph LSI: the NF-FG's own rules ------------------------------------
  for (const nffg::Rule& rule : graph.rules) {
    auto in_port = resolve_ref(rule.match.port_in, ports);
    if (!in_port) return in_port.status();
    auto out_port = resolve_ref(rule.output, ports);
    if (!out_port) return out_port.status();

    nfswitch::FlowMatch match;
    match.in_port = in_port.value();
    match.eth_type = rule.match.eth_type;
    match.ip_src = rule.match.ip_src;
    match.ip_src_prefix = rule.match.ip_src_prefix;
    match.ip_dst = rule.match.ip_dst;
    match.ip_dst_prefix = rule.match.ip_dst_prefix;
    match.ip_proto = rule.match.ip_proto;
    match.tp_src = rule.match.tp_src;
    match.tp_dst = rule.match.tp_dst;

    graph_lsi->flow_table().add(
        rule.priority, match,
        {nfswitch::FlowAction::output(out_port.value())}, cookie);
    ++installed;
  }
  return installed;
}

std::size_t TrafficSteering::remove(NetworkManager& network,
                                    nfswitch::Cookie cookie) {
  return network.base_lsi().flow_table().remove_by_cookie(cookie);
}

}  // namespace nnfv::core
