// UniversalNode: the fully assembled NFV compute node of Figure 1 — one
// object wiring simulator, namespaces, NNF catalog, repository, resource
// ledgers, the four management drivers, the network manager and the local
// orchestrator. This is the main entry point of the library.
//
//   core::UniversalNode node(core::UniversalNodeConfig{});
//   auto report = node.orchestrator().deploy(graph);
//   node.inject("eth0", std::move(frame));
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compute/manager.hpp"
#include "core/network_manager.hpp"
#include "exec/datapath_executor.hpp"
#include "exec/watchdog.hpp"
#include "core/orchestrator.hpp"
#include "core/repository.hpp"
#include "core/resolver.hpp"
#include "core/resource_manager.hpp"
#include "core/scheduler.hpp"
#include "netns/netns.hpp"
#include "nnf/catalog.hpp"
#include "nnf/marking.hpp"
#include "sim/simulator.hpp"

namespace nnfv::core {

struct UniversalNodeConfig {
  NodeCapacity capacity;
  std::vector<std::string> physical_ports = {"eth0", "eth1"};
  /// Backends to register drivers for; default all four of Figure 1.
  std::vector<virt::BackendKind> backends = {
      virt::BackendKind::kNative, virt::BackendKind::kDocker,
      virt::BackendKind::kDpdk, virt::BackendKind::kVm};
  bool builtin_nnf_plugins = true;   ///< load the CPE's native functions
  bool builtin_vnf_repository = true;
  /// Wrap NNF plugins in the generic-config translator and add the DHCP
  /// server (the paper's future-work configuration mechanism; see
  /// nnf/translator.hpp).
  bool generic_config_translation = false;
  /// Placement policy the scheduler uses (see core/scheduler.hpp).
  PlacementPolicyKind placement_policy = PlacementPolicyKind::kDefault;
  /// Datapath worker threads for node ingress (docs/datapath.md §6).
  /// 0 (default) keeps the historic inline path: inject() runs the LSI-0
  /// pipeline on the calling thread. N > 0 starts N run-to-completion
  /// workers; inject()/inject_burst() RSS-hash frames to them, and
  /// egress peers / sim-bound NF stations may then be invoked from
  /// worker threads (sim-bound work bounces via Simulator::post()).
  std::size_t datapath_workers = 0;
  /// Priority-aware load shedding at the datapath ingress (docs/
  /// datapath.md §7). Only meaningful with datapath_workers > 0.
  bool datapath_shed_enabled = false;
  /// Shedding watermarks (frames; 0 = executor defaults, see
  /// exec::DatapathExecutorConfig).
  std::size_t datapath_shed_high = 0;
  std::size_t datapath_shed_low = 0;
  std::size_t datapath_shed_hard = 0;
  /// Start the worker watchdog (docs/datapath.md §7). Only meaningful
  /// with datapath_workers > 0.
  bool datapath_watchdog = false;
  /// Watchdog stall threshold (see exec::WatchdogConfig).
  std::uint64_t datapath_stall_timeout_ms = 200;
};

class UniversalNode {
 public:
  explicit UniversalNode(UniversalNodeConfig config = {});

  // Non-copyable/movable: components hold pointers into each other.
  UniversalNode(const UniversalNode&) = delete;
  UniversalNode& operator=(const UniversalNode&) = delete;

  sim::Simulator& simulator() { return simulator_; }
  LocalOrchestrator& orchestrator() { return *orchestrator_; }
  NetworkManager& network() { return network_; }
  compute::ComputeManager& compute() { return compute_; }
  nnf::NnfCatalog& catalog() { return catalog_; }
  netns::NamespaceRegistry& namespaces() { return netns_; }
  nnf::MarkAllocator& marks() { return marks_; }
  ResourceManager& resources() { return resources_; }
  VnfRepository& repository() { return repository_; }

  /// External-world helpers (traffic sources/sinks attach here).
  util::Status inject(const std::string& port, packet::PacketBuffer&& frame);
  util::Status inject_burst(const std::string& port,
                            packet::PacketBurst&& burst);
  util::Status set_egress(const std::string& port,
                          nfswitch::Lsi::PortPeer peer);

  /// Node description JSON (REST: GET /node).
  [[nodiscard]] json::Value describe() const;

  /// Node health JSON (REST: GET /health): per-worker datapath state —
  /// heartbeat, occupancy, drops, sheds, stalls, restarts — plus mbuf
  /// pool accounting and watchdog counters. Works on the inline path
  /// too (status + pool stats, no workers).
  [[nodiscard]] json::Value health() const;

  /// The sharded-ingress executor, or nullptr when datapath_workers == 0.
  exec::DatapathExecutor* datapath() { return executor_.get(); }

  /// The worker watchdog, or nullptr unless datapath_watchdog was set.
  exec::Watchdog* watchdog() { return watchdog_.get(); }

  /// Blocks until all worker-submitted ingress frames have left the
  /// datapath (no-op on the inline path). Sim-bound continuations the
  /// workers posted still need a simulator().run*() afterwards.
  void drain_datapath();

 private:
  sim::Simulator simulator_;
  netns::NamespaceRegistry netns_;
  nnf::NnfCatalog catalog_;
  nnf::MarkAllocator marks_;
  ResourceManager resources_;
  VnfRepository repository_;
  NetworkManager network_;
  compute::ComputeManager compute_;
  VnfResolver resolver_;
  VnfScheduler scheduler_;
  std::unique_ptr<LocalOrchestrator> orchestrator_;
  /// Near-last member: workers must stop before the components they
  /// touch.
  std::unique_ptr<exec::DatapathExecutor> executor_;
  /// After executor_: the watchdog must stop before the executor its
  /// restart_worker() calls touch (destroyed first).
  std::unique_ptr<exec::Watchdog> watchdog_;
};

}  // namespace nnfv::core
