// NetworkManager (Figure 1's "Network manager"): LSI lifecycle.
//
// Owns the base LSI (LSI-0) with the node's physical ports, creates one
// LSI per deployed NF-FG, and builds the virtual links between LSI-0 and
// graph LSIs over which classified traffic flows.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "switch/lsi.hpp"
#include "util/status.hpp"

namespace nnfv::core {

/// A virtual link between LSI-0 and a graph LSI (two cross-wired ports).
struct VirtualLink {
  nfswitch::PortId base_port = nfswitch::kInvalidPort;   ///< on LSI-0
  nfswitch::PortId graph_port = nfswitch::kInvalidPort;  ///< on graph LSI
};

class NetworkManager {
 public:
  NetworkManager();

  nfswitch::Lsi& base_lsi() { return *base_; }
  [[nodiscard]] const nfswitch::Lsi& base_lsi() const { return *base_; }

  /// Physical ports live on LSI-0; the external world injects/collects
  /// through them.
  util::Result<nfswitch::PortId> add_physical_port(const std::string& name);
  [[nodiscard]] util::Result<nfswitch::PortId> physical_port(
      const std::string& name) const;

  /// Wires where frames leaving a physical port go (test sink, wire model).
  util::Status set_physical_egress(const std::string& name,
                                   nfswitch::Lsi::PortPeer peer);

  /// External ingress: a frame arrives on a physical port.
  util::Status inject(const std::string& name, packet::PacketBuffer&& frame);

  /// External burst ingress: the whole vector enters LSI-0 as one batch.
  util::Status inject_burst(const std::string& name,
                            packet::PacketBurst&& burst);

  util::Result<nfswitch::Lsi*> create_graph_lsi(const std::string& graph_id);
  util::Status destroy_graph_lsi(const std::string& graph_id);
  [[nodiscard]] nfswitch::Lsi* graph_lsi(const std::string& graph_id);

  /// Creates a virtual link for `graph_id` (label distinguishes several
  /// links of one graph, e.g. one per endpoint).
  util::Result<VirtualLink> create_virtual_link(const std::string& graph_id,
                                                const std::string& label);

  [[nodiscard]] std::size_t lsi_count() const;  ///< including LSI-0
  [[nodiscard]] std::vector<std::string> graph_ids() const;

 private:
  std::unique_ptr<nfswitch::Lsi> base_;
  std::map<std::string, std::unique_ptr<nfswitch::Lsi>> graph_lsis_;
  /// LSI-0 ends of each graph's virtual links, reclaimed on destroy so a
  /// graph id can be redeployed (setup/teardown churn must not leak ports).
  std::map<std::string, std::vector<nfswitch::PortId>> graph_link_ports_;
  std::map<std::string, nfswitch::PortId> physical_ports_;
  nfswitch::LsiId next_lsi_id_ = 1;
};

}  // namespace nnfv::core
