#include "core/node.hpp"

#include "compute/docker_driver.hpp"
#include "compute/dpdk_driver.hpp"
#include "compute/native_driver.hpp"
#include "compute/vm_driver.hpp"
#include "nnf/translator.hpp"
#include "packet/mbuf.hpp"

namespace nnfv::core {

UniversalNode::UniversalNode(UniversalNodeConfig config)
    : catalog_(config.builtin_nnf_plugins
                   ? (config.generic_config_translation
                          ? nnf::translating_builtin_catalog()
                          : nnf::NnfCatalog::with_builtin_plugins())
                   : nnf::NnfCatalog{}),
      resources_(config.capacity),
      repository_(config.builtin_vnf_repository
                      ? VnfRepository::with_builtins()
                      : VnfRepository{}),
      resolver_(&repository_, &catalog_),
      scheduler_(make_policy(config.placement_policy)) {
  for (const std::string& port : config.physical_ports) {
    (void)network_.add_physical_port(port);
  }

  compute::DriverEnv generic_env;
  generic_env.simulator = &simulator_;
  generic_env.templates = &repository_.templates();
  generic_env.images = &repository_.images();
  generic_env.disk = &resources_.disk();
  generic_env.ram = &resources_.ram();

  compute::NativeDriverEnv native_env;
  native_env.simulator = &simulator_;
  native_env.catalog = &catalog_;
  native_env.netns = &netns_;
  native_env.marks = &marks_;
  native_env.ram = &resources_.ram();

  for (virt::BackendKind kind : config.backends) {
    switch (kind) {
      case virt::BackendKind::kNative:
        (void)compute_.register_driver(
            std::make_unique<compute::NativeDriver>(native_env));
        break;
      case virt::BackendKind::kDocker:
        (void)compute_.register_driver(
            std::make_unique<compute::DockerDriver>(generic_env));
        break;
      case virt::BackendKind::kDpdk:
        (void)compute_.register_driver(
            std::make_unique<compute::DpdkDriver>(generic_env));
        break;
      case virt::BackendKind::kVm:
        (void)compute_.register_driver(
            std::make_unique<compute::VmDriver>(generic_env));
        break;
    }
  }
  resources_.set_backends(compute_.backends());

  orchestrator_ = std::make_unique<LocalOrchestrator>(
      &compute_, &network_, &resolver_, &scheduler_, &resources_);

  if (config.datapath_workers > 0) {
    exec::DatapathExecutorConfig dp;
    dp.workers = config.datapath_workers;
    dp.shed_enabled = config.datapath_shed_enabled;
    dp.shed_high_watermark = config.datapath_shed_high;
    dp.shed_low_watermark = config.datapath_shed_low;
    dp.shed_hard_watermark = config.datapath_shed_hard;
    // The pipeline tag is the LSI-0 ingress PortId; each worker runs the
    // full classify -> NNF -> egress chain to completion on its core.
    executor_ = std::make_unique<exec::DatapathExecutor>(
        dp, [this](exec::WorkerContext&, std::uint32_t tag,
                   packet::PacketBurst&& burst) {
          network_.base_lsi().receive_burst(
              static_cast<nfswitch::PortId>(tag), std::move(burst));
        });
    if (config.datapath_watchdog) {
      exec::WatchdogConfig wd;
      wd.stall_timeout_ms = config.datapath_stall_timeout_ms;
      watchdog_ = std::make_unique<exec::Watchdog>(*executor_, wd);
    }
  }
}

util::Status UniversalNode::inject(const std::string& port,
                                   packet::PacketBuffer&& frame) {
  if (executor_ != nullptr) {
    packet::PacketBurst burst;
    burst.push_back(std::move(frame));
    return inject_burst(port, std::move(burst));
  }
  return network_.inject(port, std::move(frame));
}

util::Status UniversalNode::inject_burst(const std::string& port,
                                         packet::PacketBurst&& burst) {
  if (executor_ != nullptr) {
    auto id = network_.physical_port(port);
    if (!id.is_ok()) return id.status();
    executor_->submit_burst(static_cast<std::uint32_t>(id.value()),
                            std::move(burst));
    return util::Status::ok();
  }
  return network_.inject_burst(port, std::move(burst));
}

void UniversalNode::drain_datapath() {
  if (executor_ != nullptr) executor_->drain();
}

util::Status UniversalNode::set_egress(const std::string& port,
                                       nfswitch::Lsi::PortPeer peer) {
  return network_.set_physical_egress(port, std::move(peer));
}

json::Value UniversalNode::describe() const {
  json::Value doc = resources_.describe();
  json::Object& obj = doc.as_object();

  json::Array nnfs;
  for (const std::string& type : catalog_.types()) {
    json::Object entry;
    entry["functional_type"] = type;
    auto plugin = catalog_.plugin(type);
    if (plugin) {
      const nnf::NnfDescriptor& desc = plugin.value()->descriptor();
      entry["sharable"] = desc.sharable;
      entry["single_interface"] = desc.single_interface;
      entry["max_instances"] = static_cast<double>(desc.max_instances);
    }
    const nnf::NnfStatus* status = catalog_.status_of(type);
    if (status != nullptr) {
      entry["running_instances"] =
          static_cast<double>(status->running_instances);
      entry["serving_graphs"] = static_cast<double>(status->graphs.size());
    }
    nnfs.push_back(std::move(entry));
  }
  obj["native_functions"] = std::move(nnfs);

  json::Array images;
  for (const std::string& name : repository_.images().names()) {
    images.push_back(name);
  }
  obj["images"] = std::move(images);
  obj["lsi_count"] = static_cast<double>(network_.lsi_count());
  return doc;
}

json::Value UniversalNode::health() const {
  json::Object health;
  health["status"] = "ok";
  if (executor_ != nullptr) {
    health["datapath"] = executor_->describe_stats();
  } else {
    json::Object inline_path;
    inline_path["workers"] = 0;
    health["datapath"] = std::move(inline_path);
  }
  if (watchdog_ != nullptr) {
    json::Object wd;
    wd["stalls_detected"] = watchdog_->stalls_detected();
    wd["restarts_performed"] = watchdog_->restarts_performed();
    health["watchdog"] = std::move(wd);
  }
  const packet::MbufPoolStats pool = packet::MbufPool::global_stats();
  json::Object mbuf;
  mbuf["segment_allocs"] = pool.segment_allocs;
  mbuf["segment_frees"] = pool.segment_frees;
  mbuf["slab_allocs"] = pool.slab_allocs;
  mbuf["heap_allocs"] = pool.heap_allocs;
  mbuf["cross_worker_frees"] = pool.cross_worker_frees;
  health["mbuf_pool"] = std::move(mbuf);
  return json::Value(std::move(health));
}

}  // namespace nnfv::core
