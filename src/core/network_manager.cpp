#include "core/network_manager.hpp"

#include "util/logging.hpp"

namespace nnfv::core {

using util::Result;
using util::Status;

NetworkManager::NetworkManager()
    : base_(std::make_unique<nfswitch::Lsi>(0, "LSI-0")) {}

Result<nfswitch::PortId> NetworkManager::add_physical_port(
    const std::string& name) {
  auto port = base_->add_port(name);
  if (!port) return port;
  physical_ports_[name] = port.value();
  return port;
}

Result<nfswitch::PortId> NetworkManager::physical_port(
    const std::string& name) const {
  auto it = physical_ports_.find(name);
  if (it == physical_ports_.end()) {
    return util::not_found("physical port '" + name + "'");
  }
  return it->second;
}

Status NetworkManager::set_physical_egress(const std::string& name,
                                           nfswitch::Lsi::PortPeer peer) {
  auto port = physical_port(name);
  if (!port) return port.status();
  return base_->set_port_peer(port.value(), std::move(peer));
}

Status NetworkManager::inject(const std::string& name,
                              packet::PacketBuffer&& frame) {
  auto port = physical_port(name);
  if (!port) return port.status();
  base_->receive(port.value(), std::move(frame));
  return Status::ok();
}

Status NetworkManager::inject_burst(const std::string& name,
                                    packet::PacketBurst&& burst) {
  auto port = physical_port(name);
  if (!port) return port.status();
  base_->receive_burst(port.value(), std::move(burst));
  return Status::ok();
}

Result<nfswitch::Lsi*> NetworkManager::create_graph_lsi(
    const std::string& graph_id) {
  if (graph_lsis_.contains(graph_id)) {
    return util::already_exists("LSI for graph '" + graph_id + "'");
  }
  auto lsi = std::make_unique<nfswitch::Lsi>(next_lsi_id_++,
                                             "LSI-" + graph_id);
  nfswitch::Lsi* raw = lsi.get();
  graph_lsis_[graph_id] = std::move(lsi);
  NNFV_LOG(kInfo, "network") << "created " << raw->name();
  return raw;
}

Status NetworkManager::destroy_graph_lsi(const std::string& graph_id) {
  auto it = graph_lsis_.find(graph_id);
  if (it == graph_lsis_.end()) {
    return util::not_found("LSI for graph '" + graph_id + "'");
  }
  if (auto links = graph_link_ports_.find(graph_id);
      links != graph_link_ports_.end()) {
    for (nfswitch::PortId port : links->second) {
      (void)base_->remove_port(port);
    }
    graph_link_ports_.erase(links);
  }
  graph_lsis_.erase(it);
  NNFV_LOG(kInfo, "network") << "destroyed LSI-" << graph_id;
  return Status::ok();
}

nfswitch::Lsi* NetworkManager::graph_lsi(const std::string& graph_id) {
  auto it = graph_lsis_.find(graph_id);
  return it == graph_lsis_.end() ? nullptr : it->second.get();
}

Result<VirtualLink> NetworkManager::create_virtual_link(
    const std::string& graph_id, const std::string& label) {
  nfswitch::Lsi* graph = graph_lsi(graph_id);
  if (graph == nullptr) {
    return util::not_found("LSI for graph '" + graph_id + "'");
  }
  auto base_port = base_->add_port("vl:" + graph_id + ":" + label);
  if (!base_port) return base_port.status();
  auto graph_port = graph->add_port("vl:" + label);
  if (!graph_port) {
    (void)base_->remove_port(base_port.value());
    return graph_port.status();
  }
  // Cross-wire the two ends, with burst fast paths so a classified burst
  // crosses the link as one vector instead of one call per frame.
  nfswitch::Lsi* base_raw = base_.get();
  (void)base_->set_port_peer(
      base_port.value(),
      [graph, gp = graph_port.value()](packet::PacketBuffer&& frame) {
        graph->receive(gp, std::move(frame));
      });
  (void)base_->set_port_burst_peer(
      base_port.value(),
      [graph, gp = graph_port.value()](packet::PacketBurst&& burst) {
        graph->receive_burst(gp, std::move(burst));
      });
  (void)graph->set_port_peer(
      graph_port.value(),
      [base_raw, bp = base_port.value()](packet::PacketBuffer&& frame) {
        base_raw->receive(bp, std::move(frame));
      });
  (void)graph->set_port_burst_peer(
      graph_port.value(),
      [base_raw, bp = base_port.value()](packet::PacketBurst&& burst) {
        base_raw->receive_burst(bp, std::move(burst));
      });
  graph_link_ports_[graph_id].push_back(base_port.value());
  return VirtualLink{base_port.value(), graph_port.value()};
}

std::size_t NetworkManager::lsi_count() const {
  return 1 + graph_lsis_.size();
}

std::vector<std::string> NetworkManager::graph_ids() const {
  std::vector<std::string> out;
  out.reserve(graph_lsis_.size());
  for (const auto& [id, lsi] : graph_lsis_) out.push_back(id);
  return out;
}

}  // namespace nnfv::core
