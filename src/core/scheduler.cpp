#include "core/scheduler.hpp"

#include <algorithm>

namespace nnfv::core {

std::vector<PlacementChoice> DefaultPlacementPolicy::rank(
    const nffg::NfNode& nf,
    const std::vector<NfImplementation>& candidates) const {
  std::vector<PlacementChoice> out;
  out.reserve(candidates.size());
  for (const NfImplementation& impl : candidates) {
    PlacementChoice choice;
    choice.impl = impl;
    if (impl.backend == virt::BackendKind::kNative) {
      choice.reason = impl.shares_running_instance
                          ? "native: sharable instance already running"
                          : "native: plugin available, lowest overhead";
    } else {
      choice.reason = std::string(virt::backend_name(impl.backend)) +
                      ": VNF image available";
    }
    out.push_back(std::move(choice));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PlacementChoice& a, const PlacementChoice& b) {
                     const bool a_native =
                         a.impl.backend == virt::BackendKind::kNative;
                     const bool b_native =
                         b.impl.backend == virt::BackendKind::kNative;
                     if (a_native != b_native) return a_native;
                     if (a_native && b_native) {
                       // Shared reuse beats spinning up a new instance.
                       return a.impl.shares_running_instance &&
                              !b.impl.shares_running_instance;
                     }
                     return a.impl.ram_estimate < b.impl.ram_estimate;
                   });
  (void)nf;
  return out;
}

std::vector<PlacementChoice> VnfOnlyPolicy::rank(
    const nffg::NfNode& nf,
    const std::vector<NfImplementation>& candidates) const {
  std::vector<PlacementChoice> out;
  for (const NfImplementation& impl : candidates) {
    if (impl.backend == virt::BackendKind::kNative) continue;
    PlacementChoice choice;
    choice.impl = impl;
    choice.reason = std::string(virt::backend_name(impl.backend)) +
                    ": VNF-only baseline policy";
    out.push_back(std::move(choice));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PlacementChoice& a, const PlacementChoice& b) {
                     return a.impl.ram_estimate < b.impl.ram_estimate;
                   });
  (void)nf;
  return out;
}

std::vector<PlacementChoice> FastActivationPolicy::rank(
    const nffg::NfNode& nf,
    const std::vector<NfImplementation>& candidates) const {
  std::vector<PlacementChoice> out;
  for (const NfImplementation& impl : candidates) {
    PlacementChoice choice;
    choice.impl = impl;
    const sim::SimTime activation =
        impl.backend == virt::BackendKind::kNative &&
                impl.shares_running_instance
            ? virt::backend_cost(impl.backend).config_ns
            : virt::backend_cost(impl.backend).boot_ns;
    choice.reason = std::string(virt::backend_name(impl.backend)) +
                    ": activation " +
                    std::to_string(activation / sim::kMillisecond) + " ms";
    out.push_back(std::move(choice));
  }
  std::stable_sort(
      out.begin(), out.end(),
      [](const PlacementChoice& a, const PlacementChoice& b) {
        auto activation_of = [](const NfImplementation& impl) {
          if (impl.backend == virt::BackendKind::kNative &&
              impl.shares_running_instance) {
            return virt::backend_cost(impl.backend).config_ns;
          }
          return virt::backend_cost(impl.backend).boot_ns;
        };
        return activation_of(a.impl) < activation_of(b.impl);
      });
  (void)nf;
  return out;
}

std::unique_ptr<PlacementPolicy> make_policy(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kDefault:
      return std::make_unique<DefaultPlacementPolicy>();
    case PlacementPolicyKind::kVnfOnly:
      return std::make_unique<VnfOnlyPolicy>();
    case PlacementPolicyKind::kFastActivation:
      return std::make_unique<FastActivationPolicy>();
  }
  return std::make_unique<DefaultPlacementPolicy>();
}

VnfScheduler::VnfScheduler(std::unique_ptr<PlacementPolicy> policy)
    : policy_(policy != nullptr
                  ? std::move(policy)
                  : std::make_unique<DefaultPlacementPolicy>()) {}

std::vector<PlacementChoice> VnfScheduler::schedule(
    const nffg::NfNode& nf,
    const std::vector<NfImplementation>& candidates) const {
  std::vector<PlacementChoice> ranked = policy_->rank(nf, candidates);
  if (nf.backend_hint.has_value()) {
    std::vector<PlacementChoice> filtered;
    for (PlacementChoice& choice : ranked) {
      if (choice.impl.backend == *nf.backend_hint) {
        choice.reason += " (pinned by NF-FG backend hint)";
        filtered.push_back(std::move(choice));
      }
    }
    return filtered;
  }
  return ranked;
}

}  // namespace nnfv::core
