#include "core/resolver.hpp"

namespace nnfv::core {

std::vector<NfImplementation> VnfResolver::resolve(
    const std::string& functional_type,
    const compute::ComputeManager& manager) const {
  std::vector<NfImplementation> out;

  // Native candidate: plugin present and either a live sharable instance
  // or room for a new one.
  if (catalog_ != nullptr && manager.has_driver(virt::BackendKind::kNative) &&
      catalog_->has(functional_type)) {
    const bool share = catalog_->can_share(functional_type);
    if (share || catalog_->can_instantiate(functional_type)) {
      auto plugin = catalog_->plugin(functional_type);
      NfImplementation impl;
      impl.backend = virt::BackendKind::kNative;
      impl.image_bytes = plugin.value()->descriptor().package_bytes;
      impl.shares_running_instance = share;
      impl.ram_estimate =
          share ? plugin.value()->descriptor().memory.per_context_bytes
                : virt::instance_ram(virt::BackendKind::kNative,
                                     plugin.value()->descriptor().memory);
      out.push_back(impl);
    }
  }

  // Generic backends: template + flavor image + registered driver.
  if (repository_ != nullptr && repository_->templates().has(functional_type)) {
    auto tmpl = repository_->templates().find(functional_type);
    for (virt::BackendKind kind :
         {virt::BackendKind::kDocker, virt::BackendKind::kDpdk,
          virt::BackendKind::kVm}) {
      if (!manager.has_driver(kind)) continue;
      auto image = repository_->image_for(functional_type, kind);
      if (!image) continue;
      NfImplementation impl;
      impl.backend = kind;
      impl.image = image->name;
      impl.image_bytes = image->total_size();
      impl.ram_estimate = virt::instance_ram(kind, tmpl->memory);
      out.push_back(impl);
    }
  }
  return out;
}

}  // namespace nnfv::core
