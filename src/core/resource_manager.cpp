#include "core/resource_manager.hpp"

namespace nnfv::core {

ResourceManager::ResourceManager(NodeCapacity capacity)
    : capacity_(capacity),
      ram_(capacity.ram_bytes),
      disk_(capacity.disk_bytes) {}

void ResourceManager::set_backends(std::vector<virt::BackendKind> backends) {
  backends_ = std::move(backends);
}

json::Value ResourceManager::describe() const {
  json::Object doc;
  doc["hostname"] = capacity_.hostname;
  doc["cpu_cores"] = static_cast<double>(capacity_.cpu_cores);

  json::Object ram;
  ram["total_bytes"] = static_cast<double>(ram_.capacity());
  ram["used_bytes"] = static_cast<double>(ram_.used());
  ram["available_bytes"] = static_cast<double>(ram_.available());
  doc["ram"] = std::move(ram);

  json::Object disk;
  disk["total_bytes"] = static_cast<double>(disk_.capacity());
  disk["used_bytes"] = static_cast<double>(disk_.used());
  doc["disk"] = std::move(disk);

  json::Array backends;
  for (virt::BackendKind kind : backends_) {
    backends.push_back(std::string(virt::backend_name(kind)));
  }
  doc["backends"] = std::move(backends);
  return doc;
}

}  // namespace nnfv::core
