#include "core/repository.hpp"

namespace nnfv::core {

using util::Result;
using util::Status;

Status VnfRepository::add_nf(compute::VnfTemplate tmpl) {
  const std::string type = tmpl.functional_type;
  const std::uint64_t package = tmpl.package_bytes;
  NNFV_RETURN_IF_ERROR(templates_.register_template(std::move(tmpl)));

  virt::FlavorImages flavors = virt::make_flavor_images(type, package);
  NNFV_RETURN_IF_ERROR(images_.register_image(flavors.native));
  NNFV_RETURN_IF_ERROR(images_.register_image(flavors.docker));
  NNFV_RETURN_IF_ERROR(images_.register_image(flavors.vm));

  // DPDK flavor: container-like packaging (app + DPDK libraries).
  virt::Image dpdk;
  dpdk.name = type + ":dpdk";
  dpdk.kind = virt::BackendKind::kDpdk;
  dpdk.layers = {{"dpdk-runtime", 90 * virt::kMiB}, {type + "-pkg", package}};
  NNFV_RETURN_IF_ERROR(images_.register_image(std::move(dpdk)));
  return Status::ok();
}

Result<virt::Image> VnfRepository::image_for(
    const std::string& functional_type, virt::BackendKind backend) const {
  return images_.find(functional_type + ":" +
                      std::string(virt::backend_name(backend)));
}

VnfRepository VnfRepository::with_builtins() {
  VnfRepository repo;
  compute::VnfTemplateRegistry builtins =
      compute::VnfTemplateRegistry::with_builtin_templates();
  for (const std::string& type : builtins.types()) {
    auto tmpl = builtins.find(type);
    if (tmpl) (void)repo.add_nf(std::move(tmpl.value()));
  }
  return repo;
}

}  // namespace nnfv::core
