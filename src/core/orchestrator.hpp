// LocalOrchestrator: the top of Figure 1 — receives NF-FGs, decides NNF vs
// VNF per function, instantiates through the compute manager, builds the
// per-graph LSI and installs steering rules.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compute/manager.hpp"
#include "core/network_manager.hpp"
#include "core/resolver.hpp"
#include "core/resource_manager.hpp"
#include "core/scheduler.hpp"
#include "core/steering.hpp"
#include "nffg/nffg.hpp"

namespace nnfv::core {

/// One NF's placement outcome inside a deployment report.
struct NfPlacement {
  std::string nf_id;
  std::string functional_type;
  virt::BackendKind backend = virt::BackendKind::kVm;
  bool reused_shared_instance = false;
  std::string reason;
  std::uint64_t ram_bytes = 0;
  std::uint64_t image_bytes = 0;
  sim::SimTime boot_time = 0;
};

struct DeploymentReport {
  std::string graph_id;
  std::vector<NfPlacement> placements;
  std::size_t flow_rules_installed = 0;
  /// Graph-ready latency: NFs boot in parallel, so the slowest dominates.
  sim::SimTime ready_latency = 0;
  std::vector<std::string> warnings;
};

/// Everything the orchestrator kept about one deployed graph.
struct GraphRecord {
  nffg::NfFg graph;
  std::vector<compute::DeployedNf> deployments;
  GraphPorts ports;
  nfswitch::Cookie cookie = 0;
  DeploymentReport report;
};

class LocalOrchestrator {
 public:
  LocalOrchestrator(compute::ComputeManager* compute,
                    NetworkManager* network, VnfResolver* resolver,
                    VnfScheduler* scheduler, ResourceManager* resources);

  /// Deploys a graph: validate -> LSI -> links -> place NFs -> steer.
  /// All-or-nothing; failures roll back every partial step.
  util::Result<DeploymentReport> deploy(const nffg::NfFg& graph);

  /// Removes a graph and all its state.
  util::Status remove(const std::string& graph_id);

  /// Re-configures one NF of a deployed graph (the "update" lifecycle op).
  util::Status update_nf(const std::string& graph_id,
                         const std::string& nf_id,
                         const nnf::NfConfig& config);

  /// Live status counters of one NF of a deployed graph (the function's
  /// describe_stats() through the compute driver).
  [[nodiscard]] util::Result<json::Value> nf_stats(
      const std::string& graph_id, const std::string& nf_id) const;

  [[nodiscard]] bool has_graph(const std::string& graph_id) const;
  [[nodiscard]] util::Result<const GraphRecord*> graph(
      const std::string& graph_id) const;
  [[nodiscard]] std::vector<std::string> graph_ids() const;
  [[nodiscard]] std::size_t graph_count() const { return graphs_.size(); }

 private:
  compute::ComputeManager* compute_;
  NetworkManager* network_;
  VnfResolver* resolver_;
  VnfScheduler* scheduler_;
  ResourceManager* resources_;
  std::map<std::string, GraphRecord> graphs_;
};

}  // namespace nnfv::core
