// VnfResolver (Figure 1's "VNF resolver"): maps a functional type to the
// concrete implementations this node can deploy right now — one candidate
// per viable backend, with its image and resource estimate.
#pragma once

#include <string>
#include <vector>

#include "compute/manager.hpp"
#include "core/repository.hpp"
#include "nnf/catalog.hpp"

namespace nnfv::core {

/// One deployable implementation of a functional type.
struct NfImplementation {
  virt::BackendKind backend = virt::BackendKind::kVm;
  std::string image;               ///< empty for native
  std::uint64_t image_bytes = 0;
  std::uint64_t ram_estimate = 0;  ///< marginal RAM if deployed now
  bool shares_running_instance = false;  ///< native reuse of a live NNF
};

class VnfResolver {
 public:
  VnfResolver(const VnfRepository* repository, const nnf::NnfCatalog* catalog)
      : repository_(repository), catalog_(catalog) {}

  /// All candidates deployable through the drivers registered in `manager`.
  /// Order is unspecified; ranking is the scheduler's job.
  [[nodiscard]] std::vector<NfImplementation> resolve(
      const std::string& functional_type,
      const compute::ComputeManager& manager) const;

 private:
  const VnfRepository* repository_;
  const nnf::NnfCatalog* catalog_;
};

}  // namespace nnfv::core
