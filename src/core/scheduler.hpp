// VnfScheduler (Figure 1's "VNF scheduler"): the placement decision.
//
// "For each NF in a NF-FG, the orchestrator decides whether to deploy it
// as VNF or NNF based on its knowledge of the node capability set, the
// available NNFs and their characteristics (e.g., whether they are
// sharable), and their status (e.g., already used in another chain)."
// (paper §2)
//
// The policy is pluggable; the default prefers the native implementation
// (lowest overhead — the paper's whole point), then orders VNF backends by
// marginal RAM. A backend hint in the NF-FG pins the choice (used by the
// Table 1 bench to force each flavor).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/resolver.hpp"
#include "nffg/nffg.hpp"

namespace nnfv::core {

/// A ranked candidate with the policy's reasoning (surfaced in reports).
struct PlacementChoice {
  NfImplementation impl;
  std::string reason;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  /// Orders candidates best-first. May drop candidates it deems unusable.
  [[nodiscard]] virtual std::vector<PlacementChoice> rank(
      const nffg::NfNode& nf,
      const std::vector<NfImplementation>& candidates) const = 0;
};

/// Default policy: native first (shared reuse preferred over new
/// instances), then VNF backends by ascending marginal RAM.
class DefaultPlacementPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::vector<PlacementChoice> rank(
      const nffg::NfNode& nf,
      const std::vector<NfImplementation>& candidates) const override;
};

/// Baseline policy: what a conventional NFV platform does — NNFs are not
/// considered at all; VNF backends ordered by marginal RAM. Used by the
/// placement-ablation bench to quantify what NNF support buys.
class VnfOnlyPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::vector<PlacementChoice> rank(
      const nffg::NfNode& nf,
      const std::vector<NfImplementation>& candidates) const override;
};

/// Activation-latency-greedy policy: order candidates by modeled
/// create->running time (shared native < fresh native < docker < dpdk <
/// vm). Useful when service turn-up time dominates (e.g. on-demand
/// chains).
class FastActivationPolicy final : public PlacementPolicy {
 public:
  [[nodiscard]] std::vector<PlacementChoice> rank(
      const nffg::NfNode& nf,
      const std::vector<NfImplementation>& candidates) const override;
};

enum class PlacementPolicyKind { kDefault, kVnfOnly, kFastActivation };

std::unique_ptr<PlacementPolicy> make_policy(PlacementPolicyKind kind);

class VnfScheduler {
 public:
  explicit VnfScheduler(std::unique_ptr<PlacementPolicy> policy = nullptr);

  /// Ranked candidates for one NF. Honors nf.backend_hint: only that
  /// backend survives (an empty result means the hint cannot be met).
  [[nodiscard]] std::vector<PlacementChoice> schedule(
      const nffg::NfNode& nf,
      const std::vector<NfImplementation>& candidates) const;

 private:
  std::unique_ptr<PlacementPolicy> policy_;
};

}  // namespace nnfv::core
