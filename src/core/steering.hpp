// TrafficSteering (Figure 1's "Traffic Steering mngr"): translates an
// NF-FG into flow rules.
//
// Two-tier steering, as in the paper:
//  * LSI-0 classifies node ingress traffic (physical port, optionally
//    VLAN) and forwards it over the graph's virtual link; return traffic
//    flows back out through the endpoint's physical port (re-tagged when
//    the endpoint is a VLAN sub-interface).
//  * The graph LSI applies the NF-FG's own rules between virtual-link
//    ports and NF ports.
#pragma once

#include <map>
#include <string>

#include "compute/driver.hpp"
#include "core/network_manager.hpp"
#include "nffg/nffg.hpp"
#include "switch/flow_table.hpp"

namespace nnfv::core {

/// Port translation tables built during deployment.
struct GraphPorts {
  /// endpoint id -> its virtual link.
  std::map<std::string, VirtualLink> endpoints;
  /// (nf id, logical port) -> graph LSI port.
  std::map<std::pair<std::string, std::uint32_t>, nfswitch::PortId> nf_ports;
};

class TrafficSteering {
 public:
  /// Installs all rules of `graph` (cookie-tagged for removal).
  /// Returns the number of flow entries installed across both LSIs.
  static util::Result<std::size_t> install(const nffg::NfFg& graph,
                                           NetworkManager& network,
                                           const GraphPorts& ports,
                                           nfswitch::Cookie cookie);

  /// Removes the graph's rules from LSI-0 (the graph LSI is destroyed
  /// wholesale by the orchestrator). Returns entries removed.
  static std::size_t remove(NetworkManager& network, nfswitch::Cookie cookie);

  /// Stable cookie for a graph id.
  static nfswitch::Cookie cookie_for(const std::string& graph_id);
};

}  // namespace nnfv::core
