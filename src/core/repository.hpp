// VnfRepository (Figure 1's "VNF repository"): what can run on this node —
// the VNF templates (software content) and the per-backend images built
// from them.
#pragma once

#include <string>

#include "compute/templates.hpp"
#include "util/status.hpp"
#include "virt/image_store.hpp"

namespace nnfv::core {

class VnfRepository {
 public:
  /// Registers a template and builds its three flavor images
  /// (<type>:native / <type>:docker / <type>:vm). DPDK functions reuse the
  /// docker-sized image ("<type>:dpdk", container-packaged DPDK app).
  util::Status add_nf(compute::VnfTemplate tmpl);

  [[nodiscard]] const compute::VnfTemplateRegistry& templates() const {
    return templates_;
  }
  [[nodiscard]] const virt::ImageStore& images() const { return images_; }

  [[nodiscard]] util::Result<virt::Image> image_for(
      const std::string& functional_type, virt::BackendKind backend) const;

  /// Repository preloaded with the built-in functions.
  static VnfRepository with_builtins();

 private:
  compute::VnfTemplateRegistry templates_;
  virt::ImageStore images_;
};

}  // namespace nnfv::core
