// DatapathExecutor: N run-to-completion worker threads with RSS flow
// sharding (ROADMAP item 1).
//
// Ingress: one control thread (the bench main thread, the simulator
// thread, ...) calls submit_burst(); each frame's flow tuple is RSS-
// hashed to a worker and pushed onto that worker's SPSC ingress ring —
// single producer (the control thread), single consumer (the worker).
// Workers drain their rings in batches and run the user pipeline —
// classify → NNF → crypto — to completion on their own core, identified
// by a thread-local worker slot (see worker_slot.hpp) that per-worker
// state (microflow caches, stats shards, NAT port slices) indexes.
//
// Cross-shard handoff: when the pipeline must move a frame to another
// worker (e.g. a virtual link whose peer NF is pinned elsewhere), it
// calls WorkerContext::handoff(); each ordered (from, to) worker pair
// owns a dedicated SPSC ring, so handoff is lock-free too. Handoff
// pushes retry briefly when the ring is full, then drop-and-count —
// blocking could deadlock two workers handing off to each other.
//
// Idle workers back off spin → yield → doorbell sleep, so a drained
// executor costs (almost) no CPU. drain() blocks the control thread
// until every submitted frame has fully left the pipeline.
//
// Overload resilience (ISSUE 9):
//  * Every worker publishes a heartbeat epoch (bumped once per loop
//    iteration, stall or no stall) and its ring occupancy; the
//    exec::Watchdog (watchdog.hpp) polls those and calls
//    restart_worker() on a worker that stops making progress while it
//    has backlog. Restart supersedes the old thread via a per-worker
//    generation counter: the new generation owns the rings, the old
//    thread exits at its next generation check without touching them
//    again. See docs/datapath.md for the recovery contract.
//  * Priority-aware shedding (off by default): when a shard's ingress
//    occupancy crosses shed_high, bulk frames for that shard are
//    dropped at submit — before any pipeline work is invested — until
//    occupancy falls below shed_low (hysteresis). Control frames (ARP /
//    DHCP / rekey ESP, see priority.hpp) are admitted until shed_hard.
//  * FaultInjector hooks (fault_inject.hpp) can stall a worker or fail
//    handoffs; they cost one relaxed load when the harness is off.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/spsc_ring.hpp"
#include "exec/worker_slot.hpp"
#include "json/json.hpp"
#include "packet/buffer.hpp"
#include "util/atomics.hpp"

namespace nnfv::exec {

struct DatapathExecutorConfig {
  /// Worker threads. Clamped to [1, kMaxWorkers].
  std::size_t workers = 1;
  /// Per-worker ingress ring capacity (frames).
  std::size_t ring_capacity = 4096;
  /// Per (from, to) worker-pair handoff ring capacity (frames).
  std::size_t handoff_capacity = 1024;
  /// Max frames a worker pulls from one ring per drain.
  std::size_t drain_batch = 64;
  /// submit_burst behavior on a full ingress ring: spin until space
  /// (backpressure, default) or drop-and-count.
  bool block_on_full = true;
  /// Pin worker i to CPU i % hardware_concurrency (Linux only).
  bool pin_threads = false;
  /// Priority-aware shedding at submit. Off by default: the existing
  /// backpressure/tail-drop behavior is unchanged unless opted into.
  bool shed_enabled = false;
  /// Ingress occupancy (frames) at which bulk shedding arms for a
  /// shard. 0 = 3/4 of the (rounded-up) ring capacity.
  std::size_t shed_high_watermark = 0;
  /// Occupancy below which shedding disarms again. 0 = 1/2 capacity.
  std::size_t shed_low_watermark = 0;
  /// Occupancy at which even control frames are shed. 0 = 15/16
  /// capacity — past this point backpressure (or tail drop) is all
  /// that is left.
  std::size_t shed_hard_watermark = 0;
};

/// Per-worker counters, aggregated by the executor's accessors.
struct WorkerStats {
  std::uint64_t processed = 0;     ///< frames run through the pipeline
  std::uint64_t handoff_out = 0;   ///< frames pushed to another shard
  std::uint64_t handoff_in = 0;    ///< frames received from another shard
  std::uint64_t handoff_drops = 0; ///< handoff pushes that found a full ring
                                   ///< (summed over targets; per-pair via
                                   ///< DatapathExecutor::handoff_drops())
  std::uint64_t ingress_drops = 0; ///< full-ring submit drops on this shard
  std::uint64_t shed_bulk = 0;     ///< bulk frames shed at submit
  std::uint64_t shed_control = 0;  ///< control frames shed past shed_hard
  std::uint64_t stalls = 0;        ///< watchdog stall detections
  std::uint64_t restarts = 0;      ///< watchdog thread respawns
  std::uint64_t heartbeat = 0;     ///< loop-iteration epoch
  std::uint64_t occupancy = 0;     ///< ingress-ring occupancy snapshot
};

class DatapathExecutor;

/// Handed to the pipeline; identifies the worker and provides handoff.
class WorkerContext {
 public:
  /// 0-based worker index.
  std::size_t index() const { return index_; }
  /// Worker-slot id (index + 1; slot 0 is the control thread).
  std::size_t slot() const { return index_ + 1; }
  std::size_t worker_count() const;
  /// Moves a frame to another worker's shard; it re-enters the pipeline
  /// there with `tag`. Returns false (and counts a drop) if the handoff
  /// ring stayed full after bounded retries.
  bool handoff(std::size_t to_worker, std::uint32_t tag,
               packet::PacketBuffer&& frame);

 private:
  friend class DatapathExecutor;
  WorkerContext(DatapathExecutor& executor, std::size_t index)
      : executor_(executor), index_(index) {}
  DatapathExecutor& executor_;
  std::size_t index_;
};

class DatapathExecutor {
 public:
  /// The per-burst pipeline body. `tag` is caller-defined routing info
  /// (ingress port id, handoff stage, ...) carried with every frame.
  using Pipeline = std::function<void(WorkerContext&, std::uint32_t tag,
                                      packet::PacketBurst&&)>;

  DatapathExecutor(DatapathExecutorConfig config, Pipeline pipeline);
  ~DatapathExecutor();

  DatapathExecutor(const DatapathExecutor&) = delete;
  DatapathExecutor& operator=(const DatapathExecutor&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// RSS-hashes each frame to a worker and enqueues it. Single-producer:
  /// call from one control thread only. Returns frames enqueued (the
  /// rest were shed or dropped; only possible with shedding on or
  /// block_on_full=false).
  std::size_t submit_burst(std::uint32_t tag, packet::PacketBurst&& burst);

  /// Enqueues to an explicit worker, bypassing the hash (tests).
  bool submit_to(std::size_t worker, std::uint32_t tag,
                 packet::PacketBuffer&& frame);

  /// Blocks until every submitted frame has left the pipeline (all rings
  /// empty, all workers idle). Call from the control thread.
  void drain();

  /// Stops and joins all workers (including superseded ones) after
  /// draining in-flight work.
  void stop();

  WorkerStats worker_stats(std::size_t worker) const;
  std::uint64_t total_processed() const;
  /// Frames submit dropped on full ingress rings, summed over shards.
  std::uint64_t ingress_drops() const;
  /// Handoff drops for the ordered worker pair (from, to).
  std::uint64_t handoff_drops(std::size_t from, std::size_t to) const;
  /// Loop-iteration epoch of `worker`; a healthy worker bumps it at
  /// least every doorbell-sleep interval even when idle.
  std::uint64_t worker_heartbeat(std::size_t worker) const;
  /// True when any ring feeding `worker` holds frames (watchdog's "no
  /// progress while there is work" condition).
  bool worker_has_backlog(std::size_t worker) const;

  /// Watchdog recovery: records a stall detection for `worker`.
  void note_stall(std::size_t worker);
  /// Watchdog recovery: supersedes `worker`'s thread (generation bump)
  /// and spawns a fresh one on the same rings. The superseded thread
  /// exits at its next generation check; it is joined in stop(). Safe
  /// to call from the watchdog thread while the control thread submits.
  void restart_worker(std::size_t worker);

  /// Per-worker health (heartbeat, occupancy, drops, sheds, stalls,
  /// restarts) plus totals, as a JSON object for GET /health.
  json::Value describe_stats() const;

 private:
  friend class WorkerContext;

  struct WorkItem {
    std::uint32_t tag = 0;
    packet::PacketBuffer frame;
  };

  /// Internal per-worker counters: relaxed atomics because the control
  /// thread reads them (worker_stats / total_processed) while workers
  /// are still counting.
  struct LiveStats {
    util::RelaxedCounter processed;
    util::RelaxedCounter handoff_out;
    util::RelaxedCounter handoff_in;
    util::RelaxedCounter ingress_drops;
    util::RelaxedCounter shed_bulk;
    util::RelaxedCounter shed_control;
    util::RelaxedCounter stalls;
    util::RelaxedCounter restarts;
    /// handoff_drops_to[to]: drops of handoffs this worker pushed
    /// toward worker `to` (written only by this worker's thread).
    std::vector<util::RelaxedCounter> handoff_drops_to;
  };

  struct alignas(kCacheLine) Worker {
    std::unique_ptr<SpscRing<WorkItem>> ingress;
    /// handoff[from] = ring written by worker `from`, read by this one.
    std::vector<std::unique_ptr<SpscRing<WorkItem>>> handoff;
    std::thread thread;
    LiveStats stats;
    std::mutex doorbell_mutex;
    std::condition_variable doorbell;
    std::atomic<bool> sleeping{false};
    /// Bumped once per worker-loop iteration; frozen = stalled.
    std::atomic<std::uint64_t> heartbeat{0};
    /// Restart token: run_worker exits when its captured generation no
    /// longer matches, without touching the rings again.
    std::atomic<std::uint32_t> generation{0};
    /// Shedding hysteresis state for this shard. Owned by the single
    /// submit thread; Relaxed so describe_stats() may read it.
    util::Relaxed<bool> shedding{false};
  };

  void run_worker(std::size_t index, std::uint32_t my_generation);
  /// Drains up to drain_batch items from `ring`, runs the pipeline on
  /// them grouped by tag, and credits `stats_processed`. Returns the
  /// number of frames processed.
  std::size_t drain_ring(WorkerContext& ctx, SpscRing<WorkItem>& ring);
  void ring_doorbell(std::size_t worker);
  bool push_handoff(std::size_t from, std::size_t to, std::uint32_t tag,
                    packet::PacketBuffer&& frame);
  /// True when shedding says to drop `frame` for `worker` right now;
  /// counts the shed. Called only from the submit thread.
  bool should_shed(Worker& worker, const packet::PacketBuffer& frame);

  DatapathExecutorConfig config_;
  Pipeline pipeline_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> inflight_{0};
  /// Resolved shedding watermarks (config zeros replaced by defaults).
  std::size_t shed_high_ = 0;
  std::size_t shed_low_ = 0;
  std::size_t shed_hard_ = 0;
  /// Threads superseded by restart_worker(), joined in stop().
  std::mutex retired_mutex_;
  std::vector<std::thread> retired_;
};

}  // namespace nnfv::exec
