// DatapathExecutor: N run-to-completion worker threads with RSS flow
// sharding (ROADMAP item 1).
//
// Ingress: one control thread (the bench main thread, the simulator
// thread, ...) calls submit_burst(); each frame's flow tuple is RSS-
// hashed to a worker and pushed onto that worker's SPSC ingress ring —
// single producer (the control thread), single consumer (the worker).
// Workers drain their rings in batches and run the user pipeline —
// classify → NNF → crypto — to completion on their own core, identified
// by a thread-local worker slot (see worker_slot.hpp) that per-worker
// state (microflow caches, stats shards, NAT port slices) indexes.
//
// Cross-shard handoff: when the pipeline must move a frame to another
// worker (e.g. a virtual link whose peer NF is pinned elsewhere), it
// calls WorkerContext::handoff(); each ordered (from, to) worker pair
// owns a dedicated SPSC ring, so handoff is lock-free too. Handoff
// pushes retry briefly when the ring is full, then drop-and-count —
// blocking could deadlock two workers handing off to each other.
//
// Idle workers back off spin → yield → doorbell sleep, so a drained
// executor costs (almost) no CPU. drain() blocks the control thread
// until every submitted frame has fully left the pipeline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/spsc_ring.hpp"
#include "exec/worker_slot.hpp"
#include "packet/buffer.hpp"
#include "util/atomics.hpp"

namespace nnfv::exec {

struct DatapathExecutorConfig {
  /// Worker threads. Clamped to [1, kMaxWorkers].
  std::size_t workers = 1;
  /// Per-worker ingress ring capacity (frames).
  std::size_t ring_capacity = 4096;
  /// Per (from, to) worker-pair handoff ring capacity (frames).
  std::size_t handoff_capacity = 1024;
  /// Max frames a worker pulls from one ring per drain.
  std::size_t drain_batch = 64;
  /// submit_burst behavior on a full ingress ring: spin until space
  /// (backpressure, default) or drop-and-count.
  bool block_on_full = true;
  /// Pin worker i to CPU i % hardware_concurrency (Linux only).
  bool pin_threads = false;
};

/// Per-worker counters, aggregated by the executor's accessors.
struct WorkerStats {
  std::uint64_t processed = 0;     ///< frames run through the pipeline
  std::uint64_t handoff_out = 0;   ///< frames pushed to another shard
  std::uint64_t handoff_in = 0;    ///< frames received from another shard
  std::uint64_t handoff_drops = 0; ///< handoff pushes that found a full ring
};

class DatapathExecutor;

/// Handed to the pipeline; identifies the worker and provides handoff.
class WorkerContext {
 public:
  /// 0-based worker index.
  std::size_t index() const { return index_; }
  /// Worker-slot id (index + 1; slot 0 is the control thread).
  std::size_t slot() const { return index_ + 1; }
  std::size_t worker_count() const;
  /// Moves a frame to another worker's shard; it re-enters the pipeline
  /// there with `tag`. Returns false (and counts a drop) if the handoff
  /// ring stayed full after bounded retries.
  bool handoff(std::size_t to_worker, std::uint32_t tag,
               packet::PacketBuffer&& frame);

 private:
  friend class DatapathExecutor;
  WorkerContext(DatapathExecutor& executor, std::size_t index)
      : executor_(executor), index_(index) {}
  DatapathExecutor& executor_;
  std::size_t index_;
};

class DatapathExecutor {
 public:
  /// The per-burst pipeline body. `tag` is caller-defined routing info
  /// (ingress port id, handoff stage, ...) carried with every frame.
  using Pipeline = std::function<void(WorkerContext&, std::uint32_t tag,
                                      packet::PacketBurst&&)>;

  DatapathExecutor(DatapathExecutorConfig config, Pipeline pipeline);
  ~DatapathExecutor();

  DatapathExecutor(const DatapathExecutor&) = delete;
  DatapathExecutor& operator=(const DatapathExecutor&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// RSS-hashes each frame to a worker and enqueues it. Single-producer:
  /// call from one control thread only. Returns frames enqueued (the
  /// rest were dropped; only possible with block_on_full=false).
  std::size_t submit_burst(std::uint32_t tag, packet::PacketBurst&& burst);

  /// Enqueues to an explicit worker, bypassing the hash (tests).
  bool submit_to(std::size_t worker, std::uint32_t tag,
                 packet::PacketBuffer&& frame);

  /// Blocks until every submitted frame has left the pipeline (all rings
  /// empty, all workers idle). Call from the control thread.
  void drain();

  /// Stops and joins all workers after draining in-flight work.
  void stop();

  WorkerStats worker_stats(std::size_t worker) const;
  std::uint64_t total_processed() const;
  /// Frames submit_burst dropped on full ingress rings.
  std::uint64_t ingress_drops() const {
    return ingress_drops_.load(std::memory_order_relaxed);
  }

 private:
  friend class WorkerContext;

  struct WorkItem {
    std::uint32_t tag = 0;
    packet::PacketBuffer frame;
  };

  /// Internal per-worker counters: relaxed atomics because the control
  /// thread reads them (worker_stats / total_processed) while workers
  /// are still counting.
  struct LiveStats {
    util::RelaxedCounter processed;
    util::RelaxedCounter handoff_out;
    util::RelaxedCounter handoff_in;
    util::RelaxedCounter handoff_drops;
  };

  struct alignas(kCacheLine) Worker {
    std::unique_ptr<SpscRing<WorkItem>> ingress;
    /// handoff[from] = ring written by worker `from`, read by this one.
    std::vector<std::unique_ptr<SpscRing<WorkItem>>> handoff;
    std::thread thread;
    LiveStats stats;
    std::mutex doorbell_mutex;
    std::condition_variable doorbell;
    std::atomic<bool> sleeping{false};
  };

  void run_worker(std::size_t index);
  /// Drains up to drain_batch items from `ring`, runs the pipeline on
  /// them grouped by tag, and credits `stats_processed`. Returns the
  /// number of frames processed.
  std::size_t drain_ring(WorkerContext& ctx, SpscRing<WorkItem>& ring);
  void ring_doorbell(std::size_t worker);
  bool push_handoff(std::size_t from, std::size_t to, std::uint32_t tag,
                    packet::PacketBuffer&& frame);

  DatapathExecutorConfig config_;
  Pipeline pipeline_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> ingress_drops_{0};
};

}  // namespace nnfv::exec
