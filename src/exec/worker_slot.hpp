// Worker-slot identity for the sharded datapath.
//
// Per-worker state (microflow caches, stats shards, NAT port slices) is
// indexed by a small integer "slot". Slot 0 is the control/inline slot:
// any thread that never registered — the main thread, the simulator
// thread, tests calling process() directly — reads and writes slot 0,
// which keeps the single-threaded configuration bit-identical to the
// pre-sharding behavior. DatapathExecutor workers register slots
// 1..workers() for the lifetime of their run loop.
#pragma once

#include <cstddef>

namespace nnfv::exec {

/// Upper bound on worker threads (+1 control slot). Sized so per-slot
/// state arrays stay small; the executor rejects larger configs.
inline constexpr std::size_t kMaxWorkers = 16;

/// Total number of slots: slot 0 (control) + kMaxWorkers worker slots.
inline constexpr std::size_t kMaxSlots = kMaxWorkers + 1;

namespace detail {
inline thread_local std::size_t current_slot = 0;
}  // namespace detail

/// Slot of the calling thread: 0 unless inside a worker's run loop.
inline std::size_t current_worker_slot() { return detail::current_slot; }

/// RAII slot registration, used by DatapathExecutor's worker loops.
class ScopedWorkerSlot {
 public:
  explicit ScopedWorkerSlot(std::size_t slot) {
    previous_ = detail::current_slot;
    detail::current_slot = slot;
  }
  ~ScopedWorkerSlot() { detail::current_slot = previous_; }
  ScopedWorkerSlot(const ScopedWorkerSlot&) = delete;
  ScopedWorkerSlot& operator=(const ScopedWorkerSlot&) = delete;

 private:
  std::size_t previous_ = 0;
};

}  // namespace nnfv::exec
