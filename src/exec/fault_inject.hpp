// Fault-injection harness for the overload-resilience tests and bench.
//
// A process-wide singleton of hooks the datapath consults at three choke
// points: the worker loop top (stall a chosen worker), the cross-shard
// handoff push (force failures for an ordered worker pair), and mbuf
// allocation pressure (hoard segments so a pool runs dry). Everything is
// gated behind one static relaxed atomic bool: production paths pay a
// single predicted-not-taken branch, and when the harness was never
// enabled (the default) nothing else is touched.
//
// Enabling: tests call instance().set_enabled(true); setting the
// NNFV_FAULT_INJECT environment variable to a non-empty value other
// than "0" enables it at first use (CI / manual experiments).
//
// Stall semantics: stall_worker(i) arms a stall that captures exactly
// one thread — the next thread to pass worker i's loop-top hook blocks
// inside maybe_stall() until release_stall() or until the executor's
// abort predicate fires (shutdown or watchdog supersession). A respawned
// worker passes through the hook untouched, so a watchdog recovery test
// observes exactly one captured and one healthy thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace nnfv::packet {
class MbufPool;
struct MbufSegment;
}  // namespace nnfv::packet

namespace nnfv::exec {

class FaultInjector {
 public:
  /// Process-wide instance (leaked singleton; hooks may run during
  /// static destruction of test fixtures).
  static FaultInjector& instance();

  /// True when the harness is enabled. Inline relaxed load — the only
  /// cost fault-injection adds to production paths.
  static bool active() {
    return active_flag().load(std::memory_order_relaxed);
  }

  void set_enabled(bool on);

  /// Disarms every fault and releases captured threads. Leaves the
  /// enabled flag untouched.
  void reset();

  // --- worker stall ------------------------------------------------------
  /// Arms a stall for worker `index` (captures the next thread to pass
  /// that worker's loop-top hook).
  void stall_worker(std::size_t index);
  void release_stall();
  /// Threads currently blocked inside maybe_stall().
  std::size_t stalled_threads() const;
  /// Executor hook. Blocks while the stall stays armed and `abort`
  /// (shutdown / supersession predicate) returns false.
  void maybe_stall(std::size_t index, const std::function<bool()>& abort);

  // --- handoff failures --------------------------------------------------
  /// Arms `count` forced failures for handoffs from worker `from` to
  /// worker `to`; each failure is charged to that pair's drop counter
  /// exactly like a full-ring drop.
  void fail_handoffs(std::size_t from, std::size_t to, std::uint64_t count);
  /// Executor hook: consumes one armed failure; true = fail this push.
  bool should_fail_handoff(std::size_t from, std::size_t to);

  // --- mbuf-pool exhaustion ----------------------------------------------
  /// Allocates and holds `count` full-size segments from `pool`, so
  /// later allocations overflow to the heap path (or, for a non-growing
  /// pool, exhaust the prealloc deterministically).
  void hoard_segments(packet::MbufPool& pool, std::size_t count);
  /// Returns every hoarded segment to its pool.
  void release_hoard();
  std::size_t hoarded() const;

 private:
  FaultInjector();
  static std::atomic<bool>& active_flag();

  mutable std::mutex mutex_;
  // Stall state. `captured` stays true after the stalled thread is
  // released so one arming captures at most one thread.
  bool stall_armed_ = false;
  bool stall_captured_ = false;
  std::size_t stall_index_ = 0;
  std::atomic<std::size_t> stalled_threads_{0};
  // Armed handoff failures per ordered (from, to) pair.
  struct HandoffFault {
    std::size_t from = 0;
    std::size_t to = 0;
    std::uint64_t remaining = 0;
  };
  std::vector<HandoffFault> handoff_faults_;
  std::vector<packet::MbufSegment*> hoard_;
};

}  // namespace nnfv::exec
