#include "exec/watchdog.hpp"

#include <algorithm>

#include "exec/datapath_executor.hpp"
#include "util/logging.hpp"

namespace nnfv::exec {

Watchdog::Watchdog(DatapathExecutor& executor, WatchdogConfig config)
    : executor_(executor), config_(config) {
  config_.stall_timeout_ms = std::max<std::uint64_t>(
      config_.stall_timeout_ms, 1);
  if (config_.poll_interval_ms == 0) {
    config_.poll_interval_ms = std::max<std::uint64_t>(
        config_.stall_timeout_ms / 4, 1);
  }
  const auto now = std::chrono::steady_clock::now();
  tracks_.resize(executor_.worker_count());
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    tracks_[i].last_heartbeat = executor_.worker_heartbeat(i);
    tracks_[i].last_progress = now;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
    }
    wakeup_.notify_one();
  }
  if (thread_.joinable()) thread_.join();
}

void Watchdog::run() {
  const auto poll = std::chrono::milliseconds(config_.poll_interval_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_.load(std::memory_order_acquire)) {
    wakeup_.wait_for(lock, poll);
    if (!running_.load(std::memory_order_acquire)) break;
    poll_once(std::chrono::steady_clock::now());
  }
}

void Watchdog::poll_once(std::chrono::steady_clock::time_point now) {
  const auto timeout = std::chrono::milliseconds(config_.stall_timeout_ms);
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    Track& track = tracks_[i];
    const std::uint64_t heartbeat = executor_.worker_heartbeat(i);
    if (heartbeat != track.last_heartbeat) {
      track.last_heartbeat = heartbeat;
      track.last_progress = now;
      track.flagged = false;
      continue;
    }
    // Frozen heartbeat. Only a worker with pending frames is stalled —
    // an idle frozen worker blackholes nothing (and a healthy idle
    // worker heartbeats anyway: its doorbell sleep is bounded).
    if (track.flagged || now - track.last_progress < timeout ||
        !executor_.worker_has_backlog(i)) {
      continue;
    }
    track.flagged = true;
    stalls_detected_.fetch_add(1, std::memory_order_relaxed);
    executor_.note_stall(i);
    NNFV_LOG(kWarn, "watchdog")
        << "worker " << i << " stalled (heartbeat frozen "
        << config_.stall_timeout_ms << "ms with backlog)";
    if (!config_.restart_stalled) continue;
    executor_.restart_worker(i);
    restarts_performed_.fetch_add(1, std::memory_order_relaxed);
    // The respawned thread starts a fresh heartbeat history.
    track.last_heartbeat = executor_.worker_heartbeat(i);
    track.last_progress = now;
    track.flagged = false;
  }
}

}  // namespace nnfv::exec
