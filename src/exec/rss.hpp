// RSS-style flow hashing: maps a frame to a worker shard.
//
// Contract (documented in docs/datapath.md §6): all frames of one
// transport flow — and, for ESP, all frames of one outer IP pair — hash
// to the same worker, so per-flow state (microflow cache entries, NAT
// sessions, SA replay windows) has a single writer. IPv4 frames hash
// {src_ip, dst_ip, protocol, l4 ports}; ESP carries no ports, so the SPI
// would be the natural discriminator, but hashing only addresses +
// protocol keeps both directions' outer tuples of a tunnel pinned
// together, which is what single-writer replay windows need. Non-IP
// frames fall back to an L2 hash of src/dst MAC + ethertype.
#pragma once

#include <cstdint>
#include <span>

#include "packet/flow_key.hpp"

namespace nnfv::exec {

/// 64-bit avalanche mix (splitmix64 finalizer).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// RSS hash of a decoded flow. Symmetric inputs are NOT folded: the two
/// directions of a flow may land on different workers, which is fine —
/// each direction's state (NAT by_original vs by_external rows, inbound
/// vs outbound SA) is keyed per direction.
inline std::uint64_t rss_hash(const packet::FlowFields& fields) {
  if (fields.ipv4.has_value()) {
    std::uint64_t key =
        (static_cast<std::uint64_t>(fields.ipv4->src.value) << 32) |
        fields.ipv4->dst.value;
    std::uint64_t ports = fields.ipv4->protocol;
    if (fields.l4_src.has_value()) {
      ports = (ports << 16) | *fields.l4_src;
    }
    if (fields.l4_dst.has_value()) {
      ports = (ports << 16) | *fields.l4_dst;
    }
    return mix64(key ^ mix64(ports));
  }
  std::uint64_t l2 = fields.eth.ether_type;
  for (std::uint8_t b : fields.eth.src.bytes) l2 = (l2 << 8) | b;
  std::uint64_t l2b = 0;
  for (std::uint8_t b : fields.eth.dst.bytes) l2b = (l2b << 8) | b;
  return mix64(l2 ^ mix64(l2b));
}

/// Hash of a raw frame; undecodable frames all map to shard 0's hash.
inline std::uint64_t rss_hash_frame(std::span<const std::uint8_t> frame) {
  auto fields = packet::extract_flow_fields(frame);
  if (!fields.is_ok()) return 0;
  return rss_hash(fields.value());
}

/// Maps a hash to one of `workers` shards (1-based worker slots are the
/// caller's concern; this returns [0, workers)).
inline std::size_t shard_for(std::uint64_t hash, std::size_t workers) {
  return workers == 0 ? 0 : static_cast<std::size_t>(hash % workers);
}

}  // namespace nnfv::exec
