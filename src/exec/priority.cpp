#include "exec/priority.hpp"

#include "packet/headers.hpp"

namespace nnfv::exec {

namespace {

constexpr std::uint16_t kDhcpServerPort = 67;
constexpr std::uint16_t kDhcpClientPort = 68;

bool is_dhcp_port(std::uint16_t port) {
  return port == kDhcpServerPort || port == kDhcpClientPort;
}

/// True when the ESP frame's SPI belongs to an in-flight rekey. `l3` is
/// the frame payload starting at the IPv4 header.
bool esp_is_control(const packet::Ipv4Header& ipv4,
                    std::span<const std::uint8_t> l3) {
  if (ControlSpiRegistry::instance().empty()) return false;
  if (l3.size() < ipv4.header_size()) return false;
  auto esp = packet::parse_esp(l3.subspan(ipv4.header_size()));
  if (!esp) return false;
  return ControlSpiRegistry::instance().contains(esp.value().spi);
}

}  // namespace

ControlSpiRegistry& ControlSpiRegistry::instance() {
  static ControlSpiRegistry* registry = new ControlSpiRegistry();  // leaked
  return *registry;
}

void ControlSpiRegistry::add(std::uint32_t spi) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++spis_[spi];
  count_.fetch_add(1, std::memory_order_relaxed);
}

void ControlSpiRegistry::remove(std::uint32_t spi) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = spis_.find(spi);
  if (it == spis_.end()) return;
  if (--it->second == 0) spis_.erase(it);
  count_.fetch_sub(1, std::memory_order_relaxed);
}

bool ControlSpiRegistry::contains(std::uint32_t spi) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spis_.contains(spi);
}

FramePriority classify_priority(const packet::FlowFields& fields,
                                std::span<const std::uint8_t> frame) {
  if (fields.eth.ether_type == packet::kEtherTypeArp) {
    return FramePriority::kControl;
  }
  if (!fields.ipv4) return FramePriority::kBulk;
  const packet::Ipv4Header& ipv4 = *fields.ipv4;
  if (ipv4.protocol == packet::kIpProtoUdp) {
    if ((fields.l4_src && is_dhcp_port(*fields.l4_src)) ||
        (fields.l4_dst && is_dhcp_port(*fields.l4_dst))) {
      return FramePriority::kControl;
    }
    return FramePriority::kBulk;
  }
  if (ipv4.protocol == packet::kIpProtoEsp) {
    const std::size_t l3_off = fields.eth.wire_size();
    if (frame.size() > l3_off &&
        esp_is_control(ipv4, frame.subspan(l3_off))) {
      return FramePriority::kControl;
    }
  }
  return FramePriority::kBulk;
}

FramePriority classify_priority(std::span<const std::uint8_t> frame) {
  auto fields = packet::extract_flow_fields(frame);
  if (!fields) return FramePriority::kBulk;
  return classify_priority(fields.value(), frame);
}

}  // namespace nnfv::exec
