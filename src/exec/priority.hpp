// Frame priority classification for overload shedding.
//
// Two classes: control traffic the node must not drop while it still
// has any headroom (ARP resolution, DHCP, and ESP frames that belong to
// an in-flight IPsec rekey — losing those turns congestion into a dead
// tunnel), and bulk for everything else. Under overload, bulk frames
// are shed at submit — before classify/crypto work is invested — while
// control frames are admitted until a hard watermark (see
// DatapathExecutorConfig).
//
// Rekey-relevant ESP traffic is recognised via the ControlSpiRegistry:
// the IPsec NF registers a staged rekey's SPIs when the rekey is staged
// and unregisters them once the superseded SA retires. The registry is
// process-wide and mutex-protected — it changes at control-plane rate —
// with an atomic size so the per-frame check is one relaxed load when
// no rekey is in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>

#include "packet/flow_key.hpp"

namespace nnfv::exec {

enum class FramePriority : std::uint8_t { kBulk = 0, kControl = 1 };

/// SPIs whose ESP frames are control priority (in-flight rekeys).
/// Multiset semantics: a SPI registered twice needs two removes.
class ControlSpiRegistry {
 public:
  static ControlSpiRegistry& instance();

  void add(std::uint32_t spi);
  void remove(std::uint32_t spi);
  [[nodiscard]] bool contains(std::uint32_t spi) const;
  [[nodiscard]] bool empty() const {
    return count_.load(std::memory_order_relaxed) == 0;
  }

 private:
  ControlSpiRegistry() = default;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint32_t, std::uint32_t> spis_;  // spi -> refs
  std::atomic<std::size_t> count_{0};
};

/// Classifies from already-extracted flow fields; `frame` is only peeked
/// for the ESP SPI (the one field FlowFields does not carry), and only
/// when a rekey is in flight.
FramePriority classify_priority(const packet::FlowFields& fields,
                                std::span<const std::uint8_t> frame);

/// Classifies a raw frame (submit-side shedding: nothing is decoded yet).
FramePriority classify_priority(std::span<const std::uint8_t> frame);

}  // namespace nnfv::exec
