#include "exec/datapath_executor.hpp"

#include <algorithm>
#include <chrono>

#include "exec/rss.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace nnfv::exec {

namespace {

/// Bounded retries for a full handoff ring before dropping. Blocking is
/// not an option: two workers handing off to each other would deadlock.
constexpr int kHandoffRetries = 256;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

std::size_t WorkerContext::worker_count() const {
  return executor_.worker_count();
}

bool WorkerContext::handoff(std::size_t to_worker, std::uint32_t tag,
                            packet::PacketBuffer&& frame) {
  return executor_.push_handoff(index_, to_worker, tag, std::move(frame));
}

DatapathExecutor::DatapathExecutor(DatapathExecutorConfig config,
                                   Pipeline pipeline)
    : config_(config), pipeline_(std::move(pipeline)) {
  config_.workers = std::clamp<std::size_t>(config_.workers, 1, kMaxWorkers);
  config_.drain_batch = std::max<std::size_t>(config_.drain_batch, 1);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->ingress =
        std::make_unique<SpscRing<WorkItem>>(config_.ring_capacity);
    worker->handoff.resize(config_.workers);
    for (std::size_t from = 0; from < config_.workers; ++from) {
      worker->handoff[from] =
          std::make_unique<SpscRing<WorkItem>>(config_.handoff_capacity);
    }
    workers_.push_back(std::move(worker));
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { run_worker(i); });
  }
}

DatapathExecutor::~DatapathExecutor() { stop(); }

std::size_t DatapathExecutor::submit_burst(std::uint32_t tag,
                                           packet::PacketBurst&& burst) {
  std::size_t enqueued = 0;
  const std::size_t n = worker_count();
  for (packet::PacketBuffer& frame : burst) {
    const std::size_t shard = shard_for(rss_hash_frame(frame.data()), n);
    Worker& worker = *workers_[shard];
    inflight_.fetch_add(1, std::memory_order_relaxed);
    WorkItem item{tag, std::move(frame)};
    bool pushed = true;
    while (!worker.ingress->push(std::move(item))) {
      if (!config_.block_on_full ||
          !running_.load(std::memory_order_acquire)) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        ingress_drops_.fetch_add(1, std::memory_order_relaxed);
        pushed = false;
        break;
      }
      ring_doorbell(shard);
      cpu_relax();
    }
    if (pushed) {
      ring_doorbell(shard);
      ++enqueued;
    }
  }
  burst.clear();
  return enqueued;
}

bool DatapathExecutor::submit_to(std::size_t worker, std::uint32_t tag,
                                 packet::PacketBuffer&& frame) {
  if (worker >= worker_count()) return false;
  Worker& target = *workers_[worker];
  inflight_.fetch_add(1, std::memory_order_relaxed);
  WorkItem item{tag, std::move(frame)};
  while (!target.ingress->push(std::move(item))) {
    if (!config_.block_on_full || !running_.load(std::memory_order_acquire)) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      ingress_drops_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    ring_doorbell(worker);
    cpu_relax();
  }
  ring_doorbell(worker);
  return true;
}

bool DatapathExecutor::push_handoff(std::size_t from, std::size_t to,
                                    std::uint32_t tag,
                                    packet::PacketBuffer&& frame) {
  if (to >= worker_count()) return false;
  Worker& target = *workers_[to];
  SpscRing<WorkItem>& ring = *target.handoff[from];
  inflight_.fetch_add(1, std::memory_order_relaxed);
  WorkItem item{tag, std::move(frame)};
  for (int attempt = 0; attempt < kHandoffRetries; ++attempt) {
    if (ring.push(std::move(item))) {
      workers_[from]->stats.handoff_out += 1;
      ring_doorbell(to);
      return true;
    }
    ring_doorbell(to);
    cpu_relax();
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  workers_[from]->stats.handoff_drops += 1;
  return false;
}

void DatapathExecutor::ring_doorbell(std::size_t worker) {
  Worker& target = *workers_[worker];
  if (target.sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(target.doorbell_mutex);
    target.doorbell.notify_one();
  }
}

std::size_t DatapathExecutor::drain_ring(WorkerContext& ctx,
                                         SpscRing<WorkItem>& ring) {
  std::vector<WorkItem> items;
  items.reserve(config_.drain_batch);
  if (ring.pop_batch(items, config_.drain_batch) == 0) return 0;
  const std::size_t processed = items.size();
  // Deliver contiguous same-tag runs as one burst; the common case is a
  // whole batch sharing one ingress tag.
  std::size_t begin = 0;
  while (begin < items.size()) {
    std::size_t end = begin + 1;
    while (end < items.size() && items[end].tag == items[begin].tag) ++end;
    packet::PacketBurst group;
    group.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      group.push_back(std::move(items[i].frame));
    }
    pipeline_(ctx, items[begin].tag, std::move(group));
    begin = end;
  }
  inflight_.fetch_sub(processed, std::memory_order_release);
  return processed;
}

void DatapathExecutor::run_worker(std::size_t index) {
  Worker& self = *workers_[index];
#ifdef __linux__
  if (config_.pin_threads) {
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(index % cores), &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  ScopedWorkerSlot slot_guard(index + 1);
  WorkerContext ctx(*this, index);

  auto drain_all = [&]() -> std::size_t {
    std::size_t processed = drain_ring(ctx, *self.ingress);
    for (std::size_t from = 0; from < worker_count(); ++from) {
      const std::size_t n = drain_ring(ctx, *self.handoff[from]);
      self.stats.handoff_in += n;
      processed += n;
    }
    return processed;
  };

  int idle_spins = 0;
  while (running_.load(std::memory_order_acquire)) {
    const std::size_t processed = drain_all();
    if (processed > 0) {
      self.stats.processed += processed;
      idle_spins = 0;
      continue;
    }
    // Idle backoff: spin, then yield, then sleep on the doorbell.
    ++idle_spins;
    if (idle_spins < 64) {
      cpu_relax();
    } else if (idle_spins < 128) {
      std::this_thread::yield();
    } else {
      std::unique_lock<std::mutex> lock(self.doorbell_mutex);
      self.sleeping.store(true, std::memory_order_seq_cst);
      // Re-check after publishing sleeping: a producer that pushed just
      // before the store will see sleeping==true and knock; one that
      // pushed earlier is caught by this check.
      bool empty = self.ingress->empty_approx();
      for (std::size_t from = 0; empty && from < worker_count(); ++from) {
        empty = self.handoff[from]->empty_approx();
      }
      if (empty && running_.load(std::memory_order_acquire)) {
        self.doorbell.wait_for(lock, std::chrono::microseconds(500));
      }
      self.sleeping.store(false, std::memory_order_seq_cst);
    }
  }
  // Final drain so stop() never strands frames in rings.
  std::size_t processed;
  do {
    processed = drain_all();
    self.stats.processed += processed;
  } while (processed > 0);
}

void DatapathExecutor::drain() {
  while (inflight_.load(std::memory_order_acquire) != 0) {
    for (std::size_t i = 0; i < worker_count(); ++i) ring_doorbell(i);
    std::this_thread::yield();
  }
}

void DatapathExecutor::stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    for (auto& worker : workers_) {
      std::lock_guard<std::mutex> lock(worker->doorbell_mutex);
      worker->doorbell.notify_one();
    }
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

WorkerStats DatapathExecutor::worker_stats(std::size_t worker) const {
  if (worker >= worker_count()) return {};
  const LiveStats& live = workers_[worker]->stats;
  WorkerStats stats;
  stats.processed = live.processed;
  stats.handoff_out = live.handoff_out;
  stats.handoff_in = live.handoff_in;
  stats.handoff_drops = live.handoff_drops;
  return stats;
}

std::uint64_t DatapathExecutor::total_processed() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->stats.processed;
  return total;
}

}  // namespace nnfv::exec
