#include "exec/datapath_executor.hpp"

#include <algorithm>
#include <chrono>

#include "exec/fault_inject.hpp"
#include "exec/priority.hpp"
#include "exec/rss.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace nnfv::exec {

namespace {

/// Bounded retries for a full handoff ring before dropping. Blocking is
/// not an option: two workers handing off to each other would deadlock.
constexpr int kHandoffRetries = 256;
/// Retry count past which the handoff backoff escalates from a pause
/// to a full yield — the consumer is clearly busy, so give it the core.
constexpr int kHandoffYieldAfter = 64;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

std::size_t WorkerContext::worker_count() const {
  return executor_.worker_count();
}

bool WorkerContext::handoff(std::size_t to_worker, std::uint32_t tag,
                            packet::PacketBuffer&& frame) {
  return executor_.push_handoff(index_, to_worker, tag, std::move(frame));
}

DatapathExecutor::DatapathExecutor(DatapathExecutorConfig config,
                                   Pipeline pipeline)
    : config_(config), pipeline_(std::move(pipeline)) {
  config_.workers = std::clamp<std::size_t>(config_.workers, 1, kMaxWorkers);
  config_.drain_batch = std::max<std::size_t>(config_.drain_batch, 1);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->ingress =
        std::make_unique<SpscRing<WorkItem>>(config_.ring_capacity);
    worker->handoff.resize(config_.workers);
    for (std::size_t from = 0; from < config_.workers; ++from) {
      worker->handoff[from] =
          std::make_unique<SpscRing<WorkItem>>(config_.handoff_capacity);
    }
    worker->stats.handoff_drops_to.resize(config_.workers);
    workers_.push_back(std::move(worker));
  }
  // Resolve shedding watermarks against the rounded-up ring capacity.
  const std::size_t cap = workers_[0]->ingress->capacity();
  shed_high_ = config_.shed_high_watermark != 0 ? config_.shed_high_watermark
                                                : cap * 3 / 4;
  shed_low_ = config_.shed_low_watermark != 0 ? config_.shed_low_watermark
                                              : cap / 2;
  shed_hard_ = config_.shed_hard_watermark != 0 ? config_.shed_hard_watermark
                                                : cap - cap / 16;
  shed_high_ = std::min(shed_high_, cap);
  shed_hard_ = std::clamp(shed_hard_, shed_high_, cap);
  shed_low_ = std::min(shed_low_, shed_high_ > 0 ? shed_high_ - 1 : 0);
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { run_worker(i, 0); });
  }
}

DatapathExecutor::~DatapathExecutor() { stop(); }

bool DatapathExecutor::should_shed(Worker& worker,
                                   const packet::PacketBuffer& frame) {
  const std::size_t occupancy = worker.ingress->producer_size();
  bool shedding = worker.shedding.load();
  if (shedding) {
    if (occupancy <= shed_low_) {
      shedding = false;
      worker.shedding.store(false);
    }
  } else if (occupancy >= shed_high_) {
    shedding = true;
    worker.shedding.store(true);
  }
  if (!shedding) return false;
  // Classification happens only here — when the shard is already past
  // the watermark — so uncongested traffic never pays for the parse.
  if (classify_priority(frame.data()) == FramePriority::kBulk) {
    worker.stats.shed_bulk += 1;
    return true;
  }
  if (occupancy >= shed_hard_) {
    worker.stats.shed_control += 1;
    return true;
  }
  return false;
}

std::size_t DatapathExecutor::submit_burst(std::uint32_t tag,
                                           packet::PacketBurst&& burst) {
  std::size_t enqueued = 0;
  const std::size_t n = worker_count();
  for (packet::PacketBuffer& frame : burst) {
    const std::size_t shard = shard_for(rss_hash_frame(frame.data()), n);
    Worker& worker = *workers_[shard];
    if (config_.shed_enabled && should_shed(worker, frame)) {
      continue;  // frame dies with the burst; its segment recycles
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    WorkItem item{tag, std::move(frame)};
    bool pushed = true;
    while (!worker.ingress->push(std::move(item))) {
      if (!config_.block_on_full ||
          !running_.load(std::memory_order_acquire)) {
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        worker.stats.ingress_drops += 1;
        pushed = false;
        break;
      }
      ring_doorbell(shard);
      cpu_relax();
    }
    if (pushed) {
      ring_doorbell(shard);
      ++enqueued;
    }
  }
  burst.clear();
  return enqueued;
}

bool DatapathExecutor::submit_to(std::size_t worker, std::uint32_t tag,
                                 packet::PacketBuffer&& frame) {
  if (worker >= worker_count()) return false;
  Worker& target = *workers_[worker];
  if (config_.shed_enabled && should_shed(target, frame)) return false;
  inflight_.fetch_add(1, std::memory_order_relaxed);
  WorkItem item{tag, std::move(frame)};
  while (!target.ingress->push(std::move(item))) {
    if (!config_.block_on_full || !running_.load(std::memory_order_acquire)) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      target.stats.ingress_drops += 1;
      return false;
    }
    ring_doorbell(worker);
    cpu_relax();
  }
  ring_doorbell(worker);
  return true;
}

bool DatapathExecutor::push_handoff(std::size_t from, std::size_t to,
                                    std::uint32_t tag,
                                    packet::PacketBuffer&& frame) {
  if (to >= worker_count()) return false;
  if (FaultInjector::active()) [[unlikely]] {
    if (FaultInjector::instance().should_fail_handoff(from, to)) {
      workers_[from]->stats.handoff_drops_to[to] += 1;
      return false;  // injected drop: frame destructs, segment recycles
    }
  }
  Worker& target = *workers_[to];
  SpscRing<WorkItem>& ring = *target.handoff[from];
  inflight_.fetch_add(1, std::memory_order_relaxed);
  WorkItem item{tag, std::move(frame)};
  for (int attempt = 0; attempt < kHandoffRetries; ++attempt) {
    if (ring.push(std::move(item))) {
      workers_[from]->stats.handoff_out += 1;
      ring_doorbell(to);
      return true;
    }
    ring_doorbell(to);
    // Escalating backoff: pause first, then yield the core once the
    // consumer has clearly fallen behind.
    if (attempt < kHandoffYieldAfter) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  }
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  workers_[from]->stats.handoff_drops_to[to] += 1;
  return false;
}

void DatapathExecutor::ring_doorbell(std::size_t worker) {
  Worker& target = *workers_[worker];
  if (target.sleeping.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(target.doorbell_mutex);
    target.doorbell.notify_one();
  }
}

std::size_t DatapathExecutor::drain_ring(WorkerContext& ctx,
                                         SpscRing<WorkItem>& ring) {
  std::vector<WorkItem> items;
  items.reserve(config_.drain_batch);
  if (ring.pop_batch(items, config_.drain_batch) == 0) return 0;
  const std::size_t processed = items.size();
  // Deliver contiguous same-tag runs as one burst; the common case is a
  // whole batch sharing one ingress tag.
  std::size_t begin = 0;
  while (begin < items.size()) {
    std::size_t end = begin + 1;
    while (end < items.size() && items[end].tag == items[begin].tag) ++end;
    packet::PacketBurst group;
    group.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      group.push_back(std::move(items[i].frame));
    }
    pipeline_(ctx, items[begin].tag, std::move(group));
    begin = end;
  }
  inflight_.fetch_sub(processed, std::memory_order_release);
  return processed;
}

void DatapathExecutor::run_worker(std::size_t index,
                                  std::uint32_t my_generation) {
  Worker& self = *workers_[index];
#ifdef __linux__
  if (config_.pin_threads) {
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<int>(index % cores), &set);
    (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  }
#endif
  ScopedWorkerSlot slot_guard(index + 1);
  WorkerContext ctx(*this, index);

  // Supersession check: once the watchdog bumps the generation, this
  // thread must not touch the rings again — the respawned thread is the
  // single consumer now. Checked at the loop top and between per-ring
  // drains; see docs/datapath.md for the recovery contract.
  auto superseded = [&] {
    return self.generation.load(std::memory_order_acquire) != my_generation;
  };

  auto drain_all = [&]() -> std::size_t {
    if (superseded()) return 0;
    std::size_t processed = drain_ring(ctx, *self.ingress);
    for (std::size_t from = 0; from < worker_count(); ++from) {
      if (superseded()) return processed;
      const std::size_t n = drain_ring(ctx, *self.handoff[from]);
      self.stats.handoff_in += n;
      processed += n;
    }
    return processed;
  };

  int idle_spins = 0;
  while (running_.load(std::memory_order_acquire) && !superseded()) {
    // The heartbeat bumps before any work: a worker stuck inside the
    // pipeline (or the stall hook below) freezes it, which is exactly
    // what the watchdog watches for.
    self.heartbeat.fetch_add(1, std::memory_order_release);
    if (FaultInjector::active()) [[unlikely]] {
      FaultInjector::instance().maybe_stall(index, [&] {
        return !running_.load(std::memory_order_acquire) || superseded();
      });
      if (superseded()) break;
    }
    const std::size_t processed = drain_all();
    if (processed > 0) {
      self.stats.processed += processed;
      idle_spins = 0;
      continue;
    }
    // Idle backoff: spin, then yield, then sleep on the doorbell. The
    // sleep is bounded (500us), so an idle worker still heartbeats.
    ++idle_spins;
    if (idle_spins < 64) {
      cpu_relax();
    } else if (idle_spins < 128) {
      std::this_thread::yield();
    } else {
      std::unique_lock<std::mutex> lock(self.doorbell_mutex);
      self.sleeping.store(true, std::memory_order_seq_cst);
      // Re-check after publishing sleeping: a producer that pushed just
      // before the store will see sleeping==true and knock; one that
      // pushed earlier is caught by this check.
      bool empty = self.ingress->empty_approx();
      for (std::size_t from = 0; empty && from < worker_count(); ++from) {
        empty = self.handoff[from]->empty_approx();
      }
      if (empty && running_.load(std::memory_order_acquire) &&
          !superseded()) {
        self.doorbell.wait_for(lock, std::chrono::microseconds(500));
      }
      self.sleeping.store(false, std::memory_order_seq_cst);
    }
  }
  if (superseded()) return;  // the new generation owns the rings
  // Final drain so stop() never strands frames in rings.
  std::size_t processed;
  do {
    processed = drain_all();
    self.stats.processed += processed;
  } while (processed > 0);
}

void DatapathExecutor::note_stall(std::size_t worker) {
  if (worker >= worker_count()) return;
  workers_[worker]->stats.stalls += 1;
}

void DatapathExecutor::restart_worker(std::size_t worker) {
  if (worker >= worker_count()) return;
  Worker& target = *workers_[worker];
  // Supersede first: the old thread (wherever it is stuck) exits at its
  // next generation check and never touches the rings again.
  const std::uint32_t next_gen =
      target.generation.fetch_add(1, std::memory_order_acq_rel) + 1;
  ring_doorbell(worker);  // wake it if it is asleep so it can exit
  {
    // The old thread may be blocked indefinitely; joining here would
    // inherit the stall. Park it for stop() to join.
    std::lock_guard<std::mutex> lock(retired_mutex_);
    if (target.thread.joinable()) {
      retired_.push_back(std::move(target.thread));
    }
  }
  target.stats.restarts += 1;
  target.thread =
      std::thread([this, worker, next_gen] { run_worker(worker, next_gen); });
}

void DatapathExecutor::drain() {
  while (inflight_.load(std::memory_order_acquire) != 0) {
    for (std::size_t i = 0; i < worker_count(); ++i) ring_doorbell(i);
    std::this_thread::yield();
  }
}

void DatapathExecutor::stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    for (auto& worker : workers_) {
      std::lock_guard<std::mutex> lock(worker->doorbell_mutex);
      worker->doorbell.notify_one();
    }
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  std::lock_guard<std::mutex> lock(retired_mutex_);
  for (std::thread& thread : retired_) {
    if (thread.joinable()) thread.join();
  }
  retired_.clear();
}

WorkerStats DatapathExecutor::worker_stats(std::size_t worker) const {
  if (worker >= worker_count()) return {};
  const Worker& w = *workers_[worker];
  const LiveStats& live = w.stats;
  WorkerStats stats;
  stats.processed = live.processed;
  stats.handoff_out = live.handoff_out;
  stats.handoff_in = live.handoff_in;
  for (const util::RelaxedCounter& drops : live.handoff_drops_to) {
    stats.handoff_drops += drops;
  }
  stats.ingress_drops = live.ingress_drops;
  stats.shed_bulk = live.shed_bulk;
  stats.shed_control = live.shed_control;
  stats.stalls = live.stalls;
  stats.restarts = live.restarts;
  stats.heartbeat = w.heartbeat.load(std::memory_order_acquire);
  stats.occupancy = w.ingress->size_approx();
  return stats;
}

std::uint64_t DatapathExecutor::total_processed() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->stats.processed;
  return total;
}

std::uint64_t DatapathExecutor::ingress_drops() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->stats.ingress_drops;
  return total;
}

std::uint64_t DatapathExecutor::handoff_drops(std::size_t from,
                                              std::size_t to) const {
  if (from >= worker_count() || to >= worker_count()) return 0;
  return workers_[from]->stats.handoff_drops_to[to];
}

std::uint64_t DatapathExecutor::worker_heartbeat(std::size_t worker) const {
  if (worker >= worker_count()) return 0;
  return workers_[worker]->heartbeat.load(std::memory_order_acquire);
}

bool DatapathExecutor::worker_has_backlog(std::size_t worker) const {
  if (worker >= worker_count()) return false;
  const Worker& w = *workers_[worker];
  if (!w.ingress->empty_approx()) return true;
  for (const auto& ring : w.handoff) {
    if (!ring->empty_approx()) return true;
  }
  return false;
}

json::Value DatapathExecutor::describe_stats() const {
  json::Object root;
  root["workers"] = static_cast<std::uint64_t>(worker_count());
  json::Array per_worker;
  std::uint64_t shed_bulk = 0, shed_control = 0;
  std::uint64_t stalls = 0, restarts = 0;
  for (std::size_t i = 0; i < worker_count(); ++i) {
    const WorkerStats stats = worker_stats(i);
    json::Object w;
    w["index"] = static_cast<std::uint64_t>(i);
    w["heartbeat"] = stats.heartbeat;
    w["occupancy"] = stats.occupancy;
    w["processed"] = stats.processed;
    w["handoff_out"] = stats.handoff_out;
    w["handoff_in"] = stats.handoff_in;
    w["handoff_drops"] = stats.handoff_drops;
    w["ingress_drops"] = stats.ingress_drops;
    w["shed_bulk"] = stats.shed_bulk;
    w["shed_control"] = stats.shed_control;
    w["stalls"] = stats.stalls;
    w["restarts"] = stats.restarts;
    w["shedding"] = workers_[i]->shedding.load();
    per_worker.push_back(std::move(w));
    shed_bulk += stats.shed_bulk;
    shed_control += stats.shed_control;
    stalls += stats.stalls;
    restarts += stats.restarts;
  }
  root["per_worker"] = std::move(per_worker);
  root["total_processed"] = total_processed();
  root["ingress_drops"] = ingress_drops();
  root["shed_bulk"] = shed_bulk;
  root["shed_control"] = shed_control;
  root["worker_stalls"] = stalls;
  root["worker_restarts"] = restarts;
  return json::Value(std::move(root));
}

}  // namespace nnfv::exec
