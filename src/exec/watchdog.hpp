// Worker watchdog: detects a datapath worker that has stopped making
// progress while it still has backlog, and recovers it by superseding
// its thread (DatapathExecutor::restart_worker).
//
// Detection is heartbeat-based: every worker bumps a per-loop epoch,
// and a healthy worker always advances it — the idle doorbell sleep is
// bounded at 500us — so "heartbeat frozen for stall_timeout_ms" means
// the thread is stuck (in the pipeline, in a fault-injected stall, on a
// wedged lock). Restarting an idle-but-frozen worker would be wasted
// churn, so recovery additionally requires backlog: frames waiting in
// the worker's ingress or handoff rings.
//
// The monitor thread polls at stall_timeout_ms / 4 (configurable), so
// detection latency is stall_timeout..1.25*stall_timeout. Counters for
// detections and restarts live in the executor's per-worker stats
// (worker_stalls / worker_restarts in describe_stats()).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace nnfv::exec {

class DatapathExecutor;

struct WatchdogConfig {
  /// A worker whose heartbeat is frozen this long while it has backlog
  /// is declared stalled.
  std::uint64_t stall_timeout_ms = 200;
  /// Monitor poll period. 0 = stall_timeout_ms / 4 (min 1 ms).
  std::uint64_t poll_interval_ms = 0;
  /// Recover stalled workers (restart_worker). Off = detect and count
  /// only.
  bool restart_stalled = true;
};

class Watchdog {
 public:
  /// Starts the monitor thread. The executor must outlive the watchdog;
  /// stop (or destroy) the watchdog before stopping the executor.
  Watchdog(DatapathExecutor& executor, WatchdogConfig config);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stops and joins the monitor thread. Idempotent.
  void stop();

  std::uint64_t stalls_detected() const {
    return stalls_detected_.load(std::memory_order_relaxed);
  }
  std::uint64_t restarts_performed() const {
    return restarts_performed_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void poll_once(std::chrono::steady_clock::time_point now);

  struct Track {
    std::uint64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_progress;
    /// True while the worker is flagged stalled, so one stall is
    /// detected (and recovered) once, not once per poll.
    bool flagged = false;
  };

  DatapathExecutor& executor_;
  WatchdogConfig config_;
  std::vector<Track> tracks_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> stalls_detected_{0};
  std::atomic<std::uint64_t> restarts_performed_{0};
  std::mutex mutex_;
  std::condition_variable wakeup_;
  std::thread thread_;
};

}  // namespace nnfv::exec
