#include "exec/fault_inject.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "packet/mbuf.hpp"

namespace nnfv::exec {

std::atomic<bool>& FaultInjector::active_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = new FaultInjector();  // leaked singleton
  return *injector;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("NNFV_FAULT_INJECT");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    active_flag().store(true, std::memory_order_relaxed);
  }
}

void FaultInjector::set_enabled(bool on) {
  active_flag().store(on, std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  stall_armed_ = false;
  stall_captured_ = false;
  handoff_faults_.clear();
  for (packet::MbufSegment* seg : hoard_) {
    seg->refcount.store(0, std::memory_order_relaxed);
    packet::MbufPool::free_segment(seg);
  }
  hoard_.clear();
}

void FaultInjector::stall_worker(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  stall_armed_ = true;
  stall_captured_ = false;
  stall_index_ = index;
}

void FaultInjector::release_stall() {
  std::lock_guard<std::mutex> lock(mutex_);
  stall_armed_ = false;
}

std::size_t FaultInjector::stalled_threads() const {
  return stalled_threads_.load(std::memory_order_acquire);
}

void FaultInjector::maybe_stall(std::size_t index,
                                const std::function<bool()>& abort) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stall_armed_ || stall_captured_ || stall_index_ != index) return;
    stall_captured_ = true;  // one arming captures exactly one thread
  }
  stalled_threads_.fetch_add(1, std::memory_order_acq_rel);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stall_armed_) break;
    }
    if (abort()) break;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stalled_threads_.fetch_sub(1, std::memory_order_acq_rel);
}

void FaultInjector::fail_handoffs(std::size_t from, std::size_t to,
                                  std::uint64_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (HandoffFault& fault : handoff_faults_) {
    if (fault.from == from && fault.to == to) {
      fault.remaining += count;
      return;
    }
  }
  handoff_faults_.push_back({from, to, count});
}

bool FaultInjector::should_fail_handoff(std::size_t from, std::size_t to) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (HandoffFault& fault : handoff_faults_) {
    if (fault.from == from && fault.to == to && fault.remaining > 0) {
      --fault.remaining;
      return true;
    }
  }
  return false;
}

void FaultInjector::hoard_segments(packet::MbufPool& pool,
                                   std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  hoard_.reserve(hoard_.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    hoard_.push_back(pool.alloc(packet::MbufPool::kDataCapacity));
  }
}

void FaultInjector::release_hoard() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (packet::MbufSegment* seg : hoard_) {
    seg->refcount.store(0, std::memory_order_relaxed);
    packet::MbufPool::free_segment(seg);
  }
  hoard_.clear();
}

std::size_t FaultInjector::hoarded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hoard_.size();
}

}  // namespace nnfv::exec
