// Bounded lock-free single-producer/single-consumer ring.
//
// The cross-shard handoff primitive of the sharded datapath (ROADMAP
// item 1): the dispatcher feeds each worker's ingress ring, and each
// ordered (producer worker, consumer worker) pair owns one handoff ring.
// Classic Lamport queue with cache-line-separated head/tail and cached
// opposite indexes so the steady state touches one shared cache line per
// batch, not per element. Capacity is rounded up to a power of two; one
// slot is sacrificed to distinguish full from empty.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>
#include <vector>

namespace nnfv::exec {

#ifdef __cpp_lib_hardware_interference_size
inline constexpr std::size_t kCacheLine =
    std::hardware_destructive_interference_size;
#else
inline constexpr std::size_t kCacheLine = 64;
#endif

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t size = 2;
    while (size < capacity + 1) size <<= 1;
    mask_ = size - 1;
    slots_.resize(size);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Usable capacity (one slot is reserved).
  std::size_t capacity() const { return slots_.size() - 1; }

  /// Producer side. Returns false when full (caller decides: drop or spin).
  bool push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(item);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side: push as many items as fit, starting at `begin`.
  /// Returns the number pushed; one release store for the whole batch.
  std::size_t push_batch(T* items, std::size_t count) {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t pushed = 0;
    while (pushed < count) {
      const std::size_t next = (tail + 1) & mask_;
      if (next == head_cache_) {
        head_cache_ = head_.load(std::memory_order_acquire);
        if (next == head_cache_) break;
      }
      slots_[tail] = std::move(items[pushed]);
      tail = next;
      ++pushed;
    }
    if (pushed > 0) tail_.store(tail, std::memory_order_release);
    return pushed;
  }

  /// Consumer side. Returns false when empty.
  bool pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side: drain up to `max` items into `out` (appended).
  /// One release store for the whole batch.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t popped = 0;
    while (popped < max) {
      if (head == tail_cache_) {
        tail_cache_ = tail_.load(std::memory_order_acquire);
        if (head == tail_cache_) break;
      }
      out.push_back(std::move(slots_[head]));
      head = (head + 1) & mask_;
      ++popped;
    }
    if (popped > 0) head_.store(head, std::memory_order_release);
    return popped;
  }

  /// Approximate occupancy; exact only when both sides are quiescent.
  std::size_t size_approx() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }

  /// Occupancy as seen by the producer thread: its own tail is exact,
  /// and the consumer can only advance head, so on the producer thread
  /// the result is an overestimate bounded by capacity() — the property
  /// watermark shedding needs (a stale read errs toward shedding, never
  /// toward admitting past the mark). From any other thread this is just
  /// another approximation.
  std::size_t producer_size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return (tail - head) & mask_;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  std::size_t tail_cache_ = 0;  // consumer-local
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  std::size_t head_cache_ = 0;  // producer-local
};

}  // namespace nnfv::exec
