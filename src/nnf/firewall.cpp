#include "nnf/firewall.hpp"

#include "util/strings.hpp"

namespace nnfv::nnf {

namespace {

bool prefix_match(packet::Ipv4Address value, packet::Ipv4Address pattern,
                  std::uint8_t prefix) {
  if (prefix == 0) return true;
  if (prefix > 32) prefix = 32;
  const std::uint32_t mask =
      prefix == 32 ? 0xFFFFFFFFu : ~((1u << (32 - prefix)) - 1u);
  return (value.value & mask) == (pattern.value & mask);
}

/// Parses "10.0.0.0/8" or "192.168.1.1" or "any".
util::Status parse_cidr(const std::string& text,
                        std::optional<packet::Ipv4Address>& addr,
                        std::uint8_t& prefix) {
  if (text == "any" || text == "*") {
    addr = std::nullopt;
    return util::Status::ok();
  }
  const auto slash = text.find('/');
  const std::string ip_part =
      slash == std::string::npos ? text : text.substr(0, slash);
  auto parsed = packet::Ipv4Address::parse(ip_part);
  if (!parsed.has_value()) {
    return util::invalid_argument("bad address '" + text + "'");
  }
  addr = *parsed;
  prefix = 32;
  if (slash != std::string::npos) {
    std::uint64_t p = 0;
    if (!util::parse_u64(text.substr(slash + 1), p) || p > 32) {
      return util::invalid_argument("bad prefix in '" + text + "'");
    }
    prefix = static_cast<std::uint8_t>(p);
  }
  return util::Status::ok();
}

}  // namespace

bool FilterRule::matches(NfPortIndex in_port_idx,
                         const packet::FiveTuple& tuple) const {
  if (in_port.has_value() && *in_port != in_port_idx) return false;
  if (src.has_value() && !prefix_match(tuple.src_ip, *src, src_prefix)) {
    return false;
  }
  if (dst.has_value() && !prefix_match(tuple.dst_ip, *dst, dst_prefix)) {
    return false;
  }
  if (protocol.has_value() && *protocol != tuple.protocol) return false;
  if (dport_lo != 0 || dport_hi != 65535) {
    if (tuple.dst_port < dport_lo || tuple.dst_port > dport_hi) return false;
  }
  return true;
}

util::Result<FilterRule> parse_filter_rule(const std::string& text) {
  const auto parts = util::split(text, ',');
  if (parts.size() < 5) {
    return util::invalid_argument(
        "rule needs <verdict>,<src>,<dst>,<proto>,<dports>: '" + text + "'");
  }
  FilterRule rule;
  if (parts[0] == "accept") {
    rule.verdict = FilterVerdict::kAccept;
  } else if (parts[0] == "drop") {
    rule.verdict = FilterVerdict::kDrop;
  } else {
    return util::invalid_argument("bad verdict '" + parts[0] + "'");
  }
  NNFV_RETURN_IF_ERROR(parse_cidr(parts[1], rule.src, rule.src_prefix));
  NNFV_RETURN_IF_ERROR(parse_cidr(parts[2], rule.dst, rule.dst_prefix));
  if (parts[3] == "any" || parts[3] == "*") {
    rule.protocol = std::nullopt;
  } else if (parts[3] == "tcp") {
    rule.protocol = packet::kIpProtoTcp;
  } else if (parts[3] == "udp") {
    rule.protocol = packet::kIpProtoUdp;
  } else if (parts[3] == "icmp") {
    rule.protocol = packet::kIpProtoIcmp;
  } else if (parts[3] == "esp") {
    rule.protocol = packet::kIpProtoEsp;
  } else {
    std::uint64_t proto = 0;
    if (!util::parse_u64(parts[3], proto) || proto > 255) {
      return util::invalid_argument("bad protocol '" + parts[3] + "'");
    }
    rule.protocol = static_cast<std::uint8_t>(proto);
  }
  if (parts[4] != "any" && parts[4] != "*") {
    const auto dash = parts[4].find('-');
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    if (dash == std::string::npos) {
      if (!util::parse_u64(parts[4], lo) || lo > 65535) {
        return util::invalid_argument("bad port '" + parts[4] + "'");
      }
      hi = lo;
    } else {
      if (!util::parse_u64(parts[4].substr(0, dash), lo) ||
          !util::parse_u64(parts[4].substr(dash + 1), hi) || lo > 65535 ||
          hi > 65535 || lo > hi) {
        return util::invalid_argument("bad port range '" + parts[4] + "'");
      }
    }
    rule.dport_lo = static_cast<std::uint16_t>(lo);
    rule.dport_hi = static_cast<std::uint16_t>(hi);
  }
  for (std::size_t i = 5; i < parts.size(); ++i) {
    if (parts[i] == "in=0") {
      rule.in_port = 0;
    } else if (parts[i] == "in=1") {
      rule.in_port = 1;
    } else {
      return util::invalid_argument("bad rule option '" + parts[i] + "'");
    }
  }
  return rule;
}

util::Status Firewall::configure(ContextId ctx, const NfConfig& config) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  ContextState& state = state_[ctx];
  for (const auto& [key, value] : config) {
    if (key == "policy") {
      if (value == "accept") {
        state.policy = FilterVerdict::kAccept;
      } else if (value == "drop") {
        state.policy = FilterVerdict::kDrop;
      } else {
        return util::invalid_argument("firewall: bad policy '" + value + "'");
      }
    } else if (util::starts_with(key, "rule.")) {
      auto rule = parse_filter_rule(value);
      if (!rule) return rule.status();
      state.rules.push_back(rule.value());
    } else {
      return util::invalid_argument("firewall: unknown config key '" + key +
                                    "'");
    }
  }
  return util::Status::ok();
}

std::vector<NfOutput> Firewall::process(ContextId ctx, NfPortIndex in_port,
                                        sim::SimTime /*now*/,
                                        packet::PacketBuffer&& frame) {
  std::vector<NfOutput> out;
  ++counters_.in_packets;
  if (!has_context(ctx) || in_port >= 2) {
    ++counters_.errors;
    return out;
  }
  auto eth = packet::parse_ethernet(frame.data());
  if (!eth) {
    ++counters_.errors;
    return out;
  }
  FilterVerdict verdict;
  const ContextState& state = state_[ctx];
  if (eth->ether_type != packet::kEtherTypeIpv4) {
    // Non-IP (e.g. ARP) always passes, like iptables.
    verdict = FilterVerdict::kAccept;
  } else {
    auto tuple =
        packet::extract_five_tuple(frame.data().subspan(eth->wire_size()));
    if (!tuple) {
      ++counters_.dropped;
      return out;  // malformed IP: drop
    }
    verdict = state.policy;
    for (const FilterRule& rule : state.rules) {
      if (rule.matches(in_port, tuple.value())) {
        verdict = rule.verdict;
        break;
      }
    }
  }
  if (verdict == FilterVerdict::kDrop) {
    ++counters_.dropped;
    return out;
  }
  out.push_back(NfOutput{in_port == 0 ? 1u : 0u, std::move(frame)});
  ++counters_.out_packets;
  return out;
}

util::Status Firewall::remove_context(ContextId ctx) {
  NNFV_RETURN_IF_ERROR(NetworkFunction::remove_context(ctx));
  state_.erase(ctx);
  return util::Status::ok();
}

util::Status Firewall::append_rule(ContextId ctx, FilterRule rule) {
  NNFV_RETURN_IF_ERROR(require_context(ctx));
  state_[ctx].rules.push_back(rule);
  return util::Status::ok();
}

void Firewall::set_policy(ContextId ctx, FilterVerdict verdict) {
  state_[ctx].policy = verdict;
}

std::size_t Firewall::rule_count(ContextId ctx) const {
  auto it = state_.find(ctx);
  return it == state_.end() ? 0 : it->second.rules.size();
}

}  // namespace nnfv::nnf
