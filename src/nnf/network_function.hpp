// NetworkFunction: the functional (packet-transforming) core of an NF,
// independent of the execution backend.
//
// The same function logic runs as a native NF, a Docker container or a VM —
// exactly the paper's premise: it is the *wrapping* that differs (cost,
// RAM, image), not the function. Backends therefore wrap one of these
// objects; virt::CostModel supplies the wrapping's timing.
//
// Contexts: a *sharable* NNF serves several service graphs at once by
// keeping "multiple internal paths" (paper §2). Each path is a context id;
// non-sharable functions only accept kDefaultContext.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.hpp"
#include "packet/buffer.hpp"
#include "sim/time.hpp"
#include "util/atomics.hpp"
#include "util/status.hpp"

namespace nnfv::nnf {

using ContextId = std::uint32_t;
inline constexpr ContextId kDefaultContext = 0;

/// Logical NF port index (0-based). Port meanings are per-function
/// (e.g. NAT: 0 = inside, 1 = outside).
using NfPortIndex = std::uint32_t;

/// Key/value configuration, the "predefined configuration script" contents.
using NfConfig = std::map<std::string, std::string>;

/// A frame emitted by an NF, with the logical port it leaves through.
struct NfOutput {
  NfPortIndex port = 0;
  packet::PacketBuffer frame;
};

class NetworkFunction {
 public:
  virtual ~NetworkFunction() = default;

  /// Functional type name ("bridge", "firewall", "nat", "ipsec").
  [[nodiscard]] virtual std::string_view type() const = 0;

  /// Number of logical ports.
  [[nodiscard]] virtual std::size_t num_ports() const = 0;

  /// Creates an isolated internal path. Context 0 always exists.
  virtual util::Status add_context(ContextId ctx);
  virtual util::Status remove_context(ContextId ctx);
  [[nodiscard]] virtual bool has_context(ContextId ctx) const;

  /// Applies configuration to one context. Unknown keys are rejected so
  /// misspelled configs fail loudly.
  virtual util::Status configure(ContextId ctx, const NfConfig& config) = 0;

  /// Processes one frame arriving on `in_port` of context `ctx` at
  /// simulated time `now`; returns zero or more output frames.
  virtual std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                        sim::SimTime now,
                                        packet::PacketBuffer&& frame) = 0;

  /// Processes a whole burst arriving on one port. The default shim calls
  /// process() per frame, so single-packet subclasses work unchanged;
  /// functions with per-burst amortisable state may override.
  virtual std::vector<NfOutput> process_burst(ContextId ctx,
                                              NfPortIndex in_port,
                                              sim::SimTime now,
                                              packet::PacketBurst&& burst);

  /// Live per-context status counters as JSON, surfaced through the REST
  /// status path (GET /NF-FG/{id}/VNFs/{nf}/stats). The default reports
  /// nothing; functions with operational state (IPsec SA lifecycle, NAT
  /// pools) override.
  [[nodiscard]] virtual json::Value describe_stats(ContextId /*ctx*/) const {
    return json::Object{};
  }

 protected:
  /// Helper for subclasses with simple context sets.
  [[nodiscard]] util::Status require_context(ContextId ctx) const;
  /// Kept sorted ascending; contains kDefaultContext from construction.
  std::vector<ContextId> contexts_{kDefaultContext};
};

/// Per-function packet counters, kept by implementations that need them.
/// Relaxed atomics: datapath workers bump them concurrently (docs §6).
struct NfCounters {
  util::RelaxedCounter in_packets;
  util::RelaxedCounter out_packets;
  util::RelaxedCounter dropped;
  util::RelaxedCounter errors;
};

}  // namespace nnfv::nnf
