// IPsec ESP endpoint in tunnel mode (RFC 4303) — the NF the paper's
// validation runs as VM / Docker / native (Strongswan, "ESP protocol in
// tunnel mode").
//
// Datapath is functionally real. Two ESP transforms are supported per
// tunnel (config key `esp_transform`):
//
//   "gcm" (default)  AES-128-GCM (RFC 4106): CTR encryption + GHASH in
//                    one pass, 8-byte explicit IV (the sequence counter),
//                    16-byte tag, 4-byte salt from the tail of a 40-hex
//                    enc_key. Both directions pipeline on AES-NI/PCLMUL,
//                    which is why it is the default.
//   "cbc-hmac"       AES-128-CBC (RFC 3602) + HMAC-SHA256-128 (RFC 4868),
//                    the classic transform; CBC encryption is
//                    chain-serial.
//
// Both share ESP trailer padding, sequence numbers and a 64-entry
// anti-replay window. Sequence numbers are 64-bit throughout; with
// `esn: on` (RFC 4304 extended sequence numbers) only the low 32 bits
// travel on the wire and the receiver recovers the high half from its
// replay window (RFC 4304 Appendix A) — the recovered seq-hi feeds the
// integrity check (GCM AAD per RFC 4106 §5, or the implicit HMAC
// suffix per RFC 4303 §2.2.1), so a wrong inference fails
// authentication instead of advancing the window. Port 0 carries
// plaintext ("red") traffic, port 1 the encrypted ("black") side.
//
// SA lifecycle (RFC 4303 §3.3.3 + the usual IKE discipline, driven here
// by configuration updates instead of a key-exchange daemon):
//
//   ACTIVE ──soft──▶ REKEYING ──cutover──▶ DRAINING ──deadline──▶ DEAD
//
// Every SA generation carries soft/hard lifetimes (packets, bytes) and a
// sequence-headroom soft trigger; the non-ESN sequence space hard-stops
// at 2^32-1 — the counter never cycles, the packet that would reuse a
// sequence number is dropped and counted (`lifetime_drops`). Rekeying is
// make-before-break: staging new keymat (config keys `rekey_*`) installs
// the next-generation inbound SA immediately — the SAD holds old and new
// keyed by SPI, so in-flight packets of either generation drain without
// loss — while the outbound side keeps the old SA until its soft
// threshold trips and then cuts over atomically. The superseded inbound
// SA keeps accepting (DRAINING) until its drain deadline passes, then is
// retired (DEAD) and its SPI removed from the SAD.
//
// Each context holds an independent SA pair, which is what makes the
// function sharable: multiple service graphs terminate their own tunnels
// in one running instance, isolated per internal path. The SAD is keyed
// by (context, SPI) in flat hash maps, so inbound resolution stays O(1)
// at thousands of tunnels.
#pragma once

#include <array>
#include <initializer_list>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "exec/worker_slot.hpp"
#include "json/json.hpp"
#include "nnf/network_function.hpp"
#include "packet/headers.hpp"
#include "util/atomics.hpp"
#include "util/sync.hpp"

namespace nnfv::nnf {

/// Which ESP transform a tunnel runs (RFC 4106 AES-GCM vs RFC 3602+4868
/// AES-CBC + HMAC-SHA256).
enum class EspTransform { kGcm, kCbcHmac };

/// SA lifecycle state. kRekeying and kDraining still carry traffic —
/// kRekeying marks an outbound SA past its soft lifetime (new keymat
/// wanted), kDraining an inbound SA superseded by a rekey cutover that
/// keeps accepting late in-flight packets until its drain deadline.
enum class SaState { kActive, kRekeying, kDraining, kDead };

std::string_view sa_state_name(SaState state);

/// Soft/hard lifetime thresholds shared by a tunnel's SAs. 0 disables a
/// threshold. Soft expiry flags the SA for rekey (and cuts over to staged
/// keymat when present); hard expiry drops traffic with a counted reason.
struct SaLifetime {
  std::uint64_t soft_packets = 0;
  std::uint64_t hard_packets = 0;
  std::uint64_t soft_bytes = 0;
  std::uint64_t hard_bytes = 0;
  /// Soft-trigger this many sequence numbers before the sequence space
  /// ends (2^32-1 without ESN). Always-on: sequence exhaustion is the one
  /// lifetime RFC 4303 does not let an SA opt out of.
  std::uint64_t seq_headroom = 4096;
};

/// One unidirectional security association.
///
/// Concurrency (docs/datapath.md §6): mutable fields are relaxed
/// atomics so datapath workers on different shards may share an SA.
/// The outbound sequence is claimed with an atomic increment (every
/// packet gets a unique seq regardless of which worker sends it); the
/// replay window is single-writer by construction — RSS pins all ESP
/// ingress of one outer IP pair, hence one SPI, to one worker.
struct SecurityAssociation {
  std::uint32_t spi = 0;
  std::array<std::uint8_t, 16> enc_key{};   ///< AES-128
  std::array<std::uint8_t, 4> salt{};       ///< GCM nonce salt (RFC 4106)
  std::array<std::uint8_t, 32> auth_key{};  ///< HMAC-SHA256 (cbc-hmac)
  bool esn = false;  ///< RFC 4304 64-bit extended sequence numbers
  util::Relaxed<SaState> state = SaState::kActive;
  util::RelaxedCounter seq;  ///< last sent (out) sequence, full 64-bit
  // Anti-replay (inbound only): highest authenticated 64-bit sequence
  // (seq-hi || seq-lo under ESN) + sliding bitmap below it.
  util::RelaxedCounter replay_top;
  util::RelaxedCounter replay_bitmap;
  // Lifetime usage + per-SA failure accounting.
  util::RelaxedCounter packets;
  util::RelaxedCounter bytes;
  util::RelaxedCounter auth_fail;
  util::RelaxedCounter replay_drops;
  util::RelaxedCounter lifetime_drops;
  util::RelaxedCounter malformed;

  /// Highest sequence number this SA may ever send (RFC 4303 §3.3.3:
  /// the counter must not cycle). 2^32-1 without ESN; the full 64-bit
  /// space under ESN.
  [[nodiscard]] std::uint64_t seq_ceiling() const {
    return esn ? ~0ULL : 0xFFFFFFFFULL;
  }
};

struct IpsecStats {
  util::RelaxedCounter encapsulated;
  util::RelaxedCounter decapsulated;
  util::RelaxedCounter auth_failures;
  util::RelaxedCounter replay_drops;
  util::RelaxedCounter malformed;
  util::RelaxedCounter no_sa;
  /// Packets dropped by a hard lifetime / sequence-exhaustion stop.
  util::RelaxedCounter lifetime_drops;
  util::RelaxedCounter rekeys_started;    ///< staged keymat installed
  util::RelaxedCounter rekeys_completed;  ///< outbound cutover performed
  util::RelaxedCounter sas_retired;       ///< draining inbound SAs expired
};

class IpsecEndpoint : public NetworkFunction {
 public:
  static constexpr std::size_t kIvSize = 16;   ///< cbc-hmac explicit IV
  static constexpr std::size_t kIcvSize = 16;  ///< HMAC-SHA256-128
  static constexpr std::size_t kGcmIvSize = 8;   ///< RFC 4106 explicit IV
  static constexpr std::size_t kGcmIcvSize = 16;  ///< full GCM tag
  static constexpr std::uint32_t kReplayWindow = 64;  ///< anti-replay slots

  IpsecEndpoint() = default;

  [[nodiscard]] std::string_view type() const override { return "ipsec"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }

  /// Config keys (per context):
  ///   local_ip, peer_ip       tunnel endpoints (outer header)
  ///   spi_out, spi_in         decimal SPIs
  ///   esp_transform           "gcm" (default) or "cbc-hmac"
  ///   esn                     "on" or "off" (default): RFC 4304 64-bit
  ///                           extended sequence numbers on both SAs
  ///   enc_key                 32 hex chars (AES-128), or 40 hex chars
  ///                           (AES-128 key + 4-byte GCM salt, RFC 4106
  ///                           §8.1 keymat order; salt is zero when only
  ///                           32 chars are given)
  ///   auth_key                64 hex chars (HMAC-SHA256; cbc-hmac only)
  ///   life_soft_packets, life_hard_packets, life_soft_bytes,
  ///   life_hard_bytes         decimal lifetime thresholds (0 = off)
  ///   seq_headroom            sequence soft-trigger distance (default
  ///                           4096)
  ///   drain_ns                how long a superseded inbound SA keeps
  ///                           accepting after cutover (default 1s)
  ///   rekey_spi_out, rekey_spi_in, rekey_enc_key, [rekey_auth_key],
  ///   [rekey_cutover]         stage next-generation keymat
  ///                           (make-before-break). The new inbound SA
  ///                           accepts immediately; outbound cuts over at
  ///                           the soft threshold, or on the next packet
  ///                           with rekey_cutover=now (default: soft).
  ///   outer_src_mac, outer_dst_mac, inner_src_mac, inner_dst_mac (optional)
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  /// Burst override: the context -> tunnel resolution (hash lookup +
  /// configured checks), the drain-deadline sweep and the staged-cutover
  /// check happen once for the whole burst instead of per packet; the
  /// cached key schedules and HMAC midstate then serve every frame.
  std::vector<NfOutput> process_burst(ContextId ctx, NfPortIndex in_port,
                                      sim::SimTime now,
                                      packet::PacketBurst&& burst) override;

  util::Status remove_context(ContextId ctx) override;

  /// Endpoint counters, aggregated across the per-worker stat shards
  /// (each datapath worker bumps only its own shard; see
  /// docs/datapath.md §6).
  [[nodiscard]] IpsecStats stats() const;

  /// Live status for the REST path (GET .../VNFs/{nf}/stats): endpoint
  /// counters, SAD size, and the context's SA generations with state,
  /// lifetime usage and per-SA failure counters.
  [[nodiscard]] json::Value describe_stats(ContextId ctx) const override;

  /// Test hooks: corrupting/steering SA state is easier through a
  /// reference (window edge cases, ESN rollover need exact sequences).
  SecurityAssociation* inbound_sa(ContextId ctx);
  SecurityAssociation* outbound_sa(ContextId ctx);
  SecurityAssociation* staged_outbound_sa(ContextId ctx);
  SecurityAssociation* staged_inbound_sa(ContextId ctx);
  SecurityAssociation* draining_sa(ContextId ctx);
  /// Number of live inbound (context, SPI) entries across all tunnels.
  [[nodiscard]] std::size_t sad_size() const { return sad_.size(); }

 private:
  /// Per-generation key material: raw keys plus the precomputed AES
  /// schedule, GCM GHASH table and HMAC ipad midstate that must not be
  /// derived per packet. Both directions of a generation share one
  /// enc_key/auth_key (single-key config), so one bundle serves the SA
  /// pair; a rekey creates a fresh bundle and the draining inbound SA
  /// keeps a reference to the superseded one.
  struct Keymat {
    std::array<std::uint8_t, 16> enc_key{};
    std::array<std::uint8_t, 4> salt{};
    std::array<std::uint8_t, 32> auth_key{};
    bool have_enc_key = false;
    std::optional<crypto::Aes> cipher;
    std::optional<crypto::GcmContext> gcm;
    std::optional<crypto::HmacSha256> hmac_tmpl;  ///< ipad absorbed

    /// (Re)expands schedules from the raw keys.
    util::Status prepare();
  };

  /// Staged next-generation SA pair (make-before-break): inbound is live
  /// in the SAD from the moment of staging; outbound waits for cutover.
  struct StagedRekey {
    SecurityAssociation out_sa;
    SecurityAssociation in_sa;
    std::shared_ptr<Keymat> keymat;
    bool immediate = false;  ///< rekey_cutover=now
  };

  /// Superseded inbound SA draining in-flight packets after cutover.
  struct DrainingSa {
    SecurityAssociation sa;
    std::shared_ptr<Keymat> keymat;
    sim::SimTime deadline = 0;
  };

  struct Tunnel {
    packet::Ipv4Address local_ip;
    packet::Ipv4Address peer_ip;
    SecurityAssociation out_sa;
    SecurityAssociation in_sa;
    std::shared_ptr<Keymat> keymat;
    SaLifetime lifetime;
    sim::SimTime drain_ns = sim::kSecond;
    std::optional<StagedRekey> staged;
    std::optional<DrainingSa> draining;
    EspTransform transform = EspTransform::kGcm;
    packet::MacAddress outer_src_mac = packet::MacAddress::from_id(0xE0);
    packet::MacAddress outer_dst_mac = packet::MacAddress::from_id(0xE1);
    packet::MacAddress inner_src_mac = packet::MacAddress::from_id(0xE2);
    packet::MacAddress inner_dst_mac = packet::MacAddress::from_id(0xE3);
    bool configured = false;
    /// SPIs this tunnel holds in the overload-shedding control-priority
    /// registry (exec/priority.hpp) while a rekey is in flight: staged
    /// at stage_rekey, released when the superseded SA retires (or the
    /// context goes away). ESP frames on these SPIs survive load
    /// shedding, so a congested node can still finish a rekey.
    std::vector<std::uint32_t> control_spis;
  };

  /// Which generation a SAD entry resolves to within its tunnel.
  enum class SadSlot : std::uint8_t { kCurrent, kStaged, kDraining };

  // --- SAD maintenance (inbound (ctx, SPI) -> generation) -------------
  static std::uint64_t sad_key(ContextId ctx, std::uint32_t spi) {
    return (static_cast<std::uint64_t>(ctx) << 32) | spi;
  }
  void sad_insert(ContextId ctx, std::uint32_t spi, SadSlot slot);
  void sad_erase(ContextId ctx, std::uint32_t spi);

  // --- control-priority SPI registration (overload shedding) ----------
  /// Replaces the tunnel's registered control SPIs with `spis`.
  static void register_control_spis(Tunnel& tunnel,
                                    std::initializer_list<std::uint32_t> spis);
  /// Drops every control SPI the tunnel still holds registered.
  static void unregister_control_spis(Tunnel& tunnel);

  // --- lifecycle ------------------------------------------------------
  /// Retires the draining SA once its deadline passed; called once per
  /// process()/process_burst() entry.
  void expire_draining(ContextId ctx, Tunnel& tunnel, sim::SimTime now);
  /// Atomically switches outbound to the staged generation and moves the
  /// superseded inbound SA into draining.
  void cutover(ContextId ctx, Tunnel& tunnel, sim::SimTime now);
  /// Pre-encap gate: performs a due cutover, enforces hard stops
  /// (sequence exhaustion, hard lifetimes) and flags soft expiry.
  /// Returns nullptr (packet must be dropped, already counted) or the
  /// outbound SA to use.
  SecurityAssociation* outbound_gate(ContextId ctx, Tunnel& tunnel,
                                     sim::SimTime now);

  // encapsulate/decapsulate dispatch on the tunnel's transform.
  std::vector<NfOutput> encapsulate(ContextId ctx, Tunnel& tunnel,
                                    sim::SimTime now,
                                    packet::PacketBuffer&& frame);
  std::vector<NfOutput> decapsulate(ContextId ctx, Tunnel& tunnel,
                                    packet::PacketBuffer&& frame);

  /// Shared encap prologue: validates the red-side frame as
  /// Ethernet+IPv4 and returns the inner IP packet (trimmed to its
  /// total length); counts `malformed` and returns nullopt on failure.
  std::optional<std::span<const std::uint8_t>> parse_inner_ipv4(
      const packet::PacketBuffer& frame);

  /// Shared encap epilogue start: writes Eth | outer IPv4 | ESP header
  /// into the first kEspOffset + kEspHeaderSize bytes of `buf` — the
  /// header area the transforms reclaim from the input frame's headroom
  /// via push_front (no output-frame allocation, no payload copy).
  /// `esp_payload` sizes the outer IP total-length field. `seq` is the
  /// sequence number this packet claimed with its atomic increment —
  /// sa.seq may already be ahead when several workers share the SA.
  static void write_outer_headers(const Tunnel& tunnel,
                                  const SecurityAssociation& sa,
                                  std::uint64_t seq, std::size_t esp_payload,
                                  std::span<std::uint8_t> buf);

  /// Shared decap prologue: validates the black-side frame down to the
  /// ESP area (outer headers, ESP proto, destination, minimum payload)
  /// and resolves the inbound SA by SPI through the SAD — current,
  /// staged and draining generations all match, which is what makes the
  /// rekey switchover lossless. Counts malformed/no_sa/lifetime and
  /// returns nullopt on failure. `sequence` is the full 64-bit sequence:
  /// under ESN the high half is recovered from the replay window
  /// (RFC 4304 Appendix A) exactly once here and reused for the AAD/ICV
  /// input and the replay update — on both the single-packet and burst
  /// paths. Every size check happens before any state mutation.
  struct EspIngress {
    std::span<const std::uint8_t> esp_area;
    std::size_t esp_off = 0;  ///< offset of esp_area within the frame
    std::uint64_t sequence = 0;
    SecurityAssociation* sa = nullptr;
    Keymat* keymat = nullptr;
  };
  std::optional<EspIngress> parse_esp_ingress(
      ContextId ctx, Tunnel& tunnel, const packet::PacketBuffer& frame,
      std::size_t min_esp_payload);

  /// Shared decap epilogue: `inner` views the decrypted ESP payload
  /// (inner IP packet | pad | pad_len | next_header) inside the frame's
  /// pooled segment. Validates + strips the trailer (pad bytes
  /// 1..pad_len, next_header IPv4, pad_len bounded by the payload) with
  /// trim(), then rebuilds the red-side Ethernet header in the headroom
  /// the stripped outer headers left behind — no copy. Counts
  /// `malformed` (endpoint + per-SA) and returns an empty vector on
  /// failure.
  std::vector<NfOutput> emit_inner(const Tunnel& tunnel,
                                   SecurityAssociation& sa,
                                   packet::PacketBuffer&& inner);

  static constexpr std::size_t kEspOffset =
      packet::kEthernetHeaderSize + packet::kIpv4MinHeaderSize;
  std::vector<NfOutput> encapsulate_cbc(Tunnel& tunnel,
                                        SecurityAssociation& sa,
                                        packet::PacketBuffer&& frame);
  std::vector<NfOutput> decapsulate_cbc(Tunnel& tunnel, EspIngress ingress,
                                        packet::PacketBuffer&& frame);
  std::vector<NfOutput> encapsulate_gcm(Tunnel& tunnel,
                                        SecurityAssociation& sa,
                                        packet::PacketBuffer&& frame);
  std::vector<NfOutput> decapsulate_gcm(Tunnel& tunnel, EspIngress ingress,
                                        packet::PacketBuffer&& frame);

  /// A GCM encapsulation carried up to (but excluding) the seal: the
  /// frame rebuilt in place (outer headers, ESP header/IV, trailer, ICV
  /// room) with the nonce and AAD derived. The pooled segment does not
  /// move with the PacketBuffer handle, so spans into prep.frame stay
  /// valid while a burst's preps queue up as seal_mb lanes.
  struct GcmEncapPrep {
    packet::PacketBuffer frame;
    std::size_t ct_off = 0;
    std::size_t pt_len = 0;
    std::size_t inner_size = 0;
    std::uint8_t nonce[crypto::GcmContext::kIvSize] = {};
    std::uint8_t aad[12] = {};
    std::size_t aad_len = 0;
  };

  /// First half of encapsulate_gcm (sequence claim, header/trailer
  /// rebuild, nonce/AAD derivation). Returns false — frame dropped and
  /// counted — when the inner packet does not parse.
  bool encapsulate_gcm_prepare(Tunnel& tunnel, SecurityAssociation& sa,
                               packet::PacketBuffer&& frame,
                               GcmEncapPrep& prep);
  /// Second half: per-packet counters + output emission after the seal.
  NfOutput encapsulate_gcm_finish(SecurityAssociation& sa,
                                  GcmEncapPrep&& prep);

  /// Fast-path burst encapsulation: same-SA frames gathered into groups
  /// of up to crypto::CryptoBackend::kMaxMbLanes independent lanes and
  /// sealed through GcmContext::seal_mb — bit-identical to the serial
  /// loop (sequence numbers are claimed in frame order), but the AES and
  /// GHASH work of short packets interleaves across the burst.
  void encapsulate_gcm_burst(Tunnel& tunnel, SecurityAssociation& sa,
                             packet::PacketBurst& burst,
                             std::vector<NfOutput>& out);
  /// Fast-path burst decapsulation: consecutive frames resolving to the
  /// same keymat authenticate + decrypt as open_mb lanes; verdicts,
  /// replay checks and inner emission then run in frame order, so drop
  /// semantics match the serial path exactly (auth is pure crypto and
  /// replay state only advances in the ordered epilogue).
  void decapsulate_gcm_burst(ContextId ctx, Tunnel& tunnel,
                             packet::PacketBurst& burst,
                             std::vector<NfOutput>& out);

  /// Applies the staged-rekey config keys collected by configure().
  util::Status stage_rekey(ContextId ctx, Tunnel& tunnel,
                           const NfConfig& rekey);

  /// RFC-style sliding window over the full 64-bit sequence; returns
  /// false (and drops) on replay.
  static bool replay_check_and_update(SecurityAssociation& sa,
                                      std::uint64_t seq);

  /// True when `tunnel` is in plain steady state for `frames` more
  /// packets on `in_port`: no staged/draining generation, no byte/packet
  /// lifetimes configured, the relevant SA ACTIVE and (outbound) far
  /// enough from its sequence ceiling that neither the soft headroom
  /// trigger nor exhaustion can trip inside the burst. Under these
  /// conditions the datapath runs under a shared lock — counters are
  /// atomic, replay windows are single-writer by RSS — and anything
  /// else retries under the exclusive lock with the exact
  /// single-threaded lifecycle semantics.
  [[nodiscard]] static bool fast_path_ok(const Tunnel& tunnel,
                                         NfPortIndex in_port,
                                         std::size_t frames);

  std::unordered_map<ContextId, Tunnel> tunnels_;
  /// Inbound SAD: (context, SPI) -> generation. O(1) lookup regardless
  /// of tunnel count; entries exist only for configured inbound SAs.
  std::unordered_map<std::uint64_t, SadSlot> sad_;

  /// Structural lock: process paths hold it shared in steady state,
  /// exclusive for lifecycle transitions (cutover, drain expiry, hard
  /// stops); configure()/remove_context() are exclusive. Protects
  /// tunnels_/sad_ topology and SA generation swaps.
  mutable util::SharedMutex mutex_;

  /// Endpoint counters sharded per worker slot so the hot path never
  /// shares a stats cache line across workers; stats() aggregates.
  struct alignas(64) StatsShard {
    IpsecStats stats;
  };
  std::array<StatsShard, exec::kMaxSlots> stats_shards_;
  IpsecStats& stats_shard() {
    return stats_shards_[exec::current_worker_slot()].stats;
  }
};

}  // namespace nnfv::nnf
