// IPsec ESP endpoint in tunnel mode (RFC 4303) — the NF the paper's
// validation runs as VM / Docker / native (Strongswan, "ESP protocol in
// tunnel mode").
//
// Datapath is functionally real. Two ESP transforms are supported per
// tunnel (config key `esp_transform`):
//
//   "gcm" (default)  AES-128-GCM (RFC 4106): CTR encryption + GHASH in
//                    one pass, 8-byte explicit IV (the sequence counter),
//                    16-byte tag, 4-byte salt from the tail of a 40-hex
//                    enc_key. Both directions pipeline on AES-NI/PCLMUL,
//                    which is why it is the default.
//   "cbc-hmac"       AES-128-CBC (RFC 3602) + HMAC-SHA256-128 (RFC 4868),
//                    the classic transform; CBC encryption is
//                    chain-serial.
//
// Both share ESP trailer padding, sequence numbers and a 64-entry
// anti-replay window. Sequence numbers are 64-bit throughout; with
// `esn: on` (RFC 4304 extended sequence numbers) only the low 32 bits
// travel on the wire and the receiver recovers the high half from its
// replay window (RFC 4304 Appendix A) — the recovered seq-hi feeds the
// integrity check (GCM AAD per RFC 4106 §5, or the implicit HMAC
// suffix per RFC 4303 §2.2.1), so a wrong inference fails
// authentication instead of advancing the window. Port 0 carries
// plaintext ("red") traffic, port 1 the encrypted ("black") side.
//
// Each context holds an independent SA pair, which is what makes the
// function sharable: multiple service graphs terminate their own tunnels
// in one running instance, isolated per internal path.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>

#include "crypto/aes.hpp"
#include "crypto/cipher_modes.hpp"
#include "crypto/hmac.hpp"
#include "nnf/network_function.hpp"
#include "packet/headers.hpp"

namespace nnfv::nnf {

/// Which ESP transform a tunnel runs (RFC 4106 AES-GCM vs RFC 3602+4868
/// AES-CBC + HMAC-SHA256).
enum class EspTransform { kGcm, kCbcHmac };

/// One unidirectional security association.
struct SecurityAssociation {
  std::uint32_t spi = 0;
  std::array<std::uint8_t, 16> enc_key{};   ///< AES-128
  std::array<std::uint8_t, 4> salt{};       ///< GCM nonce salt (RFC 4106)
  std::array<std::uint8_t, 32> auth_key{};  ///< HMAC-SHA256 (cbc-hmac)
  bool esn = false;  ///< RFC 4304 64-bit extended sequence numbers
  std::uint64_t seq = 0;  ///< last sent (out) sequence, full 64-bit
  // Anti-replay (inbound only): highest authenticated 64-bit sequence
  // (seq-hi || seq-lo under ESN) + sliding bitmap below it.
  std::uint64_t replay_top = 0;
  std::uint64_t replay_bitmap = 0;
};

struct IpsecStats {
  std::uint64_t encapsulated = 0;
  std::uint64_t decapsulated = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t replay_drops = 0;
  std::uint64_t malformed = 0;
  std::uint64_t no_sa = 0;
};

class IpsecEndpoint : public NetworkFunction {
 public:
  static constexpr std::size_t kIvSize = 16;   ///< cbc-hmac explicit IV
  static constexpr std::size_t kIcvSize = 16;  ///< HMAC-SHA256-128
  static constexpr std::size_t kGcmIvSize = 8;   ///< RFC 4106 explicit IV
  static constexpr std::size_t kGcmIcvSize = 16;  ///< full GCM tag
  static constexpr std::uint32_t kReplayWindow = 64;  ///< anti-replay slots

  IpsecEndpoint() = default;

  [[nodiscard]] std::string_view type() const override { return "ipsec"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }

  /// Config keys (per context):
  ///   local_ip, peer_ip       tunnel endpoints (outer header)
  ///   spi_out, spi_in         decimal SPIs
  ///   esp_transform           "gcm" (default) or "cbc-hmac"
  ///   esn                     "on" or "off" (default): RFC 4304 64-bit
  ///                           extended sequence numbers on both SAs
  ///   enc_key                 32 hex chars (AES-128), or 40 hex chars
  ///                           (AES-128 key + 4-byte GCM salt, RFC 4106
  ///                           §8.1 keymat order; salt is zero when only
  ///                           32 chars are given)
  ///   auth_key                64 hex chars (HMAC-SHA256; cbc-hmac only)
  ///   outer_src_mac, outer_dst_mac, inner_src_mac, inner_dst_mac (optional)
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  /// Burst override: the context -> tunnel resolution (map lookup +
  /// configured/SA checks) happens once for the whole burst instead of
  /// per packet; the cached key schedules and HMAC midstate then serve
  /// every frame.
  std::vector<NfOutput> process_burst(ContextId ctx, NfPortIndex in_port,
                                      sim::SimTime now,
                                      packet::PacketBurst&& burst) override;

  util::Status remove_context(ContextId ctx) override;

  [[nodiscard]] const IpsecStats& stats() const { return stats_; }

  /// Test hooks: corrupting/steering SA state is easier through a
  /// reference (window edge cases, ESN rollover need exact sequences).
  SecurityAssociation* inbound_sa(ContextId ctx);
  SecurityAssociation* outbound_sa(ContextId ctx);

 private:
  struct Tunnel {
    packet::Ipv4Address local_ip;
    packet::Ipv4Address peer_ip;
    SecurityAssociation out_sa;
    SecurityAssociation in_sa;
    EspTransform transform = EspTransform::kGcm;
    std::optional<crypto::Aes> cipher;  ///< key-expanded AES (cbc-hmac)
    /// GCM context: AES key schedule + GHASH table precomputed once at
    /// configure; every packet of a burst reuses it — the GCM analogue of
    /// the HMAC ipad midstate below.
    std::optional<crypto::GcmContext> gcm;
    /// HMAC with the ipad block already absorbed, one per direction; per
    /// packet the ICV computation copies the midstate instead of
    /// re-deriving the key pads + compressing ipad. Kept per SA so the
    /// templates stay correct if the two directions ever get distinct
    /// auth keys.
    std::optional<crypto::HmacSha256> out_hmac_tmpl;
    std::optional<crypto::HmacSha256> in_hmac_tmpl;
    packet::MacAddress outer_src_mac = packet::MacAddress::from_id(0xE0);
    packet::MacAddress outer_dst_mac = packet::MacAddress::from_id(0xE1);
    packet::MacAddress inner_src_mac = packet::MacAddress::from_id(0xE2);
    packet::MacAddress inner_dst_mac = packet::MacAddress::from_id(0xE3);
    bool have_enc_key = false;
    bool configured = false;
  };

  // encapsulate/decapsulate dispatch on the tunnel's transform.
  std::vector<NfOutput> encapsulate(Tunnel& tunnel,
                                    packet::PacketBuffer&& frame);
  std::vector<NfOutput> decapsulate(Tunnel& tunnel,
                                    packet::PacketBuffer&& frame);

  /// Shared encap prologue: validates the red-side frame as
  /// Ethernet+IPv4 and returns the inner IP packet (trimmed to its
  /// total length); counts `malformed` and returns nullopt on failure.
  std::optional<std::span<const std::uint8_t>> parse_inner_ipv4(
      const packet::PacketBuffer& frame);

  /// Shared encap epilogue start: allocates the output frame and writes
  /// Eth | outer IPv4 | ESP header for `esp_payload` bytes of ESP
  /// payload (the transform then fills IV/ciphertext/ICV behind the
  /// fixed kEspOffset).
  static packet::PacketBuffer build_esp_frame(const Tunnel& tunnel,
                                              const SecurityAssociation& sa,
                                              std::size_t esp_payload);

  /// Shared decap prologue: validates the black-side frame down to the
  /// ESP area (outer headers, ESP proto, destination, minimum payload,
  /// SPI match); counts malformed/no_sa and returns nullopt on failure.
  /// `sequence` is the full 64-bit sequence: under ESN the high half is
  /// recovered from the replay window (RFC 4304 Appendix A) exactly
  /// once here and reused for the AAD/ICV input and the replay update —
  /// on both the single-packet and burst paths.
  struct EspIngress {
    std::span<const std::uint8_t> esp_area;
    std::uint64_t sequence = 0;
  };
  std::optional<EspIngress> parse_esp_ingress(
      const Tunnel& tunnel, const SecurityAssociation& sa,
      const packet::PacketBuffer& frame, std::size_t min_esp_payload);

  /// Shared decap epilogue: validates + strips the ESP trailer (pad
  /// bytes 1..pad_len, next_header IPv4) and rebuilds the red-side
  /// Ethernet frame; counts `malformed` and returns an empty vector on
  /// failure.
  std::vector<NfOutput> emit_inner(const Tunnel& tunnel,
                                   std::vector<std::uint8_t>&& plaintext);

  static constexpr std::size_t kEspOffset =
      packet::kEthernetHeaderSize + packet::kIpv4MinHeaderSize;
  std::vector<NfOutput> encapsulate_cbc(Tunnel& tunnel,
                                        packet::PacketBuffer&& frame);
  std::vector<NfOutput> decapsulate_cbc(Tunnel& tunnel,
                                        packet::PacketBuffer&& frame);
  std::vector<NfOutput> encapsulate_gcm(Tunnel& tunnel,
                                        packet::PacketBuffer&& frame);
  std::vector<NfOutput> decapsulate_gcm(Tunnel& tunnel,
                                        packet::PacketBuffer&& frame);

  /// RFC-style sliding window over the full 64-bit sequence; returns
  /// false (and drops) on replay.
  static bool replay_check_and_update(SecurityAssociation& sa,
                                      std::uint64_t seq);

  std::map<ContextId, Tunnel> tunnels_;
  IpsecStats stats_;
};

}  // namespace nnfv::nnf
