// IPsec ESP endpoint in tunnel mode (RFC 4303) — the NF the paper's
// validation runs as VM / Docker / native (Strongswan, "ESP protocol in
// tunnel mode").
//
// Datapath is functionally real: AES-128-CBC encryption (RFC 3602),
// HMAC-SHA256-128 integrity (RFC 4868), ESP trailer padding, sequence
// numbers and a 64-entry anti-replay window. Port 0 carries plaintext
// ("red") traffic, port 1 the encrypted ("black") side.
//
// Each context holds an independent SA pair, which is what makes the
// function sharable: multiple service graphs terminate their own tunnels
// in one running instance, isolated per internal path.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>

#include "crypto/aes.hpp"
#include "crypto/hmac.hpp"
#include "nnf/network_function.hpp"
#include "packet/headers.hpp"

namespace nnfv::nnf {

/// One unidirectional security association.
struct SecurityAssociation {
  std::uint32_t spi = 0;
  std::array<std::uint8_t, 16> enc_key{};   ///< AES-128
  std::array<std::uint8_t, 32> auth_key{};  ///< HMAC-SHA256
  std::uint64_t seq = 0;                    ///< last sent (out) sequence
  // Anti-replay (inbound only): highest seen seq + sliding bitmap.
  std::uint32_t replay_top = 0;
  std::uint64_t replay_bitmap = 0;
};

struct IpsecStats {
  std::uint64_t encapsulated = 0;
  std::uint64_t decapsulated = 0;
  std::uint64_t auth_failures = 0;
  std::uint64_t replay_drops = 0;
  std::uint64_t malformed = 0;
  std::uint64_t no_sa = 0;
};

class IpsecEndpoint : public NetworkFunction {
 public:
  static constexpr std::size_t kIvSize = 16;
  static constexpr std::size_t kIcvSize = 16;  ///< HMAC-SHA256-128

  IpsecEndpoint() = default;

  [[nodiscard]] std::string_view type() const override { return "ipsec"; }
  [[nodiscard]] std::size_t num_ports() const override { return 2; }

  /// Config keys (per context):
  ///   local_ip, peer_ip       tunnel endpoints (outer header)
  ///   spi_out, spi_in         decimal SPIs
  ///   enc_key                 32 hex chars (AES-128)
  ///   auth_key                64 hex chars (HMAC-SHA256)
  ///   outer_src_mac, outer_dst_mac, inner_src_mac, inner_dst_mac (optional)
  util::Status configure(ContextId ctx, const NfConfig& config) override;

  std::vector<NfOutput> process(ContextId ctx, NfPortIndex in_port,
                                sim::SimTime now,
                                packet::PacketBuffer&& frame) override;

  /// Burst override: the context -> tunnel resolution (map lookup +
  /// configured/SA checks) happens once for the whole burst instead of
  /// per packet; the cached key schedules and HMAC midstate then serve
  /// every frame.
  std::vector<NfOutput> process_burst(ContextId ctx, NfPortIndex in_port,
                                      sim::SimTime now,
                                      packet::PacketBurst&& burst) override;

  util::Status remove_context(ContextId ctx) override;

  [[nodiscard]] const IpsecStats& stats() const { return stats_; }

  /// Test hook: corrupting state is easier through a reference.
  SecurityAssociation* inbound_sa(ContextId ctx);

 private:
  struct Tunnel {
    packet::Ipv4Address local_ip;
    packet::Ipv4Address peer_ip;
    SecurityAssociation out_sa;
    SecurityAssociation in_sa;
    std::optional<crypto::Aes> cipher;  ///< key-expanded AES
    /// HMAC with the ipad block already absorbed, one per direction; per
    /// packet the ICV computation copies the midstate instead of
    /// re-deriving the key pads + compressing ipad. Kept per SA so the
    /// templates stay correct if the two directions ever get distinct
    /// auth keys.
    std::optional<crypto::HmacSha256> out_hmac_tmpl;
    std::optional<crypto::HmacSha256> in_hmac_tmpl;
    packet::MacAddress outer_src_mac = packet::MacAddress::from_id(0xE0);
    packet::MacAddress outer_dst_mac = packet::MacAddress::from_id(0xE1);
    packet::MacAddress inner_src_mac = packet::MacAddress::from_id(0xE2);
    packet::MacAddress inner_dst_mac = packet::MacAddress::from_id(0xE3);
    bool configured = false;
  };

  std::vector<NfOutput> encapsulate(Tunnel& tunnel,
                                    packet::PacketBuffer&& frame);
  std::vector<NfOutput> decapsulate(Tunnel& tunnel,
                                    packet::PacketBuffer&& frame);

  /// RFC-style sliding window; returns false (and drops) on replay.
  static bool replay_check_and_update(SecurityAssociation& sa,
                                      std::uint32_t seq);

  std::map<ContextId, Tunnel> tunnels_;
  IpsecStats stats_;
};

}  // namespace nnfv::nnf
