// NnfCatalog: "the available NNFs and their characteristics" (paper §2) —
// the per-node inventory the orchestrator consults when deciding NNF vs
// VNF, including live usage status (instances running, graphs served).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "nnf/plugin.hpp"
#include "util/status.hpp"

namespace nnfv::nnf {

struct NnfStatus {
  std::size_t running_instances = 0;
  /// Graphs currently steering traffic through this NNF type.
  std::set<std::string> graphs;
};

class NnfCatalog {
 public:
  util::Status register_plugin(std::shared_ptr<NnfPlugin> plugin);

  [[nodiscard]] bool has(const std::string& functional_type) const;
  [[nodiscard]] util::Result<std::shared_ptr<NnfPlugin>> plugin(
      const std::string& functional_type) const;
  [[nodiscard]] std::vector<std::string> types() const;

  /// Live status bookkeeping, updated by the native driver.
  NnfStatus& status(const std::string& functional_type);
  [[nodiscard]] const NnfStatus* status_of(
      const std::string& functional_type) const;

  /// A new instance may start iff running < max_instances.
  [[nodiscard]] bool can_instantiate(const std::string& functional_type) const;

  /// A graph can be served without a new instance iff an instance runs and
  /// the NNF is sharable.
  [[nodiscard]] bool can_share(const std::string& functional_type) const;

  /// Registers the four built-in CPE-native functions.
  static NnfCatalog with_builtin_plugins();

 private:
  std::map<std::string, std::shared_ptr<NnfPlugin>> plugins_;
  std::map<std::string, NnfStatus> status_;
};

}  // namespace nnfv::nnf
